package parbor_test

import (
	"reflect"
	"testing"

	"parbor"
)

// facadeHost builds a small simulated module through the public API.
func facadeHost(t *testing.T, vendor parbor.Vendor, rows int, seed uint64) *parbor.Host {
	t.Helper()
	cc := parbor.DefaultCouplingConfig()
	cc.VulnerableRate = 2e-3
	mod, err := parbor.NewModule(parbor.ModuleConfig{
		Name:     "facade",
		Vendor:   vendor,
		Chips:    1,
		Geometry: parbor.Geometry{Banks: 1, Rows: rows, Cols: 8192},
		Coupling: cc,
		Faults:   parbor.DefaultFaultsConfig(),
		Seed:     seed,
	})
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	host, err := parbor.NewHost(mod, 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	return host
}

// TestFacadeDetectionToMitigation drives the whole public surface:
// detection, classification, extended detection, content matching,
// repair planning — the integration path a downstream adopter would
// write.
func TestFacadeDetectionToMitigation(t *testing.T) {
	host := facadeHost(t, parbor.VendorA, 192, 3)
	tester, err := parbor.NewTester(host, parbor.DetectConfig{})
	if err != nil {
		t.Fatalf("NewTester: %v", err)
	}
	report, err := tester.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	victims, _, _ := tester.DiscoverVictims()
	classified, _, err := tester.ClassifyVictims(victims, report.Neighbor.Distances)
	if err != nil {
		t.Fatalf("ClassifyVictims: %v", err)
	}
	if tail := parbor.TailGated(classified); len(tail) > 0 {
		ext, err := tester.DetectExtendedNeighbors(tail, report.Neighbor.Distances)
		if err != nil {
			t.Fatalf("DetectExtendedNeighbors: %v", err)
		}
		if ext.Tests == 0 {
			t.Error("extended detection did no work")
		}
	}

	matcher, err := parbor.NewContentMatcher(report.Neighbor.Distances, 8192)
	if err != nil {
		t.Fatalf("NewContentMatcher: %v", err)
	}
	if err := matcher.AddRow(1, []parbor.VulnerableCell{{Col: 100, FailData: 1}}); err != nil {
		t.Fatalf("AddRow: %v", err)
	}
	data := make([]uint64, 128)
	for i := range data {
		data[i] = ^uint64(0)
	}
	if matched, _ := matcher.Matches(1, data); matched {
		t.Error("uniform content matched")
	}

	failures := make([]parbor.BitAddr, 0, len(report.AllFailures))
	for a := range report.AllFailures {
		failures = append(failures, a)
	}
	plan, err := parbor.PlanRepair(failures,
		parbor.RepairBudget{SpareRows: 4, ECCBitsPerWord: 1, RemapEntries: 32},
		parbor.RepairOptions{RefreshManaged: parbor.RefreshManagedSet(classified)})
	if err != nil {
		t.Fatalf("PlanRepair: %v", err)
	}
	if plan.CoverageFraction() <= 0 {
		t.Error("plan covered nothing")
	}
}

func TestFacadeRetentionAndMarch(t *testing.T) {
	host := facadeHost(t, parbor.VendorB, 48, 5)
	profiler, err := parbor.NewRetentionProfiler(host, parbor.RetentionConfig{MinMs: 128, MaxMs: 512})
	if err != nil {
		t.Fatalf("NewRetentionProfiler: %v", err)
	}
	pats, err := parbor.NeighborAwarePatterns([]int{-64, -1, 1, 64}, 128)
	if err != nil {
		t.Fatalf("NeighborAwarePatterns: %v", err)
	}
	profile, err := profiler.ProfileModule(pats)
	if err != nil {
		t.Fatalf("ProfileModule: %v", err)
	}
	if profile.WeakRowFraction(1024) <= 0 {
		t.Error("profile found no weak rows")
	}

	engine, err := parbor.NewMarchEngine(host)
	if err != nil {
		t.Fatalf("NewMarchEngine: %v", err)
	}
	for _, test := range []parbor.MarchTest{parbor.MATSPlus(), parbor.MarchCMinus(), parbor.MarchSS()} {
		res, err := engine.Run(parbor.WithRetentionDelays(test, 500))
		if err != nil {
			t.Fatalf("Run(%s): %v", test.Name, err)
		}
		if res.Reads == 0 {
			t.Errorf("%s did no reads", test.Name)
		}
	}
}

func TestFacadeOnlineScheduler(t *testing.T) {
	host := facadeHost(t, parbor.VendorA, 16, 7)
	sched, err := parbor.NewOnlineScheduler(host, parbor.OnlineConfig{
		Distances:    []int{-48, -16, -8, 8, 16, 48},
		RowsPerEpoch: 8,
	})
	if err != nil {
		t.Fatalf("NewOnlineScheduler: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := sched.RunEpoch(); err != nil {
			t.Fatalf("RunEpoch: %v", err)
		}
	}
	if sched.Rounds() != 1 {
		t.Errorf("rounds = %d, want 1", sched.Rounds())
	}
}

// TestFacadeHostParallelism exercises the public Parallelism knob: a
// sharded host and a serial host must produce bit-identical failure
// sets through the public API, on a multi-chip module.
func TestFacadeHostParallelism(t *testing.T) {
	build := func(parallelism int) *parbor.Host {
		cc := parbor.DefaultCouplingConfig()
		cc.VulnerableRate = 2e-3
		mod, err := parbor.NewModule(parbor.ModuleConfig{
			Name:     "facade-par",
			Vendor:   parbor.VendorC,
			Chips:    4,
			Geometry: parbor.Geometry{Banks: 1, Rows: 32, Cols: 2048},
			Coupling: cc,
			Faults:   parbor.DefaultFaultsConfig(),
			Seed:     11,
		})
		if err != nil {
			t.Fatalf("NewModule: %v", err)
		}
		host, err := parbor.NewHostWithConfig(mod, parbor.HostConfig{WaitMs: 512, Parallelism: parallelism})
		if err != nil {
			t.Fatalf("NewHostWithConfig: %v", err)
		}
		return host
	}
	serial, sharded := build(1), build(8)
	gen := func(r parbor.Row, buf []uint64) {
		for i := range buf {
			buf[i] = 0x5555555555555555
		}
	}
	want := serial.FullPass(gen)
	got := sharded.FullPass(gen)
	if len(want) == 0 {
		t.Fatal("degenerate module: no failures to compare")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded host diverged from serial: %d vs %d failures", len(got), len(want))
	}
	if serial.Passes() != sharded.Passes() {
		t.Errorf("pass counts diverged: %d vs %d", serial.Passes(), sharded.Passes())
	}
}
