# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); keep them in sync.

GO ?= go

.PHONY: build test vet atest lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# vet builds the repository's analysis suite (cmd/parborvet) and runs
# it over the whole tree — internal/..., cmd/..., and examples/... —
# through the go vet vettool protocol. DESIGN.md sections 10 and 15
# document the analyzers and the //parbor: annotation contract
# (hotpath, wallclock, rawfs, guardedby, unsync, droperr).
vet:
	$(GO) build -o parborvet ./cmd/parborvet
	$(GO) vet -vettool=$(CURDIR)/parborvet ./...

# atest runs the analyzers' own fixture harness (each pass against
# its testdata module, plus the knownbad fires-exactly-once
# accounting) under the race detector, matching CI's lint job.
atest:
	$(GO) test -race -count=1 ./internal/analyzers/... ./cmd/parborvet

# lint adds the pinned external checkers on top of vet. These download
# on first use, so unlike vet they need network access.
lint: vet
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1.1 ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@v1.1.4 ./...
