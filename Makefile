# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); keep them in sync.

GO ?= go

.PHONY: build test vet lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# vet builds the repository's analysis suite (cmd/parborvet) and runs
# it over the whole tree through the go vet vettool protocol. DESIGN.md
# section 10 documents the analyzers and the //parbor:hotpath /
# //parbor:wallclock annotation contract.
vet:
	$(GO) build -o parborvet ./cmd/parborvet
	$(GO) vet -vettool=$(CURDIR)/parborvet ./...

# lint adds the pinned external checkers on top of vet. These download
# on first use, so unlike vet they need network access.
lint: vet
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1.1 ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@v1.1.4 ./...
