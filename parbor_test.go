package parbor_test

import (
	"fmt"
	"log"
	"reflect"
	"testing"

	"parbor"
)

// TestFacadeEndToEnd drives the complete public API: module, host,
// tester, report, and the refresh simulation.
func TestFacadeEndToEnd(t *testing.T) {
	cc := parbor.DefaultCouplingConfig()
	cc.VulnerableRate = 2e-3
	mod, err := parbor.NewModule(parbor.ModuleConfig{
		Name:     "B1",
		Vendor:   parbor.VendorB,
		Chips:    1,
		Geometry: parbor.Geometry{Banks: 1, Rows: 256, Cols: 8192},
		Coupling: cc,
		Faults:   parbor.DefaultFaultsConfig(),
		Seed:     7,
	})
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	host, err := parbor.NewHost(mod, 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	tester, err := parbor.NewTester(host, parbor.DetectConfig{})
	if err != nil {
		t.Fatalf("NewTester: %v", err)
	}
	report, err := tester.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := []int{-64, -1, 1, 64}; !reflect.DeepEqual(report.Neighbor.Distances, want) {
		t.Errorf("distances = %v, want %v", report.Neighbor.Distances, want)
	}
	if report.TotalTests() != 10+66+32 {
		t.Errorf("budget = %d, want 108", report.TotalTests())
	}
	if len(report.AllFailures) == 0 {
		t.Error("no failures found")
	}

	res, err := parbor.RunSim(parbor.SimConfig{
		Workload: parbor.Workloads(1, 2, 1)[0],
		Policy:   parbor.RefreshDCREF,
		Density:  parbor.Density16Gbit,
		SimNs:    5e5,
		Seed:     1,
	})
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	if len(res.IPC) != 2 || res.Refreshes == 0 {
		t.Errorf("degenerate sim result: %+v", res)
	}
}

func TestFacadeListsAndDefaults(t *testing.T) {
	if got := len(parbor.Vendors()); got != 3 {
		t.Errorf("Vendors() = %d entries, want 3", got)
	}
	if got := len(parbor.SPECApps()); got != 17 {
		t.Errorf("SPECApps() = %d entries, want 17", got)
	}
	if got := len(parbor.RefreshKinds()); got != 3 {
		t.Errorf("RefreshKinds() = %d entries, want 3", got)
	}
	if err := parbor.DefaultCouplingConfig().Validate(); err != nil {
		t.Errorf("DefaultCouplingConfig invalid: %v", err)
	}
	if err := parbor.DefaultFaultsConfig().Validate(); err != nil {
		t.Errorf("DefaultFaultsConfig invalid: %v", err)
	}
	g := parbor.ExperimentGeometry()
	if g.Cols != 8192 {
		t.Errorf("ExperimentGeometry cols = %d, want 8192", g.Cols)
	}
	if parbor.DDR3_1600().TRCD != 13.75 {
		t.Error("DDR3_1600 timing wrong")
	}
}

// ExampleNewMapping shows how to inspect a vendor's ground-truth
// scrambling (available only because the chips are simulated).
func ExampleNewMapping() {
	m, err := parbor.NewMapping(parbor.VendorA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.Distances())
	left, right, _, _ := m.Neighbors(8)
	fmt.Println(left, right)
	// Output:
	// [-48 -16 -8 8 16 48]
	// 0 24
}

// ExampleNewTestTimeModel reproduces the Appendix's headline numbers.
func ExampleNewTestTimeModel() {
	m := parbor.NewTestTimeModel()
	pairwise, err := m.NaiveSearch(8192, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("O(n^2): %.0f days\n", pairwise.Hours()/24)
	fmt.Printf("O(n^3): %.0f years\n", m.NaiveSearchYears(8192, 3))
	// Output:
	// O(n^2): 50 days
	// O(n^3): 1116 years
}
