// Package parbor is a library reproduction of "PARBOR: An Efficient
// System-Level Technique to Detect Data-Dependent Failures in DRAM"
// (Khan, Lee, Mutlu; DSN 2016).
//
// It bundles three things:
//
//   - A DRAM device simulator with vendor-style internal address
//     scrambling, coupling-based data-dependent failures, and the
//     random-failure modes of real chips — the stand-in for the
//     paper's FPGA-plus-144-chips test infrastructure.
//   - The PARBOR detection algorithm itself: parallel recursive
//     neighbor-location testing plus neighbor-aware full-chip
//     testing, running strictly on the memory-controller interface.
//   - The DC-REF refresh study: a command-level DDR3 system
//     simulator comparing content-based refresh against RAIDR and
//     the uniform baseline on synthetic SPEC-like workloads.
//
// Quickstart:
//
//	mod, _ := parbor.NewModule(parbor.ModuleConfig{
//		Name:   "A1",
//		Vendor: parbor.VendorA,
//		Seed:   42,
//	})
//	host, _ := parbor.NewHost(mod, 0)
//	tester, _ := parbor.NewTester(host, parbor.DetectConfig{})
//	report, _ := tester.Run()
//	fmt.Println(report.Neighbor.Distances) // [-48 -16 -8 8 16 48]
//
// The subsystems are implemented in internal packages; this package
// re-exports the stable surface.
package parbor

import (
	"parbor/internal/chaos"
	"parbor/internal/checkpoint"
	"parbor/internal/core"
	"parbor/internal/coupling"
	"parbor/internal/dram"
	"parbor/internal/faults"
	"parbor/internal/march"
	"parbor/internal/memctl"
	"parbor/internal/obs"
	"parbor/internal/onlinetest"
	"parbor/internal/patterns"
	"parbor/internal/refresh"
	"parbor/internal/repair"
	"parbor/internal/retention"
	"parbor/internal/scramble"
	"parbor/internal/sim"
	"parbor/internal/testtime"
	"parbor/internal/trace"
)

// Vendor identifies a DRAM-internal address-scrambling profile.
type Vendor = scramble.Vendor

// The vendor profiles: A, B, C model the paper's three anonymized
// manufacturers; Linear is an unscrambled mapping; Toy is the 16-bit
// worked example of the paper's Figures 5-9.
const (
	VendorLinear = scramble.VendorLinear
	VendorA      = scramble.VendorA
	VendorB      = scramble.VendorB
	VendorC      = scramble.VendorC
	VendorToy    = scramble.VendorToy
)

// Vendors lists the three real-chip profiles.
func Vendors() []Vendor { return scramble.Vendors() }

// Mapping is a ground-truth system-to-physical address mapping
// (exposed for validation and experimentation; the detection
// algorithm never consults it).
type Mapping = scramble.Mapping

// NewMapping returns the mapping of a vendor profile.
func NewMapping(v Vendor) (*Mapping, error) { return scramble.New(v) }

// InferMapping builds one plausible physical layout consistent with a
// detected neighbor-distance set — the inverse of what detection
// measures. Useful for predicting interference tails on a chip whose
// mapping was just learned.
func InferMapping(distances []int, chunkBits int) (*Mapping, error) {
	return scramble.Infer(distances, chunkBits)
}

// MappingFromSegments builds a custom Mapping from explicit
// chunk-local physical segments, for modeling chips beyond the three
// paper vendors.
func MappingFromSegments(chunkBits int, segments [][]int) (*Mapping, error) {
	return scramble.FromSegments(VendorLinear, chunkBits, segments)
}

// Geometry describes a chip's addressable layout.
type Geometry = dram.Geometry

// CouplingConfig parameterizes the data-dependent failure model.
type CouplingConfig = coupling.Config

// DefaultCouplingConfig returns the model used by the paper
// reproduction experiments.
func DefaultCouplingConfig() CouplingConfig { return coupling.DefaultConfig() }

// FaultsConfig parameterizes the random-failure injectors (soft
// errors, VRT, marginal cells, weak cells, remapped columns).
type FaultsConfig = faults.Config

// DefaultFaultsConfig returns the injector rates used by the paper
// reproduction experiments.
func DefaultFaultsConfig() FaultsConfig { return faults.DefaultConfig() }

// ModuleConfig describes a simulated DRAM module.
type ModuleConfig = dram.ModuleConfig

// Module is a simulated DRAM module (a set of chips sharing one
// vendor profile).
type Module = dram.Module

// NewModule builds a simulated module. Zero Coupling/Faults configs
// mean "no failures"; use the Default*Config helpers for realistic
// populations.
func NewModule(cfg ModuleConfig) (*Module, error) { return dram.NewModule(cfg) }

// ExperimentGeometry is the scaled-down per-chip geometry used by
// the reproduction experiments.
func ExperimentGeometry() Geometry { return dram.ExperimentGeometry() }

// Host is the system-level test host: the only interface through
// which the detection algorithm touches a module.
type Host = memctl.Host

// Row identifies one row of one chip in a module.
type Row = memctl.Row

// BitAddr identifies one cell by system address.
type BitAddr = memctl.BitAddr

// RowSource supplies one row's pattern data for a full-module pass
// (Host.FullPassRows). The host aliases the returned slice — sources
// backed by memoized pattern rows (see NewPatternArena) make the
// sweep free of per-row pattern generation.
type RowSource = memctl.RowSource

// NewHost wraps a module in a test host. waitMs is the retention
// wait per test pass; 0 selects the paper's 4 s experimental
// interval. Per-chip work is sharded across GOMAXPROCS workers; use
// NewHostWithConfig to bound or disable the pool.
func NewHost(mod *Module, waitMs float64) (*Host, error) { return memctl.NewHost(mod, waitMs) }

// HostConfig tunes a test host: the retention wait and the
// Parallelism bound for the host's per-chip worker pool (0 =
// GOMAXPROCS, 1 = serial). Detection output is bit-identical at every
// parallelism setting.
type HostConfig = memctl.HostConfig

// NewHostWithConfig wraps a module in a test host with explicit
// tuning.
func NewHostWithConfig(mod *Module, cfg HostConfig) (*Host, error) {
	return memctl.NewHostWithConfig(mod, cfg)
}

// Recorder receives observability events (DRAM-command counts, pass
// counters, timing histograms) from an instrumented module and host.
// Attach one via ModuleConfig.Recorder and HostConfig.Recorder; nil
// disables instrumentation at near-zero cost, and results are
// bit-identical either way.
type Recorder = obs.Recorder

// Collector is the standard Recorder: atomic counters plus
// histograms, with stage accounting and a JSON report snapshot.
type Collector = obs.Collector

// ObsReport is the JSON-serializable observability report a
// Collector snapshots: config echo, per-stage wall time and command
// deltas, command totals, timing summaries, derived figures.
type ObsReport = obs.Report

// NewCollector returns an empty Collector whose wall clock starts
// now.
func NewCollector() *Collector { return obs.NewCollector() }

// ReadObsReport loads and validates a report written by
// ObsReport.WriteFile.
func ReadObsReport(path string) (*ObsReport, error) { return obs.ReadReportFile(path) }

// Timing holds DDR3 command timings for the analytic test-time
// model.
type Timing = memctl.Timing

// DDR3_1600 returns the paper's timing constants.
func DDR3_1600() Timing { return memctl.DDR3_1600() }

// DetectConfig tunes the PARBOR tester; the zero value selects the
// paper's defaults.
type DetectConfig = core.Config

// Tester runs PARBOR against one module.
type Tester = core.Tester

// NewTester builds a tester on a host.
func NewTester(host *Host, cfg DetectConfig) (*Tester, error) { return core.New(host, cfg) }

// NeighborResult is the outcome of neighbor-location detection
// (Table 1 / Figure 11 data).
type NeighborResult = core.NeighborResult

// Report is the outcome of the full PARBOR pipeline.
type Report = core.Report

// FailureSet is a set of failing cell addresses.
type FailureSet = core.FailureSet

// Victim identifies a known data-dependent victim cell.
type Victim = core.Victim

// TestTimeModel is the analytic hardware test-time model of the
// paper's Appendix.
type TestTimeModel = testtime.Model

// NewTestTimeModel returns the Appendix's model (DDR3-1600, 64 ms
// waits).
func NewTestTimeModel() TestTimeModel { return testtime.New() }

// RefreshKind selects a refresh policy for the system simulation.
type RefreshKind = refresh.Kind

// The refresh policies of the DC-REF study (Figure 16).
const (
	RefreshUniform = refresh.Uniform
	RefreshRAIDR   = refresh.RAIDR
	RefreshDCREF   = refresh.DCREF
)

// RefreshKinds lists the policies in evaluation order.
func RefreshKinds() []RefreshKind { return refresh.Kinds() }

// App is a synthetic SPEC-like workload profile.
type App = trace.App

// SPECApps returns the 17 application profiles of the DC-REF
// evaluation.
func SPECApps() []App { return trace.SPEC2006() }

// Workloads builds n random multi-programmed mixes of `cores` apps.
func Workloads(n, cores int, seed uint64) [][]App { return trace.Workloads(n, cores, seed) }

// SimConfig describes one DDR3 system-simulation run.
type SimConfig = sim.Config

// SimResult aggregates a run.
type SimResult = sim.Result

// Density selects the simulated chip density.
type Density = sim.Density

// The densities of Figure 16.
const (
	Density16Gbit = sim.Density16Gbit
	Density32Gbit = sim.Density32Gbit
)

// RunSim executes one refresh-policy simulation.
func RunSim(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// CouplingKind is the system-observable coupling class assigned by
// Tester.ClassifyVictims.
type CouplingKind = core.CouplingKind

// Victim classes (see Tester.ClassifyVictims).
const (
	KindUnknown            = core.KindUnknown
	KindContentIndependent = core.KindContentIndependent
	KindSingle             = core.KindSingle
	KindPair               = core.KindPair
)

// ClassifiedVictim pairs a victim with its probe-derived class.
type ClassifiedVictim = core.ClassifiedVictim

// Pattern is a row data pattern.
type Pattern = patterns.Pattern

// PatternArena memoizes materialized rows of uniform patterns so
// full-module passes can alias one immutable row per pattern through
// Host.FullPassRows instead of regenerating every row (DESIGN.md §9).
type PatternArena = patterns.Arena

// NewPatternArena builds an arena producing rows of the given word
// count (Geometry().Words()).
func NewPatternArena(words int) *PatternArena { return patterns.NewArena(words) }

// NeighborAwarePatterns builds the worst-case stress patterns for a
// detected distance set and scrambling chunk size (Section 5.2.5).
func NeighborAwarePatterns(distances []int, chunkBits int) ([]Pattern, error) {
	return patterns.NeighborAware(distances, chunkBits)
}

// RetentionConfig tunes the retention-time profiler.
type RetentionConfig = retention.Config

// RetentionProfiler measures per-row retention times through a host.
type RetentionProfiler = retention.Profiler

// RetentionProfile is a full module retention profile.
type RetentionProfile = retention.Profile

// NewRetentionProfiler builds a profiler on a host.
func NewRetentionProfiler(host *Host, cfg RetentionConfig) (*RetentionProfiler, error) {
	return retention.New(host, cfg)
}

// MarchTest is a classical memory March test.
type MarchTest = march.Test

// MarchEngine executes March and NPSF tests through a host.
type MarchEngine = march.Engine

// NewMarchEngine builds a March engine on a host.
func NewMarchEngine(host *Host) (*MarchEngine, error) { return march.NewEngine(host) }

// Standard March tests and the DRAM retention-delay adapter.
func MATSPlus() MarchTest    { return march.MATSPlus() }
func MarchCMinus() MarchTest { return march.MarchCMinus() }
func MarchSS() MarchTest     { return march.MarchSS() }

// WithRetentionDelays inserts retention delays before the read
// elements of a March test, the DRAM-specific adaptation.
func WithRetentionDelays(t MarchTest, delayMs float64) MarchTest {
	return march.WithRetentionDelays(t, delayMs)
}

// ContentMatcher is the bit-accurate DC-REF write-time content check.
type ContentMatcher = refresh.Matcher

// VulnerableCell describes one vulnerable cell for the matcher.
type VulnerableCell = refresh.VulnerableCell

// NewContentMatcher builds a matcher from a detected distance set.
func NewContentMatcher(distances []int, rowBits int) (*ContentMatcher, error) {
	return refresh.NewMatcher(distances, rowBits)
}

// RepairBudget is the spare-resource capacity available for failure
// mitigation (spare rows, bit-remap entries, per-word ECC).
type RepairBudget = repair.Budget

// RepairPlan assigns detected failures to mitigation mechanisms.
type RepairPlan = repair.Plan

// RepairOptions modulate planning (e.g. refresh-managed exclusions).
type RepairOptions = repair.Options

// PlanRepair allocates a mitigation budget over detected failures.
func PlanRepair(failures []BitAddr, budget RepairBudget, opts RepairOptions) (*RepairPlan, error) {
	return repair.MakePlan(failures, budget, opts)
}

// RefreshManagedSet derives, from a victim classification, the
// failures a content-based refresh policy can protect without spare
// resources.
func RefreshManagedSet(classified []ClassifiedVictim) map[BitAddr]bool {
	return repair.BuildRefreshManaged(classified)
}

// OnlineConfig tunes the in-field test scheduler, including its
// resilience policies (retry budget and backoff for transient faults).
type OnlineConfig = onlinetest.Config

// OnlineScheduler runs data-preserving test epochs against a live
// module (Section 1's in-the-field deployment setting).
type OnlineScheduler = onlinetest.Scheduler

// OnlineEpochResult summarizes one epoch, including its resilience
// accounting: retries consumed, chips quarantined, skipped and
// unrestored rows, and whether coverage was degraded.
type OnlineEpochResult = onlinetest.EpochResult

// NewOnlineScheduler builds an in-field test scheduler on a host.
func NewOnlineScheduler(host *Host, cfg OnlineConfig) (*OnlineScheduler, error) {
	return onlinetest.New(host, cfg)
}

// OnlineState is a scheduler's complete serializable progress.
type OnlineState = onlinetest.State

// ResumeOnlineScheduler rebuilds a scheduler from exported state; see
// Checkpoint for the full interrupt/resume flow.
func ResumeOnlineScheduler(host *Host, st OnlineState) (*OnlineScheduler, error) {
	return onlinetest.Resume(host, st)
}

// FaultPlane injects controller-side faults into a host's read and
// write paths (attach via HostConfig.Faults). internal/chaos provides
// the standard deterministic implementation.
type FaultPlane = memctl.FaultPlane

// ChaosConfig parameterizes the deterministic fault plane: transient
// read/write fault probabilities, shard stalls, and scheduled chip
// outages. The zero value injects nothing.
type ChaosConfig = chaos.Config

// ChaosPlane is the deterministic FaultPlane implementation.
type ChaosPlane = chaos.Plane

// ChaosWindow schedules a chip outage in host pass-attempt numbers.
type ChaosWindow = chaos.Window

// NewChaosPlane validates cfg and builds a fault plane reporting to
// rec (nil for no reporting).
func NewChaosPlane(cfg ChaosConfig, rec Recorder) (*ChaosPlane, error) {
	return chaos.New(cfg, rec)
}

// IsTransient reports whether an error from a host operation is a
// transient fault worth retrying.
func IsTransient(err error) bool { return memctl.IsTransient(err) }

// FaultedChips extracts the chip attribution from a host pass error,
// reporting ok=false when the error carries none.
func FaultedChips(err error) ([]int, bool) { return memctl.FaultedChips(err) }

// Checkpoint is a parbor/checkpoint/v1 snapshot of an online sweep:
// scheduler state plus per-chip simulation clocks, sufficient to
// resume the sweep bit-identically on a module rebuilt from the same
// configuration and seed.
type Checkpoint = checkpoint.Snapshot

// CaptureCheckpoint snapshots a mid-sweep online run. Call it between
// epochs.
func CaptureCheckpoint(mod *Module, seed uint64, st OnlineState) *Checkpoint {
	return checkpoint.Capture(mod, seed, st)
}

// ReadCheckpoint loads a snapshot written by Checkpoint.WriteFile.
func ReadCheckpoint(path string) (*Checkpoint, error) { return checkpoint.ReadFile(path) }

// ExtendedResult is the outcome of second-order neighbor detection
// (Tester.DetectExtendedNeighbors) — the generalization the paper's
// Section 3 scaling argument calls for.
type ExtendedResult = core.ExtendedResult

// TailGated filters a classification down to victims whose failures
// the immediate neighborhood could not reproduce — the inputs to
// Tester.DetectExtendedNeighbors.
func TailGated(classified []ClassifiedVictim) []Victim {
	return core.TailGated(classified)
}
