package fleetlog

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"

	"parbor/internal/faultfs"
)

// CompactStats reports what a compaction did.
type CompactStats struct {
	Events      int `json:"events"`
	Truncations int `json:"truncations"`
	SegmentsIn  int `json:"segments_in"`
	SegmentsOut int `json:"segments_out"`
}

// Compact rewrites a log directory into a fresh one: every intact
// record is re-encoded canonically into new segments of the requested
// size, and torn tails are dropped (they carry no recoverable data).
// The source is untouched; dst must not already contain segments, so
// a half-finished compaction cannot be mistaken for a complete one.
// Both sides go through opts.FS.
func Compact(srcDir, dstDir string, opts WriterOptions) (CompactStats, error) {
	opts = opts.withDefaults()
	fsys := opts.FS
	var st CompactStats
	if existing, err := listSegments(fsys, dstDir); err == nil && len(existing) > 0 {
		return st, fmt.Errorf("fleetlog: destination %s already holds %d segments", dstDir, len(existing))
	} else if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return st, fmt.Errorf("fleetlog: listing destination: %w", err)
	}
	srcSegs, err := listSegments(fsys, srcDir)
	if err != nil {
		return st, fmt.Errorf("fleetlog: listing source: %w", err)
	}
	st.SegmentsIn = len(srcSegs)

	it, err := OpenIterFS(fsys, srcDir)
	if err != nil {
		return st, err
	}
	//parbor:droperr read-side iterator close over the source log; the destination writer's errors are what matter and are checked
	defer it.Close()
	w, err := OpenWriter(dstDir, opts)
	if err != nil {
		return st, err
	}
	for {
		ev, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			w.Close()
			return st, err
		}
		if err := w.Append(ev); err != nil {
			w.Close()
			return st, err
		}
		st.Events++
	}
	if err := w.Close(); err != nil {
		return st, err
	}
	st.Truncations = len(it.Truncations())
	outSegs, err := listSegments(fsys, dstDir)
	if err != nil {
		return st, err
	}
	st.SegmentsOut = len(outSegs)
	return st, nil
}

// GC removes the oldest segments of a log directory beyond a
// retention count, returning the filenames it deleted. The newest
// keep segments survive, and the active tail segment (the
// highest-numbered one, which a live Writer may still be appending
// to) is never removed even when keep <= 0. GC is the retention
// policy for logs that have been compacted or rolled up elsewhere:
// it deletes data, so callers run it only after the rollup pipeline
// has consumed the old segments.
func GC(dir string, keep int) ([]string, error) {
	return GCFS(faultfs.OS{}, dir, keep)
}

// GCFS is GC through an explicit filesystem seam.
func GCFS(fsys faultfs.FS, dir string, keep int) ([]string, error) {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if keep < 1 {
		keep = 1 // the active tail is never collectable
	}
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("fleetlog: listing log dir: %w", err)
	}
	if len(segs) <= keep {
		return nil, nil
	}
	var removed []string
	for _, name := range segs[:len(segs)-keep] {
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
			return removed, fmt.Errorf("fleetlog: removing %s: %w", name, err)
		}
		removed = append(removed, name)
	}
	return removed, nil
}
