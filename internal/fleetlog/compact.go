package fleetlog

import (
	"fmt"
	"io"
	"os"
)

// CompactStats reports what a compaction did.
type CompactStats struct {
	Events      int `json:"events"`
	Truncations int `json:"truncations"`
	SegmentsIn  int `json:"segments_in"`
	SegmentsOut int `json:"segments_out"`
}

// Compact rewrites a log directory into a fresh one: every intact
// record is re-encoded canonically into new segments of the requested
// size, and torn tails are dropped (they carry no recoverable data).
// The source is untouched; dst must not already contain segments, so
// a half-finished compaction cannot be mistaken for a complete one.
func Compact(srcDir, dstDir string, opts WriterOptions) (CompactStats, error) {
	var st CompactStats
	if existing, err := listSegments(dstDir); err == nil && len(existing) > 0 {
		return st, fmt.Errorf("fleetlog: destination %s already holds %d segments", dstDir, len(existing))
	} else if err != nil && !os.IsNotExist(err) {
		return st, fmt.Errorf("fleetlog: listing destination: %w", err)
	}
	srcSegs, err := listSegments(srcDir)
	if err != nil {
		return st, fmt.Errorf("fleetlog: listing source: %w", err)
	}
	st.SegmentsIn = len(srcSegs)

	it, err := OpenIter(srcDir)
	if err != nil {
		return st, err
	}
	defer it.Close()
	w, err := OpenWriter(dstDir, opts)
	if err != nil {
		return st, err
	}
	for {
		ev, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			w.Close()
			return st, err
		}
		if err := w.Append(ev); err != nil {
			w.Close()
			return st, err
		}
		st.Events++
	}
	if err := w.Close(); err != nil {
		return st, err
	}
	st.Truncations = len(it.Truncations())
	outSegs, err := listSegments(dstDir)
	if err != nil {
		return st, err
	}
	st.SegmentsOut = len(outSegs)
	return st, nil
}
