package fleetlog

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"parbor/internal/memctl"
)

// The differential oracle: the streaming, spill-and-merge classifier
// must be bit-identical to the obvious in-memory implementation, for
// every event-order permutation, every segment size, every memory
// budget, and under duplicated (crash-replayed) events. The oracle
// holds everything in nested maps — O(events) memory, which is exactly
// what the real classifier is not allowed to use.

// oracleRollup is the naive reference implementation.
func oracleRollup(events []Event) *Rollup {
	type modState struct {
		epochs map[int]struct{}
		obs    map[memctl.BitAddr]map[int]struct{}
	}
	mods := make(map[string]*modState)
	for _, ev := range events {
		ms := mods[ev.Module]
		if ms == nil {
			ms = &modState{
				epochs: make(map[int]struct{}),
				obs:    make(map[memctl.BitAddr]map[int]struct{}),
			}
			mods[ev.Module] = ms
		}
		ms.epochs[ev.Epoch] = struct{}{}
		for _, a := range ev.Fails {
			if ms.obs[a] == nil {
				ms.obs[a] = make(map[int]struct{})
			}
			ms.obs[a][ev.Epoch] = struct{}{}
		}
	}

	r := &Rollup{Schema: RollupSchema, Events: len(events), Modules: len(mods)}
	names := make([]string, 0, len(mods))
	for name := range mods {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ms := mods[name]
		mr := ModuleRollup{Module: name, Epochs: len(ms.epochs)}
		type bankKey struct{ chip, bank int16 }
		groups := make(map[bankKey][]memctl.BitAddr)
		for a, epochs := range ms.obs {
			mr.Failures++
			mr.Observations += len(epochs)
			if len(epochs) >= 2 {
				mr.Permanent++
			} else {
				mr.Transient++
			}
			k := bankKey{a.Chip, a.Bank}
			groups[k] = append(groups[k], a)
		}
		for _, g := range groups {
			oneRow, oneCol := true, true
			for _, a := range g[1:] {
				if a.Row != g[0].Row {
					oneRow = false
				}
				if a.Col != g[0].Col {
					oneCol = false
				}
			}
			mode := ModeMultiCell
			switch {
			case len(g) == 1:
				mode = ModeSingleBit
			case oneRow:
				mode = ModeSingleRow
			case oneCol:
				mode = ModeSingleColumn
			}
			if mr.ByMode == nil {
				mr.ByMode = make(map[string]int)
			}
			mr.ByMode[mode]++
		}
		r.Epochs += mr.Epochs
		r.Failures += mr.Failures
		r.Observations += mr.Observations
		r.Transient += mr.Transient
		r.Permanent += mr.Permanent
		if mr.Failures > 0 {
			r.FailingModules++
		}
		for mode, n := range mr.ByMode {
			if r.ByMode == nil {
				r.ByMode = make(map[string]int)
			}
			r.ByMode[mode] += n
		}
		r.PerModule = append(r.PerModule, mr)
	}
	return r
}

// genEvents draws a random workload from a deliberately small
// coordinate space, so cells repeat across epochs (permanent faults),
// rows and columns collide (every fault mode appears), and events
// carry unsorted and duplicated failure lists (codec stress).
func genEvents(r *rand.Rand, nMods, nEvents int) []Event {
	evs := make([]Event, 0, nEvents)
	for i := 0; i < nEvents; i++ {
		ev := Event{
			Module: fmt.Sprintf("mod-%02d", r.Intn(nMods)),
			Epoch:  1 + r.Intn(6),
		}
		for j, n := 0, r.Intn(6); j < n; j++ {
			ev.Fails = append(ev.Fails, memctl.BitAddr{
				Chip: int16(r.Intn(3)),
				Bank: int16(r.Intn(3)),
				Row:  int32(r.Intn(8)),
				Col:  int32(r.Intn(8)),
			})
		}
		evs = append(evs, ev)
	}
	return evs
}

// classifyEvents runs the streaming classifier over a slice.
func classifyEvents(t *testing.T, events []Event, cfg ClassifierConfig) *Rollup {
	t.Helper()
	c, err := NewClassifier(cfg)
	if err != nil {
		t.Fatalf("NewClassifier: %v", err)
	}
	defer c.Close()
	for _, ev := range events {
		if err := c.Observe(ev); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	r, err := c.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return r
}

func diffRollups(t *testing.T, label string, got, want *Rollup) {
	t.Helper()
	if reflect.DeepEqual(got, want) {
		return
	}
	g, _ := json.MarshalIndent(got, "", "  ")
	w, _ := json.MarshalIndent(want, "", "  ")
	t.Fatalf("%s: classifier diverged from oracle:\ngot  %s\nwant %s", label, g, w)
}

func TestDifferentialOracle(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			events := genEvents(r, 2+r.Intn(8), 50+r.Intn(200))
			want := oracleRollup(events)

			// Direct streaming, across memory budgets down to a budget
			// that spills on nearly every add.
			for _, maxKeys := range []int{0, 2, 7} {
				got := classifyEvents(t, events, ClassifierConfig{MaxKeys: maxKeys, SpillDir: t.TempDir()})
				diffRollups(t, fmt.Sprintf("maxKeys=%d", maxKeys), got, want)
			}

			// Order permutation: same multiset, shuffled.
			shuffled := append([]Event(nil), events...)
			r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			got := classifyEvents(t, shuffled, ClassifierConfig{MaxKeys: 3, SpillDir: t.TempDir()})
			diffRollups(t, "shuffled", got, want)

			// Duplication: every event replayed, as a crashed daemon
			// would. Only the raw Events count may change.
			doubled := append(append([]Event(nil), events...), events...)
			r.Shuffle(len(doubled), func(i, j int) { doubled[i], doubled[j] = doubled[j], doubled[i] })
			got = classifyEvents(t, doubled, ClassifierConfig{MaxKeys: 5, SpillDir: t.TempDir()})
			diffRollups(t, "doubled vs oracle", got, oracleRollup(doubled))
			got.Events = want.Events
			diffRollups(t, "doubled vs original set", got, want)

			// Through the log: write, read back, classify — across
			// segment sizes, so record/segment splits move everywhere.
			for _, segBytes := range []int64{0, 32, 512} {
				dir := t.TempDir()
				w, err := OpenWriter(dir, WriterOptions{SegmentBytes: segBytes})
				if err != nil {
					t.Fatalf("OpenWriter: %v", err)
				}
				for _, ev := range events {
					if err := w.Append(ev); err != nil {
						t.Fatalf("Append: %v", err)
					}
				}
				if err := w.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				got, err := Analyze(dir, ClassifierConfig{MaxKeys: 4, SpillDir: t.TempDir()})
				if err != nil {
					t.Fatalf("Analyze: %v", err)
				}
				diffRollups(t, fmt.Sprintf("segBytes=%d", segBytes), got, want)
			}
		})
	}
}

// TestDifferentialMillionEventsSpill is the acceptance-scale run: a
// million-event log classified under a memory budget (1<<16 keys) far
// smaller than the distinct-key population, forcing the full
// spill-and-merge path, and still bit-identical to the in-memory
// oracle. The oracle itself stays cheap because the *distinct* cell
// population is bounded even though the event stream is not — which is
// the whole point of the design.
func TestDifferentialMillionEventsSpill(t *testing.T) {
	if testing.Short() {
		t.Skip("million-event differential run")
	}
	const nEvents = 1_000_000
	r := rand.New(rand.NewSource(42))
	dir := t.TempDir()
	w, err := OpenWriter(dir, WriterOptions{})
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	type modState struct {
		epochs map[int]struct{}
		obs    map[memctl.BitAddr]map[int]struct{}
	}
	oracle := make(map[string]*modState)

	// Stream generation: each event goes to the log and the oracle;
	// the full slice never exists.
	for i := 0; i < nEvents; i++ {
		ev := Event{
			Module: fmt.Sprintf("mod-%03d", r.Intn(64)),
			Epoch:  1 + r.Intn(32),
		}
		for j, n := 0, r.Intn(8); j < n; j++ {
			ev.Fails = append(ev.Fails, memctl.BitAddr{
				Chip: int16(r.Intn(4)),
				Bank: int16(r.Intn(4)),
				Row:  int32(r.Intn(64)),
				Col:  int32(r.Intn(64)),
			})
		}
		if err := w.Append(ev); err != nil {
			t.Fatalf("Append: %v", err)
		}
		ms := oracle[ev.Module]
		if ms == nil {
			ms = &modState{epochs: make(map[int]struct{}), obs: make(map[memctl.BitAddr]map[int]struct{})}
			oracle[ev.Module] = ms
		}
		ms.epochs[ev.Epoch] = struct{}{}
		for _, a := range ev.Fails {
			if ms.obs[a] == nil {
				ms.obs[a] = make(map[int]struct{})
			}
			ms.obs[a][ev.Epoch] = struct{}{}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, err := Analyze(dir, ClassifierConfig{MaxKeys: 1 << 16, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if got.Events != nEvents {
		t.Fatalf("folded %d events, want %d", got.Events, nEvents)
	}
	// Rollup.Observations counts distinct (module, cell, epoch) keys —
	// exactly the observation spill set's population — so it proves the
	// in-memory budget was truly exceeded and spill-and-merge ran.
	if got.Observations <= 1<<16 {
		t.Fatalf("workload has only %d distinct observations; spill not forced", got.Observations)
	}

	// Check the oracle's totals against the streamed result without
	// rebuilding the full Rollup struct: totals plus every per-module
	// record.
	byName := make(map[string]ModuleRollup, len(got.PerModule))
	for _, mr := range got.PerModule {
		byName[mr.Module] = mr
	}
	if len(byName) != len(oracle) {
		t.Fatalf("classified %d modules, oracle saw %d", len(byName), len(oracle))
	}
	for name, ms := range oracle {
		mr, ok := byName[name]
		if !ok {
			t.Fatalf("module %s missing from rollup", name)
		}
		if mr.Epochs != len(ms.epochs) {
			t.Errorf("%s: epochs %d, want %d", name, mr.Epochs, len(ms.epochs))
		}
		if mr.Failures != len(ms.obs) {
			t.Errorf("%s: failures %d, want %d", name, mr.Failures, len(ms.obs))
		}
		obsTotal, perm := 0, 0
		for _, epochs := range ms.obs {
			obsTotal += len(epochs)
			if len(epochs) >= 2 {
				perm++
			}
		}
		if mr.Observations != obsTotal || mr.Permanent != perm || mr.Transient != len(ms.obs)-perm {
			t.Errorf("%s: obs/perm/trans %d/%d/%d, want %d/%d/%d", name,
				mr.Observations, mr.Permanent, mr.Transient, obsTotal, perm, len(ms.obs)-perm)
		}
	}
}
