package fleetlog

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fuzzSeedPayloads returns canonical encodings of the test corpus, so
// the fuzzer starts from valid payloads and mutates outward.
func fuzzSeedPayloads(tb testing.TB) [][]byte {
	tb.Helper()
	var seeds [][]byte
	for _, ev := range testEvents() {
		p, err := AppendEvent(nil, ev)
		if err != nil {
			tb.Fatalf("seeding: %v", err)
		}
		seeds = append(seeds, p)
	}
	return seeds
}

// FuzzFleetlogCodec: any payload DecodeEvent accepts must re-encode to
// the identical bytes (canonical order is part of the format), decode
// again to a deeply equal event, and never make the decoder allocate
// beyond what the payload itself can hold — a hostile header claiming
// 2^40 failures in a 10-byte payload must be rejected, not trusted.
func FuzzFleetlogCodec(f *testing.F) {
	for _, p := range fuzzSeedPayloads(f) {
		f.Add(p)
	}
	f.Add([]byte{})
	f.Add([]byte{0x01, 'm', 0x00, 0xff, 0xff, 0xff, 0xff, 0x0f}) // huge claimed count
	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := DecodeEvent(data)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		// Accepted payloads are canonical: re-encoding is byte-identical.
		re, err := AppendEvent(nil, ev)
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		if string(re) != string(data) {
			t.Fatalf("re-encode drifted:\nin  %x\nout %x", data, re)
		}
		ev2, err := DecodeEvent(re)
		if err != nil {
			t.Fatalf("re-encoded payload rejected: %v", err)
		}
		if !reflect.DeepEqual(ev, ev2) {
			t.Fatalf("decode/encode/decode drifted:\n%+v\nvs\n%+v", ev, ev2)
		}
		// The decoder's failure allocation is bounded by the payload:
		// four varint bytes minimum per failure.
		if len(ev.Fails) > len(data)/4 {
			t.Fatalf("decoder allocated %d failures from a %d-byte payload", len(ev.Fails), len(data))
		}
	})
}

// FuzzFleetlogReader: arbitrary bytes dropped into a segment file must
// never panic the iterator — every outcome is a clean stream end, a
// recorded truncation, or a corruption error.
func FuzzFleetlogReader(f *testing.F) {
	// Seed with a real segment (whole, then mangled), plus edge shapes.
	dir := f.TempDir()
	w, err := OpenWriter(dir, WriterOptions{})
	if err != nil {
		f.Fatal(err)
	}
	for _, ev := range testEvents() {
		if err := w.Append(ev); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	seg, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seg)
	f.Add(seg[:len(seg)-3])
	f.Add(append([]byte{}, segHeader()...))
	f.Add([]byte{})
	f.Add([]byte("PBFL\x01\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		it, err := OpenIter(dir)
		if err != nil {
			t.Fatalf("OpenIter on a present directory: %v", err)
		}
		defer it.Close()
		events := 0
		for {
			_, err := it.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // hard corruption is a legitimate verdict
			}
			events++
		}
		// A drained stream's bookkeeping must agree with what it
		// returned, and a segment cannot yield both a full clean read
		// and a truncation.
		if it.Events() != events {
			t.Fatalf("iterator counted %d events, returned %d", it.Events(), events)
		}
		if len(it.Truncations()) > 1 {
			t.Fatalf("single segment reported %d truncations", len(it.Truncations()))
		}
	})
}
