package fleetlog

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"parbor/internal/faultfs"
	"parbor/internal/memctl"
)

// RollupSchema identifies the out-of-core analytics JSON layout.
const RollupSchema = "parbor/fleetlog-rollup/v1"

// ModuleRollup is one module's classification, folded from every
// logged epoch.
type ModuleRollup struct {
	Module string `json:"module"`
	// Epochs counts the distinct completed epochs the log holds for
	// this module (replayed duplicates collapse).
	Epochs int `json:"epochs"`
	// Failures counts distinct failing cells; Observations counts
	// distinct (cell, epoch) sightings, so Observations/Failures is
	// the mean repeat rate.
	Failures     int `json:"failures"`
	Observations int `json:"observations"`
	// Transient cells were observed failing in exactly one epoch;
	// Permanent cells repeated across epochs — the field-study
	// repeat-observation split.
	Transient int `json:"transient,omitempty"`
	Permanent int `json:"permanent,omitempty"`
	// ByMode buckets the module's distinct failing cells into
	// per-(chip,bank) fault-mode populations, with the same grouping
	// rules as the live fleet rollup.
	ByMode map[string]int `json:"by_mode,omitempty"`
}

// Rollup is the whole log's classification.
type Rollup struct {
	Schema string `json:"schema"`
	// Events is the number of raw events folded (including replayed
	// duplicates); Truncations counts recovered torn tails when the
	// rollup came from Analyze.
	Events      int `json:"events"`
	Truncations int `json:"truncations,omitempty"`
	// Fleet-wide totals over PerModule.
	Modules        int            `json:"modules"`
	FailingModules int            `json:"failing_modules"`
	Epochs         int            `json:"epochs"`
	Failures       int            `json:"failures"`
	Observations   int            `json:"observations"`
	Transient      int            `json:"transient,omitempty"`
	Permanent      int            `json:"permanent,omitempty"`
	ByMode         map[string]int `json:"by_mode,omitempty"`
	// PerModule is sorted by module ID for canonical output.
	PerModule []ModuleRollup `json:"per_module,omitempty"`
}

// ClassifierConfig bounds the classifier's memory.
type ClassifierConfig struct {
	// MaxKeys is the in-memory key budget per spill set before a
	// sorted run is flushed to disk; <= 0 selects 1<<20 (about 20 MiB
	// of keys per set). The differential suite runs it down to a few
	// keys; results are identical, only spill traffic changes.
	MaxKeys int
	// SpillDir holds the temporary sorted runs. Empty selects a fresh
	// os.MkdirTemp directory that is removed on Finish/Close.
	SpillDir string
	// FS is the filesystem seam spill runs and (via Analyze) segment
	// reads go through; nil selects the real filesystem.
	FS faultfs.FS
}

// Classifier folds a stream of events into a Rollup with O(modules)
// heap state: per-event keys go into two deduplicating spill sets
// ((module, cell, epoch) observations and (module, epoch) pairs), and
// Finish streams their sorted merge through a constant-state group
// fold. The result is a pure function of the event set — order,
// duplication, segmentation, and memory budget cannot change a byte
// of it.
type Classifier struct {
	cfg      ClassifierConfig
	spillDir string
	ownDir   bool
	modIDs   map[string]uint32
	names    []string
	events   int
	obs      *spillSet
	epochs   *spillSet
	done     bool
}

// NewClassifier builds a classifier; call Close if Finish is never
// reached, or spill files leak.
func NewClassifier(cfg ClassifierConfig) (*Classifier, error) {
	if cfg.MaxKeys <= 0 {
		cfg.MaxKeys = 1 << 20
	}
	dir, own := cfg.SpillDir, false
	if dir == "" {
		d, err := os.MkdirTemp("", "fleetlog-spill-")
		if err != nil {
			return nil, fmt.Errorf("fleetlog: creating spill dir: %w", err)
		}
		dir, own = d, true
	}
	return &Classifier{
		cfg:      cfg,
		spillDir: dir,
		ownDir:   own,
		modIDs:   make(map[string]uint32),
		obs:      newSpillSet(cfg.FS, cfg.MaxKeys, dir, "obs"),
		epochs:   newSpillSet(cfg.FS, cfg.MaxKeys, dir, "epoch"),
	}, nil
}

// modID interns a module name.
func (c *Classifier) modID(name string) (uint32, error) {
	if id, ok := c.modIDs[name]; ok {
		return id, nil
	}
	if len(c.names) >= math.MaxUint32 {
		return 0, fmt.Errorf("fleetlog: module population overflow")
	}
	id := uint32(len(c.names))
	c.modIDs[name] = id
	c.names = append(c.names, name)
	return id, nil
}

// Key packing: big-endian fields so bytewise order equals tuple
// order. Observation keys group by (module, chip, bank, row, col)
// with epoch last; epoch keys use only the first eight bytes.
func packObs(mod uint32, a memctl.BitAddr, epoch uint32) spillKey {
	var k spillKey
	binary.BigEndian.PutUint32(k[0:4], mod)
	binary.BigEndian.PutUint16(k[4:6], uint16(a.Chip))
	binary.BigEndian.PutUint16(k[6:8], uint16(a.Bank))
	binary.BigEndian.PutUint32(k[8:12], uint32(a.Row))
	binary.BigEndian.PutUint32(k[12:16], uint32(a.Col))
	binary.BigEndian.PutUint32(k[16:20], epoch)
	return k
}

func packEpoch(mod, epoch uint32) spillKey {
	var k spillKey
	binary.BigEndian.PutUint32(k[0:4], mod)
	binary.BigEndian.PutUint32(k[4:8], epoch)
	return k
}

// Observe folds one event in. Events may arrive in any order and any
// number of times.
func (c *Classifier) Observe(ev Event) error {
	if c.done {
		return fmt.Errorf("fleetlog: classifier already finished")
	}
	if ev.Module == "" {
		return fmt.Errorf("fleetlog: event with empty module id")
	}
	if ev.Epoch < 0 || ev.Epoch > math.MaxUint32 {
		return fmt.Errorf("fleetlog: module %s: epoch %d out of range", ev.Module, ev.Epoch)
	}
	mod, err := c.modID(ev.Module)
	if err != nil {
		return err
	}
	epoch := uint32(ev.Epoch)
	if err := c.epochs.add(packEpoch(mod, epoch)); err != nil {
		return err
	}
	for _, a := range ev.Fails {
		if a.Chip < 0 || a.Bank < 0 || a.Row < 0 || a.Col < 0 {
			return fmt.Errorf("fleetlog: module %s: negative failure coordinate %+v", ev.Module, a)
		}
		if err := c.obs.add(packObs(mod, a, epoch)); err != nil {
			return err
		}
	}
	c.events++
	return nil
}

// bankAgg mirrors the live fleet's per-(chip,bank) grouping state.
type bankAgg struct {
	n        int
	row, col int32
	oneRow   bool
	oneCol   bool
	first    bool
}

func (g *bankAgg) reset() { *g = bankAgg{oneRow: true, oneCol: true} }

func (g *bankAgg) addAddr(row, col int32) {
	if !g.first {
		g.row, g.col, g.first = row, col, true
	} else {
		if row != g.row {
			g.oneRow = false
		}
		if col != g.col {
			g.oneCol = false
		}
	}
	g.n++
}

// mode classifies a finished bank group, identically to the live
// fleet rollup: one cell is a single-bit fault; a multi-cell group
// confined to one row (column) is a single-row (single-column) fault;
// anything else is a scattered multi-cell population.
func (g *bankAgg) mode() string {
	switch {
	case g.n == 1:
		return ModeSingleBit
	case g.oneRow:
		return ModeSingleRow
	case g.oneCol:
		return ModeSingleColumn
	default:
		return ModeMultiCell
	}
}

// Finish merges the spill sets and folds the sorted streams into the
// rollup. The classifier is consumed.
func (c *Classifier) Finish() (*Rollup, error) {
	if c.done {
		return nil, fmt.Errorf("fleetlog: classifier already finished")
	}
	c.done = true
	//parbor:droperr classifier close releases scratch spill state re-derived on the next run; the rollup is already merged
	defer c.Close()

	// Distinct completed epochs per module.
	epochCount := make(map[uint32]int, len(c.names))
	if err := c.epochs.merge(func(k spillKey) error {
		epochCount[binary.BigEndian.Uint32(k[0:4])]++
		return nil
	}); err != nil {
		return nil, err
	}

	// Group fold over (module, chip, bank, row, col, epoch)-sorted
	// observations: constant state — the current cell run and the
	// current bank group.
	perMod := make(map[uint32]*ModuleRollup, len(c.names))
	get := func(mod uint32) *ModuleRollup {
		mr := perMod[mod]
		if mr == nil {
			mr = &ModuleRollup{Module: c.names[mod]}
			perMod[mod] = mr
		}
		return mr
	}
	var (
		prev       spillKey
		have       bool
		addrEpochs int
		bank       bankAgg
	)
	sameAddr := func(a, b spillKey) bool { return [16]byte(a[:16]) == [16]byte(b[:16]) }
	sameBank := func(a, b spillKey) bool { return [8]byte(a[:8]) == [8]byte(b[:8]) }
	endAddr := func(k spillKey) {
		mr := get(binary.BigEndian.Uint32(k[0:4]))
		mr.Failures++
		mr.Observations += addrEpochs
		if addrEpochs >= 2 {
			mr.Permanent++
		} else {
			mr.Transient++
		}
		bank.addAddr(int32(binary.BigEndian.Uint32(k[8:12])), int32(binary.BigEndian.Uint32(k[12:16])))
	}
	endBank := func(k spillKey) {
		mr := get(binary.BigEndian.Uint32(k[0:4]))
		if mr.ByMode == nil {
			mr.ByMode = make(map[string]int)
		}
		mr.ByMode[bank.mode()]++
		bank.reset()
	}
	bank.reset()
	if err := c.obs.merge(func(k spillKey) error {
		if have && !sameAddr(prev, k) {
			endAddr(prev)
			if !sameBank(prev, k) {
				endBank(prev)
			}
			addrEpochs = 0
		}
		addrEpochs++
		prev, have = k, true
		return nil
	}); err != nil {
		return nil, err
	}
	if have {
		endAddr(prev)
		endBank(prev)
	}

	// Assemble: every module that appeared in any event is listed,
	// failing or not, in canonical (ID) order.
	r := &Rollup{Schema: RollupSchema, Events: c.events, Modules: len(c.names)}
	r.PerModule = make([]ModuleRollup, 0, len(c.names))
	for id := range c.names {
		mr := perMod[uint32(id)]
		if mr == nil {
			mr = &ModuleRollup{Module: c.names[id]}
		}
		mr.Epochs = epochCount[uint32(id)]
		r.Epochs += mr.Epochs
		r.Failures += mr.Failures
		r.Observations += mr.Observations
		r.Transient += mr.Transient
		r.Permanent += mr.Permanent
		if mr.Failures > 0 {
			r.FailingModules++
		}
		for mode, n := range mr.ByMode {
			if r.ByMode == nil {
				r.ByMode = make(map[string]int)
			}
			r.ByMode[mode] += n
		}
		r.PerModule = append(r.PerModule, *mr)
	}
	sort.Slice(r.PerModule, func(i, j int) bool { return r.PerModule[i].Module < r.PerModule[j].Module })
	if len(r.PerModule) == 0 {
		r.PerModule = nil
	}
	return r, nil
}

// Close releases spill state. Idempotent; Finish calls it.
func (c *Classifier) Close() error {
	c.obs.cleanup()
	c.epochs.cleanup()
	if c.ownDir && c.spillDir != "" {
		os.RemoveAll(c.spillDir)
		c.spillDir = ""
	}
	return nil
}

// Analyze streams a whole log directory through a classifier: the
// offline half of the analytics pipeline (parborlog, and the
// daemon's /v1/analytics endpoint).
func Analyze(dir string, cfg ClassifierConfig) (*Rollup, error) {
	it, err := OpenIterFS(cfg.FS, dir)
	if err != nil {
		return nil, err
	}
	//parbor:droperr read-side iterator close; every event already streamed or the stream errored
	defer it.Close()
	c, err := NewClassifier(cfg)
	if err != nil {
		return nil, err
	}
	//parbor:droperr classifier close releases scratch spill state; Finish already returned the rollup or an error
	defer c.Close()
	for {
		ev, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := c.Observe(ev); err != nil {
			return nil, err
		}
	}
	r, err := c.Finish()
	if err != nil {
		return nil, err
	}
	r.Truncations = len(it.Truncations())
	return r, nil
}
