package fleetlog

import (
	"bufio"
	"bytes"
	"container/heap"
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"parbor/internal/faultfs"
)

// The classifier's working set is a *set* of fixed-size sort keys:
// one per distinct (module, cell, epoch) observation and one per
// distinct (module, epoch) pair. Sets make the pipeline a pure
// function of the event set — replayed duplicate events (a daemon
// killed after logging an epoch but before persisting its checkpoint
// re-runs and re-logs the identical epoch) deduplicate away, and
// event order cannot matter.
//
// keyBytes packs (module uint32, chip uint16, bank uint16, row
// uint32, col uint32, epoch uint32) big-endian, so bytewise key order
// equals (module, chip, bank, row, col, epoch) tuple order and the
// merged stream arrives pre-grouped for the classifier's fold. All
// packed fields are validated non-negative first.
const keyBytes = 20

type spillKey [keyBytes]byte

// spillSet is a deduplicating set of spillKeys with bounded memory:
// at most limit keys are held in the in-memory map; beyond that the
// map is sorted and flushed to a run file, and merge() streams the
// union of all runs plus the residue in sorted order. Disk usage is
// O(total distinct-ish keys); memory stays O(limit + runs).
type spillSet struct {
	fsys   faultfs.FS
	limit  int
	dir    string
	prefix string
	mem    map[spillKey]struct{}
	runs   []string
	// spilled counts keys written to runs (with cross-run duplicates),
	// for diagnostics.
	spilled int
}

func newSpillSet(fsys faultfs.FS, limit int, dir, prefix string) *spillSet {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	return &spillSet{
		fsys:   fsys,
		limit:  limit,
		dir:    dir,
		prefix: prefix,
		mem:    make(map[spillKey]struct{}, min(limit, 1<<16)),
	}
}

// add inserts a key, spilling the in-memory set to a run file when
// the budget is exceeded.
func (s *spillSet) add(k spillKey) error {
	s.mem[k] = struct{}{}
	if len(s.mem) >= s.limit {
		return s.spill()
	}
	return nil
}

// spill sorts the in-memory keys and writes them as one run.
func (s *spillSet) spill() error {
	if len(s.mem) == 0 {
		return nil
	}
	keys := s.sortedMem()
	// The spill dir is scratch space the caller merely names (e.g.
	// parborlog -spill); create it on first use rather than demanding
	// it exists.
	if err := s.fsys.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("fleetlog: creating spill dir: %w", err)
	}
	path := filepath.Join(s.dir, fmt.Sprintf("%s-%06d.run", s.prefix, len(s.runs)))
	f, err := s.fsys.Create(path)
	if err != nil {
		return fmt.Errorf("fleetlog: creating spill run: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	for _, k := range keys {
		if _, err := bw.Write(k[:]); err != nil {
			f.Close()
			return fmt.Errorf("fleetlog: writing spill run: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("fleetlog: flushing spill run: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("fleetlog: closing spill run: %w", err)
	}
	s.runs = append(s.runs, path)
	s.spilled += len(keys)
	s.mem = make(map[spillKey]struct{}, min(s.limit, 1<<16))
	return nil
}

func (s *spillSet) sortedMem() []spillKey {
	keys := make([]spillKey, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i][:], keys[j][:]) < 0 })
	return keys
}

// runCursor is one merge source: a spilled run file or the in-memory
// residue.
type runCursor struct {
	br  *bufio.Reader // nil for the in-memory residue
	f   faultfs.File
	mem []spillKey
	pos int
	cur spillKey
	ok  bool
}

func (c *runCursor) advance() error {
	if c.br == nil {
		if c.pos >= len(c.mem) {
			c.ok = false
			return nil
		}
		c.cur = c.mem[c.pos]
		c.pos++
		return nil
	}
	_, err := io.ReadFull(c.br, c.cur[:])
	if err == io.EOF {
		c.ok = false
		return nil
	}
	if err != nil {
		return fmt.Errorf("fleetlog: reading spill run: %w", err)
	}
	return nil
}

// cursorHeap is a min-heap of merge sources by current key.
type cursorHeap []*runCursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	return bytes.Compare(h[i].cur[:], h[j].cur[:]) < 0
}
func (h cursorHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x any)   { *h = append(*h, x.(*runCursor)) }
func (h *cursorHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// merge streams the set's distinct keys in sorted order through
// yield: a k-way heap merge of every run file plus the in-memory
// residue, with equal keys across sources collapsed. The set is
// consumed; run files are removed as they drain.
func (s *spillSet) merge(yield func(spillKey) error) error {
	h := make(cursorHeap, 0, len(s.runs)+1)
	defer func() {
		for _, c := range h {
			if c.f != nil {
				//parbor:droperr read-side close of a scratch spill run removed by the cleanup below
				c.f.Close()
			}
		}
		s.cleanup()
	}()
	for _, path := range s.runs {
		f, err := s.fsys.Open(path)
		if err != nil {
			return fmt.Errorf("fleetlog: opening spill run: %w", err)
		}
		c := &runCursor{br: bufio.NewReaderSize(f, 1<<16), f: f, ok: true}
		if err := c.advance(); err != nil {
			return err
		}
		if c.ok {
			h = append(h, c)
		} else {
			//parbor:droperr read-side close of an empty scratch spill run; nothing was or will be read from it
			f.Close()
		}
	}
	if len(s.mem) > 0 {
		c := &runCursor{mem: s.sortedMem(), ok: true}
		c.advance()
		h = append(h, c)
	}
	s.mem = nil
	heap.Init(&h)
	var last spillKey
	haveLast := false
	for len(h) > 0 {
		c := h[0]
		k := c.cur
		if err := c.advance(); err != nil {
			return err
		}
		if c.ok {
			heap.Fix(&h, 0)
		} else {
			if c.f != nil {
				//parbor:droperr read-side close of a fully drained scratch spill run; its bytes are already merged
				c.f.Close()
				c.f = nil
			}
			heap.Pop(&h)
		}
		if haveLast && k == last {
			continue // duplicate across sources
		}
		last, haveLast = k, true
		if err := yield(k); err != nil {
			return err
		}
	}
	return nil
}

// cleanup removes any remaining run files.
func (s *spillSet) cleanup() {
	for _, path := range s.runs {
		s.fsys.Remove(path)
	}
	s.runs = nil
}
