package fleetlog

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"parbor/internal/faultfs"
	"parbor/internal/memctl"
)

func addr(chip, bank, row, col int) memctl.BitAddr {
	return memctl.BitAddr{Chip: int16(chip), Bank: int16(bank), Row: int32(row), Col: int32(col)}
}

// testEvents is a small fixed corpus covering the interesting shapes:
// empty epochs, single failures, dense same-row runs, multi-module
// interleave, repeat observations across epochs.
func testEvents() []Event {
	return []Event{
		{Module: "mod-a", Epoch: 1, Fails: []memctl.BitAddr{addr(0, 0, 3, 7)}},
		{Module: "mod-a", Epoch: 2},
		{Module: "mod-b", Epoch: 1, Fails: []memctl.BitAddr{
			addr(0, 0, 5, 1), addr(0, 0, 5, 9), addr(0, 0, 5, 40),
			addr(1, 1, 2, 2), addr(1, 1, 9, 2),
		}},
		{Module: "mod-a", Epoch: 3, Fails: []memctl.BitAddr{addr(0, 0, 3, 7), addr(1, 0, 4, 4)}},
		{Module: "mod-b", Epoch: 2, Fails: []memctl.BitAddr{addr(0, 0, 5, 9)}},
		{Module: "mod-c", Epoch: 9},
	}
}

// readAll drains a log directory.
func readAll(t *testing.T, dir string) ([]Event, []Truncation) {
	t.Helper()
	it, err := OpenIter(dir)
	if err != nil {
		t.Fatalf("OpenIter: %v", err)
	}
	defer it.Close()
	var evs []Event
	for {
		ev, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		evs = append(evs, ev)
	}
	return evs, it.Truncations()
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, WriterOptions{})
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	want := testEvents()
	for _, ev := range want {
		if err := w.Append(ev); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, truncs := readAll(t, dir)
	if len(truncs) != 0 {
		t.Fatalf("clean log reported truncations: %+v", truncs)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip drifted:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestWriterRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	// A tiny segment cap forces a rotation on nearly every record.
	w, err := OpenWriter(dir, WriterOptions{SegmentBytes: 32})
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	want := testEvents()
	half := len(want) / 2
	for _, ev := range want[:half] {
		if err := w.Append(ev); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Reopen and continue: the log is one stream across the restart.
	w, err = OpenWriter(dir, WriterOptions{SegmentBytes: 32})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for _, ev := range want[half:] {
		if err := w.Append(ev); err != nil {
			t.Fatalf("Append after reopen: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(faultfs.OS{}, dir)
	if err != nil {
		t.Fatalf("listSegments: %v", err)
	}
	if len(segs) < 3 {
		t.Fatalf("32-byte cap produced only %d segments", len(segs))
	}
	got, truncs := readAll(t, dir)
	if len(truncs) != 0 {
		t.Fatalf("truncations on a clean rotated log: %+v", truncs)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rotated round trip drifted:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestOpenWriterRecoversTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, WriterOptions{})
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	evs := testEvents()
	for _, ev := range evs {
		if err := w.Append(ev); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, _ := listSegments(faultfs.OS{}, dir)
	path := filepath.Join(dir, segs[len(segs)-1])
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear three bytes off the last record, then reopen for append:
	// the writer must truncate the damage and the re-appended record
	// must read back clean.
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	w, err = OpenWriter(dir, WriterOptions{})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if err := w.Append(evs[len(evs)-1]); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, truncs := readAll(t, dir)
	if len(truncs) != 0 {
		t.Fatalf("recovered log still reports truncations: %+v", truncs)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("recovery drifted:\ngot  %+v\nwant %+v", got, evs)
	}
}

func TestIterEmptyAndMissingDir(t *testing.T) {
	dir := t.TempDir()
	evs, truncs := readAll(t, dir)
	if len(evs) != 0 || len(truncs) != 0 {
		t.Fatalf("empty dir yielded %d events, %d truncations", len(evs), len(truncs))
	}
	if _, err := OpenIter(filepath.Join(dir, "nope")); err == nil {
		t.Fatalf("OpenIter accepted a missing directory")
	}
}

func TestOpenSegmentRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	// A file with segment naming but foreign contents must be an
	// error, not a silent truncate-to-zero.
	if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWriter(dir, WriterOptions{}); err == nil {
		t.Fatalf("OpenWriter accepted a foreign file as its last segment")
	}
	it, err := OpenIter(dir)
	if err != nil {
		t.Fatalf("OpenIter: %v", err)
	}
	defer it.Close()
	if _, err := it.Next(); err == nil || err == io.EOF {
		t.Fatalf("iterating a foreign segment: err=%v, want corruption", err)
	}
}

func TestCompact(t *testing.T) {
	src, dst := t.TempDir(), t.TempDir()
	w, err := OpenWriter(src, WriterOptions{SegmentBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	evs := testEvents()
	for _, ev := range evs {
		if err := w.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail so compaction has damage to drop.
	segs, _ := listSegments(faultfs.OS{}, src)
	last := filepath.Join(src, segs[len(segs)-1])
	st, _ := os.Stat(last)
	if err := os.Truncate(last, st.Size()-2); err != nil {
		t.Fatal(err)
	}

	stats, err := Compact(src, dst, WriterOptions{})
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if stats.Events != len(evs)-1 || stats.Truncations != 1 {
		t.Fatalf("compact stats %+v, want %d events and 1 truncation", stats, len(evs)-1)
	}
	if stats.SegmentsOut >= stats.SegmentsIn {
		t.Fatalf("compaction did not consolidate: %d -> %d segments", stats.SegmentsIn, stats.SegmentsOut)
	}
	got, truncs := readAll(t, dst)
	if len(truncs) != 0 {
		t.Fatalf("compacted log has truncations: %+v", truncs)
	}
	if !reflect.DeepEqual(got, evs[:len(evs)-1]) {
		t.Fatalf("compaction drifted:\ngot  %+v\nwant %+v", got, evs[:len(evs)-1])
	}
	// Compacting onto a non-empty destination must refuse.
	if _, err := Compact(src, dst, WriterOptions{}); err == nil {
		t.Fatalf("Compact overwrote a non-empty destination")
	}
}

func TestCodecRejectsBadEvents(t *testing.T) {
	if _, err := AppendEvent(nil, Event{Module: "", Epoch: 1}); err == nil {
		t.Error("empty module id accepted")
	}
	if _, err := AppendEvent(nil, Event{Module: "m", Epoch: -1}); err == nil {
		t.Error("negative epoch accepted")
	}
	// Unsorted input encodes canonically.
	p1, err := AppendEvent(nil, Event{Module: "m", Epoch: 1, Fails: []memctl.BitAddr{addr(1, 0, 0, 0), addr(0, 0, 0, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := AppendEvent(nil, Event{Module: "m", Epoch: 1, Fails: []memctl.BitAddr{addr(0, 0, 0, 0), addr(1, 0, 0, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	if string(p1) != string(p2) {
		t.Error("encoding is order-dependent")
	}
	// Trailing garbage is rejected.
	if _, err := DecodeEvent(append(p1, 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, err := DecodeEvent(nil); err == nil {
		t.Error("empty payload accepted")
	}
}
