package fleetlog

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"parbor/internal/memctl"
)

// Codec limits. Module IDs are fleet IDs (max 128 chars there), but
// the decoder is defensive on its own: these caps bound what a hostile
// or corrupt payload can make it allocate, in the same discipline as
// internal/trace.
const (
	// maxModuleID bounds the module-id length a payload may claim.
	maxModuleID = 4096
	// maxRecordBytes bounds one framed record's payload. A record is
	// one epoch of one small simulated module; even a pathological
	// million-failure epoch encodes far below this.
	maxRecordBytes = 64 << 20
)

// appendZigzag appends v in zigzag-uvarint form: small magnitudes of
// either sign encode in one byte, which is what field deltas of a
// sorted failure list look like.
func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64(v)<<1^uint64(v>>63))
}

// zigzag decodes the zigzag transform.
func zigzag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// addrLess orders failures canonically (chip, bank, row, col).
func addrLess(a, b memctl.BitAddr) bool {
	if a.Chip != b.Chip {
		return a.Chip < b.Chip
	}
	if a.Bank != b.Bank {
		return a.Bank < b.Bank
	}
	if a.Row != b.Row {
		return a.Row < b.Row
	}
	return a.Col < b.Col
}

// AppendEvent appends ev's canonical payload encoding to dst and
// returns the extended slice. The failure list is written in canonical
// ascending order — sorting a copy if the caller's slice is not
// already sorted — so encoding is a pure function of the event's
// failure *set* and decode→re-encode is byte-identical.
func AppendEvent(dst []byte, ev Event) ([]byte, error) {
	if len(ev.Module) == 0 || len(ev.Module) > maxModuleID {
		return dst, fmt.Errorf("fleetlog: module id length %d (want 1..%d)", len(ev.Module), maxModuleID)
	}
	if ev.Epoch < 0 {
		return dst, fmt.Errorf("fleetlog: negative epoch %d", ev.Epoch)
	}
	fails := ev.Fails
	if !sort.SliceIsSorted(fails, func(i, j int) bool { return addrLess(fails[i], fails[j]) }) {
		fails = append([]memctl.BitAddr(nil), fails...)
		sort.Slice(fails, func(i, j int) bool { return addrLess(fails[i], fails[j]) })
	}
	dst = binary.AppendUvarint(dst, uint64(len(ev.Module)))
	dst = append(dst, ev.Module...)
	dst = binary.AppendUvarint(dst, uint64(ev.Epoch))
	dst = binary.AppendUvarint(dst, uint64(len(fails)))
	var prev memctl.BitAddr
	for _, f := range fails {
		dst = appendZigzag(dst, int64(f.Chip)-int64(prev.Chip))
		dst = appendZigzag(dst, int64(f.Bank)-int64(prev.Bank))
		dst = appendZigzag(dst, int64(f.Row)-int64(prev.Row))
		dst = appendZigzag(dst, int64(f.Col)-int64(prev.Col))
		prev = f
	}
	return dst, nil
}

// payloadCursor walks a payload without ever reading past it.
type payloadCursor struct {
	p   []byte
	off int
}

func (c *payloadCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.p[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("fleetlog: truncated or oversized varint at payload offset %d", c.off)
	}
	// Minimal encoding is part of the format: a varint whose final
	// byte is zero (n > 1) spends a byte saying nothing, so the same
	// value would have two accepted encodings and decode→re-encode
	// would not be byte-identical.
	if n > 1 && c.p[c.off+n-1] == 0 {
		return 0, fmt.Errorf("fleetlog: non-minimal varint at payload offset %d", c.off)
	}
	c.off += n
	return v, nil
}

// delta applies a zigzag delta to prev with explicit overflow and
// range checks: a hostile payload must produce an error, never a
// silently wrapped coordinate.
func (c *payloadCursor) delta(prev int64, lo, hi int64, field string) (int64, error) {
	u, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	d := zigzag(u)
	if d > 0 && prev > math.MaxInt64-d || d < 0 && prev < math.MinInt64-d {
		return 0, fmt.Errorf("fleetlog: %s delta overflows", field)
	}
	v := prev + d
	if v < lo || v > hi {
		return 0, fmt.Errorf("fleetlog: %s %d out of range [%d, %d]", field, v, lo, hi)
	}
	return v, nil
}

// DecodeEvent decodes one payload produced by AppendEvent. It rejects
// payloads with trailing garbage, implausible lengths, or
// out-of-range coordinates, and its allocations are bounded by the
// payload size regardless of what the header claims.
func DecodeEvent(p []byte) (Event, error) {
	c := payloadCursor{p: p}
	idLen, err := c.uvarint()
	if err != nil {
		return Event{}, err
	}
	if idLen == 0 || idLen > maxModuleID || idLen > uint64(len(p)-c.off) {
		return Event{}, fmt.Errorf("fleetlog: implausible module id length %d", idLen)
	}
	ev := Event{Module: string(p[c.off : c.off+int(idLen)])}
	c.off += int(idLen)
	epoch, err := c.uvarint()
	if err != nil {
		return Event{}, err
	}
	if epoch > math.MaxInt64 {
		return Event{}, fmt.Errorf("fleetlog: epoch %d out of range", epoch)
	}
	ev.Epoch = int(epoch)
	count, err := c.uvarint()
	if err != nil {
		return Event{}, err
	}
	// Each failure needs at least four varint bytes, so the claimed
	// count is bounded by the remaining payload: a short payload
	// claiming 2^40 failures must not allocate for them.
	if count > uint64(len(p)-c.off)/4 {
		return Event{}, fmt.Errorf("fleetlog: failure count %d exceeds payload capacity", count)
	}
	if count > 0 {
		ev.Fails = make([]memctl.BitAddr, 0, count)
	}
	var prev memctl.BitAddr
	for i := uint64(0); i < count; i++ {
		chip, err := c.delta(int64(prev.Chip), math.MinInt16, math.MaxInt16, "chip")
		if err != nil {
			return Event{}, fmt.Errorf("fleetlog: failure %d: %w", i, err)
		}
		bank, err := c.delta(int64(prev.Bank), math.MinInt16, math.MaxInt16, "bank")
		if err != nil {
			return Event{}, fmt.Errorf("fleetlog: failure %d: %w", i, err)
		}
		row, err := c.delta(int64(prev.Row), math.MinInt32, math.MaxInt32, "row")
		if err != nil {
			return Event{}, fmt.Errorf("fleetlog: failure %d: %w", i, err)
		}
		col, err := c.delta(int64(prev.Col), math.MinInt32, math.MaxInt32, "col")
		if err != nil {
			return Event{}, fmt.Errorf("fleetlog: failure %d: %w", i, err)
		}
		a := memctl.BitAddr{Chip: int16(chip), Bank: int16(bank), Row: int32(row), Col: int32(col)}
		// Canonical order is part of the format: every accepted
		// payload re-encodes to the identical bytes, so compaction
		// and replication can compare records without decoding.
		if i > 0 && addrLess(a, prev) {
			return Event{}, fmt.Errorf("fleetlog: failure %d out of canonical order", i)
		}
		ev.Fails = append(ev.Fails, a)
		prev = a
	}
	if c.off != len(p) {
		return Event{}, fmt.Errorf("fleetlog: %d trailing bytes after event payload", len(p)-c.off)
	}
	return ev, nil
}
