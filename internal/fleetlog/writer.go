package fleetlog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"parbor/internal/faultfs"
)

const (
	segMagic   = "PBFL"
	segVersion = 1
	// segHeaderLen is the magic plus the version byte.
	segHeaderLen = len(segMagic) + 1
	// segSuffix names segment files; the numeric prefix orders them.
	segSuffix = ".seg"
)

// WriterOptions tunes a Writer.
type WriterOptions struct {
	// SegmentBytes rotates to a fresh segment once the current one
	// reaches this size; <= 0 selects 4 MiB. A record is never split
	// across segments, so segments may overshoot by one record.
	SegmentBytes int64
	// FS is the filesystem seam the writer persists through; nil
	// selects the real filesystem (faultfs.OS). Tests and the parbord
	// -diskchaos-seed soak swap in a faultfs.Injector.
	FS faultfs.FS
	// RetryAttempts bounds how many times Append retries a transient
	// I/O fault (short write, spurious ENOSPC) after repairing the
	// segment back to the last record boundary; <= 0 selects 3.
	// Persistent faults and exhausted budgets poison the writer.
	RetryAttempts int
	// RetryBackoff is the pause before each retry, doubling per
	// attempt; <= 0 selects 2ms. Kept tiny: the writer holds its lock
	// across the backoff, so a long pause would stall every appender.
	RetryBackoff time.Duration
}

// withDefaults normalizes the option zero values.
func (o WriterOptions) withDefaults() WriterOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.FS == nil {
		o.FS = faultfs.OS{}
	}
	if o.RetryAttempts <= 0 {
		o.RetryAttempts = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 2 * time.Millisecond
	}
	return o
}

// segHeader is the constant 5-byte segment prelude.
func segHeader() []byte { return append([]byte(segMagic), segVersion) }

// segName formats a segment sequence number as a filename.
func segName(seq int) string { return fmt.Sprintf("%08d%s", seq, segSuffix) }

// segSeq parses a segment filename's sequence number, or -1.
func segSeq(name string) int {
	if !strings.HasSuffix(name, segSuffix) {
		return -1
	}
	n, err := strconv.Atoi(strings.TrimSuffix(name, segSuffix))
	if err != nil || n <= 0 {
		return -1
	}
	return n
}

// listSegments returns the directory's segment filenames in sequence
// order.
func listSegments(fsys faultfs.FS, dir string) ([]string, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && segSeq(e.Name()) > 0 {
			names = append(names, e.Name())
		}
	}
	sort.Slice(names, func(i, j int) bool { return segSeq(names[i]) < segSeq(names[j]) })
	return names, nil
}

// Writer appends failure events to a segmented log directory. It is
// safe for concurrent use: the fleet's worker pool appends from many
// goroutines, and each record is written with a single write call so
// concurrent appends never interleave bytes.
type Writer struct {
	mu   sync.Mutex
	dir  string
	opts WriterOptions
	fsys faultfs.FS
	f    faultfs.File //parbor:guardedby mu
	seq  int          //parbor:guardedby mu
	size int64        //parbor:guardedby mu
	buf  []byte       //parbor:guardedby mu — whole-record scratch, reused across appends
	err  error        //parbor:guardedby mu — sticky: a writer that failed mid-record must not continue
}

// OpenWriter opens (creating if needed) a log directory for append.
// If the last segment has a torn tail — a partial record from a crash
// mid-write — the damage is truncated away first, so the writer only
// ever appends after a clean record boundary.
func OpenWriter(dir string, opts WriterOptions) (*Writer, error) {
	opts = opts.withDefaults()
	fsys := opts.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleetlog: creating log dir: %w", err)
	}
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("fleetlog: listing log dir: %w", err)
	}
	w := &Writer{dir: dir, opts: opts, fsys: fsys}
	if len(segs) == 0 {
		if err := w.openSegmentLocked(1); err != nil {
			return nil, err
		}
		return w, nil
	}
	last := segs[len(segs)-1]
	w.seq = segSeq(last)
	clean, err := cleanLength(fsys, filepath.Join(dir, last))
	if err != nil {
		return nil, err
	}
	f, err := fsys.OpenFile(filepath.Join(dir, last), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleetlog: opening segment: %w", err)
	}
	if err := f.Truncate(clean); err != nil {
		f.Close()
		return nil, fmt.Errorf("fleetlog: truncating torn tail of %s: %w", last, err)
	}
	if clean < int64(segHeaderLen) {
		// The crash tore the segment header itself; rewrite it.
		if _, err := f.WriteAt(segHeader(), 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("fleetlog: rewriting segment header: %w", err)
		}
		clean = int64(segHeaderLen)
	}
	if _, err := f.Seek(clean, 0); err != nil {
		f.Close()
		return nil, err
	}
	w.f, w.size = f, clean
	return w, nil
}

// cleanLength scans a segment and returns the byte length of its
// longest clean prefix: the segment header plus every fully framed,
// checksum-verified record. A segment that is corrupt outright (bad
// magic, unknown version) is an error — recovery must not silently
// destroy a file that was never a fleetlog segment.
func cleanLength(fsys faultfs.FS, path string) (int64, error) {
	sr, err := openSegment(fsys, path)
	if err != nil {
		return 0, err
	}
	defer sr.close()
	for {
		_, err := sr.next()
		if err == nil {
			continue
		}
		if torn, ok := err.(errTorn); ok {
			return torn.cleanLen, nil
		}
		if err == errSegEnd {
			return sr.off, nil
		}
		return 0, err
	}
}

// openSegmentLocked creates the next segment file and makes it
// current. Callers hold w.mu (or own the still-unpublished writer).
func (w *Writer) openSegmentLocked(seq int) error {
	f, err := w.fsys.OpenFile(filepath.Join(w.dir, segName(seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("fleetlog: creating segment: %w", err)
	}
	w.f, w.seq, w.size = f, seq, 0
	if err := w.writeRecordLocked(segHeader()); err != nil {
		f.Close()
		w.f = nil
		return fmt.Errorf("fleetlog: writing segment header: %w", err)
	}
	w.size = int64(segHeaderLen)
	return nil
}

// Append encodes ev and appends it as one framed record, rotating to
// a new segment when the current one is full. The record reaches the
// OS in a single write call; Append returns once the OS has it.
//
// A transient I/O fault (short write, spurious ENOSPC) is absorbed by
// a bounded retry: the segment is first repaired — truncated back to
// the pre-record boundary so a torn prefix cannot survive — and the
// whole record is written again. Persistent faults, failed repairs,
// and exhausted retry budgets poison the writer; the daemon's
// log-degraded mode takes over from there.
func (w *Writer) Append(ev Event) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.f == nil {
		return fmt.Errorf("fleetlog: writer is closed")
	}
	// Frame into the scratch buffer: length, payload, checksum.
	// The payload is encoded first (after a length-placeholder region)
	// so its length is known; the uvarint length is then stamped
	// immediately before it.
	const maxLen = binary.MaxVarintLen64
	buf := append(w.buf[:0], make([]byte, maxLen)...)
	buf, err := AppendEvent(buf, ev)
	if err != nil {
		return err
	}
	payload := buf[maxLen:]
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("fleetlog: event payload %d bytes exceeds record limit", len(payload))
	}
	lenBytes := binary.AppendUvarint(nil, uint64(len(payload)))
	start := maxLen - len(lenBytes)
	copy(buf[start:], lenBytes)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	w.buf = buf[:0]
	rec := buf[start:]

	if w.size > int64(segHeaderLen) && w.size+int64(len(rec)) > w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			w.err = err
			return err
		}
	}
	if err := w.writeRecordLocked(rec); err != nil {
		w.err = err
		return w.err
	}
	w.size += int64(len(rec))
	return nil
}

// writeRecordLocked lands one framed record at the current boundary,
// retrying transient faults after repairing the tail. Called with the
// lock held.
func (w *Writer) writeRecordLocked(rec []byte) error {
	backoff := w.opts.RetryBackoff
	var err error
	for attempt := 0; attempt < w.opts.RetryAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		var n int
		n, err = w.f.Write(rec)
		if err == nil {
			return nil
		}
		err = fmt.Errorf("fleetlog: appending record: %w", err)
		if !faultfs.IsTransient(err) {
			return err
		}
		if n > 0 {
			// A short write left a torn prefix; cut the segment back to
			// the record boundary before retrying, or the retried record
			// would land after garbage.
			if terr := w.f.Truncate(w.size); terr != nil {
				return fmt.Errorf("fleetlog: repairing tail after %v: %w", err, terr)
			}
			if _, serr := w.f.Seek(w.size, 0); serr != nil {
				return fmt.Errorf("fleetlog: reseeking after repair: %w", serr)
			}
		}
	}
	return fmt.Errorf("fleetlog: retries exhausted: %w", err)
}

// rotateLocked closes the current segment and opens the next one.
// Called with the lock held.
func (w *Writer) rotateLocked() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("fleetlog: closing segment: %w", err)
	}
	w.f = nil
	return w.openSegmentLocked(w.seq + 1)
}

// Sync flushes the current segment to stable storage. A Sync failure
// poisons the writer: the kernel may have dropped any dirty page since
// the last successful sync, so the unsynced tail is suspect and
// appending after it would build on bytes that may not exist after a
// crash. Callers reopen the directory (which re-verifies the tail) to
// continue.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("fleetlog: syncing segment: %w", err)
		return w.err
	}
	return nil
}

// Close closes the current segment. Append after Close fails;
// reopening the directory with OpenWriter continues the log.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// Dir returns the log directory.
func (w *Writer) Dir() string { return w.dir }
