package fleetlog

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"

	"parbor/internal/faultfs"
)

// errSegEnd is the clean end of a segment: the last record closed
// exactly at end of file.
var errSegEnd = errors.New("fleetlog: end of segment")

// errTorn marks a torn tail: the bytes from cleanLen to the end of
// the file are a partial record (or a partial segment header), the
// signature of a crash mid-write. Everything before cleanLen was
// recovered.
type errTorn struct{ cleanLen int64 }

func (e errTorn) Error() string {
	return fmt.Sprintf("fleetlog: torn record after clean offset %d", e.cleanLen)
}

// Truncation reports one recovered torn tail.
type Truncation struct {
	// Segment is the damaged segment's filename.
	Segment string `json:"segment"`
	// CleanBytes is the length of the intact prefix; everything after
	// it was discarded.
	CleanBytes int64 `json:"clean_bytes"`
}

// segReader streams one segment's record payloads without ever
// holding more than one record in memory.
type segReader struct {
	f    faultfs.File
	br   *bufio.Reader
	size int64 // file size at open
	off  int64 // offset of the next unread record
	buf  []byte
}

// openSegment opens a segment and validates its header. A file too
// short to hold the header is reported as torn (a crash can tear the
// header write itself); a file with the wrong magic or version is
// corrupt — it was never a fleetlog segment, and recovery must not
// quietly eat it.
func openSegment(fsys faultfs.FS, path string) (*segReader, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	sr := &segReader{f: f, br: bufio.NewReader(f), size: st.Size()}
	hdr := make([]byte, segHeaderLen)
	if _, err := io.ReadFull(sr.br, hdr); err != nil {
		if isInjectedFault(err) {
			f.Close()
			return nil, fmt.Errorf("fleetlog: reading %s header: %w", filepath.Base(path), err)
		}
		// Shorter than a header: everything is a torn prefix, but if
		// the bytes present disagree with the header they are not a
		// tear, they are a different file.
		if !bytes.HasPrefix(segHeader(), hdr[:sr.size]) {
			f.Close()
			return nil, fmt.Errorf("fleetlog: %s: not a fleetlog segment", filepath.Base(path))
		}
		return sr, nil // off stays 0: next() reports the tear
	}
	if string(hdr[:len(segMagic)]) != segMagic {
		f.Close()
		return nil, fmt.Errorf("fleetlog: %s: bad magic %q", filepath.Base(path), hdr[:len(segMagic)])
	}
	if hdr[len(segMagic)] != segVersion {
		f.Close()
		return nil, fmt.Errorf("fleetlog: %s: unsupported version %d", filepath.Base(path), hdr[len(segMagic)])
	}
	sr.off = int64(segHeaderLen)
	return sr, nil
}

// next returns the next record's payload (valid until the following
// call), errSegEnd at a clean end of segment, an errTorn for a torn
// tail, or a corruption error. The returned payload has already
// passed its checksum.
func (sr *segReader) next() ([]byte, error) {
	if sr.off == 0 {
		// Header itself was torn (see openSegment).
		return nil, errTorn{cleanLen: 0}
	}
	if sr.off == sr.size {
		return nil, errSegEnd
	}
	// Read the length varint byte by byte, counting what was actually
	// consumed: hdrLen must reflect the on-disk bytes, not a canonical
	// re-encoding, or the offset bookkeeping drifts on a hand-mangled
	// (non-minimal) length and mislabels the rest of the segment.
	var (
		plen   uint64
		hdrLen int64
	)
	for shift := uint(0); ; shift += 7 {
		b, err := sr.br.ReadByte()
		if err != nil {
			if isInjectedFault(err) {
				return nil, fmt.Errorf("fleetlog: reading record length at offset %d: %w", sr.off, err)
			}
			// A truncated varint cannot decode to a different valid
			// value — the last surviving byte still has its
			// continuation bit — so a failure here is a tear, not
			// corruption.
			return nil, errTorn{cleanLen: sr.off}
		}
		hdrLen++
		if shift > 56 {
			return nil, fmt.Errorf("fleetlog: record length varint at offset %d overflows", sr.off)
		}
		plen |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			break
		}
	}
	if plen == 0 {
		// No record has an empty payload (a module id alone is four
		// bytes). A zero length byte is the signature of a journaling
		// filesystem zero-filling a torn tail after a crash.
		return nil, errTorn{cleanLen: sr.off}
	}
	if plen > maxRecordBytes {
		return nil, fmt.Errorf("fleetlog: record at offset %d claims %d bytes", sr.off, plen)
	}
	if sr.off+hdrLen+int64(plen)+4 > sr.size {
		// The frame extends past the end of the file: torn tail. The
		// allocation below is bounded by this check — a hostile length
		// never allocates more than the file actually holds.
		return nil, errTorn{cleanLen: sr.off}
	}
	need := int(plen) + 4
	if cap(sr.buf) < need {
		sr.buf = make([]byte, need)
	}
	buf := sr.buf[:need]
	if _, err := io.ReadFull(sr.br, buf); err != nil {
		if isInjectedFault(err) {
			return nil, fmt.Errorf("fleetlog: reading record at offset %d: %w", sr.off, err)
		}
		return nil, errTorn{cleanLen: sr.off}
	}
	payload := buf[:plen]
	want := binary.LittleEndian.Uint32(buf[plen:])
	if crc32.ChecksumIEEE(payload) != want {
		if sr.off+hdrLen+int64(plen)+4 == sr.size {
			// Checksum of the final record does not match: the payload
			// bytes themselves were torn. Recoverable.
			return nil, errTorn{cleanLen: sr.off}
		}
		return nil, fmt.Errorf("fleetlog: checksum mismatch at offset %d", sr.off)
	}
	sr.off += hdrLen + int64(plen) + 4
	return payload, nil
}

func (sr *segReader) close() error { return sr.f.Close() }

// isInjectedFault distinguishes an injected device fault (read EIO, a
// crashed world) from a genuinely short file. An unreadable sector is
// a hard error, not a torn tail: recovery must not truncate good data
// it merely failed to read.
func isInjectedFault(err error) bool {
	var oe *faultfs.OpError
	return errors.As(err, &oe)
}

// Iter streams a log directory's events in segment order, one record
// at a time. Torn tails are recovered, recorded, and skipped; they
// never corrupt the stream. An Iter may read a directory that a
// Writer is appending to — at worst it sees the current segment's
// half-written last record as a (transient) truncation.
type Iter struct {
	fsys    faultfs.FS
	dir     string
	pending []string
	cur     *segReader
	curName string
	truncs  []Truncation
	events  int
}

// OpenIter opens a log directory on the real filesystem for
// streaming. A directory with no segments yields io.EOF immediately.
func OpenIter(dir string) (*Iter, error) {
	return OpenIterFS(faultfs.OS{}, dir)
}

// OpenIterFS is OpenIter through an explicit filesystem seam.
func OpenIterFS(fsys faultfs.FS, dir string) (*Iter, error) {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("fleetlog: listing log dir: %w", err)
	}
	return &Iter{fsys: fsys, dir: dir, pending: segs}, nil
}

// Next returns the next event, or io.EOF when the log is exhausted.
// Any other error is a hard corruption the log cannot stream past.
func (it *Iter) Next() (Event, error) {
	for {
		if it.cur == nil {
			if len(it.pending) == 0 {
				return Event{}, io.EOF
			}
			name := it.pending[0]
			it.pending = it.pending[1:]
			sr, err := openSegment(it.fsys, filepath.Join(it.dir, name))
			if err != nil {
				return Event{}, err
			}
			it.cur, it.curName = sr, name
		}
		payload, err := it.cur.next()
		switch e := err.(type) {
		case nil:
			ev, derr := DecodeEvent(payload)
			if derr != nil {
				return Event{}, fmt.Errorf("fleetlog: %s: %w", it.curName, derr)
			}
			it.events++
			return ev, nil
		case errTorn:
			it.truncs = append(it.truncs, Truncation{Segment: it.curName, CleanBytes: e.cleanLen})
			it.closeCur()
		default:
			if err == errSegEnd {
				it.closeCur()
				continue
			}
			it.closeCur()
			return Event{}, fmt.Errorf("fleetlog: %s: %w", it.curName, err)
		}
	}
}

func (it *Iter) closeCur() {
	if it.cur != nil {
		it.cur.close()
		it.cur = nil
	}
}

// Truncations lists the torn tails recovered so far (complete once
// Next has returned io.EOF).
func (it *Iter) Truncations() []Truncation { return it.truncs }

// Events returns how many events have been decoded so far.
func (it *Iter) Events() int { return it.events }

// Close releases the iterator's open segment, if any.
func (it *Iter) Close() error {
	it.closeCur()
	return nil
}
