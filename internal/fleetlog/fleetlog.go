// Package fleetlog is the fleet's storage layer: an append-only,
// segment-based, compressed on-disk failure-event log plus a streaming
// groupby/classify pipeline that folds the log into per-module
// fault-mode classifications with bounded memory.
//
// The write side is called by the fleet scheduler after every
// *completed* transactional epoch: one Event records every failing
// cell observed in that epoch (new and repeat observations alike), so
// the log carries the repeat-observation signal the DDR4 field studies
// use to split transient from permanent faults. The read side streams
// events back one record at a time — a segment is never materialized —
// and the classifier keeps O(modules) state, spilling sorted key runs
// to disk and merging them when a log is too large for its memory
// budget.
//
// On-disk layout (see DESIGN.md section 12 for the framing diagram):
//
//	<dir>/00000001.seg, 00000002.seg, ...   rotated at SegmentBytes
//
//	segment = "PBFL" magic (4 bytes) | version (1 byte) | records...
//	record  = payload length (uvarint) | payload | CRC-32/IEEE of
//	          payload (4 bytes little-endian)
//
//	payload = module id (uvarint length + bytes)
//	        | epoch (uvarint)
//	        | failure count (uvarint)
//	        | failures, each as four zigzag-uvarint deltas
//	          (chip, bank, row, col) from the previous failure,
//	          in canonical ascending order
//
// Every record is independently framed, so a torn tail — the daemon
// killed mid-write, a disk that lied about a flush — truncates cleanly:
// the reader recovers every intact record and reports exactly one
// truncation per damaged segment instead of corrupting the stream, and
// the writer truncates the damage away before appending again.
//
// fleetlog is a serving-layer package like internal/fleet: it may use
// the filesystem and maps freely (it is outside the parborvet
// simdeterminism scope). Its *outputs* are still deterministic: the
// classifier's rollup is a pure function of the event *set*, invariant
// under event order, segment boundaries, and memory budget — the
// differential-oracle suite enforces this bit-for-bit.
package fleetlog

import "parbor/internal/memctl"

// Event is one completed epoch's failure observations for one module.
// Fails lists every cell that failed during the epoch — repeats of
// previously known failures included — because repeat observation
// across epochs is what separates permanent faults from transient
// ones. An epoch that observed no failures still logs an (empty)
// event: "tested and clean" is information, and the per-module epoch
// counts anchor the fault rates.
type Event struct {
	// Module is the fleet module ID (ModuleSpec.ID).
	Module string `json:"module"`
	// Epoch is the module's completed-epoch number (1-based, as
	// counted by onlinetest.Scheduler). Epoch numbers survive
	// checkpoint/resume, so one module's events stay unique across
	// daemon restarts; a crash-replayed epoch re-logs the identical
	// event and deduplicates away in the classifier.
	Epoch int `json:"epoch"`
	// Fails are the cells observed failing this epoch. The codec
	// canonicalizes the order (ascending chip, bank, row, col).
	Fails []memctl.BitAddr `json:"fails,omitempty"`
}

// Fault-mode labels, following the taxonomy of the DDR4 field studies
// (single-bit / single-row / single-column / scattered multi-cell
// populations, grouped per chip-bank). internal/fleet's live rollup
// uses the same labels so a replayed log is comparable to the live
// fleet, field for field.
const (
	ModeSingleBit    = "single_bit"
	ModeSingleRow    = "single_row"
	ModeSingleColumn = "single_column"
	ModeMultiCell    = "multi_cell"
)
