package fleetlog

import (
	"errors"
	"testing"
	"time"

	"parbor/internal/faultfs"
)

// openInjected opens a writer over a fresh injector with the given
// config, with fast retry settings for tests.
func openInjected(t *testing.T, dir string, cfg faultfs.InjectorConfig, attempts int) (*Writer, *faultfs.Injector) {
	t.Helper()
	inj, err := faultfs.NewInjector(faultfs.OS{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := OpenWriter(dir, WriterOptions{
		FS:            inj,
		RetryAttempts: attempts,
		RetryBackoff:  time.Microsecond,
	})
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	return w, inj
}

// readClean drains a directory with a clean reader and asserts no
// tails were torn.
func readClean(t *testing.T, dir string) []Event {
	t.Helper()
	evs, truncs := readAll(t, dir)
	if len(truncs) != 0 {
		t.Fatalf("unexpected truncations: %+v", truncs)
	}
	return evs
}

// TestWriterRetryAbsorbsTransientFaults appends through an injector
// throwing frequent transient short writes and ENOSPC; the bounded
// retry must absorb all of them (deterministic seed, single appender)
// and the log must decode byte-perfect afterwards.
func TestWriterRetryAbsorbsTransientFaults(t *testing.T) {
	dir := t.TempDir()
	w, inj := openInjected(t, dir, faultfs.InjectorConfig{
		Seed:           11,
		WriteErrProb:   0.25,
		ShortWriteProb: 0.25,
	}, 8)
	events := testEvents()
	for _, ev := range events {
		if err := w.Append(ev); err != nil {
			t.Fatalf("Append through transient faults: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if inj.Faults() == 0 {
		t.Fatal("injector faulted nothing; the retry path was never exercised")
	}
	got := readClean(t, dir)
	if len(got) != len(events) {
		t.Fatalf("recovered %d events, wrote %d", len(got), len(events))
	}
	for i := range got {
		if got[i].Module != events[i].Module || got[i].Epoch != events[i].Epoch {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, got[i], events[i])
		}
	}
}

// TestWriterSyncFailurePropagatesAndSticks: a failed fsync means the
// unsynced tail is suspect, so the writer must refuse all further
// work, not just report the one error.
func TestWriterSyncFailurePropagatesAndSticks(t *testing.T) {
	dir := t.TempDir()
	w, _ := openInjected(t, dir, faultfs.InjectorConfig{Seed: 1, SyncErrProb: 1}, 3)
	if err := w.Append(testEvents()[0]); err != nil {
		t.Fatalf("Append: %v", err)
	}
	serr := w.Sync()
	if !errors.Is(serr, faultfs.ErrSync) {
		t.Fatalf("Sync: %v, want ErrSync", serr)
	}
	if aerr := w.Append(testEvents()[1]); !errors.Is(aerr, faultfs.ErrSync) {
		t.Fatalf("Append after failed Sync: %v, want the sticky sync error", aerr)
	}
	if serr2 := w.Sync(); !errors.Is(serr2, faultfs.ErrSync) {
		t.Fatalf("second Sync: %v, want the sticky sync error", serr2)
	}
	w.Close()
	// Reopening re-verifies the tail and continues: the event whose
	// durability was in doubt either survived intact or its tear is
	// truncated away — this test's fsync "failure" dropped no pages, so
	// it must be intact.
	w2, err := OpenWriter(dir, WriterOptions{})
	if err != nil {
		t.Fatalf("reopen after sync failure: %v", err)
	}
	if err := w2.Append(testEvents()[1]); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readClean(t, dir); len(got) != 2 {
		t.Fatalf("recovered %d events, want 2", len(got))
	}
}

// TestWriterPersistentFaultPoisons: a Break outage (volume gone) is
// not retryable; the writer must fail fast and stay failed.
func TestWriterPersistentFaultPoisons(t *testing.T) {
	dir := t.TempDir()
	w, inj := openInjected(t, dir, faultfs.InjectorConfig{}, 5)
	if err := w.Append(testEvents()[0]); err != nil {
		t.Fatal(err)
	}
	inj.Break(nil)
	before := inj.Ops()
	err := w.Append(testEvents()[1])
	if !errors.Is(err, faultfs.ErrIO) {
		t.Fatalf("Append during outage: %v, want ErrIO", err)
	}
	if inj.Ops() != before+1 {
		t.Fatalf("persistent fault consumed %d ops; the retry loop must not spin on it", inj.Ops()-before)
	}
	inj.Heal()
	if err := w.Append(testEvents()[1]); err == nil {
		t.Fatal("poisoned writer accepted an append after Heal; the tail was never re-verified")
	}
}

// TestGCKeepsNewestAndNeverTheTail covers the retention policy: the
// oldest segments go, the newest keep survive, and the active tail is
// immortal even at keep <= 0.
func TestGCKeepsNewestAndNeverTheTail(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force one rotation per event or so.
	w, err := OpenWriter(dir, WriterOptions{SegmentBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range testEvents() {
		if err := w.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(faultfs.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 4 {
		t.Fatalf("only %d segments; the fixture no longer rotates enough to test GC", len(segs))
	}
	tail := segs[len(segs)-1]

	removed, err := GC(dir, 2)
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	wantRemoved := segs[:len(segs)-2]
	if len(removed) != len(wantRemoved) {
		t.Fatalf("GC removed %v, want %v", removed, wantRemoved)
	}
	for i := range removed {
		if removed[i] != wantRemoved[i] {
			t.Fatalf("GC removed %v, want %v", removed, wantRemoved)
		}
	}
	left, _ := listSegments(faultfs.OS{}, dir)
	if len(left) != 2 || left[1] != tail {
		t.Fatalf("segments after GC: %v (tail %s)", left, tail)
	}

	// keep<=0 clamps to 1: the tail survives.
	if _, err := GC(dir, 0); err != nil {
		t.Fatal(err)
	}
	left, _ = listSegments(faultfs.OS{}, dir)
	if len(left) != 1 || left[0] != tail {
		t.Fatalf("GC(0) left %v, want only the tail %s", left, tail)
	}
	// Idempotent on a single-segment log.
	if removed, err := GC(dir, 0); err != nil || len(removed) != 0 {
		t.Fatalf("GC on tail-only log: removed %v, err %v", removed, err)
	}

	// The survivors still stream cleanly, and a reopened writer still
	// appends to the surviving tail.
	readClean(t, dir)
	w2, err := OpenWriter(dir, WriterOptions{})
	if err != nil {
		t.Fatalf("reopen after GC: %v", err)
	}
	if err := w2.Append(testEvents()[0]); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyzeThroughInjectedReadFault: an unreadable sector must be a
// hard error, not silently folded as a shorter log.
func TestAnalyzeThroughInjectedReadFault(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range testEvents() {
		if err := w.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	inj, err := faultfs.NewInjector(faultfs.OS{}, faultfs.InjectorConfig{Seed: 3, ReadErrProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, aerr := Analyze(dir, ClassifierConfig{FS: inj}); !errors.Is(aerr, faultfs.ErrIO) {
		t.Fatalf("Analyze over unreadable log: %v, want ErrIO", aerr)
	}
}
