package fleetlog

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"parbor/internal/memctl"
)

// TestTornWriteEveryByteBoundary is the exhaustive crash model: a
// segment cut at EVERY byte length from empty to complete. For each
// cut the iterator must recover every record that fits entirely within
// the prefix, report exactly one truncation when the cut lands inside
// a frame (and none when it lands on a boundary), and never report
// corruption — truncation is always distinguishable from damage
// because a torn varint keeps its continuation bit and a torn payload
// fails its checksum only at end-of-file. Then a writer reopened over
// the same prefix must truncate the damage and continue the log
// cleanly.
func TestTornWriteEveryByteBoundary(t *testing.T) {
	master := t.TempDir()
	w, err := OpenWriter(master, WriterOptions{})
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	evs := testEvents()
	// boundaries[i] is the clean prefix length after i records (the
	// segment header alone for i=0).
	boundaries := []int64{int64(segHeaderLen)}
	for _, ev := range evs {
		if err := w.Append(ev); err != nil {
			t.Fatalf("Append: %v", err)
		}
		boundaries = append(boundaries, w.size)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(master, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != boundaries[len(boundaries)-1] {
		t.Fatalf("segment is %d bytes, last boundary %d", len(data), boundaries[len(boundaries)-1])
	}

	sentinel := Event{Module: "post-crash", Epoch: 7, Fails: []memctl.BitAddr{{Chip: 1, Bank: 0, Row: 2, Col: 3}}}
	for cut := 0; cut <= len(data); cut++ {
		cut := int64(cut)
		// Expected recovery for this prefix.
		intact := 0
		wantClean := int64(0) // longest clean prefix (0 when even the header is torn)
		for i, b := range boundaries {
			if cut >= b {
				intact = i
				wantClean = b
			}
		}
		// A cut on a frame boundary is clean; anything shorter than the
		// header (including an empty file — a crash between creat and
		// the header write) is a torn prefix.
		wantTruncs := 1
		if cut == wantClean && cut >= int64(segHeaderLen) {
			wantTruncs = 0
		}

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, truncs := readAll(t, dir)
		label := fmt.Sprintf("cut=%d", cut)
		wantEvs := evs[:intact]
		if intact == 0 {
			wantEvs = nil
		}
		if !reflect.DeepEqual(got, wantEvs) {
			t.Fatalf("%s: recovered %d events, want %d:\ngot  %+v\nwant %+v", label, len(got), intact, got, wantEvs)
		}
		if len(truncs) != wantTruncs {
			t.Fatalf("%s: %d truncations, want %d (%+v)", label, len(truncs), wantTruncs, truncs)
		}
		if wantTruncs == 1 && truncs[0].CleanBytes != wantClean {
			t.Fatalf("%s: truncation at clean byte %d, want %d", label, truncs[0].CleanBytes, wantClean)
		}

		// A writer reopened over the damage must truncate it and append
		// on a clean boundary.
		w2, err := OpenWriter(dir, WriterOptions{})
		if err != nil {
			t.Fatalf("%s: reopen: %v", label, err)
		}
		if err := w2.Append(sentinel); err != nil {
			t.Fatalf("%s: append after recovery: %v", label, err)
		}
		if err := w2.Close(); err != nil {
			t.Fatalf("%s: close: %v", label, err)
		}
		got, truncs = readAll(t, dir)
		want := append(append([]Event(nil), evs[:intact]...), sentinel)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: post-recovery log drifted:\ngot  %+v\nwant %+v", label, got, want)
		}
		if len(truncs) != 0 {
			t.Fatalf("%s: recovered log still reports truncations: %+v", label, truncs)
		}
	}
}
