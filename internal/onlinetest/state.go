package onlinetest

import (
	"fmt"
	"sort"

	"parbor/internal/memctl"
	"parbor/internal/obs"
)

// State is the scheduler's complete serializable progress: everything
// needed to rebuild a Scheduler that continues a sweep exactly where
// this one stopped. The checkpoint layer (internal/checkpoint) wraps
// it together with the module's simulation clocks into the
// parbor/checkpoint/v1 snapshot.
type State struct {
	// Config rebuilds the pattern set and epoch budget. Distances are
	// part of it, so a resumed run does not need to re-detect.
	Config Config `json:"config"`
	// Cursor/Rounds/Tests mirror the scheduler's sweep progress.
	Cursor int `json:"cursor"`
	Rounds int `json:"rounds"`
	Tests  int `json:"tests"`
	// EverSeen and SweepSeen are the failure sets, in canonical
	// (chip, bank, row, col) order so the encoding is deterministic.
	EverSeen  []memctl.BitAddr `json:"ever_seen"`
	SweepSeen []memctl.BitAddr `json:"sweep_seen"`
	// Quarantined chips, ascending.
	Quarantined []int `json:"quarantined,omitempty"`
	// Retries and DegradedEpochs carry the resilience totals across
	// the interruption.
	Retries        int `json:"retries,omitempty"`
	DegradedEpochs int `json:"degraded_epochs,omitempty"`
	// Epochs is the completed-epoch count, the unit the fleet
	// scheduler budgets in.
	Epochs int `json:"epochs,omitempty"`
}

// State exports the scheduler's progress. The returned value shares
// nothing with the scheduler; mutating it is safe.
func (s *Scheduler) State() State {
	cfg := s.cfg
	cfg.Distances = append([]int(nil), s.cfg.Distances...)
	return State{
		Config:         cfg,
		Cursor:         s.cursor,
		Rounds:         s.rounds,
		Tests:          s.tests,
		EverSeen:       sortedAddrs(s.everSeen),
		SweepSeen:      sortedAddrs(s.sweepSeen),
		Quarantined:    s.Quarantined(),
		Retries:        s.retries,
		DegradedEpochs: s.degraded,
		Epochs:         s.epochs,
	}
}

// Resume rebuilds a scheduler from exported State against a freshly
// constructed host. The host must wrap a module with the same
// geometry the state was captured from; Resume checks what it can
// (cursor range) and trusts the checkpoint layer for the rest.
func Resume(host *memctl.Host, st State) (*Scheduler, error) {
	s, err := New(host, st.Config)
	if err != nil {
		return nil, err
	}
	if st.Cursor < 0 || st.Cursor >= len(s.rows) {
		return nil, fmt.Errorf("onlinetest: resume cursor %d outside module's %d rows", st.Cursor, len(s.rows))
	}
	if st.Rounds < 0 || st.Tests < 0 || st.Retries < 0 || st.DegradedEpochs < 0 || st.Epochs < 0 {
		return nil, fmt.Errorf("onlinetest: negative resume progress counters")
	}
	s.cursor = st.Cursor
	s.rounds = st.Rounds
	s.tests = st.Tests
	s.retries = st.Retries
	s.degraded = st.DegradedEpochs
	s.epochs = st.Epochs
	for _, a := range st.EverSeen {
		s.everSeen[a] = struct{}{}
	}
	for _, a := range st.SweepSeen {
		s.sweepSeen[a] = struct{}{}
	}
	for _, c := range st.Quarantined {
		if c < 0 || c >= host.Chips() {
			return nil, fmt.Errorf("onlinetest: resume quarantines chip %d outside module's %d chips", c, host.Chips())
		}
		s.quarantined[c] = struct{}{}
	}
	// Inherited quarantine must be declared to the new incarnation's
	// recorder: its epochs will report partial coverage (the skipped
	// rows of chips quarantined before the interruption) without any
	// chaos fault of their own, and Report.Reconcile only excuses that
	// when this counter explains it.
	if len(st.Quarantined) > 0 {
		if rec := host.Recorder(); rec != nil {
			rec.Add(obs.CounterInheritedQuarantine, uint64(len(st.Quarantined)))
		}
	}
	return s, nil
}

// sortedAddrs flattens a failure set into canonical order.
func sortedAddrs(set map[memctl.BitAddr]struct{}) []memctl.BitAddr {
	out := make([]memctl.BitAddr, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Chip != b.Chip {
			return a.Chip < b.Chip
		}
		if a.Bank != b.Bank {
			return a.Bank < b.Bank
		}
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Col < b.Col
	})
	return out
}
