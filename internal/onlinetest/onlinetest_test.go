package onlinetest

import (
	"testing"

	"parbor/internal/coupling"
	"parbor/internal/dram"
	"parbor/internal/faults"
	"parbor/internal/memctl"
	"parbor/internal/rng"
	"parbor/internal/scramble"
)

var vendorADistances = []int{-48, -16, -8, 8, 16, 48}

func onlineHost(t *testing.T, rows int) *memctl.Host {
	t.Helper()
	mod, err := dram.NewModule(dram.ModuleConfig{
		Vendor:   scramble.VendorA,
		Chips:    1,
		Geometry: dram.Geometry{Banks: 1, Rows: rows, Cols: 8192},
		Coupling: coupling.Config{
			VulnerableRate:  2e-3,
			StrongLeftFrac:  0.3,
			StrongRightFrac: 0.3,
			RetentionMinMs:  100,
			RetentionMaxMs:  100,
		},
		Faults: faults.Config{},
		Seed:   61,
	})
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	host, err := memctl.NewHost(mod, 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	return host
}

// writeAppData fills the module with recognizable pseudo-random
// application data and returns a copy of what was written.
func writeAppData(t *testing.T, host *memctl.Host, rows int) [][]uint64 {
	t.Helper()
	words := host.Geometry().Words()
	src := rng.New(9)
	data := make([][]uint64, rows)
	rlist := make([]memctl.Row, rows)
	for r := 0; r < rows; r++ {
		data[r] = make([]uint64, words)
		for w := range data[r] {
			data[r][w] = src.Uint64()
		}
		rlist[r] = memctl.Row{Chip: 0, Bank: 0, Row: r}
	}
	if _, err := host.PassWithWait(rlist, data, 0); err != nil {
		t.Fatalf("writing app data: %v", err)
	}
	return data
}

func TestEpochPreservesLiveData(t *testing.T) {
	const rows = 32
	host := onlineHost(t, rows)
	app := writeAppData(t, host, rows)

	s, err := New(host, Config{Distances: vendorADistances, RowsPerEpoch: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.RunEpoch(); err != nil {
		t.Fatalf("RunEpoch: %v", err)
	}
	// The first 8 rows were tested and restored; their live data must
	// be intact.
	got := make([]uint64, host.Geometry().Words())
	for r := 0; r < 8; r++ {
		if err := host.ReadRowInto(memctl.Row{Chip: 0, Bank: 0, Row: r}, got); err != nil {
			t.Fatalf("ReadRowInto: %v", err)
		}
		for w := range got {
			if got[w] != app[r][w] {
				t.Fatalf("row %d word %d corrupted by online test: %x != %x", r, w, got[w], app[r][w])
			}
		}
	}
}

func TestCoverageAccumulatesToFullSweep(t *testing.T) {
	const rows = 32
	host := onlineHost(t, rows)
	writeAppData(t, host, rows)
	s, err := New(host, Config{Distances: vendorADistances, RowsPerEpoch: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for epoch := 0; epoch < 4; epoch++ {
		wantCov := float64(epoch) / 4
		if got := s.Coverage(); got != wantCov {
			t.Errorf("epoch %d: coverage %.2f, want %.2f", epoch, got, wantCov)
		}
		res, err := s.RunEpoch()
		if err != nil {
			t.Fatalf("RunEpoch: %v", err)
		}
		if wantDone := epoch == 3; res.SweepCompleted != wantDone {
			t.Errorf("epoch %d: sweep completed = %v", epoch, res.SweepCompleted)
		}
	}
	if s.Coverage() != 1 || s.Rounds() != 1 {
		t.Errorf("after 4 epochs: coverage %.2f rounds %d, want 1/1", s.Coverage(), s.Rounds())
	}
	if len(s.Failures()) == 0 {
		t.Error("full sweep found no failures despite victim population")
	}
}

// TestOnlineMatchesOfflineCoverage: a full online sweep must find the
// same failures as one offline neighbor-aware full-chip run on an
// identical module.
func TestOnlineMatchesOfflineCoverage(t *testing.T) {
	const rows = 32
	online := onlineHost(t, rows)
	writeAppData(t, online, rows)
	s, err := New(online, Config{Distances: vendorADistances, RowsPerEpoch: 16})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for !(s.Rounds() > 0) {
		if _, err := s.RunEpoch(); err != nil {
			t.Fatalf("RunEpoch: %v", err)
		}
	}

	// Offline reference on a twin module.
	offline := onlineHost(t, rows)
	refS, err := New(offline, Config{Distances: vendorADistances, RowsPerEpoch: rows})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := refS.RunEpoch(); err != nil {
		t.Fatalf("reference epoch: %v", err)
	}

	got, want := s.Failures(), refS.Failures()
	if len(got) != len(want) {
		t.Fatalf("online found %d failures, offline %d", len(got), len(want))
	}
	for a := range want {
		if _, ok := got[a]; !ok {
			t.Fatalf("online missed %+v", a)
		}
	}
}

func TestValidation(t *testing.T) {
	host := onlineHost(t, 8)
	if _, err := New(nil, Config{Distances: vendorADistances}); err == nil {
		t.Error("nil host accepted")
	}
	if _, err := New(host, Config{}); err == nil {
		t.Error("empty distances accepted")
	}
	if _, err := New(host, Config{Distances: vendorADistances, RowsPerEpoch: -1}); err == nil {
		t.Error("negative epoch size accepted")
	}
}

func TestEpochLargerThanModule(t *testing.T) {
	host := onlineHost(t, 4)
	writeAppData(t, host, 4)
	s, err := New(host, Config{Distances: vendorADistances, RowsPerEpoch: 100})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.RunEpoch()
	if err != nil {
		t.Fatalf("RunEpoch: %v", err)
	}
	if len(res.RowsTested) != 4 || !res.SweepCompleted {
		t.Errorf("oversized epoch: tested %d rows, completed %v", len(res.RowsTested), res.SweepCompleted)
	}
}

// TestObservedCapturesRepeats: Observed must report every failure the
// epoch saw — including repeats of already-known cells — in canonical
// order, because the fleet's event log separates permanent from
// transient faults by repeat observation.
func TestObservedCapturesRepeats(t *testing.T) {
	const rows = 16
	host := onlineHost(t, rows)
	writeAppData(t, host, rows)
	s, err := New(host, Config{Distances: vendorADistances, RowsPerEpoch: rows})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Two full sweeps over identical rows: the second sweep's failures
	// are all repeats, so NewFailures must be empty while Observed
	// re-reports the deterministic victim set.
	first, err := s.RunEpoch()
	if err != nil {
		t.Fatalf("RunEpoch: %v", err)
	}
	if len(first.Observed) == 0 {
		t.Fatal("full sweep observed nothing despite victim population")
	}
	seen := make(map[memctl.BitAddr]struct{}, len(first.Observed))
	for i, a := range first.Observed {
		seen[a] = struct{}{}
		if i > 0 && !addrLessTest(first.Observed[i-1], a) {
			t.Fatalf("Observed out of canonical order at %d: %+v !< %+v", i, first.Observed[i-1], a)
		}
	}
	for _, a := range first.NewFailures {
		if _, ok := seen[a]; !ok {
			t.Errorf("NewFailures entry %+v missing from Observed", a)
		}
	}
	second, err := s.RunEpoch()
	if err != nil {
		t.Fatalf("second RunEpoch: %v", err)
	}
	if len(second.NewFailures) != 0 {
		t.Errorf("second identical sweep reported %d new failures", len(second.NewFailures))
	}
	if len(second.Observed) != len(first.Observed) {
		t.Fatalf("second sweep observed %d failures, first %d — repeats not captured",
			len(second.Observed), len(first.Observed))
	}
	for i := range second.Observed {
		if second.Observed[i] != first.Observed[i] {
			t.Fatalf("observation %d drifted across sweeps: %+v vs %+v", i, second.Observed[i], first.Observed[i])
		}
	}
}

func addrLessTest(a, b memctl.BitAddr) bool {
	if a.Chip != b.Chip {
		return a.Chip < b.Chip
	}
	if a.Bank != b.Bank {
		return a.Bank < b.Bank
	}
	if a.Row != b.Row {
		return a.Row < b.Row
	}
	return a.Col < b.Col
}
