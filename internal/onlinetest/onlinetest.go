// Package onlinetest schedules PARBOR-style data-dependent failure
// testing while the system is in operation — the deployment setting
// the paper targets ("detect and mitigate DRAM failures in the field,
// while the system is under operation", Section 1).
//
// Testing a region requires writing test patterns over it, so live
// data must survive. The scheduler works in epochs: each epoch it
// picks the next slice of rows (round-robin over the module), saves
// their contents through the memory controller, runs the
// neighbor-aware worst-case patterns against just those rows, restores
// the contents, and accumulates the discovered failures. The epoch
// budget bounds how many rows are out of service at a time, so the
// performance impact per refresh window stays fixed and full-module
// coverage builds up over many epochs.
//
// Because cells fail and recover over time (VRT, Section 5.2.1), the
// scheduler keeps testing after full coverage: a round counter tracks
// complete sweeps, and the failure set distinguishes everything ever
// seen from what the most recent sweep saw.
//
// The scheduler is also where the repository's resilience policies
// live, because the field — per the DDR4 field studies — delivers
// transient controller errors, intermittent chips, and operator
// interruptions, not just clean passes:
//
//   - Transient pass errors (memctl.IsTransient) are retried up to
//     Config.MaxRetries times with optional backoff.
//   - Chips that fail permanently (or exhaust their retries) are
//     quarantined: their rows are skipped for the rest of the run and
//     each epoch that loses rows this way reports Degraded partial
//     coverage instead of failing the whole module.
//   - RunEpoch is transactional about live data: the saved row
//     contents are restored on every exit path (including error and
//     cancellation paths, via defer on an uncancelable context), and
//     bits that could not be verifiably restored are surfaced in the
//     EpochResult rather than silently dropped.
//   - The full scheduler state is exportable (State) and rebuildable
//     (Resume), which is what the checkpoint layer serializes.
package onlinetest

import (
	"context"
	"fmt"
	"sort"
	"time"

	"parbor/internal/memctl"
	"parbor/internal/obs"
	"parbor/internal/patterns"
)

// Config tunes the scheduler.
type Config struct {
	// Distances is the neighbor-distance set from a prior PARBOR
	// detection run.
	Distances []int
	// ChunkBits is the scrambling chunk size (128 for the vendor
	// profiles).
	ChunkBits int
	// RowsPerEpoch is how many rows are taken out of service and
	// tested per epoch. Default 8.
	RowsPerEpoch int
	// MaxRetries bounds how many times one failing operation (a test
	// pass, a save read, a restore pass) is retried when its error is
	// transient. Default 2. Non-transient errors are never retried.
	MaxRetries int
	// RetryBackoff is slept between retry attempts (real time; the
	// simulated retention clock does not advance). Default 0.
	RetryBackoff time.Duration
}

func (c Config) withDefaults() Config {
	if c.RowsPerEpoch == 0 {
		c.RowsPerEpoch = 8
	}
	if c.ChunkBits == 0 {
		c.ChunkBits = 128
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	return c
}

// Validate rejects configurations outside the scheduler's domain,
// mirroring faults.Config.Validate. Zero values are legal (defaults
// fill them in); negatives and an empty distance set are not.
func (c Config) Validate() error {
	if len(c.Distances) == 0 {
		return fmt.Errorf("onlinetest: empty distance set")
	}
	if c.RowsPerEpoch < 0 {
		return fmt.Errorf("onlinetest: negative RowsPerEpoch %d", c.RowsPerEpoch)
	}
	if c.ChunkBits < 0 {
		return fmt.Errorf("onlinetest: negative ChunkBits %d", c.ChunkBits)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("onlinetest: negative MaxRetries %d", c.MaxRetries)
	}
	if c.RetryBackoff < 0 {
		return fmt.Errorf("onlinetest: negative RetryBackoff %v", c.RetryBackoff)
	}
	return nil
}

// Scheduler runs online test epochs against a module.
type Scheduler struct {
	host *memctl.Host
	cfg  Config
	pats []patterns.Pattern

	rows   []memctl.Row
	cursor int
	rounds int

	everSeen  map[memctl.BitAddr]struct{}
	sweepSeen map[memctl.BitAddr]struct{}
	tests     int

	quarantined map[int]struct{}
	retries     int
	degraded    int

	// epochs counts successfully completed epochs. It is the
	// scheduler's schedulable-unit clock: the fleet layer (package
	// fleet) budgets and compares runs in epochs, and a resumed
	// scheduler must continue the count rather than restart it.
	epochs int
}

// New builds a scheduler.
func New(host *memctl.Host, cfg Config) (*Scheduler, error) {
	if host == nil {
		return nil, fmt.Errorf("onlinetest: nil host")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	base, err := patterns.NeighborAware(cfg.Distances, cfg.ChunkBits)
	if err != nil {
		return nil, fmt.Errorf("onlinetest: building patterns: %w", err)
	}
	pats := make([]patterns.Pattern, 0, 2*len(base))
	for _, p := range base {
		pats = append(pats, p, p.Inverse())
	}

	g := host.Geometry()
	rows := make([]memctl.Row, 0, host.Chips()*g.RowCount())
	for chip := 0; chip < host.Chips(); chip++ {
		for bank := 0; bank < g.Banks; bank++ {
			for row := 0; row < g.Rows; row++ {
				rows = append(rows, memctl.Row{Chip: chip, Bank: bank, Row: row})
			}
		}
	}
	return &Scheduler{
		host:        host,
		cfg:         cfg,
		pats:        pats,
		rows:        rows,
		everSeen:    make(map[memctl.BitAddr]struct{}),
		sweepSeen:   make(map[memctl.BitAddr]struct{}),
		quarantined: make(map[int]struct{}),
	}, nil
}

// EpochResult summarizes one epoch.
type EpochResult struct {
	// RowsTested is the slice of rows taken out of service and
	// actually tested this epoch (quarantine-skipped rows excluded).
	RowsTested []memctl.Row
	// NewFailures are failures not seen in any earlier epoch.
	NewFailures []memctl.BitAddr
	// Observed are all distinct failures seen this epoch — repeats of
	// previously known failures included — in canonical (chip, bank,
	// row, col) order. Repeat observation across epochs is what the
	// fleet's event log uses to separate permanent faults from
	// transient ones, so NewFailures alone would not do.
	Observed []memctl.BitAddr
	// Tests is the number of successful passes this epoch.
	Tests int
	// SweepCompleted reports whether this epoch finished a full
	// module sweep.
	SweepCompleted bool

	// Retries is how many retry attempts transient faults consumed.
	Retries int
	// Quarantined lists chips newly quarantined during this epoch.
	Quarantined []int
	// SkippedRows are rows in the epoch's slice that were not tested
	// because their chip was already quarantined when the epoch began.
	SkippedRows []memctl.Row
	// Degraded reports partial coverage: some of the slice was skipped
	// or abandoned because of quarantined chips.
	Degraded bool
	// RestoreMismatch lists bits whose restored value did not read
	// back as the saved live data — a live-data integrity loss the
	// caller must know about.
	RestoreMismatch []memctl.BitAddr
	// UnrestoredRows lists rows whose restore could not be completed
	// at all (their chip died): their live data is gone.
	UnrestoredRows []memctl.Row
}

// RunEpoch takes the next row slice out of service, tests it with
// every worst-case pattern, restores its contents, and returns what
// it found. Live data in the tested rows is preserved exactly on the
// fault-free path, and best-effort (with explicit accounting in the
// result) under injected faults.
func (s *Scheduler) RunEpoch() (*EpochResult, error) {
	return s.RunEpochCtx(context.Background())
}

// RunEpochCtx is RunEpoch with cooperative cancellation. A done ctx
// aborts the epoch's remaining passes, but the saved live data is
// still restored (the restore runs on an uncancelable context) before
// the error returns; the cursor does not advance, so the epoch can be
// re-run after a resume.
func (s *Scheduler) RunEpochCtx(ctx context.Context) (result *EpochResult, err error) {
	n := s.cfg.RowsPerEpoch
	if n > len(s.rows) {
		n = len(s.rows)
	}
	res := &EpochResult{}
	var slice []memctl.Row
	for i := 0; i < n; i++ {
		r := s.rows[(s.cursor+i)%len(s.rows)]
		if _, q := s.quarantined[r.Chip]; q {
			res.SkippedRows = append(res.SkippedRows, r)
			continue
		}
		slice = append(slice, r)
	}

	// Save live data. (Snapshot reads at zero wait: the contents as
	// the application last wrote them.) A failing save read is retried
	// while transient; a chip whose save read fails permanently is
	// quarantined and its rows drop out of the epoch — nothing has
	// been written to them yet, so they are skipped, not lost.
	words := s.host.Geometry().Words()
	var rows []memctl.Row
	var saved [][]uint64
	for _, r := range slice {
		if _, q := s.quarantined[r.Chip]; q {
			res.SkippedRows = append(res.SkippedRows, r)
			continue
		}
		buf := make([]uint64, words)
		rerr := s.retrying(ctx, res, func() error { return s.host.ReadRowIntoCtx(ctx, r, buf) })
		if rerr != nil {
			if ctx.Err() != nil {
				s.report(res)
				return nil, fmt.Errorf("onlinetest: epoch cancelled while saving: %w", ctx.Err())
			}
			if _, ok := memctl.FaultedChips(rerr); !ok {
				s.report(res)
				return nil, fmt.Errorf("onlinetest: saving row %+v: %w", r, rerr)
			}
			s.quarantine(res, []int{r.Chip})
			res.SkippedRows = append(res.SkippedRows, r)
			continue
		}
		rows = append(rows, r)
		saved = append(saved, buf)
	}
	res.RowsTested = rows

	// From the first test write on, rows/saved hold overwritten live
	// data, so the restore must run on every exit path — success, pass
	// error, panic, or cancellation (hence the uncancelable context).
	// The restore set is all saved rows, including chips quarantined
	// mid-epoch: quarantine stops testing a chip, not the attempt to
	// give its live data back.
	wrote := false
	defer func() {
		if wrote {
			s.restore(context.WithoutCancel(ctx), res, rows, saved)
		}
		res.Degraded = len(res.SkippedRows) > 0 || len(res.Quarantined) > 0 || len(res.UnrestoredRows) > 0
		if err == nil && res.Degraded {
			s.degraded++
		}
		s.report(res)
	}()

	testRows := rows
	// epochSeen dedupes within the epoch: several patterns commonly
	// re-expose the same cell, but one epoch is one observation.
	epochSeen := make(map[memctl.BitAddr]struct{})
	bufs := make([][]uint64, len(rows))
	for i := range bufs {
		bufs[i] = make([]uint64, words)
	}
	for _, p := range s.pats {
		if len(testRows) == 0 {
			break
		}
		fill := bufs[:len(testRows)]
		for i, r := range testRows {
			p.Fill(r.Chip, r.Bank, r.Row, fill[i])
		}
		wrote = true
		var fails []memctl.BitAddr
		perr := s.retrying(ctx, res, func() error {
			var e error
			fails, e = s.host.PassCtx(ctx, testRows, fill)
			return e
		})
		if perr != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("onlinetest: epoch cancelled: %w", ctx.Err())
			}
			chips, ok := memctl.FaultedChips(perr)
			if !ok {
				return nil, fmt.Errorf("onlinetest: test pass: %w", perr)
			}
			// Permanent chip fault: quarantine and carry on with the
			// survivors. The dead chips' rows stay in the restore set —
			// the deferred restore will account for them.
			s.quarantine(res, chips)
			testRows, _ = withoutChips(testRows, nil, chips)
			continue
		}
		res.Tests++
		s.tests++
		for _, a := range fails {
			epochSeen[a] = struct{}{}
			s.sweepSeen[a] = struct{}{}
			if _, ok := s.everSeen[a]; !ok {
				s.everSeen[a] = struct{}{}
				res.NewFailures = append(res.NewFailures, a)
			}
		}
	}
	if len(epochSeen) > 0 {
		res.Observed = sortedAddrs(epochSeen)
	}

	s.cursor = (s.cursor + n) % len(s.rows)
	if s.cursor == 0 {
		s.rounds++
		res.SweepCompleted = true
		s.sweepSeen = make(map[memctl.BitAddr]struct{})
	}
	s.epochs++
	return res, nil
}

// retrying runs op, retrying transient errors up to the configured
// budget with backoff. Retry accounting lands in both the epoch
// result and the scheduler totals. Non-transient errors, exhausted
// budgets, and cancellation return the last error unchanged.
func (s *Scheduler) retrying(ctx context.Context, res *EpochResult, op func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil || !memctl.IsTransient(err) || attempt >= s.cfg.MaxRetries {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
		res.Retries++
		s.retries++
		if s.cfg.RetryBackoff > 0 {
			time.Sleep(s.cfg.RetryBackoff)
		}
	}
}

// quarantine marks chips out of service, recording them (sorted,
// deduplicated) in the epoch result.
func (s *Scheduler) quarantine(res *EpochResult, chips []int) {
	for _, c := range chips {
		if _, q := s.quarantined[c]; q {
			continue
		}
		s.quarantined[c] = struct{}{}
		res.Quarantined = append(res.Quarantined, c)
	}
	sort.Ints(res.Quarantined)
}

// withoutChips filters out the rows (and, when non-nil, the parallel
// data slice entries) whose chip is in drop, returning fresh slices
// so callers can keep the originals.
func withoutChips(rows []memctl.Row, data [][]uint64, drop []int) ([]memctl.Row, [][]uint64) {
	dead := make(map[int]struct{}, len(drop))
	for _, c := range drop {
		dead[c] = struct{}{}
	}
	outR := make([]memctl.Row, 0, len(rows))
	var outD [][]uint64
	if data != nil {
		outD = make([][]uint64, 0, len(data))
	}
	for i, r := range rows {
		if _, q := dead[r.Chip]; q {
			continue
		}
		outR = append(outR, r)
		if data != nil {
			outD = append(outD, data[i])
		}
	}
	return outR, outD
}

// restore writes the saved live data back and verifies it, retrying
// transient faults and quarantining chips that fail permanently.
// Verified mismatches and unrestorable rows are recorded in res. rows
// may include chips quarantined mid-epoch: restore still tries them
// (the data was overwritten, and an intermittent chip may be back),
// and only gives them up as unrestored when the hardware refuses.
func (s *Scheduler) restore(ctx context.Context, res *EpochResult, rows []memctl.Row, saved [][]uint64) {
	for len(rows) > 0 {
		var mismatch []memctl.BitAddr
		err := s.retrying(ctx, res, func() error {
			var e error
			mismatch, e = s.host.PassWithWaitCtx(ctx, rows, saved, 0)
			return e
		})
		if err == nil {
			res.RestoreMismatch = append(res.RestoreMismatch, mismatch...)
			return
		}
		chips, ok := memctl.FaultedChips(err)
		if !ok {
			// No chip attribution: nothing actionable, everything still
			// pending is unrestored.
			res.UnrestoredRows = append(res.UnrestoredRows, rows...)
			return
		}
		// The faulted chips' rows are lost; survivors get another
		// restore pass. Each iteration removes at least the faulted
		// chips' rows from the set, so this terminates.
		s.quarantine(res, chips)
		for _, r := range rows {
			for _, c := range chips {
				if r.Chip == c {
					res.UnrestoredRows = append(res.UnrestoredRows, r)
					break
				}
			}
		}
		rows, saved = withoutChips(rows, saved, chips)
	}
}

// report publishes the epoch's resilience accounting through the
// host's recorder, if one is attached.
func (s *Scheduler) report(res *EpochResult) {
	rec := s.host.Recorder()
	if rec == nil {
		return
	}
	if res.Retries > 0 {
		rec.Add(obs.CounterRetries, uint64(res.Retries))
	}
	if len(res.Quarantined) > 0 {
		rec.Add(obs.CounterQuarantinedChips, uint64(len(res.Quarantined)))
	}
	if res.Degraded || len(res.SkippedRows) > 0 || len(res.Quarantined) > 0 {
		rec.Add(obs.CounterDegradedEpochs, 1)
	}
	if len(res.RestoreMismatch) > 0 {
		rec.Add(obs.CounterUnrestoredBits, uint64(len(res.RestoreMismatch)))
	}
	if len(res.UnrestoredRows) > 0 {
		rec.Add(obs.CounterUnrestoredRows, uint64(len(res.UnrestoredRows)))
	}
}

// Coverage returns the fraction of the module tested in the current
// sweep.
func (s *Scheduler) Coverage() float64 {
	if s.rounds > 0 && s.cursor == 0 {
		return 1
	}
	return float64(s.cursor) / float64(len(s.rows))
}

// Rounds returns the number of completed full-module sweeps.
func (s *Scheduler) Rounds() int { return s.rounds }

// Epochs returns the number of successfully completed epochs,
// including those before a checkpoint/resume.
func (s *Scheduler) Epochs() int { return s.epochs }

// Failures returns every failure observed in any epoch.
func (s *Scheduler) Failures() map[memctl.BitAddr]struct{} {
	out := make(map[memctl.BitAddr]struct{}, len(s.everSeen))
	for a := range s.everSeen {
		out[a] = struct{}{}
	}
	return out
}

// Tests returns the total successful pass count across epochs.
func (s *Scheduler) Tests() int { return s.tests }

// Quarantined returns the chips currently out of service, ascending.
func (s *Scheduler) Quarantined() []int {
	out := make([]int, 0, len(s.quarantined))
	for c := range s.quarantined {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Retries returns the total retry attempts consumed across epochs.
func (s *Scheduler) Retries() int { return s.retries }

// DegradedEpochs returns how many epochs ran with partial coverage.
func (s *Scheduler) DegradedEpochs() int { return s.degraded }
