// Package onlinetest schedules PARBOR-style data-dependent failure
// testing while the system is in operation — the deployment setting
// the paper targets ("detect and mitigate DRAM failures in the field,
// while the system is under operation", Section 1).
//
// Testing a region requires writing test patterns over it, so live
// data must survive. The scheduler works in epochs: each epoch it
// picks the next slice of rows (round-robin over the module), saves
// their contents through the memory controller, runs the
// neighbor-aware worst-case patterns against just those rows, restores
// the contents, and accumulates the discovered failures. The epoch
// budget bounds how many rows are out of service at a time, so the
// performance impact per refresh window stays fixed and full-module
// coverage builds up over many epochs.
//
// Because cells fail and recover over time (VRT, Section 5.2.1), the
// scheduler keeps testing after full coverage: a round counter tracks
// complete sweeps, and the failure set distinguishes everything ever
// seen from what the most recent sweep saw.
package onlinetest

import (
	"fmt"

	"parbor/internal/memctl"
	"parbor/internal/patterns"
)

// Config tunes the scheduler.
type Config struct {
	// Distances is the neighbor-distance set from a prior PARBOR
	// detection run.
	Distances []int
	// ChunkBits is the scrambling chunk size (128 for the vendor
	// profiles).
	ChunkBits int
	// RowsPerEpoch is how many rows are taken out of service and
	// tested per epoch. Default 8.
	RowsPerEpoch int
}

func (c Config) withDefaults() Config {
	if c.RowsPerEpoch == 0 {
		c.RowsPerEpoch = 8
	}
	if c.ChunkBits == 0 {
		c.ChunkBits = 128
	}
	return c
}

// Scheduler runs online test epochs against a module.
type Scheduler struct {
	host *memctl.Host
	cfg  Config
	pats []patterns.Pattern

	rows   []memctl.Row
	cursor int
	rounds int

	everSeen  map[memctl.BitAddr]struct{}
	sweepSeen map[memctl.BitAddr]struct{}
	tests     int
}

// New builds a scheduler.
func New(host *memctl.Host, cfg Config) (*Scheduler, error) {
	if host == nil {
		return nil, fmt.Errorf("onlinetest: nil host")
	}
	cfg = cfg.withDefaults()
	if len(cfg.Distances) == 0 {
		return nil, fmt.Errorf("onlinetest: empty distance set")
	}
	if cfg.RowsPerEpoch < 1 {
		return nil, fmt.Errorf("onlinetest: RowsPerEpoch %d < 1", cfg.RowsPerEpoch)
	}
	base, err := patterns.NeighborAware(cfg.Distances, cfg.ChunkBits)
	if err != nil {
		return nil, fmt.Errorf("onlinetest: building patterns: %w", err)
	}
	pats := make([]patterns.Pattern, 0, 2*len(base))
	for _, p := range base {
		pats = append(pats, p, p.Inverse())
	}

	g := host.Geometry()
	rows := make([]memctl.Row, 0, host.Chips()*g.RowCount())
	for chip := 0; chip < host.Chips(); chip++ {
		for bank := 0; bank < g.Banks; bank++ {
			for row := 0; row < g.Rows; row++ {
				rows = append(rows, memctl.Row{Chip: chip, Bank: bank, Row: row})
			}
		}
	}
	return &Scheduler{
		host:      host,
		cfg:       cfg,
		pats:      pats,
		rows:      rows,
		everSeen:  make(map[memctl.BitAddr]struct{}),
		sweepSeen: make(map[memctl.BitAddr]struct{}),
	}, nil
}

// EpochResult summarizes one epoch.
type EpochResult struct {
	// RowsTested is the slice of rows taken out of service.
	RowsTested []memctl.Row
	// NewFailures are failures not seen in any earlier epoch.
	NewFailures []memctl.BitAddr
	// Tests is the number of passes this epoch.
	Tests int
	// SweepCompleted reports whether this epoch finished a full
	// module sweep.
	SweepCompleted bool
}

// RunEpoch takes the next row slice out of service, tests it with
// every worst-case pattern, restores its contents, and returns what
// it found. Live data in the tested rows is preserved exactly.
func (s *Scheduler) RunEpoch() (*EpochResult, error) {
	n := s.cfg.RowsPerEpoch
	if n > len(s.rows) {
		n = len(s.rows)
	}
	slice := make([]memctl.Row, 0, n)
	for i := 0; i < n; i++ {
		slice = append(slice, s.rows[(s.cursor+i)%len(s.rows)])
	}

	// Save live data. (Snapshot reads at zero wait: the contents as
	// the application last wrote them.)
	words := s.host.Geometry().Words()
	saved := make([][]uint64, len(slice))
	for i, r := range slice {
		saved[i] = make([]uint64, words)
		if err := s.host.ReadRowInto(r, saved[i]); err != nil {
			return nil, fmt.Errorf("onlinetest: saving row %+v: %w", r, err)
		}
	}

	res := &EpochResult{RowsTested: slice}
	bufs := make([][]uint64, len(slice))
	for i := range bufs {
		bufs[i] = make([]uint64, words)
	}
	for _, p := range s.pats {
		for i, r := range slice {
			p.Fill(r.Chip, r.Bank, r.Row, bufs[i])
		}
		fails, err := s.host.Pass(slice, bufs)
		if err != nil {
			return nil, fmt.Errorf("onlinetest: test pass: %w", err)
		}
		res.Tests++
		s.tests++
		for _, a := range fails {
			s.sweepSeen[a] = struct{}{}
			if _, ok := s.everSeen[a]; !ok {
				s.everSeen[a] = struct{}{}
				res.NewFailures = append(res.NewFailures, a)
			}
		}
	}

	// Restore live data.
	if _, err := s.host.PassWithWait(slice, saved, 0); err != nil {
		return nil, fmt.Errorf("onlinetest: restoring rows: %w", err)
	}

	s.cursor = (s.cursor + n) % len(s.rows)
	if s.cursor == 0 {
		s.rounds++
		res.SweepCompleted = true
		s.sweepSeen = make(map[memctl.BitAddr]struct{})
	}
	return res, nil
}

// Coverage returns the fraction of the module tested in the current
// sweep.
func (s *Scheduler) Coverage() float64 {
	if s.rounds > 0 && s.cursor == 0 {
		return 1
	}
	return float64(s.cursor) / float64(len(s.rows))
}

// Rounds returns the number of completed full-module sweeps.
func (s *Scheduler) Rounds() int { return s.rounds }

// Failures returns every failure observed in any epoch.
func (s *Scheduler) Failures() map[memctl.BitAddr]struct{} {
	out := make(map[memctl.BitAddr]struct{}, len(s.everSeen))
	for a := range s.everSeen {
		out[a] = struct{}{}
	}
	return out
}

// Tests returns the total pass count across epochs.
func (s *Scheduler) Tests() int { return s.tests }
