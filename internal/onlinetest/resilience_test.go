package onlinetest

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"parbor/internal/chaos"
	"parbor/internal/coupling"
	"parbor/internal/dram"
	"parbor/internal/memctl"
	"parbor/internal/obs"
	"parbor/internal/scramble"
)

// chaosHost is onlineHost with a fault plane and recorder attached.
// The module keeps the zero faults.Config: retried passes advance the
// chip pass counter, so retry bit-identity only holds when the
// cell-level noise models (which draw per pass) are off.
func chaosHost(t *testing.T, chips, rows int, plane memctl.FaultPlane, rec obs.Recorder) *memctl.Host {
	t.Helper()
	mod, err := dram.NewModule(dram.ModuleConfig{
		Vendor:   scramble.VendorA,
		Chips:    chips,
		Geometry: dram.Geometry{Banks: 1, Rows: rows, Cols: 8192},
		Coupling: coupling.Config{
			VulnerableRate:  2e-3,
			StrongLeftFrac:  0.3,
			StrongRightFrac: 0.3,
			RetentionMinMs:  100,
			RetentionMaxMs:  100,
		},
		Seed:     61,
		Recorder: rec,
	})
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	host, err := memctl.NewHostWithConfig(mod, memctl.HostConfig{Faults: plane, Recorder: rec})
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	return host
}

func runSweep(t *testing.T, s *Scheduler) []*EpochResult {
	t.Helper()
	var out []*EpochResult
	for s.Rounds() == 0 {
		res, err := s.RunEpochCtx(context.Background())
		if err != nil {
			t.Fatalf("epoch %d: %v", len(out), err)
		}
		out = append(out, res)
		if len(out) > 1000 {
			t.Fatal("sweep did not complete in 1000 epochs")
		}
	}
	return out
}

func TestConfigValidateErrorPaths(t *testing.T) {
	bad := []Config{
		{},
		{Distances: vendorADistances, RowsPerEpoch: -1},
		{Distances: vendorADistances, ChunkBits: -8},
		{Distances: vendorADistances, MaxRetries: -1},
		{Distances: vendorADistances, RetryBackoff: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
		if _, err := New(onlineHost(t, 8), cfg); err == nil {
			t.Errorf("New accepted bad config %d: %+v", i, cfg)
		}
	}
	good := Config{Distances: vendorADistances}
	if err := good.Validate(); err != nil {
		t.Errorf("zero-valued optional fields rejected: %v", err)
	}
}

// TestRetryBitIdentity is the headline resilience property: under
// injected transient faults, the retry policy must deliver the exact
// failure set of a fault-free run — same bits, nothing lost, nothing
// invented.
func TestRetryBitIdentity(t *testing.T) {
	const chips, rows = 2, 32

	clean := chaosHost(t, chips, rows, nil, nil)
	ref, err := New(clean, Config{Distances: vendorADistances, RowsPerEpoch: 8})
	if err != nil {
		t.Fatal(err)
	}
	runSweep(t, ref)

	plane, err := chaos.New(chaos.Config{Seed: 11, WriteFaultProb: 0.004, ReadFaultProb: 0.004}, nil)
	if err != nil {
		t.Fatal(err)
	}
	faulty := chaosHost(t, chips, rows, plane, nil)
	s, err := New(faulty, Config{Distances: vendorADistances, RowsPerEpoch: 8, MaxRetries: 8})
	if err != nil {
		t.Fatal(err)
	}
	results := runSweep(t, s)

	retries := 0
	for _, res := range results {
		retries += res.Retries
	}
	if retries == 0 {
		t.Fatal("fault plane injected nothing; pick a hotter seed or probability")
	}
	if retries != s.Retries() {
		t.Errorf("epoch results count %d retries, scheduler counts %d", retries, s.Retries())
	}
	if q := s.Quarantined(); len(q) != 0 {
		t.Fatalf("transient-only plane quarantined chips %v; retry budget too small for this test", q)
	}
	if !reflect.DeepEqual(s.Failures(), ref.Failures()) {
		t.Errorf("retried sweep found %d failures, fault-free sweep %d — retry is not transparent",
			len(s.Failures()), len(ref.Failures()))
	}
}

// TestDeadChipQuarantine: a chip that is dead from the start must be
// quarantined on first contact, its rows skipped thereafter, every
// affected epoch flagged degraded — and the rest of the module swept
// normally.
func TestDeadChipQuarantine(t *testing.T) {
	const chips, rows = 2, 16
	col := obs.NewCollector()
	// The plane reports to the same collector as the host, so the
	// injected faults sit next to the quarantine counters they caused
	// (Reconcile cross-checks exactly that pairing).
	plane, err := chaos.New(chaos.Config{DeadChips: []chaos.Window{{Chip: 1, From: 0, To: 0}}}, col)
	if err != nil {
		t.Fatal(err)
	}
	host := chaosHost(t, chips, rows, plane, col)
	s, err := New(host, Config{Distances: vendorADistances, RowsPerEpoch: 8})
	if err != nil {
		t.Fatal(err)
	}
	results := runSweep(t, s)

	if got := s.Quarantined(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("quarantined %v, want [1]", got)
	}
	for i, res := range results {
		touchedDead := len(res.SkippedRows) > 0 || len(res.Quarantined) > 0
		if touchedDead && !res.Degraded {
			t.Errorf("epoch %d lost rows but is not flagged degraded: %+v", i, res)
		}
		for _, r := range res.RowsTested {
			if r.Chip == 1 {
				t.Errorf("epoch %d tested row %+v on the dead chip", i, r)
			}
		}
	}
	for a := range s.Failures() {
		if a.Chip == 1 {
			t.Errorf("failure %+v attributed to the dead, untested chip", a)
		}
	}
	if len(s.Failures()) == 0 {
		t.Error("surviving chip produced no failures despite victim population")
	}
	if s.DegradedEpochs() == 0 {
		t.Error("no epochs counted degraded despite a dead chip")
	}

	// The reported counters must reconcile even under faults: the
	// cross-check only binds them to zero when no chaos was injected,
	// and here it was.
	rep := col.Snapshot("quarantine-test")
	if err := rep.Reconcile(); err != nil {
		t.Errorf("faulted run does not reconcile: %v", err)
	}
	if rep.Counters[obs.CounterQuarantinedChips] != 1 {
		t.Errorf("counters %v, want one quarantined chip", rep.Counters)
	}
}

// cancelPlane cancels a context the first time a test-pass write
// begins, producing a deterministic mid-epoch cancellation: live data
// is already saved and partially overwritten when the cancel lands.
type cancelPlane struct {
	cancel context.CancelFunc
	fired  bool
}

func (p *cancelPlane) BeforeWrite(attempt int, r memctl.Row) error {
	if !p.fired {
		p.fired = true
		p.cancel()
	}
	return nil
}

func (p *cancelPlane) BeforeRead(attempt int, r memctl.Row) error { return nil }

// TestCancelledEpochRestoresLiveData: cancellation mid-epoch must
// return promptly with the ctx error — after putting the saved live
// data back.
func TestCancelledEpochRestoresLiveData(t *testing.T) {
	const rows = 16
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	plane := &cancelPlane{cancel: cancel}
	host := chaosHost(t, 1, rows, plane, nil)
	app := writeAppData(t, host, rows)

	s, err := New(host, Config{Distances: vendorADistances, RowsPerEpoch: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.RunEpochCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled epoch returned %v, want context.Canceled", err)
	}
	if s.Coverage() != 0 {
		t.Errorf("cancelled epoch advanced the cursor to coverage %v", s.Coverage())
	}

	got := make([]uint64, host.Geometry().Words())
	for r := 0; r < rows; r++ {
		if err := host.ReadRowInto(memctl.Row{Chip: 0, Bank: 0, Row: r}, got); err != nil {
			t.Fatalf("ReadRowInto: %v", err)
		}
		for w := range got {
			if got[w] != app[r][w] {
				t.Fatalf("row %d word %d lost to the cancelled epoch: %x != %x", r, w, got[w], app[r][w])
			}
		}
	}

	// The same scheduler finishes the sweep once the pressure is off.
	runSweep(t, s)
}

// TestChaosSoak hammers a sweep with transient faults, stalls, and a
// chip that dies and revives, checking the bookkeeping stays
// consistent throughout. Run with -race this doubles as the
// concurrency check for the fault plane under the sharded host.
func TestChaosSoak(t *testing.T) {
	const chips, rows = 3, 16
	plane, err := chaos.New(chaos.Config{
		Seed:           23,
		WriteFaultProb: 0.002,
		ReadFaultProb:  0.002,
		StallProb:      0.001,
		DeadChips: []chaos.Window{
			// Dead for the sweep's first visit (first contact lands
			// around attempt 164), revived well before the second one:
			// the chip comes back, but quarantine is deliberately
			// permanent, so it stays out of service.
			{Chip: 2, From: 0, To: 400},
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	host := chaosHost(t, chips, rows, plane, nil)
	s, err := New(host, Config{Distances: vendorADistances, RowsPerEpoch: 8, MaxRetries: 8})
	if err != nil {
		t.Fatal(err)
	}

	totalRetries, totalQuarantined := 0, 0
	sawDegraded := false
	for epoch := 0; epoch < 24; epoch++ {
		res, err := s.RunEpochCtx(context.Background())
		if err != nil {
			t.Fatalf("soak epoch %d: %v", epoch, err)
		}
		totalRetries += res.Retries
		totalQuarantined += len(res.Quarantined)
		if res.Degraded {
			sawDegraded = true
			if len(res.SkippedRows) == 0 && len(res.Quarantined) == 0 && len(res.UnrestoredRows) == 0 {
				t.Errorf("epoch %d degraded with no cause recorded: %+v", epoch, res)
			}
		}
	}
	if totalRetries != s.Retries() {
		t.Errorf("epoch retries sum %d != scheduler total %d", totalRetries, s.Retries())
	}
	if totalQuarantined != len(s.Quarantined()) {
		t.Errorf("epoch quarantine sum %d != scheduler list %v", totalQuarantined, s.Quarantined())
	}
	if totalRetries == 0 {
		t.Error("soak injected no transient faults; parameters too cold")
	}
	if len(s.Quarantined()) == 0 {
		t.Error("dead-chip window never triggered quarantine; parameters too cold")
	} else if sawDegraded == false {
		t.Error("quarantine without any degraded epoch")
	}
	if plane.Dead(400, 2) {
		t.Error("chip 2 should have revived at attempt 400")
	}
	// Failures on quarantined chips must predate their quarantine;
	// failures elsewhere must match a fault-free twin's.
	clean := chaosHost(t, chips, rows, nil, nil)
	ref, err := New(clean, Config{Distances: vendorADistances, RowsPerEpoch: 8})
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 24; epoch++ {
		if _, err := ref.RunEpochCtx(context.Background()); err != nil {
			t.Fatalf("reference epoch %d: %v", epoch, err)
		}
	}
	refFails := ref.Failures()
	for a := range s.Failures() {
		if _, ok := refFails[a]; !ok {
			t.Errorf("soak invented failure %+v not present fault-free", a)
		}
	}
}
