package scramble

import (
	"testing"
)

// checkBijective asserts the structural invariants every Mapping must
// hold: the segments are a partition of the chunk (each system offset
// appears exactly once — the mapping is a bijection over the row
// space), neighbor links are mutual inverses, neighbors never leave
// the aligned chunk, and every realized distance is advertised.
func checkBijective(t *testing.T, m *Mapping, sysBase int) {
	t.Helper()
	chunk := m.ChunkBits()
	seen := make([]int, chunk)
	for _, seg := range m.Segments() {
		for _, o := range seg {
			if o < 0 || o >= chunk {
				t.Fatalf("segment offset %d outside chunk [0,%d)", o, chunk)
			}
			seen[o]++
		}
	}
	for o, n := range seen {
		if n != 1 {
			t.Fatalf("offset %d covered %d times, want exactly once", o, n)
		}
	}

	distances := make(map[int]bool)
	for _, d := range m.Distances() {
		distances[d] = true
	}
	for d := range distances {
		if !distances[-d] {
			t.Fatalf("Distances() not symmetric: has %d but not %d", d, -d)
		}
	}

	base := sysBase - sysBase%chunk
	for o := 0; o < chunk; o++ {
		bit := base + o
		left, right, hasLeft, hasRight := m.Neighbors(bit)
		if hasLeft {
			if left/chunk != bit/chunk {
				t.Fatalf("bit %d: left neighbor %d leaves the chunk", bit, left)
			}
			if !distances[left-bit] {
				t.Fatalf("bit %d: left distance %d not in Distances() %v", bit, left-bit, m.Distances())
			}
			// The left neighbor's right neighbor must be this cell.
			_, back, _, ok := m.Neighbors(left)
			if !ok || back != bit {
				t.Fatalf("bit %d: left link not mutual (left=%d, its right=%d, ok=%v)", bit, left, back, ok)
			}
		}
		if hasRight {
			if right/chunk != bit/chunk {
				t.Fatalf("bit %d: right neighbor %d leaves the chunk", bit, right)
			}
			if !distances[right-bit] {
				t.Fatalf("bit %d: right distance %d not in Distances() %v", bit, right-bit, m.Distances())
			}
			back, _, ok, _ := m.Neighbors(right)
			if !ok || back != bit {
				t.Fatalf("bit %d: right link not mutual (right=%d, its left=%d, ok=%v)", bit, right, back, ok)
			}
		}
	}
}

// fuzzPermutation derives a permutation of [0, n) from a seed
// (Fisher-Yates over a splitmix64 stream).
func fuzzPermutation(n int, seed uint64) []int {
	next := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// FuzzScrambleBijective checks, for every vendor profile and for
// arbitrary fuzz-derived segment layouts, that the mapping is a
// bijection over the row space and that its neighbor tables are
// self-consistent at arbitrary system addresses.
func FuzzScrambleBijective(f *testing.F) {
	for _, v := range []Vendor{VendorLinear, VendorA, VendorB, VendorC, VendorToy} {
		f.Add(int(v), uint32(0), uint64(1), uint8(1))
	}
	f.Add(int(VendorA), uint32(1<<20), uint64(99), uint8(4))
	f.Fuzz(func(t *testing.T, vendorInt int, chunkIdx uint32, seed uint64, segCount uint8) {
		// Part 1: the built-in profiles, probed at a fuzz-chosen chunk.
		v := Vendor(vendorInt)
		if m, err := New(v); err == nil {
			checkBijective(t, m, int(chunkIdx%(1<<16))*m.ChunkBits())
		} else if v >= VendorLinear && v <= VendorToy {
			t.Fatalf("built-in vendor %v failed to build: %v", v, err)
		}

		// Part 2: a custom mapping from a fuzz-derived permutation,
		// split into up to segCount segments. FromSegments must accept
		// every partition of a permutation and produce a mapping that
		// passes the same invariants.
		const chunkBits = 32
		perm := fuzzPermutation(chunkBits, seed)
		pieces := int(segCount)%8 + 1
		per := (chunkBits + pieces - 1) / pieces
		var segs [][]int
		for start := 0; start < chunkBits; start += per {
			end := start + per
			if end > chunkBits {
				end = chunkBits
			}
			segs = append(segs, perm[start:end])
		}
		m, err := FromSegments(VendorLinear, chunkBits, segs)
		if err != nil {
			t.Fatalf("FromSegments rejected a valid partition: %v", err)
		}
		checkBijective(t, m, int(chunkIdx%1024)*chunkBits)

		// Part 3: corrupting the partition must be rejected. Duplicate
		// one offset by overwriting the first element of the last
		// segment with the first element of the first.
		if len(segs) > 1 {
			bad := make([][]int, len(segs))
			for i, s := range segs {
				bad[i] = append([]int(nil), s...)
			}
			bad[len(bad)-1][0] = bad[0][0]
			if _, err := FromSegments(VendorLinear, chunkBits, bad); err == nil {
				t.Fatal("FromSegments accepted a duplicated offset")
			}
		}
	})
}
