package scramble

import "testing"

func BenchmarkNeighbors(b *testing.B) {
	m := MustNew(VendorA)
	for i := 0; i < b.N; i++ {
		_, _, _, _ = m.Neighbors(i & 8191)
	}
}

func BenchmarkNewVendorC(b *testing.B) {
	// Vendor C runs the matching/augmentation construction.
	for i := 0; i < b.N; i++ {
		_ = MustNew(VendorC)
	}
}
