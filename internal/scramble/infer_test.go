package scramble

import "testing"

func TestInferRealizesVendorDistanceSets(t *testing.T) {
	for _, v := range Vendors() {
		t.Run(v.String(), func(t *testing.T) {
			truth := MustNew(v)
			inferred, err := Infer(truth.Distances(), truth.ChunkBits())
			if err != nil {
				t.Fatalf("Infer: %v", err)
			}
			// Soundness: the inferred layout may only use the given
			// distances.
			want := make(map[int]bool)
			for _, d := range truth.Distances() {
				want[d] = true
			}
			for _, d := range inferred.Distances() {
				if !want[d] {
					t.Errorf("inferred layout uses distance %+d outside the input set", d)
				}
			}
			// Completeness: every input distance must appear.
			got := make(map[int]bool)
			for _, d := range inferred.Distances() {
				got[d] = true
			}
			for d := range want {
				if !got[d] {
					t.Errorf("inferred layout never realizes distance %+d", d)
				}
			}
		})
	}
}

func TestInferFrequencyBalance(t *testing.T) {
	m, err := Infer([]int{-48, -16, -8, 8, 16, 48}, 128)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	counts := m.DistanceCounts()
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	for d, c := range counts {
		if float64(c) < 0.2*float64(max) {
			t.Errorf("distance %+d occurs %d times vs max %d; want balanced", d, c, max)
		}
	}
}

func TestInferValidation(t *testing.T) {
	if _, err := Infer(nil, 128); err == nil {
		t.Error("empty distances accepted")
	}
	if _, err := Infer([]int{1}, 0); err == nil {
		t.Error("zero chunk accepted")
	}
	if _, err := Infer([]int{128}, 128); err == nil {
		t.Error("distance >= chunk accepted")
	}
	if _, err := Infer([]int{0}, 128); err == nil {
		t.Error("zero distance accepted")
	}
}

// TestInferredMappingDetectable closes the loop: a chip built on an
// inferred layout must be detectable, yielding a subset of the input
// distances (detection only reports what the victim sample realizes).
func TestInferredMappingDetectable(t *testing.T) {
	inferred, err := Infer([]int{-64, -1, 1, 64}, 128)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	// Every cell of the inferred mapping must have consistent
	// neighbor tables (exercised through the property accessors).
	for o := 0; o < inferred.ChunkBits(); o++ {
		l, r, hasL, hasR := inferred.Neighbors(o)
		if hasL && (l < 0 || l >= inferred.ChunkBits()) {
			t.Fatalf("offset %d: left neighbor %d out of range", o, l)
		}
		if hasR && (r < 0 || r >= inferred.ChunkBits()) {
			t.Fatalf("offset %d: right neighbor %d out of range", o, r)
		}
	}
}
