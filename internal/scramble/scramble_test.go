package scramble

import (
	"reflect"
	"testing"
	"testing/quick"
)

func ints(xs ...int) []int { return xs }

func TestVendorDistanceSets(t *testing.T) {
	tests := []struct {
		vendor Vendor
		want   []int
	}{
		{vendor: VendorLinear, want: ints(-1, 1)},
		{vendor: VendorA, want: ints(-48, -16, -8, 8, 16, 48)},
		{vendor: VendorB, want: ints(-64, -1, 1, 64)},
		{vendor: VendorC, want: ints(-49, -33, -16, 16, 33, 49)},
		{vendor: VendorToy, want: ints(-5, -1, 1, 5)},
	}
	for _, tt := range tests {
		t.Run(tt.vendor.String(), func(t *testing.T) {
			m := MustNew(tt.vendor)
			if got := m.Distances(); !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Distances() = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestRegionDistancesMatchFigure11 pins the per-level region-distance
// sets published in Figure 11 of the paper. These sets determine the
// Table 1 test counts, so they are the load-bearing property of the
// vendor models.
func TestRegionDistancesMatchFigure11(t *testing.T) {
	levels := []int{4096, 512, 64, 8, 1}
	tests := []struct {
		vendor Vendor
		want   [][]int // per level
	}{
		{
			vendor: VendorA,
			want: [][]int{
				ints(0),
				ints(0),
				ints(-1, 0, 1),
				ints(-6, -2, -1, 1, 2, 6),
				ints(-48, -16, -8, 8, 16, 48),
			},
		},
		{
			vendor: VendorB,
			want: [][]int{
				ints(0),
				ints(0),
				ints(-1, 0, 1),
				ints(-8, 0, 8),
				ints(-64, -1, 1, 64),
			},
		},
		{
			vendor: VendorC,
			want: [][]int{
				ints(0),
				ints(0),
				ints(-1, 0, 1),
				ints(-6, -4, -2, 2, 4, 6),
				ints(-49, -33, -16, 16, 33, 49),
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.vendor.String(), func(t *testing.T) {
			m := MustNew(tt.vendor)
			for i, size := range levels {
				got, err := m.RegionDistances(size)
				if err != nil {
					t.Fatalf("RegionDistances(%d): %v", size, err)
				}
				if !reflect.DeepEqual(got, tt.want[i]) {
					t.Errorf("L%d (region %d): distances = %v, want %v", i+1, size, got, tt.want[i])
				}
			}
		})
	}
}

// TestTable1TestCounts derives the per-level test counts implied by
// the region-distance sets (t_i = N_{i-1} * S_i, Section 7.1) and
// checks them against Table 1 of the paper.
func TestTable1TestCounts(t *testing.T) {
	levels := []int{4096, 512, 64, 8, 1}
	tests := []struct {
		vendor    Vendor
		wantLevel []int
		wantTotal int
	}{
		{vendor: VendorA, wantLevel: ints(2, 8, 8, 24, 48), wantTotal: 90},
		{vendor: VendorB, wantLevel: ints(2, 8, 8, 24, 24), wantTotal: 66},
		{vendor: VendorC, wantLevel: ints(2, 8, 8, 24, 48), wantTotal: 90},
	}
	const rowBits = 8192
	for _, tt := range tests {
		t.Run(tt.vendor.String(), func(t *testing.T) {
			m := MustNew(tt.vendor)
			prevRegions := 1 // L1 subdivides the whole row
			prevSize := rowBits
			total := 0
			for i, size := range levels {
				nTests := prevRegions * (prevSize / size)
				if nTests != tt.wantLevel[i] {
					t.Errorf("L%d: tests = %d, want %d", i+1, nTests, tt.wantLevel[i])
				}
				total += nTests
				dists, err := m.RegionDistances(size)
				if err != nil {
					t.Fatalf("RegionDistances(%d): %v", size, err)
				}
				prevRegions = len(dists)
				prevSize = size
			}
			if total != tt.wantTotal {
				t.Errorf("total tests = %d, want %d", total, tt.wantTotal)
			}
		})
	}
}

func TestSegmentsCoverChunkExactlyOnce(t *testing.T) {
	for _, v := range []Vendor{VendorLinear, VendorA, VendorB, VendorC, VendorToy} {
		t.Run(v.String(), func(t *testing.T) {
			m := MustNew(v)
			seen := make(map[int]int)
			for _, seg := range m.Segments() {
				for _, o := range seg {
					seen[o]++
				}
			}
			if len(seen) != m.ChunkBits() {
				t.Fatalf("segments cover %d offsets, want %d", len(seen), m.ChunkBits())
			}
			for o, n := range seen {
				if n != 1 {
					t.Errorf("offset %d covered %d times", o, n)
				}
			}
		})
	}
}

// TestVendorCHasFewIsolatedCells checks that the greedy path-cover
// construction for vendor C leaves almost no cells without neighbors,
// since isolated cells can never exhibit data-dependent failures.
func TestVendorCHasFewIsolatedCells(t *testing.T) {
	m := MustNew(VendorC)
	isolated := 0
	for _, seg := range m.Segments() {
		if len(seg) == 1 {
			isolated++
		}
	}
	if isolated > m.ChunkBits()/10 {
		t.Errorf("%d of %d cells are isolated; want <= 10%%", isolated, m.ChunkBits())
	}
}

// TestDistanceFrequencyBalance checks that for every vendor, each
// true neighbor distance occurs often enough per chunk to clear
// PARBOR's ranking threshold (Section 5.2.4). A distance rarer than
// ~15% of the most frequent one risks being filtered as noise.
func TestDistanceFrequencyBalance(t *testing.T) {
	for _, v := range Vendors() {
		t.Run(v.String(), func(t *testing.T) {
			m := MustNew(v)
			counts := m.DistanceCounts()
			max := 0
			for _, c := range counts {
				if c > max {
					max = c
				}
			}
			for d, c := range counts {
				if float64(c) < 0.15*float64(max) {
					t.Errorf("distance %+d occurs %d times vs max %d; too rare for ranking", d, c, max)
				}
			}
		})
	}
}

func TestNeighborsAreMutual(t *testing.T) {
	for _, v := range []Vendor{VendorLinear, VendorA, VendorB, VendorC, VendorToy} {
		t.Run(v.String(), func(t *testing.T) {
			m := MustNew(v)
			// Test across several chunks to exercise the chunk-base math.
			for base := 0; base < 3*m.ChunkBits(); base += m.ChunkBits() {
				for o := 0; o < m.ChunkBits(); o++ {
					bit := base + o
					l, r, hasL, hasR := m.Neighbors(bit)
					if hasL {
						_, rr, _, hasRR := m.Neighbors(l)
						if !hasRR || rr != bit {
							t.Fatalf("bit %d: left neighbor %d does not point back (right=%d, has=%v)", bit, l, rr, hasRR)
						}
					}
					if hasR {
						ll, _, hasLL, _ := m.Neighbors(r)
						if !hasLL || ll != bit {
							t.Fatalf("bit %d: right neighbor %d does not point back (left=%d, has=%v)", bit, r, ll, hasLL)
						}
					}
				}
			}
		})
	}
}

func TestNeighborsStayInChunk(t *testing.T) {
	for _, v := range []Vendor{VendorA, VendorB, VendorC} {
		m := MustNew(v)
		cb := m.ChunkBits()
		for o := 0; o < cb; o++ {
			bit := 5*cb + o // arbitrary chunk
			l, r, hasL, hasR := m.Neighbors(bit)
			if hasL && l/cb != bit/cb {
				t.Errorf("%v: bit %d left neighbor %d leaves chunk", v, bit, l)
			}
			if hasR && r/cb != bit/cb {
				t.Errorf("%v: bit %d right neighbor %d leaves chunk", v, bit, r)
			}
		}
	}
}

func TestMaxDistance(t *testing.T) {
	tests := []struct {
		vendor Vendor
		want   int
	}{
		{vendor: VendorA, want: 48},
		{vendor: VendorB, want: 64},
		{vendor: VendorC, want: 49},
		{vendor: VendorToy, want: 5},
	}
	for _, tt := range tests {
		if got := MustNew(tt.vendor).MaxDistance(); got != tt.want {
			t.Errorf("%v: MaxDistance() = %d, want %d", tt.vendor, got, tt.want)
		}
	}
}

func TestFromSegmentsValidation(t *testing.T) {
	tests := []struct {
		name     string
		chunk    int
		segments [][]int
	}{
		{name: "empty segment", chunk: 4, segments: [][]int{{0, 1, 2, 3}, {}}},
		{name: "duplicate offset", chunk: 4, segments: [][]int{{0, 1}, {1, 2, 3}}},
		{name: "missing offset", chunk: 4, segments: [][]int{{0, 1, 2}}},
		{name: "out of range", chunk: 4, segments: [][]int{{0, 1, 2, 4}}},
		{name: "negative chunk", chunk: -1, segments: nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := FromSegments(VendorLinear, tt.chunk, tt.segments); err == nil {
				t.Error("FromSegments() succeeded, want error")
			}
		})
	}
}

func TestFromSegmentsCustom(t *testing.T) {
	m, err := FromSegments(VendorLinear, 4, [][]int{{2, 0}, {1, 3}})
	if err != nil {
		t.Fatalf("FromSegments: %v", err)
	}
	if got, want := m.Distances(), ints(-2, 2); !reflect.DeepEqual(got, want) {
		t.Errorf("Distances() = %v, want %v", got, want)
	}
	l, r, hasL, hasR := m.Neighbors(0)
	if !hasL || l != 2 {
		t.Errorf("Neighbors(0) left = %d,%v; want 2,true", l, hasL)
	}
	if hasR {
		t.Errorf("Neighbors(0) right = %d, want none", r)
	}
}

// TestToyMappingMatchesFigure8 verifies the worked example of the
// paper: in the Figure 5/8 mapping, the neighbors of system address X
// are at X+1 and X+5.
func TestToyMappingMatchesFigure8(t *testing.T) {
	m := MustNew(VendorToy)
	l, r, hasL, hasR := m.Neighbors(0)
	if !hasL || !hasR {
		t.Fatalf("Neighbors(0): expected both neighbors, got hasL=%v hasR=%v", hasL, hasR)
	}
	got := map[int]bool{l: true, r: true}
	if !got[1] || !got[5] {
		t.Errorf("Neighbors(0) = {%d,%d}, want {1,5}", l, r)
	}
}

// TestRegionDistancesQuick is a property test: for any (admissible)
// region size, region distances must be consistent with bit distances
// scaled down and the set must be symmetric around zero.
func TestRegionDistancesQuick(t *testing.T) {
	m := MustNew(VendorA)
	f := func(pick uint8) bool {
		sizes := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
		size := sizes[int(pick)%len(sizes)]
		ds, err := m.RegionDistances(size)
		if err != nil {
			return false
		}
		set := make(map[int]bool, len(ds))
		for _, d := range ds {
			set[d] = true
		}
		for _, d := range ds {
			if !set[-d] {
				return false // must be symmetric
			}
			if d*size > m.MaxDistance()+size {
				return false // cannot exceed max bit distance by more than one region
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegionDistancesErrors(t *testing.T) {
	m := MustNew(VendorA)
	if _, err := m.RegionDistances(0); err == nil {
		t.Error("RegionDistances(0) succeeded, want error")
	}
	if _, err := m.RegionDistances(96); err == nil {
		t.Error("RegionDistances(96) succeeded, want error (96 does not divide 128)")
	}
}

func TestVendorString(t *testing.T) {
	if got := Vendor(99).String(); got != "Vendor(99)" {
		t.Errorf("Vendor(99).String() = %q", got)
	}
	if got := VendorA.String(); got != "A" {
		t.Errorf("VendorA.String() = %q", got)
	}
}

func TestNewUnknownVendor(t *testing.T) {
	if _, err := New(Vendor(42)); err == nil {
		t.Error("New(42) succeeded, want error")
	}
}
