package scramble

// Manufacturer C has neighbor distances {±16, ±33, ±49} (Figure 11c)
// with per-level region distances L3 {0,±1} and L4 {±2,±4,±6}
// (3 and 6 region candidates, giving Table 1's 24 and 48 tests).
//
// Those sets over-constrain the physical layout enough to derive it:
//
//   - All three deltas are even multiples of 2 in the 16-per-lane "a"
//     coordinate of o = 8a + r, so adjacency preserves the parity of a.
//   - The odd deltas (33 = 4*8+1 and 49 = 6*8+1) must always cross
//     exactly 4 and 6 aligned 8-bit regions, which requires the lower
//     endpoint to satisfy o mod 8 <= 6 — otherwise L4 would contain
//     ±5 or ±7, contradicting the 48-test count at L5.
//
// We additionally require segments to be monotone in system-address
// order: each cell's two physical neighbors lie on opposite sides of
// it. Monotonicity bounds every k-cell physical window to a span of
// at least 16k bits, so a cell's interference tail can never fold
// back into its own 8-bit group — the property the one-hot-group
// neighbor-aware pattern relies on, and one real layouts share
// (bitlines map to monotone column sequences).
//
// Under monotonicity the path-cover problem becomes a bipartite
// matching: every cell owns one "up" slot (an edge to a higher
// address) and one "down" slot, an edge (u, u+d) consumes u's up slot
// and (u+d)'s down slot, and any such matching is automatically a
// disjoint union of ascending paths (no cycles are possible). The
// builder below matches each cell's down slot greedily, cycling the
// preferred delta so that all three distances occur with similar
// frequency — every true distance must clear PARBOR's ranking
// threshold (Section 5.2.4).
func vendorCSegments() [][]int {
	const n = DefaultChunkBits
	deltas := [...]int{33, 49, 16}

	// admissible reports whether an edge of delta d may start at u.
	admissible := func(u, d int) bool {
		if u < 0 || u+d >= n {
			return false
		}
		// Odd deltas must cross exactly floor(d/8) aligned 8-bit
		// regions for every victim alignment (see above).
		if d%8 != 0 && u%8 > 6 {
			return false
		}
		return true
	}

	upTaken := make([]bool, n) // up slot of cell u consumed
	downFrom := make([]int, n) // matched predecessor of cell v, or -1
	for i := range downFrom {
		downFrom[i] = -1
	}

	// Match each cell's down slot. Cells are visited in a scattered
	// deterministic order and always try the globally least-used
	// delta first, which keeps the three distances near-equally
	// frequent; a second sweep mops up cells the first pass left
	// unmatched.
	counts := map[int]int{}
	match := func(v int) {
		if downFrom[v] >= 0 {
			return
		}
		order := append([]int(nil), deltas[:]...)
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && counts[order[j]] < counts[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		for _, d := range order {
			u := v - d
			if u < 0 || !admissible(u, d) || upTaken[u] {
				continue
			}
			upTaken[u] = true
			downFrom[v] = u
			counts[d]++
			return
		}
	}
	for sweep := 0; sweep < 2; sweep++ {
		for i := 0; i < n; i++ {
			v := (i*37 + 5) % n
			if v >= 16 {
				match(v)
			}
		}
	}

	// The greedy pass leaves some cells unmatched behind up-slot
	// conflicts; resolve them with augmenting paths (Kuhn's
	// algorithm) so that segments grow as long as the delta set
	// permits. Longer segments matter: cells at segment ends have
	// truncated interference neighborhoods, and real arrays keep
	// bitline columns contiguous for hundreds of cells.
	matchedV := make([]int, n) // up-slot owner: u -> its matched v, or -1
	for i := range matchedV {
		matchedV[i] = -1
	}
	for v, u := range downFrom {
		if u >= 0 {
			matchedV[u] = v
		}
	}
	// Augmenting paths trade bump edges (+33/+49) for +16 edges: the
	// unique perfect matching is the all-16 pure-lane one (an easy
	// residue-flow induction), so unconstrained augmentation would
	// erase two of the three distances. Augmentation therefore stops
	// (reverting its last step) once the bump counts drain to the
	// floors below. The trade-off is physical: every +33/+49
	// adjacency consumes 2-3x the address span of a +16 one and
	// chains cannot span more than 127 bits, so more bump edges mean
	// shorter physical columns; the floors keep all three distances
	// comfortably above PARBOR's ranking threshold (the paper's
	// Figure 14 indeed shows C's ranking profile as the least
	// uniform) while the augmentation keeps segments long.
	floors := map[int]int{33: 20, 49: 14}
	var augment func(v int, visited []bool) bool
	augment = func(v int, visited []bool) bool {
		order := append([]int(nil), deltas[:]...)
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && counts[order[j]] < counts[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		for _, d := range order {
			u := v - d
			if u < 0 || !admissible(u, d) || visited[u] {
				continue
			}
			visited[u] = true
			if matchedV[u] == -1 {
				matchedV[u] = v
				downFrom[v] = u
				counts[d]++
				return true
			}
			displaced := matchedV[u]
			oldDelta := displaced - u
			counts[oldDelta]--
			matchedV[u] = -1
			downFrom[displaced] = -1
			if augment(displaced, visited) {
				matchedV[u] = v
				downFrom[v] = u
				counts[d]++
				return true
			}
			// Restore the displaced edge.
			matchedV[u] = displaced
			downFrom[displaced] = u
			counts[oldDelta]++
		}
		return false
	}
	snapshot := func() ([]int, []int, map[int]int) {
		df := append([]int(nil), downFrom...)
		mv := append([]int(nil), matchedV...)
		ct := map[int]int{}
		for k, c := range counts {
			ct[k] = c
		}
		return df, mv, ct
	}
	belowFloor := func() bool {
		for d, f := range floors {
			if counts[d] < f {
				return true
			}
		}
		return false
	}
	for v := 16; v < n; v++ {
		if downFrom[v] != -1 {
			continue
		}
		df, mv, ct := snapshot()
		if augment(v, make([]bool, n)) && belowFloor() {
			// This path drained a bump type below its floor; revert
			// and try the remaining cells (their augmenting paths may
			// not touch bump edges).
			copy(downFrom, df)
			copy(matchedV, mv)
			counts = ct
		}
	}
	for i := range upTaken {
		upTaken[i] = matchedV[i] >= 0
	}

	// Walk the ascending chains from their minimal cells.
	next := make([]int, n)
	for i := range next {
		next[i] = -1
	}
	for v, u := range downFrom {
		if u >= 0 {
			next[u] = v
		}
	}
	var segs [][]int
	for start := 0; start < n; start++ {
		if downFrom[start] >= 0 {
			continue // not a chain head
		}
		seg := []int{start}
		for cur := next[start]; cur >= 0; cur = next[cur] {
			seg = append(seg, cur)
		}
		segs = append(segs, seg)
	}
	return segs
}
