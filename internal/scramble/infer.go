package scramble

import (
	"fmt"
	"sort"
)

// InferSegments constructs a plausible physical layout consistent
// with a detected neighbor-distance set: the inverse of what PARBOR
// measures. Many layouts realize the same distance set; this builder
// returns one deterministic monotone candidate in which every
// distance occurs, which is useful for reasoning about a chip whose
// mapping was just detected (e.g. predicting interference tails, or
// seeding further hypothesis tests).
//
// The construction is the bipartite matching of the vendor-C builder,
// generalized: each cell owns an up-slot and a down-slot; edges
// (u, u+d) for each positive distance d are matched greedily with
// least-used-distance preference, so all distances appear with
// comparable frequency.
func InferSegments(distances []int, chunkBits int) ([][]int, error) {
	if chunkBits <= 0 {
		return nil, fmt.Errorf("scramble: chunkBits must be positive, got %d", chunkBits)
	}
	// Positive magnitudes, deduplicated.
	set := make(map[int]struct{})
	for _, d := range distances {
		if d < 0 {
			d = -d
		}
		if d == 0 || d >= chunkBits {
			return nil, fmt.Errorf("scramble: distance %d out of (0, %d)", d, chunkBits)
		}
		set[d] = struct{}{}
	}
	if len(set) == 0 {
		return nil, fmt.Errorf("scramble: empty distance set")
	}
	deltas := make([]int, 0, len(set))
	for d := range set {
		deltas = append(deltas, d)
	}
	sort.Ints(deltas)

	upTaken := make([]bool, chunkBits)
	downFrom := make([]int, chunkBits)
	for i := range downFrom {
		downFrom[i] = -1
	}
	counts := make(map[int]int, len(deltas))
	match := func(v int) {
		if downFrom[v] >= 0 {
			return
		}
		order := append([]int(nil), deltas...)
		sort.SliceStable(order, func(i, j int) bool {
			return counts[order[i]] < counts[order[j]]
		})
		for _, d := range order {
			u := v - d
			if u < 0 || upTaken[u] {
				continue
			}
			upTaken[u] = true
			downFrom[v] = u
			counts[d]++
			return
		}
	}
	for sweep := 0; sweep < 2; sweep++ {
		for i := 0; i < chunkBits; i++ {
			v := (i*37 + 5) % chunkBits
			match(v)
		}
	}

	next := make([]int, chunkBits)
	for i := range next {
		next[i] = -1
	}
	for v, u := range downFrom {
		if u >= 0 {
			next[u] = v
		}
	}
	var segs [][]int
	for start := 0; start < chunkBits; start++ {
		if downFrom[start] >= 0 {
			continue
		}
		seg := []int{start}
		for cur := next[start]; cur >= 0; cur = next[cur] {
			seg = append(seg, cur)
		}
		segs = append(segs, seg)
	}
	return segs, nil
}

// Infer builds a full Mapping from a detected distance set (see
// InferSegments).
func Infer(distances []int, chunkBits int) (*Mapping, error) {
	segs, err := InferSegments(distances, chunkBits)
	if err != nil {
		return nil, err
	}
	return FromSegments(VendorLinear, chunkBits, segs)
}
