// Package scramble models DRAM-internal address scrambling: the
// vendor-specific mapping between system bit addresses and the
// physical location of cells inside the DRAM arrays (PARBOR paper,
// Sections 1 and 3).
//
// The mapping is represented as a set of disjoint physical *segments*
// per aligned system-address chunk. A segment is an ordered list of
// system bit offsets; consecutive entries are physically adjacent
// cells on the same bitline group. Segments correspond to tile/lane
// boundaries inside the chip: cells at the two ends of a segment have
// only one physical neighbor.
//
// The mapping is chunk-local — a cell's physical neighbors always
// carry system addresses within the same aligned chunk — and identical
// across chunks, rows, and banks. This is the "regularity" property
// the paper's second key idea relies on (Section 4.2), and it is what
// real chips exhibit: the paper reports that all tested chips have all
// neighbors within ±64 bits, i.e. inside a 128-bit chunk.
//
// The three vendor profiles are reverse-engineered from the paper's
// published results so that they reproduce, exactly:
//
//   - the final neighbor-distance sets of Figure 11
//     (A: {±8,±16,±48}, B: {±1,±64}, C: {±16,±33,±49}),
//   - the per-level region-distance sets of Figure 11, and
//   - the per-level test counts of Table 1 (A: 90, B: 66, C: 90).
package scramble

import (
	"fmt"
	"sort"
)

// Vendor identifies an address-scrambling profile.
type Vendor int

// Vendor profiles. VendorA/B/C correspond to the three anonymized
// manufacturers in the paper. VendorLinear is an unscrambled identity
// mapping (what naive system-level tests implicitly assume), and
// VendorToy is the 16-bit example mapping of the paper's Figures 5
// and 8 (neighbor distances {±1, ±5}), used by the walkthrough
// example and small tests.
const (
	VendorLinear Vendor = iota + 1
	VendorA
	VendorB
	VendorC
	VendorToy
)

// String returns the short vendor label used in the paper's figures.
func (v Vendor) String() string {
	switch v {
	case VendorLinear:
		return "Linear"
	case VendorA:
		return "A"
	case VendorB:
		return "B"
	case VendorC:
		return "C"
	case VendorToy:
		return "Toy"
	default:
		return fmt.Sprintf("Vendor(%d)", int(v))
	}
}

// Vendors lists the three real-chip profiles evaluated in the paper.
func Vendors() []Vendor { return []Vendor{VendorA, VendorB, VendorC} }

const (
	// DefaultChunkBits is the scrambling granularity of all three
	// vendor profiles: neighbors live within an aligned 128-bit
	// system chunk (paper, Section 7.2).
	DefaultChunkBits = 128

	// toyChunkBits is the chunk size of the paper's worked example
	// (Figures 5, 8, 9): a 16-bit row.
	toyChunkBits = 16

	none = -1 // absent neighbor marker in the lookup tables
)

// Mapping is an immutable system→physical address mapping for one
// vendor profile. A Mapping answers neighbor queries for arbitrary
// system bit addresses in O(1) via precomputed per-chunk tables.
//
// Mapping is safe for concurrent use.
type Mapping struct {
	vendor    Vendor
	chunkBits int
	segments  [][]int // per chunk: ordered system offsets of each physical segment

	left  []int16 // per chunk offset: offset of physical left neighbor, or none
	right []int16 // per chunk offset: offset of physical right neighbor, or none

	distances []int // sorted union of signed neighbor distances
}

// New returns the Mapping for the given vendor profile.
func New(v Vendor) (*Mapping, error) {
	var (
		segs  [][]int
		chunk int
	)
	switch v {
	case VendorLinear:
		chunk = DefaultChunkBits
		segs = linearSegments(chunk)
	case VendorA:
		chunk = DefaultChunkBits
		segs = vendorASegments()
	case VendorB:
		chunk = DefaultChunkBits
		segs = vendorBSegments()
	case VendorC:
		chunk = DefaultChunkBits
		segs = vendorCSegments()
	case VendorToy:
		chunk = toyChunkBits
		segs = toySegments()
	default:
		return nil, fmt.Errorf("scramble: unknown vendor %d", int(v))
	}
	m, err := FromSegments(v, chunk, segs)
	if err != nil {
		return nil, fmt.Errorf("scramble: building %v mapping: %w", v, err)
	}
	return m, nil
}

// MustNew is like New but panics on error. The built-in vendor
// profiles are statically valid, so MustNew is the common constructor.
func MustNew(v Vendor) *Mapping {
	m, err := New(v)
	if err != nil {
		panic(err)
	}
	return m
}

// FromSegments builds a custom Mapping from an explicit chunk-local
// segment list. Every system offset in [0, chunkBits) must appear in
// exactly one segment. This is the extension point for modeling chips
// beyond the three paper vendors.
func FromSegments(v Vendor, chunkBits int, segments [][]int) (*Mapping, error) {
	if chunkBits <= 0 {
		return nil, fmt.Errorf("chunkBits must be positive, got %d", chunkBits)
	}
	m := &Mapping{
		vendor:    v,
		chunkBits: chunkBits,
		segments:  segments,
		left:      make([]int16, chunkBits),
		right:     make([]int16, chunkBits),
	}
	for i := range m.left {
		m.left[i], m.right[i] = none, none
	}
	seen := make([]bool, chunkBits)
	distSet := make(map[int]struct{})
	for si, seg := range segments {
		if len(seg) == 0 {
			return nil, fmt.Errorf("segment %d is empty", si)
		}
		for pi, o := range seg {
			if o < 0 || o >= chunkBits {
				return nil, fmt.Errorf("segment %d: offset %d out of chunk range [0,%d)", si, o, chunkBits)
			}
			if seen[o] {
				return nil, fmt.Errorf("segment %d: offset %d appears more than once", si, o)
			}
			seen[o] = true
			if pi > 0 {
				prev := seg[pi-1]
				m.left[o] = int16(prev)
				m.right[prev] = int16(o)
				distSet[o-prev] = struct{}{}
				distSet[prev-o] = struct{}{}
			}
		}
	}
	for o, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("offset %d is not covered by any segment", o)
		}
	}
	for d := range distSet {
		m.distances = append(m.distances, d)
	}
	sort.Ints(m.distances)
	return m, nil
}

// Vendor returns the profile this mapping models.
func (m *Mapping) Vendor() Vendor { return m.vendor }

// ChunkBits returns the scrambling granularity in bits. Physical
// neighbors of a cell always have system addresses within the same
// aligned chunk of this size.
func (m *Mapping) ChunkBits() int { return m.chunkBits }

// Distances returns the sorted set of signed system-address distances
// at which a cell's physical neighbors can be located (the paper's
// Figure 8 representation). The returned slice is a copy.
func (m *Mapping) Distances() []int {
	out := make([]int, len(m.distances))
	copy(out, m.distances)
	return out
}

// MaxDistance returns the largest absolute neighbor distance.
func (m *Mapping) MaxDistance() int {
	max := 0
	for _, d := range m.distances {
		if d > max {
			max = d
		}
		if -d > max {
			max = -d
		}
	}
	return max
}

// Neighbors returns the system bit addresses of the physical left and
// right neighbors of the cell holding system bit sysBit. A neighbor
// is reported as (-1, false) when the cell sits at a segment end and
// has no physical neighbor on that side.
func (m *Mapping) Neighbors(sysBit int) (left, right int, hasLeft, hasRight bool) {
	base := sysBit - sysBit%m.chunkBits
	o := sysBit - base
	l, r := m.left[o], m.right[o]
	left, right = none, none
	if l != none {
		left, hasLeft = base+int(l), true
	}
	if r != none {
		right, hasRight = base+int(r), true
	}
	return left, right, hasLeft, hasRight
}

// Segments returns a deep copy of the chunk-local physical segments.
func (m *Mapping) Segments() [][]int {
	out := make([][]int, len(m.segments))
	for i, seg := range m.segments {
		out[i] = append([]int(nil), seg...)
	}
	return out
}

// SegmentCount returns the number of physical segments per chunk.
func (m *Mapping) SegmentCount() int { return len(m.segments) }

// DistanceCounts returns, for each signed neighbor distance, the
// number of physically adjacent cell pairs per chunk realizing it.
// The frequency balance matters for PARBOR's ranking stage: every
// true distance must occur often enough to survive noise filtering.
func (m *Mapping) DistanceCounts() map[int]int {
	counts := make(map[int]int, len(m.distances))
	for _, seg := range m.segments {
		for i := 1; i < len(seg); i++ {
			d := seg[i] - seg[i-1]
			counts[d]++
			counts[-d]++
		}
	}
	return counts
}

// RegionDistances returns the sorted set of region-index distances
// between physically adjacent cells when the row is divided into
// regions of regionSize bits (the representation used at each level
// of PARBOR's recursive test, Section 5.2.3 and Figure 11).
//
// regionSize must be a multiple of the chunk size or divide it evenly
// (all of the paper's levels — 4096, 512, 64, 8, 1 — satisfy this for
// the 128-bit chunk).
func (m *Mapping) RegionDistances(regionSize int) ([]int, error) {
	if regionSize <= 0 {
		return nil, fmt.Errorf("scramble: region size must be positive, got %d", regionSize)
	}
	if regionSize%m.chunkBits == 0 {
		// Chunk-local mapping: neighbors never leave an aligned chunk,
		// so they never cross a coarser aligned region either.
		return []int{0}, nil
	}
	if m.chunkBits%regionSize != 0 {
		return nil, fmt.Errorf("scramble: region size %d does not divide chunk size %d", regionSize, m.chunkBits)
	}
	set := make(map[int]struct{})
	for o := 0; o < m.chunkBits; o++ {
		if r := m.right[o]; r != none {
			d := int(r)/regionSize - o/regionSize
			set[d] = struct{}{}
			set[-d] = struct{}{}
		}
	}
	out := make([]int, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Ints(out)
	return out, nil
}

// linearSegments is the identity mapping: one contiguous segment.
func linearSegments(chunkBits int) [][]int {
	seg := make([]int, chunkBits)
	for i := range seg {
		seg[i] = i
	}
	return [][]int{seg}
}

// vendorASegments models manufacturer A: 8 DQ lanes per 128-bit
// chunk. System offset o = 8*m + lane; within a lane the 16 per-lane
// indices are laid out physically in the order below, whose adjacent
// deltas are {±1, ±2, ±6} — i.e. system distances {±8, ±16, ±48},
// matching Figure 11a and Table 1 (90 tests). The order balances the
// three delta magnitudes (6:4:5 pairs per lane) so that every true
// distance stays well above PARBOR's ranking threshold.
func vendorASegments() [][]int {
	order := [...]int{0, 1, 3, 9, 15, 14, 12, 13, 7, 6, 4, 5, 11, 10, 8, 2}
	segs := make([][]int, 0, 8)
	for lane := 0; lane < 8; lane++ {
		seg := make([]int, len(order))
		for i, mIdx := range order {
			seg[i] = 8*mIdx + lane
		}
		segs = append(segs, seg)
	}
	return segs
}

// vendorBSegments models manufacturer B: 8 segments of 16 cells per
// 128-bit chunk. Segment s zigzags between the aligned 8-bit system
// blocks s (offsets 8s..8s+7, the "low" block) and s+8 (offsets
// 8s+64..8s+71, the "high" block):
//
//	l0 h0 h1 l1 l2 h2 h3 l3 l4 h4 h5 l5 l6 h6 h7 l7
//
// Adjacent deltas are +64, +1, -64, +1, ... — system distances
// {±1, ±64} with balanced frequency (7 vs 8 pairs per segment), and
// ±1 pairs never straddle an aligned 8-bit region, which yields the
// L4 region-distance set {0, ±8} and Table 1's 66 tests.
func vendorBSegments() [][]int {
	segs := make([][]int, 0, 8)
	for s := 0; s < 8; s++ {
		low := 8 * s
		high := 8*s + 64
		seg := make([]int, 0, 16)
		// li and hi walk the low and high blocks in step.
		li, hi := 0, 0
		seg = append(seg, low+li) // l0
		for {
			seg = append(seg, high+hi, high+hi+1) // h_{2k}, h_{2k+1}
			hi += 2
			li++
			seg = append(seg, low+li) // l_{2k+1}
			if li == 7 {
				break
			}
			li++
			seg = append(seg, low+li) // l_{2k+2}
		}
		segs = append(segs, seg)
	}
	return segs
}

// toySegments is the worked-example mapping of the paper's Figures 5
// and 8: a 16-bit row in which every cell's neighbors are at system
// distances {±1, ±5}. Two physical arrays hold the even and odd
// bit-pairs of each burst with the pairs swapped:
//
//	array 1: X+1, X,   X+5, X+4, X+9,  X+8,  X+13, X+12
//	array 2: X+3, X+2, X+7, X+6, X+11, X+10, X+15, X+14
func toySegments() [][]int {
	return [][]int{
		{1, 0, 5, 4, 9, 8, 13, 12},
		{3, 2, 7, 6, 11, 10, 15, 14},
	}
}
