package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("alpha")
	c2 := parent.Split("beta")
	c1again := parent.Split("alpha")
	if c1.Uint64() != c1again.Uint64() {
		t.Error("same label produced different streams")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Error("different labels produced the same stream")
	}
}

func TestSplitDoesNotPerturbParent(t *testing.T) {
	a, b := New(9), New(9)
	a.Split("x")
	a.SplitN("y", 3)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split perturbed the parent stream")
		}
	}
}

func TestSplitNDistinct(t *testing.T) {
	p := New(1)
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 1000; i++ {
		v := p.SplitN("row", i).Uint64()
		if seen[v] {
			t.Fatalf("SplitN collision at %d", i)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(4)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Errorf("bucket %d: %d draws, want about %.0f", i, c, want)
		}
	}
}

func TestBool(t *testing.T) {
	s := New(6)
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	if math.Abs(float64(hits)/draws-0.25) > 0.01 {
		t.Errorf("Bool(0.25) rate = %v", float64(hits)/draws)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(8)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance = %v, want about 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(10)
	const draws = 200000
	var sum float64
	for i := 0; i < draws; i++ {
		sum += s.ExpFloat64()
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Errorf("mean = %v, want about 1", mean)
	}
}

func TestPerm(t *testing.T) {
	s := New(11)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v at index", v)
		}
		seen[v] = true
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	_ = s.Uint64() // must not panic
}

// TestValueVariantsMatchPointerVariants pins the contract the DRAM
// hot paths rely on: Seeded/Child/ChildN/At produce bit-identical
// streams to New/Split/SplitN, so switching a call site to the
// value-based (allocation-free) API never changes a single draw.
func TestValueVariantsMatchPointerVariants(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		a := New(seed)
		b := Seeded(seed)
		if a.state != b.state {
			t.Fatalf("Seeded(%d) state %#x, New %#x", seed, b.state, a.state)
		}
		for _, label := range []string{"", "vrt-toggle", "soft", "row"} {
			pc := New(seed).Split(label)
			vc := Seeded(seed)
			vcc := vc.Child(label)
			if pc.state != vcc.state {
				t.Fatalf("Child(%q) state %#x, Split %#x", label, vcc.state, pc.state)
			}
			for _, n := range []uint64{0, 1, 7, 1 << 40} {
				pn := New(seed).SplitN(label, n)
				vn := vcc.At(n)
				if pn.state != vn.state {
					t.Fatalf("Child(%q).At(%d) state %#x, SplitN %#x", label, n, vn.state, pn.state)
				}
				vr := vc.ChildN(label, n)
				if vr.state != pn.state {
					t.Fatalf("ChildN(%q, %d) state %#x, SplitN %#x", label, n, vr.state, pn.state)
				}
				if pn.Uint64() != vn.Uint64() {
					t.Fatalf("draw mismatch for (%q, %d)", label, n)
				}
			}
		}
	}
}
