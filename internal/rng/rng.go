// Package rng provides a small, fast, deterministic, splittable
// pseudo-random number generator used throughout the simulator.
//
// Every stochastic component of the DRAM model (process variation,
// soft errors, VRT, trace generation) draws from an rng.Source seeded
// from a single experiment seed, so that every experiment in this
// repository is exactly reproducible. The generator is SplitMix64
// (Steele et al., "Fast Splittable Pseudorandom Number Generators"),
// which has a trivially correct split operation: hashing a label into
// the state yields an independent stream.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic SplitMix64 stream. The zero value is a
// valid source seeded with 0; use New to seed explicitly.
//
// Source is NOT safe for concurrent use; split one Source per
// goroutine instead (see Split).
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// mix64 is the SplitMix64 output function (a bijective finalizer).
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix64(s.state)
}

// Split derives an independent child stream labeled by label.
// Two children of the same parent with different labels produce
// streams that are independent for all practical purposes, and the
// parent stream is not perturbed.
func (s *Source) Split(label string) *Source {
	c := s.Child(label)
	return &c
}

// SplitN derives an independent child stream labeled by an integer,
// e.g. one stream per row or per cell array.
func (s *Source) SplitN(label string, n uint64) *Source {
	c := s.ChildN(label, n)
	return &c
}

// Seeded returns a Source value seeded with seed. It is the value
// counterpart of New, for hot paths that must not heap-allocate.
func Seeded(seed uint64) Source { return Source{state: seed} }

// Child is Split returning the child stream by value: the stream is
// bit-identical to Split(label)'s, but a local child never escapes to
// the heap. Hot paths (per-row and per-cell draws in the DRAM model)
// use it to stay allocation-free.
func (s *Source) Child(label string) Source {
	h := s.state + 0x9e3779b97f4a7c15
	for i := 0; i < len(label); i++ {
		h = mix64(h ^ uint64(label[i]))
	}
	return Source{state: mix64(h)}
}

// ChildN is SplitN returning the child stream by value (see Child).
func (s *Source) ChildN(label string, n uint64) Source {
	return s.Child(label).At(n)
}

// At derives the integer-labeled child of s by value: Child(l).At(n)
// yields exactly the stream of SplitN(l, n). Callers that draw many
// integer-labeled streams off one label (one per row, one per pass)
// cache the Child once and call At per draw, skipping the label hash.
func (s Source) At(n uint64) Source {
	return Source{state: mix64(s.state ^ n)}
}

// Intn returns a uniformly distributed int in [0, n). It panics if
// n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Multiply-shift mapping (Lemire); the residual bias for the small
	// n used by the simulator is negligible and the mapping is
	// branch-free.
	hi, _ := bits.Mul64(s.Uint64(), uint64(n))
	return int(hi)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box-Muller transform (the polar
// variant is avoided to keep the stream consumption deterministic at
// exactly two draws per value).
func (s *Source) NormFloat64() float64 {
	u1 := s.Float64()
	u2 := s.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (s *Source) ExpFloat64() float64 {
	u := s.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1 - u)
}

// Perm returns a pseudo-random permutation of [0, n) as a slice,
// using the Fisher-Yates shuffle.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
