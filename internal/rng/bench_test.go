package rng

import "testing"

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkSplitN(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.SplitN("row", uint64(i))
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.NormFloat64()
	}
}
