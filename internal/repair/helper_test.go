package repair

import (
	"testing"

	"parbor/internal/coupling"
	"parbor/internal/dram"
	"parbor/internal/faults"
	"parbor/internal/memctl"
	"parbor/internal/scramble"
)

// newDetectionHost builds a small vendor-A module for the end-to-end
// planning test.
func newDetectionHost(t *testing.T) *memctl.Host {
	t.Helper()
	cc := coupling.DefaultConfig()
	cc.VulnerableRate = 2e-3
	mod, err := dram.NewModule(dram.ModuleConfig{
		Vendor:   scramble.VendorA,
		Chips:    1,
		Geometry: dram.Geometry{Banks: 1, Rows: 192, Cols: 8192},
		Coupling: cc,
		Faults:   faults.DefaultConfig(),
		Seed:     77,
	})
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	host, err := memctl.NewHost(mod, 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	return host
}
