package repair

import (
	"testing"

	"parbor/internal/core"
	"parbor/internal/memctl"
)

func addr(row, col int) memctl.BitAddr {
	return memctl.BitAddr{Row: int32(row), Col: int32(col)}
}

func TestECCAbsorbsSingleBitPerWord(t *testing.T) {
	failures := []memctl.BitAddr{
		addr(1, 10),  // word 0
		addr(1, 70),  // word 1
		addr(2, 500), // word 7
	}
	plan, err := MakePlan(failures, Budget{ECCBitsPerWord: 1}, Options{})
	if err != nil {
		t.Fatalf("MakePlan: %v", err)
	}
	if len(plan.ECCCovered) != 3 || len(plan.Uncovered) != 0 || len(plan.Remapped) != 0 {
		t.Errorf("plan = %+v, want all ECC-covered", plan)
	}
	if plan.CoverageFraction() != 1 {
		t.Errorf("coverage = %v, want 1", plan.CoverageFraction())
	}
}

func TestSecondBitInWordNeedsRemap(t *testing.T) {
	failures := []memctl.BitAddr{
		addr(1, 10), // word 0
		addr(1, 20), // word 0 again: exceeds SECDED
	}
	plan, err := MakePlan(failures, Budget{ECCBitsPerWord: 1, RemapEntries: 1}, Options{})
	if err != nil {
		t.Fatalf("MakePlan: %v", err)
	}
	if len(plan.ECCCovered) != 1 || len(plan.Remapped) != 1 || len(plan.Uncovered) != 0 {
		t.Errorf("plan = %+v, want 1 ECC + 1 remap", plan)
	}
	// Without the remap entry the second bit is uncovered.
	plan, err = MakePlan(failures, Budget{ECCBitsPerWord: 1}, Options{})
	if err != nil {
		t.Fatalf("MakePlan: %v", err)
	}
	if len(plan.Uncovered) != 1 {
		t.Errorf("plan = %+v, want 1 uncovered", plan)
	}
}

func TestSpareRowsTakeWorstRows(t *testing.T) {
	var failures []memctl.BitAddr
	// Row 5: six failures packed in one word (ECC hopeless).
	for i := 0; i < 6; i++ {
		failures = append(failures, addr(5, 10+i))
	}
	// Row 9: two failures in one word.
	failures = append(failures, addr(9, 100), addr(9, 101))
	// Row 1: one isolated failure.
	failures = append(failures, addr(1, 3000))

	plan, err := MakePlan(failures, Budget{SpareRows: 1, ECCBitsPerWord: 1, RemapEntries: 1}, Options{})
	if err != nil {
		t.Fatalf("MakePlan: %v", err)
	}
	if len(plan.SparedRows) != 1 || plan.SparedRows[0].Row != 5 {
		t.Fatalf("spared rows = %+v, want row 5", plan.SparedRows)
	}
	if plan.SparedFailures() != 6 {
		t.Errorf("spared failures = %d, want 6", plan.SparedFailures())
	}
	// Row 9: one ECC + one remap; row 1: ECC.
	if len(plan.ECCCovered) != 2 || len(plan.Remapped) != 1 || len(plan.Uncovered) != 0 {
		t.Errorf("plan = %+v, want full coverage", plan)
	}
	if plan.CoverageFraction() != 1 {
		t.Errorf("coverage = %v, want 1", plan.CoverageFraction())
	}
}

func TestSpareRowsNotWastedOnECCAbsorbableRows(t *testing.T) {
	failures := []memctl.BitAddr{addr(1, 10), addr(2, 500)}
	plan, err := MakePlan(failures, Budget{SpareRows: 4, ECCBitsPerWord: 1}, Options{})
	if err != nil {
		t.Fatalf("MakePlan: %v", err)
	}
	if len(plan.SparedRows) != 0 {
		t.Errorf("spared %d rows despite ECC sufficing", len(plan.SparedRows))
	}
}

func TestRefreshManagedExclusion(t *testing.T) {
	classified := []core.ClassifiedVictim{
		{
			Victim: core.Victim{Row: memctl.Row{Row: 7}, Col: 42},
			Kind:   core.KindSingle,
		},
		{
			Victim: core.Victim{Row: memctl.Row{Row: 7}, Col: 43},
			Kind:   core.KindContentIndependent,
		},
	}
	managed := BuildRefreshManaged(classified)
	if len(managed) != 1 {
		t.Fatalf("managed set = %v, want 1 entry", managed)
	}
	failures := []memctl.BitAddr{addr(7, 42), addr(7, 43)}
	plan, err := MakePlan(failures, Budget{ECCBitsPerWord: 1}, Options{RefreshManaged: managed})
	if err != nil {
		t.Fatalf("MakePlan: %v", err)
	}
	if len(plan.RefreshManaged) != 1 || len(plan.ECCCovered) != 1 {
		t.Errorf("plan = %+v, want 1 refresh-managed + 1 ECC", plan)
	}
}

func TestNoECCNoBudgetEverythingUncovered(t *testing.T) {
	failures := []memctl.BitAddr{addr(1, 1), addr(2, 2)}
	plan, err := MakePlan(failures, Budget{}, Options{})
	if err != nil {
		t.Fatalf("MakePlan: %v", err)
	}
	if len(plan.Uncovered) != 2 {
		t.Errorf("plan = %+v, want everything uncovered", plan)
	}
	if plan.CoverageFraction() != 0 {
		t.Errorf("coverage = %v, want 0", plan.CoverageFraction())
	}
}

func TestEmptyFailures(t *testing.T) {
	plan, err := MakePlan(nil, Budget{}, Options{})
	if err != nil {
		t.Fatalf("MakePlan: %v", err)
	}
	if plan.CoverageFraction() != 1 {
		t.Errorf("empty coverage = %v, want 1", plan.CoverageFraction())
	}
}

func TestBudgetValidation(t *testing.T) {
	if _, err := MakePlan(nil, Budget{SpareRows: -1}, Options{}); err == nil {
		t.Error("negative spare rows accepted")
	}
	if _, err := MakePlan(nil, Budget{WordBits: -64}, Options{}); err == nil {
		t.Error("negative word size accepted")
	}
}

func TestDeterminism(t *testing.T) {
	failures := []memctl.BitAddr{
		addr(3, 1), addr(3, 2), addr(5, 64), addr(5, 65), addr(9, 4000),
	}
	a, err := MakePlan(failures, Budget{SpareRows: 1, ECCBitsPerWord: 1, RemapEntries: 1}, Options{})
	if err != nil {
		t.Fatalf("MakePlan: %v", err)
	}
	b, err := MakePlan(failures, Budget{SpareRows: 1, ECCBitsPerWord: 1, RemapEntries: 1}, Options{})
	if err != nil {
		t.Fatalf("MakePlan: %v", err)
	}
	if len(a.SparedRows) != len(b.SparedRows) || len(a.ECCCovered) != len(b.ECCCovered) ||
		len(a.Remapped) != len(b.Remapped) || len(a.Uncovered) != len(b.Uncovered) {
		t.Error("plans differ across identical runs")
	}
	for i := range a.ECCCovered {
		if a.ECCCovered[i] != b.ECCCovered[i] {
			t.Fatal("ECC assignment order differs")
		}
	}
}

// TestEndToEndWithDetection plans mitigation from an actual detection
// run: classification shrinks the hard-mitigation bill.
func TestEndToEndWithDetection(t *testing.T) {
	// Reuse the core test helpers via a minimal local setup.
	host := newDetectionHost(t)
	tester, err := core.New(host, core.Config{Seed: 1})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	rep, err := tester.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	victims, _, _ := tester.DiscoverVictims()
	classified, _, err := tester.ClassifyVictims(victims, rep.Neighbor.Distances)
	if err != nil {
		t.Fatalf("ClassifyVictims: %v", err)
	}

	failures := make([]memctl.BitAddr, 0, len(rep.AllFailures))
	for a := range rep.AllFailures {
		failures = append(failures, a)
	}
	budget := Budget{SpareRows: 8, ECCBitsPerWord: 1, RemapEntries: 64}

	plain, err := MakePlan(failures, budget, Options{})
	if err != nil {
		t.Fatalf("MakePlan: %v", err)
	}
	informed, err := MakePlan(failures, budget, Options{
		RefreshManaged: BuildRefreshManaged(classified),
	})
	if err != nil {
		t.Fatalf("MakePlan: %v", err)
	}
	if len(informed.RefreshManaged) == 0 {
		t.Fatal("classification marked nothing refresh-managed")
	}
	// Handing coupling victims to the refresh policy must not reduce
	// total coverage, and should reduce spare-resource consumption.
	if informed.CoverageFraction() < plain.CoverageFraction() {
		t.Errorf("informed coverage %.3f < plain %.3f",
			informed.CoverageFraction(), plain.CoverageFraction())
	}
	plainHard := len(plain.ECCCovered) + len(plain.Remapped) + plain.SparedFailures()
	informedHard := len(informed.ECCCovered) + len(informed.Remapped) + informed.SparedFailures()
	if informedHard >= plainHard {
		t.Errorf("informed plan consumes %d hard-mitigated failures vs %d; expected savings",
			informedHard, plainHard)
	}
}
