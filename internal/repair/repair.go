// Package repair plans the mitigation of detected DRAM failures with
// the standard system-level mechanisms the PARBOR paper lists among
// the optimizations that failure detection enables (Section 1):
// spare-row remapping, SECDED ECC absorption, and fine-grained
// bit-remap entries (ArchShield-style, Nair et al. [59]).
//
// The planner is a deterministic greedy allocator:
//
//  1. Rows whose failure count exceeds what ECC can absorb are
//     candidates for whole-row sparing; the worst rows are spared
//     first, until the spare-row budget runs out.
//  2. In the remaining rows, SECDED ECC absorbs one failing bit per
//     ECC word; the first failure in each word is marked ECC-covered.
//  3. Excess failures (second and later per word) consume bit-remap
//     entries until that budget runs out.
//  4. Anything left is uncovered — the row cannot be used at the
//     targeted refresh interval.
//
// Combined with victim classification (core.ClassifyVictims), the
// planner can exclude purely coupling-driven victims that a
// content-based refresh policy (DC-REF) already protects, which
// shrinks the spare-resource bill — the quantitative version of the
// paper's argument that detection enables cheaper mitigation.
package repair

import (
	"fmt"
	"sort"

	"parbor/internal/core"
	"parbor/internal/memctl"
)

// Budget is the mitigation capacity available to the planner.
type Budget struct {
	// SpareRows is the number of rows that can be remapped to spares.
	SpareRows int
	// RemapEntries is the number of single-bit remap entries
	// (ArchShield-style fault map backed by SRAM/reserved DRAM).
	RemapEntries int
	// ECCBitsPerWord is the number of failing bits a single ECC word
	// can absorb (1 for SECDED, 0 for no ECC).
	ECCBitsPerWord int
	// WordBits is the ECC word size in bits (default 64).
	WordBits int
}

func (b Budget) withDefaults() Budget {
	if b.WordBits == 0 {
		b.WordBits = 64
	}
	return b
}

// Validate reports whether the budget is usable.
func (b Budget) Validate() error {
	b = b.withDefaults()
	if b.SpareRows < 0 || b.RemapEntries < 0 || b.ECCBitsPerWord < 0 {
		return fmt.Errorf("repair: negative budget: %+v", b)
	}
	if b.WordBits <= 0 {
		return fmt.Errorf("repair: non-positive word size %d", b.WordBits)
	}
	return nil
}

// RowRef identifies a row across the module.
type RowRef struct {
	Chip int16
	Bank int16
	Row  int32
}

func rowOf(a memctl.BitAddr) RowRef {
	return RowRef{Chip: a.Chip, Bank: a.Bank, Row: a.Row}
}

// Plan is the mitigation assignment for a failure population.
type Plan struct {
	// SparedRows are remapped to spare rows (all their failures
	// covered).
	SparedRows []RowRef
	// ECCCovered failures are absorbed by per-word ECC capacity.
	ECCCovered []memctl.BitAddr
	// Remapped failures consume bit-remap entries.
	Remapped []memctl.BitAddr
	// Uncovered failures exceed every budget.
	Uncovered []memctl.BitAddr
	// RefreshManaged failures were excluded from the spare-resource
	// plan because a content-aware refresh policy protects them.
	RefreshManaged []memctl.BitAddr

	// sparedFailureCount is the number of individual failures inside
	// the spared rows.
	sparedFailureCount int
}

// SparedFailures returns the number of individual failures the spared
// rows contained.
func (p *Plan) SparedFailures() int { return p.sparedFailureCount }

// CoverageFraction returns mitigated / total for the planned inputs.
func (p *Plan) CoverageFraction() float64 {
	covered := len(p.ECCCovered) + len(p.Remapped) + len(p.RefreshManaged) + p.sparedFailureCount
	total := covered + len(p.Uncovered)
	if total == 0 {
		return 1
	}
	return float64(covered) / float64(total)
}

// Options modulate planning.
type Options struct {
	// RefreshManaged, when non-nil, maps failures that a
	// content-aware refresh policy already protects (coupling-driven
	// victims, per core.ClassifyVictims); they are excluded from
	// spare-resource allocation.
	RefreshManaged map[memctl.BitAddr]bool
}

// BuildRefreshManaged derives the refresh-managed set from a victim
// classification: strongly and weakly coupled victims fail only under
// worst-case content, so a DC-REF-style policy can keep their rows
// safe without consuming spare resources. Content-independent and
// unclassified victims still need hard mitigation.
func BuildRefreshManaged(classified []core.ClassifiedVictim) map[memctl.BitAddr]bool {
	out := make(map[memctl.BitAddr]bool)
	for _, c := range classified {
		if c.Kind == core.KindSingle || c.Kind == core.KindPair {
			out[memctl.BitAddr{
				Chip: int16(c.Victim.Row.Chip),
				Bank: int16(c.Victim.Row.Bank),
				Row:  int32(c.Victim.Row.Row),
				Col:  c.Victim.Col,
			}] = true
		}
	}
	return out
}

// MakePlan allocates the budget over the failures.
func MakePlan(failures []memctl.BitAddr, budget Budget, opts Options) (*Plan, error) {
	budget = budget.withDefaults()
	if err := budget.Validate(); err != nil {
		return nil, err
	}
	plan := &Plan{}

	// Partition out refresh-managed failures first.
	var hard []memctl.BitAddr
	for _, a := range failures {
		if opts.RefreshManaged != nil && opts.RefreshManaged[a] {
			plan.RefreshManaged = append(plan.RefreshManaged, a)
			continue
		}
		hard = append(hard, a)
	}
	sortAddrs(plan.RefreshManaged)

	// Group by row.
	byRow := make(map[RowRef][]memctl.BitAddr)
	for _, a := range hard {
		byRow[rowOf(a)] = append(byRow[rowOf(a)], a)
	}

	// Step 1: spare the worst rows — those whose failures would eat
	// the most per-bit resources (more than one failure in some ECC
	// word, or simply the highest counts).
	type rowLoad struct {
		row    RowRef
		addrs  []memctl.BitAddr
		excess int // failures beyond ECC capacity
	}
	var loads []rowLoad
	for row, addrs := range byRow {
		loads = append(loads, rowLoad{
			row:    row,
			addrs:  addrs,
			excess: excessBeyondECC(addrs, budget),
		})
	}
	sort.Slice(loads, func(i, j int) bool {
		a, b := loads[i], loads[j]
		if a.excess != b.excess {
			return a.excess > b.excess
		}
		if len(a.addrs) != len(b.addrs) {
			return len(a.addrs) > len(b.addrs)
		}
		return lessRow(a.row, b.row)
	})
	spared := make(map[RowRef]bool)
	sparedFailures := 0
	for _, l := range loads {
		if len(plan.SparedRows) >= budget.SpareRows {
			break
		}
		if l.excess == 0 {
			break // remaining rows are fully ECC-absorbable
		}
		plan.SparedRows = append(plan.SparedRows, l.row)
		spared[l.row] = true
		sparedFailures += len(l.addrs)
	}
	sort.Slice(plan.SparedRows, func(i, j int) bool { return lessRow(plan.SparedRows[i], plan.SparedRows[j]) })

	// Steps 2-4: per surviving row, ECC absorbs the first failures of
	// each word, remap entries take the overflow, the rest is
	// uncovered.
	remapLeft := budget.RemapEntries
	var rows []RowRef
	for row := range byRow {
		if !spared[row] {
			rows = append(rows, row)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return lessRow(rows[i], rows[j]) })
	for _, row := range rows {
		addrs := byRow[row]
		sortAddrs(addrs)
		perWord := make(map[int32]int)
		for _, a := range addrs {
			word := a.Col / int32(budget.WordBits)
			if perWord[word] < budget.ECCBitsPerWord {
				perWord[word]++
				plan.ECCCovered = append(plan.ECCCovered, a)
				continue
			}
			if remapLeft > 0 {
				remapLeft--
				plan.Remapped = append(plan.Remapped, a)
				continue
			}
			plan.Uncovered = append(plan.Uncovered, a)
		}
	}
	plan.sparedFailureCount = sparedFailures
	return plan, nil
}

// excessBeyondECC counts the failures of a row that per-word ECC
// capacity cannot absorb.
func excessBeyondECC(addrs []memctl.BitAddr, budget Budget) int {
	perWord := make(map[int32]int)
	for _, a := range addrs {
		perWord[a.Col/int32(budget.WordBits)]++
	}
	excess := 0
	for _, n := range perWord {
		if n > budget.ECCBitsPerWord {
			excess += n - budget.ECCBitsPerWord
		}
	}
	return excess
}

func lessRow(a, b RowRef) bool {
	if a.Chip != b.Chip {
		return a.Chip < b.Chip
	}
	if a.Bank != b.Bank {
		return a.Bank < b.Bank
	}
	return a.Row < b.Row
}

func sortAddrs(addrs []memctl.BitAddr) {
	sort.Slice(addrs, func(i, j int) bool {
		a, b := addrs[i], addrs[j]
		if a.Chip != b.Chip {
			return a.Chip < b.Chip
		}
		if a.Bank != b.Bank {
			return a.Bank < b.Bank
		}
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Col < b.Col
	})
}
