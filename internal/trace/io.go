package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Trace files serialize a generated request stream so experiments can
// replay the exact same workload across tools and machines (the role
// the paper's Pin traces play). The format is a small binary header
// with the generating profile, then one varint-encoded record per
// request:
//
//	magic "PBTR", version u8
//	app:  name (u8 len + bytes), MPKI f64, RowLocality f64,
//	      WriteFrac f64, FootprintRows u32, ContentMatchProb f64
//	count u64, then per request:
//	      flags u8 (bit0 = write), InstGap uvarint, Row uvarint
const (
	traceMagic   = "PBTR"
	traceVersion = 1
)

// WriteTrace serializes a request sequence with its generating
// profile.
func WriteTrace(w io.Writer, app App, reqs []Request) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return fmt.Errorf("trace: writing magic: %w", err)
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return fmt.Errorf("trace: writing version: %w", err)
	}
	if len(app.Name) > 255 {
		return fmt.Errorf("trace: app name %q too long", app.Name)
	}
	if err := bw.WriteByte(byte(len(app.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(app.Name); err != nil {
		return err
	}
	for _, f := range []float64{app.MPKI, app.RowLocality, app.WriteFrac} {
		if err := binary.Write(bw, binary.LittleEndian, f); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(app.FootprintRows)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, app.ContentMatchProb); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(reqs))); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	for i, r := range reqs {
		// Negative values would wrap through the uvarint encoding and
		// come back as huge positive rows/gaps; reject them up front so
		// every written trace round-trips.
		if r.InstGap < 0 {
			return fmt.Errorf("trace: request %d: negative instruction gap %d", i, r.InstGap)
		}
		if r.Row < 0 {
			return fmt.Errorf("trace: request %d: negative row %d", i, r.Row)
		}
		var flags byte
		if r.Write {
			flags |= 1
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		n := binary.PutUvarint(buf[:], uint64(r.InstGap))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		n = binary.PutUvarint(buf[:], uint64(r.Row))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace deserializes a trace file.
func ReadTrace(r io.Reader) (App, []Request, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return App{}, nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return App{}, nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return App{}, nil, err
	}
	if version != traceVersion {
		return App{}, nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	nameLen, err := br.ReadByte()
	if err != nil {
		return App{}, nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return App{}, nil, err
	}
	app := App{Name: string(name)}
	for _, dst := range []*float64{&app.MPKI, &app.RowLocality, &app.WriteFrac} {
		if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
			return App{}, nil, err
		}
	}
	var footprint uint32
	if err := binary.Read(br, binary.LittleEndian, &footprint); err != nil {
		return App{}, nil, err
	}
	app.FootprintRows = int(footprint)
	if err := binary.Read(br, binary.LittleEndian, &app.ContentMatchProb); err != nil {
		return App{}, nil, err
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return App{}, nil, err
	}
	const maxCount = 1 << 30
	if count > maxCount {
		return App{}, nil, fmt.Errorf("trace: implausible request count %d", count)
	}
	// Cap the up-front allocation: the header's count is untrusted, and
	// a record needs at least 3 bytes, so a short input claiming 2^30
	// records must not allocate 24 GiB before the first read fails.
	capHint := count
	if capHint > 4096 {
		capHint = 4096
	}
	reqs := make([]Request, 0, capHint)
	for i := uint64(0); i < count; i++ {
		flags, err := br.ReadByte()
		if err != nil {
			return App{}, nil, fmt.Errorf("trace: request %d: %w", i, err)
		}
		gap, err := binary.ReadUvarint(br)
		if err != nil {
			return App{}, nil, fmt.Errorf("trace: request %d gap: %w", i, err)
		}
		row, err := binary.ReadUvarint(br)
		if err != nil {
			return App{}, nil, fmt.Errorf("trace: request %d row: %w", i, err)
		}
		if gap > math.MaxInt32 {
			return App{}, nil, fmt.Errorf("trace: request %d: gap %d out of range", i, gap)
		}
		if row > math.MaxInt64 {
			return App{}, nil, fmt.Errorf("trace: request %d: row %d out of range", i, row)
		}
		reqs = append(reqs, Request{
			InstGap: int(gap),
			Write:   flags&1 != 0,
			Row:     int64(row),
		})
	}
	return app, reqs, nil
}
