package trace

import (
	"math"
	"testing"
)

func TestSPEC2006ProfileCount(t *testing.T) {
	apps := SPEC2006()
	if len(apps) != 17 {
		t.Fatalf("SPEC2006() returned %d apps, want 17 (paper, Section 8)", len(apps))
	}
	seen := map[string]bool{}
	for _, a := range apps {
		if seen[a.Name] {
			t.Errorf("duplicate app %q", a.Name)
		}
		seen[a.Name] = true
		if a.MPKI <= 0 || a.FootprintRows <= 0 {
			t.Errorf("app %q has invalid profile: %+v", a.Name, a)
		}
		if a.RowLocality < 0 || a.RowLocality > 1 || a.WriteFrac < 0 || a.WriteFrac > 1 ||
			a.ContentMatchProb < 0 || a.ContentMatchProb > 1 {
			t.Errorf("app %q has out-of-range probabilities: %+v", a.Name, a)
		}
	}
}

// TestAverageContentMatchProb pins the calibration that produces the
// paper's 2.7% fast-row fraction: 16.4% weak x ~16.5% matched.
func TestAverageContentMatchProb(t *testing.T) {
	avg := AverageContentMatchProb(SPEC2006())
	if math.Abs(avg-0.165) > 0.015 {
		t.Errorf("average content-match prob = %.3f, want about 0.165", avg)
	}
	if got := AverageContentMatchProb(nil); got != 0 {
		t.Errorf("empty average = %v, want 0", got)
	}
}

func TestAppByName(t *testing.T) {
	a, err := AppByName("mcf")
	if err != nil || a.Name != "mcf" {
		t.Errorf("AppByName(mcf) = %+v, %v", a, err)
	}
	if _, err := AppByName("nonexistent"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestStreamDeterminism(t *testing.T) {
	app, _ := AppByName("milc")
	a, err := Generate(app, 1000, 5)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, _ := Generate(app, 1000, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs", i)
		}
	}
	c, _ := Generate(app, 1000, 6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestStreamStatistics(t *testing.T) {
	app, _ := AppByName("lbm")
	reqs, err := Generate(app, 50000, 3)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var gaps, writes, hits float64
	last := int64(-1)
	for _, r := range reqs {
		gaps += float64(r.InstGap)
		if r.Write {
			writes++
		}
		if r.Row == last {
			hits++
		}
		last = r.Row
		if r.Row < 0 || r.Row >= int64(app.FootprintRows) {
			t.Fatalf("row %d outside footprint", r.Row)
		}
		if r.InstGap < 1 {
			t.Fatalf("InstGap %d < 1", r.InstGap)
		}
	}
	n := float64(len(reqs))
	if meanGap := gaps / n; math.Abs(meanGap-1000/app.MPKI) > 0.15*(1000/app.MPKI) {
		t.Errorf("mean gap = %.1f, want about %.1f", meanGap, 1000/app.MPKI)
	}
	if frac := writes / n; math.Abs(frac-app.WriteFrac) > 0.03 {
		t.Errorf("write fraction = %.3f, want about %.3f", frac, app.WriteFrac)
	}
	if loc := hits / n; math.Abs(loc-app.RowLocality) > 0.05 {
		t.Errorf("row locality = %.3f, want about %.3f", loc, app.RowLocality)
	}
}

func TestNewStreamValidation(t *testing.T) {
	if _, err := NewStream(App{Name: "x", MPKI: 0, FootprintRows: 10}, 1); err == nil {
		t.Error("MPKI=0 accepted")
	}
	if _, err := NewStream(App{Name: "x", MPKI: 1, FootprintRows: 0}, 1); err == nil {
		t.Error("FootprintRows=0 accepted")
	}
}

func TestWorkloads(t *testing.T) {
	wls := Workloads(32, 8, 9)
	if len(wls) != 32 {
		t.Fatalf("%d workloads, want 32", len(wls))
	}
	apps := map[string]bool{}
	for _, wl := range wls {
		if len(wl) != 8 {
			t.Fatalf("workload has %d cores, want 8", len(wl))
		}
		for _, a := range wl {
			apps[a.Name] = true
		}
	}
	if len(apps) < 12 {
		t.Errorf("32 workloads only used %d distinct apps; assignment looks broken", len(apps))
	}
	// Deterministic.
	again := Workloads(32, 8, 9)
	for w := range wls {
		for c := range wls[w] {
			if wls[w][c].Name != again[w][c].Name {
				t.Fatal("Workloads not deterministic")
			}
		}
	}
}
