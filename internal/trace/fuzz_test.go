package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// fuzzRequests derives a deterministic request sequence from a fuzz
// seed with a splitmix64 step, so the fuzzer explores request shapes
// without shipping a slice through the corpus.
func fuzzRequests(n uint16, seed uint64) []Request {
	next := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	reqs := make([]Request, n%512)
	for i := range reqs {
		reqs[i] = Request{
			InstGap: int(next() % math.MaxInt32),
			Write:   next()&1 != 0,
			Row:     int64(next() >> 1), // keep non-negative
		}
	}
	return reqs
}

// FuzzTraceRoundTrip checks that WriteTrace/ReadTrace form an exact
// round trip for every writable input, that unwritable inputs
// (oversized app names) are rejected instead of silently truncated,
// and that no truncation of a valid trace can make ReadTrace panic.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add("mcf", 33.0, 0.20, 0.28, uint32(60000), 0.10, uint16(64), uint64(1))
	f.Add("", 0.0, 0.0, 0.0, uint32(0), 0.0, uint16(0), uint64(0))
	f.Add(strings.Repeat("x", 256), 1.0, 0.5, 0.5, uint32(10), 0.5, uint16(3), uint64(7))
	f.Add("nan", math.NaN(), math.Inf(1), math.Inf(-1), uint32(1), -0.0, uint16(1), uint64(9))
	f.Fuzz(func(t *testing.T, name string, mpki, rowLoc, writeFrac float64, footprint uint32, cmp float64, n uint16, seed uint64) {
		app := App{
			Name:             name,
			MPKI:             mpki,
			RowLocality:      rowLoc,
			WriteFrac:        writeFrac,
			FootprintRows:    int(footprint),
			ContentMatchProb: cmp,
		}
		reqs := fuzzRequests(n, seed)
		var buf bytes.Buffer
		err := WriteTrace(&buf, app, reqs)
		if len(name) > 255 {
			if err == nil {
				t.Fatalf("WriteTrace accepted a %d-byte app name", len(name))
			}
			return
		}
		if err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}

		gotApp, gotReqs, err := ReadTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadTrace: %v", err)
		}
		if gotApp.Name != app.Name || gotApp.FootprintRows != app.FootprintRows {
			t.Fatalf("app header round trip: got %+v, want %+v", gotApp, app)
		}
		// Compare floats bitwise so NaN payloads and signed zeros
		// survive the round trip too.
		for i, pair := range [][2]float64{
			{gotApp.MPKI, app.MPKI},
			{gotApp.RowLocality, app.RowLocality},
			{gotApp.WriteFrac, app.WriteFrac},
			{gotApp.ContentMatchProb, app.ContentMatchProb},
		} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("float field %d round trip: %x != %x", i, math.Float64bits(pair[0]), math.Float64bits(pair[1]))
			}
		}
		if len(gotReqs) != len(reqs) {
			t.Fatalf("%d requests round tripped, want %d", len(gotReqs), len(reqs))
		}
		for i := range reqs {
			if gotReqs[i] != reqs[i] {
				t.Fatalf("request %d round trip: got %+v, want %+v", i, gotReqs[i], reqs[i])
			}
		}

		// Every proper prefix of a valid trace must produce an error,
		// never a panic and never a silent success.
		data := buf.Bytes()
		for _, cut := range []int{0, 1, 3, 4, 5, len(data) / 2, len(data) - 1} {
			if cut < 0 || cut >= len(data) {
				continue
			}
			if _, _, err := ReadTrace(bytes.NewReader(data[:cut])); err == nil {
				t.Fatalf("ReadTrace accepted a trace truncated to %d of %d bytes", cut, len(data))
			}
		}
	})
}

// FuzzReadTrace feeds arbitrary bytes to the reader: it may reject
// them, but must never panic or over-allocate.
func FuzzReadTrace(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("PBTR"))
	f.Add([]byte("PBTR\x01\x00"))
	f.Add([]byte("XXXX\x01\x00"))
	var valid bytes.Buffer
	if err := WriteTrace(&valid, App{Name: "seed"}, []Request{{InstGap: 1, Row: 2, Write: true}}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = ReadTrace(bytes.NewReader(data))
	})
}
