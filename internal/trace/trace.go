// Package trace generates synthetic memory-request streams modeled on
// the 17 SPEC CPU2006 applications the paper's DC-REF evaluation uses
// (Section 8, Table 2). The real evaluation replays Pin traces of
// representative phases; those traces are not redistributable, so
// each application is summarized by the statistics that matter to a
// refresh/scheduling study — miss intensity (MPKI), row-buffer
// locality, write fraction, footprint — plus the DC-REF-specific
// probability that written data matches a worst-case coupling
// pattern. The per-app numbers are calibrated against published SPEC
// characterizations so that the workload mix spans the same
// memory-intensity range as the paper's.
package trace

import (
	"fmt"

	"parbor/internal/rng"
)

// App is a synthetic-workload profile.
type App struct {
	// Name is the SPEC benchmark name.
	Name string
	// MPKI is last-level-cache misses per kilo-instruction, i.e. DRAM
	// requests per 1000 instructions.
	MPKI float64
	// RowLocality is the probability that a request targets the same
	// DRAM row as the previous one (row-buffer hit potential).
	RowLocality float64
	// WriteFrac is the fraction of requests that are writes.
	WriteFrac float64
	// FootprintRows is the number of distinct DRAM rows the
	// application touches.
	FootprintRows int
	// ContentMatchProb is the probability that data the application
	// writes to a weak row recreates the worst-case coupling pattern
	// of some vulnerable cell in it (drives DC-REF, Section 8).
	ContentMatchProb float64
}

// SPEC2006 returns the 17 application profiles used by the Figure 16
// workloads, ordered from most to least memory-intensive.
func SPEC2006() []App {
	return []App{
		{Name: "mcf", MPKI: 33.0, RowLocality: 0.20, WriteFrac: 0.28, FootprintRows: 60000, ContentMatchProb: 0.10},
		{Name: "lbm", MPKI: 31.9, RowLocality: 0.82, WriteFrac: 0.47, FootprintRows: 50000, ContentMatchProb: 0.24},
		{Name: "soplex", MPKI: 27.9, RowLocality: 0.65, WriteFrac: 0.25, FootprintRows: 30000, ContentMatchProb: 0.14},
		{Name: "milc", MPKI: 25.7, RowLocality: 0.60, WriteFrac: 0.35, FootprintRows: 45000, ContentMatchProb: 0.30},
		{Name: "libquantum", MPKI: 25.4, RowLocality: 0.95, WriteFrac: 0.30, FootprintRows: 4000, ContentMatchProb: 0.45},
		{Name: "omnetpp", MPKI: 21.0, RowLocality: 0.30, WriteFrac: 0.40, FootprintRows: 20000, ContentMatchProb: 0.08},
		{Name: "bwaves", MPKI: 18.7, RowLocality: 0.78, WriteFrac: 0.33, FootprintRows: 55000, ContentMatchProb: 0.22},
		{Name: "GemsFDTD", MPKI: 18.3, RowLocality: 0.70, WriteFrac: 0.45, FootprintRows: 50000, ContentMatchProb: 0.18},
		{Name: "leslie3d", MPKI: 13.8, RowLocality: 0.72, WriteFrac: 0.40, FootprintRows: 25000, ContentMatchProb: 0.16},
		{Name: "sphinx3", MPKI: 12.9, RowLocality: 0.55, WriteFrac: 0.12, FootprintRows: 15000, ContentMatchProb: 0.12},
		{Name: "astar", MPKI: 9.2, RowLocality: 0.35, WriteFrac: 0.35, FootprintRows: 12000, ContentMatchProb: 0.07},
		{Name: "gcc", MPKI: 6.0, RowLocality: 0.45, WriteFrac: 0.30, FootprintRows: 10000, ContentMatchProb: 0.10},
		{Name: "zeusmp", MPKI: 4.8, RowLocality: 0.68, WriteFrac: 0.38, FootprintRows: 30000, ContentMatchProb: 0.20},
		{Name: "cactusADM", MPKI: 4.5, RowLocality: 0.66, WriteFrac: 0.42, FootprintRows: 28000, ContentMatchProb: 0.17},
		{Name: "bzip2", MPKI: 3.5, RowLocality: 0.50, WriteFrac: 0.32, FootprintRows: 8000, ContentMatchProb: 0.13},
		{Name: "hmmer", MPKI: 2.6, RowLocality: 0.60, WriteFrac: 0.25, FootprintRows: 3000, ContentMatchProb: 0.09},
		{Name: "h264ref", MPKI: 1.9, RowLocality: 0.58, WriteFrac: 0.28, FootprintRows: 5000, ContentMatchProb: 0.11},
	}
}

// AppByName looks up a profile.
func AppByName(name string) (App, error) {
	for _, a := range SPEC2006() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("trace: unknown application %q", name)
}

// AverageContentMatchProb returns the mean ContentMatchProb across
// the profile set — the number that determines DC-REF's steady-state
// fast-row fraction.
func AverageContentMatchProb(apps []App) float64 {
	if len(apps) == 0 {
		return 0
	}
	sum := 0.0
	for _, a := range apps {
		sum += a.ContentMatchProb
	}
	return sum / float64(len(apps))
}

// Request is one DRAM request of a core's stream.
type Request struct {
	// InstGap is the number of instructions the core executes before
	// issuing this request.
	InstGap int
	// Write marks a write request.
	Write bool
	// Row is the target row within the application's footprint,
	// in [0, FootprintRows).
	Row int64
}

// Stream lazily generates an application's request sequence.
// Deterministic per (app, seed).
type Stream struct {
	app     App
	src     *rng.Source
	lastRow int64
	gapMean float64
}

// NewStream builds a request stream for app.
func NewStream(app App, seed uint64) (*Stream, error) {
	if app.MPKI <= 0 {
		return nil, fmt.Errorf("trace: app %q has non-positive MPKI", app.Name)
	}
	if app.FootprintRows <= 0 {
		return nil, fmt.Errorf("trace: app %q has non-positive footprint", app.Name)
	}
	return &Stream{
		app:     app,
		src:     rng.New(seed).Split("stream-" + app.Name),
		gapMean: 1000 / app.MPKI,
	}, nil
}

// App returns the profile this stream models.
func (s *Stream) App() App { return s.app }

// Next returns the next request.
func (s *Stream) Next() Request {
	gap := int(s.gapMean * s.src.ExpFloat64())
	if gap < 1 {
		gap = 1
	}
	row := s.lastRow
	if s.src.Float64() >= s.app.RowLocality {
		// New row: mix of streaming (next row) and random jumps, as in
		// real access patterns.
		if s.src.Float64() < 0.5 {
			row = (s.lastRow + 1) % int64(s.app.FootprintRows)
		} else {
			row = int64(s.src.Intn(s.app.FootprintRows))
		}
	}
	s.lastRow = row
	return Request{
		InstGap: gap,
		Write:   s.src.Float64() < s.app.WriteFrac,
		Row:     row,
	}
}

// Generate materializes n requests of a stream (useful for tests and
// offline analysis).
func Generate(app App, n int, seed uint64) ([]Request, error) {
	s, err := NewStream(app, seed)
	if err != nil {
		return nil, err
	}
	out := make([]Request, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out, nil
}

// Workloads builds n multi-programmed mixes of `cores` applications
// each, assigning applications uniformly at random as in the paper's
// 32 8-core workloads.
func Workloads(n, cores int, seed uint64) [][]App {
	apps := SPEC2006()
	src := rng.New(seed).Split("workloads")
	out := make([][]App, n)
	for w := range out {
		mix := make([]App, cores)
		for c := range mix {
			mix[c] = apps[src.Intn(len(apps))]
		}
		out[w] = mix
	}
	return out
}
