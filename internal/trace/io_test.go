package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	app, err := AppByName("lbm")
	if err != nil {
		t.Fatalf("AppByName: %v", err)
	}
	reqs, err := Generate(app, 5000, 7)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, app, reqs); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	gotApp, gotReqs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if gotApp != app {
		t.Errorf("app round trip: %+v != %+v", gotApp, app)
	}
	if len(gotReqs) != len(reqs) {
		t.Fatalf("request count %d != %d", len(gotReqs), len(reqs))
	}
	for i := range reqs {
		if gotReqs[i] != reqs[i] {
			t.Fatalf("request %d differs: %+v != %+v", i, gotReqs[i], reqs[i])
		}
	}
}

func TestTraceCompactness(t *testing.T) {
	app, _ := AppByName("mcf")
	reqs, _ := Generate(app, 10000, 1)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, app, reqs); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	perReq := float64(buf.Len()) / float64(len(reqs))
	if perReq > 8 {
		t.Errorf("%.1f bytes per request, want compact (<8)", perReq)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad magic":   "NOPE\x01",
		"bad version": "PBTR\x63",
		"truncated":   "PBTR\x01\x03lbm",
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, _, err := ReadTrace(strings.NewReader(data)); err == nil {
				t.Error("garbage accepted")
			}
		})
	}
}

func TestWriteTraceRejectsLongName(t *testing.T) {
	app := App{Name: strings.Repeat("x", 300), MPKI: 1, FootprintRows: 1}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, app, nil); err == nil {
		t.Error("overlong name accepted")
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	app, _ := AppByName("hmmer")
	var buf bytes.Buffer
	if err := WriteTrace(&buf, app, nil); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	gotApp, gotReqs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if gotApp != app || len(gotReqs) != 0 {
		t.Error("empty trace round trip failed")
	}
}
