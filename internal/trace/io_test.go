package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	app, err := AppByName("lbm")
	if err != nil {
		t.Fatalf("AppByName: %v", err)
	}
	reqs, err := Generate(app, 5000, 7)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, app, reqs); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	gotApp, gotReqs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if gotApp != app {
		t.Errorf("app round trip: %+v != %+v", gotApp, app)
	}
	if len(gotReqs) != len(reqs) {
		t.Fatalf("request count %d != %d", len(gotReqs), len(reqs))
	}
	for i := range reqs {
		if gotReqs[i] != reqs[i] {
			t.Fatalf("request %d differs: %+v != %+v", i, gotReqs[i], reqs[i])
		}
	}
}

func TestTraceCompactness(t *testing.T) {
	app, _ := AppByName("mcf")
	reqs, _ := Generate(app, 10000, 1)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, app, reqs); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	perReq := float64(buf.Len()) / float64(len(reqs))
	if perReq > 8 {
		t.Errorf("%.1f bytes per request, want compact (<8)", perReq)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad magic":   "NOPE\x01",
		"bad version": "PBTR\x63",
		"truncated":   "PBTR\x01\x03lbm",
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, _, err := ReadTrace(strings.NewReader(data)); err == nil {
				t.Error("garbage accepted")
			}
		})
	}
}

func TestWriteTraceRejectsLongName(t *testing.T) {
	app := App{Name: strings.Repeat("x", 300), MPKI: 1, FootprintRows: 1}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, app, nil); err == nil {
		t.Error("overlong name accepted")
	}
}

func TestWriteTraceRejectsNegativeFields(t *testing.T) {
	app, _ := AppByName("gcc")
	cases := map[string][]Request{
		"negative gap": {{InstGap: -1, Row: 0}},
		"negative row": {{InstGap: 1, Row: -5}},
	}
	for name, reqs := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteTrace(&buf, app, reqs); err == nil {
				t.Error("negative request field accepted")
			}
		})
	}
}

func TestReadTraceRejectsTruncatedVarint(t *testing.T) {
	app, _ := AppByName("gcc")
	var buf bytes.Buffer
	if err := WriteTrace(&buf, app, []Request{{InstGap: 1 << 20, Row: 1 << 20}}); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	// Cut inside the final varint: every prefix must error cleanly.
	data := buf.Bytes()
	for cut := len(data) - 3; cut < len(data); cut++ {
		if _, _, err := ReadTrace(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("trace truncated to %d/%d bytes accepted", cut, len(data))
		}
	}
}

func TestReadTraceRejectsImplausibleCount(t *testing.T) {
	app, _ := AppByName("gcc")
	var buf bytes.Buffer
	if err := WriteTrace(&buf, app, nil); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	// The count field is the final 8 bytes of an empty trace; claim
	// 2^40 records with no data behind them.
	data := buf.Bytes()
	for i := 0; i < 8; i++ {
		data[len(data)-8+i] = 0
	}
	data[len(data)-3] = 1 // little-endian 2^40
	if _, _, err := ReadTrace(bytes.NewReader(data)); err == nil {
		t.Error("implausible request count accepted")
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	app, _ := AppByName("hmmer")
	var buf bytes.Buffer
	if err := WriteTrace(&buf, app, nil); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	gotApp, gotReqs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if gotApp != app || len(gotReqs) != 0 {
		t.Error("empty trace round trip failed")
	}
}
