// Package march implements classical memory March tests and
// neighborhood pattern-sensitive fault (NPSF) testing over the
// system-level test host.
//
// Section 5.2.5 of the PARBOR paper observes that once the physical
// neighbor locations are known, "well-known test methods, such as
// neighborhood pattern-sensitive fault (NPSF) tests, can be applied",
// and that efficient NPSF algorithms are built from March elements.
// This package provides both building blocks:
//
//   - a March engine executing arbitrary element sequences (ascending
//     or descending row order, write/read operations, and the delay
//     elements DRAM-specific March variants insert to expose
//     retention faults), plus the standard MATS+, March C- and March
//     SS tests;
//   - an NPSF-style test that uses a detected neighbor-distance set
//     to stress every cell with deviated neighborhoods, implemented
//     with the same neighbor-aware patterns the PARBOR pipeline uses.
//
// March tests operate at row granularity with solid row data: a "w0"
// element writes zeros to each row in order, "r0" reads each row and
// reports any cell that does not hold zero. This matches how March
// tests run through a memory controller (cache-line writes of
// repeated data), and detects stuck-at, transition, and — with delay
// elements — retention faults. Coupling faults between *rows* would
// need row-pair sensitization, and coupling faults within a row need
// the NPSF test, since solid row data never places opposite values at
// intra-row neighbors.
package march

import (
	"fmt"
	"strings"

	"parbor/internal/memctl"
	"parbor/internal/patterns"
)

// Direction orders row traversal within an element. March theory also
// allows "either"; the engine treats it as ascending.
type Direction int

// Traversal orders.
const (
	Up Direction = iota + 1
	Down
	Either
)

// OpKind is a March operation.
type OpKind int

// March operations: write zeros/ones to the row, or read and verify.
const (
	W0 OpKind = iota + 1
	W1
	R0
	R1
)

// Element is one March element: a sequence of operations applied to
// each row in the given direction, with an optional retention delay
// (in milliseconds) before the element runs — the DRAM-specific
// extension used to expose retention and data-dependent faults.
type Element struct {
	Dir     Direction
	Ops     []OpKind
	DelayMs float64
}

// Test is a named March test.
type Test struct {
	Name     string
	Elements []Element
}

// String renders the test in standard March notation.
func (t Test) String() string {
	var parts []string
	for _, e := range t.Elements {
		var ops []string
		for _, op := range e.Ops {
			switch op {
			case W0:
				ops = append(ops, "w0")
			case W1:
				ops = append(ops, "w1")
			case R0:
				ops = append(ops, "r0")
			case R1:
				ops = append(ops, "r1")
			}
		}
		dir := "⇕"
		switch e.Dir {
		case Up:
			dir = "⇑"
		case Down:
			dir = "⇓"
		}
		s := dir + "(" + strings.Join(ops, ",") + ")"
		if e.DelayMs > 0 {
			s = fmt.Sprintf("Del%.0fms;%s", e.DelayMs, s)
		}
		parts = append(parts, s)
	}
	return t.Name + ": " + strings.Join(parts, " ")
}

// MATSPlus is MATS+: {⇕(w0); ⇑(r0,w1); ⇓(r1,w0)} — detects stuck-at
// and address-decoder faults.
func MATSPlus() Test {
	return Test{
		Name: "MATS+",
		Elements: []Element{
			{Dir: Either, Ops: []OpKind{W0}},
			{Dir: Up, Ops: []OpKind{R0, W1}},
			{Dir: Down, Ops: []OpKind{R1, W0}},
		},
	}
}

// MarchCMinus is March C-:
// {⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)} — detects
// stuck-at, transition, and inter-word coupling faults.
func MarchCMinus() Test {
	return Test{
		Name: "March C-",
		Elements: []Element{
			{Dir: Either, Ops: []OpKind{W0}},
			{Dir: Up, Ops: []OpKind{R0, W1}},
			{Dir: Up, Ops: []OpKind{R1, W0}},
			{Dir: Down, Ops: []OpKind{R0, W1}},
			{Dir: Down, Ops: []OpKind{R1, W0}},
			{Dir: Either, Ops: []OpKind{R0}},
		},
	}
}

// MarchSS is March SS, a longer test covering simple static faults:
// {⇕(w0); ⇑(r0,r0,w0,r0,w1); ⇑(r1,r1,w1,r1,w0);
//
//	⇓(r0,r0,w0,r0,w1); ⇓(r1,r1,w1,r1,w0); ⇕(r0)}.
func MarchSS() Test {
	return Test{
		Name: "March SS",
		Elements: []Element{
			{Dir: Either, Ops: []OpKind{W0}},
			{Dir: Up, Ops: []OpKind{R0, R0, W0, R0, W1}},
			{Dir: Up, Ops: []OpKind{R1, R1, W1, R1, W0}},
			{Dir: Down, Ops: []OpKind{R0, R0, W0, R0, W1}},
			{Dir: Down, Ops: []OpKind{R1, R1, W1, R1, W0}},
			{Dir: Either, Ops: []OpKind{R0}},
		},
	}
}

// WithRetentionDelays returns a copy of the test with delayMs
// inserted before every element that begins with a read — the
// standard DRAM adaptation that turns a surface March test into a
// retention test.
func WithRetentionDelays(t Test, delayMs float64) Test {
	out := Test{Name: fmt.Sprintf("%s+%.0fms", t.Name, delayMs)}
	for _, e := range t.Elements {
		if len(e.Ops) > 0 && (e.Ops[0] == R0 || e.Ops[0] == R1) {
			e.DelayMs = delayMs
		}
		out.Elements = append(out.Elements, e)
	}
	return out
}

// Result aggregates a March run.
type Result struct {
	Test Test
	// Failures are all mismatching cells observed across all read
	// operations.
	Failures map[memctl.BitAddr]struct{}
	// Reads and Writes count row operations performed.
	Reads  int
	Writes int
}

// Engine executes March tests through a host.
type Engine struct {
	host *memctl.Host
}

// NewEngine builds an engine.
func NewEngine(host *memctl.Host) (*Engine, error) {
	if host == nil {
		return nil, fmt.Errorf("march: nil host")
	}
	return &Engine{host: host}, nil
}

// rows lists the module's rows in ascending order.
func (e *Engine) rows() []memctl.Row {
	g := e.host.Geometry()
	out := make([]memctl.Row, 0, e.host.Chips()*g.RowCount())
	for chip := 0; chip < e.host.Chips(); chip++ {
		for bank := 0; bank < g.Banks; bank++ {
			for row := 0; row < g.Rows; row++ {
				out = append(out, memctl.Row{Chip: chip, Bank: bank, Row: row})
			}
		}
	}
	return out
}

// Run executes the test and returns every observed failure.
//
// Operations are realized through host passes: writes of an element
// are batched into one pass per op (all rows written back-to-back),
// and read ops verify after the element's delay. This preserves March
// semantics at row granularity while keeping pass accounting
// comparable with the rest of the repository.
func (e *Engine) Run(t Test) (*Result, error) {
	if len(t.Elements) == 0 {
		return nil, fmt.Errorf("march: test %q has no elements", t.Name)
	}
	res := &Result{Test: t, Failures: make(map[memctl.BitAddr]struct{})}
	rows := e.rows()
	words := e.host.Geometry().Words()

	zeros := make([]uint64, words)
	ones := make([]uint64, words)
	for i := range ones {
		ones[i] = ^uint64(0)
	}
	rowData := func(op OpKind) []uint64 {
		if op == W1 || op == R1 {
			return ones
		}
		return zeros
	}

	for _, elem := range t.Elements {
		order := rows
		if elem.Dir == Down {
			order = make([]memctl.Row, len(rows))
			for i, r := range rows {
				order[len(rows)-1-i] = r
			}
		}
		delayed := false
		for _, op := range elem.Ops {
			switch op {
			case W0, W1:
				data := rowData(op)
				bufs := make([][]uint64, len(order))
				for i := range bufs {
					bufs[i] = data
				}
				// A pure write: zero retention wait.
				if _, err := e.host.PassWithWait(order, bufs, 0); err != nil {
					return nil, fmt.Errorf("march: %s write: %w", t.Name, err)
				}
				res.Writes += len(order)
			case R0, R1:
				wait := 0.0
				if !delayed && elem.DelayMs > 0 {
					wait = elem.DelayMs
					delayed = true
				}
				expected := rowData(op)
				bufs := make([][]uint64, len(order))
				for i := range bufs {
					bufs[i] = expected
				}
				fails, err := e.verify(order, bufs, wait)
				if err != nil {
					return nil, fmt.Errorf("march: %s read: %w", t.Name, err)
				}
				for _, a := range fails {
					res.Failures[a] = struct{}{}
				}
				res.Reads += len(order)
			default:
				return nil, fmt.Errorf("march: unknown op %d", int(op))
			}
		}
	}
	return res, nil
}

// verify reads the rows after the wait and diffs against expected.
// Reads must not rewrite the rows, so it cannot use Pass (which
// writes first); it drives the module read path directly.
func (e *Engine) verify(rows []memctl.Row, expected [][]uint64, waitMs float64) ([]memctl.BitAddr, error) {
	return e.host.Verify(rows, expected, waitMs)
}

// NPSFResult aggregates an NPSF run.
type NPSFResult struct {
	// Failures observed across all neighborhood patterns.
	Failures map[memctl.BitAddr]struct{}
	// Tests is the number of passes.
	Tests int
}

// NPSF runs a neighborhood pattern-sensitive fault test using the
// detected neighbor distances: every cell is stressed as a base cell
// with its deviated neighborhood (all candidate neighbors opposite),
// in both polarities — the Type-1 active NPSF condition restricted to
// the physically meaningful neighborhoods PARBOR identified.
func (e *Engine) NPSF(distances []int, waitMs float64) (*NPSFResult, error) {
	chunk := chunkFor(distances)
	pats, err := patterns.NeighborAware(distances, chunk)
	if err != nil {
		return nil, fmt.Errorf("march: NPSF patterns: %w", err)
	}
	res := &NPSFResult{Failures: make(map[memctl.BitAddr]struct{})}
	for _, p := range pats {
		for _, pp := range []patterns.Pattern{p, p.Inverse()} {
			fill := pp.Fill
			fails := e.host.FullPassWithWait(func(r memctl.Row, buf []uint64) {
				fill(r.Chip, r.Bank, r.Row, buf)
			}, waitMs)
			res.Tests++
			for _, a := range fails {
				res.Failures[a] = struct{}{}
			}
		}
	}
	return res, nil
}

func chunkFor(distances []int) int {
	max := 0
	for _, d := range distances {
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	chunk := 16
	for chunk < 2*max {
		chunk *= 2
	}
	return chunk
}
