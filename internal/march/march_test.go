package march

import (
	"strings"
	"testing"

	"parbor/internal/coupling"
	"parbor/internal/dram"
	"parbor/internal/faults"
	"parbor/internal/memctl"
	"parbor/internal/scramble"
)

func marchHost(t *testing.T, cc coupling.Config, fc faults.Config) *memctl.Host {
	t.Helper()
	mod, err := dram.NewModule(dram.ModuleConfig{
		Vendor:   scramble.VendorA,
		Chips:    1,
		Geometry: dram.Geometry{Banks: 1, Rows: 64, Cols: 1024},
		Coupling: cc,
		Faults:   fc,
		Seed:     17,
	})
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	host, err := memctl.NewHost(mod, 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	return host
}

func quiet() coupling.Config {
	return coupling.Config{VulnerableRate: 0, RetentionMinMs: 1, RetentionMaxMs: 1}
}

func TestMarchCleanModulePasses(t *testing.T) {
	host := marchHost(t, quiet(), faults.Config{})
	engine, err := NewEngine(host)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	for _, test := range []Test{MATSPlus(), MarchCMinus(), MarchSS()} {
		res, err := engine.Run(test)
		if err != nil {
			t.Fatalf("Run(%s): %v", test.Name, err)
		}
		if len(res.Failures) != 0 {
			t.Errorf("%s found %d failures on a clean module", test.Name, len(res.Failures))
		}
		if res.Reads == 0 || res.Writes == 0 {
			t.Errorf("%s performed no work: %+v", test.Name, res)
		}
	}
}

// TestMarchWithoutDelayMissesRetentionFaults: weak cells only fail
// after a long unrefreshed interval, so a surface March test cannot
// see them — the delay-element variant can.
func TestMarchWithoutDelayMissesRetentionFaults(t *testing.T) {
	fc := faults.Config{WeakCellRate: 0.005}
	host := marchHost(t, quiet(), fc)
	engine, err := NewEngine(host)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	surface, err := engine.Run(MarchCMinus())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(surface.Failures) != 0 {
		t.Errorf("surface March C- found %d failures; weak cells need a delay", len(surface.Failures))
	}

	delayed, err := engine.Run(WithRetentionDelays(MarchCMinus(), 1000))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(delayed.Failures) == 0 {
		t.Error("March C- with 1s delays missed every weak cell")
	}
}

// TestMarchMissesCouplingNPSFFindsThem is the package's reason to
// exist: solid-data March tests never place opposite values at
// intra-row neighbors, so coupling victims escape them; the
// NPSF test with detected distances catches them.
func TestMarchMissesCouplingNPSFFindsThem(t *testing.T) {
	cc := coupling.Config{
		VulnerableRate:  0.01,
		StrongLeftFrac:  0.5,
		StrongRightFrac: 0.5,
		RetentionMinMs:  100,
		RetentionMaxMs:  100,
	}
	host := marchHost(t, cc, faults.Config{})
	engine, err := NewEngine(host)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	delayed, err := engine.Run(WithRetentionDelays(MarchCMinus(), 1000))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(delayed.Failures) != 0 {
		t.Errorf("solid-data March found %d coupling failures; should find none", len(delayed.Failures))
	}

	npsf, err := engine.NPSF([]int{-48, -16, -8, 8, 16, 48}, 1000)
	if err != nil {
		t.Fatalf("NPSF: %v", err)
	}
	if len(npsf.Failures) == 0 {
		t.Error("NPSF with the true distances found no coupling victims")
	}
	if npsf.Tests != 32 {
		t.Errorf("NPSF used %d passes, want 32 (16 rounds x 2 polarities)", npsf.Tests)
	}
}

func TestMarchNotation(t *testing.T) {
	s := MarchCMinus().String()
	for _, frag := range []string{"March C-", "w0", "r1", "⇑", "⇓"} {
		if !strings.Contains(s, frag) {
			t.Errorf("notation %q missing %q", s, frag)
		}
	}
	d := WithRetentionDelays(MATSPlus(), 500)
	if !strings.Contains(d.String(), "Del500ms") {
		t.Errorf("delayed notation %q missing delay", d.String())
	}
	if !strings.Contains(d.Name, "+500ms") {
		t.Errorf("delayed name %q missing suffix", d.Name)
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil); err == nil {
		t.Error("nil host accepted")
	}
	host := marchHost(t, quiet(), faults.Config{})
	engine, err := NewEngine(host)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := engine.Run(Test{Name: "empty"}); err == nil {
		t.Error("empty test accepted")
	}
	if _, err := engine.Run(Test{Name: "bad", Elements: []Element{{Dir: Up, Ops: []OpKind{OpKind(99)}}}}); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestDownDirectionCoversAllRows(t *testing.T) {
	// A stuck-at fault model: weak cells fail deterministically after
	// long waits; MATS+ with delays must see them regardless of
	// direction handling.
	fc := faults.Config{WeakCellRate: 0.01}
	host := marchHost(t, quiet(), fc)
	engine, err := NewEngine(host)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res, err := engine.Run(WithRetentionDelays(MATSPlus(), 1000))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The ⇓(r1,w0) element reads ones after the delay: weak cells
	// (charged under data 1 in true rows) must appear.
	if len(res.Failures) == 0 {
		t.Error("MATS+ with delays found nothing")
	}
	g := host.Geometry()
	for a := range res.Failures {
		if int(a.Row) >= g.Rows || int(a.Col) >= g.Cols {
			t.Fatalf("failure address out of range: %+v", a)
		}
	}
}
