package core

import (
	"context"
	"fmt"

	"parbor/internal/memctl"
	"parbor/internal/patterns"
)

// RandomPatternTest is the baseline the paper compares against
// (Figure 12): per-bit random data patterns, unaware of neighbor
// locations, run for the given number of passes. It returns every
// failure observed.
func (t *Tester) RandomPatternTest(passes int) FailureSet {
	fs, err := t.RandomPatternTestCtx(context.Background(), passes)
	if err != nil {
		panic(err)
	}
	return fs
}

// RandomPatternTestCtx is RandomPatternTest with cooperative
// cancellation and fault-plane error reporting.
func (t *Tester) RandomPatternTestCtx(ctx context.Context, passes int) (FailureSet, error) {
	fails := make(FailureSet)
	for i := 0; i < passes; i++ {
		// Random patterns are row-dependent (not Uniform), so this
		// takes fullPassPattern's per-row generation path.
		got, err := t.fullPassPattern(ctx, t.arena, patterns.Random(t.cfg.Seed, i))
		if err != nil {
			return nil, fmt.Errorf("core: random pass %d: %w", i, err)
		}
		fails.Add(got)
	}
	return fails, nil
}

// SimplePatternTest is the all-0s/all-1s test that several prior
// works assume suffices for detecting data-dependent failures
// (Section 3, Challenge 2). It performs two passes.
func (t *Tester) SimplePatternTest() FailureSet {
	fails := make(FailureSet)
	solid := patterns.Solid()
	for _, p := range []patterns.Pattern{solid, solid.Inverse()} {
		got, err := t.fullPassPattern(context.Background(), t.arena, p)
		if err != nil {
			panic(err)
		}
		fails.Add(got)
	}
	return fails
}

// Victim identifies one known data-dependent victim cell for the
// naive searches below.
type Victim struct {
	Row memctl.Row
	// Col is the victim's bit address within the row.
	Col int32
	// FailData is the data value under which the victim fails.
	FailData uint64
}

// DiscoverVictims exposes the discovery phase on its own: it returns
// the victim sample (one per row, capped at the configured sample
// size), the number of passes used, and all observed failures. Like
// FullPass it cannot report errors; hosts with a fault plane attached
// must use DiscoverVictimsCtx.
func (t *Tester) DiscoverVictims() ([]Victim, int, FailureSet) {
	out, tests, fails, err := t.DiscoverVictimsCtx(context.Background())
	if err != nil {
		panic(err)
	}
	return out, tests, fails
}

// DiscoverVictimsCtx is DiscoverVictims with cooperative cancellation
// and fault-plane error reporting.
func (t *Tester) DiscoverVictimsCtx(ctx context.Context) ([]Victim, int, FailureSet, error) {
	vs, tests, fails, err := t.discoverVictims(ctx)
	if err != nil {
		return nil, 0, nil, err
	}
	out := make([]Victim, 0, len(vs))
	for _, v := range vs {
		out = append(out, Victim{Row: v.row, Col: v.col, FailData: v.failData})
	}
	return out, tests, fails, nil
}

// LinearNeighborSearch is the O(n) single-victim baseline: it probes
// every other bit address of the victim's row one at a time and
// returns the bit distances at which the victim failed (the strongly
// coupled neighbor locations), plus the number of passes used.
func (t *Tester) LinearNeighborSearch(v Victim) ([]int, int, error) {
	rowBits := t.host.Geometry().Cols
	buf := make([]uint64, t.host.Geometry().Words())
	addr := memctl.BitAddr{Chip: int16(v.Row.Chip), Bank: int16(v.Row.Bank), Row: int32(v.Row.Row), Col: v.Col}
	var found []int
	passes := 0
	for i := 0; i < rowBits; i++ {
		if i == int(v.Col) {
			continue
		}
		fillRegionPattern(buf, v.FailData, i, 1, int(v.Col))
		fails, err := t.host.Pass([]memctl.Row{v.Row}, [][]uint64{buf})
		passes++
		if err != nil {
			return nil, passes, err
		}
		for _, a := range fails {
			if a == addr {
				found = append(found, i-int(v.Col))
			}
		}
	}
	return found, passes, nil
}

// ExhaustivePairSearch is the O(n^2) naive test of Section 3: it
// probes every combination of two bit addresses in the victim's row
// and returns the distance pairs under which the victim failed, plus
// the number of passes. With a pair probe, a weakly coupled victim
// fails exactly when the pair is its two physical neighbors, which is
// what makes this test complete — and hopeless at 49 days per 8K row
// on real hardware (Appendix).
func (t *Tester) ExhaustivePairSearch(v Victim) ([][2]int, int, error) {
	rowBits := t.host.Geometry().Cols
	if rowBits > 4096 {
		return nil, 0, fmt.Errorf("core: exhaustive pair search on %d-bit rows would take %d passes; use a smaller geometry", rowBits, rowBits*(rowBits-1)/2)
	}
	buf := make([]uint64, t.host.Geometry().Words())
	addr := memctl.BitAddr{Chip: int16(v.Row.Chip), Bank: int16(v.Row.Bank), Row: int32(v.Row.Row), Col: v.Col}
	var found [][2]int
	passes := 0
	for i := 0; i < rowBits; i++ {
		if i == int(v.Col) {
			continue
		}
		for j := i + 1; j < rowBits; j++ {
			if j == int(v.Col) {
				continue
			}
			fillRegionPattern(buf, v.FailData, i, 1, int(v.Col))
			// Complement the second probe bit as well.
			setBitTo(buf, j, 1-v.FailData)
			fails, err := t.host.Pass([]memctl.Row{v.Row}, [][]uint64{buf})
			passes++
			if err != nil {
				return nil, passes, err
			}
			for _, a := range fails {
				if a == addr {
					found = append(found, [2]int{i - int(v.Col), j - int(v.Col)})
				}
			}
		}
	}
	return found, passes, nil
}
