package core

import (
	"reflect"
	"testing"

	"parbor/internal/coupling"
	"parbor/internal/dram"
	"parbor/internal/memctl"
	"parbor/internal/rng"
	"parbor/internal/scramble"
)

// randomLaneMapping builds a vendor-A-style mapping with a random
// physical layout: 8 lanes per 128-bit chunk, all laid out by one
// shared random permutation of the 16 per-lane indices (the
// regularity across lanes mirrors real chips). The resulting
// neighbor-distance set is 8x the permutation's adjacent deltas:
// arbitrary, but known exactly.
func randomLaneMapping(t *testing.T, seed uint64) *scramble.Mapping {
	t.Helper()
	src := rng.New(seed).Split("lane-order")
	order := src.Perm(16)
	segs := make([][]int, 0, 8)
	for lane := 0; lane < 8; lane++ {
		seg := make([]int, len(order))
		for i, m := range order {
			seg[i] = 8*m + lane
		}
		segs = append(segs, seg)
	}
	m, err := scramble.FromSegments(scramble.VendorLinear, 128, segs)
	if err != nil {
		t.Fatalf("FromSegments: %v", err)
	}
	return m
}

// TestDetectRecoversRandomMappings is the end-to-end correctness
// property: for arbitrary (randomly drawn) scrambling layouts, the
// full detection pipeline — victim discovery with generic patterns,
// parallel recursion, ranking — must recover exactly the mapping's
// true neighbor-distance set, using nothing but the memory-controller
// interface.
func TestDetectRecoversRandomMappings(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed end-to-end property test")
	}
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			mapping := randomLaneMapping(t, seed)
			mod, err := dram.NewModule(dram.ModuleConfig{
				Mapping: mapping,
				Vendor:  scramble.VendorLinear, // overridden by Mapping
				Chips:   1,
				Geometry: dram.Geometry{
					Banks: 1, Rows: 768, Cols: 8192,
				},
				Coupling: coupling.Config{
					// Dense, deterministic victims: the property is
					// about the algorithm, not about noise robustness
					// (other tests cover that).
					VulnerableRate:  6e-3,
					StrongLeftFrac:  0.4,
					StrongRightFrac: 0.4,
					RetentionMinMs:  100,
					RetentionMaxMs:  100,
				},
				Seed: seed * 977,
			})
			if err != nil {
				t.Fatalf("NewModule: %v", err)
			}
			host, err := memctl.NewHost(mod, 0)
			if err != nil {
				t.Fatalf("NewHost: %v", err)
			}
			// The module is noise-free, so the ranking threshold can
			// sit low: the property under test is recovery of an
			// arbitrary layout, not noise filtering (other tests
			// cover that).
			tester, err := New(host, Config{Seed: seed, RankThreshold: 0.04})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			res, err := tester.DetectNeighbors()
			if err != nil {
				t.Fatalf("DetectNeighbors (mapping distances %v): %v", mapping.Distances(), err)
			}
			if !reflect.DeepEqual(res.Distances, mapping.Distances()) {
				t.Errorf("seed %d: detected %v, mapping has %v", seed, res.Distances, mapping.Distances())
			}
		})
	}
}

// TestFullChipSoundOnRandomMapping: on a noise-free chip, every
// failure the neighbor-aware full-chip test reports must be a genuine
// coupling victim per ground truth (no false positives), for a random
// layout.
func TestFullChipSoundOnRandomMapping(t *testing.T) {
	mapping := randomLaneMapping(t, 11)
	mod, err := dram.NewModule(dram.ModuleConfig{
		Mapping:  mapping,
		Vendor:   scramble.VendorLinear,
		Chips:    1,
		Geometry: dram.Geometry{Banks: 1, Rows: 128, Cols: 8192},
		Coupling: coupling.Config{
			VulnerableRate:  2e-3,
			StrongLeftFrac:  0.4,
			StrongRightFrac: 0.4,
			RetentionMinMs:  100,
			RetentionMaxMs:  100,
		},
		Seed: 4242,
	})
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	host, err := memctl.NewHost(mod, 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	tester, err := New(host, Config{Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fails, _, err := tester.FullChipTest(mapping.Distances())
	if err != nil {
		t.Fatalf("FullChipTest: %v", err)
	}
	if len(fails) == 0 {
		t.Fatal("no failures found")
	}
	chip := mod.Chip(0)
	truth := make(map[memctl.BitAddr]struct{})
	for row := 0; row < 128; row++ {
		for _, v := range chip.TrueVictims(0, row) {
			truth[memctl.BitAddr{Row: int32(row), Col: v.Col}] = struct{}{}
		}
	}
	for a := range fails {
		if _, ok := truth[a]; !ok {
			t.Errorf("false positive at %+v", a)
		}
	}
}
