package core

import (
	"testing"

	"parbor/internal/coupling"
	"parbor/internal/dram"
	"parbor/internal/faults"
	"parbor/internal/memctl"
	"parbor/internal/scramble"
)

// tailModule builds a vendor-A chip where half the victims need a
// two-cell-per-side interference tail.
func tailModule(t *testing.T) (*dram.Module, *Tester) {
	t.Helper()
	mod, err := dram.NewModule(dram.ModuleConfig{
		Vendor:   scramble.VendorA,
		Chips:    1,
		Geometry: dram.Geometry{Banks: 1, Rows: 384, Cols: 8192},
		Coupling: coupling.Config{
			VulnerableRate:  2e-3,
			StrongLeftFrac:  0.3,
			StrongRightFrac: 0.3,
			RetentionMinMs:  100,
			RetentionMaxMs:  100,
			SurroundWeights: []float64{0.5, 0, 0.5}, // half level 0, half level 2
		},
		Faults: faults.Config{},
		Seed:   51,
	})
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	host, err := memctl.NewHost(mod, 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	tester, err := New(host, Config{Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return mod, tester
}

// tailOffsets returns every legal second-order offset of the mapping:
// the signed distances to cells 2..steps physical hops away.
func tailOffsets(m *scramble.Mapping, maxSteps int) map[int]bool {
	out := make(map[int]bool)
	for o := 0; o < m.ChunkBits(); o++ {
		for _, dir := range []bool{true, false} {
			cur := o
			for step := 1; step <= maxSteps; step++ {
				l, r, hasL, hasR := m.Neighbors(cur)
				if dir {
					if !hasL {
						break
					}
					cur = l
				} else {
					if !hasR {
						break
					}
					cur = r
				}
				if step >= 2 {
					out[cur-o] = true
				}
			}
		}
	}
	return out
}

func TestDetectExtendedNeighbors(t *testing.T) {
	mod, tester := tailModule(t)
	res, err := tester.DetectNeighbors()
	if err != nil {
		t.Fatalf("DetectNeighbors: %v", err)
	}
	victims, _, _ := tester.DiscoverVictims()
	classified, _, err := tester.ClassifyVictims(victims, res.Distances)
	if err != nil {
		t.Fatalf("ClassifyVictims: %v", err)
	}
	tail := TailGated(classified)
	if len(tail) < 20 {
		t.Fatalf("only %d tail-gated victims; module should have many", len(tail))
	}
	ext, err := tester.DetectExtendedNeighbors(tail, res.Distances)
	if err != nil {
		t.Fatalf("DetectExtendedNeighbors: %v", err)
	}
	if len(ext.Distances) == 0 {
		t.Fatal("no second-order distances found")
	}
	// Soundness: every found distance must be a genuine 2..3-hop
	// offset of the mapping.
	valid := tailOffsets(mod.Chip(0).Mapping(), 3)
	for _, d := range ext.Distances {
		if !valid[d] {
			t.Errorf("distance %+d is not a legal second-order offset", d)
		}
	}
	// The immediate distances must have been filtered out.
	for _, d := range ext.Distances {
		for _, imm := range res.Distances {
			if d == imm {
				t.Errorf("immediate distance %+d leaked into the tail set", d)
			}
		}
	}
	if ext.Tests == 0 || len(ext.Levels) == 0 {
		t.Error("no work recorded")
	}
	t.Logf("second-order distances: %v (%d tests, %d victims)", ext.Distances, ext.Tests, ext.Victims)
}

func TestDetectExtendedNeighborsValidation(t *testing.T) {
	_, tester := tailModule(t)
	if _, err := tester.DetectExtendedNeighbors(nil, []int{8}); err == nil {
		t.Error("empty victims accepted")
	}
	if _, err := tester.DetectExtendedNeighbors([]Victim{{}}, nil); err == nil {
		t.Error("empty distances accepted")
	}
}

func TestFillNeutralizedPattern(t *testing.T) {
	buf := make([]uint64, 4)
	// failData 1: background zeros (opposite), region [64,128) ones,
	// victim at 10 also one.
	fillNeutralizedPattern(buf, 1, 64, 64, 10)
	for i := 0; i < 256; i++ {
		want := uint64(0)
		if (i >= 64 && i < 128) || i == 10 {
			want = 1
		}
		if got := bitAt(buf, i); got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	// failData 0: background ones, region zeros.
	fillNeutralizedPattern(buf, 0, 0, 8, 100)
	for i := 0; i < 256; i++ {
		want := uint64(1)
		if i < 8 || i == 100 {
			want = 0
		}
		if got := bitAt(buf, i); got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}
