package core

import (
	"fmt"
	"sort"

	"parbor/internal/memctl"
)

// ExtendedResult is the outcome of second-order neighbor detection.
type ExtendedResult struct {
	// Distances is the ranked set of second-order distances: system
	// offsets, relative to a victim, of cells beyond the immediate
	// neighbors whose content the victim's failure also depends on.
	Distances []int
	// Levels reports each recursion level.
	Levels []LevelReport
	// Victims is the number of tail-gated victims used.
	Victims int
	// Tests is the number of passes performed.
	Tests int
}

// DetectExtendedNeighbors locates second-order dependencies: the
// paper projects that as cells shrink, "potentially more neighboring
// cells will affect each other" (Section 3), pushing the naive search
// to O(n^3) and beyond. PARBOR's recursion generalizes with one
// twist.
//
// The inputs are the detected immediate distances and a set of
// tail-gated victims — victims that failed during discovery but that
// no immediate-neighborhood probe could fire (classification kind
// KindUnknown): their failures require additional cells beyond the
// immediate neighbors to hold the opposite value.
//
// A tail victim fails only when EVERY cell it depends on is opposite
// — an AND over several cells — so the first-order scheme (stress one
// region at a time) never fires once the dependency set spans two
// regions. The extended recursion therefore inverts the probe: each
// pass writes the whole row OPPOSITE to the victim except the region
// under test, which is neutralized to the victim's own value. The
// victim then fails unless the region contains at least one required
// cell — i.e. the victim SURVIVING a pass marks the region as
// containing a dependency. Subdividing the surviving regions walks
// down to the exact dependency locations in O(n) passes, exactly like
// the first-order recursion. The immediate neighbors surface too (the
// victim depends on them as well) and are filtered from the result.
func (t *Tester) DetectExtendedNeighbors(victims []Victim, distances []int) (*ExtendedResult, error) {
	if len(victims) == 0 {
		return nil, fmt.Errorf("core: no tail-gated victims to test")
	}
	if len(distances) == 0 {
		return nil, fmt.Errorf("core: empty immediate distance set")
	}
	rowBits := t.host.Geometry().Cols
	words := t.host.Geometry().Words()
	sizes := levelSizes(rowBits, t.cfg.FirstSplit, t.cfg.Fanout)

	bufs := make([][]uint64, len(victims))
	for i := range bufs {
		bufs[i] = make([]uint64, words)
	}
	dead := make([]bool, len(victims))

	// A genuine tail victim depends on its immediate neighbors plus a
	// bounded tail, so it may legitimately survive in up to
	// |immediate| + tail regions per level; beyond that the victim is
	// reacting to something else (e.g. it never fails at all) and is
	// discarded.
	const maxTailCells = 16
	hitLimit := len(distances) + maxTailCells

	res := &ExtendedResult{Victims: len(victims)}
	parentSize := rowBits
	parentDists := []int{0}

	for _, size := range sizes {
		k := parentSize / size
		nParents := rowBits / parentSize
		passes := 0
		hits := make([][]int, len(victims))

		for _, dp := range parentDists {
			for j := 0; j < k; j++ {
				var (
					prows  []memctl.Row
					pdata  [][]uint64
					addrTo = make(map[memctl.BitAddr]int)
					region = make(map[int]int)
				)
				for vi, v := range victims {
					if dead[vi] {
						continue
					}
					parentIdx := int(v.Col)/parentSize + dp
					if parentIdx < 0 || parentIdx >= nParents {
						continue
					}
					rIdx := parentIdx*k + j
					fillNeutralizedPattern(bufs[vi], v.FailData, rIdx*size, size, int(v.Col))
					prows = append(prows, v.Row)
					pdata = append(pdata, bufs[vi])
					addrTo[memctl.BitAddr{
						Chip: int16(v.Row.Chip),
						Bank: int16(v.Row.Bank),
						Row:  int32(v.Row.Row),
						Col:  v.Col,
					}] = vi
					region[vi] = rIdx
				}
				passes++
				failSet := make(map[int]bool)
				fails, err := t.host.Pass(prows, pdata)
				if err != nil {
					return nil, fmt.Errorf("core: extended pass: %w", err)
				}
				for _, a := range fails {
					if vi, ok := addrTo[a]; ok {
						failSet[vi] = true
					}
				}
				// Survival, not failure, is the signal.
				for vi := range region {
					if !failSet[vi] {
						hits[vi] = append(hits[vi], region[vi]-int(victims[vi].Col)/size)
					}
				}
			}
		}
		res.Tests += passes

		freq := make(map[int]int)
		for vi := range victims {
			if dead[vi] {
				continue
			}
			if len(hits[vi]) > hitLimit {
				dead[vi] = true
				continue
			}
			for _, d := range hits[vi] {
				freq[d]++
			}
		}
		if len(freq) == 0 {
			return nil, fmt.Errorf("core: no tail-gated victim survived at region size %d", size)
		}
		report := LevelReport{
			RegionSize:  size,
			Tests:       passes,
			Frequencies: freq,
			Distances:   rankDistances(freq, t.cfg.RankThreshold),
		}
		res.Levels = append(res.Levels, report)
		parentSize = size
		parentDists = report.Distances
	}

	// Remove the immediate distances and the victim's own position:
	// what remains is the second-order tail.
	imm := make(map[int]bool, len(distances))
	for _, d := range distances {
		imm[d] = true
	}
	var out []int
	for _, d := range parentDists {
		if !imm[d] && d != 0 {
			out = append(out, d)
		}
	}
	sort.Ints(out)
	res.Distances = out
	return res, nil
}

// fillNeutralizedPattern writes the inverse probe: every bit opposite
// to the victim's fail value, except the region under test and the
// victim itself, which hold the fail value.
func fillNeutralizedPattern(buf []uint64, failData uint64, start, size, victimCol int) {
	fill := ^uint64(0)
	if failData != 0 {
		fill = 0
	}
	for i := range buf {
		buf[i] = fill
	}
	end := start + size
	firstWord := start >> 6
	lastWord := (end - 1) >> 6
	for w := firstWord; w <= lastWord; w++ {
		mask := ^uint64(0)
		if w == firstWord {
			mask &= ^uint64(0) << (uint(start) & 63)
		}
		if w == lastWord {
			shift := uint(end-1)&63 + 1
			if shift < 64 {
				mask &= (uint64(1) << shift) - 1
			}
		}
		buf[w] ^= mask // neutralize the region (victim's value)
	}
	setBitTo(buf, victimCol, failData)
}

// TailGated filters a classification down to the victims whose
// failures the immediate neighborhood could not reproduce — the
// candidates for second-order detection.
func TailGated(classified []ClassifiedVictim) []Victim {
	var out []Victim
	for _, c := range classified {
		if c.Kind == KindUnknown {
			out = append(out, c.Victim)
		}
	}
	return out
}
