package core

import (
	"context"
	"fmt"
	"sort"

	"parbor/internal/memctl"
	"parbor/internal/patterns"
)

// victimInfo is one cell of the initial victim sample.
type victimInfo struct {
	row memctl.Row
	col int32
	// failData is the data value (0 or 1) that was written to the
	// cell in the pass where it failed — i.e. the value that leaves
	// the cell charged. The recursive test writes this value to the
	// victim and its complement to the region under test.
	failData uint64
	// dead marks victims discarded as marginal during recursion.
	dead bool
}

// discoverVictims runs the simple discovery patterns (each with its
// inverse — the paper's 10 initial tests) and assembles the initial
// victim sample: cells that failed under at least one pattern but not
// under all of them. Cells failing everywhere are weak/stuck cells,
// not data-dependent, and are excluded (Section 5.2.1).
//
// One victim per row is kept, because the parallel recursive test
// dedicates each row's data pattern to a single victim.
func (t *Tester) discoverVictims(ctx context.Context) ([]victimInfo, int, FailureSet, error) {
	base := patterns.DiscoveryPatterns()
	all := make([]patterns.Pattern, 0, 2*len(base))
	for _, p := range base {
		all = append(all, p, p.Inverse())
	}

	type obs struct {
		failMask  uint32 // bit i set: failed in pass i
		firstPass int8
	}
	seen := make(map[memctl.BitAddr]*obs)
	discovered := make(FailureSet)

	for i, p := range all {
		fails, err := t.fullPassPattern(ctx, t.arena, p)
		if err != nil {
			return nil, 0, nil, fmt.Errorf("core: discovery pass %d: %w", i, err)
		}
		discovered.Add(fails)
		for _, a := range fails {
			o := seen[a]
			if o == nil {
				o = &obs{firstPass: int8(i)}
				seen[a] = o
			}
			o.failMask |= 1 << uint(i)
		}
	}

	// Keep data-dependent candidates: failed somewhere, passed
	// somewhere.
	allMask := uint32(1)<<uint(len(all)) - 1
	perRow := make(map[memctl.Row]victimInfo)
	for a, o := range seen {
		if o.failMask == allMask {
			continue // stuck or weak cell: fails regardless of content
		}
		r := memctl.Row{Chip: int(a.Chip), Bank: int(a.Bank), Row: int(a.Row)}
		if prev, ok := perRow[r]; ok && prev.col <= a.Col {
			continue // keep the lowest-column victim per row (deterministic)
		}
		// Discovery patterns are uniform, so the failing pass's data
		// for this row is just its memoized arena row.
		perRow[r] = victimInfo{
			row:      r,
			col:      a.Col,
			failData: bitAt(t.arena.Materialize(all[o.firstPass]), int(a.Col)),
		}
	}

	victims := make([]victimInfo, 0, len(perRow))
	for _, v := range perRow {
		victims = append(victims, v)
	}
	sort.Slice(victims, func(i, j int) bool {
		a, b := victims[i], victims[j]
		if a.row.Chip != b.row.Chip {
			return a.row.Chip < b.row.Chip
		}
		if a.row.Bank != b.row.Bank {
			return a.row.Bank < b.row.Bank
		}
		if a.row.Row != b.row.Row {
			return a.row.Row < b.row.Row
		}
		return a.col < b.col
	})
	if len(victims) > t.cfg.SampleSize {
		victims = victims[:t.cfg.SampleSize]
	}
	return victims, len(all), discovered, nil
}

// bitAt returns bit i of a row bitmap.
func bitAt(words []uint64, i int) uint64 {
	return (words[i>>6] >> (uint(i) & 63)) & 1
}

// setBitTo sets bit i of a row bitmap to v.
func setBitTo(words []uint64, i int, v uint64) {
	mask := uint64(1) << (uint(i) & 63)
	if v != 0 {
		words[i>>6] |= mask
	} else {
		words[i>>6] &^= mask
	}
}
