package core

import (
	"fmt"
	"sort"

	"parbor/internal/memctl"
)

// CouplingKind is the system-observable coupling class of a victim:
// unlike the device model's left/right taxonomy, the system can only
// name neighbor locations by their address distances.
type CouplingKind int

// Observable victim classes.
const (
	// KindUnknown: the victim failed during discovery but no probe at
	// the detected distances reproduced the failure (its coupling
	// involves cells beyond the immediate neighbors, or the original
	// failure was not data-dependent at all).
	KindUnknown CouplingKind = iota
	// KindContentIndependent: the victim fails even under a quiet
	// pattern with no opposite-value cells anywhere — a marginal,
	// VRT, weak or remapped cell rather than a coupling victim.
	KindContentIndependent
	// KindSingle: a strongly coupled cell — one neighbor distance
	// alone reproduces the failure.
	KindSingle
	// KindPair: a weakly coupled cell — only a pair of distances
	// (both neighbors) reproduces the failure.
	KindPair
)

// String names the class.
func (k CouplingKind) String() string {
	switch k {
	case KindUnknown:
		return "unknown"
	case KindContentIndependent:
		return "content-independent"
	case KindSingle:
		return "strongly-coupled"
	case KindPair:
		return "weakly-coupled"
	default:
		return fmt.Sprintf("CouplingKind(%d)", int(k))
	}
}

// ClassifiedVictim is one victim with its probe-derived class.
type ClassifiedVictim struct {
	Victim Victim
	Kind   CouplingKind
	// Distances names the distance (KindSingle) or distance pair
	// (KindPair) that reproduced the failure.
	Distances []int
}

// ClassifyVictims determines each victim's coupling class by directed
// probing, given the neighbor distances a prior DetectNeighbors run
// produced. It is the bridge from detection to mitigation: DC-REF
// needs to know, per vulnerable cell, which data arrangement is
// dangerous (Section 8), and repair/ECC policies treat
// content-independent failures differently from coupling failures.
//
// The probe sequence, each step one parallel pass over all victim
// rows (like the recursion, Section 4.2):
//
//  1. a quiet pass — every bit holds the victim's fail value, so no
//     cell anywhere is opposite: only content-independent victims
//     can fail;
//  2. one pass per detected distance d — only the cell at victim+d
//     is opposite: strongly coupled victims fail at their neighbor;
//  3. one pass per distance pair {d1, d2} — weakly coupled victims
//     fail when both neighbors are opposite.
//
// The returned test count is 1 + |D| + C(|D|, 2) regardless of the
// victim count.
func (t *Tester) ClassifyVictims(victims []Victim, distances []int) ([]ClassifiedVictim, int, error) {
	if len(victims) == 0 {
		return nil, 0, fmt.Errorf("core: no victims to classify")
	}
	if len(distances) == 0 {
		return nil, 0, fmt.Errorf("core: empty distance set")
	}
	rowBits := t.host.Geometry().Cols
	words := t.host.Geometry().Words()

	out := make([]ClassifiedVictim, len(victims))
	for i, v := range victims {
		out[i] = ClassifiedVictim{Victim: v, Kind: KindUnknown}
	}

	bufs := make([][]uint64, len(victims))
	for i := range bufs {
		bufs[i] = make([]uint64, words)
	}

	tests := 0
	// probe runs one parallel pass; offsets lists the bit distances
	// set opposite relative to each victim. It returns the victim
	// indices that failed.
	probe := func(offsets []int) ([]int, error) {
		prows := make([]memctl.Row, 0, len(victims))
		pdata := make([][]uint64, 0, len(victims))
		addrTo := make(map[memctl.BitAddr]int, len(victims))
		for i, v := range victims {
			ok := true
			for _, d := range offsets {
				if p := int(v.Col) + d; p < 0 || p >= rowBits {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Fill the row with the victim's fail value (the victim
			// charged, nothing opposite), then flip only the probe
			// offsets.
			fill := uint64(0)
			if v.FailData != 0 {
				fill = ^uint64(0)
			}
			for w := range bufs[i] {
				bufs[i][w] = fill
			}
			for _, d := range offsets {
				setBitTo(bufs[i], int(v.Col)+d, 1-v.FailData)
			}
			prows = append(prows, v.Row)
			pdata = append(pdata, bufs[i])
			addrTo[memctl.BitAddr{
				Chip: int16(v.Row.Chip),
				Bank: int16(v.Row.Bank),
				Row:  int32(v.Row.Row),
				Col:  v.Col,
			}] = i
		}
		fails, err := t.host.Pass(prows, pdata)
		tests++
		if err != nil {
			return nil, err
		}
		var hit []int
		for _, a := range fails {
			if i, ok := addrTo[a]; ok {
				hit = append(hit, i)
			}
		}
		return hit, nil
	}

	// Step 1: quiet pass.
	quietHits, err := probe(nil)
	if err != nil {
		return nil, tests, err
	}
	for _, i := range quietHits {
		out[i].Kind = KindContentIndependent
	}

	// Step 2: single distances.
	for _, d := range distances {
		hits, err := probe([]int{d})
		if err != nil {
			return nil, tests, err
		}
		for _, i := range hits {
			if out[i].Kind == KindContentIndependent {
				continue
			}
			if out[i].Kind == KindUnknown {
				out[i].Kind = KindSingle
			}
			out[i].Distances = appendUnique(out[i].Distances, d)
		}
	}

	// Step 3: distance pairs, for victims still unclassified.
	for a := 0; a < len(distances); a++ {
		for b := a + 1; b < len(distances); b++ {
			hits, err := probe([]int{distances[a], distances[b]})
			if err != nil {
				return nil, tests, err
			}
			for _, i := range hits {
				if out[i].Kind != KindUnknown {
					continue
				}
				out[i].Kind = KindPair
				out[i].Distances = []int{distances[a], distances[b]}
				sort.Ints(out[i].Distances)
			}
		}
	}
	return out, tests, nil
}

func appendUnique(xs []int, x int) []int {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}

// ClassCounts tallies a classification result.
func ClassCounts(cs []ClassifiedVictim) map[CouplingKind]int {
	counts := make(map[CouplingKind]int)
	for _, c := range cs {
		counts[c.Kind]++
	}
	return counts
}
