package core

import (
	"context"
	"fmt"
	"sort"

	"parbor/internal/memctl"
)

// DetectNeighbors runs discovery plus the parallel recursive test and
// returns the neighbor-location result (steps 1-4 of Section 5.1).
func (t *Tester) DetectNeighbors() (*NeighborResult, error) {
	return t.DetectNeighborsCtx(context.Background())
}

// DetectNeighborsCtx is DetectNeighbors with cooperative cancellation
// (see RunCtx).
func (t *Tester) DetectNeighborsCtx(ctx context.Context) (*NeighborResult, error) {
	victims, discTests, discovered, err := t.discoverVictims(ctx)
	if err != nil {
		return nil, err
	}
	if len(victims) == 0 {
		return nil, fmt.Errorf("core: no data-dependent victim candidates found during discovery")
	}
	res := &NeighborResult{
		SampleSize:        len(victims),
		DiscoveryTests:    discTests,
		DiscoveryFailures: discovered,
	}

	rowBits := t.host.Geometry().Cols
	sizes := levelSizes(rowBits, t.cfg.FirstSplit, t.cfg.Fanout)

	// Shared region-pattern buffers: victims probing the same region
	// with the same fail polarity alias one buffer (the host never
	// mutates pass data), so a pass fills O(distinct regions) rows,
	// not O(victims).
	arena := newRegionArena(t.host.Geometry().Words())

	parentSize := rowBits
	parentDists := []int{0}
	for _, size := range sizes {
		report, err := t.runLevel(ctx, victims, arena, rowBits, parentSize, size, parentDists)
		if err != nil {
			return nil, err
		}
		res.Levels = append(res.Levels, *report)
		res.RecursionTests += report.Tests
		parentSize = size
		parentDists = report.Distances
	}
	res.Distances = parentDists
	return res, nil
}

// levelSizes returns the region sizes of each recursion level: the
// row is split into firstSplit regions at level 1 and each found
// region is subdivided by fanout at deeper levels, down to single
// bits. For the paper's 8K rows with firstSplit=2, fanout=8 this is
// [4096, 512, 64, 8, 1].
func levelSizes(rowBits, firstSplit, fanout int) []int {
	var sizes []int
	s := rowBits / firstSplit
	if s < 1 {
		s = 1
	}
	for {
		for s > 1 && rowBits%s != 0 {
			s--
		}
		sizes = append(sizes, s)
		if s == 1 {
			return sizes
		}
		s /= fanout
		if s < 1 {
			s = 1
		}
	}
}

// regionKey identifies one shareable region-pattern row within a
// pass: all victims with the same fail polarity probing the same
// region write identical data (the victim-bit fix-up below is only
// needed when the victim lies inside the region).
type regionKey struct {
	failData uint64
	start    int
}

// regionArena hands out the shared base region-pattern buffers of one
// recursion pass. Buffers are pooled across passes and levels — reset
// clears the sharing map but keeps the pool, so the steady state
// allocates nothing.
type regionArena struct {
	words int
	pool  [][]uint64
	used  int
	base  map[regionKey][]uint64
}

func newRegionArena(words int) *regionArena {
	return &regionArena{words: words, base: make(map[regionKey][]uint64)}
}

// reset starts a new pass: all pooled buffers become reusable and no
// region is materialized.
//
//parbor:hotpath
func (a *regionArena) reset() {
	a.used = 0
	clear(a.base)
}

// alloc returns a pooled buffer of undefined content.
//
//parbor:hotpath
func (a *regionArena) alloc() []uint64 {
	if a.used < len(a.pool) {
		b := a.pool[a.used]
		a.used++
		return b
	}
	b := make([]uint64, a.words)
	a.pool = append(a.pool, b)
	a.used++
	return b
}

// region returns this pass's shared base buffer for (failData,
// start), filling it on first use.
//
//parbor:hotpath
func (a *regionArena) region(failData uint64, start, size int) []uint64 {
	k := regionKey{failData: failData, start: start}
	if b, ok := a.base[k]; ok {
		return b
	}
	b := a.alloc()
	fillRegionBase(b, failData, start, size)
	a.base[k] = b
	return b
}

// runLevel performs every region test of one recursion level over all
// live victims simultaneously, applies marginal-victim filtering, and
// ranks the observed distances.
func (t *Tester) runLevel(ctx context.Context, victims []victimInfo, arena *regionArena, rowBits, parentSize, size int, parentDists []int) (*LevelReport, error) {
	k := parentSize / size
	nParents := rowBits / parentSize

	passes := 0
	hits := make([][]int, len(victims)) // region distances at which each victim failed

	// Reused per-pass slices.
	prows := make([]memctl.Row, 0, len(victims))
	pdata := make([][]uint64, 0, len(victims))
	addrToVictim := make(map[memctl.BitAddr]int, len(victims))

	for _, dp := range parentDists {
		for j := 0; j < k; j++ {
			prows = prows[:0]
			pdata = pdata[:0]
			for key := range addrToVictim {
				delete(addrToVictim, key)
			}
			arena.reset()
			regionOf := make(map[int]int, 8) // victim index -> absolute region index

			for vi := range victims {
				v := &victims[vi]
				if v.dead {
					continue
				}
				parentIdx := int(v.col)/parentSize + dp
				if parentIdx < 0 || parentIdx >= nParents {
					continue
				}
				rIdx := parentIdx*k + j
				start := rIdx * size
				row := arena.region(v.failData, start, size)
				if c := int(v.col); c >= start && c < start+size {
					// The victim bit lies inside the complemented
					// region and must keep its fail value (Section
					// 5.2.3): this victim needs a dedicated copy.
					// Outside the region the base row already holds
					// failData at the victim bit, so sharing is exact.
					fixed := arena.alloc()
					copy(fixed, row)
					setBitTo(fixed, c, v.failData)
					row = fixed
				}
				prows = append(prows, v.row)
				pdata = append(pdata, row)
				addrToVictim[memctl.BitAddr{
					Chip: int16(v.row.Chip),
					Bank: int16(v.row.Bank),
					Row:  int32(v.row.Row),
					Col:  v.col,
				}] = vi
				regionOf[vi] = rIdx
			}
			passes++
			fails, err := t.host.PassCtx(ctx, prows, pdata)
			if err != nil {
				return nil, fmt.Errorf("core: level pass (size %d, parent %+d, sub %d): %w", size, dp, j, err)
			}
			for _, a := range fails {
				vi, ok := addrToVictim[a]
				if !ok {
					continue // a flip somewhere other than a sampled victim
				}
				d := regionOf[vi] - int(victims[vi].col)/size
				hits[vi] = append(hits[vi], d)
			}
		}
	}

	// Marginal-victim filtering: a genuine victim fails in at most one
	// region per level, so a victim exceeding the hit limit is failing
	// for non-data-dependent reasons; drop it and its findings
	// (Section 5.2.4, first step).
	limit := t.cfg.MarginalHitLimit
	freq := make(map[int]int)
	for vi := range victims {
		if victims[vi].dead {
			continue
		}
		if len(hits[vi]) > limit {
			victims[vi].dead = true
			continue
		}
		for _, d := range hits[vi] {
			freq[d]++
		}
	}
	if len(freq) == 0 {
		return nil, fmt.Errorf("core: no victim failed at region size %d; cannot locate neighbors", size)
	}

	return &LevelReport{
		RegionSize:  size,
		Tests:       passes,
		Frequencies: freq,
		Distances:   rankDistances(freq, t.cfg.RankThreshold),
	}, nil
}

// rankDistances keeps the distances whose frequency is at least
// threshold times the maximum frequency (Section 5.2.4, second step).
func rankDistances(freq map[int]int, threshold float64) []int {
	max := 0
	for _, c := range freq {
		if c > max {
			max = c
		}
	}
	out := make([]int, 0, len(freq))
	for d, c := range freq {
		if float64(c) >= threshold*float64(max) {
			out = append(out, d)
		}
	}
	sort.Ints(out)
	return out
}

// fillRegionBase builds the victim-agnostic half of a region test
// pattern: every bit holds the fail value except the region under
// test, which holds the complement.
//
//parbor:hotpath
func fillRegionBase(buf []uint64, failData uint64, start, size int) {
	fill := uint64(0)
	if failData != 0 {
		fill = ^uint64(0)
	}
	for i := range buf {
		buf[i] = fill
	}
	end := start + size // exclusive
	firstWord := start >> 6
	lastWord := (end - 1) >> 6
	for w := firstWord; w <= lastWord; w++ {
		mask := ^uint64(0)
		if w == firstWord {
			mask &= ^uint64(0) << (uint(start) & 63)
		}
		if w == lastWord {
			shift := uint(end-1)&63 + 1
			if shift < 64 {
				mask &= (uint64(1) << shift) - 1
			}
		}
		buf[w] ^= mask // complement the region bits
	}
}

// fillRegionPattern builds one victim row's test pattern: every bit
// holds the victim's fail value except the region under test, which
// holds the complement; the victim bit itself keeps its fail value
// even when it lies inside the region (Section 5.2.3).
//
//parbor:hotpath
func fillRegionPattern(buf []uint64, failData uint64, start, size, victimCol int) {
	fillRegionBase(buf, failData, start, size)
	setBitTo(buf, victimCol, failData)
}
