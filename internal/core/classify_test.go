package core

import (
	"testing"

	"parbor/internal/coupling"
	"parbor/internal/dram"
	"parbor/internal/faults"
	"parbor/internal/memctl"
	"parbor/internal/scramble"
)

// classifyModule builds a quiet vendor-A chip (no random faults, no
// surround tails) so classes are deterministic.
func classifyModule(t *testing.T, fc faults.Config) (*dram.Module, *Tester) {
	t.Helper()
	mod, err := dram.NewModule(dram.ModuleConfig{
		Vendor:   scramble.VendorA,
		Chips:    1,
		Geometry: dram.Geometry{Banks: 1, Rows: 256, Cols: 8192},
		Coupling: coupling.Config{
			VulnerableRate:  2e-3,
			StrongLeftFrac:  0.3,
			StrongRightFrac: 0.3,
			RetentionMinMs:  100,
			RetentionMaxMs:  100,
		},
		Faults: fc,
		Seed:   33,
	})
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	host, err := memctl.NewHost(mod, 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	tester, err := New(host, Config{Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return mod, tester
}

func TestClassifyVictimsAgainstGroundTruth(t *testing.T) {
	mod, tester := classifyModule(t, faults.Config{})
	res, err := tester.DetectNeighbors()
	if err != nil {
		t.Fatalf("DetectNeighbors: %v", err)
	}
	victims, _, _ := tester.DiscoverVictims()
	classified, tests, err := tester.ClassifyVictims(victims, res.Distances)
	if err != nil {
		t.Fatalf("ClassifyVictims: %v", err)
	}
	// 1 quiet + 6 singles + 15 pairs.
	if tests != 22 {
		t.Errorf("tests = %d, want 22", tests)
	}

	// Build ground truth per (row, col).
	chip := mod.Chip(0)
	truth := make(map[memctl.BitAddr]coupling.Victim)
	for row := 0; row < 256; row++ {
		for _, v := range chip.TrueVictims(0, row) {
			truth[memctl.BitAddr{Row: int32(row), Col: v.Col}] = v
		}
	}

	checked := 0
	for _, c := range classified {
		gt, ok := truth[memctl.BitAddr{Row: int32(c.Victim.Row.Row), Col: c.Victim.Col}]
		if !ok {
			continue // a noise cell sampled as victim; nothing to check
		}
		left, right, hasL, hasR := chip.Mapping().Neighbors(int(c.Victim.Col))
		switch gt.Class {
		case coupling.StrongLeft, coupling.StrongRight:
			wantNeighbor := left
			if gt.Class == coupling.StrongRight {
				wantNeighbor = right
			}
			if (gt.Class == coupling.StrongLeft && !hasL) || (gt.Class == coupling.StrongRight && !hasR) {
				continue // coupled side missing: cannot fail, stays unknown
			}
			if gt.Surround != 0 {
				continue // tail-gated: single probes cannot fire it
			}
			if c.Kind != KindSingle {
				t.Errorf("victim %+v: classified %v, ground truth strong", c.Victim, c.Kind)
				continue
			}
			wantDist := wantNeighbor - int(c.Victim.Col)
			if len(c.Distances) != 1 || c.Distances[0] != wantDist {
				t.Errorf("victim %+v: distances %v, want [%d]", c.Victim, c.Distances, wantDist)
			}
			checked++
		case coupling.Weak:
			if !hasL || !hasR || gt.Surround != 0 {
				continue
			}
			if c.Kind != KindPair {
				t.Errorf("victim %+v: classified %v, ground truth weak", c.Victim, c.Kind)
				continue
			}
			wantA, wantB := left-int(c.Victim.Col), right-int(c.Victim.Col)
			if wantA > wantB {
				wantA, wantB = wantB, wantA
			}
			if len(c.Distances) != 2 || c.Distances[0] != wantA || c.Distances[1] != wantB {
				t.Errorf("victim %+v: distances %v, want [%d %d]", c.Victim, c.Distances, wantA, wantB)
			}
			checked++
		}
	}
	if checked < 20 {
		t.Errorf("only %d victims checked against ground truth; sample too small", checked)
	}
}

func TestClassifyFlagsContentIndependentCells(t *testing.T) {
	// Weak-kind fault cells fail deterministically at long waits
	// regardless of content: the quiet pass must catch every sampled
	// one.
	_, tester := classifyModule(t, faults.Config{WeakCellRate: 2e-4})
	res, err := tester.DetectNeighbors()
	if err != nil {
		t.Fatalf("DetectNeighbors: %v", err)
	}
	victims, _, _ := tester.DiscoverVictims()
	classified, _, err := tester.ClassifyVictims(victims, res.Distances)
	if err != nil {
		t.Fatalf("ClassifyVictims: %v", err)
	}
	counts := ClassCounts(classified)
	if counts[KindContentIndependent] == 0 {
		t.Error("no content-independent victims flagged despite weak cells in the module")
	}
	if counts[KindSingle] == 0 {
		t.Error("no strongly coupled victims classified")
	}
}

func TestClassifyVictimsValidation(t *testing.T) {
	_, tester := classifyModule(t, faults.Config{})
	if _, _, err := tester.ClassifyVictims(nil, []int{1}); err == nil {
		t.Error("empty victims accepted")
	}
	if _, _, err := tester.ClassifyVictims([]Victim{{}}, nil); err == nil {
		t.Error("empty distances accepted")
	}
}

func TestCouplingKindString(t *testing.T) {
	for _, tc := range []struct {
		kind CouplingKind
		want string
	}{
		{KindUnknown, "unknown"},
		{KindContentIndependent, "content-independent"},
		{KindSingle, "strongly-coupled"},
		{KindPair, "weakly-coupled"},
		{CouplingKind(9), "CouplingKind(9)"},
	} {
		if got := tc.kind.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.kind, got, tc.want)
		}
	}
}
