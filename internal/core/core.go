// Package core implements PARBOR — PArallel Recursive neighBOR
// testing (Khan, Lee, Mutlu; DSN 2016): an efficient system-level
// technique that determines where a DRAM cell's physically
// neighboring cells live in the system address space, despite
// vendor-internal address scrambling, and uses that knowledge to
// uncover data-dependent failures in the whole chip with a small
// number of tests.
//
// The pipeline has the paper's five steps (Section 5.1):
//
//  1. Discover an initial victim sample with simple data patterns and
//     their inverses (Section 5.2.1).
//  2. Recursively test all victim rows in parallel, dividing rows
//     into ever-smaller regions (Section 5.2.3).
//  3. Aggregate the neighbor distances found across victims at each
//     level (Section 5.2.2).
//  4. Filter noise from random failures by discarding marginal
//     victims and ranking distances by frequency (Section 5.2.4).
//  5. Test the entire module with neighbor-aware patterns built from
//     the final distance set (Section 5.2.5).
//
// The algorithm runs exclusively against the memctl.Host write-wait-
// read interface: it never inspects the simulated chip internals.
package core

import (
	"context"
	"fmt"

	"parbor/internal/memctl"
	"parbor/internal/patterns"
)

// Config tunes the PARBOR tester.
type Config struct {
	// SampleSize caps the number of victim cells (one per row) used
	// by the recursive test. Larger samples make distance ranking
	// more robust to random failures (Figure 15). Default 10000.
	SampleSize int

	// RankThreshold is the minimum frequency of a distance, as a
	// fraction of the most frequent distance at the same level, for
	// it to be considered real (Section 5.2.4). Default 0.10: real
	// distances cluster well above it (Figure 14), random-failure
	// noise stays far below it for reasonable sample sizes.
	RankThreshold float64

	// MarginalHitLimit is the maximum number of regions a victim may
	// fail in at one recursion level before it is discarded as
	// marginal (Section 5.2.4). A genuine data-dependent victim fails
	// in at most one region per level (the one holding its coupled
	// neighbor), so the default of 2 tolerates a single coincident
	// soft error while reliably ejecting marginal and VRT cells,
	// which fail in many regions.
	MarginalHitLimit int

	// FirstSplit is the number of regions the row is divided into at
	// the first recursion level (the paper uses 2), and Fanout the
	// subdivision factor at deeper levels (the paper uses 8).
	FirstSplit int
	Fanout     int

	// Seed drives the random-pattern baseline and any tie-breaking.
	Seed uint64
}

// withDefaults fills in unset fields.
func (c Config) withDefaults() Config {
	if c.SampleSize == 0 {
		c.SampleSize = 10000
	}
	if c.RankThreshold == 0 {
		c.RankThreshold = 0.10
	}
	if c.MarginalHitLimit == 0 {
		c.MarginalHitLimit = 2
	}
	if c.FirstSplit == 0 {
		c.FirstSplit = 2
	}
	if c.Fanout == 0 {
		c.Fanout = 8
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.SampleSize < 0 {
		return fmt.Errorf("core: negative SampleSize %d", c.SampleSize)
	}
	if c.RankThreshold < 0 || c.RankThreshold > 1 {
		return fmt.Errorf("core: RankThreshold %v out of [0,1]", c.RankThreshold)
	}
	if c.MarginalHitLimit < 0 {
		return fmt.Errorf("core: negative MarginalHitLimit %d", c.MarginalHitLimit)
	}
	if c.FirstSplit < 0 || c.FirstSplit == 1 || c.Fanout < 0 || c.Fanout == 1 {
		return fmt.Errorf("core: split factors (%d, %d) must be 0 (default) or >= 2", c.FirstSplit, c.Fanout)
	}
	return nil
}

// Tester runs PARBOR against one module through its test host.
type Tester struct {
	host *memctl.Host
	cfg  Config
	// arena memoizes the uniform fixed-name patterns (discovery
	// stripes, solid, and their inverses) so repeated full-module
	// passes alias one immutable row instead of refilling every row.
	// Neighbor-aware pattern sets get a fresh arena per generation:
	// their names repeat across distance sets (see patterns.Arena).
	arena *patterns.Arena
}

// New builds a Tester. The zero Config selects the paper's defaults.
func New(host *memctl.Host, cfg Config) (*Tester, error) {
	if host == nil {
		return nil, fmt.Errorf("core: nil host")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tester{
		host:  host,
		cfg:   cfg.withDefaults(),
		arena: patterns.NewArena(host.Geometry().Words()),
	}, nil
}

// fullPassPattern runs one full-module pass with pattern p. Uniform
// patterns alias an arena-memoized row through the host's RowSource
// path, skipping per-row pattern generation entirely; row-dependent
// patterns fall back to per-row fills.
func (t *Tester) fullPassPattern(ctx context.Context, a *patterns.Arena, p patterns.Pattern) ([]memctl.BitAddr, error) {
	if p.Uniform {
		row := a.Materialize(p)
		return t.host.FullPassRowsCtx(ctx, func(memctl.Row) []uint64 { return row })
	}
	fill := p.Fill
	return t.host.FullPassCtx(ctx, func(r memctl.Row, buf []uint64) {
		fill(r.Chip, r.Bank, r.Row, buf)
	})
}

// FailureSet is a set of failing cell addresses.
type FailureSet map[memctl.BitAddr]struct{}

// Add inserts every address in addrs.
func (s FailureSet) Add(addrs []memctl.BitAddr) {
	for _, a := range addrs {
		s[a] = struct{}{}
	}
}

// Union merges other into s.
func (s FailureSet) Union(other FailureSet) {
	for a := range other {
		s[a] = struct{}{}
	}
}

// Intersect returns the number of addresses present in both sets.
func (s FailureSet) Intersect(other FailureSet) int {
	small, big := s, other
	if len(big) < len(small) {
		small, big = big, small
	}
	n := 0
	for a := range small {
		if _, ok := big[a]; ok {
			n++
		}
	}
	return n
}

// LevelReport describes one level of the recursive test.
type LevelReport struct {
	// RegionSize is the region granularity at this level, in bits.
	RegionSize int
	// Tests is the number of write-wait-read passes performed.
	Tests int
	// Frequencies maps each observed region distance to the number
	// of victims that failed at it (after marginal-victim filtering).
	Frequencies map[int]int
	// Distances is the ranked (noise-filtered) distance set.
	Distances []int
}

// NeighborResult is the outcome of neighbor-location detection.
type NeighborResult struct {
	// Levels reports each recursion level, coarse to fine.
	Levels []LevelReport
	// Distances is the final set of signed bit distances at which any
	// cell's physical neighbors can be found (Figure 8).
	Distances []int
	// SampleSize is the number of victim cells actually used.
	SampleSize int
	// DiscoveryTests, RecursionTests are the pass counts of the two
	// phases.
	DiscoveryTests int
	RecursionTests int
	// DiscoveryFailures is every failing address observed while
	// locating the initial victim sample.
	DiscoveryFailures FailureSet
}

// TotalTests returns the pass count across both phases.
func (r *NeighborResult) TotalTests() int { return r.DiscoveryTests + r.RecursionTests }

// Report is the outcome of the full PARBOR pipeline.
type Report struct {
	Neighbor NeighborResult
	// FullChipTests is the number of neighbor-aware pattern passes.
	FullChipTests int
	// FullChipFailures is the set of failures uncovered by the
	// neighbor-aware patterns.
	FullChipFailures FailureSet
	// AllFailures is the union of every failure observed in any
	// PARBOR phase.
	AllFailures FailureSet
}

// TotalTests returns the total test budget consumed by the pipeline
// (discovery + recursion + full-chip passes), the quantity the paper
// equalizes when comparing against random-pattern testing.
func (r *Report) TotalTests() int {
	return r.Neighbor.TotalTests() + r.FullChipTests
}

// Run executes the complete PARBOR pipeline: victim discovery,
// recursive neighbor detection, and the full-chip neighbor-aware
// test.
func (t *Tester) Run() (*Report, error) {
	return t.RunCtx(context.Background())
}

// RunCtx is Run with cooperative cancellation: once ctx is done the
// pipeline stops between (and, via the host, inside) passes and
// returns ctx's error. A cancelled run returns no partial report —
// resumable long sweeps are the checkpoint layer's job.
func (t *Tester) RunCtx(ctx context.Context) (*Report, error) {
	nr, err := t.DetectNeighborsCtx(ctx)
	if err != nil {
		return nil, err
	}
	fails, tests, err := t.FullChipTestCtx(ctx, nr.Distances)
	if err != nil {
		return nil, err
	}
	all := make(FailureSet, len(fails)+len(nr.DiscoveryFailures))
	all.Union(nr.DiscoveryFailures)
	all.Union(fails)
	return &Report{
		Neighbor:         *nr,
		FullChipTests:    tests,
		FullChipFailures: fails,
		AllFailures:      all,
	}, nil
}
