package core

import (
	"context"
	"fmt"

	"parbor/internal/patterns"
)

// FullChipTest tests every cell of the module for data-dependent
// failures using neighbor-aware patterns built from the detected
// distance set (step 5 of Section 5.1). Each pattern is also tested
// inverted to cover both cell polarities, so the number of tests is
// twice the pattern-round count. It returns the uncovered failures
// and the number of passes performed.
func (t *Tester) FullChipTest(distances []int) (FailureSet, int, error) {
	return t.FullChipTestCtx(context.Background(), distances)
}

// FullChipTestCtx is FullChipTest with cooperative cancellation (see
// RunCtx).
func (t *Tester) FullChipTestCtx(ctx context.Context, distances []int) (FailureSet, int, error) {
	if len(distances) == 0 {
		return nil, 0, fmt.Errorf("core: empty distance set")
	}
	chunk := chunkForDistances(distances)
	pats, err := patterns.NeighborAware(distances, chunk)
	if err != nil {
		return nil, 0, fmt.Errorf("core: generating neighbor-aware patterns: %w", err)
	}
	// Fresh arena per generated pattern set: NeighborAware reuses
	// names across distance sets, so the tester-wide arena would serve
	// stale rows here.
	arena := patterns.NewArena(t.host.Geometry().Words())
	fails := make(FailureSet)
	tests := 0
	for _, p := range pats {
		for _, pp := range []patterns.Pattern{p, p.Inverse()} {
			got, err := t.fullPassPattern(ctx, arena, pp)
			if err != nil {
				return nil, 0, fmt.Errorf("core: full-chip pass %d: %w", tests, err)
			}
			fails.Add(got)
			tests++
		}
	}
	return fails, tests, nil
}

// chunkForDistances infers the interference-free chunk size from the
// detected distances: the smallest power-of-two window at least twice
// the maximum distance (Section 5.2.5: neighbors within ±64 imply
// 128-bit chunks), with a floor of 16 bits.
func chunkForDistances(distances []int) int {
	maxD := 0
	for _, d := range distances {
		if d < 0 {
			d = -d
		}
		if d > maxD {
			maxD = d
		}
	}
	chunk := 16
	for chunk < 2*maxD {
		chunk *= 2
	}
	return chunk
}
