package core

import (
	"reflect"
	"testing"

	"parbor/internal/coupling"
	"parbor/internal/dram"
	"parbor/internal/faults"
	"parbor/internal/memctl"
	"parbor/internal/scramble"
)

// testHost builds a single-chip module with full-width rows (needed
// for the paper's level structure) and a victim population dense
// enough for robust ranking at small row counts.
func testHost(t *testing.T, vendor scramble.Vendor, rows int, seed uint64) *memctl.Host {
	t.Helper()
	cc := coupling.DefaultConfig()
	cc.VulnerableRate = 2e-3
	mod, err := dram.NewModule(dram.ModuleConfig{
		Name:     "test-" + vendor.String(),
		Vendor:   vendor,
		Chips:    1,
		Geometry: dram.Geometry{Banks: 1, Rows: rows, Cols: 8192},
		Coupling: cc,
		Faults:   faults.DefaultConfig(),
		Seed:     seed,
	})
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	host, err := memctl.NewHost(mod, 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	return host
}

func newTester(t *testing.T, host *memctl.Host) *Tester {
	t.Helper()
	tester, err := New(host, Config{Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tester
}

// TestDetectNeighborsMatchesPaper is the end-to-end reproduction of
// Table 1 and Figure 11: for each vendor profile, the recursive test
// must find exactly the published distance sets with exactly the
// published per-level test counts.
func TestDetectNeighborsMatchesPaper(t *testing.T) {
	tests := []struct {
		vendor     scramble.Vendor
		wantDists  []int
		wantTests  []int
		wantTotal  int
		wantLevels [][]int
	}{
		{
			vendor:    scramble.VendorA,
			wantDists: []int{-48, -16, -8, 8, 16, 48},
			wantTests: []int{2, 8, 8, 24, 48},
			wantTotal: 90,
			wantLevels: [][]int{
				{0},
				{0},
				{-1, 0, 1},
				{-6, -2, -1, 1, 2, 6},
				{-48, -16, -8, 8, 16, 48},
			},
		},
		{
			vendor:    scramble.VendorB,
			wantDists: []int{-64, -1, 1, 64},
			wantTests: []int{2, 8, 8, 24, 24},
			wantTotal: 66,
			wantLevels: [][]int{
				{0},
				{0},
				{-1, 0, 1},
				{-8, 0, 8},
				{-64, -1, 1, 64},
			},
		},
		{
			vendor:    scramble.VendorC,
			wantDists: []int{-49, -33, -16, 16, 33, 49},
			wantTests: []int{2, 8, 8, 24, 48},
			wantTotal: 90,
			wantLevels: [][]int{
				{0},
				{0},
				{-1, 0, 1},
				{-6, -4, -2, 2, 4, 6},
				{-49, -33, -16, 16, 33, 49},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.vendor.String(), func(t *testing.T) {
			host := testHost(t, tt.vendor, 384, 42)
			tester := newTester(t, host)
			res, err := tester.DetectNeighbors()
			if err != nil {
				t.Fatalf("DetectNeighbors: %v", err)
			}
			if res.DiscoveryTests != 10 {
				t.Errorf("discovery tests = %d, want 10", res.DiscoveryTests)
			}
			if !reflect.DeepEqual(res.Distances, tt.wantDists) {
				t.Errorf("final distances = %v, want %v", res.Distances, tt.wantDists)
			}
			if len(res.Levels) != len(tt.wantTests) {
				t.Fatalf("levels = %d, want %d", len(res.Levels), len(tt.wantTests))
			}
			total := 0
			for i, lvl := range res.Levels {
				if lvl.Tests != tt.wantTests[i] {
					t.Errorf("L%d tests = %d, want %d (distances %v)", i+1, lvl.Tests, tt.wantTests[i], lvl.Distances)
				}
				if !reflect.DeepEqual(lvl.Distances, tt.wantLevels[i]) {
					t.Errorf("L%d distances = %v, want %v", i+1, lvl.Distances, tt.wantLevels[i])
				}
				total += lvl.Tests
			}
			if total != tt.wantTotal || res.RecursionTests != tt.wantTotal {
				t.Errorf("total recursion tests = %d (%d), want %d", total, res.RecursionTests, tt.wantTotal)
			}
			if res.SampleSize == 0 {
				t.Error("empty victim sample")
			}
		})
	}
}

// TestFullChipFindsMoreThanRandom is the small-scale version of
// Figure 12: with equal test budgets, the neighbor-aware test must
// uncover more failures than per-bit random patterns.
func TestFullChipFindsMoreThanRandom(t *testing.T) {
	host := testHost(t, scramble.VendorA, 256, 7)
	tester := newTester(t, host)
	rep, err := tester.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	budget := rep.TotalTests()
	if budget < 92 || budget > 140 {
		t.Errorf("PARBOR budget = %d tests, want within the paper's 92-132 ballpark", budget)
	}
	randomHost := testHost(t, scramble.VendorA, 256, 7) // identical chip
	randomTester := newTester(t, randomHost)
	randomFails := randomTester.RandomPatternTest(budget)

	if len(rep.AllFailures) <= len(randomFails) {
		t.Errorf("PARBOR found %d failures, random found %d; want PARBOR > random",
			len(rep.AllFailures), len(randomFails))
	}
	// And random must still find a nontrivial set (the comparison is
	// meaningful only if both testers work).
	if len(randomFails) == 0 {
		t.Error("random test found nothing")
	}
}

// TestFullChipCoversKnownVictims verifies that the neighbor-aware
// full-chip test uncovers the ground-truth victim population almost
// completely: every surround-0 victim whose row polarity makes it
// chargeable must be detected.
func TestFullChipCoversKnownVictims(t *testing.T) {
	host := testHost(t, scramble.VendorB, 192, 9)
	tester := newTester(t, host)
	rep, err := tester.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Collect ground truth from the module (test-only access).
	mod := groundTruthModule(t, scramble.VendorB, 192, 9)
	chip := mod.Chip(0)
	missed, covered := 0, 0
	for row := 0; row < 192; row++ {
		for _, v := range chip.TrueVictims(0, row) {
			l, r, hasL, hasR := chip.Mapping().Neighbors(int(v.Col))
			_ = l
			_ = r
			switch v.Class {
			case coupling.StrongLeft:
				if !hasL {
					continue
				}
			case coupling.StrongRight:
				if !hasR {
					continue
				}
			case coupling.Weak:
				if !hasL || !hasR {
					continue
				}
			}
			if _, ok := chip.RemappedColumns()[v.Col]; ok {
				continue
			}
			addr := memctl.BitAddr{Chip: 0, Bank: 0, Row: int32(row), Col: v.Col}
			if _, ok := rep.FullChipFailures[addr]; ok {
				covered++
			} else {
				missed++
			}
		}
	}
	if covered == 0 {
		t.Fatal("full-chip test covered no ground-truth victims")
	}
	frac := float64(covered) / float64(covered+missed)
	if frac < 0.95 {
		t.Errorf("full-chip coverage of testable victims = %.3f, want >= 0.95 (covered %d, missed %d)", frac, covered, missed)
	}
}

func groundTruthModule(t *testing.T, vendor scramble.Vendor, rows int, seed uint64) *dram.Module {
	t.Helper()
	cc := coupling.DefaultConfig()
	cc.VulnerableRate = 2e-3
	mod, err := dram.NewModule(dram.ModuleConfig{
		Vendor:   vendor,
		Chips:    1,
		Geometry: dram.Geometry{Banks: 1, Rows: rows, Cols: 8192},
		Coupling: cc,
		Faults:   faults.DefaultConfig(),
		Seed:     seed,
	})
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	return mod
}

func TestLevelSizes(t *testing.T) {
	tests := []struct {
		rowBits, first, fanout int
		want                   []int
	}{
		{rowBits: 8192, first: 2, fanout: 8, want: []int{4096, 512, 64, 8, 1}},
		{rowBits: 1024, first: 2, fanout: 8, want: []int{512, 64, 8, 1}},
		{rowBits: 8192, first: 2, fanout: 2, want: []int{4096, 2048, 1024, 512, 256, 128, 64, 32, 16, 8, 4, 2, 1}},
		{rowBits: 16, first: 2, fanout: 8, want: []int{8, 1}},
		{rowBits: 16, first: 16, fanout: 8, want: []int{1}},
	}
	for _, tt := range tests {
		if got := levelSizes(tt.rowBits, tt.first, tt.fanout); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("levelSizes(%d,%d,%d) = %v, want %v", tt.rowBits, tt.first, tt.fanout, got, tt.want)
		}
	}
}

func TestFillRegionPattern(t *testing.T) {
	buf := make([]uint64, 4) // 256 bits
	// failData 1, region [64, 128), victim at 70 (inside region).
	fillRegionPattern(buf, 1, 64, 64, 70)
	for i := 0; i < 256; i++ {
		want := uint64(1)
		if i >= 64 && i < 128 && i != 70 {
			want = 0
		}
		if got := bitAt(buf, i); got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	// failData 0, region [5, 13), victim outside.
	fillRegionPattern(buf, 0, 5, 8, 100)
	for i := 0; i < 256; i++ {
		want := uint64(0)
		if i >= 5 && i < 13 {
			want = 1
		}
		if got := bitAt(buf, i); got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	// Single-bit region at a word boundary.
	fillRegionPattern(buf, 1, 63, 1, 0)
	for i := 0; i < 256; i++ {
		want := uint64(1)
		if i == 63 {
			want = 0
		}
		if got := bitAt(buf, i); got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	// Full-buffer region.
	fillRegionPattern(buf, 1, 0, 256, 9)
	for i := 0; i < 256; i++ {
		want := uint64(0)
		if i == 9 {
			want = 1
		}
		if got := bitAt(buf, i); got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestRankDistances(t *testing.T) {
	freq := map[int]int{0: 100, 1: 50, 2: 20, 3: 2}
	got := rankDistances(freq, 0.15)
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("rankDistances = %v, want [0 1 2]", got)
	}
	got = rankDistances(freq, 0.6)
	if !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("rankDistances(0.6) = %v, want [0]", got)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SampleSize: -1},
		{RankThreshold: 1.5},
		{MarginalHitLimit: -1},
		{FirstSplit: 1},
		{Fanout: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("New(nil) succeeded")
	}
	host := testHost(t, scramble.VendorA, 8, 1)
	if _, err := New(host, Config{FirstSplit: 1}); err == nil {
		t.Error("New with bad config succeeded")
	}
}

func TestFailureSetOps(t *testing.T) {
	a := make(FailureSet)
	a.Add([]memctl.BitAddr{{Col: 1}, {Col: 2}})
	b := make(FailureSet)
	b.Add([]memctl.BitAddr{{Col: 2}, {Col: 3}})
	if got := a.Intersect(b); got != 1 {
		t.Errorf("Intersect = %d, want 1", got)
	}
	a.Union(b)
	if len(a) != 3 {
		t.Errorf("after Union len = %d, want 3", len(a))
	}
}

func TestChunkForDistances(t *testing.T) {
	tests := []struct {
		dists []int
		want  int
	}{
		{dists: []int{-48, 48}, want: 128},
		{dists: []int{-64, -1, 1, 64}, want: 128},
		{dists: []int{1}, want: 16},
		{dists: []int{-5, 5}, want: 16},
		{dists: []int{100}, want: 256},
	}
	for _, tt := range tests {
		if got := chunkForDistances(tt.dists); got != tt.want {
			t.Errorf("chunkForDistances(%v) = %d, want %d", tt.dists, got, tt.want)
		}
	}
}

func TestFullChipTestEmptyDistances(t *testing.T) {
	host := testHost(t, scramble.VendorA, 8, 1)
	tester := newTester(t, host)
	if _, _, err := tester.FullChipTest(nil); err == nil {
		t.Error("FullChipTest(nil) succeeded")
	}
}
