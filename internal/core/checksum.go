package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"parbor/internal/memctl"
)

// SortedAddrs returns the set's addresses sorted by
// (chip, bank, row, col), the canonical order used everywhere a
// failure population must be compared or serialized.
func (s FailureSet) SortedAddrs() []memctl.BitAddr {
	addrs := make([]memctl.BitAddr, 0, len(s))
	for a := range s {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		a, b := addrs[i], addrs[j]
		if a.Chip != b.Chip {
			return a.Chip < b.Chip
		}
		if a.Bank != b.Bank {
			return a.Bank < b.Bank
		}
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Col < b.Col
	})
	return addrs
}

// Checksum hashes the failure set order-independently: FNV-64a over
// the sorted addresses in a fixed-width encoding, rendered as 16 hex
// digits. Two sets are equal iff their checksums match (up to hash
// collision), which is how the golden regression pins failure
// populations and how checkpoint/resume equivalence is asserted
// without shipping full address lists around.
func (s FailureSet) Checksum() string {
	h := fnv.New64a()
	var buf [12]byte
	for _, a := range s.SortedAddrs() {
		binary.LittleEndian.PutUint16(buf[0:2], uint16(a.Chip))
		binary.LittleEndian.PutUint16(buf[2:4], uint16(a.Bank))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(a.Row))
		binary.LittleEndian.PutUint32(buf[8:12], uint32(a.Col))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
