package core

import (
	"testing"

	"parbor/internal/coupling"
	"parbor/internal/dram"
	"parbor/internal/faults"
	"parbor/internal/memctl"
	"parbor/internal/scramble"
)

// smallRowTester builds a toy-mapping chip with 1024-bit rows so the
// naive searches stay affordable, and returns a victim with known
// ground truth.
func smallRowTester(t *testing.T) (*Tester, *dram.Chip, Victim, coupling.Victim) {
	t.Helper()
	mod, err := dram.NewModule(dram.ModuleConfig{
		Vendor:   scramble.VendorToy,
		Chips:    1,
		Geometry: dram.Geometry{Banks: 1, Rows: 64, Cols: 1024},
		Coupling: coupling.Config{
			VulnerableRate:  0.01,
			StrongLeftFrac:  0.5,
			StrongRightFrac: 0.5,
			RetentionMinMs:  100,
			RetentionMaxMs:  100,
		},
		Faults: faults.Config{},
		Seed:   91,
	})
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	host, err := memctl.NewHost(mod, 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	tester, err := New(host, Config{Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	chip := mod.Chip(0)
	// Find a strong victim with both neighbors, in a true-cell row.
	for row := 0; row < 64; row += 4 {
		for _, gt := range chip.TrueVictims(0, row) {
			if gt.Class == coupling.Weak {
				continue
			}
			_, _, hasL, hasR := chip.Mapping().Neighbors(int(gt.Col))
			if !hasL || !hasR {
				continue
			}
			v := Victim{
				Row:      memctl.Row{Chip: 0, Bank: 0, Row: row},
				Col:      gt.Col,
				FailData: 1, // true-cell row: charged at data 1
			}
			return tester, chip, v, gt
		}
	}
	t.Fatal("no suitable victim found")
	return nil, nil, Victim{}, coupling.Victim{}
}

func TestLinearNeighborSearchFindsStrongSide(t *testing.T) {
	tester, chip, v, gt := smallRowTester(t)
	found, passes, err := tester.LinearNeighborSearch(v)
	if err != nil {
		t.Fatalf("LinearNeighborSearch: %v", err)
	}
	if passes != 1023 {
		t.Errorf("passes = %d, want n-1 = 1023", passes)
	}
	left, right, _, _ := chip.Mapping().Neighbors(int(v.Col))
	want := left
	if gt.Class == coupling.StrongRight {
		want = right
	}
	wantDist := want - int(v.Col)
	if len(found) != 1 || found[0] != wantDist {
		t.Errorf("found %v, want [%d] (class %v)", found, wantDist, gt.Class)
	}
}

func TestExhaustivePairSearchFindsPairs(t *testing.T) {
	if testing.Short() {
		t.Skip("O(n^2) pass count")
	}
	tester, chip, v, gt := smallRowTester(t)
	found, passes, err := tester.ExhaustivePairSearch(v)
	if err != nil {
		t.Fatalf("ExhaustivePairSearch: %v", err)
	}
	// C(1023, 2) pairs of non-victim bits.
	if want := 1023 * 1022 / 2; passes != want {
		t.Errorf("passes = %d, want %d", passes, want)
	}
	left, right, _, _ := chip.Mapping().Neighbors(int(v.Col))
	strongSide := left
	if gt.Class == coupling.StrongRight {
		strongSide = right
	}
	wantDist := strongSide - int(v.Col)
	// A strong victim fails for every pair containing its coupled
	// neighbor: n-2 pairs.
	if want := 1022; len(found) != want {
		t.Fatalf("found %d failing pairs, want %d", len(found), want)
	}
	for _, pair := range found {
		if pair[0] != wantDist && pair[1] != wantDist {
			t.Fatalf("pair %v does not contain the coupled neighbor distance %d", pair, wantDist)
		}
	}
}

func TestExhaustivePairSearchRejectsBigRows(t *testing.T) {
	host := testHost(t, scramble.VendorA, 8, 1) // 8192-bit rows
	tester := newTester(t, host)
	if _, _, err := tester.ExhaustivePairSearch(Victim{}); err == nil {
		t.Error("8192-bit exhaustive search accepted")
	}
}

// TestSimplePatternTestMissesCoupling: the all-0s/1s test that prior
// works rely on finds no coupling victims at all (Section 3,
// Challenge 2) — every cell's neighbors always hold the same value.
func TestSimplePatternTestMissesCoupling(t *testing.T) {
	tester, _, _, _ := smallRowTester(t)
	fails := tester.SimplePatternTest()
	if len(fails) != 0 {
		t.Errorf("solid patterns found %d failures on a coupling-only chip, want 0", len(fails))
	}
	// PARBOR's pipeline on the same module finds plenty.
	rep, err := tester.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.AllFailures) == 0 {
		t.Error("PARBOR found nothing on a chip with 1% victims")
	}
}

// TestLinearVsParborBudget quantifies the paper's 90X claim on the
// simulated substrate: the linear per-bit search needs n passes per
// row to find one victim's neighbors, while PARBOR's recursion covers
// the whole module in ~90.
func TestLinearVsParborBudget(t *testing.T) {
	tester, _, v, _ := smallRowTester(t)
	_, linearPasses, err := tester.LinearNeighborSearch(v)
	if err != nil {
		t.Fatalf("LinearNeighborSearch: %v", err)
	}
	res, err := tester.DetectNeighbors()
	if err != nil {
		t.Fatalf("DetectNeighbors: %v", err)
	}
	if res.RecursionTests >= linearPasses {
		t.Errorf("recursion used %d tests vs linear %d; expected a large reduction",
			res.RecursionTests, linearPasses)
	}
}
