// Package faultfs is the storage counterpart of internal/chaos: a
// small VFS seam between the repository's durable-state code
// (fleetlog segments, checkpoint snapshots, fleet state entries) and
// the operating system, plus a seeded, deterministic fault Injector
// that produces the failures real disks actually serve — short
// writes, ENOSPC, fsync errors, torn renames, read EIO, and full
// "stop the world after byte N of operation M" crash points.
//
// Production code holds a faultfs.FS and never touches the os package
// for durable state (the parborvet faultfs pass enforces this over
// internal/fleetlog, internal/checkpoint, and internal/fleet). The
// default implementation, OS, is a zero-cost passthrough; tests and
// the parbord -diskchaos-seed soak flag swap in an Injector wrapping
// OS, so every fault lands on a real file and the *recovery* path runs
// against genuine on-disk damage, not a mock's idea of it.
//
// The package also owns the one sanctioned way to replace a file's
// contents durably: WriteFileAtomic (write temp -> fsync -> rename ->
// fsync directory). Every persistence site that used to be a bare
// os.WriteFile goes through it, so a crash at any byte of any step
// leaves either the old file or the new file, never a torn hybrid —
// a property the injector's crash-point sweep proves point by point.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the per-handle surface the repository's storage code needs.
// It is a strict subset of *os.File, which implements it directly.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.WriterAt
	io.Seeker
	// Sync flushes the file to stable storage. A Sync error means the
	// kernel may have dropped dirty pages: callers must treat the tail
	// written since the last successful Sync as suspect.
	Sync() error
	Truncate(size int64) error
	Stat() (fs.FileInfo, error)
	Name() string
	Close() error
}

// FS is the filesystem seam. Implementations: OS (passthrough) and
// Injector (deterministic fault plane wrapping another FS).
type FS interface {
	Open(name string) (File, error)
	Create(name string) (File, error)
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	// WriteFile is the plain non-durable write (no fsync, no rename
	// dance). Persistence sites use WriteFileAtomic instead; this
	// exists for scratch data whose loss is harmless (spill runs).
	WriteFile(name string, data []byte, perm fs.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	MkdirAll(path string, perm fs.FileMode) error
	// SyncDir fsyncs a directory, making previously committed renames
	// and creates in it durable. Filesystems without directory handles
	// may make this a no-op; the injector models it as a crash point.
	SyncDir(name string) error
}

// OS is the passthrough FS: every call maps 1:1 onto the os package.
// The zero value is ready to use.
type OS struct{}

var _ FS = OS{}

// Open implements FS.
func (OS) Open(name string) (File, error) { return os.Open(name) }

// Create implements FS.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// OpenFile implements FS.
func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// WriteFile implements FS.
func (OS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// ReadDir implements FS.
func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// SyncDir implements FS. Directories are opened read-only and
// fsynced; on filesystems that reject fsync on directories the error
// is surfaced (callers decide whether durability is load-bearing).
func (OS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Injected fault sentinels. They surface wrapped in *OpError, so
// errors.Is works through the wrapper.
var (
	// ErrNoSpace is the injected ENOSPC: the write failed before any
	// byte reached the file.
	ErrNoSpace = errors.New("faultfs: no space left on device (injected)")
	// ErrShortWrite is an injected partial write: a prefix of the
	// buffer reached the file, then the device gave up.
	ErrShortWrite = errors.New("faultfs: short write (injected)")
	// ErrIO is the injected EIO on reads: the sector is unreadable.
	ErrIO = errors.New("faultfs: input/output error (injected)")
	// ErrSync is the injected fsync failure: dirty pages may have been
	// dropped and the unsynced tail must be treated as suspect.
	ErrSync = errors.New("faultfs: fsync failed (injected)")
	// ErrCrashed marks the stop-the-world state: the injector reached
	// its configured crash point and every subsequent operation fails,
	// simulating the process dying mid-sequence. Only reopening the
	// state with a fresh FS (a "new process") moves past it.
	ErrCrashed = errors.New("faultfs: crashed (injected stop-the-world)")
)

// OpError is one injected fault, annotating the operation and path.
type OpError struct {
	// Op names the operation ("write", "sync", "rename", ...).
	Op string
	// Path is the file the operation targeted.
	Path string
	// Err is the underlying sentinel (ErrNoSpace, ErrIO, ...).
	Err error
	// Persistent marks a fault that will not clear on retry: crash
	// points and Break-induced outages. Probabilistic faults are
	// transient — the draw is keyed on the operation sequence number,
	// so a retry sees a fresh draw, exactly like the chaos plane's
	// attempt-keyed glitches.
	Persistent bool
}

// Error implements error.
func (e *OpError) Error() string {
	return fmt.Sprintf("faultfs: %s %s: %v", e.Op, e.Path, e.Err)
}

// Unwrap exposes the sentinel to errors.Is.
func (e *OpError) Unwrap() error { return e.Err }

// Transient reports whether a retry may succeed, in the
// memctl.IsTransient idiom.
func (e *OpError) Transient() bool { return !e.Persistent }

// transient is the duck type shared with memctl/chaos errors.
type transient interface{ Transient() bool }

// IsTransient reports whether err is a fault a bounded retry is
// allowed to absorb. Real-OS errors are never transient here: the
// retry policies this package feeds are for the injected plane and
// for genuinely retryable conditions an implementation marks itself.
func IsTransient(err error) bool {
	var t transient
	return errors.As(err, &t) && t.Transient()
}

// DirOf returns the directory that must be fsynced for a rename or
// create of path to be durable.
func DirOf(path string) string { return filepath.Dir(path) }

// WriteFileAtomic durably replaces path with data: the bytes are
// written to a sibling temp file, fsynced, renamed over path, and the
// directory is fsynced so the rename itself survives a crash. At
// every intermediate failure or crash point the visible state is
// either the old file (or its absence) or the complete new file —
// never a prefix, never a hybrid. The injector crash-point sweep in
// this package's tests proves that claim for every operation.
//
// A leftover temp file from a crashed earlier attempt is silently
// overwritten (O_TRUNC, not O_EXCL): the temp name is deterministic
// so crashes cannot litter the directory with orphans.
func WriteFileAtomic(fsys FS, path string, data []byte, perm fs.FileMode) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return fmt.Errorf("faultfs: creating %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("faultfs: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("faultfs: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("faultfs: closing %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("faultfs: renaming %s: %w", tmp, err)
	}
	if err := fsys.SyncDir(DirOf(path)); err != nil {
		// The rename happened; only its durability is in doubt. Report
		// it — the caller may be about to delete the data's other copy.
		return fmt.Errorf("faultfs: syncing dir of %s: %w", path, err)
	}
	return nil
}
