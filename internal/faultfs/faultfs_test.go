package faultfs

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestOSPassthroughRoundTrip exercises every FS method on the real
// filesystem once, so the passthrough itself is known-good before the
// injector builds on it.
func TestOSPassthroughRoundTrip(t *testing.T) {
	var fsys OS
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := fsys.MkdirAll(sub, 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	path := filepath.Join(sub, "f.txt")
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := fsys.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	g, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := g.WriteAt([]byte("H"), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := g.ReadAt(buf, 0); err != nil || string(buf) != "Hello" {
		t.Fatalf("ReadAt = %q, %v", buf, err)
	}
	if _, err := g.Seek(1, 0); err != nil {
		t.Fatalf("Seek: %v", err)
	}
	st, err := g.Stat()
	if err != nil || st.Size() != 5 {
		t.Fatalf("Stat = %v, %v", st, err)
	}
	g.Close()
	dst := filepath.Join(sub, "g.txt")
	if err := fsys.Rename(path, dst); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if err := fsys.SyncDir(sub); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	ents, err := fsys.ReadDir(sub)
	if err != nil || len(ents) != 1 || ents[0].Name() != "g.txt" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := fsys.Remove(dst); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := fsys.WriteFile(dst, []byte("x"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
}

// TestWriteFileAtomicReplacesAndCleansTemp checks the happy path:
// contents replaced, temp file gone.
func TestWriteFileAtomicReplacesAndCleansTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFileAtomic(OS{}, path, []byte("v1"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	if err := WriteFileAtomic(OS{}, path, []byte("v2"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "v2" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("temp file survived a successful atomic write: %v", err)
	}
}

// TestInjectorZeroConfigIsPassthrough proves a fault-free injector
// changes nothing but the trace.
func TestInjectorZeroConfigIsPassthrough(t *testing.T) {
	inj, err := NewInjector(OS{}, InjectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := WriteFileAtomic(inj, path, []byte("payload"), 0o644); err != nil {
		t.Fatalf("atomic write through injector: %v", err)
	}
	data, err := inj.ReadFile(path)
	if err != nil || string(data) != "payload" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if inj.Ops() == 0 {
		t.Fatal("no operations traced")
	}
	if inj.Faults() != 0 {
		t.Fatalf("fault-free injector recorded %d faults: %+v", inj.Faults(), inj.Trace())
	}
}

// scenario performs a fixed sequence of filesystem work whose op
// trace the determinism and crash tests replay.
func scenario(fsys FS, dir string) error {
	path := filepath.Join(dir, "log.bin")
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	for i := 0; i < 8; i++ {
		if _, err := f.Write(bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return WriteFileAtomic(fsys, filepath.Join(dir, "meta.json"), []byte(`{"ok":true}`), 0o644)
}

// TestInjectorDeterministicSchedule runs the same scenario twice with
// the same seed and asserts the complete traces — faults included —
// are identical.
func TestInjectorDeterministicSchedule(t *testing.T) {
	run := func() []Op {
		inj, err := NewInjector(OS{}, InjectorConfig{
			Seed:           42,
			WriteErrProb:   0.2,
			ShortWriteProb: 0.2,
			SyncErrProb:    0.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		scenario(inj, t.TempDir()) // errors expected; the trace is the point
		return inj.Trace()
	}
	a, b := run(), run()
	// Paths differ per TempDir; compare the schedule shape.
	for i := range a {
		a[i].Path, b[i].Path = "", ""
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%+v\n%+v", a, b)
	}
	faults := 0
	for _, op := range a {
		if op.Fault != "" {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("probabilistic config injected nothing; seed/probability plumbing broken")
	}
}

// TestShortWriteLeavesRealPrefix asserts a short write really puts
// the prefix on disk — the recovery paths must see genuine torn
// bytes, not a clean miss.
func TestShortWriteLeavesRealPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	// Find a seed whose first write op draws a short write.
	for seed := uint64(0); seed < 200; seed++ {
		inj, err := NewInjector(OS{}, InjectorConfig{Seed: seed, ShortWriteProb: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		f, err := inj.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		payload := []byte("0123456789abcdef")
		n, werr := f.Write(payload)
		f.Close()
		if werr == nil {
			continue
		}
		if !errors.Is(werr, ErrShortWrite) {
			t.Fatalf("unexpected write error %v", werr)
		}
		if n <= 0 || n >= len(payload) {
			t.Fatalf("short write wrote %d of %d bytes; want a strict nonempty prefix", n, len(payload))
		}
		onDisk, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(onDisk, payload[:n]) {
			t.Fatalf("disk holds %q, want the reported prefix %q", onDisk, payload[:n])
		}
		if !IsTransient(werr) {
			t.Fatal("probabilistic short write must be transient")
		}
		return
	}
	t.Fatal("no seed in [0,200) produced a short write at p=0.5; rng plumbing broken")
}

// TestCrashStopsTheWorld asserts that after the crash point fires,
// every operation — including on already-open handles — fails with
// ErrCrashed.
func TestCrashStopsTheWorld(t *testing.T) {
	dir := t.TempDir()
	inj, err := NewInjector(OS{}, InjectorConfig{CrashOp: 3, CrashByte: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	f, err := inj.Create(filepath.Join(dir, "a")) // op 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil { // op 2
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("y")); !errors.Is(err, ErrCrashed) { // op 3: crash
		t.Fatalf("crash op returned %v, want ErrCrashed", err)
	}
	if !inj.Crashed() {
		t.Fatal("injector not in crashed state")
	}
	if _, err := f.Write([]byte("z")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write on open handle: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v", err)
	}
	if _, err := inj.Create(filepath.Join(dir, "b")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create: %v", err)
	}
	if _, err := inj.ReadDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash readdir: %v", err)
	}
	cerr := f.Close()
	if !errors.Is(cerr, ErrCrashed) {
		t.Fatalf("post-crash close: %v", cerr)
	}
	if IsTransient(cerr) {
		t.Fatal("crash errors must not be transient")
	}
	// CrashByte made the crashing write land in full before the stop.
	data, err := os.ReadFile(filepath.Join(dir, "a"))
	if err != nil || string(data) != "xy" {
		t.Fatalf("disk holds %q, %v; want torn state \"xy\"", data, err)
	}
}

// TestBreakAndHeal models a volume outage: mutating ops fail
// persistently, reads keep working, and Heal restores service.
func TestBreakAndHeal(t *testing.T) {
	dir := t.TempDir()
	inj, err := NewInjector(OS{}, InjectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "f")
	if err := inj.WriteFile(path, []byte("before"), 0o644); err != nil {
		t.Fatal(err)
	}
	inj.Break(nil)
	werr := inj.WriteFile(path, []byte("during"), 0o644)
	if !errors.Is(werr, ErrIO) {
		t.Fatalf("broken write: %v, want ErrIO", werr)
	}
	if IsTransient(werr) {
		t.Fatal("Break faults must be persistent: the daemon's retry budget must not spin on them")
	}
	if _, err := inj.Create(filepath.Join(dir, "g")); err == nil {
		t.Fatal("broken create succeeded")
	}
	if data, err := inj.ReadFile(path); err != nil || string(data) != "before" {
		t.Fatalf("reads must survive an outage: %q, %v", data, err)
	}
	inj.Heal()
	if err := inj.WriteFile(path, []byte("after"), 0o644); err != nil {
		t.Fatalf("healed write: %v", err)
	}
	if data, _ := os.ReadFile(path); string(data) != "after" {
		t.Fatalf("disk holds %q after heal", data)
	}
}

// TestReadEIO asserts read faults surface as ErrIO through both Read
// and ReadFile.
func TestReadEIO(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(OS{}, InjectorConfig{Seed: 7, ReadErrProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inj.ReadFile(path); !errors.Is(err, ErrIO) {
		t.Fatalf("ReadFile: %v, want ErrIO", err)
	}
	f, err := inj.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Read(make([]byte, 4)); !errors.Is(err, ErrIO) {
		t.Fatalf("Read: %v, want ErrIO", err)
	}
	if _, err := f.ReadAt(make([]byte, 4), 0); !errors.Is(err, ErrIO) {
		t.Fatalf("ReadAt: %v, want ErrIO", err)
	}
}

// TestInjectorConfigValidate covers the rejection table.
func TestInjectorConfigValidate(t *testing.T) {
	cases := []InjectorConfig{
		{WriteErrProb: -0.1},
		{ShortWriteProb: 2},
		{SyncErrProb: 1.5},
		{ReadErrProb: -1},
		{RenameErrProb: 7},
		{CrashOp: -1},
		{CrashByte: -1},
	}
	for i, cfg := range cases {
		if _, err := NewInjector(OS{}, cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
}

// TestWriteFileAtomicCrashSweep is the point of the atomic-persist
// contract: enumerate every operation WriteFileAtomic performs, crash
// at each one (both before and after the op commits), and assert the
// visible file is always exactly the old contents or exactly the new
// contents — never a prefix, never a hybrid, never unparseable
// leftovers at the real path.
func TestWriteFileAtomicCrashSweep(t *testing.T) {
	const oldContent = "OLD-STATE-0123456789"
	const newContent = "NEW-STATE-abcdefghij-longer-than-old"

	// Counting pass: how many ops does one atomic write perform?
	counter, err := NewInjector(OS{}, InjectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	{
		dir := t.TempDir()
		path := filepath.Join(dir, "state")
		if err := os.WriteFile(path, []byte(oldContent), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := WriteFileAtomic(counter, path, []byte(newContent), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	total := counter.Ops()
	if total < 5 { // open, write, sync, close-adjacent ops, rename, syncdir
		t.Fatalf("atomic write traced only %d ops: %+v", total, counter.Trace())
	}

	for _, hasOld := range []bool{true, false} {
		for crashOp := 1; crashOp <= total; crashOp++ {
			for _, crashByte := range []int{0, 3, 1 << 30} {
				name := fmt.Sprintf("old=%v/op=%d/byte=%d", hasOld, crashOp, crashByte)
				dir := t.TempDir()
				path := filepath.Join(dir, "state")
				if hasOld {
					if err := os.WriteFile(path, []byte(oldContent), 0o644); err != nil {
						t.Fatal(err)
					}
				}
				inj, err := NewInjector(OS{}, InjectorConfig{CrashOp: crashOp, CrashByte: crashByte})
				if err != nil {
					t.Fatal(err)
				}
				werr := WriteFileAtomic(inj, path, []byte(newContent), 0o644)
				if !inj.Crashed() {
					t.Fatalf("%s: crash point never fired (%d ops ran)", name, inj.Ops())
				}
				// The dir-sync crash-after point is the one "failure"
				// where the new state is fully visible; every other
				// crash must surface an error.
				if werr == nil && crashOp != total {
					t.Fatalf("%s: atomic write reported success through a crash", name)
				}
				data, rerr := os.ReadFile(path)
				switch {
				case rerr == nil && string(data) == newContent:
					// Committed: fine at or after the rename point.
				case rerr == nil && hasOld && string(data) == oldContent:
					// Rolled back to the old state: fine before it.
				case errors.Is(rerr, fs.ErrNotExist) && !hasOld:
					// Never existed, still doesn't: fine.
				default:
					t.Fatalf("%s: path holds %q (err %v): neither old nor new state", name, data, rerr)
				}
			}
		}
	}
}
