package faultfs

import (
	"fmt"
	"io/fs"
	"os"
	"sync"

	"parbor/internal/rng"
)

// OpKind names one fault-eligible filesystem operation.
type OpKind string

// The fault-eligible operations. Every call through an Injector that
// can fail on real storage is one of these; pure metadata calls
// (Seek, Stat, Name) are not fault points and are not traced.
const (
	OpOpen     OpKind = "open"
	OpCreate   OpKind = "create"
	OpOpenFile OpKind = "openfile"
	OpRead     OpKind = "read"
	OpReadFile OpKind = "readfile"
	OpWrite    OpKind = "write"
	OpSync     OpKind = "sync"
	OpTruncate OpKind = "truncate"
	OpRename   OpKind = "rename"
	OpRemove   OpKind = "remove"
	OpReadDir  OpKind = "readdir"
	OpMkdirAll OpKind = "mkdirall"
	OpSyncDir  OpKind = "syncdir"
)

// Op is one traced operation: the unit of the crash-point sweep. A
// test first runs a scenario with a fault-free Injector, reads the
// trace to learn how many operations the scenario performs, then
// replays it once per operation with CrashOp pinned to that sequence
// number — enumerating every instant a real machine could lose power.
type Op struct {
	// Seq is the 1-based operation sequence number.
	Seq int
	// Kind is the operation.
	Kind OpKind
	// Path is the file or directory operated on.
	Path string
	// Bytes is the buffer length for reads and writes, 0 otherwise.
	Bytes int
	// Fault records what the injector did to the op: "" (clean),
	// "crash", "broken", "enospc", "short", "eio", "esync", "erename".
	Fault string
}

// InjectorConfig parameterizes an Injector. The zero value injects
// nothing (but still traces, which is what the sweep's counting pass
// uses).
type InjectorConfig struct {
	// Seed roots every probabilistic decision. Draws are keyed on the
	// operation sequence number, so a fixed seed and a deterministic
	// caller reproduce the exact fault schedule, and a retried
	// operation (new sequence number) sees a fresh draw.
	Seed uint64
	// WriteErrProb is the per-write probability of ENOSPC: the write
	// fails before any byte reaches the file.
	WriteErrProb float64
	// ShortWriteProb is the per-write probability of a partial write:
	// a nonempty strict prefix reaches the file, then ErrShortWrite.
	// Writes of one byte or less cannot be torn and are exempt.
	ShortWriteProb float64
	// SyncErrProb is the per-fsync (file or directory) probability of
	// ErrSync.
	SyncErrProb float64
	// ReadErrProb is the per-read probability of ErrIO.
	ReadErrProb float64
	// RenameErrProb is the per-rename probability of failing without
	// committing (the torn-rename transient case: the temp file stays,
	// the destination is untouched).
	RenameErrProb float64
	// CrashOp, when > 0, stops the world at the operation with that
	// sequence number: the op takes partial effect per CrashByte, the
	// injector flips into the crashed state, and every subsequent
	// operation fails with ErrCrashed until the state is reopened with
	// a fresh FS (a "new process"). 0 means never crash.
	CrashOp int
	// CrashByte shapes the crash point. For a write op it is how many
	// bytes of the buffer reach the file before the stop (clamped to
	// [0, len]). For any other op, 0 crashes BEFORE the op commits
	// (rename not performed, file not created) and any positive value
	// crashes AFTER it commits — both sides of every torn transition.
	CrashByte int
}

// Validate rejects configurations outside the model's domain.
func (c InjectorConfig) Validate() error {
	probs := []struct {
		name string
		p    float64
	}{
		{"WriteErrProb", c.WriteErrProb},
		{"ShortWriteProb", c.ShortWriteProb},
		{"SyncErrProb", c.SyncErrProb},
		{"ReadErrProb", c.ReadErrProb},
		{"RenameErrProb", c.RenameErrProb},
	}
	for _, pr := range probs {
		if pr.p < 0 || pr.p > 1 {
			return fmt.Errorf("faultfs: %s %v outside [0, 1]", pr.name, pr.p)
		}
	}
	if c.CrashOp < 0 {
		return fmt.Errorf("faultfs: negative CrashOp %d", c.CrashOp)
	}
	if c.CrashByte < 0 {
		return fmt.Errorf("faultfs: negative CrashByte %d", c.CrashByte)
	}
	return nil
}

// Injector is a deterministic disk-fault plane wrapping an inner FS
// (usually OS, so injected damage lands on real files and recovery
// code runs against genuine on-disk state). It is safe for concurrent
// use; the operation sequence is serialized under one mutex, which is
// also what makes the trace a total order the sweep can replay.
type Injector struct {
	in  FS
	cfg InjectorConfig

	mu      sync.Mutex
	seq     int   //parbor:guardedby mu
	crashed bool  //parbor:guardedby mu
	broken  error //parbor:guardedby mu
	trace   []Op  //parbor:guardedby mu
}

var _ FS = (*Injector)(nil)

// NewInjector validates cfg and wraps inner (nil selects OS).
func NewInjector(inner FS, cfg InjectorConfig) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if inner == nil {
		inner = OS{}
	}
	return &Injector{in: inner, cfg: cfg}, nil
}

// Break forces every subsequent mutating operation (writes, syncs,
// creates, renames, removes, truncates) to fail persistently with
// cause until Heal — the "disk went read-only / volume detached"
// outage the daemon's log-degraded mode must survive. Reads keep
// working. A nil cause selects ErrIO.
func (in *Injector) Break(cause error) {
	if cause == nil {
		cause = ErrIO
	}
	in.mu.Lock()
	in.broken = cause
	in.mu.Unlock()
}

// Heal clears a Break outage. It does not clear the crashed state:
// a crashed process never comes back, it is replaced.
func (in *Injector) Heal() {
	in.mu.Lock()
	in.broken = nil
	in.mu.Unlock()
}

// Broken reports whether a Break outage is active.
func (in *Injector) Broken() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.broken != nil
}

// Crashed reports whether the configured crash point was reached.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Ops returns how many operations have been traced.
func (in *Injector) Ops() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seq
}

// Trace returns a copy of the operation trace so far.
func (in *Injector) Trace() []Op {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Op, len(in.trace))
	copy(out, in.trace)
	return out
}

// Faults returns how many traced operations had a fault injected.
func (in *Injector) Faults() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, op := range in.trace {
		if op.Fault != "" {
			n++
		}
	}
	return n
}

// plan is one operation's verdict: err to return (nil = clean), and
// partial, which for writes is how many bytes to apply first and for
// other ops is nonzero when the op's effect should commit before the
// error is returned.
type plan struct {
	err     error
	partial int
}

// mutates reports whether a Break outage covers the op kind.
func mutates(kind OpKind) bool {
	switch kind {
	case OpWrite, OpSync, OpSyncDir, OpCreate, OpRename, OpRemove, OpTruncate, OpMkdirAll:
		return true
	}
	return false
}

// step serializes one operation: assigns its sequence number, records
// the trace entry, and decides its fate (crash point, outage, or a
// seeded probabilistic fault).
func (in *Injector) step(kind OpKind, path string, n int, mutating bool) plan {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return plan{err: &OpError{Op: string(kind), Path: path, Err: ErrCrashed, Persistent: true}}
	}
	in.seq++
	op := Op{Seq: in.seq, Kind: kind, Path: path, Bytes: n}
	// The deferred append runs before the deferred Unlock (LIFO), so
	// mu is still held; lockguard cannot see across the two defers.
	//parbor:unsync deferred trace append runs before the LIFO-later deferred Unlock, mu still held
	defer func() { in.trace = append(in.trace, op) }()

	if in.cfg.CrashOp > 0 && in.seq == in.cfg.CrashOp {
		in.crashed = true
		op.Fault = "crash"
		partial := in.cfg.CrashByte
		if kind == OpWrite {
			if partial > n {
				partial = n
			}
		} else if partial > 0 {
			partial = 1
		}
		return plan{
			err:     &OpError{Op: string(kind), Path: path, Err: ErrCrashed, Persistent: true},
			partial: partial,
		}
	}
	if in.broken != nil && mutating {
		op.Fault = "broken"
		return plan{err: &OpError{Op: string(kind), Path: path, Err: in.broken, Persistent: true}}
	}

	s := rng.New(in.cfg.Seed).Split("faultfs").SplitN("op", uint64(in.seq))
	fault := func(tag string, sentinel error) plan {
		op.Fault = tag
		return plan{err: &OpError{Op: string(kind), Path: path, Err: sentinel}}
	}
	switch kind {
	case OpWrite:
		if s.Bool(in.cfg.WriteErrProb) {
			return fault("enospc", ErrNoSpace)
		}
		if n > 1 && s.Bool(in.cfg.ShortWriteProb) {
			op.Fault = "short"
			return plan{
				err:     &OpError{Op: string(kind), Path: path, Err: ErrShortWrite},
				partial: 1 + s.Intn(n-1),
			}
		}
	case OpRead, OpReadFile:
		if s.Bool(in.cfg.ReadErrProb) {
			return fault("eio", ErrIO)
		}
	case OpSync, OpSyncDir:
		if s.Bool(in.cfg.SyncErrProb) {
			return fault("esync", ErrSync)
		}
	case OpRename:
		if s.Bool(in.cfg.RenameErrProb) {
			return fault("erename", ErrNoSpace)
		}
	}
	return plan{}
}

// checkAlive gates the un-traced metadata calls (Seek, Stat) on the
// crashed state without consuming a sequence number.
func (in *Injector) checkAlive(kind OpKind, path string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return &OpError{Op: string(kind), Path: path, Err: ErrCrashed, Persistent: true}
	}
	return nil
}

// Open implements FS. Read-only opens are crash points but are not
// covered by Break.
func (in *Injector) Open(name string) (File, error) {
	pl := in.step(OpOpen, name, 0, false)
	if pl.err != nil {
		return nil, pl.err
	}
	f, err := in.in.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: f, inj: in, path: name}, nil
}

// Create implements FS.
func (in *Injector) Create(name string) (File, error) {
	pl := in.step(OpCreate, name, 0, true)
	if pl.err != nil {
		if pl.partial > 0 { // crash after the create committed
			if f, err := in.in.Create(name); err == nil {
				f.Close()
			}
		}
		return nil, pl.err
	}
	f, err := in.in.Create(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: f, inj: in, path: name}, nil
}

// OpenFile implements FS. Opens that can mutate (create, truncate,
// write access) are covered by Break; read-only opens are not.
func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	mutating := flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE|os.O_TRUNC|os.O_APPEND) != 0
	pl := in.step(OpOpenFile, name, 0, mutating)
	if pl.err != nil {
		if pl.partial > 0 && flag&os.O_CREATE != 0 { // crash after creation
			if f, err := in.in.OpenFile(name, flag, perm); err == nil {
				f.Close()
			}
		}
		return nil, pl.err
	}
	f, err := in.in.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: f, inj: in, path: name}, nil
}

// ReadFile implements FS.
func (in *Injector) ReadFile(name string) ([]byte, error) {
	pl := in.step(OpReadFile, name, 0, false)
	if pl.err != nil {
		return nil, pl.err
	}
	return in.in.ReadFile(name)
}

// WriteFile implements FS. A short-write or partial-crash fault
// leaves the injected prefix in the file, exactly as a torn
// non-atomic write would.
func (in *Injector) WriteFile(name string, data []byte, perm fs.FileMode) error {
	pl := in.step(OpWrite, name, len(data), true)
	if pl.err != nil {
		if pl.partial > 0 {
			in.in.WriteFile(name, data[:min(pl.partial, len(data))], perm)
		}
		return pl.err
	}
	return in.in.WriteFile(name, data, perm)
}

// Rename implements FS. A crash with CrashByte 0 stops before the
// rename commits (temp file remains, destination untouched); with
// CrashByte > 0 the rename commits and then the world stops.
func (in *Injector) Rename(oldpath, newpath string) error {
	pl := in.step(OpRename, oldpath, 0, true)
	if pl.err != nil {
		if pl.partial > 0 {
			in.in.Rename(oldpath, newpath)
		}
		return pl.err
	}
	return in.in.Rename(oldpath, newpath)
}

// Remove implements FS.
func (in *Injector) Remove(name string) error {
	pl := in.step(OpRemove, name, 0, true)
	if pl.err != nil {
		if pl.partial > 0 {
			in.in.Remove(name)
		}
		return pl.err
	}
	return in.in.Remove(name)
}

// ReadDir implements FS.
func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	pl := in.step(OpReadDir, name, 0, false)
	if pl.err != nil {
		return nil, pl.err
	}
	return in.in.ReadDir(name)
}

// MkdirAll implements FS.
func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	pl := in.step(OpMkdirAll, path, 0, true)
	if pl.err != nil {
		if pl.partial > 0 {
			in.in.MkdirAll(path, perm)
		}
		return pl.err
	}
	return in.in.MkdirAll(path, perm)
}

// SyncDir implements FS.
func (in *Injector) SyncDir(name string) error {
	pl := in.step(OpSyncDir, name, 0, true)
	if pl.err != nil {
		if pl.partial > 0 {
			in.in.SyncDir(name)
		}
		return pl.err
	}
	return in.in.SyncDir(name)
}

// injFile wraps one handle of the inner FS.
type injFile struct {
	in   File
	inj  *Injector
	path string
}

// Read implements File.
func (f *injFile) Read(p []byte) (int, error) {
	pl := f.inj.step(OpRead, f.path, len(p), false)
	if pl.err != nil {
		return 0, pl.err
	}
	return f.in.Read(p)
}

// ReadAt implements File.
func (f *injFile) ReadAt(p []byte, off int64) (int, error) {
	pl := f.inj.step(OpRead, f.path, len(p), false)
	if pl.err != nil {
		return 0, pl.err
	}
	return f.in.ReadAt(p, off)
}

// Write implements File. Short writes and partial crash points write
// the injected prefix through to the inner file, so the torn bytes
// are really on disk for the recovery path to find.
func (f *injFile) Write(p []byte) (int, error) {
	pl := f.inj.step(OpWrite, f.path, len(p), true)
	if pl.err != nil {
		n := 0
		if pl.partial > 0 {
			var werr error
			n, werr = f.in.Write(p[:pl.partial])
			if werr != nil {
				return n, werr
			}
		}
		return n, pl.err
	}
	return f.in.Write(p)
}

// WriteAt implements File, with the same partial-write semantics as
// Write.
func (f *injFile) WriteAt(p []byte, off int64) (int, error) {
	pl := f.inj.step(OpWrite, f.path, len(p), true)
	if pl.err != nil {
		n := 0
		if pl.partial > 0 {
			var werr error
			n, werr = f.in.WriteAt(p[:pl.partial], off)
			if werr != nil {
				return n, werr
			}
		}
		return n, pl.err
	}
	return f.in.WriteAt(p, off)
}

// Seek implements File. Not a fault point (no device I/O), but a
// crashed world rejects it.
func (f *injFile) Seek(offset int64, whence int) (int64, error) {
	if err := f.inj.checkAlive(OpOpen, f.path); err != nil {
		return 0, err
	}
	return f.in.Seek(offset, whence)
}

// Sync implements File.
func (f *injFile) Sync() error {
	pl := f.inj.step(OpSync, f.path, 0, true)
	if pl.err != nil {
		if pl.partial > 0 {
			f.in.Sync()
		}
		return pl.err
	}
	return f.in.Sync()
}

// Truncate implements File.
func (f *injFile) Truncate(size int64) error {
	pl := f.inj.step(OpTruncate, f.path, 0, true)
	if pl.err != nil {
		if pl.partial > 0 {
			f.in.Truncate(size)
		}
		return pl.err
	}
	return f.in.Truncate(size)
}

// Stat implements File; metadata only, gated on the crashed state.
func (f *injFile) Stat() (fs.FileInfo, error) {
	if err := f.inj.checkAlive(OpOpen, f.path); err != nil {
		return nil, err
	}
	return f.in.Stat()
}

// Name implements File.
func (f *injFile) Name() string { return f.in.Name() }

// Close implements File. The inner handle is always closed (a crashed
// test process must not leak descriptors), but a crashed world still
// reports the crash so cleanup paths see the stop too.
func (f *injFile) Close() error {
	err := f.in.Close()
	if cerr := f.inj.checkAlive(OpOpen, f.path); cerr != nil {
		return cerr
	}
	return err
}
