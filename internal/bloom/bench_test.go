package bloom

import "testing"

func BenchmarkAdd(b *testing.B) {
	f, err := New(1<<20, 7)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i))
	}
}

func BenchmarkContains(b *testing.B) {
	f, err := New(1<<20, 7)
	if err != nil {
		b.Fatal(err)
	}
	for i := uint64(0); i < 10000; i++ {
		f.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Contains(uint64(i))
	}
}
