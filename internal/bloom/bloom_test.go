package bloom

import (
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f, err := NewWithEstimate(1000, 0.01)
	if err != nil {
		t.Fatalf("NewWithEstimate: %v", err)
	}
	for i := uint64(0); i < 1000; i++ {
		f.Add(i * 7919)
	}
	for i := uint64(0); i < 1000; i++ {
		if !f.Contains(i * 7919) {
			t.Fatalf("false negative for key %d", i*7919)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f, err := NewWithEstimate(10000, 0.01)
	if err != nil {
		t.Fatalf("NewWithEstimate: %v", err)
	}
	for i := uint64(0); i < 10000; i++ {
		f.Add(i)
	}
	fp := 0
	const probes = 100000
	for i := uint64(1 << 32); i < 1<<32+probes; i++ {
		if f.Contains(i) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Errorf("false-positive rate = %v, want <= ~0.01", rate)
	}
	if est := f.EstimatedFPP(); est > 0.02 {
		t.Errorf("EstimatedFPP = %v, want about 0.01", est)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f, err := New(1024, 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	found := 0
	for i := uint64(0); i < 1000; i++ {
		if f.Contains(i) {
			found++
		}
	}
	if found != 0 {
		t.Errorf("empty filter claimed %d keys", found)
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("nbits=0 accepted")
	}
	if _, err := New(64, 0); err == nil {
		t.Error("hashes=0 accepted")
	}
	if _, err := New(64, 17); err == nil {
		t.Error("hashes=17 accepted")
	}
	if _, err := NewWithEstimate(0, 0.01); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewWithEstimate(10, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := NewWithEstimate(10, 1); err == nil {
		t.Error("p=1 accepted")
	}
}

func TestQuickNoFalseNegatives(t *testing.T) {
	f, err := New(1<<16, 5)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	prop := func(key uint64) bool {
		f.Add(key)
		return f.Contains(key)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSizeAndCount(t *testing.T) {
	f, err := New(128, 2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if f.SizeBytes() != 16 {
		t.Errorf("SizeBytes = %d, want 16", f.SizeBytes())
	}
	f.Add(1)
	f.Add(2)
	if f.Count() != 2 {
		t.Errorf("Count = %d, want 2", f.Count())
	}
}
