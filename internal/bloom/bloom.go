// Package bloom implements a plain Bloom filter over uint64 keys.
//
// RAIDR (Liu et al., ISCA 2012) — the refresh-reduction baseline the
// paper's DC-REF is compared against — stores its retention-time row
// bins in Bloom filters so the controller can hold millions of row
// classifications in a few kilobytes. The refresh policies in
// internal/refresh use this package the same way.
package bloom

import (
	"fmt"
	"math"
)

// Filter is a Bloom filter over uint64 keys. The zero value is not
// usable; construct with New or NewWithEstimate.
type Filter struct {
	bits   []uint64
	nbits  uint64
	hashes int
	count  uint64 // inserted keys (approximate population tracking)
}

// New creates a filter with nbits bits and the given number of hash
// functions.
func New(nbits uint64, hashes int) (*Filter, error) {
	if nbits == 0 {
		return nil, fmt.Errorf("bloom: nbits must be positive")
	}
	if hashes <= 0 || hashes > 16 {
		return nil, fmt.Errorf("bloom: hashes must be in [1,16], got %d", hashes)
	}
	words := (nbits + 63) / 64
	return &Filter{
		bits:   make([]uint64, words),
		nbits:  nbits,
		hashes: hashes,
	}, nil
}

// NewWithEstimate sizes the filter for n expected keys at the target
// false-positive probability p, using the standard optimal formulas.
func NewWithEstimate(n uint64, p float64) (*Filter, error) {
	if n == 0 {
		return nil, fmt.Errorf("bloom: n must be positive")
	}
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("bloom: p must be in (0,1), got %v", p)
	}
	ln2 := math.Ln2
	nbits := uint64(math.Ceil(-float64(n) * math.Log(p) / (ln2 * ln2)))
	hashes := int(math.Round(float64(nbits) / float64(n) * ln2))
	if hashes < 1 {
		hashes = 1
	}
	if hashes > 16 {
		hashes = 16
	}
	return New(nbits, hashes)
}

// mix is a 64-bit finalizer (SplitMix64) used to derive the k hash
// values via double hashing.
func mix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// indexes derives the k bit positions for key using Kirsch-Mitzenmacher
// double hashing.
func (f *Filter) index(key uint64, i int) uint64 {
	h1 := mix(key)
	h2 := mix(key ^ 0x9e3779b97f4a7c15)
	return (h1 + uint64(i)*h2) % f.nbits
}

// Add inserts key.
func (f *Filter) Add(key uint64) {
	for i := 0; i < f.hashes; i++ {
		idx := f.index(key, i)
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.count++
}

// Contains reports whether key may have been inserted. False
// positives are possible; false negatives are not.
func (f *Filter) Contains(key uint64) bool {
	for i := 0; i < f.hashes; i++ {
		idx := f.index(key, i)
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// Count returns the number of Add calls.
func (f *Filter) Count() uint64 { return f.count }

// SizeBytes returns the filter's storage footprint.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// EstimatedFPP returns the expected false-positive probability given
// the number of keys inserted so far.
func (f *Filter) EstimatedFPP() float64 {
	k := float64(f.hashes)
	return math.Pow(1-math.Exp(-k*float64(f.count)/float64(f.nbits)), k)
}
