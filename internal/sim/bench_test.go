package sim

import (
	"testing"

	"parbor/internal/refresh"
	"parbor/internal/trace"
)

func BenchmarkRunOneMillisecond(b *testing.B) {
	wl := trace.Workloads(1, 8, 1)[0]
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{
			Workload: wl,
			Policy:   refresh.DCREF,
			Density:  Density32Gbit,
			SimNs:    1e6,
			Seed:     2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Requests == 0 {
			b.Fatal("no requests simulated")
		}
	}
}
