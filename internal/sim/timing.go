package sim

import "fmt"

// Density selects the DRAM chip density, which sets the refresh
// latency tRFC and the number of rows per bank. The paper evaluates
// 16 Gbit and 32 Gbit chips with tRFC estimated at 590 ns and 1 us
// (footnote 6, following RAIDR's projection).
type Density int

// Chip densities of Figure 16.
const (
	Density16Gbit Density = iota + 1
	Density32Gbit
)

// String returns the density label used in experiment output.
func (d Density) String() string {
	switch d {
	case Density16Gbit:
		return "16Gbit"
	case Density32Gbit:
		return "32Gbit"
	default:
		return fmt.Sprintf("Density(%d)", int(d))
	}
}

// TRFCns returns the refresh-command latency in nanoseconds.
func (d Density) TRFCns() (float64, error) {
	switch d {
	case Density16Gbit:
		return 590, nil
	case Density32Gbit:
		return 1000, nil
	default:
		return 0, fmt.Errorf("sim: unknown density %d", int(d))
	}
}

// RowsPerBank returns the per-bank row count.
func (d Density) RowsPerBank() (int, error) {
	switch d {
	case Density16Gbit:
		return 32768, nil
	case Density32Gbit:
		return 65536, nil
	default:
		return 0, fmt.Errorf("sim: unknown density %d", int(d))
	}
}

// Timing holds the DDR3-1600 command timings the simulator uses, in
// nanoseconds (JEDEC DDR3 SDRAM specification; Table 2 of the paper).
type Timing struct {
	TRCD   float64 // activate to column command
	TRP    float64 // precharge
	TCL    float64 // column access strobe latency
	TBL    float64 // burst transfer of one 64 B line
	TREFI  float64 // refresh interval between REF commands
	CPUGHz float64 // core clock
}

// DDR3_1600 returns the simulator's default timing.
func DDR3_1600() Timing {
	return Timing{
		TRCD:   13.75,
		TRP:    13.75,
		TCL:    13.75,
		TBL:    5,
		TREFI:  7812.5,
		CPUGHz: 3.2,
	}
}

// hitLatency is the service time of a row-buffer hit.
func (t Timing) hitLatency() float64 { return t.TCL + t.TBL }

// missLatency is the service time of a row-buffer miss (precharge,
// activate, read).
func (t Timing) missLatency() float64 { return t.TRP + t.TRCD + t.TCL + t.TBL }

// instNs returns the time to execute n instructions at one
// instruction per CPU cycle.
func (t Timing) instNs(n int) float64 { return float64(n) / t.CPUGHz }
