// Package sim is a command-level, event-driven DDR3 memory-system
// simulator ("ramulator-lite") for evaluating refresh policies: the
// substrate for the paper's DC-REF experiment (Section 8, Figure 16).
//
// The model captures what a refresh study needs and elides the rest:
//
//   - multi-channel / multi-rank / multi-bank topology with row
//     buffers, DDR3-1600 bank timing (row hit vs miss), and shared
//     channel data buses;
//   - FR-FCFS scheduling: per-bank queues serving row-buffer hits
//     first, oldest first among equals (Table 2's controller);
//   - per-rank refresh engines driven by a refresh.Policy, charging
//     tRFC-equivalent rank-blocking time per row refreshed, draining
//     the rank's banks before starting, and closing row buffers;
//   - simple cores replaying synthetic SPEC-like request streams,
//     with a bounded window of outstanding reads (an MLP proxy for
//     the paper's 3-wide out-of-order cores) and posted writes;
//   - a coarse DRAM energy account (activate/access/refresh +
//     background).
package sim

import (
	"container/heap"
	"fmt"

	"parbor/internal/refresh"
	"parbor/internal/trace"
)

// Config describes one simulation run.
type Config struct {
	// Workload assigns one application per core.
	Workload []trace.App
	// Policy selects the refresh policy.
	Policy refresh.Kind
	// Density selects chip density (rows and tRFC).
	Density Density
	// SimNs is the simulated wall-clock window in nanoseconds.
	// Defaults to 5e6 (5 ms), enough for hundreds of refresh windows.
	SimNs float64
	// Channels, RanksPerChannel, BanksPerRank define the topology;
	// zero values default to the paper's 2 channels x 2 ranks x 8
	// banks.
	Channels        int
	RanksPerChannel int
	BanksPerRank    int
	// WeakRowFrac is the fraction of weak rows (paper: 16.4%).
	// Zero defaults to 0.164.
	WeakRowFrac float64
	// MLP is the maximum outstanding reads per core before the core
	// stalls, a proxy for the instruction window of the paper's
	// 3-wide, 128-entry cores. Zero defaults to 4.
	MLP int
	// PerBankRefresh switches from all-bank refresh (DDR3 REF, the
	// paper's model: the whole rank blocks) to per-bank refresh
	// (LPDDR-style REFpb): each refresh bundle blocks a single bank,
	// rotating round-robin, so the rank's other banks keep serving.
	PerBankRefresh bool
	// Timing overrides the DDR3-1600 defaults when non-zero.
	Timing Timing
	// Seed fixes all stochastic draws.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.SimNs == 0 {
		c.SimNs = 5e6
	}
	if c.Channels == 0 {
		c.Channels = 2
	}
	if c.RanksPerChannel == 0 {
		c.RanksPerChannel = 2
	}
	if c.BanksPerRank == 0 {
		c.BanksPerRank = 8
	}
	if c.WeakRowFrac == 0 {
		c.WeakRowFrac = 0.164
	}
	if c.MLP == 0 {
		c.MLP = 4
	}
	if c.Timing == (Timing{}) {
		c.Timing = DDR3_1600()
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Workload) == 0 {
		return fmt.Errorf("sim: empty workload")
	}
	if c.SimNs < 0 || c.Channels < 0 || c.RanksPerChannel < 0 || c.BanksPerRank < 0 {
		return fmt.Errorf("sim: negative dimension in config")
	}
	if c.WeakRowFrac < 0 || c.WeakRowFrac > 1 {
		return fmt.Errorf("sim: WeakRowFrac %v out of [0,1]", c.WeakRowFrac)
	}
	if c.MLP < 0 {
		return fmt.Errorf("sim: negative MLP %d", c.MLP)
	}
	if _, err := c.Density.TRFCns(); err != nil {
		return err
	}
	switch c.Policy {
	case refresh.Uniform, refresh.RAIDR, refresh.DCREF:
	default:
		return fmt.Errorf("sim: unknown policy %d", int(c.Policy))
	}
	return nil
}

// Result aggregates one run.
type Result struct {
	// IPC is each core's instructions per CPU cycle.
	IPC []float64
	// Instructions and Requests are totals across cores.
	Instructions int64
	Requests     int64
	// RowHits / RowMisses split the request stream.
	RowHits   int64
	RowMisses int64
	// Refreshes is the number of row-refresh operations issued.
	Refreshes int64
	// RefreshBusyNs is the cumulative rank-blocked time due to
	// refresh.
	RefreshBusyNs float64
	// AvgReadLatencyNs is the mean issue-to-completion latency of
	// reads.
	AvgReadLatencyNs float64
	// FastRowFrac is the fraction of rows on the fast (64 ms)
	// interval at the end of the run.
	FastRowFrac float64
	// Energy is the coarse DRAM energy account.
	Energy Energy
}

// slotsPerInterval is the number of tREFI slots per 64 ms refresh
// interval (64 ms / 7.8125 us = 8192, the DDR3 architecture constant).
const slotsPerInterval = 8192

// slowRatio is the slow-bin multiple: 256 ms / 64 ms.
const slowRatio = 4

type eventKind uint8

const (
	evCore eventKind = iota + 1
	evRefresh
	evComplete
	evBankKick
)

// event is a heap entry.
type event struct {
	at   float64
	kind eventKind
	id   int // core, rank or bank index, by kind
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// pendingReq is one queued memory request.
type pendingReq struct {
	row     int64
	write   bool
	core    int
	readyAt float64
	seq     int64
}

type bank struct {
	queue     []pendingReq
	busyUntil float64
	openRow   int64
	hasOpen   bool
	rank      int
	channel   int
}

type rank struct {
	policy       *refresh.Policy
	refreshUntil float64
	refreshAcc   float64
	writeSeq     uint64
	nextRefBank  int // round-robin cursor for per-bank refresh
}

type coreState struct {
	stream      *trace.Stream
	insts       int64
	outstanding int
	stalled     bool
}

// simState is the run-scoped simulation state.
type simState struct {
	cfg   Config
	tm    Timing
	h     *eventHeap
	banks []bank
	ranks []rank
	cores []coreState
	chans []float64 // per-channel bus busy-until

	rowsPerBank     int
	perRowRefreshNs float64
	seq             int64
	footprintBase   []int64

	res          *Result
	readLatSumNs float64
	readCount    int64
	activates    int64
}

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rowsPerBank, err := cfg.Density.RowsPerBank()
	if err != nil {
		return nil, err
	}
	trfc, err := cfg.Density.TRFCns()
	if err != nil {
		return nil, err
	}
	nRanks := cfg.Channels * cfg.RanksPerChannel
	nBanks := nRanks * cfg.BanksPerRank
	rowsPerRank := int64(cfg.BanksPerRank) * int64(rowsPerBank)

	s := &simState{
		cfg:         cfg,
		tm:          cfg.Timing,
		h:           &eventHeap{},
		banks:       make([]bank, nBanks),
		ranks:       make([]rank, nRanks),
		cores:       make([]coreState, len(cfg.Workload)),
		chans:       make([]float64, cfg.Channels),
		rowsPerBank: rowsPerBank,
		// One REF covers rowsPerRank/slotsPerInterval rows at a cost
		// of tRFC, so charging per row keeps the baseline identical
		// to standard auto-refresh.
		perRowRefreshNs: trfc * slotsPerInterval / float64(rowsPerRank),
		res:             &Result{IPC: make([]float64, len(cfg.Workload))},
	}
	for b := range s.banks {
		rankID := b / cfg.BanksPerRank
		s.banks[b].rank = rankID
		s.banks[b].channel = rankID / cfg.RanksPerChannel
	}
	for r := range s.ranks {
		pol, err := refresh.New(refresh.Config{
			Kind:             cfg.Policy,
			TotalRows:        rowsPerRank,
			WeakRowFrac:      cfg.WeakRowFrac,
			InitialMatchProb: trace.AverageContentMatchProb(cfg.Workload),
			Seed:             cfg.Seed + uint64(r)*0x9e37,
		})
		if err != nil {
			return nil, err
		}
		s.ranks[r] = rank{policy: pol}
	}
	for c := range s.cores {
		stream, err := trace.NewStream(cfg.Workload[c], cfg.Seed+uint64(c)*31)
		if err != nil {
			return nil, err
		}
		s.cores[c] = coreState{stream: stream}
	}
	// Stagger per-core address spaces so cores do not collide on the
	// same rows.
	s.footprintBase = make([]int64, len(s.cores))
	base := int64(0)
	for c, app := range cfg.Workload {
		s.footprintBase[c] = base
		base += int64(app.FootprintRows)
	}

	heap.Init(s.h)
	for c := range s.cores {
		heap.Push(s.h, event{at: 0, kind: evCore, id: c})
	}
	for r := range s.ranks {
		heap.Push(s.h, event{at: s.tm.TREFI, kind: evRefresh, id: r})
	}
	s.loop()

	cpuCycles := cfg.SimNs * s.tm.CPUGHz
	for c := range s.cores {
		s.res.IPC[c] = float64(s.cores[c].insts) / cpuCycles
		s.res.Instructions += s.cores[c].insts
	}
	var fast, total int64
	for r := range s.ranks {
		fast += s.ranks[r].policy.FastRows()
		total += s.ranks[r].policy.TotalRows()
	}
	s.res.FastRowFrac = float64(fast) / float64(total)
	if s.readCount > 0 {
		s.res.AvgReadLatencyNs = s.readLatSumNs / float64(s.readCount)
	}
	s.res.Energy = accumulateEnergy(s.activates, s.res.Requests, s.res.Refreshes, cfg.SimNs, nRanks)
	return s.res, nil
}

func (s *simState) loop() {
	for s.h.Len() > 0 {
		ev := heap.Pop(s.h).(event)
		if ev.at >= s.cfg.SimNs {
			continue // drain without processing past the window
		}
		switch ev.kind {
		case evRefresh:
			s.onRefresh(ev)
		case evCore:
			s.onCore(ev)
		case evComplete:
			s.onComplete(ev)
		case evBankKick:
			s.serviceBank(ev.id, ev.at)
		}
	}
}

func (s *simState) onRefresh(ev event) {
	r := &s.ranks[ev.id]
	r.refreshAcc += r.policy.RowsDuePerTick(slotsPerInterval, slowRatio)
	n := int64(r.refreshAcc)
	r.refreshAcc -= float64(n)
	if n > 0 {
		cost := float64(n) * s.perRowRefreshNs
		if s.cfg.PerBankRefresh {
			// REFpb: block one bank only, rotating round-robin; the
			// rest of the rank keeps serving requests.
			bankID := ev.id*s.cfg.BanksPerRank + r.nextRefBank
			r.nextRefBank = (r.nextRefBank + 1) % s.cfg.BanksPerRank
			bk := &s.banks[bankID]
			start := ev.at
			if bk.busyUntil > start {
				start = bk.busyUntil
			}
			bk.busyUntil = start + cost
			bk.hasOpen = false
			s.res.Refreshes += n
			s.res.RefreshBusyNs += cost
			heap.Push(s.h, event{at: bk.busyUntil, kind: evBankKick, id: bankID})
		} else {
			// A rank refresh needs every bank precharged: it cannot
			// start until in-flight requests drain.
			start := ev.at
			if r.refreshUntil > start {
				start = r.refreshUntil
			}
			for b := 0; b < s.cfg.BanksPerRank; b++ {
				bk := &s.banks[ev.id*s.cfg.BanksPerRank+b]
				if bk.busyUntil > start {
					start = bk.busyUntil
				}
			}
			r.refreshUntil = start + cost
			s.res.Refreshes += n
			s.res.RefreshBusyNs += cost
			// Refresh precharges the rank: every open row closes, and
			// the banks need a kick when the rank frees.
			for b := 0; b < s.cfg.BanksPerRank; b++ {
				bankID := ev.id*s.cfg.BanksPerRank + b
				s.banks[bankID].hasOpen = false
				heap.Push(s.h, event{at: r.refreshUntil, kind: evBankKick, id: bankID})
			}
		}
	}
	heap.Push(s.h, event{at: ev.at + s.tm.TREFI, kind: evRefresh, id: ev.id})
}

func (s *simState) onCore(ev event) {
	c := &s.cores[ev.id]
	if c.outstanding >= s.cfg.MLP {
		// Window full: stall until the next read completes.
		c.stalled = true
		return
	}
	req := c.stream.Next()
	c.insts += int64(req.InstGap)
	s.res.Requests++

	bankID, row := s.mapAddress(ev.id, req.Row)
	issueAt := ev.at + s.tm.instNs(req.InstGap)

	if req.Write {
		rk := &s.ranks[s.banks[bankID].rank]
		rk.writeSeq++
		rankRow := int64(bankID%s.cfg.BanksPerRank)*int64(s.rowsPerBank) + row
		rk.policy.OnWrite(rankRow, s.cfg.Workload[ev.id].ContentMatchProb, rk.writeSeq)
	} else {
		c.outstanding++
	}
	s.seq++
	s.banks[bankID].queue = append(s.banks[bankID].queue, pendingReq{
		row:     row,
		write:   req.Write,
		core:    ev.id,
		readyAt: issueAt,
		seq:     s.seq,
	})
	heap.Push(s.h, event{at: issueAt, kind: evBankKick, id: bankID})
	// The core keeps issuing after the compute gap.
	heap.Push(s.h, event{at: issueAt, kind: evCore, id: ev.id})
}

func (s *simState) onComplete(ev event) {
	c := &s.cores[ev.id]
	c.outstanding--
	if c.stalled {
		c.stalled = false
		heap.Push(s.h, event{at: ev.at, kind: evCore, id: ev.id})
	}
}

// mapAddress places an app row into the physical hierarchy,
// interleaving consecutive rows across channels, ranks, then banks.
func (s *simState) mapAddress(core int, appRow int64) (bankID int, row int64) {
	totalRows := int64(len(s.banks)) * int64(s.rowsPerBank)
	global := (s.footprintBase[core] + appRow) % totalRows
	ch := global % int64(s.cfg.Channels)
	rk := (global / int64(s.cfg.Channels)) % int64(s.cfg.RanksPerChannel)
	bk := (global / int64(s.cfg.Channels*s.cfg.RanksPerChannel)) % int64(s.cfg.BanksPerRank)
	row = global / int64(s.cfg.Channels*s.cfg.RanksPerChannel*s.cfg.BanksPerRank) % int64(s.rowsPerBank)
	rankID := int(ch)*s.cfg.RanksPerChannel + int(rk)
	return rankID*s.cfg.BanksPerRank + int(bk), row
}

// serviceBank starts the best ready request (FR-FCFS: row hits first,
// oldest among equals) if the bank is free.
func (s *simState) serviceBank(bankID int, now float64) {
	bk := &s.banks[bankID]
	if bk.busyUntil > now || len(bk.queue) == 0 {
		return
	}
	rk := &s.ranks[bk.rank]
	if rk.refreshUntil > now {
		// The rank is refreshing; a kick is scheduled for when it
		// frees.
		return
	}

	best := -1
	for i := range bk.queue {
		req := &bk.queue[i]
		if req.readyAt > now {
			continue
		}
		if best == -1 {
			best = i
			continue
		}
		bi := &bk.queue[best]
		hitBest := bk.hasOpen && bi.row == bk.openRow
		hitCand := bk.hasOpen && req.row == bk.openRow
		if hitCand != hitBest {
			if hitCand {
				best = i
			}
			continue
		}
		if req.seq < bi.seq {
			best = i
		}
	}
	if best == -1 {
		// Nothing ready yet: kick again at the earliest ready time.
		earliest := bk.queue[0].readyAt
		for _, req := range bk.queue[1:] {
			if req.readyAt < earliest {
				earliest = req.readyAt
			}
		}
		heap.Push(s.h, event{at: earliest, kind: evBankKick, id: bankID})
		return
	}
	req := bk.queue[best]
	bk.queue = append(bk.queue[:best], bk.queue[best+1:]...)

	var service float64
	if bk.hasOpen && bk.openRow == req.row {
		service = s.tm.hitLatency()
		s.res.RowHits++
	} else {
		service = s.tm.missLatency()
		s.res.RowMisses++
		s.activates++
	}
	bk.openRow = req.row
	bk.hasOpen = true

	done := now + service
	// The 64 B burst also needs the channel's shared data bus.
	if min := s.chans[bk.channel] + s.tm.TBL; done < min {
		done = min
	}
	s.chans[bk.channel] = done
	bk.busyUntil = done

	if !req.write {
		s.readLatSumNs += done - req.readyAt
		s.readCount++
		heap.Push(s.h, event{at: done, kind: evComplete, id: req.core})
	}
	heap.Push(s.h, event{at: done, kind: evBankKick, id: bankID})
}
