package sim

// Energy is a coarse DRAM energy account in nanojoules, in the style
// of DRAMPower-class models: per-operation charges plus standby
// background power. The constants are representative DDR3 x8-rank
// values; absolute joules are indicative, but the refresh share —
// what the refresh policies change — is modeled directly from the
// operation counts.
type Energy struct {
	// ActivateNJ covers row activate+precharge pairs.
	ActivateNJ float64
	// AccessNJ covers read/write bursts.
	AccessNJ float64
	// RefreshNJ covers row refreshes.
	RefreshNJ float64
	// BackgroundNJ covers standby power over the simulated window.
	BackgroundNJ float64
}

// Total returns the sum.
func (e Energy) Total() float64 {
	return e.ActivateNJ + e.AccessNJ + e.RefreshNJ + e.BackgroundNJ
}

// Per-operation energy constants (nanojoules) and background power
// (watts per rank) for a DDR3 x8 rank.
const (
	energyActivateNJ    = 2.0
	energyAccessNJ      = 1.2
	energyRefreshRowNJ  = 1.5
	backgroundWattsRank = 0.10
)

// accumulateEnergy derives the account from operation counts.
func accumulateEnergy(activates, accesses, refreshes int64, simNs float64, ranks int) Energy {
	return Energy{
		ActivateNJ:   float64(activates) * energyActivateNJ,
		AccessNJ:     float64(accesses) * energyAccessNJ,
		RefreshNJ:    float64(refreshes) * energyRefreshRowNJ,
		BackgroundNJ: backgroundWattsRank * float64(ranks) * simNs, // W * ns = nJ
	}
}
