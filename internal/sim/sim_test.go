package sim

import (
	"math"
	"testing"

	"parbor/internal/refresh"
	"parbor/internal/trace"
)

// quickCfg keeps unit-test runs fast: short window, small density.
func quickCfg(policy refresh.Kind) Config {
	return Config{
		Workload: trace.Workloads(1, 4, 3)[0],
		Policy:   policy,
		Density:  Density16Gbit,
		SimNs:    1e6, // 1 ms
		Seed:     11,
	}
}

func sumIPC(r *Result) float64 {
	s := 0.0
	for _, v := range r.IPC {
		s += v
	}
	return s
}

func TestRunBasicInvariants(t *testing.T) {
	r, err := Run(quickCfg(refresh.Uniform))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(r.IPC) != 4 {
		t.Fatalf("IPC entries = %d, want 4", len(r.IPC))
	}
	for c, ipc := range r.IPC {
		if ipc <= 0 || ipc > 3.2 {
			t.Errorf("core %d IPC = %v, want in (0, 3.2]", c, ipc)
		}
	}
	if r.Requests == 0 || r.Instructions == 0 {
		t.Error("no work simulated")
	}
	serviced := r.RowHits + r.RowMisses
	if serviced > r.Requests {
		t.Errorf("serviced %d > issued %d", serviced, r.Requests)
	}
	// A few requests may still sit in bank queues when the window
	// closes, but not more than the queues can hold.
	if r.Requests-serviced > 256 {
		t.Errorf("%d requests never serviced", r.Requests-serviced)
	}
	if r.AvgReadLatencyNs <= 0 {
		t.Error("no read latency recorded")
	}
	if r.Energy.Total() <= 0 || r.Energy.RefreshNJ <= 0 {
		t.Errorf("degenerate energy account: %+v", r.Energy)
	}
	if r.Refreshes == 0 || r.RefreshBusyNs == 0 {
		t.Error("no refreshes simulated")
	}
	if r.FastRowFrac != 1.0 {
		t.Errorf("uniform FastRowFrac = %v, want 1", r.FastRowFrac)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(quickCfg(refresh.DCREF))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(quickCfg(refresh.DCREF))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Requests != b.Requests || a.Refreshes != b.Refreshes || sumIPC(a) != sumIPC(b) {
		t.Error("identical configs produced different results")
	}
}

// TestPolicyOrdering verifies the central Figure 16 relationships:
// refreshes(DC-REF) < refreshes(RAIDR) < refreshes(baseline) and the
// reverse ordering for performance.
func TestPolicyOrdering(t *testing.T) {
	var results []*Result
	for _, k := range refresh.Kinds() {
		r, err := Run(quickCfg(k))
		if err != nil {
			t.Fatalf("Run(%v): %v", k, err)
		}
		results = append(results, r)
	}
	base, raidr, dcref := results[0], results[1], results[2]
	if !(dcref.Refreshes < raidr.Refreshes && raidr.Refreshes < base.Refreshes) {
		t.Errorf("refresh ordering wrong: dcref=%d raidr=%d base=%d",
			dcref.Refreshes, raidr.Refreshes, base.Refreshes)
	}
	if !(sumIPC(dcref) > sumIPC(base)) {
		t.Errorf("performance ordering wrong: dcref=%v base=%v", sumIPC(dcref), sumIPC(base))
	}
	if !(sumIPC(raidr) > sumIPC(base)) {
		t.Errorf("performance ordering wrong: raidr=%v base=%v", sumIPC(raidr), sumIPC(base))
	}
}

// TestRefreshReductionMatchesPaper checks the two headline refresh
// numbers of Section 8 in a full simulation: DC-REF performs about
// 73% fewer refreshes than the baseline and about 27.6% fewer than
// RAIDR.
func TestRefreshReductionMatchesPaper(t *testing.T) {
	run := func(k refresh.Kind) *Result {
		cfg := quickCfg(k)
		cfg.SimNs = 2e6
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run(%v): %v", k, err)
		}
		return r
	}
	base := run(refresh.Uniform)
	raidr := run(refresh.RAIDR)
	dcref := run(refresh.DCREF)

	vsBase := 1 - float64(dcref.Refreshes)/float64(base.Refreshes)
	if math.Abs(vsBase-0.73) > 0.04 {
		t.Errorf("DC-REF refresh reduction vs baseline = %.3f, want about 0.73", vsBase)
	}
	vsRAIDR := 1 - float64(dcref.Refreshes)/float64(raidr.Refreshes)
	if math.Abs(vsRAIDR-0.276) > 0.06 {
		t.Errorf("DC-REF refresh reduction vs RAIDR = %.3f, want about 0.276", vsRAIDR)
	}
}

// TestDensityScaling: 32 Gbit chips pay more for refresh, so the
// baseline slows down and DC-REF's relative benefit grows (the trend
// the paper's Figure 16 argument rests on).
func TestDensityScaling(t *testing.T) {
	imp := func(d Density) float64 {
		base := quickCfg(refresh.Uniform)
		base.Density = d
		dc := quickCfg(refresh.DCREF)
		dc.Density = d
		rb, err := Run(base)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		rd, err := Run(dc)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sumIPC(rd)/sumIPC(rb) - 1
	}
	i16 := imp(Density16Gbit)
	i32 := imp(Density32Gbit)
	if i32 <= i16 {
		t.Errorf("DC-REF improvement at 32Gbit (%.3f) should exceed 16Gbit (%.3f)", i32, i16)
	}
	if i32 <= 0.03 {
		t.Errorf("DC-REF improvement at 32Gbit = %.3f, want a substantial gain", i32)
	}
}

func TestDCREFFastRowFraction(t *testing.T) {
	r, err := Run(quickCfg(refresh.DCREF))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Paper: 2.7% of rows on the fast interval on average.
	if r.FastRowFrac < 0.01 || r.FastRowFrac > 0.06 {
		t.Errorf("DC-REF FastRowFrac = %v, want about 0.027-ish", r.FastRowFrac)
	}
}

func TestConfigValidation(t *testing.T) {
	wl := trace.Workloads(1, 1, 1)[0]
	bad := []Config{
		{Workload: nil, Policy: refresh.Uniform, Density: Density16Gbit},
		{Workload: wl, Policy: refresh.Kind(9), Density: Density16Gbit},
		{Workload: wl, Policy: refresh.Uniform, Density: Density(9)},
		{Workload: wl, Policy: refresh.Uniform, Density: Density16Gbit, WeakRowFrac: 2},
		{Workload: wl, Policy: refresh.Uniform, Density: Density16Gbit, MLP: -1},
		{Workload: wl, Policy: refresh.Uniform, Density: Density16Gbit, Channels: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDensityAccessors(t *testing.T) {
	if _, err := Density(0).TRFCns(); err == nil {
		t.Error("invalid density TRFCns accepted")
	}
	if _, err := Density(0).RowsPerBank(); err == nil {
		t.Error("invalid density RowsPerBank accepted")
	}
	if Density16Gbit.String() != "16Gbit" || Density32Gbit.String() != "32Gbit" {
		t.Error("unexpected density names")
	}
	if Density(9).String() != "Density(9)" {
		t.Error("unexpected fallback density name")
	}
	trfc16, _ := Density16Gbit.TRFCns()
	trfc32, _ := Density32Gbit.TRFCns()
	if trfc16 != 590 || trfc32 != 1000 {
		t.Errorf("tRFC = %v/%v, want 590/1000", trfc16, trfc32)
	}
}

// TestMoreIntensiveWorkloadLowerIPC is a sanity check on the core
// model: a memory-hog mix must achieve lower per-core IPC than a
// compute-bound mix.
func TestMoreIntensiveWorkloadLowerIPC(t *testing.T) {
	mcf, _ := trace.AppByName("mcf")
	hmmer, _ := trace.AppByName("hmmer")
	run := func(app trace.App) float64 {
		r, err := Run(Config{
			Workload: []trace.App{app, app, app, app},
			Policy:   refresh.Uniform,
			Density:  Density16Gbit,
			SimNs:    5e5,
			Seed:     2,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sumIPC(r)
	}
	if hog, light := run(mcf), run(hmmer); hog >= light {
		t.Errorf("mcf mix IPC (%v) should be below hmmer mix IPC (%v)", hog, light)
	}
}
