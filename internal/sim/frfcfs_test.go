package sim

import (
	"testing"

	"parbor/internal/refresh"
	"parbor/internal/trace"
)

// TestFRFCFSPrefersRowHits uses a streaming workload (libquantum,
// 95% locality) and a pointer-chasing one (mcf, 20%): the scheduler's
// row-hit preference must show up as a large hit-rate gap.
func TestFRFCFSPrefersRowHits(t *testing.T) {
	hitRate := func(name string) float64 {
		app, err := trace.AppByName(name)
		if err != nil {
			t.Fatalf("AppByName: %v", err)
		}
		res, err := Run(Config{
			Workload: []trace.App{app, app},
			Policy:   refresh.Uniform,
			Density:  Density16Gbit,
			SimNs:    5e5,
			Seed:     3,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return float64(res.RowHits) / float64(res.RowHits+res.RowMisses)
	}
	stream := hitRate("libquantum")
	chase := hitRate("mcf")
	if stream < 0.75 {
		t.Errorf("libquantum hit rate = %.2f, want high", stream)
	}
	if chase > 0.55 {
		t.Errorf("mcf hit rate = %.2f, want low", chase)
	}
	if stream <= chase {
		t.Errorf("hit rates inverted: stream %.2f <= chase %.2f", stream, chase)
	}
}

// TestReadLatencyGrowsUnderLoad: adding cores to the same memory
// system must not reduce average read latency.
func TestReadLatencyGrowsUnderLoad(t *testing.T) {
	lat := func(cores int) float64 {
		app, _ := trace.AppByName("milc")
		wl := make([]trace.App, cores)
		for i := range wl {
			wl[i] = app
		}
		res, err := Run(Config{
			Workload: wl,
			Policy:   refresh.Uniform,
			Density:  Density16Gbit,
			SimNs:    5e5,
			Seed:     4,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.AvgReadLatencyNs
	}
	light, heavy := lat(1), lat(8)
	if heavy < light {
		t.Errorf("read latency fell under load: 1 core %.1f ns, 8 cores %.1f ns", light, heavy)
	}
}

// TestEnergyRefreshShareTracksPolicy: the refresh component of the
// energy account must shrink under DC-REF roughly as much as the
// refresh count does.
func TestEnergyRefreshShareTracksPolicy(t *testing.T) {
	run := func(k refresh.Kind) *Result {
		res, err := Run(quickCfg(k))
		if err != nil {
			t.Fatalf("Run(%v): %v", k, err)
		}
		return res
	}
	base := run(refresh.Uniform)
	dcref := run(refresh.DCREF)
	if dcref.Energy.RefreshNJ >= base.Energy.RefreshNJ {
		t.Errorf("refresh energy did not shrink: %.0f vs %.0f nJ",
			dcref.Energy.RefreshNJ, base.Energy.RefreshNJ)
	}
	ratioEnergy := dcref.Energy.RefreshNJ / base.Energy.RefreshNJ
	ratioCount := float64(dcref.Refreshes) / float64(base.Refreshes)
	if diff := ratioEnergy - ratioCount; diff > 0.01 || diff < -0.01 {
		t.Errorf("refresh energy ratio %.3f diverges from count ratio %.3f", ratioEnergy, ratioCount)
	}
	if dcref.Energy.Total() >= base.Energy.Total() {
		t.Error("total energy did not improve under DC-REF")
	}
}

// TestPerBankRefreshOutperformsAllBank: REFpb keeps the rank's other
// banks serving during refresh, so it must not lose to all-bank
// refresh under the same policy.
func TestPerBankRefreshOutperformsAllBank(t *testing.T) {
	run := func(perBank bool) float64 {
		cfg := quickCfg(refresh.Uniform)
		cfg.Density = Density32Gbit
		cfg.PerBankRefresh = perBank
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sumIPC(res)
	}
	allBank := run(false)
	perBank := run(true)
	if perBank < allBank {
		t.Errorf("REFpb IPC %.3f < all-bank %.3f", perBank, allBank)
	}
}
