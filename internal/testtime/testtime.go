// Package testtime implements the analytic test-time model of the
// paper's Appendix: how long naive O(n^k) neighbor searches and
// PARBOR's test sequence take on real DDR3-1600 hardware. These
// projections motivate the whole work — 49 days for a naive pairwise
// search of a single 8K-cell row versus under a minute for PARBOR.
package testtime

import (
	"fmt"
	"math"
	"time"

	"parbor/internal/dram"
	"parbor/internal/memctl"
)

// Model computes hardware test-time projections.
type Model struct {
	// Timing is the DRAM command timing (defaults to DDR3-1600 via
	// New).
	Timing memctl.Timing
	// RefreshIntervalMs is the retention wait per test (the paper's
	// Appendix uses the nominal 64 ms interval).
	RefreshIntervalMs float64
}

// New returns the Appendix's model: DDR3-1600 timing with a 64 ms
// retention wait per test.
func New() Model {
	return Model{Timing: memctl.DDR3_1600(), RefreshIntervalMs: 64}
}

// perProbe is the duration of one single-cell-pair probe: two cache
// block accesses plus the retention wait. The wait dominates (~64 ms).
func (m Model) perProbe() time.Duration {
	wait := time.Duration(m.RefreshIntervalMs * float64(time.Millisecond))
	return m.Timing.TwoBlockAccessTime() + wait
}

// NaiveSearch returns the time to locate k neighbors of the cells in
// one n-cell row by exhaustive testing: O(n^k) probes, each costing a
// retention wait. For n = 8192: k=1 8.7 min, k=2 49 days, k=3 1115
// years, k=4 9.1 million years (Appendix).
func (m Model) NaiveSearch(n, k int) (time.Duration, error) {
	if n <= 0 || k <= 0 {
		return 0, fmt.Errorf("testtime: n and k must be positive, got n=%d k=%d", n, k)
	}
	probes := math.Pow(float64(n), float64(k))
	ns := probes * float64(m.perProbe())
	if ns > math.MaxInt64 {
		// Beyond time.Duration's ~292-year range; saturate.
		return time.Duration(math.MaxInt64), nil
	}
	return time.Duration(ns), nil
}

// NaiveSearchYears returns the same projection in years, usable
// beyond time.Duration's range.
func (m Model) NaiveSearchYears(n, k int) float64 {
	probes := math.Pow(float64(n), float64(k))
	seconds := probes * m.perProbe().Seconds()
	return seconds / (365 * 24 * 3600)
}

// ParborTime returns the wall-clock estimate for a full PARBOR run of
// `tests` module-wide passes over the given module geometry: the
// Appendix's 32 s for 92 tests and 55 s for 132 tests on a 2 GB
// module.
func (m Model) ParborTime(g dram.Geometry, chips, tests int) time.Duration {
	per := m.Timing.ModulePassTime(g, chips, m.RefreshIntervalMs)
	return time.Duration(tests) * per
}

// PaperModuleGeometry is the 2 GB module of the paper: 8 chips of
// 8 banks x 32K rows x 8K cells.
func PaperModuleGeometry() (dram.Geometry, int) {
	return dram.Geometry{Banks: 8, Rows: 32768, Cols: 8192}, 8
}

// SpeedupVsLinear returns the paper's "90X" headline: the ratio of
// the O(n) per-row linear search (n tests) to PARBOR's recursion
// test count.
func SpeedupVsLinear(rowBits, parborTests int) float64 {
	return float64(rowBits) / float64(parborTests)
}

// SpeedupVsPairwise returns the paper's "745,654X" headline: the
// ratio of the O(n^2) pairwise search (n^2 tests) to PARBOR's
// recursion test count.
func SpeedupVsPairwise(rowBits, parborTests int) float64 {
	return float64(rowBits) * float64(rowBits) / float64(parborTests)
}
