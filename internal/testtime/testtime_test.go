package testtime

import (
	"math"
	"testing"
	"time"
)

// TestAppendixProjections pins the Appendix's headline numbers for an
// 8K-cell row at a 64 ms refresh interval.
func TestAppendixProjections(t *testing.T) {
	m := New()
	const n = 8192

	linear, err := m.NaiveSearch(n, 1)
	if err != nil {
		t.Fatalf("NaiveSearch: %v", err)
	}
	if lo, hi := 8*time.Minute, 9*time.Minute; linear < lo || linear > hi {
		t.Errorf("O(n) search = %v, want about 8.73 min", linear)
	}

	pairs, err := m.NaiveSearch(n, 2)
	if err != nil {
		t.Fatalf("NaiveSearch: %v", err)
	}
	days := pairs.Hours() / 24
	if days < 48 || days < 0 || days > 51 {
		t.Errorf("O(n^2) search = %.1f days, want about 49", days)
	}

	if years := m.NaiveSearchYears(n, 3); years < 1050 || years > 1200 {
		t.Errorf("O(n^3) search = %.0f years, want about 1115", years)
	}
	if years := m.NaiveSearchYears(n, 4); years < 8.5e6 || years > 9.8e6 {
		t.Errorf("O(n^4) search = %.2g years, want about 9.1M", years)
	}
}

func TestNaiveSearchSaturates(t *testing.T) {
	m := New()
	d, err := m.NaiveSearch(8192, 4)
	if err != nil {
		t.Fatalf("NaiveSearch: %v", err)
	}
	if d != time.Duration(math.MaxInt64) {
		t.Errorf("k=4 projection = %v, want saturation", d)
	}
}

func TestNaiveSearchErrors(t *testing.T) {
	m := New()
	if _, err := m.NaiveSearch(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := m.NaiveSearch(10, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

// TestParborTimeMatchesAppendix checks the 32 s / 55 s projections for
// 92 and 132 tests on the paper's 2 GB module.
func TestParborTimeMatchesAppendix(t *testing.T) {
	m := New()
	g, chips := PaperModuleGeometry()
	if got := m.ParborTime(g, chips, 92); got < 36*time.Second || got > 40*time.Second {
		t.Errorf("92 tests = %v, want about 38s", got)
	}
	if got := m.ParborTime(g, chips, 132); got < 52*time.Second || got > 57*time.Second {
		t.Errorf("132 tests = %v, want about 55s", got)
	}
}

// TestSpeedups pins the paper's headline reductions: "a 90X and
// 745,654X reduction compared to tests with O(n) and O(n^2)
// complexity".
func TestSpeedups(t *testing.T) {
	if got := SpeedupVsLinear(8192, 90); math.Abs(got-91) > 1 {
		t.Errorf("linear speedup = %.0f, want about 90X", got)
	}
	if got := SpeedupVsPairwise(8192, 90); math.Abs(got-745654) > 1000 {
		t.Errorf("pairwise speedup = %.0f, want about 745,654X", got)
	}
	// The paper's 745,654X is 8192^2/90 = 745,654.
	if got := SpeedupVsPairwise(8192, 90); math.Floor(got) != 745654 {
		t.Errorf("pairwise speedup = %v, want 745654", got)
	}
}
