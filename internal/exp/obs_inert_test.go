package exp

import (
	"reflect"
	"testing"

	"parbor/internal/obs"
	"parbor/internal/scramble"
)

// TestObsInstrumentationInert is the inertness property of the
// observability layer: attaching a Recorder must not change a single
// detection outcome. For every vendor and several seeds, the full
// pipeline runs twice — once with a nil Recorder, once with a live
// Collector — and every part of the result, including the exact
// failure populations, must be identical.
func TestObsInstrumentationInert(t *testing.T) {
	o := Options{RowsPerChip: 192, Chips: 2, Seed: 0}
	for _, v := range scramble.Vendors() {
		for _, seed := range []uint64{1, 42} {
			o.Seed = seed

			plain := o
			plain.Recorder = nil
			instrumented := o
			col := obs.NewCollector()
			instrumented.Recorder = col

			runOnce := func(opt Options) interface{} {
				tester, _, err := newTester(moduleName(v, 0), v, opt, moduleSeed(opt.Seed, v, 0))
				if err != nil {
					t.Fatalf("vendor %v seed %d: newTester: %v", v, seed, err)
				}
				rep, err := tester.Run()
				if err != nil {
					t.Fatalf("vendor %v seed %d: Run: %v", v, seed, err)
				}
				return rep
			}
			a := runOnce(plain)
			b := runOnce(instrumented)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("vendor %v seed %d: instrumented run diverges from plain run", v, seed)
			}
			if col.CommandCount(obs.CmdActivate) == 0 {
				t.Errorf("vendor %v seed %d: collector attached but recorded nothing", v, seed)
			}
		}
	}
}

// TestObsInertUnderParallelism drives the concurrent path: Fig12
// measures modules in parallel, all feeding one shared Collector.
// Results must match the uninstrumented run, and under -race this
// doubles as the data-race check for the atomic counter paths.
func TestObsInertUnderParallelism(t *testing.T) {
	o := Options{RowsPerChip: 128, Chips: 2, ModulesPerVendor: 2, Seed: 42}

	plain, err := Fig12(o)
	if err != nil {
		t.Fatalf("Fig12 (plain): %v", err)
	}
	col := obs.NewCollector()
	o.Recorder = col
	instrumented, err := Fig12(o)
	if err != nil {
		t.Fatalf("Fig12 (instrumented): %v", err)
	}
	if !reflect.DeepEqual(plain, instrumented) {
		t.Errorf("instrumented Fig12 diverges:\n  plain:        %+v\n  instrumented: %+v", plain, instrumented)
	}
	if err := col.Snapshot("inert-test").Reconcile(); err != nil {
		t.Errorf("parallel instrumented run does not reconcile: %v", err)
	}
}
