package exp

import (
	"context"
	"fmt"
	"strings"

	"parbor/internal/memctl"
	"parbor/internal/patterns"
	"parbor/internal/retention"
	"parbor/internal/scramble"
)

// RetentionRow is one (module, pattern set) retention profile
// summary.
type RetentionRow struct {
	Module   string
	Patterns string
	Tests    int
	// WeakFrac maps a refresh-interval threshold (ms) to the measured
	// fraction of rows failing below it.
	WeakFrac map[float64]float64
}

// RetentionThresholds are the reporting thresholds (256 ms is RAIDR's
// bin boundary).
var RetentionThresholds = []float64{256, 512, 1024, 4096}

// Retention runs the supporting experiment behind the paper's
// motivation for detection-driven profiling (Sections 1 and 8):
// per-row retention profiles measured with naive solid patterns
// versus PARBOR's neighbor-aware patterns. The naive profile misses
// every coupling failure and reports rows healthier than they are —
// exactly the silent-corruption risk the paper warns about for
// mechanisms like RAIDR when they profile without neighbor knowledge.
func Retention(o Options) ([]RetentionRow, error) {
	return RetentionCtx(context.Background(), o)
}

// RetentionCtx is Retention with cooperative cancellation.
func RetentionCtx(ctx context.Context, o Options) ([]RetentionRow, error) {
	o = o.withDefaults()
	var rows []RetentionRow
	for _, v := range scramble.Vendors() {
		name := moduleName(v, 0)
		seed := moduleSeed(o.Seed, v, 0)

		// Detect the distances first (on a twin), then profile with
		// both pattern sets on fresh twins.
		tester, _, err := newTester(name, v, o, seed)
		if err != nil {
			return nil, err
		}
		nr, err := tester.DetectNeighborsCtx(ctx)
		if err != nil {
			return nil, fmt.Errorf("exp: retention, module %s: %w", name, err)
		}
		aware, err := patterns.NeighborAware(nr.Distances, scramble.DefaultChunkBits)
		if err != nil {
			return nil, err
		}
		sets := []struct {
			label string
			pats  []patterns.Pattern
		}{
			{label: "solid (naive)", pats: []patterns.Pattern{patterns.Solid()}},
			{label: "neighbor-aware", pats: aware},
		}
		for _, set := range sets {
			mod, err := newModule(name, v, o, seed)
			if err != nil {
				return nil, err
			}
			host, err := memctl.NewHostWithConfig(mod, memctl.HostConfig{Recorder: o.Recorder})
			if err != nil {
				return nil, err
			}
			profiler, err := retention.New(host, retention.Config{MinMs: 64, MaxMs: 4096})
			if err != nil {
				return nil, err
			}
			profile, err := profiler.ProfileModuleCtx(ctx, set.pats)
			if err != nil {
				return nil, fmt.Errorf("exp: retention, module %s (%s): %w", name, set.label, err)
			}
			row := RetentionRow{
				Module:   name,
				Patterns: set.label,
				Tests:    profile.Tests,
				WeakFrac: make(map[float64]float64, len(RetentionThresholds)),
			}
			for _, th := range RetentionThresholds {
				row.WeakFrac[th] = profile.WeakRowFraction(th)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatRetention renders the supporting experiment.
func FormatRetention(rows []RetentionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Supporting experiment: retention profiling, naive vs neighbor-aware patterns\n")
	fmt.Fprintf(&b, "%-8s%-18s%8s", "Module", "Patterns", "Tests")
	for _, th := range RetentionThresholds {
		fmt.Fprintf(&b, "%12s", fmt.Sprintf("<%.0fms%%", th))
	}
	fmt.Fprintf(&b, "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s%-18s%8d", r.Module, r.Patterns, r.Tests)
		for _, th := range RetentionThresholds {
			fmt.Fprintf(&b, "%12.2f", 100*r.WeakFrac[th])
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "A solid-pattern profile never applies the worst-case coupling pattern,\n")
	fmt.Fprintf(&b, "so it reports rows healthier than they are; refresh mechanisms binned\n")
	fmt.Fprintf(&b, "on it would corrupt data silently.\n")
	return b.String()
}
