package exp

import (
	"context"
	"fmt"
	"strings"

	"parbor/internal/metrics"
	"parbor/internal/refresh"
	"parbor/internal/sim"
	"parbor/internal/trace"
)

// Fig16Options scales the DC-REF experiment.
type Fig16Options struct {
	// Workloads is the number of multi-programmed mixes (paper: 32).
	Workloads int
	// Cores per mix (paper: 8).
	Cores int
	// SimNs is the simulated window per run.
	SimNs float64
	// Densities to evaluate (default 16 and 32 Gbit).
	Densities []sim.Density
	// Seed fixes workload assignment and simulation draws.
	Seed uint64
}

func (o Fig16Options) withDefaults() Fig16Options {
	if o.Workloads == 0 {
		o.Workloads = 32
	}
	if o.Cores == 0 {
		o.Cores = 8
	}
	if o.SimNs == 0 {
		o.SimNs = 2e6
	}
	if len(o.Densities) == 0 {
		o.Densities = []sim.Density{sim.Density16Gbit, sim.Density32Gbit}
	}
	return o
}

// Fig16Row is one workload's weighted speedups under each policy.
type Fig16Row struct {
	Workload int
	Density  sim.Density
	// WS maps each policy to the workload's weighted speedup.
	WSBase  float64
	WSRAIDR float64
	WSDCREF float64
	// Refreshes per policy.
	RefBase  int64
	RefRAIDR int64
	RefDCREF int64
	// FastRowFrac of DC-REF at the end of the run.
	DCREFFastFrac float64
	// DRAM energy per instruction per policy (nanojoules/instruction):
	// the efficiency metric — absolute energy is misleading when the
	// faster policy also retires more work.
	EPIBase  float64
	EPIDCREF float64
}

// Fig16Summary aggregates one density's results.
type Fig16Summary struct {
	Density sim.Density
	// Percentage weighted-speedup improvements.
	DCREFvsBase  float64
	RAIDRvsBase  float64
	DCREFvsRAIDR float64
	// Percentage refresh reductions.
	RefReductionVsBase  float64
	RefReductionVsRAIDR float64
	// Mean DC-REF fast-row fraction (paper: 2.7%).
	DCREFFastFrac float64
	// Percentage DRAM energy-per-instruction saving of DC-REF over
	// the baseline.
	EnergySaving float64
}

// Fig16 reproduces Figure 16: DC-REF vs RAIDR vs the uniform 64 ms
// baseline across multi-programmed workloads and chip densities.
func Fig16(o Fig16Options) ([]Fig16Row, []Fig16Summary, error) {
	return Fig16Ctx(context.Background(), o)
}

// Fig16Ctx is Fig16 with cooperative cancellation: a done ctx stops
// dispatching workload cells (in-flight simulator runs finish).
func Fig16Ctx(ctx context.Context, o Fig16Options) ([]Fig16Row, []Fig16Summary, error) {
	o = o.withDefaults()
	mixes := trace.Workloads(o.Workloads, o.Cores, o.Seed)

	// IPC when running alone on the baseline system, per app and
	// density — the weighted-speedup denominator.
	type aloneKey struct {
		app     string
		density sim.Density
	}
	alone := make(map[aloneKey]float64)
	aloneIPC := func(app trace.App, d sim.Density) (float64, error) {
		key := aloneKey{app: app.Name, density: d}
		if ipc, ok := alone[key]; ok {
			return ipc, nil
		}
		res, err := sim.Run(sim.Config{
			Workload: []trace.App{app},
			Policy:   refresh.Uniform,
			Density:  d,
			SimNs:    o.SimNs,
			Seed:     o.Seed,
		})
		if err != nil {
			return 0, err
		}
		alone[key] = res.IPC[0]
		return res.IPC[0], nil
	}

	// Resolve the alone-IPC cache serially (few distinct apps), then
	// measure the workload grid in parallel.
	for _, d := range o.Densities {
		for _, mix := range mixes {
			for _, app := range mix {
				if _, err := aloneIPC(app, d); err != nil {
					return nil, nil, fmt.Errorf("exp: figure 16, alone run %s/%v: %w", app.Name, d, err)
				}
			}
		}
	}
	type cell struct {
		density sim.Density
		mix     int
	}
	var grid []cell
	for _, d := range o.Densities {
		for w := range mixes {
			grid = append(grid, cell{density: d, mix: w})
		}
	}
	rows := make([]Fig16Row, len(grid))
	err := parallelMapCtx(ctx, len(grid), func(i int) error {
		d, w := grid[i].density, grid[i].mix
		mix := mixes[w]
		aloneIPCs := make([]float64, len(mix))
		for c, app := range mix {
			aloneIPCs[c] = alone[aloneKey{app: app.Name, density: d}]
		}
		row := Fig16Row{Workload: w, Density: d}
		for _, k := range refresh.Kinds() {
			res, err := sim.Run(sim.Config{
				Workload: mix,
				Policy:   k,
				Density:  d,
				SimNs:    o.SimNs,
				Seed:     o.Seed + uint64(w),
			})
			if err != nil {
				return fmt.Errorf("exp: figure 16, workload %d, %v: %w", w, k, err)
			}
			ws, err := metrics.WeightedSpeedup(res.IPC, aloneIPCs)
			if err != nil {
				return err
			}
			switch k {
			case refresh.Uniform:
				row.WSBase, row.RefBase = ws, res.Refreshes
				row.EPIBase = res.Energy.Total() / float64(res.Instructions)
			case refresh.RAIDR:
				row.WSRAIDR, row.RefRAIDR = ws, res.Refreshes
			case refresh.DCREF:
				row.WSDCREF, row.RefDCREF = ws, res.Refreshes
				row.DCREFFastFrac = res.FastRowFrac
				row.EPIDCREF = res.Energy.Total() / float64(res.Instructions)
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return rows, Summarize(rows), nil
}

// Summarize aggregates Fig16 rows per density.
func Summarize(rows []Fig16Row) []Fig16Summary {
	byDensity := map[sim.Density][]Fig16Row{}
	var order []sim.Density
	for _, r := range rows {
		if _, ok := byDensity[r.Density]; !ok {
			order = append(order, r.Density)
		}
		byDensity[r.Density] = append(byDensity[r.Density], r)
	}
	var out []Fig16Summary
	for _, d := range order {
		rs := byDensity[d]
		var dcrefVsBase, raidrVsBase, dcrefVsRAIDR, fast, energy []float64
		var refBase, refRAIDR, refDCREF int64
		for _, r := range rs {
			dcrefVsBase = append(dcrefVsBase, r.WSDCREF/r.WSBase-1)
			raidrVsBase = append(raidrVsBase, r.WSRAIDR/r.WSBase-1)
			dcrefVsRAIDR = append(dcrefVsRAIDR, r.WSDCREF/r.WSRAIDR-1)
			fast = append(fast, r.DCREFFastFrac)
			if r.EPIBase > 0 {
				energy = append(energy, 1-r.EPIDCREF/r.EPIBase)
			}
			refBase += r.RefBase
			refRAIDR += r.RefRAIDR
			refDCREF += r.RefDCREF
		}
		out = append(out, Fig16Summary{
			Density:             d,
			DCREFvsBase:         100 * metrics.Mean(dcrefVsBase),
			RAIDRvsBase:         100 * metrics.Mean(raidrVsBase),
			DCREFvsRAIDR:        100 * metrics.Mean(dcrefVsRAIDR),
			RefReductionVsBase:  100 * (1 - float64(refDCREF)/float64(refBase)),
			RefReductionVsRAIDR: 100 * (1 - float64(refDCREF)/float64(refRAIDR)),
			DCREFFastFrac:       100 * metrics.Mean(fast),
			EnergySaving:        100 * metrics.Mean(energy),
		})
	}
	return out
}

// FormatFig16 renders Figure 16 per-workload rows plus the summary.
func FormatFig16(rows []Fig16Row, summaries []Fig16Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 16: Performance of DC-REF vs. RAIDR (weighted speedup over alone-IPC)\n")
	fmt.Fprintf(&b, "%-8s%-9s%10s%10s%10s%14s%14s\n", "WL", "Density", "Base", "RAIDR", "DC-REF", "DCREF/Base", "DCREF/RAIDR")
	for _, r := range rows {
		fmt.Fprintf(&b, "WL%-6d%-9s%10.3f%10.3f%10.3f%13.1f%%%13.1f%%\n",
			r.Workload, r.Density, r.WSBase, r.WSRAIDR, r.WSDCREF,
			100*(r.WSDCREF/r.WSBase-1), 100*(r.WSDCREF/r.WSRAIDR-1))
	}
	for _, s := range summaries {
		fmt.Fprintf(&b, "\n%s summary:\n", s.Density)
		fmt.Fprintf(&b, "  DC-REF vs baseline: %+.1f%% performance (paper at 32Gbit: +18.0%%)\n", s.DCREFvsBase)
		fmt.Fprintf(&b, "  RAIDR  vs baseline: %+.1f%% performance\n", s.RAIDRvsBase)
		fmt.Fprintf(&b, "  DC-REF vs RAIDR:    %+.1f%% performance (paper: +3.0%%)\n", s.DCREFvsRAIDR)
		fmt.Fprintf(&b, "  refresh reduction vs baseline: %.1f%% (paper: 73%%)\n", s.RefReductionVsBase)
		fmt.Fprintf(&b, "  refresh reduction vs RAIDR:    %.1f%% (paper: 27.6%%)\n", s.RefReductionVsRAIDR)
		fmt.Fprintf(&b, "  DC-REF fast rows: %.1f%% of all rows (paper: 2.7%%)\n", s.DCREFFastFrac)
		fmt.Fprintf(&b, "  DRAM energy per instruction vs baseline: %.1f%% lower\n", s.EnergySaving)
	}
	return b.String()
}

// Table2 renders the simulated system configuration (Table 2).
func Table2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Configuration of simulated systems\n")
	fmt.Fprintf(&b, "%-18s%s\n", "Processor", "8 cores, 3.2 GHz, MLP window per core (3-wide OoO proxy)")
	fmt.Fprintf(&b, "%-18s%s\n", "Memory", "DDR3-1600, 2 channels, 2 ranks/channel, 8 banks/rank")
	fmt.Fprintf(&b, "%-18s%s\n", "Refresh", "baseline 64 ms; RAIDR 64/256 ms (16.4%/83.6% rows);")
	fmt.Fprintf(&b, "%-18s%s\n", "", "DC-REF 64 ms only for worst-case-content rows, 256 ms rest")
	fmt.Fprintf(&b, "%-18s%s\n", "tRFC", "590 ns (16 Gbit), 1 us (32 Gbit)")
	return b.String()
}
