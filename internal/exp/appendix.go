package exp

import (
	"fmt"
	"strings"
	"time"

	"parbor/internal/testtime"
)

// AppendixRow is one test-time projection.
type AppendixRow struct {
	Name       string
	Projection string
}

// Appendix reproduces the Appendix's test-time table: naive O(n^k)
// projections for one 8K-cell row and PARBOR's wall-clock for a 2 GB
// module.
func Appendix() []AppendixRow {
	m := testtime.New()
	const n = 8192
	g, chips := testtime.PaperModuleGeometry()

	linear, _ := m.NaiveSearch(n, 1)
	pairs, _ := m.NaiveSearch(n, 2)
	rows := []AppendixRow{
		{Name: "O(n) linear search, one row", Projection: fmtDur(linear)},
		{Name: "O(n^2) pairwise search, one row", Projection: fmt.Sprintf("%.0f days (paper: 49 days)", pairs.Hours()/24)},
		{Name: "O(n^3) three-neighbor search", Projection: fmt.Sprintf("%.0f years (paper: 1115 years)", m.NaiveSearchYears(n, 3))},
		{Name: "O(n^4) four-neighbor search", Projection: fmt.Sprintf("%.2gM years (paper: 9.1M years)", m.NaiveSearchYears(n, 4)/1e6)},
		{Name: "PARBOR, 92 tests, 2GB module", Projection: fmtDur(m.ParborTime(g, chips, 92))},
		{Name: "PARBOR, 132 tests, 2GB module", Projection: fmtDur(m.ParborTime(g, chips, 132))},
		{Name: "Speedup vs O(n), 90 tests", Projection: fmt.Sprintf("%.0fX (paper: 90X)", testtime.SpeedupVsLinear(n, 90))},
		{Name: "Speedup vs O(n^2), 90 tests", Projection: fmt.Sprintf("%.0fX (paper: 745,654X)", testtime.SpeedupVsPairwise(n, 90))},
	}
	return rows
}

func fmtDur(d time.Duration) string { return d.Round(10 * time.Millisecond).String() }

// FormatAppendix renders the projections.
func FormatAppendix(rows []AppendixRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Appendix: test-time projections (DDR3-1600, 64 ms waits)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-36s %s\n", r.Name, r.Projection)
	}
	return b.String()
}
