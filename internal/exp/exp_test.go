package exp

import (
	"reflect"
	"strings"
	"testing"

	"parbor/internal/sim"
)

// fastOpts keeps the experiment tests quick.
func fastOpts() Options {
	return Options{RowsPerChip: 192, Chips: 2, ModulesPerVendor: 1, Seed: 42}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows, err := Table1(fastOpts())
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	want := []Table1Row{
		{Vendor: "A", PerLevel: []int{2, 8, 8, 24, 48}, Total: 90},
		{Vendor: "B", PerLevel: []int{2, 8, 8, 24, 24}, Total: 66},
		{Vendor: "C", PerLevel: []int{2, 8, 8, 24, 48}, Total: 90},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("Table1 = %+v, want %+v", rows, want)
	}
	out := FormatTable1(rows)
	for _, frag := range []string{"L1", "Total", "90", "66"} {
		if !strings.Contains(out, frag) {
			t.Errorf("FormatTable1 output missing %q", frag)
		}
	}
}

func TestFig11FinalDistances(t *testing.T) {
	rows, err := Fig11(fastOpts())
	if err != nil {
		t.Fatalf("Fig11: %v", err)
	}
	want := map[string][]int{
		"A": {-48, -16, -8, 8, 16, 48},
		"B": {-64, -1, 1, 64},
		"C": {-49, -33, -16, 16, 33, 49},
	}
	for _, r := range rows {
		if !reflect.DeepEqual(r.Final, want[r.Vendor]) {
			t.Errorf("vendor %s final = %v, want %v", r.Vendor, r.Final, want[r.Vendor])
		}
		if len(r.PerLevel) != 5 {
			t.Errorf("vendor %s has %d levels, want 5", r.Vendor, len(r.PerLevel))
		}
	}
	if out := FormatFig11(rows); !strings.Contains(out, "L5") {
		t.Error("FormatFig11 output missing L5")
	}
}

func TestFig12ParborWins(t *testing.T) {
	rows, err := Fig12(fastOpts())
	if err != nil {
		t.Fatalf("Fig12: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3 (1 module per vendor)", len(rows))
	}
	for _, r := range rows {
		if r.NewFailures < 0 {
			t.Errorf("module %s: negative new failures %d", r.Module, r.NewFailures)
		}
		if r.Budget < 92 || r.Budget > 140 {
			t.Errorf("module %s: budget %d outside the paper's ballpark", r.Module, r.Budget)
		}
		if r.Parbor == 0 || r.Random == 0 {
			t.Errorf("module %s: degenerate failure counts %+v", r.Module, r)
		}
	}
	if mean := MeanPctIncrease(rows); mean <= 5 || mean >= 60 {
		t.Errorf("mean increase = %.1f%%, want a paper-like value (21.9%% ± a wide margin)", mean)
	}
	if out := FormatFig12(rows); !strings.Contains(out, "21.9%") {
		t.Error("FormatFig12 output missing paper reference")
	}
}

func TestFig13Split(t *testing.T) {
	rows, err := Fig13(fastOpts())
	if err != nil {
		t.Fatalf("Fig13: %v", err)
	}
	for _, r := range rows {
		sum := r.OnlyParbor + r.OnlyRandom + r.Both
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("module %s: split sums to %.2f%%", r.Module, sum)
		}
		if r.OnlyRandom > 10 {
			t.Errorf("module %s: only-random = %.1f%%, want small (paper <= 5%%)", r.Module, r.OnlyRandom)
		}
	}
	if out := FormatFig13(rows); !strings.Contains(out, "Both%") {
		t.Error("FormatFig13 output malformed")
	}
}

func TestFig14RankingSeparation(t *testing.T) {
	rows, err := Fig14(fastOpts())
	if err != nil {
		t.Fatalf("Fig14: %v", err)
	}
	wantFrequent := map[string][]int{
		"A": {-6, -2, -1, 1, 2, 6},
		"B": {-8, 0, 8},
		"C": {-6, -4, -2, 2, 4, 6},
	}
	for _, r := range rows {
		vendor := strings.TrimRight(r.Module, "0123456789")
		freq := map[int]float64{}
		for _, e := range r.Entries {
			freq[e.Distance] = e.Frequency
		}
		for _, d := range wantFrequent[vendor] {
			if freq[d] < 0.10 {
				t.Errorf("module %s: true distance %+d has frequency %.3f, want >= 0.10", r.Module, d, freq[d])
			}
		}
	}
	if out := FormatFig14(rows); !strings.Contains(out, "level 4") {
		t.Error("FormatFig14 output malformed")
	}
}

func TestFig15SampleSizes(t *testing.T) {
	rows, err := Fig15(fastOpts(), []int{50, 200})
	if err != nil {
		t.Fatalf("Fig15: %v", err)
	}
	if len(rows) != 4 { // 2 modules x 2 sample sizes
		t.Fatalf("%d rows, want 4", len(rows))
	}
	// Larger samples must not shrink (and usually sharpen) the set of
	// clearly frequent distances.
	for i := 0; i+1 < len(rows); i += 2 {
		small, big := rows[i], rows[i+1]
		if small.Module != big.Module {
			t.Fatalf("row pairing broken: %s vs %s", small.Module, big.Module)
		}
		if big.SampleSize < small.SampleSize {
			t.Errorf("module %s: sample sizes out of order: %d then %d", small.Module, small.SampleSize, big.SampleSize)
		}
	}
	if out := FormatFig15(rows); !strings.Contains(out, "sample") {
		t.Error("FormatFig15 output malformed")
	}
}

func TestFig16SmallRun(t *testing.T) {
	rows, summaries, err := Fig16(Fig16Options{
		Workloads: 2,
		Cores:     4,
		SimNs:     1e6,
		Densities: []sim.Density{sim.Density32Gbit},
		Seed:      3,
	})
	if err != nil {
		t.Fatalf("Fig16: %v", err)
	}
	if len(rows) != 2 || len(summaries) != 1 {
		t.Fatalf("rows=%d summaries=%d, want 2/1", len(rows), len(summaries))
	}
	s := summaries[0]
	if s.DCREFvsBase <= 0 {
		t.Errorf("DC-REF vs base = %+.2f%%, want positive", s.DCREFvsBase)
	}
	if s.RefReductionVsBase < 65 || s.RefReductionVsBase > 80 {
		t.Errorf("refresh reduction vs base = %.1f%%, want about 73%%", s.RefReductionVsBase)
	}
	if s.RefReductionVsRAIDR < 20 || s.RefReductionVsRAIDR > 35 {
		t.Errorf("refresh reduction vs RAIDR = %.1f%%, want about 27.6%%", s.RefReductionVsRAIDR)
	}
	if out := FormatFig16(rows, summaries); !strings.Contains(out, "DC-REF vs RAIDR") {
		t.Error("FormatFig16 output malformed")
	}
	if !strings.Contains(Table2(), "DDR3-1600") {
		t.Error("Table2 output malformed")
	}
}

func TestAppendixProjections(t *testing.T) {
	rows := Appendix()
	if len(rows) != 8 {
		t.Fatalf("%d appendix rows, want 8", len(rows))
	}
	out := FormatAppendix(rows)
	for _, frag := range []string{"49 days", "1115 years", "9.1M years", "745,654X"} {
		if !strings.Contains(out, frag) {
			t.Errorf("appendix output missing %q", frag)
		}
	}
}

func TestRetentionExperiment(t *testing.T) {
	o := fastOpts()
	o.RowsPerChip = 96
	rows, err := Retention(o)
	if err != nil {
		t.Fatalf("Retention: %v", err)
	}
	if len(rows) != 6 { // 3 vendors x 2 pattern sets
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for i := 0; i+1 < len(rows); i += 2 {
		naive, aware := rows[i], rows[i+1]
		if naive.Module != aware.Module {
			t.Fatalf("row pairing broken: %s vs %s", naive.Module, aware.Module)
		}
		// The neighbor-aware profile must find strictly more weak rows
		// at every threshold.
		for _, th := range RetentionThresholds {
			if aware.WeakFrac[th] <= naive.WeakFrac[th] && aware.WeakFrac[th] < 1 {
				t.Errorf("module %s, threshold %v: aware %.3f <= naive %.3f",
					naive.Module, th, aware.WeakFrac[th], naive.WeakFrac[th])
			}
		}
	}
	if out := FormatRetention(rows); !strings.Contains(out, "neighbor-aware") {
		t.Error("FormatRetention output malformed")
	}
}
