package exp

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"parbor/internal/core"
	"parbor/internal/obs"
	"parbor/internal/scramble"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden regression files instead of comparing")

const goldenPath = "testdata/golden_table1.json"

// goldenVendor pins one vendor's end-to-end detection run: the Table 1
// test counts published in the paper, the detected distance set, the
// exact failure population (as a checksum, so the file stays small),
// and the DRAM commands the run issued. Any change to the detection
// pipeline, the fault model, or the instrumentation that shifts these
// shows up as a diff against the checked-in file.
type goldenVendor struct {
	Vendor            string            `json:"vendor"`
	PerLevelTests     []int             `json:"per_level_tests"`
	RecursionTests    int               `json:"recursion_tests"`
	DiscoveryTests    int               `json:"discovery_tests"`
	FullChipTests     int               `json:"full_chip_tests"`
	SampleSize        int               `json:"sample_size"`
	Distances         []int             `json:"distances"`
	AllFailures       int               `json:"all_failures"`
	FailureChecksum   string            `json:"failure_checksum"`
	DiscoveryChecksum string            `json:"discovery_checksum"`
	Commands          map[string]uint64 `json:"commands"`
	// Resilience pins the chaos/resilience counters ("chaos.*",
	// "resilience.*"). The golden runs are fault-free, so this section
	// is empty — and the regression fails if the default path ever
	// starts injecting faults, retrying, or quarantining.
	Resilience map[string]uint64 `json:"resilience"`
}

type goldenFile struct {
	Schema      string         `json:"schema"`
	RowsPerChip int            `json:"rows_per_chip"`
	Chips       int            `json:"chips"`
	Seed        uint64         `json:"seed"`
	Vendors     []goldenVendor `json:"vendors"`
}

// goldenOpts matches bench_test.go's benchOpts so the benchmark and
// the regression test pin the same configuration.
func goldenOpts() Options {
	return Options{RowsPerChip: 256, Chips: 2, ModulesPerVendor: 2, Seed: 42}
}

// failureChecksum hashes a failure set order-independently. The
// encoding lives in core.FailureSet.Checksum so the CLI's online-sweep
// checksums and the golden file agree byte for byte.
func failureChecksum(fs core.FailureSet) string {
	return fs.Checksum()
}

// resilienceCounters extracts the chaos and resilience counters from a
// report snapshot. Always non-nil, so the golden JSON round-trips to
// an empty map rather than null.
func resilienceCounters(snap *obs.Report) map[string]uint64 {
	out := map[string]uint64{}
	for name, n := range snap.Counters {
		if strings.HasPrefix(name, "chaos.") || strings.HasPrefix(name, "resilience.") {
			out[name] = n
		}
	}
	return out
}

// runGoldenVendor runs the full PARBOR pipeline for one vendor under
// an instrumented host and distills the run into a goldenVendor.
func runGoldenVendor(t *testing.T, v scramble.Vendor, o Options) goldenVendor {
	t.Helper()
	col := obs.NewCollector()
	o.Recorder = col
	tester, _, err := newTester(moduleName(v, 0), v, o, moduleSeed(o.Seed, v, 0))
	if err != nil {
		t.Fatalf("vendor %v: newTester: %v", v, err)
	}
	rep, err := tester.Run()
	if err != nil {
		t.Fatalf("vendor %v: Run: %v", v, err)
	}
	snap := col.Snapshot("golden")
	if err := snap.Reconcile(); err != nil {
		t.Fatalf("vendor %v: instrumented run does not reconcile: %v", v, err)
	}
	nr := rep.Neighbor
	g := goldenVendor{
		Vendor:            v.String(),
		RecursionTests:    nr.RecursionTests,
		DiscoveryTests:    nr.DiscoveryTests,
		FullChipTests:     rep.FullChipTests,
		SampleSize:        nr.SampleSize,
		Distances:         nr.Distances,
		AllFailures:       len(rep.AllFailures),
		FailureChecksum:   failureChecksum(rep.AllFailures),
		DiscoveryChecksum: failureChecksum(nr.DiscoveryFailures),
		Commands:          snap.Commands,
		Resilience:        resilienceCounters(snap),
	}
	if len(g.Resilience) != 0 {
		t.Errorf("vendor %v: fault-free golden run reported resilience counters %v", v, g.Resilience)
	}
	for _, lvl := range nr.Levels {
		g.PerLevelTests = append(g.PerLevelTests, lvl.Tests)
	}
	return g
}

// TestGoldenTable1Regression is the golden-figure regression: the
// Table 1 runs at a fixed seed must keep producing the published test
// counts (A: 90, B: 66, C: 90), the same distance sets, the same
// failure populations, and the same DRAM-command totals as the
// checked-in golden file. Regenerate with:
//
//	go test ./internal/exp -run TestGoldenTable1Regression -update
func TestGoldenTable1Regression(t *testing.T) {
	o := goldenOpts()
	got := goldenFile{
		Schema:      "parbor/golden/v1",
		RowsPerChip: o.RowsPerChip,
		Chips:       o.Chips,
		Seed:        o.Seed,
	}
	for _, v := range scramble.Vendors() {
		got.Vendors = append(got.Vendors, runGoldenVendor(t, v, o))
	}

	// The paper's Table 1 counts hold regardless of what the golden
	// file says — this guards against regenerating a broken golden.
	published := map[string]int{"A": 90, "B": 66, "C": 90}
	for _, g := range got.Vendors {
		if g.RecursionTests != published[g.Vendor] {
			t.Errorf("vendor %s: %d recursion tests, want published %d",
				g.Vendor, g.RecursionTests, published[g.Vendor])
		}
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatalf("marshal golden: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	if want.Schema != got.Schema {
		t.Fatalf("golden schema %q, want %q", want.Schema, got.Schema)
	}
	if want.RowsPerChip != got.RowsPerChip || want.Chips != got.Chips || want.Seed != got.Seed {
		t.Fatalf("golden configuration %d rows x %d chips seed %d does not match the test's %d x %d seed %d — regenerate with -update",
			want.RowsPerChip, want.Chips, want.Seed, got.RowsPerChip, got.Chips, got.Seed)
	}
	if len(want.Vendors) != len(got.Vendors) {
		t.Fatalf("golden has %d vendors, run produced %d", len(want.Vendors), len(got.Vendors))
	}
	for i, w := range want.Vendors {
		g := got.Vendors[i]
		if !reflect.DeepEqual(w, g) {
			t.Errorf("vendor %s diverges from golden:\n  golden: %+v\n  got:    %+v", w.Vendor, w, g)
		}
	}
}
