package exp

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestParallelMapRecoversPanic pins the bugfix for the runner's panic
// deadlock: a panic in one experiment unit must come back as an error
// from parallelMap, not kill a worker goroutine (which left the
// dispatcher blocked on an undrained channel forever).
func TestParallelMapRecoversPanic(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- parallelMap(32, func(i int) error {
			if i == 5 {
				panic("unit 5 blew up")
			}
			return nil
		})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "blew up") {
			t.Fatalf("err = %v, want recovered panic", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parallelMap deadlocked after a unit panic")
	}
}

// TestParallelMapEarlyCancel checks that a failing unit stops the
// batch instead of letting every remaining unit run.
func TestParallelMapEarlyCancel(t *testing.T) {
	const n = 5000
	var started int32
	err := parallelMap(n, func(i int) error {
		if atomic.AddInt32(&started, 1) == 1 {
			return errors.New("unit failed")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error lost")
	}
	if got := atomic.LoadInt32(&started); got > 64 {
		t.Fatalf("%d of %d units started after an immediate failure", got, n)
	}
}
