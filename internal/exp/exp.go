// Package exp implements the paper-reproduction experiments: one
// function per table or figure of the evaluation (Sections 7 and 8),
// returning structured results that cmd/paperrepro prints and the
// repository benchmarks assert against.
package exp

import (
	"fmt"

	"parbor/internal/core"
	"parbor/internal/coupling"
	"parbor/internal/dram"
	"parbor/internal/faults"
	"parbor/internal/memctl"
	"parbor/internal/obs"
	"parbor/internal/scramble"
)

// Options scales the experiments. The zero value selects defaults
// sized for minutes-not-hours runtimes on a laptop.
type Options struct {
	// RowsPerChip scales the simulated chips (default 512; the
	// paper's real chips have 256K rows, see EXPERIMENTS.md for the
	// scaling discussion).
	RowsPerChip int
	// Chips per module (default 8, as on the paper's modules).
	Chips int
	// ModulesPerVendor for Figure 12 (default 6, for the paper's 18
	// modules / 144 chips).
	ModulesPerVendor int
	// Seed fixes all process variation.
	Seed uint64
	// Recorder, when non-nil, instruments every module and host the
	// experiments build: DRAM-command counters, pass counters and
	// timing histograms accumulate across all modules of the
	// experiment. It must be safe for concurrent use (Fig12 measures
	// modules in parallel). Results are bit-identical either way.
	Recorder obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.RowsPerChip == 0 {
		o.RowsPerChip = 512
	}
	if o.Chips == 0 {
		o.Chips = 8
	}
	if o.ModulesPerVendor == 0 {
		o.ModulesPerVendor = 6
	}
	return o
}

// experimentCoupling is the victim population used by the detection
// experiments: denser than real chips so that scaled-down arrays
// retain statistically meaningful victim counts.
func experimentCoupling() coupling.Config {
	cfg := coupling.DefaultConfig()
	cfg.VulnerableRate = 2e-3
	return cfg
}

// newModule builds one experiment module.
func newModule(name string, vendor scramble.Vendor, o Options, seed uint64) (*dram.Module, error) {
	return dram.NewModule(dram.ModuleConfig{
		Name:     name,
		Vendor:   vendor,
		Chips:    o.Chips,
		Geometry: dram.Geometry{Banks: 1, Rows: o.RowsPerChip, Cols: 8192},
		Coupling: experimentCoupling(),
		Faults:   faults.DefaultConfig(),
		Seed:     seed,
		Recorder: o.Recorder,
	})
}

// newTester builds a host+tester pair for a fresh module instance.
func newTester(name string, vendor scramble.Vendor, o Options, seed uint64) (*core.Tester, *memctl.Host, error) {
	mod, err := newModule(name, vendor, o, seed)
	if err != nil {
		return nil, nil, err
	}
	host, err := memctl.NewHostWithConfig(mod, memctl.HostConfig{Recorder: o.Recorder})
	if err != nil {
		return nil, nil, err
	}
	t, err := core.New(host, core.Config{Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	return t, host, nil
}

// moduleSeed derives a per-module seed.
func moduleSeed(base uint64, vendor scramble.Vendor, idx int) uint64 {
	return base + uint64(vendor)*1000 + uint64(idx)
}

// moduleName renders the paper's module labels (A1, B3, ...).
func moduleName(vendor scramble.Vendor, idx int) string {
	return fmt.Sprintf("%s%d", vendor, idx+1)
}
