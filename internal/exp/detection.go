package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"parbor/internal/core"
	"parbor/internal/memctl"
	"parbor/internal/scramble"
)

// Table1Row is one vendor's per-level test counts (Table 1).
type Table1Row struct {
	Vendor   string
	PerLevel []int
	Total    int
}

// Table1 reproduces Table 1: the number of recursive tests PARBOR
// performs per level for each vendor.
func Table1(o Options) ([]Table1Row, error) {
	return Table1Ctx(context.Background(), o)
}

// Table1Ctx is Table1 with cooperative cancellation. Every experiment
// runner has a Ctx form with the same contract: a done ctx stops the
// run inside the current pass and the runner returns ctx's error with
// no partial result.
func Table1Ctx(ctx context.Context, o Options) ([]Table1Row, error) {
	o = o.withDefaults()
	var rows []Table1Row
	for _, v := range scramble.Vendors() {
		res, err := detect(ctx, v, o)
		if err != nil {
			return nil, fmt.Errorf("exp: table 1, vendor %v: %w", v, err)
		}
		row := Table1Row{Vendor: v.String()}
		for _, lvl := range res.Levels {
			row.PerLevel = append(row.PerLevel, lvl.Tests)
			row.Total += lvl.Tests
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable1 renders Table 1 in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Number of tests performed by PARBOR\n")
	fmt.Fprintf(&b, "%-13s", "Manufacturer")
	for i := 1; i <= 5; i++ {
		fmt.Fprintf(&b, "%5s", fmt.Sprintf("L%d", i))
	}
	fmt.Fprintf(&b, "%7s\n", "Total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s", r.Vendor)
		for _, t := range r.PerLevel {
			fmt.Fprintf(&b, "%5d", t)
		}
		fmt.Fprintf(&b, "%7d\n", r.Total)
	}
	return b.String()
}

// Fig11Row is one vendor's distance sets per recursion level
// (Figure 11).
type Fig11Row struct {
	Vendor    string
	PerLevel  [][]int
	Final     []int
	SampleLen int
}

// Fig11 reproduces Figure 11: the union of neighbor-region distances
// found at each level of the recursion.
func Fig11(o Options) ([]Fig11Row, error) {
	return Fig11Ctx(context.Background(), o)
}

// Fig11Ctx is Fig11 with cooperative cancellation.
func Fig11Ctx(ctx context.Context, o Options) ([]Fig11Row, error) {
	o = o.withDefaults()
	var rows []Fig11Row
	for _, v := range scramble.Vendors() {
		res, err := detect(ctx, v, o)
		if err != nil {
			return nil, fmt.Errorf("exp: figure 11, vendor %v: %w", v, err)
		}
		row := Fig11Row{Vendor: v.String(), Final: res.Distances, SampleLen: res.SampleSize}
		for _, lvl := range res.Levels {
			row.PerLevel = append(row.PerLevel, lvl.Distances)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig11 renders Figure 11 as per-level distance lists.
func FormatFig11(rows []Fig11Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: Distances of neighbor regions at each level\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "Vendor %s (victim sample %d):\n", r.Vendor, r.SampleLen)
		for i, ds := range r.PerLevel {
			fmt.Fprintf(&b, "  L%d: %v\n", i+1, ds)
		}
	}
	return b.String()
}

// detect runs discovery + recursion on one module of the vendor.
func detect(ctx context.Context, v scramble.Vendor, o Options) (*core.NeighborResult, error) {
	tester, _, err := newTester(moduleName(v, 0), v, o, moduleSeed(o.Seed, v, 0))
	if err != nil {
		return nil, err
	}
	return tester.DetectNeighborsCtx(ctx)
}

// Fig12Row is one module's PARBOR-vs-random comparison (Figure 12).
type Fig12Row struct {
	Module string
	// Budget is the test budget both testers used.
	Budget int
	// Parbor and Random are each tester's total detected failures.
	Parbor int
	Random int
	// NewFailures is |PARBOR \ random| and PctIncrease the increase
	// in total detected failures (the figure's line).
	NewFailures int
	PctIncrease float64
}

// Fig12 reproduces Figure 12: extra failures uncovered by PARBOR over
// an equal-budget random-pattern test, across all modules. Modules
// are measured in parallel (each is an independent deterministic
// unit).
func Fig12(o Options) ([]Fig12Row, error) {
	return Fig12Ctx(context.Background(), o)
}

// Fig12Ctx is Fig12 with cooperative cancellation.
func Fig12Ctx(ctx context.Context, o Options) ([]Fig12Row, error) {
	o = o.withDefaults()
	type unit struct {
		name   string
		vendor scramble.Vendor
		seed   uint64
	}
	var units []unit
	for _, v := range scramble.Vendors() {
		for i := 0; i < o.ModulesPerVendor; i++ {
			units = append(units, unit{
				name:   moduleName(v, i),
				vendor: v,
				seed:   moduleSeed(o.Seed, v, i),
			})
		}
	}
	rows := make([]Fig12Row, len(units))
	err := parallelMapCtx(ctx, len(units), func(i int) error {
		row, err := fig12Module(ctx, units[i].name, units[i].vendor, o, units[i].seed)
		if err != nil {
			return fmt.Errorf("exp: figure 12, module %s: %w", units[i].name, err)
		}
		rows[i] = *row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func fig12Module(ctx context.Context, name string, v scramble.Vendor, o Options, seed uint64) (*Fig12Row, error) {
	tester, _, err := newTester(name, v, o, seed)
	if err != nil {
		return nil, err
	}
	rep, err := tester.RunCtx(ctx)
	if err != nil {
		return nil, err
	}
	// Equal-budget random test on an identical twin module.
	rndTester, _, err := newTester(name, v, o, seed)
	if err != nil {
		return nil, err
	}
	random, err := rndTester.RandomPatternTestCtx(ctx, rep.TotalTests())
	if err != nil {
		return nil, err
	}

	newFailures := len(rep.AllFailures) - rep.AllFailures.Intersect(random)
	pct := 0.0
	if len(random) > 0 {
		pct = 100 * float64(newFailures) / float64(len(random))
	}
	return &Fig12Row{
		Module:      name,
		Budget:      rep.TotalTests(),
		Parbor:      len(rep.AllFailures),
		Random:      len(random),
		NewFailures: newFailures,
		PctIncrease: pct,
	}, nil
}

// MeanPctIncrease aggregates the figure's headline (paper: 21.9%).
func MeanPctIncrease(rows []Fig12Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.PctIncrease
	}
	return sum / float64(len(rows))
}

// FormatFig12 renders Figure 12.
func FormatFig12(rows []Fig12Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: Extra failures uncovered using PARBOR (equal test budget)\n")
	fmt.Fprintf(&b, "%-8s%8s%10s%10s%14s%12s\n", "Module", "Budget", "PARBOR", "Random", "NewFailures", "Increase%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s%8d%10d%10d%14d%12.1f\n",
			r.Module, r.Budget, r.Parbor, r.Random, r.NewFailures, r.PctIncrease)
	}
	fmt.Fprintf(&b, "Average increase: %.1f%% (paper: 21.9%%)\n", MeanPctIncrease(rows))
	return b.String()
}

// Fig13Row is one module's coverage split (Figure 13).
type Fig13Row struct {
	Module     string
	Total      int // |PARBOR ∪ random|
	OnlyParbor float64
	OnlyRandom float64
	Both       float64
}

// Fig13 reproduces Figure 13: the fraction of all observed failures
// detected only by PARBOR, only by random testing, and by both, for
// the first module of each vendor.
func Fig13(o Options) ([]Fig13Row, error) {
	return Fig13Ctx(context.Background(), o)
}

// Fig13Ctx is Fig13 with cooperative cancellation.
func Fig13Ctx(ctx context.Context, o Options) ([]Fig13Row, error) {
	o = o.withDefaults()
	var rows []Fig13Row
	for _, v := range scramble.Vendors() {
		name := moduleName(v, 0)
		seed := moduleSeed(o.Seed, v, 0)
		tester, _, err := newTester(name, v, o, seed)
		if err != nil {
			return nil, err
		}
		rep, err := tester.RunCtx(ctx)
		if err != nil {
			return nil, fmt.Errorf("exp: figure 13, module %s: %w", name, err)
		}
		rndTester, _, err := newTester(name, v, o, seed)
		if err != nil {
			return nil, err
		}
		random, err := rndTester.RandomPatternTestCtx(ctx, rep.TotalTests())
		if err != nil {
			return nil, fmt.Errorf("exp: figure 13, module %s: %w", name, err)
		}

		both := rep.AllFailures.Intersect(random)
		union := len(rep.AllFailures) + len(random) - both
		if union == 0 {
			return nil, fmt.Errorf("exp: figure 13, module %s: no failures at all", name)
		}
		rows = append(rows, Fig13Row{
			Module:     name,
			Total:      union,
			OnlyParbor: 100 * float64(len(rep.AllFailures)-both) / float64(union),
			OnlyRandom: 100 * float64(len(random)-both) / float64(union),
			Both:       100 * float64(both) / float64(union),
		})
	}
	return rows, nil
}

// FormatFig13 renders Figure 13.
func FormatFig13(rows []Fig13Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13: Coverage of failures (%% of all observed failures)\n")
	fmt.Fprintf(&b, "%-8s%8s%14s%14s%10s\n", "Module", "Total", "OnlyPARBOR%", "OnlyRandom%", "Both%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s%8d%14.1f%14.1f%10.1f\n", r.Module, r.Total, r.OnlyParbor, r.OnlyRandom, r.Both)
	}
	return b.String()
}

// RankingEntry is one distance's normalized frequency.
type RankingEntry struct {
	Distance  int
	Frequency float64 // normalized to the most frequent distance
}

// Fig14Row is one module's level-4 distance ranking (Figure 14).
type Fig14Row struct {
	Module  string
	Entries []RankingEntry
}

// Fig14 reproduces Figure 14: the ranking of neighbor-region
// distances at recursion level 4, normalized to the most frequent
// distance, for the first module of each vendor.
func Fig14(o Options) ([]Fig14Row, error) {
	return Fig14Ctx(context.Background(), o)
}

// Fig14Ctx is Fig14 with cooperative cancellation.
func Fig14Ctx(ctx context.Context, o Options) ([]Fig14Row, error) {
	o = o.withDefaults()
	var rows []Fig14Row
	for _, v := range scramble.Vendors() {
		name := moduleName(v, 0)
		tester, _, err := newTester(name, v, o, moduleSeed(o.Seed, v, 0))
		if err != nil {
			return nil, err
		}
		res, err := tester.DetectNeighborsCtx(ctx)
		if err != nil {
			return nil, fmt.Errorf("exp: figure 14, module %s: %w", name, err)
		}
		if len(res.Levels) < 4 {
			return nil, fmt.Errorf("exp: figure 14, module %s: only %d levels", name, len(res.Levels))
		}
		rows = append(rows, Fig14Row{
			Module:  name,
			Entries: normalizeRanking(res.Levels[3].Frequencies),
		})
	}
	return rows, nil
}

func normalizeRanking(freq map[int]int) []RankingEntry {
	max := 0
	for _, c := range freq {
		if c > max {
			max = c
		}
	}
	entries := make([]RankingEntry, 0, len(freq))
	for d, c := range freq {
		entries = append(entries, RankingEntry{Distance: d, Frequency: float64(c) / float64(max)})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Distance < entries[j].Distance })
	return entries
}

// FormatFig14 renders Figure 14.
func FormatFig14(rows []Fig14Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 14: Ranking of regions in recursion level 4 (normalized frequency)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "Module %s:\n", r.Module)
		for _, e := range r.Entries {
			fmt.Fprintf(&b, "  %+4d: %5.2f %s\n", e.Distance, e.Frequency, bar(e.Frequency))
		}
	}
	return b.String()
}

func bar(frac float64) string {
	n := int(frac*40 + 0.5)
	return strings.Repeat("#", n)
}

// Fig15Row is one (module, sample size) ranking (Figure 15).
type Fig15Row struct {
	Module     string
	SampleSize int
	Entries    []RankingEntry
}

// Fig15 reproduces Figure 15: how the level-4 ranking changes with
// the size of the initial victim sample, for modules B1 and C1. The
// paper sweeps 1K/5K/10K/15K victims; since the recursion uses one
// victim per row, the experiment quadruples the per-chip row count so
// the module actually offers 15K+ candidate rows.
func Fig15(o Options, sampleSizes []int) ([]Fig15Row, error) {
	return Fig15Ctx(context.Background(), o, sampleSizes)
}

// Fig15Ctx is Fig15 with cooperative cancellation.
func Fig15Ctx(ctx context.Context, o Options, sampleSizes []int) ([]Fig15Row, error) {
	o = o.withDefaults()
	o.RowsPerChip *= 4
	if len(sampleSizes) == 0 {
		sampleSizes = []int{1000, 5000, 10000, 15000}
	}
	var rows []Fig15Row
	for _, v := range []scramble.Vendor{scramble.VendorB, scramble.VendorC} {
		name := moduleName(v, 0)
		for _, n := range sampleSizes {
			mod, err := newModule(name, v, o, moduleSeed(o.Seed, v, 0))
			if err != nil {
				return nil, err
			}
			host, err := memctl.NewHostWithConfig(mod, memctl.HostConfig{Recorder: o.Recorder})
			if err != nil {
				return nil, err
			}
			tester, err := core.New(host, core.Config{Seed: o.Seed, SampleSize: n})
			if err != nil {
				return nil, err
			}
			res, err := tester.DetectNeighborsCtx(ctx)
			if err != nil {
				return nil, fmt.Errorf("exp: figure 15, module %s, sample %d: %w", name, n, err)
			}
			rows = append(rows, Fig15Row{
				Module:     name,
				SampleSize: res.SampleSize,
				Entries:    normalizeRanking(res.Levels[3].Frequencies),
			})
		}
	}
	return rows, nil
}

// FormatFig15 renders Figure 15.
func FormatFig15(rows []Fig15Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 15: Ranking with different victim sample sizes\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "Module %s, sample %d:\n", r.Module, r.SampleSize)
		for _, e := range r.Entries {
			fmt.Fprintf(&b, "  %+4d: %5.2f %s\n", e.Distance, e.Frequency, bar(e.Frequency))
		}
	}
	return b.String()
}
