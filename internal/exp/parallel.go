package exp

import (
	"context"

	"parbor/internal/par"
)

// parallelMap runs fn(0..n-1) across up to GOMAXPROCS workers and
// returns the first error. Every experiment unit (a module, a
// workload) is independent and deterministic per its own seed, so
// results do not depend on scheduling.
//
// It delegates to the hardened pool in internal/par: panics in fn are
// recovered into errors (a panicking unit used to kill its worker and
// deadlock the dispatcher), and after the first error the remaining
// units are not started.
func parallelMap(n int, fn func(i int) error) error {
	return par.Map(n, 0, fn)
}

// parallelMapCtx is parallelMap with cooperative cancellation: a done
// ctx stops dispatching units, and units that consult ctx themselves
// (every tester pass does) abort promptly.
func parallelMapCtx(ctx context.Context, n int, fn func(i int) error) error {
	return par.MapCtx(ctx, n, 0, fn)
}
