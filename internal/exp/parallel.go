package exp

import (
	"runtime"
	"sync"
)

// parallelMap runs fn(0..n-1) across up to GOMAXPROCS workers and
// returns the first error. Every experiment unit (a module, a
// workload) is independent and deterministic per its own seed, so
// results do not depend on scheduling.
func parallelMap(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}
