// Package par provides the bounded worker pool shared by every
// fan-out in the repository: experiment batches (package exp) and the
// per-chip sharding of the test host (package memctl).
//
// Map is hardened for long-running batch work: a panic inside a task
// is recovered into an error instead of killing the process (or, as
// in an earlier version, killing a worker and deadlocking the
// dispatcher on an undrained channel), and once any task fails the
// dispatcher stops handing out the remaining indices so a batch with
// an early error does not burn the rest of its budget.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Map runs fn(0..n-1) across up to `workers` goroutines and returns
// the first error. workers <= 0 selects GOMAXPROCS. Tasks must be
// independent; results must not depend on scheduling order.
//
// A panicking task is converted to an error carrying the panic value.
// After the first failure no new indices are dispatched (tasks
// already running complete), and the first error — in dispatch order
// of occurrence, not index order — is returned.
func Map(n, workers int, fn func(i int) error) error {
	return MapTimedCtx(context.Background(), n, workers, fn, nil)
}

// MapCtx is Map with cooperative cancellation: once ctx is done, no
// new indices are dispatched (tasks already running complete) and
// ctx.Err() is returned unless a task error landed first. Tasks that
// want prompt cancellation must additionally observe ctx themselves.
func MapCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	return MapTimedCtx(ctx, n, workers, fn, nil)
}

// MapTimed is Map with per-task observability: when onTask is
// non-nil it is invoked after each task with the task index and its
// wall-clock duration, including failed and panicking tasks. onTask
// runs on the worker goroutine that executed the task and so must be
// safe for concurrent use; the pool's scheduling, error semantics
// and results are unchanged by it. The test host uses this to
// histogram per-chip shard times and expose load imbalance.
func MapTimed(n, workers int, fn func(i int) error, onTask func(i int, d time.Duration)) error {
	return MapTimedCtx(context.Background(), n, workers, fn, onTask)
}

// MapTimedCtx combines MapTimed and MapCtx. Every worker goroutine
// it starts is joined before it returns, on every path — cancelled,
// errored, or clean — so callers never leak pool goroutines.
func MapTimedCtx(ctx context.Context, n, workers int, fn func(i int) error, onTask func(i int, d time.Duration)) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := call(fn, i, onTask); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	fe := newFirstError()
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := call(fn, i, onTask); err != nil {
					fe.set(err)
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-fe.done:
			break dispatch
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if err := fe.get(); err != nil {
		return err
	}
	return ctx.Err()
}

// firstError latches the first task failure across the worker pool.
// A named struct rather than bare locals so the lock discipline is a
// machine-checked //parbor:guardedby annotation, not a convention.
type firstError struct {
	mu   sync.Mutex
	err  error         //parbor:guardedby mu
	done chan struct{} // closed when err latches, cancelling dispatch
}

func newFirstError() *firstError {
	return &firstError{done: make(chan struct{})}
}

// set latches err if it is the first failure; later errors are
// dropped (Map reports the first error in order of occurrence).
func (fe *firstError) set(err error) {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	if fe.err == nil {
		fe.err = err
		close(fe.done)
	}
}

// get returns the latched error, if any.
func (fe *firstError) get() error {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	return fe.err
}

// call invokes fn(i), converting a panic into an error so that one
// bad task cannot take down the pool (a worker dying mid-pool leaves
// the dispatcher blocked forever on the task channel). The duration
// callback fires from the deferred handler so panicking tasks are
// timed too.
//
//parbor:wallclock task timing feeds only the onTask observability callback, never simulation state
func call(fn func(i int) error, i int, onTask func(i int, d time.Duration)) (err error) {
	var start time.Time
	if onTask != nil {
		start = time.Now()
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("par: task %d panicked: %v", i, r)
		}
		if onTask != nil {
			onTask(i, time.Since(start))
		}
	}()
	return fn(i)
}
