package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		var counts [n]int32
		if err := Map(n, workers, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestMapZeroAndNegativeN(t *testing.T) {
	ran := false
	if err := Map(0, 4, func(int) error { ran = true; return nil }); err != nil || ran {
		t.Fatalf("n=0: err=%v ran=%v", err, ran)
	}
	if err := Map(-3, 4, func(int) error { ran = true; return nil }); err != nil || ran {
		t.Fatalf("n<0: err=%v ran=%v", err, ran)
	}
}

func TestMapReturnsFirstError(t *testing.T) {
	want := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := Map(10, workers, func(i int) error {
			if i == 3 {
				return want
			}
			return nil
		})
		if !errors.Is(err, want) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, want)
		}
	}
}

// TestMapRecoversPanics is the regression test for the deadlock this
// package fixes: a panicking task used to take its worker down with
// the dispatch channel undrained, wedging the dispatcher forever.
// Map must instead surface the panic as an error and return.
func TestMapRecoversPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		done := make(chan error, 1)
		go func() {
			done <- Map(50, workers, func(i int) error {
				if i == 7 {
					panic(fmt.Sprintf("task %d exploded", i))
				}
				return nil
			})
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Fatalf("workers=%d: panic swallowed, got nil error", workers)
			}
			if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "exploded") {
				t.Fatalf("workers=%d: err = %v, want panic error", workers, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: Map deadlocked after a task panic", workers)
		}
	}
}

// TestMapCancelsAfterFirstError checks early cancel: once a task
// fails, the dispatcher must stop handing out fresh indices rather
// than running the whole batch.
func TestMapCancelsAfterFirstError(t *testing.T) {
	const n = 10000
	var started int32
	var mu sync.Mutex
	failed := false
	err := Map(n, 2, func(i int) error {
		atomic.AddInt32(&started, 1)
		mu.Lock()
		defer mu.Unlock()
		if !failed {
			failed = true
			return errors.New("first failure")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error lost")
	}
	// The two workers may each have held one in-flight task when the
	// failure landed; anything close to n means cancel did not happen.
	if got := atomic.LoadInt32(&started); got > 16 {
		t.Fatalf("%d of %d tasks started after an immediate first-task failure", got, n)
	}
}

func TestMapSerialPathStopsOnError(t *testing.T) {
	var ran int
	err := Map(100, 1, func(i int) error {
		ran++
		if i == 4 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || ran != 5 {
		t.Fatalf("ran=%d err=%v, want 5 tasks then error", ran, err)
	}
}

// TestMapCtxCancelStopsDispatch: cancelling mid-run must stop new
// tasks promptly, join every worker, and surface ctx.Err().
func TestMapCtxCancelStopsDispatch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int32
		const n = 10_000
		err := MapCtx(ctx, n, workers, func(i int) error {
			if started.Add(1) == 5 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Dispatch stops at the next select; in-flight tasks (at most
		// one per worker) may still finish.
		if got := started.Load(); got > 5+int32(workers)+1 {
			t.Errorf("workers=%d: %d tasks started after cancellation at 5", workers, got)
		}
	}
}

// TestMapCtxPreCancelled: an already-done ctx runs nothing at all.
func TestMapCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := false
		err := MapCtx(ctx, 100, workers, func(i int) error {
			ran = true
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran {
			t.Errorf("workers=%d: task ran under a pre-cancelled ctx", workers)
		}
	}
}

// TestMapCtxNoGoroutineLeak: cancellation must not strand workers.
func TestMapCtxNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		_ = MapCtx(ctx, 1000, 8, func(i int) error {
			if i == 3 {
				cancel()
			}
			return nil
		})
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("20 cancelled MapCtx rounds leaked goroutines: %d -> %d", before, after)
	}
}

// TestMapCtxTaskErrorBeatsCtxError: a real task error reported before
// cancellation wins over the ctx error, so callers see the root cause.
func TestMapCtxTaskErrorBeatsCtxError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	err := MapCtx(ctx, 100, 2, func(i int) error {
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the task's own error", err)
	}
}
