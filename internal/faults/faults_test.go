package faults

import (
	"math"
	"testing"

	"parbor/internal/rng"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig().Validate() = %v", err)
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VRTToggleProb = 1.5
	if err := cfg.Validate(); err == nil {
		t.Error("Validate() = nil, want error")
	}
	cfg = DefaultConfig()
	cfg.SoftErrorPerRowRead = -0.1
	if err := cfg.Validate(); err == nil {
		t.Error("Validate() = nil, want error")
	}
}

func TestRowCellsRates(t *testing.T) {
	cfg := Config{
		VRTRate:      0.005,
		MarginalRate: 0.002,
		WeakCellRate: 0.001,
	}
	src := rng.New(5)
	counts := map[CellKind]int{}
	const (
		rows = 300
		cols = 8192
	)
	for r := 0; r < rows; r++ {
		for _, cell := range cfg.RowCells(src.SplitN("row", uint64(r)), cols) {
			if cell.Col < 0 || cell.Col >= cols {
				t.Fatalf("cell col %d out of range", cell.Col)
			}
			counts[cell.Kind]++
		}
	}
	for _, tc := range []struct {
		kind CellKind
		rate float64
	}{
		{KindVRT, cfg.VRTRate},
		{KindMarginal, cfg.MarginalRate},
		{KindWeak, cfg.WeakCellRate},
	} {
		want := tc.rate * rows * cols
		got := float64(counts[tc.kind])
		if math.Abs(got-want) > 0.2*want {
			t.Errorf("kind %d: count = %.0f, want about %.0f", tc.kind, got, want)
		}
	}
}

func TestRowCellsZeroRates(t *testing.T) {
	var cfg Config
	if got := cfg.RowCells(rng.New(1), 8192); len(got) != 0 {
		t.Errorf("RowCells with zero rates = %v, want empty", got)
	}
}

func TestRowCellsDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VRTRate = 0.01
	a := cfg.RowCells(rng.New(9), 8192)
	b := cfg.RowCells(rng.New(9), 8192)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRemappedColumns(t *testing.T) {
	cfg := Config{RemappedColumnRate: 0.01}
	cols := cfg.RemappedColumns(rng.New(2), 8192)
	want := 0.01 * 8192
	if got := float64(len(cols)); math.Abs(got-want) > 0.5*want {
		t.Errorf("remapped columns = %.0f, want about %.0f", got, want)
	}
	for col := range cols {
		if col < 0 || col >= 8192 {
			t.Errorf("remapped column %d out of range", col)
		}
	}
}

func TestRemappedColumnsZeroRate(t *testing.T) {
	var cfg Config
	if got := cfg.RemappedColumns(rng.New(1), 8192); got != nil {
		t.Errorf("RemappedColumns with zero rate = %v, want nil", got)
	}
}
