// Package faults models the non-data-dependent DRAM failure modes
// that interfere with system-level detection of data-dependent
// failures (PARBOR paper, Sections 5.2.1 and 5.2.4):
//
//   - soft errors: random transient bit flips (particle strikes),
//   - VRT cells: variable-retention-time cells that toggle between a
//     healthy and a leaky state,
//   - marginal cells: cells holding barely enough charge, which fail
//     intermittently near the end of the refresh interval,
//   - weak cells: cells that reliably fail at a long refresh interval
//     regardless of neighbor content,
//   - remapped columns: faulty columns steered to redundant columns
//     whose physical neighborhoods do not follow the regular mapping.
//
// These are exactly the noise sources PARBOR's ranking/filtering
// stage must be robust to, and the source of the "detected only by
// random tests" slice of Figure 13.
package faults

import (
	"fmt"
	"math"

	"parbor/internal/rng"
)

// Config parameterizes the random-failure injectors.
type Config struct {
	// SoftErrorPerRowRead is the probability that a read of one row
	// observes one extra random bit flip.
	SoftErrorPerRowRead float64

	// VRTRate is the per-cell probability of being a VRT cell, and
	// VRTToggleProb the per-pass probability that a VRT cell is in
	// its leaky state (in which it fails like a weak cell).
	VRTRate       float64
	VRTToggleProb float64

	// MarginalRate is the per-cell probability of being marginal, and
	// MarginalFailProb the per-pass probability that a marginal cell
	// flips when read after a long retention wait.
	MarginalRate     float64
	MarginalFailProb float64

	// WeakCellRate is the per-cell probability of failing
	// deterministically at a long refresh interval regardless of the
	// data content of its neighbors.
	WeakCellRate float64

	// RemappedColumnRate is the per-column probability that the
	// column is served by a redundant column with an irregular
	// physical neighborhood (Section 7.3, "Limitation"). The
	// redundant cell's physical neighbors are other spare columns
	// whose content is not system-addressable, so a coupling victim
	// in a remapped column fails sporadically — with probability
	// RemappedFailProb per long-wait pass — independent of any data
	// pattern the host writes.
	RemappedColumnRate float64
	RemappedFailProb   float64
}

// DefaultConfig returns the injector rates used by the paper
// reproduction experiments. The rates are scaled for the simulator's
// reduced array sizes (see EXPERIMENTS.md).
func DefaultConfig() Config {
	return Config{
		SoftErrorPerRowRead: 2e-4,
		VRTRate:             2e-5,
		VRTToggleProb:       0.3,
		MarginalRate:        2e-5,
		MarginalFailProb:    0.4,
		WeakCellRate:        1e-5,
		RemappedColumnRate:  1e-3,
		RemappedFailProb:    0.3,
	}
}

// Validate reports whether all rates are probabilities.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{name: "SoftErrorPerRowRead", v: c.SoftErrorPerRowRead},
		{name: "VRTRate", v: c.VRTRate},
		{name: "VRTToggleProb", v: c.VRTToggleProb},
		{name: "MarginalRate", v: c.MarginalRate},
		{name: "MarginalFailProb", v: c.MarginalFailProb},
		{name: "WeakCellRate", v: c.WeakCellRate},
		{name: "RemappedColumnRate", v: c.RemappedColumnRate},
		{name: "RemappedFailProb", v: c.RemappedFailProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s = %v out of [0,1]", p.name, p.v)
		}
	}
	return nil
}

// CellKind marks the static random-failure role of a cell.
type CellKind uint8

// Cell kinds drawn per row by RowCells.
const (
	KindVRT CellKind = iota + 1
	KindMarginal
	KindWeak
)

// Cell is one statically faulty (but not data-dependent) cell.
type Cell struct {
	Col  int32
	Kind CellKind
}

// RowCells draws the static random-failure cells of one row using
// geometric gap sampling per kind.
func (c Config) RowCells(src *rng.Source, cols int) []Cell {
	var out []Cell
	out = sampleKind(out, src.Split("vrt"), cols, c.VRTRate, KindVRT)
	out = sampleKind(out, src.Split("marginal"), cols, c.MarginalRate, KindMarginal)
	out = sampleKind(out, src.Split("weak"), cols, c.WeakCellRate, KindWeak)
	return out
}

func sampleKind(out []Cell, src *rng.Source, cols int, rate float64, kind CellKind) []Cell {
	if rate <= 0 {
		return out
	}
	logQ := math.Log1p(-rate)
	col := -1
	for {
		u := src.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		col += 1 + int(math.Log(u)/logQ)
		if col >= cols {
			return out
		}
		out = append(out, Cell{Col: int32(col), Kind: kind})
	}
}

// RemappedColumns draws the set of remapped system column addresses
// for a chip with the given row width. Column remapping replaces the
// whole column across the array, so the set is chip-wide.
func (c Config) RemappedColumns(src *rng.Source, cols int) map[int32]struct{} {
	if c.RemappedColumnRate <= 0 {
		return nil
	}
	out := make(map[int32]struct{})
	logQ := math.Log1p(-c.RemappedColumnRate)
	col := -1
	for {
		u := src.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		col += 1 + int(math.Log(u)/logQ)
		if col >= cols {
			return out
		}
		out[int32(col)] = struct{}{}
	}
}
