package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
)

// apiFleet spins up a daemon with workers running and its API served
// over httptest.
func apiFleet(t *testing.T) (*Daemon, *httptest.Server) {
	t.Helper()
	d := newDaemon(t, Config{Workers: 2})
	d.Start(context.Background())
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		srv.Close()
		d.Pool().Drain()
	})
	return d, srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, out
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp
}

func TestAPIEnrollRunAndInspect(t *testing.T) {
	d, srv := apiFleet(t)

	resp, body := postJSON(t, srv.URL+"/v1/modules", EnrollRequest{Spec: testSpec(300)})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("enroll: %d: %s", resp.StatusCode, body)
	}
	var st ModuleStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("enroll response: %v", err)
	}
	if st.ID != "mod-0300" || st.Vendor != "toy" {
		t.Fatalf("enroll response off: %+v", st)
	}

	// Duplicate -> 409; bad spec -> 400; unknown field -> 400.
	if resp, _ := postJSON(t, srv.URL+"/v1/modules", EnrollRequest{Spec: testSpec(300)}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate enroll: %d, want 409", resp.StatusCode)
	}
	bad := testSpec(301)
	bad.Vendor = "nope"
	if resp, _ := postJSON(t, srv.URL+"/v1/modules", EnrollRequest{Spec: bad}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad vendor enroll: %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/v1/modules", map[string]any{"spec": testSpec(302), "tpyo": 1}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field enroll: %d, want 400", resp.StatusCode)
	}

	d.Quiesce()

	// Status reflects the finished run.
	var got ModuleStatus
	if resp := getJSON(t, srv.URL+"/v1/modules/mod-0300", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", resp.StatusCode)
	}
	if got.Status != StatusDone || got.Epochs != 4 {
		t.Fatalf("status after quiesce: %+v", got)
	}

	// List contains exactly our module.
	var list struct {
		Modules []ModuleStatus `json:"modules"`
	}
	getJSON(t, srv.URL+"/v1/modules", &list)
	if len(list.Modules) != 1 || list.Modules[0].ID != "mod-0300" {
		t.Fatalf("list: %+v", list)
	}

	// Report is a parbor/report/v1 with command accounting.
	var rep struct {
		Schema   string            `json:"schema"`
		Commands map[string]uint64 `json:"commands"`
	}
	getJSON(t, srv.URL+"/v1/modules/mod-0300/report", &rep)
	if rep.Schema != "parbor/report/v1" || rep.Commands["activate"] == 0 {
		t.Fatalf("module report: %+v", rep)
	}

	// Rollup sees the one done module.
	var ru Rollup
	getJSON(t, srv.URL+"/v1/rollup", &ru)
	if ru.Schema != RollupSchema || ru.Modules != 1 || ru.Done != 1 || ru.Epochs != 4 {
		t.Fatalf("rollup: %+v", ru)
	}

	// Health and daemon report respond.
	if resp := getJSON(t, srv.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var drep struct {
		Schema string `json:"schema"`
	}
	getJSON(t, srv.URL+"/v1/report", &drep)
	if drep.Schema != "parbor/report/v1" {
		t.Fatalf("daemon report schema %q", drep.Schema)
	}

	// Unknown module -> 404 on every per-module route.
	for _, path := range []string{"/v1/modules/nope", "/v1/modules/nope/report", "/v1/modules/nope/checkpoint"} {
		if resp := getJSON(t, srv.URL+path, nil); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestAPICheckpointRoundTrip(t *testing.T) {
	d, srv := apiFleet(t)
	if _, err := d.Enroll(testSpec(310), nil); err != nil {
		t.Fatalf("enroll: %v", err)
	}
	d.Quiesce()

	// Stream the finished module's checkpoint...
	resp, err := http.Get(srv.URL + "/v1/modules/mod-0310/checkpoint")
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	ckpt, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d: %s", resp.StatusCode, ckpt)
	}

	// ...and enroll a second daemon's module from it, unchanged. The
	// budget is spent, so it resumes directly into done with the
	// identical failure set.
	d2, srv2 := apiFleet(t)
	req := map[string]any{"spec": testSpec(310), "snapshot": json.RawMessage(ckpt)}
	if resp, body := postJSON(t, srv2.URL+"/v1/modules", req); resp.StatusCode != http.StatusCreated {
		t.Fatalf("resume enroll: %d: %s", resp.StatusCode, body)
	}
	m1, _ := d.Registry().Get("mod-0310")
	m2, _ := d2.Registry().Get("mod-0310")
	if m2.Status() != StatusDone {
		t.Fatalf("resumed module status %s, want done", m2.Status())
	}
	if !reflect.DeepEqual(m1.Snapshot().Scheduler, m2.Snapshot().Scheduler) {
		t.Fatalf("checkpoint round trip drifted the scheduler state")
	}

	// A corrupted snapshot is rejected.
	if resp, _ := postJSON(t, srv2.URL+"/v1/modules", map[string]any{
		"spec": testSpec(311), "snapshot": json.RawMessage(`{"schema":"bogus"}`),
	}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus snapshot enroll: %d, want 400", resp.StatusCode)
	}
}

func TestAPIRetireMidRun(t *testing.T) {
	d, srv := apiFleet(t)
	// Unbounded budget: the module would run forever without retire.
	sp := testSpec(320)
	sp.MaxEpochs = 0
	if _, err := d.Enroll(sp, nil); err != nil {
		t.Fatalf("enroll: %v", err)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/modules/mod-0320", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("retire: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retire: %d", resp.StatusCode)
	}
	// The fleet must go quiet on its own now: the retired module is
	// dropped by the next worker that picks it up.
	quiet := make(chan struct{})
	go func() { d.Quiesce(); close(quiet) }()
	select {
	case <-quiet:
	case <-time.After(30 * time.Second):
		t.Fatalf("fleet did not quiesce after retiring its only (unbounded) module")
	}
	if resp := getJSON(t, srv.URL+"/v1/modules/mod-0320", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("retired module still served: %d", resp.StatusCode)
	}
	var ru Rollup
	getJSON(t, srv.URL+"/v1/rollup", &ru)
	if ru.Modules != 0 {
		t.Fatalf("rollup still counts retired module: %+v", ru)
	}
}

// TestAPIErrorPaths table-drives the API's failure envelope: every bad
// request must produce the right status code and a JSON {"error": ...}
// body (or, for mux-level method rejections, a plain 405) — never a
// panic, a 200, or a half-written response.
func TestAPIErrorPaths(t *testing.T) {
	_, srv := apiFleet(t)

	badVendor := testSpec(330)
	badVendor.Vendor = "nope"
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
	}{
		{"enroll bad spec", http.MethodPost, "/v1/modules",
			mustJSON(t, EnrollRequest{Spec: badVendor}), http.StatusBadRequest},
		{"enroll invalid json", http.MethodPost, "/v1/modules", `{"spec":`, http.StatusBadRequest},
		{"enroll unknown field", http.MethodPost, "/v1/modules",
			`{"spec":{},"tpyo":1}`, http.StatusBadRequest},
		{"enroll malformed snapshot", http.MethodPost, "/v1/modules",
			mustJSON(t, map[string]any{"spec": testSpec(331), "snapshot": json.RawMessage(`{"schema":"bogus"}`)}),
			http.StatusBadRequest},
		{"unknown module status", http.MethodGet, "/v1/modules/nope", "", http.StatusNotFound},
		{"unknown module report", http.MethodGet, "/v1/modules/nope/report", "", http.StatusNotFound},
		{"unknown module checkpoint", http.MethodGet, "/v1/modules/nope/checkpoint", "", http.StatusNotFound},
		{"unknown module retire", http.MethodDelete, "/v1/modules/nope", "", http.StatusNotFound},
		{"method not allowed on modules", http.MethodPut, "/v1/modules", "", http.StatusMethodNotAllowed},
		{"method not allowed on module", http.MethodPost, "/v1/modules/x", "", http.StatusMethodNotAllowed},
		{"method not allowed on rollup", http.MethodDelete, "/v1/rollup", "", http.StatusMethodNotAllowed},
		{"analytics without log dir", http.MethodGet, "/v1/analytics", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			if tc.body != "" {
				body = bytes.NewReader([]byte(tc.body))
			}
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatalf("%s %s: %v", tc.method, tc.path, err)
			}
			out, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("%s %s: status %d, want %d: %s", tc.method, tc.path, resp.StatusCode, tc.wantStatus, out)
			}
			if resp.StatusCode != http.StatusMethodNotAllowed {
				var env struct {
					Error string `json:"error"`
				}
				if err := json.Unmarshal(out, &env); err != nil || env.Error == "" {
					t.Fatalf("%s %s: error envelope missing: %s", tc.method, tc.path, out)
				}
			}
		})
	}

	// An empty fleet is not an error: rollup serves zeros, list serves
	// an empty array.
	var ru Rollup
	if resp := getJSON(t, srv.URL+"/v1/rollup", &ru); resp.StatusCode != http.StatusOK {
		t.Fatalf("empty-fleet rollup: %d", resp.StatusCode)
	}
	if ru.Schema != RollupSchema || ru.Modules != 0 || ru.Failures != 0 {
		t.Fatalf("empty-fleet rollup off: %+v", ru)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestAPIAnalytics runs a small logged fleet to completion and checks
// the analytics endpoint agrees with the live rollup.
func TestAPIAnalytics(t *testing.T) {
	d := newDaemon(t, Config{Workers: 2, LogDir: t.TempDir()})
	d.Start(context.Background())
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		srv.Close()
		d.Pool().Drain()
	})
	for i := 0; i < 4; i++ {
		if _, err := d.Enroll(testSpec(340+i), nil); err != nil {
			t.Fatalf("enroll: %v", err)
		}
	}
	d.Quiesce()

	var ar struct {
		Schema   string         `json:"schema"`
		Modules  int            `json:"modules"`
		Epochs   int            `json:"epochs"`
		Failures int            `json:"failures"`
		ByMode   map[string]int `json:"by_mode"`
	}
	if resp := getJSON(t, srv.URL+"/v1/analytics", &ar); resp.StatusCode != http.StatusOK {
		t.Fatalf("analytics: %d", resp.StatusCode)
	}
	live := d.Rollup()
	if ar.Schema != "parbor/fleetlog-rollup/v1" {
		t.Fatalf("analytics schema %q", ar.Schema)
	}
	if ar.Modules != live.Modules || ar.Epochs != live.Epochs {
		t.Fatalf("analytics disagrees with live rollup: %+v vs %+v", ar, live)
	}
	if ar.Failures != live.Failures || !reflect.DeepEqual(ar.ByMode, live.ByMode) {
		t.Fatalf("analytics failure split disagrees: %+v vs %+v (live)", ar, live)
	}
}
