package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"

	"parbor/internal/checkpoint"
	"parbor/internal/faultfs"
	"parbor/internal/fleetlog"
	"parbor/internal/obs"
)

// Fleet-level counter names, reported into the daemon's own
// collector. They are reconciled against per-module state by
// Reconcile.
const (
	CounterEnrolled    = "fleet.enrolled"
	CounterRetired     = "fleet.retired"
	CounterEpochs      = "fleet.epochs"
	CounterNewFailures = "fleet.new_failures"
)

// StateSchema identifies the persisted per-module state entry layout.
const StateSchema = "parbor/fleet-state/v1"

// StateEntry is one module's durable record: the enrollment spec plus
// the latest checkpoint snapshot. A directory of these is the whole
// daemon state — rebuilding every entry reproduces the fleet exactly,
// and each member resumes bit-identically from its snapshot.
type StateEntry struct {
	Schema   string               `json:"schema"`
	Spec     ModuleSpec           `json:"spec"`
	Snapshot *checkpoint.Snapshot `json:"snapshot,omitempty"`
}

// Config tunes a Daemon.
type Config struct {
	// Workers bounds the epoch scheduler; <= 0 selects GOMAXPROCS.
	Workers int
	// StateDir, when non-empty, is where SaveState persists one JSON
	// entry per module and LoadState resumes from. Created on demand.
	StateDir string
	// LogDir, when non-empty, enables the append-only failure-event
	// log: every completed epoch appends one fleetlog event, and the
	// /v1/analytics endpoint classifies the accumulated log.
	LogDir string
	// LogSegmentBytes caps each log segment; <= 0 selects the fleetlog
	// default.
	LogSegmentBytes int64
	// LogRetain, when > 0, garbage-collects the event log down to the
	// newest LogRetain segments after each drain (once the state is
	// persisted). The active tail segment always survives.
	LogRetain int
	// LogBufferCap bounds the events held in memory while the log is
	// degraded; <= 0 selects a default (defaultLogBufferCap). Events
	// beyond the cap are dropped and counted.
	LogBufferCap int
	// FS is the filesystem seam all durable state (event log, state
	// entries) goes through; nil selects the real filesystem. Tests
	// and parbord's -diskchaos-seed flag swap in a fault injector.
	FS faultfs.FS
}

// Daemon ties the fleet together: registry + pool + fleet-level
// observability + persistence. One Daemon is one parbord process.
type Daemon struct {
	cfg  Config
	fsys faultfs.FS
	reg  *Registry
	pool *Pool
	col  *obs.Collector
	log  *logSink
}

// NewDaemon builds an idle daemon; call Start (or Run) to launch the
// workers, and Close when done so the event log is flushed shut.
func NewDaemon(cfg Config) (*Daemon, error) {
	fsys := cfg.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	d := &Daemon{
		cfg:  cfg,
		fsys: fsys,
		reg:  NewRegistry(),
		pool: NewPool(cfg.Workers),
		col:  obs.NewCollector(),
	}
	if cfg.LogDir != "" {
		sink, err := newLogSink(cfg.LogDir, fleetlog.WriterOptions{
			SegmentBytes: cfg.LogSegmentBytes,
			FS:           fsys,
		}, cfg.LogBufferCap, d.col)
		if err != nil {
			return nil, err
		}
		d.log = sink
	}
	return d, nil
}

// sink returns the event-log append hook for enrolled modules, or nil
// when no log is configured.
func (d *Daemon) sink() func(fleetlog.Event) error {
	if d.log == nil {
		return nil
	}
	return d.log.append
}

// Registry exposes the membership table (read-mostly; mutate through
// Enroll/Retire).
func (d *Daemon) Registry() *Registry { return d.reg }

// Pool exposes the epoch scheduler.
func (d *Daemon) Pool() *Pool { return d.pool }

// Enroll validates and builds a module from spec (resuming from snap
// when non-nil), registers it, and queues it for its first quantum.
func (d *Daemon) Enroll(spec ModuleSpec, snap *checkpoint.Snapshot) (*Module, error) {
	m, err := buildModule(spec, snap, d.col, d.sink())
	if err != nil {
		return nil, err
	}
	if err := d.reg.Add(m); err != nil {
		return nil, err
	}
	d.col.Add(CounterEnrolled, 1)
	if m.Status() != StatusDone {
		d.pool.Submit(m)
	}
	return m, nil
}

// Retire removes a module from the fleet. Its last snapshot remains
// readable through the returned module until the caller drops it.
func (d *Daemon) Retire(id string) bool {
	ok := d.reg.Remove(id)
	if ok {
		d.col.Add(CounterRetired, 1)
	}
	return ok
}

// Start launches the scheduler workers.
func (d *Daemon) Start(ctx context.Context) { d.pool.Start(ctx) }

// Drain gracefully stops the scheduler: every in-flight quantum
// finishes (refreshing its module's snapshot), then workers exit.
// After Drain every enrolled module has a current checkpoint by
// construction. If a state dir is configured, the fleet is persisted
// to it.
func (d *Daemon) Drain() error {
	d.pool.Drain()
	if d.log != nil {
		// Sync the log BEFORE persisting checkpoints: a crash between
		// the two leaves the log ahead of the state, and replayed
		// epochs re-log duplicate events the analytics deduplicate.
		// The other order could lose events for checkpointed epochs.
		// A log failure here degrades (it is the sink's problem now)
		// rather than aborting the drain — the checkpoints must land
		// regardless.
		d.log.drain()
	}
	if d.cfg.StateDir != "" {
		if err := d.SaveState(); err != nil {
			return err
		}
	}
	if d.log != nil && d.cfg.LogRetain > 0 {
		// Retention GC only after the state landed: the newest
		// checkpoints supersede the collected segments' events.
		if _, err := fleetlog.GCFS(d.fsys, d.cfg.LogDir, d.cfg.LogRetain); err != nil {
			return fmt.Errorf("fleet: log retention: %w", err)
		}
	}
	return nil
}

// Close releases the daemon's file-backed resources (the event log).
// Call after Drain; idempotent.
func (d *Daemon) Close() error {
	if d.log == nil {
		return nil
	}
	return d.log.close()
}

// Analytics classifies the accumulated failure-event log: the
// out-of-core counterpart of Rollup, covering every epoch ever logged
// to LogDir (including by earlier daemon incarnations) rather than the
// currently enrolled fleet's live state.
func (d *Daemon) Analytics() (*fleetlog.Rollup, error) {
	if d.cfg.LogDir == "" {
		return nil, fmt.Errorf("fleet: no event log configured")
	}
	return fleetlog.Analyze(d.cfg.LogDir, fleetlog.ClassifierConfig{FS: d.fsys})
}

// Run is the daemon main loop: start workers, wait for ctx
// cancellation (SIGTERM in parbord), drain. The returned error is
// from state persistence, not from module failures — those are
// per-module status, visible in the rollup.
func (d *Daemon) Run(ctx context.Context) error {
	d.Start(ctx)
	<-ctx.Done()
	return d.Drain()
}

// Quiesce blocks until no module wants another quantum.
func (d *Daemon) Quiesce() { d.pool.Quiesce() }

// Health is the /healthz body: liveness plus the log-degradation
// state. OK is false while the event log is degraded — the daemon is
// serving and detecting, but its record is running on borrowed
// memory and the operator should look at Reason.
type Health struct {
	OK      bool   `json:"ok"`
	Status  string `json:"status"`
	Modules int    `json:"modules"`
	// Reason is the error that degraded the log, when Status is
	// "degraded".
	Reason string `json:"reason,omitempty"`
	// LogBuffered is how many events are waiting in memory for the
	// log to recover; LogEventsDropped how many were lost beyond the
	// buffer cap.
	LogBuffered      int    `json:"log_buffered,omitempty"`
	LogEventsDropped uint64 `json:"log_events_dropped,omitempty"`
}

// Health reports the daemon's current health.
func (d *Daemon) Health() Health {
	h := Health{OK: true, Status: "ok", Modules: d.reg.Len()}
	if d.log != nil {
		degraded, reason, buffered, dropped := d.log.health()
		h.LogBuffered = buffered
		h.LogEventsDropped = dropped
		if degraded {
			h.OK = false
			h.Status = "degraded"
			h.Reason = reason
		}
	}
	return h
}

// Rollup summarizes the current fleet.
func (d *Daemon) Rollup() *Rollup { return BuildRollup(d.reg.List()) }

// Report snapshots the daemon's fleet-level counters.
func (d *Daemon) Report() *obs.Report { return d.col.Snapshot("parbord") }

// Reconcile cross-checks the fleet-level counters against per-module
// ground truth: the daemon's epoch counter must equal the sum of
// epochs its modules ran under it, and every per-module obs report
// must satisfy its own invariants. Call it only while the pool is
// quiet (drained or quiesced); a running quantum legitimately has
// counters in motion.
func (d *Daemon) Reconcile() error {
	rep := d.Report()
	var wantEpochs uint64
	for _, m := range d.reg.List() {
		st := m.Snapshot().Scheduler
		if ran := st.Epochs - m.baseEpochs; ran > 0 {
			wantEpochs += uint64(ran)
		}
		if err := m.Report().Reconcile(); err != nil {
			return fmt.Errorf("fleet: module %s: %w", m.ID(), err)
		}
	}
	if got := rep.Counters[CounterEpochs]; got != wantEpochs {
		return fmt.Errorf("fleet: reconcile: daemon counted %d epochs, modules ran %d", got, wantEpochs)
	}
	// The daemon's own report carries the log-degradation counters;
	// its Reconcile enforces that dropped events imply a recorded
	// degradation episode.
	if err := rep.Reconcile(); err != nil {
		return fmt.Errorf("fleet: reconcile: %w", err)
	}
	return nil
}

// statePath maps a module ID to its state file.
func (d *Daemon) statePath(id string) string {
	return filepath.Join(d.cfg.StateDir, id+".json")
}

// SaveState writes one StateEntry per enrolled module into StateDir,
// and removes stale entries for modules no longer enrolled. Call only
// while the pool is quiet: it reads each module's latest snapshot,
// which is exactly the between-epochs state after a drain.
func (d *Daemon) SaveState() error {
	if d.cfg.StateDir == "" {
		return fmt.Errorf("fleet: no state dir configured")
	}
	if err := d.fsys.MkdirAll(d.cfg.StateDir, 0o755); err != nil {
		return fmt.Errorf("fleet: creating state dir: %w", err)
	}
	live := make(map[string]bool)
	for _, m := range d.reg.List() {
		entry := StateEntry{Schema: StateSchema, Spec: m.Spec(), Snapshot: m.Snapshot()}
		data, err := json.MarshalIndent(&entry, "", "  ")
		if err != nil {
			return fmt.Errorf("fleet: marshaling state for %s: %w", m.ID(), err)
		}
		path := d.statePath(m.ID())
		// Atomic replace: a crash mid-save must leave either the old
		// entry or the new one — a torn half-entry would poison the
		// next LoadState.
		if err := faultfs.WriteFileAtomic(d.fsys, path, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("fleet: writing state for %s: %w", m.ID(), err)
		}
		live[filepath.Base(path)] = true
	}
	names, err := d.fsys.ReadDir(d.cfg.StateDir)
	if err != nil {
		return fmt.Errorf("fleet: listing state dir: %w", err)
	}
	for _, e := range names {
		if e.IsDir() {
			continue
		}
		stale := strings.HasSuffix(e.Name(), ".json") && !live[e.Name()]
		// A .json.tmp here is debris from a crashed earlier save: every
		// rename in this save already committed.
		stale = stale || strings.HasSuffix(e.Name(), ".json.tmp")
		if stale {
			if err := d.fsys.Remove(filepath.Join(d.cfg.StateDir, e.Name())); err != nil {
				return fmt.Errorf("fleet: pruning state entry: %w", err)
			}
		}
	}
	return nil
}

// LoadState enrolls every entry found in StateDir. Entries are loaded
// in filename order so two restarts of the same fleet see the same
// enrollment order. Returns how many modules were enrolled.
func (d *Daemon) LoadState() (int, error) {
	if d.cfg.StateDir == "" {
		return 0, fmt.Errorf("fleet: no state dir configured")
	}
	entries, err := d.fsys.ReadDir(d.cfg.StateDir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, fmt.Errorf("fleet: listing state dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	n := 0
	for _, name := range names {
		path := filepath.Join(d.cfg.StateDir, name)
		data, err := d.fsys.ReadFile(path)
		if err != nil {
			return n, fmt.Errorf("fleet: reading state entry %s: %w", name, err)
		}
		var entry StateEntry
		if err := json.Unmarshal(data, &entry); err != nil {
			return n, fmt.Errorf("fleet: parsing state entry %s: %w", name, err)
		}
		if entry.Schema != StateSchema {
			return n, fmt.Errorf("fleet: state entry %s: unknown schema %q", name, entry.Schema)
		}
		if _, err := d.Enroll(entry.Spec, entry.Snapshot); err != nil {
			return n, fmt.Errorf("fleet: resuming %s: %w", name, err)
		}
		n++
	}
	return n, nil
}
