// Package fleet multiplexes thousands of checkpointed online-test
// sweeps over a bounded worker pool — the serving-system shape PARBOR
// deploys as: one long-running daemon driving a fleet of simulated
// modules, in the style of the DDR4 field studies (per-vendor,
// per-fault-mode failure populations observed across a machine park).
//
// The pieces:
//
//   - ModuleSpec (this file): the serializable description of one
//     fleet member — geometry, seed, failure models, test config, an
//     optional per-module chaos plane, and an epoch budget.
//   - Module: an enrolled member's runtime — dram.Module, memctl.Host,
//     onlinetest.Scheduler, per-module obs.Collector — whose unit of
//     scheduling is one transactional epoch (RunQuantum). After every
//     epoch the module refreshes an in-memory parbor/checkpoint/v1
//     snapshot, so the fleet is checkpointed at all times by
//     construction, and drain needs no extra save pass.
//   - Registry: enroll/retire bookkeeping.
//   - Pool: the bounded work-stealing scheduler.
//   - Daemon: registry + pool + fleet-level counters + state-dir
//     persistence + the HTTP/JSON API.
//
// fleet is a serving layer, not a simulation layer: it may read the
// wall clock and use maps freely (it is outside the parborvet
// simdeterminism scope). Per-module results remain bit-deterministic
// because every stochastic draw lives below memctl, keyed on
// module-local state that scheduling cannot influence.
package fleet

import (
	"fmt"
	"strings"

	"parbor/internal/chaos"
	"parbor/internal/coupling"
	"parbor/internal/dram"
	"parbor/internal/faults"
	"parbor/internal/onlinetest"
	"parbor/internal/scramble"
)

// ModuleSpec describes one fleet member. It is the enrollment payload
// of the HTTP API and the durable half of a persisted state entry, so
// every field is JSON-serializable and the whole struct is
// self-contained: a spec plus an optional checkpoint snapshot rebuilds
// the member exactly.
type ModuleSpec struct {
	// ID names the module uniquely within the fleet. It appears in
	// state filenames, so the charset is restricted (letters, digits,
	// dot, underscore, dash).
	ID string `json:"id"`
	// Vendor is the scrambling profile name: A, B, C, linear, or toy.
	Vendor string `json:"vendor"`
	// Chips per module; 0 selects the dram default (8).
	Chips int `json:"chips,omitempty"`
	// Banks/Rows/Cols are the per-chip geometry.
	Banks int `json:"banks"`
	Rows  int `json:"rows"`
	Cols  int `json:"cols"`
	// Seed roots the module's process variation.
	Seed uint64 `json:"seed"`
	// WaitMs is the per-pass retention wait; 0 selects the memctl
	// default (4000 ms).
	WaitMs float64 `json:"wait_ms,omitempty"`
	// Coupling and Faults parameterize the cell-level failure models.
	Coupling coupling.Config `json:"coupling"`
	Faults   faults.Config   `json:"faults,omitempty"`
	// Test tunes the online-test scheduler (distances, rows per epoch,
	// retry budget).
	Test onlinetest.Config `json:"test"`
	// Chaos, when non-nil, attaches a per-module controller fault
	// plane: transient glitches and kill/revive chip outages, keyed on
	// the module's own attempt counter so sibling modules never
	// perturb each other's fault schedules.
	Chaos *chaos.Config `json:"chaos,omitempty"`
	// MaxEpochs bounds how many epochs the fleet scheduler runs for
	// this module before marking it done; 0 means unbounded (the
	// module re-queues until retired or the daemon drains).
	MaxEpochs int `json:"max_epochs,omitempty"`
}

// ParseVendor resolves a spec's vendor name.
func ParseVendor(s string) (scramble.Vendor, error) {
	switch strings.ToLower(s) {
	case "a":
		return scramble.VendorA, nil
	case "b":
		return scramble.VendorB, nil
	case "c":
		return scramble.VendorC, nil
	case "linear":
		return scramble.VendorLinear, nil
	case "toy":
		return scramble.VendorToy, nil
	default:
		return 0, fmt.Errorf("fleet: unknown vendor %q (want A|B|C|linear|toy)", s)
	}
}

// validID reports whether an ID is usable as a fleet key and a state
// filename.
func validID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	// Reject names that are only dots (".", "..") — path traversal.
	return strings.Trim(id, ".") != ""
}

// Geometry assembles the spec's per-chip layout.
func (sp ModuleSpec) Geometry() dram.Geometry {
	return dram.Geometry{Banks: sp.Banks, Rows: sp.Rows, Cols: sp.Cols}
}

// Validate rejects specs the fleet cannot build. The deeper layers
// validate again at construction; this pass exists so the API can
// refuse an enrollment with a useful error before any allocation.
func (sp ModuleSpec) Validate() error {
	if !validID(sp.ID) {
		return fmt.Errorf("fleet: invalid module id %q (want 1-128 chars of [A-Za-z0-9._-])", sp.ID)
	}
	if _, err := ParseVendor(sp.Vendor); err != nil {
		return err
	}
	if err := sp.Geometry().Validate(); err != nil {
		return fmt.Errorf("fleet: module %s: %w", sp.ID, err)
	}
	if sp.Chips < 0 {
		return fmt.Errorf("fleet: module %s: negative chip count %d", sp.ID, sp.Chips)
	}
	if sp.WaitMs < 0 {
		return fmt.Errorf("fleet: module %s: negative wait %v", sp.ID, sp.WaitMs)
	}
	if sp.MaxEpochs < 0 {
		return fmt.Errorf("fleet: module %s: negative epoch budget %d", sp.ID, sp.MaxEpochs)
	}
	if err := sp.Test.Validate(); err != nil {
		return fmt.Errorf("fleet: module %s: %w", sp.ID, err)
	}
	if sp.Chaos != nil {
		if err := sp.Chaos.Validate(); err != nil {
			return fmt.Errorf("fleet: module %s: %w", sp.ID, err)
		}
	}
	return nil
}
