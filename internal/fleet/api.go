package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"parbor/internal/checkpoint"
)

// The HTTP/JSON API. Routes (Go 1.22 method+wildcard patterns):
//
//	GET    /healthz                    liveness
//	POST   /v1/modules                 enroll (body: EnrollRequest)
//	GET    /v1/modules                 list statuses
//	GET    /v1/modules/{id}            one status
//	DELETE /v1/modules/{id}            retire
//	GET    /v1/modules/{id}/report     parbor/report/v1 for the module
//	GET    /v1/modules/{id}/checkpoint parbor/checkpoint/v1 snapshot
//	GET    /v1/rollup                  fleet-wide failure rollup
//	GET    /v1/analytics               event-log fault-mode analytics
//	GET    /v1/report                  daemon's own parbor/report/v1
//
// Everything is JSON; errors are {"error": "..."} with a 4xx/5xx
// status. The checkpoint endpoint serves checkpoint.Marshal bytes
// verbatim, so `curl .../checkpoint > snap.json` produces a file
// `parbor -resume snap.json` accepts.

// EnrollRequest is the POST /v1/modules body: a spec plus an optional
// checkpoint to resume from — the same pair a persisted StateEntry
// carries, so re-enrolling a saved entry is a byte-level passthrough.
type EnrollRequest struct {
	Spec     ModuleSpec       `json:"spec"`
	Snapshot *json.RawMessage `json:"snapshot,omitempty"`
}

// ModuleStatus is the API view of one enrolled module.
type ModuleStatus struct {
	ID          string `json:"id"`
	Vendor      string `json:"vendor"`
	Status      Status `json:"status"`
	Epochs      int    `json:"epochs"`
	MaxEpochs   int    `json:"max_epochs,omitempty"`
	Rounds      int    `json:"rounds"`
	Failures    int    `json:"failures"`
	Quarantined []int  `json:"quarantined,omitempty"`
	Error       string `json:"error,omitempty"`
}

// status builds the API view from the module's immutable snapshot.
func moduleStatus(m *Module) ModuleStatus {
	st := m.Snapshot().Scheduler
	ms := ModuleStatus{
		ID:          m.ID(),
		Vendor:      m.Spec().Vendor,
		Status:      m.Status(),
		Epochs:      st.Epochs,
		MaxEpochs:   m.Spec().MaxEpochs,
		Rounds:      st.Rounds,
		Failures:    len(st.EverSeen),
		Quarantined: st.Quarantined,
	}
	if err := m.Err(); err != nil {
		ms.Error = err.Error()
	}
	return ms
}

// Handler builds the daemon's HTTP API.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Always 200: a degraded log is an operator signal, not a
		// liveness failure — load balancers must not kill a daemon
		// that is detecting fine and merely buffering its log.
		writeJSON(w, http.StatusOK, d.Health())
	})
	mux.HandleFunc("POST /v1/modules", d.handleEnroll)
	mux.HandleFunc("GET /v1/modules", d.handleList)
	mux.HandleFunc("GET /v1/modules/{id}", d.handleModule(func(w http.ResponseWriter, m *Module) {
		writeJSON(w, http.StatusOK, moduleStatus(m))
	}))
	mux.HandleFunc("DELETE /v1/modules/{id}", d.handleRetire)
	mux.HandleFunc("GET /v1/modules/{id}/report", d.handleModule(func(w http.ResponseWriter, m *Module) {
		writeJSON(w, http.StatusOK, m.Report())
	}))
	mux.HandleFunc("GET /v1/modules/{id}/checkpoint", d.handleModule(func(w http.ResponseWriter, m *Module) {
		data, err := m.Snapshot().Marshal()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	}))
	mux.HandleFunc("GET /v1/rollup", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Rollup())
	})
	mux.HandleFunc("GET /v1/analytics", func(w http.ResponseWriter, r *http.Request) {
		if d.cfg.LogDir == "" {
			writeError(w, http.StatusNotFound, errors.New("fleet: no event log configured (run with -log-dir)"))
			return
		}
		ru, err := d.Analytics()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, ru)
	})
	mux.HandleFunc("GET /v1/report", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Report())
	})
	return mux
}

// maxEnrollBody bounds an enrollment payload: a spec is small, and a
// resumed snapshot scales with the failure set, so 16 MiB is generous.
const maxEnrollBody = 16 << 20

func (d *Daemon) handleEnroll(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxEnrollBody+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("fleet: reading body: %w", err))
		return
	}
	if len(body) > maxEnrollBody {
		writeError(w, http.StatusRequestEntityTooLarge, errors.New("fleet: enrollment body over 16 MiB"))
		return
	}
	// Strict decode: a typoed field silently ignored would enroll a
	// module with default (zero) noise models and nobody would notice
	// until the rollup looked implausibly clean.
	var req EnrollRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("fleet: parsing enrollment: %w", err))
		return
	}
	var snap *checkpoint.Snapshot
	if req.Snapshot != nil {
		s, err := checkpoint.Unmarshal(*req.Snapshot)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		snap = s
	}
	m, err := d.Enroll(req.Spec, snap)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "already enrolled") {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, moduleStatus(m))
}

func (d *Daemon) handleList(w http.ResponseWriter, r *http.Request) {
	mods := d.reg.List()
	out := make([]ModuleStatus, 0, len(mods))
	for _, m := range mods {
		out = append(out, moduleStatus(m))
	}
	writeJSON(w, http.StatusOK, map[string]any{"modules": out})
}

func (d *Daemon) handleRetire(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !d.Retire(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("fleet: no module %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"retired": id})
}

// handleModule adapts a per-module handler, resolving {id}.
func (d *Daemon) handleModule(fn func(http.ResponseWriter, *Module)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		m, ok := d.reg.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("fleet: no module %q", id))
			return
		}
		fn(w, m)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
