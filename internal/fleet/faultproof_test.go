package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"

	"parbor/internal/faultfs"
	"parbor/internal/fleetlog"
	"parbor/internal/memctl"
	"parbor/internal/obs"
	"parbor/internal/onlinetest"
)

// The proof suite for the disk-fault plane: the daemon's durability
// and degradation policies, exercised against injected storage
// failures whose damage lands on real files.

// sweepSpecs is the crash sweep's fixed two-module fleet.
func sweepSpecs() []ModuleSpec {
	return []ModuleSpec{testSpec(900), testSpec(901)}
}

// runFleetScenario is the scenario under test: open a daemon over
// fsys, enroll the sweep fleet, run every epoch, drain, close. The
// returned error is whatever the storage failure surfaced — crash
// replays expect one and only care about the on-disk aftermath.
func runFleetScenario(fsys faultfs.FS, stateDir, logDir string) error {
	d, err := NewDaemon(Config{Workers: 1, StateDir: stateDir, LogDir: logDir, FS: fsys})
	if err != nil {
		return err
	}
	defer d.Close()
	for _, sp := range sweepSpecs() {
		if _, err := d.Enroll(sp, nil); err != nil {
			return err
		}
	}
	d.Start(context.Background())
	d.Quiesce()
	if err := d.Drain(); err != nil {
		return err
	}
	return d.Close()
}

// readLogEvents reads every intact event with a clean filesystem.
func readLogEvents(t *testing.T, dir string) []fleetlog.Event {
	t.Helper()
	it, err := fleetlog.OpenIter(dir)
	if err != nil {
		t.Fatalf("OpenIter: %v", err)
	}
	defer it.Close()
	var out []fleetlog.Event
	for {
		ev, err := it.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("reading post-crash log: %v", err)
		}
		out = append(out, ev)
	}
}

// refStates runs the sweep fleet uninterrupted (no log, no state, real
// filesystem) and returns each module's final scheduler state — the
// bit-identity baseline every crash recovery must reproduce.
func refStates(t *testing.T) map[string]onlinetest.State {
	t.Helper()
	d := newDaemon(t, Config{Workers: 1})
	for _, sp := range sweepSpecs() {
		if _, err := d.Enroll(sp, nil); err != nil {
			t.Fatalf("ref enroll: %v", err)
		}
	}
	d.Start(context.Background())
	d.Quiesce()
	d.Pool().Drain()
	out := make(map[string]onlinetest.State)
	for _, m := range d.Registry().List() {
		if m.Status() != StatusDone {
			t.Fatalf("ref module %s: %s (%v)", m.ID(), m.Status(), m.Err())
		}
		out[m.ID()] = m.Snapshot().Scheduler
	}
	return out
}

// TestEveryFaultPointCrashSweep enumerates every instant the daemon's
// storage could lose power. A counting pass learns the scenario's
// operation trace; then, for every operation and for both sides of
// each torn transition (plus mid-buffer for writes), the scenario
// replays with the world stopped at exactly that point. After each
// crash the aftermath is reopened with a CLEAN filesystem and must
// satisfy the recovery contract:
//
//   - The state directory parses: every entry is the old or the new
//     checkpoint, never a torn hybrid (LoadState succeeds).
//   - The event log opens and streams: torn tails truncate away,
//     nothing upstream of them is lost (readLogEvents succeeds).
//   - Log ⊇ checkpoint: every epoch a persisted checkpoint claims is
//     present in the log — the daemon may never admit to an epoch its
//     analytics cannot see.
//   - A resumed daemon finishes the sweep bit-identically to an
//     uninterrupted run: no crash point can corrupt detection.
func TestEveryFaultPointCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep skipped in -short mode")
	}
	ref := refStates(t)

	// Counting pass: a fault-free injector traces the scenario.
	count, err := faultfs.NewInjector(faultfs.OS{}, faultfs.InjectorConfig{})
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	if err := runFleetScenario(count, t.TempDir(), t.TempDir()); err != nil {
		t.Fatalf("counting pass: %v", err)
	}
	total := count.Ops()
	if total < 20 {
		t.Fatalf("scenario traced only %d ops; the sweep would be vacuous", total)
	}
	t.Logf("sweeping %d crash points x 3 crash shapes", total)

	for crashOp := 1; crashOp <= total; crashOp++ {
		for _, crashByte := range []int{0, 3, 1 << 30} {
			name := fmt.Sprintf("op%03d/byte%d", crashOp, crashByte)
			stateDir, logDir := t.TempDir(), t.TempDir()
			inj, err := faultfs.NewInjector(faultfs.OS{}, faultfs.InjectorConfig{
				CrashOp:   crashOp,
				CrashByte: crashByte,
			})
			if err != nil {
				t.Fatalf("%s: NewInjector: %v", name, err)
			}
			runFleetScenario(inj, stateDir, logDir) // error expected: the world stopped
			if !inj.Crashed() {
				t.Fatalf("%s: crash point never reached", name)
			}

			// "Reboot": reopen everything with the real filesystem.
			d, err := NewDaemon(Config{Workers: 1, StateDir: stateDir, LogDir: logDir})
			if err != nil {
				t.Fatalf("%s: reopening daemon: %v", name, err)
			}
			loaded, err := d.LoadState()
			if err != nil {
				d.Close()
				t.Fatalf("%s: LoadState after crash: %v", name, err)
			}

			// Log ⊇ checkpoint.
			logged := make(map[string]map[int]bool)
			for _, ev := range readLogEvents(t, logDir) {
				if logged[ev.Module] == nil {
					logged[ev.Module] = make(map[int]bool)
				}
				logged[ev.Module][ev.Epoch] = true
			}
			for _, m := range d.Registry().List() {
				k := m.Snapshot().Scheduler.Epochs
				for e := 1; e <= k; e++ {
					if !logged[m.ID()][e] {
						d.Close()
						t.Fatalf("%s: checkpoint for %s claims epoch %d but the log lacks it (loaded %d modules)",
							name, m.ID(), e, loaded)
					}
				}
			}

			// Enroll whatever the crash lost, then finish the sweep.
			for _, sp := range sweepSpecs() {
				if _, ok := d.Registry().Get(sp.ID); !ok {
					if _, err := d.Enroll(sp, nil); err != nil {
						d.Close()
						t.Fatalf("%s: re-enrolling %s: %v", name, sp.ID, err)
					}
				}
			}
			d.Start(context.Background())
			d.Quiesce()
			if err := d.Drain(); err != nil {
				d.Close()
				t.Fatalf("%s: recovery drain: %v", name, err)
			}
			if err := d.Close(); err != nil {
				t.Fatalf("%s: recovery close: %v", name, err)
			}

			// Bit-identity with the uninterrupted baseline.
			for _, m := range d.Registry().List() {
				if m.Status() != StatusDone {
					t.Fatalf("%s: module %s wedged: %s (%v)", name, m.ID(), m.Status(), m.Err())
				}
				got, want := m.Snapshot().Scheduler, ref[m.ID()]
				if got.Epochs != want.Epochs || got.Retries != want.Retries ||
					!reflect.DeepEqual(got.EverSeen, want.EverSeen) ||
					!reflect.DeepEqual(got.Quarantined, want.Quarantined) {
					t.Fatalf("%s: module %s recovered to a different state than the uninterrupted run", name, m.ID())
				}
			}

			// The healed log covers the full sweep for both modules.
			lr, err := fleetlog.Analyze(logDir, fleetlog.ClassifierConfig{})
			if err != nil {
				t.Fatalf("%s: analyzing healed log: %v", name, err)
			}
			if lr.Modules != 2 || lr.Epochs != 8 {
				t.Fatalf("%s: healed log covers %d modules / %d epochs, want 2 / 8", name, lr.Modules, lr.Epochs)
			}
		}
	}
}

// TestLogDegradedServingAndRecovery breaks the log's storage outright
// ("volume detached") and proves the daemon's contract: detection
// keeps running bit-identically, /healthz turns degraded with the
// reason, the episode and nothing else is counted, and once storage
// heals, a drain flushes the buffered backlog so the log ends up
// complete.
func TestLogDegradedServingAndRecovery(t *testing.T) {
	// Reference: same fleet with no log at all.
	ref := newDaemon(t, Config{Workers: 2})
	for i := 0; i < 3; i++ {
		if _, err := ref.Enroll(testSpec(910+i), nil); err != nil {
			t.Fatalf("ref enroll: %v", err)
		}
	}
	ref.Start(context.Background())
	ref.Quiesce()
	ref.Pool().Drain()

	logDir := t.TempDir()
	inj, err := faultfs.NewInjector(faultfs.OS{}, faultfs.InjectorConfig{})
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	d := newDaemon(t, Config{Workers: 2, LogDir: logDir, FS: inj})
	for i := 0; i < 3; i++ {
		if _, err := d.Enroll(testSpec(910+i), nil); err != nil {
			t.Fatalf("enroll: %v", err)
		}
	}

	// The volume detaches before the first epoch completes.
	inj.Break(nil)
	d.Start(context.Background())
	d.Quiesce()
	d.Pool().Drain()

	// Detection survived the outage, bit-identically.
	for _, m := range d.Registry().List() {
		if m.Status() != StatusDone {
			t.Fatalf("module %s did not finish under a dead log: %s (%v)", m.ID(), m.Status(), m.Err())
		}
		want, _ := ref.Registry().Get(m.ID())
		if !reflect.DeepEqual(m.Snapshot().Scheduler, want.Snapshot().Scheduler) {
			t.Fatalf("module %s: a dead log changed detection results", m.ID())
		}
	}

	// The degradation is visible and accounted.
	h := d.Health()
	if h.OK || h.Status != "degraded" || h.Reason == "" {
		t.Fatalf("health during outage: %+v", h)
	}
	if h.LogBuffered != 12 || h.LogEventsDropped != 0 {
		t.Fatalf("expected all 12 events buffered, none dropped: %+v", h)
	}
	if got := d.Report().Counters[obs.CounterLogDegraded]; got != 1 {
		t.Fatalf("counted %d degradation episodes, want 1", got)
	}
	if err := d.Reconcile(); err != nil {
		t.Fatalf("reconcile during outage: %v", err)
	}

	// /healthz serves the same picture over HTTP, still with a 200 (a
	// degraded log must not get the daemon killed by a load balancer).
	rec := httptest.NewRecorder()
	d.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d during outage", rec.Code)
	}
	var hz Health
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	if hz.OK || hz.Status != "degraded" || hz.Reason == "" || hz.LogBuffered != 12 {
		t.Fatalf("healthz body during outage: %+v", hz)
	}

	// The volume reattaches; the drain's probe flushes the backlog.
	inj.Heal()
	if err := d.Drain(); err != nil {
		t.Fatalf("drain after heal: %v", err)
	}
	h = d.Health()
	if !h.OK || h.Status != "ok" || h.LogBuffered != 0 {
		t.Fatalf("health after recovery: %+v", h)
	}
	if err := d.Reconcile(); err != nil {
		t.Fatalf("reconcile after recovery: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Nothing was lost: the recovered log classifies identically to
	// the live fleet.
	lr, err := fleetlog.Analyze(logDir, fleetlog.ClassifierConfig{})
	if err != nil {
		t.Fatalf("analyzing recovered log: %v", err)
	}
	r := d.Rollup()
	if lr.Events != 12 || lr.Modules != 3 || lr.Epochs != 12 {
		t.Fatalf("recovered log events=%d modules=%d epochs=%d, want 12/3/12", lr.Events, lr.Modules, lr.Epochs)
	}
	if lr.Failures != r.Failures || !reflect.DeepEqual(lr.ByMode, r.ByMode) {
		t.Fatalf("recovered log diverged from live rollup:\nlog:  %d failures, %v\nlive: %d failures, %v",
			lr.Failures, lr.ByMode, r.Failures, r.ByMode)
	}
}

// TestLogDegradedBufferCapDrops shrinks the degraded-mode buffer below
// the event volume: the overflow must be dropped and counted, and the
// books must still reconcile (drops imply a recorded episode).
func TestLogDegradedBufferCapDrops(t *testing.T) {
	inj, err := faultfs.NewInjector(faultfs.OS{}, faultfs.InjectorConfig{})
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	d := newDaemon(t, Config{Workers: 2, LogDir: t.TempDir(), LogBufferCap: 4, FS: inj})
	for i := 0; i < 3; i++ {
		if _, err := d.Enroll(testSpec(920+i), nil); err != nil {
			t.Fatalf("enroll: %v", err)
		}
	}
	inj.Break(nil)
	d.Start(context.Background())
	d.Quiesce()
	d.Pool().Drain()

	h := d.Health()
	if h.LogBuffered != 4 || h.LogEventsDropped != 8 {
		t.Fatalf("buffer accounting: %+v (want 4 buffered, 8 dropped)", h)
	}
	rep := d.Report()
	if rep.Counters[obs.CounterLogEventsDropped] != 8 || rep.Counters[obs.CounterLogDegraded] != 1 {
		t.Fatalf("drop counters: dropped=%d degraded=%d",
			rep.Counters[obs.CounterLogEventsDropped], rep.Counters[obs.CounterLogDegraded])
	}
	if err := d.Reconcile(); err != nil {
		t.Fatalf("reconcile with drops: %v", err)
	}
	// Every module still finished: drops cost the record, never the
	// detection.
	for _, m := range d.Registry().List() {
		if m.Status() != StatusDone {
			t.Fatalf("module %s: %s (%v)", m.ID(), m.Status(), m.Err())
		}
	}
}

// oracleRollup recomputes the classification of an event set the naive
// way — everything in maps, no spilling, no streaming — mirroring the
// classifier's published semantics: distinct epochs per module,
// distinct failing cells, distinct (cell, epoch) observations, the
// transient/permanent split, and per-(chip,bank) fault modes.
func oracleRollup(events []fleetlog.Event, truncations int) *fleetlog.Rollup {
	type cell struct {
		a memctl.BitAddr
	}
	epochs := make(map[string]map[int]bool)
	obsSet := make(map[string]map[cell]map[int]bool)
	var order []string
	seen := make(map[string]bool)
	for _, ev := range events {
		if !seen[ev.Module] {
			seen[ev.Module] = true
			order = append(order, ev.Module)
		}
		if epochs[ev.Module] == nil {
			epochs[ev.Module] = make(map[int]bool)
		}
		epochs[ev.Module][ev.Epoch] = true
		for _, a := range ev.Fails {
			if obsSet[ev.Module] == nil {
				obsSet[ev.Module] = make(map[cell]map[int]bool)
			}
			c := cell{a}
			if obsSet[ev.Module][c] == nil {
				obsSet[ev.Module][c] = make(map[int]bool)
			}
			obsSet[ev.Module][c][ev.Epoch] = true
		}
	}

	r := &fleetlog.Rollup{
		Schema:      fleetlog.RollupSchema,
		Events:      len(events),
		Truncations: truncations,
		Modules:     len(order),
	}
	for _, mod := range order {
		mr := fleetlog.ModuleRollup{Module: mod, Epochs: len(epochs[mod])}
		type bankKey struct{ chip, bank int16 }
		banks := make(map[bankKey][]memctl.BitAddr)
		for c, eps := range obsSet[mod] {
			mr.Failures++
			mr.Observations += len(eps)
			if len(eps) >= 2 {
				mr.Permanent++
			} else {
				mr.Transient++
			}
			bk := bankKey{c.a.Chip, c.a.Bank}
			banks[bk] = append(banks[bk], c.a)
		}
		for _, addrs := range banks {
			mode := ModeMultiCell
			oneRow, oneCol := true, true
			for _, a := range addrs {
				if a.Row != addrs[0].Row {
					oneRow = false
				}
				if a.Col != addrs[0].Col {
					oneCol = false
				}
			}
			switch {
			case len(addrs) == 1:
				mode = ModeSingleBit
			case oneRow:
				mode = ModeSingleRow
			case oneCol:
				mode = ModeSingleColumn
			}
			if mr.ByMode == nil {
				mr.ByMode = make(map[string]int)
			}
			mr.ByMode[mode]++
		}
		r.Epochs += mr.Epochs
		r.Failures += mr.Failures
		r.Observations += mr.Observations
		r.Transient += mr.Transient
		r.Permanent += mr.Permanent
		if mr.Failures > 0 {
			r.FailingModules++
		}
		for mode, n := range mr.ByMode {
			if r.ByMode == nil {
				r.ByMode = make(map[string]int)
			}
			r.ByMode[mode] += n
		}
		r.PerModule = append(r.PerModule, mr)
	}
	sort.Slice(r.PerModule, func(i, j int) bool { return r.PerModule[i].Module < r.PerModule[j].Module })
	if len(r.PerModule) == 0 {
		r.PerModule = nil
	}
	return r
}

// TestDiskChaosSoakOracle runs a fleet with a seeded probabilistic
// fault injector under ALL durable state — the parbord -diskchaos-seed
// deployment shape — and proves the analytics contract on whatever
// survived: the streaming, spilling, out-of-core rollup of the
// surviving log must equal a naive in-memory recomputation, byte for
// byte.
func TestDiskChaosSoakOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("disk-chaos soak skipped in -short mode")
	}
	logDir := t.TempDir()
	const p = 0.02
	inj, err := faultfs.NewInjector(faultfs.OS{}, faultfs.InjectorConfig{
		Seed:           1905,
		WriteErrProb:   p,
		ShortWriteProb: p,
		SyncErrProb:    p,
		ReadErrProb:    p,
		RenameErrProb:  p,
	})
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	d, err := NewDaemon(Config{Workers: 4, LogDir: logDir, LogSegmentBytes: 1 << 10, FS: inj})
	if err != nil {
		// The injector can refuse the very first open; that is a valid
		// (if boring) draw, but this seed is chosen to get further.
		t.Fatalf("NewDaemon under chaos: %v", err)
	}
	defer d.Close()
	const n = 24
	for i := 0; i < n; i++ {
		sp := testSpec(930 + i)
		if i%3 == 0 {
			sp = withChaos(sp, i)
		}
		if _, err := d.Enroll(sp, nil); err != nil {
			t.Fatalf("enroll: %v", err)
		}
	}
	d.Start(context.Background())
	d.Quiesce()
	if err := d.Drain(); err != nil {
		t.Fatalf("drain under chaos: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close under chaos: %v", err)
	}
	if inj.Faults() == 0 {
		t.Fatalf("chaos plane injected nothing; the soak is vacuous")
	}
	for _, m := range d.Registry().List() {
		if m.Status() != StatusDone {
			t.Fatalf("module %s: %s (%v) — storage chaos must never fail detection", m.ID(), m.Status(), m.Err())
		}
	}
	t.Logf("soak: %d ops, %d faults injected, health %+v", inj.Ops(), inj.Faults(), d.Health())

	// Collect the survivors with a clean filesystem, then compare the
	// out-of-core classifier (budget forced into spill-and-merge)
	// against the naive oracle.
	it, err := fleetlog.OpenIter(logDir)
	if err != nil {
		t.Fatalf("OpenIter: %v", err)
	}
	var survivors []fleetlog.Event
	for {
		ev, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("surviving log is corrupt: %v", err)
		}
		survivors = append(survivors, ev)
	}
	truncs := len(it.Truncations())
	it.Close()
	if len(survivors) == 0 {
		t.Fatalf("no events survived; the oracle comparison is vacuous")
	}

	got, err := fleetlog.Analyze(logDir, fleetlog.ClassifierConfig{MaxKeys: 16, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatalf("streaming rollup of surviving log: %v", err)
	}
	want := oracleRollup(survivors, truncs)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streaming rollup diverged from the in-memory oracle:\ngot:  %+v\nwant: %+v", got, want)
	}
	t.Logf("oracle agreed: %d surviving events, %d truncations, %d failures (%d modules)",
		got.Events, got.Truncations, got.Failures, got.Modules)
}
