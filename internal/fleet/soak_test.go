package fleet

import (
	"context"
	"reflect"
	"testing"
	"time"

	"parbor/internal/fleetlog"
)

// TestSoakThousandModulesDrainResume is the fleet acceptance test: a
// parbord-shaped daemon enrolls 1,000 modules (a third with chaos
// kill/revive planes), drives them concurrently under the bounded
// worker pool, is drained mid-run the way SIGTERM drains parbord, and
// a second daemon resumed from the persisted state finishes the work.
// Every module's final failure set must be bit-identical to an
// uninterrupted reference fleet's. Run it under -race at GOMAXPROCS=8
// (the CI matrix does) to also make it a scheduler race soak.
func TestSoakThousandModulesDrainResume(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const n = 1000
	specs := make([]ModuleSpec, n)
	for i := range specs {
		sp := testSpec(i)
		if i%3 == 0 {
			sp = withChaos(sp, i)
		}
		specs[i] = sp
	}

	// Reference fleet: uninterrupted run to quiescence.
	ref := newDaemon(t, Config{Workers: 8})
	for _, sp := range specs {
		if _, err := ref.Enroll(sp, nil); err != nil {
			t.Fatalf("ref enroll %s: %v", sp.ID, err)
		}
	}
	ref.Start(context.Background())
	ref.Quiesce()
	ref.Pool().Drain()
	if err := ref.Reconcile(); err != nil {
		t.Fatalf("ref reconcile: %v", err)
	}

	// Interrupted fleet: drain mid-run (parbord's SIGTERM path is
	// exactly this — cancel the run context, Daemon.Run drains and
	// persists). Both incarnations append to the same event log, as
	// parbord restarted with the same -log-dir would.
	dir := t.TempDir()
	logDir := t.TempDir()
	d1 := newDaemon(t, Config{Workers: 8, StateDir: dir, LogDir: logDir})
	for _, sp := range specs {
		if _, err := d1.Enroll(sp, nil); err != nil {
			t.Fatalf("d1 enroll %s: %v", sp.ID, err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d1.Run(ctx) }()
	// Let the fleet get partway through its 4000 epochs, then pull
	// the plug.
	deadline := time.Now().Add(30 * time.Second)
	for d1.Report().Counters[CounterEpochs] < 500 {
		if time.Now().After(deadline) {
			t.Fatalf("fleet stuck: only %d epochs", d1.Report().Counters[CounterEpochs])
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The first incarnation's process is over: its log handle closes
	// and the resumed daemon reopens the directory for append.
	if err := d1.Close(); err != nil {
		t.Fatalf("closing drained daemon: %v", err)
	}

	// Post-drain invariants: nothing is mid-epoch, and every module —
	// finished or not — holds a current checkpoint.
	unfinished := 0
	for _, m := range d1.Registry().List() {
		switch m.Status() {
		case StatusRunning:
			t.Fatalf("module %s still running after drain", m.ID())
		case StatusFailed:
			t.Fatalf("module %s failed: %v", m.ID(), m.Err())
		case StatusDone:
		default:
			unfinished++
		}
		if m.Snapshot() == nil {
			t.Fatalf("module %s drained without a checkpoint", m.ID())
		}
	}
	if unfinished == 0 {
		t.Fatalf("drain landed after fleet completion; resume test is vacuous")
	}
	t.Logf("drained with %d/%d modules unfinished", unfinished, n)

	// Resumed fleet: load the persisted state and run to quiescence.
	d2 := newDaemon(t, Config{Workers: 8, StateDir: dir, LogDir: logDir})
	if got, err := d2.LoadState(); err != nil || got != n {
		t.Fatalf("resume loaded %d modules, err %v; want %d, nil", got, err, n)
	}
	d2.Start(context.Background())
	d2.Quiesce()
	d2.Pool().Drain()
	if err := d2.Reconcile(); err != nil {
		t.Fatalf("resumed reconcile: %v", err)
	}
	if d2.Report().Counters[CounterEpochs] == 0 {
		t.Fatalf("resumed daemon ran no epochs")
	}

	// Bit-identity: every module's post-resume state matches the
	// uninterrupted reference exactly — failure sets, quarantine
	// decisions, retry totals, epoch counts.
	sawChaosQuarantine := false
	for _, m2 := range d2.Registry().List() {
		m1, ok := ref.Registry().Get(m2.ID())
		if !ok {
			t.Fatalf("resumed fleet has unknown module %s", m2.ID())
		}
		if m2.Status() != StatusDone {
			t.Fatalf("module %s did not finish after resume: %s (err %v)", m2.ID(), m2.Status(), m2.Err())
		}
		st1, st2 := m1.Snapshot().Scheduler, m2.Snapshot().Scheduler
		if !reflect.DeepEqual(st1.EverSeen, st2.EverSeen) {
			t.Fatalf("module %s: failure set diverged after resume (%d vs %d bits)",
				m2.ID(), len(st1.EverSeen), len(st2.EverSeen))
		}
		if st1.Epochs != st2.Epochs || st1.Retries != st2.Retries ||
			!reflect.DeepEqual(st1.Quarantined, st2.Quarantined) {
			t.Fatalf("module %s: progress diverged: epochs %d/%d retries %d/%d quarantined %v/%v",
				m2.ID(), st1.Epochs, st2.Epochs, st1.Retries, st2.Retries,
				st1.Quarantined, st2.Quarantined)
		}
		if len(st2.Quarantined) > 0 {
			sawChaosQuarantine = true
		}
	}
	if !sawChaosQuarantine {
		t.Fatalf("no module quarantined a chip; the kill/revive plane never bit")
	}

	// The two fleets' rollups must agree wherever state is compared
	// (population status counts trivially match — everything is done).
	r1, r2 := ref.Rollup(), d2.Rollup()
	if r1.Failures != r2.Failures || r1.FailingModules != r2.FailingModules ||
		!reflect.DeepEqual(r1.ByMode, r2.ByMode) || !reflect.DeepEqual(r1.ByVendor, r2.ByVendor) {
		t.Fatalf("rollups diverged:\nref:     %+v\nresumed: %+v", r1, r2)
	}

	// The event log, spanning both incarnations, replayed through the
	// out-of-core classifier (with a budget small enough to force
	// spill-and-merge at this scale) must reproduce the live rollup
	// exactly: same failing cells, same fault-mode split, all 4,000
	// epochs accounted for, no torn tails from a graceful drain.
	lr, err := fleetlog.Analyze(logDir, fleetlog.ClassifierConfig{MaxKeys: 1 << 12, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatalf("analyzing event log: %v", err)
	}
	if lr.Truncations != 0 {
		t.Fatalf("gracefully drained log has %d torn tails", lr.Truncations)
	}
	if lr.Modules != n || lr.Epochs != 4*n {
		t.Fatalf("log covers %d modules / %d epochs, want %d / %d", lr.Modules, lr.Epochs, n, 4*n)
	}
	if lr.Failures != r2.Failures || lr.FailingModules != r2.FailingModules ||
		!reflect.DeepEqual(lr.ByMode, r2.ByMode) {
		t.Fatalf("log classification diverged from live rollup:\nlog:  failures=%d failing=%d modes=%v\nlive: failures=%d failing=%d modes=%v",
			lr.Failures, lr.FailingModules, lr.ByMode, r2.Failures, r2.FailingModules, r2.ByMode)
	}
	if lr.Failures != lr.Transient+lr.Permanent {
		t.Fatalf("permanence split does not partition: %d != %d + %d", lr.Failures, lr.Transient, lr.Permanent)
	}
	if lr.Permanent == 0 {
		t.Fatalf("no fault repeated across epochs in a two-sweep budget; permanence signal is vacuous")
	}
	t.Logf("log rollup: %d events, %d failures (%d transient, %d permanent), modes %v",
		lr.Events, lr.Failures, lr.Transient, lr.Permanent, lr.ByMode)
}
