package fleet

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is the fleet's membership table: enrolled modules by ID,
// with enrollment order preserved so listings and persisted state are
// stable. It is safe for concurrent use; it holds no scheduling state
// (that is the Pool's job) and no simulation state (the Module's).
type Registry struct {
	mu    sync.Mutex
	byID  map[string]*Module //parbor:guardedby mu
	order []string           //parbor:guardedby mu
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*Module)}
}

// Add enrolls a module, rejecting duplicate IDs.
func (r *Registry) Add(m *Module) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := m.ID()
	if _, ok := r.byID[id]; ok {
		return fmt.Errorf("fleet: module %s already enrolled", id)
	}
	r.byID[id] = m
	r.order = append(r.order, id)
	return nil
}

// Get looks a module up by ID.
func (r *Registry) Get(id string) (*Module, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.byID[id]
	return m, ok
}

// Remove retires and forgets a module. It reports whether the ID was
// enrolled. The module object stays valid — an in-flight quantum
// finishes and drops it.
func (r *Registry) Remove(id string) bool {
	r.mu.Lock()
	m, ok := r.byID[id]
	if ok {
		delete(r.byID, id)
		for i, v := range r.order {
			if v == id {
				r.order = append(r.order[:i], r.order[i+1:]...)
				break
			}
		}
	}
	r.mu.Unlock()
	if ok {
		m.retire()
	}
	return ok
}

// List returns the enrolled modules in enrollment order.
func (r *Registry) List() []*Module {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Module, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.byID[id])
	}
	return out
}

// Len returns the number of enrolled modules.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}

// IDs returns the enrolled IDs, sorted, for deterministic diagnostics.
func (r *Registry) IDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}
