package fleet

import (
	"context"
	"runtime"
	"sync"
)

// Pool is the fleet's bounded work-stealing epoch scheduler. A fixed
// number of workers (defaulting to GOMAXPROCS) multiplex an unbounded
// set of enrolled modules: each dispatch runs exactly one transactional
// epoch (Module.RunQuantum) and requeues the module if it wants more.
// One epoch is the quantum because it is the unit that is always
// checkpointable — RunEpochCtx leaves the module between epochs on
// every exit path — so a drain only ever waits for in-flight quanta,
// never for whole sweeps.
//
// Queueing discipline: each worker owns a FIFO deque and prefers its
// own head (modules it recently ran — their chip arrays are warm in
// cache); new enrollments land in a shared injector queue; an idle
// worker first drains its deque, then the injector, then steals from
// the TAIL of a sibling's deque — the classic split that keeps owners
// and thieves off the same end. All queues hang off one mutex: quanta
// are thousands of simulated passes long, so queue contention is
// noise, and a single lock keeps the idle/quiesce accounting exact
// (pending+running is transactional) where per-deque atomics would
// have windows that deadlock Quiesce.
type Pool struct {
	workers int

	mu       sync.Mutex
	cond     *sync.Cond  // queues: signaled when work arrives or drain starts
	idle     *sync.Cond  // quiesce: signaled when pending+running hits zero
	local    [][]*Module //parbor:guardedby mu
	injector []*Module   //parbor:guardedby mu
	pending  int         //parbor:guardedby mu — queued modules (all deques + injector)
	running  int         //parbor:guardedby mu — quanta executing right now
	draining bool        //parbor:guardedby mu
	started  bool        //parbor:guardedby mu

	wg sync.WaitGroup
}

// NewPool builds a pool with the given worker bound; workers <= 0
// selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		local:   make([][]*Module, workers),
	}
	p.cond = sync.NewCond(&p.mu)
	p.idle = sync.NewCond(&p.mu)
	return p
}

// Workers returns the worker bound.
func (p *Pool) Workers() int { return p.workers }

// Start launches the workers. ctx cancellation makes in-flight quanta
// return early (cancelled epochs roll back; nothing is lost) but does
// not terminate the workers — call Drain for that, so shutdown always
// ends with every module checkpointed and no goroutine leaked.
func (p *Pool) Start(ctx context.Context) {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return
	}
	p.started = true
	p.mu.Unlock()
	for i := 0; i < p.workers; i++ {
		p.wg.Add(1)
		go p.worker(ctx, i)
	}
}

// Submit queues a module for its next quantum. Safe from any
// goroutine, including workers themselves. Submissions during a drain
// are accepted but sit in the injector until a future Start (the
// module is checkpointed either way).
func (p *Pool) Submit(m *Module) {
	p.mu.Lock()
	p.injector = append(p.injector, m)
	p.pending++
	p.cond.Signal()
	p.mu.Unlock()
}

// Drain stops the pool: workers finish the quantum they are on, then
// exit. Queued-but-not-running modules stay queued (their snapshots
// are already current — modules are checkpointed at enrollment and
// after every epoch). Blocks until every worker has exited.
func (p *Pool) Drain() {
	p.mu.Lock()
	p.draining = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
	p.mu.Lock()
	p.started = false
	p.draining = false
	p.mu.Unlock()
}

// Quiesce blocks until the pool has no queued and no running work —
// i.e. every enrolled module has run to its budget (or failed, or
// been retired). It does not stop the workers.
func (p *Pool) Quiesce() {
	p.mu.Lock()
	for p.pending+p.running > 0 {
		p.idle.Wait()
	}
	p.mu.Unlock()
}

func (p *Pool) worker(ctx context.Context, id int) {
	defer p.wg.Done()
	for {
		m := p.next(id)
		if m == nil {
			return
		}
		again := m.RunQuantum(ctx)
		p.mu.Lock()
		p.running--
		if again && !p.draining {
			p.local[id] = append(p.local[id], m)
			p.pending++
			// The worker loops straight back into next and will take
			// its own head; signal anyway in case this worker instead
			// exits on a racing drain.
			p.cond.Signal()
		}
		if p.pending+p.running == 0 {
			p.idle.Broadcast()
		}
		p.mu.Unlock()
	}
}

// next blocks until there is a module to run (claiming it and
// incrementing running) or the pool is draining (returning nil).
func (p *Pool) next(id int) *Module {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.draining {
			return nil
		}
		if q := p.local[id]; len(q) > 0 {
			m := q[0]
			p.local[id] = q[1:]
			p.claimLocked()
			return m
		}
		if len(p.injector) > 0 {
			m := p.injector[0]
			p.injector = p.injector[1:]
			p.claimLocked()
			return m
		}
		for k := 1; k < p.workers; k++ {
			v := (id + k) % p.workers
			if q := p.local[v]; len(q) > 0 {
				m := q[len(q)-1]
				p.local[v] = q[:len(q)-1]
				p.claimLocked()
				return m
			}
		}
		p.cond.Wait()
	}
}

// claimLocked moves one unit of work from pending to running. Caller
// holds p.mu.
func (p *Pool) claimLocked() {
	p.pending--
	p.running++
}
