package fleet

import (
	"sync"

	"parbor/internal/fleetlog"
	"parbor/internal/obs"
)

// defaultLogBufferCap bounds the degraded-mode event buffer: at ~100
// bytes per typical event this is under a megabyte of held state, and
// a fleet that logs one event per module per epoch rides out a
// multi-epoch outage before anything is dropped.
const defaultLogBufferCap = 4096

// logSink wraps the fleetlog writer with the daemon's graceful-
// degradation policy. The fleet's job is detection; the event log is
// its record, not its reason to exist — so a persistent log failure
// (disk full, volume detached, fsync refusing) must not take the
// daemon down with it. Instead the sink flips into degraded mode:
// appends buffer in memory up to a cap (then are dropped and
// counted), /healthz reports the degradation and its reason, and
// every subsequent append re-probes the log by reopening the
// directory — which also re-verifies the tail, exactly what a
// post-fsync-failure writer needs before it may be trusted again.
// On recovery the buffered backlog flushes before new events.
//
// append never returns an error: from the modules' point of view the
// log is infallible, so a storage outage cannot fail detection work.
// The price is bounded and visible — resilience.log_degraded counts
// episodes, resilience.log_events_dropped counts lost events, and
// the obs Reconcile invariant ties the two together.
type logSink struct {
	dir  string
	opts fleetlog.WriterOptions
	col  *obs.Collector

	mu       sync.Mutex
	w        *fleetlog.Writer //parbor:guardedby mu — nil while degraded or after close
	degraded bool             //parbor:guardedby mu
	reason   string           //parbor:guardedby mu
	buf      []fleetlog.Event //parbor:guardedby mu
	bufCap   int              //parbor:guardedby mu
	dropped  uint64           //parbor:guardedby mu
	closed   bool             //parbor:guardedby mu
}

// newLogSink opens the log directory. An error here is a
// configuration problem (unwritable path, corrupt segment) the
// operator must see at startup, not a runtime fault to degrade over.
func newLogSink(dir string, opts fleetlog.WriterOptions, bufCap int, col *obs.Collector) (*logSink, error) {
	w, err := fleetlog.OpenWriter(dir, opts)
	if err != nil {
		return nil, err
	}
	if bufCap <= 0 {
		bufCap = defaultLogBufferCap
	}
	return &logSink{dir: dir, opts: opts, col: col, w: w, bufCap: bufCap}, nil
}

// append records one event, absorbing any log failure into the
// degradation state machine. It never returns an error.
func (s *logSink) append(ev fleetlog.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if s.degraded {
		s.probeLocked()
	}
	if !s.degraded && s.w != nil {
		err := s.w.Append(ev)
		if err == nil {
			return nil
		}
		s.degradeLocked(err)
	}
	s.bufferLocked(ev)
	return nil
}

// degradeLocked enters degraded mode: the (poisoned) writer is
// dropped and the episode is counted.
func (s *logSink) degradeLocked(err error) {
	s.degraded = true
	s.reason = err.Error()
	if s.w != nil {
		//parbor:droperr the writer is already poisoned by the append/sync error being handled; its close error adds nothing
		s.w.Close()
		s.w = nil
	}
	s.col.Add(obs.CounterLogDegraded, 1)
}

// bufferLocked holds an event for the recovery flush, or counts it
// dropped once the buffer is full.
func (s *logSink) bufferLocked(ev fleetlog.Event) {
	if len(s.buf) < s.bufCap {
		s.buf = append(s.buf, ev)
		return
	}
	s.dropped++
	s.col.Add(obs.CounterLogEventsDropped, 1)
}

// probeLocked attempts recovery: reopen the directory (re-verifying
// the tail a failed fsync left suspect) and flush the buffered
// backlog in order. Any failure leaves the sink degraded with the
// unflushed remainder intact.
func (s *logSink) probeLocked() {
	w, err := fleetlog.OpenWriter(s.dir, s.opts)
	if err != nil {
		return
	}
	for len(s.buf) > 0 {
		if err := w.Append(s.buf[0]); err != nil {
			//parbor:droperr probe failed and the sink stays degraded; the probe writer's close error cannot add information
			w.Close()
			return
		}
		s.buf[0] = fleetlog.Event{}
		s.buf = s.buf[1:]
	}
	s.buf = nil
	s.w = w
	s.degraded = false
	s.reason = ""
}

// drain flushes and syncs the log for a daemon drain. A failure
// degrades instead of erroring: state persistence must proceed even
// when the log cannot.
func (s *logSink) drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if s.degraded {
		s.probeLocked()
		if s.degraded {
			return
		}
	}
	if s.w == nil {
		return
	}
	if err := s.w.Sync(); err != nil {
		s.degradeLocked(err)
	}
}

// health reports the sink's degradation state for /healthz.
func (s *logSink) health() (degraded bool, reason string, buffered int, dropped uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded, s.reason, len(s.buf), s.dropped
}

// close makes a final recovery attempt (flushing any backlog) and
// releases the writer.
func (s *logSink) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.degraded {
		s.probeLocked()
	}
	if s.w == nil {
		return nil
	}
	w := s.w
	s.w = nil
	return w.Close()
}
