package fleet

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"parbor/internal/chaos"
	"parbor/internal/coupling"
	"parbor/internal/faults"
	"parbor/internal/memctl"
	"parbor/internal/onlinetest"
)

// newDaemon builds a daemon for a test and ties its file-backed
// resources (the event log) to the test's lifetime.
func newDaemon(t *testing.T, cfg Config) *Daemon {
	t.Helper()
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// testSpec builds a small, fast, failure-bearing member: toy
// scrambling, 2 chips x 1 bank x 8 rows x 64 cols, a 400 ms wait that
// exceeds every victim's retention threshold, and a 4-epoch budget
// (two full sweeps of the 16-row module at 8 rows per epoch).
func testSpec(i int) ModuleSpec {
	return ModuleSpec{
		ID:     fmt.Sprintf("mod-%04d", i),
		Vendor: "toy",
		Chips:  2,
		Banks:  1,
		Rows:   8,
		Cols:   64,
		Seed:   uint64(1000 + i),
		WaitMs: 400,
		Coupling: coupling.Config{
			VulnerableRate:  0.05,
			StrongLeftFrac:  0.4,
			StrongRightFrac: 0.4,
			RetentionMinMs:  100,
			RetentionMaxMs:  300,
		},
		Faults: faults.Config{WeakCellRate: 0.01},
		Test: onlinetest.Config{
			Distances:    []int{-1, 1},
			ChunkBits:    16,
			RowsPerEpoch: 8,
			MaxRetries:   3,
		},
		MaxEpochs: 4,
	}
}

// withChaos attaches a per-module fault plane: transient bus glitches
// plus a kill/revive outage of chip 1. The testSpec module runs ~33
// host attempts per epoch and epoch 2 (attempts 33..65) is the one
// that tests chip 1's rows, so a [40, 44) window kills the chip
// mid-epoch (it is quarantined — ErrChipDead is not transient) and
// revives it before the epoch's restore pass, which still tries
// quarantined chips and so recovers the live data.
func withChaos(sp ModuleSpec, i int) ModuleSpec {
	sp.Chaos = &chaos.Config{
		Seed:           uint64(77 + i),
		WriteFaultProb: 0.002,
		ReadFaultProb:  0.002,
		DeadChips:      []chaos.Window{{Chip: 1, From: 40, To: 44}},
	}
	return sp
}

func TestSpecValidate(t *testing.T) {
	good := testSpec(0)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*ModuleSpec)
	}{
		{"empty id", func(sp *ModuleSpec) { sp.ID = "" }},
		{"path id", func(sp *ModuleSpec) { sp.ID = "a/b" }},
		{"dots id", func(sp *ModuleSpec) { sp.ID = ".." }},
		{"unknown vendor", func(sp *ModuleSpec) { sp.Vendor = "vendorX" }},
		{"zero geometry", func(sp *ModuleSpec) { sp.Rows = 0 }},
		{"negative chips", func(sp *ModuleSpec) { sp.Chips = -1 }},
		{"negative wait", func(sp *ModuleSpec) { sp.WaitMs = -1 }},
		{"negative budget", func(sp *ModuleSpec) { sp.MaxEpochs = -1 }},
		{"no distances", func(sp *ModuleSpec) { sp.Test.Distances = nil }},
		{"bad chaos", func(sp *ModuleSpec) {
			sp.Chaos = &chaos.Config{WriteFaultProb: 2}
		}},
	}
	for _, tc := range cases {
		sp := testSpec(0)
		tc.mutate(&sp)
		if err := sp.Validate(); err == nil {
			t.Errorf("%s: spec accepted", tc.name)
		}
	}
}

func TestRegistryDuplicateAndRetire(t *testing.T) {
	d := newDaemon(t, Config{Workers: 1})
	if _, err := d.Enroll(testSpec(1), nil); err != nil {
		t.Fatalf("enroll: %v", err)
	}
	if _, err := d.Enroll(testSpec(1), nil); err == nil {
		t.Fatalf("duplicate enrollment accepted")
	}
	m, ok := d.Registry().Get("mod-0001")
	if !ok {
		t.Fatalf("module not registered")
	}
	if !d.Retire("mod-0001") {
		t.Fatalf("retire failed")
	}
	if d.Retire("mod-0001") {
		t.Fatalf("double retire succeeded")
	}
	if m.Status() != StatusRetired {
		t.Fatalf("retired module has status %s", m.Status())
	}
	// A retired module handed to a worker is dropped, not run.
	if m.RunQuantum(context.Background()) {
		t.Fatalf("retired module asked to be rescheduled")
	}
	if got := m.Snapshot().Scheduler.Epochs; got != 0 {
		t.Fatalf("retired module ran %d epochs", got)
	}
}

func TestFleetRunsToBudget(t *testing.T) {
	d := newDaemon(t, Config{Workers: 4})
	const n = 32
	for i := 0; i < n; i++ {
		sp := testSpec(i)
		if i%3 == 0 {
			sp = withChaos(sp, i)
		}
		if _, err := d.Enroll(sp, nil); err != nil {
			t.Fatalf("enroll %d: %v", i, err)
		}
	}
	d.Start(context.Background())
	d.Quiesce()
	d.Pool().Drain()

	foundFailures := false
	for _, m := range d.Registry().List() {
		if m.Status() != StatusDone {
			t.Fatalf("module %s finished with status %s (err %v)", m.ID(), m.Status(), m.Err())
		}
		st := m.Snapshot().Scheduler
		if st.Epochs != 4 {
			t.Fatalf("module %s ran %d epochs, want 4", m.ID(), st.Epochs)
		}
		if len(st.EverSeen) > 0 {
			foundFailures = true
		}
	}
	if !foundFailures {
		t.Fatalf("no module found any failures; fleet test is vacuous")
	}
	if err := d.Reconcile(); err != nil {
		t.Fatalf("reconcile: %v", err)
	}

	r := d.Rollup()
	if r.Modules != n || r.Done != n || r.Epochs != 4*n {
		t.Fatalf("rollup counts off: %+v", r)
	}
	if r.FailingModules == 0 || r.Failures == 0 {
		t.Fatalf("rollup lost the failures: %+v", r)
	}
	var vendorMods int
	for _, vr := range r.ByVendor {
		vendorMods += vr.Modules
	}
	if vendorMods != n {
		t.Fatalf("vendor breakdown covers %d of %d modules", vendorMods, n)
	}
}

func TestPoolDrainKeepsQueueAndRestarts(t *testing.T) {
	d := newDaemon(t, Config{Workers: 2})
	for i := 0; i < 8; i++ {
		if _, err := d.Enroll(testSpec(100+i), nil); err != nil {
			t.Fatalf("enroll: %v", err)
		}
	}
	// Drain before starting: nothing runs, everything stays queued,
	// and every module already has its enrollment snapshot.
	d.Pool().Drain()
	for _, m := range d.Registry().List() {
		if m.Snapshot() == nil {
			t.Fatalf("module %s has no snapshot before first quantum", m.ID())
		}
	}
	// Restart and run to completion.
	d.Start(context.Background())
	d.Quiesce()
	d.Pool().Drain()
	for _, m := range d.Registry().List() {
		if m.Status() != StatusDone {
			t.Fatalf("module %s not done after restart: %s", m.ID(), m.Status())
		}
	}
}

func TestClassifyModes(t *testing.T) {
	addr := func(chip, bank, row, col int) memctl.BitAddr {
		return memctl.BitAddr{Chip: int16(chip), Bank: int16(bank), Row: int32(row), Col: int32(col)}
	}
	cases := []struct {
		name  string
		fails []memctl.BitAddr
		want  map[string]int
	}{
		{"single bit", []memctl.BitAddr{addr(0, 0, 3, 7)},
			map[string]int{ModeSingleBit: 1}},
		{"single row", []memctl.BitAddr{addr(0, 0, 3, 7), addr(0, 0, 3, 9), addr(0, 0, 3, 40)},
			map[string]int{ModeSingleRow: 1}},
		{"single column", []memctl.BitAddr{addr(0, 0, 1, 7), addr(0, 0, 5, 7)},
			map[string]int{ModeSingleColumn: 1}},
		{"multi cell", []memctl.BitAddr{addr(0, 0, 1, 7), addr(0, 0, 5, 9)},
			map[string]int{ModeMultiCell: 1}},
		{"mixed banks and chips", []memctl.BitAddr{
			addr(0, 0, 1, 1),                   // single bit in (0,0)
			addr(0, 1, 2, 3), addr(0, 1, 2, 8), // single row in (0,1)
			addr(1, 0, 4, 4), addr(1, 0, 9, 4), // single column in (1,0)
		}, map[string]int{ModeSingleBit: 1, ModeSingleRow: 1, ModeSingleColumn: 1}},
	}
	for _, tc := range cases {
		got := make(map[string]int)
		classifyModes(tc.fails, got)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSaveLoadStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := newDaemon(t, Config{Workers: 2, StateDir: dir})
	for i := 0; i < 6; i++ {
		if _, err := d.Enroll(testSpec(200+i), nil); err != nil {
			t.Fatalf("enroll: %v", err)
		}
	}
	d.Start(context.Background())
	d.Quiesce()
	if err := d.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	d2 := newDaemon(t, Config{Workers: 2, StateDir: dir})
	n, err := d2.LoadState()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if n != 6 {
		t.Fatalf("loaded %d modules, want 6", n)
	}
	for _, m2 := range d2.Registry().List() {
		m1, ok := d.Registry().Get(m2.ID())
		if !ok {
			t.Fatalf("loaded unknown module %s", m2.ID())
		}
		if m2.Status() != StatusDone {
			t.Fatalf("completed module %s resumed as %s", m2.ID(), m2.Status())
		}
		if !reflect.DeepEqual(m1.Snapshot().Scheduler, m2.Snapshot().Scheduler) {
			t.Fatalf("module %s state drifted across save/load", m2.ID())
		}
	}
	// A retire followed by a save prunes the entry.
	d.Retire("mod-0203")
	if err := d.SaveState(); err != nil {
		t.Fatalf("save: %v", err)
	}
	d3 := newDaemon(t, Config{Workers: 1, StateDir: dir})
	if n, err := d3.LoadState(); err != nil || n != 5 {
		t.Fatalf("after prune: loaded %d, err %v; want 5, nil", n, err)
	}
}
