package fleet

import (
	"context"
	"fmt"
	"sync"

	"parbor/internal/chaos"
	"parbor/internal/checkpoint"
	"parbor/internal/dram"
	"parbor/internal/fleetlog"
	"parbor/internal/memctl"
	"parbor/internal/obs"
	"parbor/internal/onlinetest"
)

// Status is an enrolled module's lifecycle state.
type Status string

const (
	// StatusIdle: enrolled and waiting in a scheduler queue.
	StatusIdle Status = "idle"
	// StatusRunning: an epoch quantum is executing right now.
	StatusRunning Status = "running"
	// StatusDone: the epoch budget (MaxEpochs) is exhausted.
	StatusDone Status = "done"
	// StatusFailed: the last epoch returned a non-transient,
	// non-cancellation error; the module is off the schedule.
	StatusFailed Status = "failed"
	// StatusRetired: removed by the operator; workers drop it on
	// sight.
	StatusRetired Status = "retired"
)

// Module is one enrolled fleet member: the full simulation stack plus
// the bookkeeping the daemon and API read while quanta execute.
//
// Locking: execMu serializes epoch execution — memctl.Host has a
// single-caller contract, and the work-stealing pool can hand the same
// module to a different worker each quantum. stateMu guards the
// observable fields (status, snapshot, error); API handlers take only
// stateMu, so a status or checkpoint read never waits on a running
// epoch. The snapshot pointer is swapped whole and each Snapshot value
// is immutable once stored, so readers may marshal it lock-free after
// the pointer load.
type Module struct {
	spec ModuleSpec

	execMu sync.Mutex
	mod    *dram.Module          //parbor:guardedby execMu
	host   *memctl.Host          //parbor:guardedby execMu
	sched  *onlinetest.Scheduler //parbor:guardedby execMu
	col    *obs.Collector

	// fleetRec receives fleet-level counters (CounterEpochs, ...) so
	// the daemon can reconcile its totals against per-module reports.
	fleetRec obs.Recorder

	// sink, when non-nil, receives one failure-event record after
	// every completed epoch — the daemon's append-only event log. A
	// sink failure is terminal for the module: an un-logged epoch
	// would silently hole the analytics.
	sink func(fleetlog.Event) error

	// baseEpochs is the scheduler's epoch count at enrollment: nonzero
	// when the module resumed from a checkpoint. The daemon's
	// CounterEpochs only counts epochs run under this daemon, so
	// reconciliation compares against Epochs()-baseEpochs.
	baseEpochs int

	stateMu sync.Mutex
	status  Status               //parbor:guardedby stateMu
	lastErr error                //parbor:guardedby stateMu
	snap    *checkpoint.Snapshot //parbor:guardedby stateMu
}

// buildModule constructs the runtime for a spec, optionally resuming
// from a checkpoint snapshot. fleetRec and sink may be nil.
func buildModule(spec ModuleSpec, snap *checkpoint.Snapshot, fleetRec obs.Recorder, sink func(fleetlog.Event) error) (*Module, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	vendor, err := ParseVendor(spec.Vendor)
	if err != nil {
		return nil, err
	}
	col := obs.NewCollector()
	mod, err := dram.NewModule(dram.ModuleConfig{
		Name:     spec.ID,
		Vendor:   vendor,
		Chips:    spec.Chips,
		Geometry: spec.Geometry(),
		Coupling: spec.Coupling,
		Faults:   spec.Faults,
		Seed:     spec.Seed,
		Recorder: col,
	})
	if err != nil {
		return nil, fmt.Errorf("fleet: module %s: %w", spec.ID, err)
	}
	var plane memctl.FaultPlane
	if spec.Chaos != nil {
		p, perr := chaos.New(*spec.Chaos, col)
		if perr != nil {
			return nil, fmt.Errorf("fleet: module %s: %w", spec.ID, perr)
		}
		plane = p
	}
	host, err := memctl.NewHostWithConfig(mod, memctl.HostConfig{
		WaitMs: spec.WaitMs,
		// One worker per host: fleet parallelism comes from running
		// many modules at once, not from sharding inside each tiny
		// module, and a bounded pool must not fan out under itself.
		Parallelism: 1,
		Recorder:    col,
		Faults:      plane,
	})
	if err != nil {
		return nil, fmt.Errorf("fleet: module %s: %w", spec.ID, err)
	}
	var sched *onlinetest.Scheduler
	if snap != nil {
		if aerr := snap.Apply(mod); aerr != nil {
			return nil, fmt.Errorf("fleet: module %s: %w", spec.ID, aerr)
		}
		if serr := host.SetAttempts(snap.HostAttempts); serr != nil {
			return nil, fmt.Errorf("fleet: module %s: %w", spec.ID, serr)
		}
		sched, err = onlinetest.Resume(host, snap.Scheduler)
	} else {
		sched, err = onlinetest.New(host, spec.Test)
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: module %s: %w", spec.ID, err)
	}
	m := &Module{
		spec:       spec,
		mod:        mod,
		host:       host,
		sched:      sched,
		col:        col,
		fleetRec:   fleetRec,
		sink:       sink,
		baseEpochs: sched.Epochs(),
	}
	// Checkpoint immediately: the fleet invariant is that every
	// enrolled module has a current snapshot at all times, so a drain
	// arriving before the first quantum still persists the member.
	m.refreshSnapshotLocked()
	if m.budgetExhaustedLocked() {
		m.status = StatusDone
	} else {
		m.status = StatusIdle
	}
	return m, nil
}

// refreshSnapshotLocked captures the current between-epochs state.
// Callers must hold execMu (or be the constructor, before the module
// is published).
func (m *Module) refreshSnapshotLocked() {
	snap := checkpoint.Capture(m.mod, m.spec.Seed, m.sched.State())
	snap.HostAttempts = m.host.Attempts()
	m.stateMu.Lock()
	m.snap = snap
	m.stateMu.Unlock()
}

// budgetExhaustedLocked reports whether the epoch budget is spent.
// Callers hold execMu or run before publication.
func (m *Module) budgetExhaustedLocked() bool {
	return m.spec.MaxEpochs > 0 && m.sched.Epochs() >= m.spec.MaxEpochs
}

// RunQuantum executes one transactional epoch and refreshes the
// module's checkpoint snapshot. It reports whether the module wants
// another quantum (false when done, failed, retired, or the quantum
// was cancelled — a draining pool must not requeue).
func (m *Module) RunQuantum(ctx context.Context) bool {
	m.execMu.Lock()
	defer m.execMu.Unlock()

	m.stateMu.Lock()
	switch m.status {
	case StatusRetired, StatusDone, StatusFailed:
		m.stateMu.Unlock()
		return false
	}
	m.status = StatusRunning
	m.stateMu.Unlock()

	res, err := m.sched.RunEpochCtx(ctx)
	var sinkErr error
	if err == nil && m.sink != nil {
		// Log before refreshing the checkpoint: if the append fails the
		// snapshot still advances (the epoch really completed), but the
		// ordering keeps the log's coverage a superset of any persisted
		// checkpoint — replayed epochs re-log duplicate events, which
		// the analytics deduplicate, whereas the reverse order could
		// drop an epoch from the log forever.
		sinkErr = m.sink(fleetlog.Event{
			Module: m.spec.ID,
			Epoch:  m.sched.Epochs(),
			Fails:  res.Observed,
		})
	}
	// Refresh the checkpoint only after a COMPLETED epoch. An aborted
	// epoch (cancellation or a hard fault) rolls back live data and
	// the cursor, but its partial passes still advanced the chip pass
	// clocks, the host attempt counter, and the retry totals —
	// capturing that drift would make a resumed daemon replay
	// different stochastic streams than the uninterrupted run. The
	// previous snapshot (enrollment, or the last completed epoch) is
	// exactly the state a rebuilt module resumes from bit-identically;
	// the drifted in-memory state is abandoned with this process.
	if err == nil {
		m.refreshSnapshotLocked()
	}

	m.stateMu.Lock()
	defer m.stateMu.Unlock()
	if m.status == StatusRetired {
		// Retired while the quantum ran: keep the terminal status (the
		// epoch's results are still in the snapshot for archaeology)
		// and drop the module from the schedule.
		return false
	}
	if err != nil {
		if ctx.Err() != nil {
			// Cancelled quantum: the epoch did not run; the module is
			// intact and resumable, but this pool is draining.
			m.status = StatusIdle
			return false
		}
		m.status = StatusFailed
		m.lastErr = err
		return false
	}
	if m.fleetRec != nil {
		m.fleetRec.Add(CounterEpochs, 1)
		m.fleetRec.Add(CounterNewFailures, uint64(len(res.NewFailures)))
	}
	if sinkErr != nil {
		// The epoch completed and is counted above, but its event never
		// reached the log; take the module off the schedule rather than
		// accumulate epochs the analytics will never see.
		m.status = StatusFailed
		m.lastErr = fmt.Errorf("fleet: module %s: event log append: %w", m.spec.ID, sinkErr)
		return false
	}
	if m.budgetExhaustedLocked() {
		m.status = StatusDone
		return false
	}
	m.status = StatusIdle
	return true
}

// retire takes the module off the schedule. Safe to call at any time;
// a quantum already executing finishes normally (and its snapshot is
// kept, in case the operator re-enrolls from it).
func (m *Module) retire() {
	m.stateMu.Lock()
	m.status = StatusRetired
	m.stateMu.Unlock()
}

// ID returns the spec ID.
func (m *Module) ID() string { return m.spec.ID }

// Spec returns the enrollment spec (value copy).
func (m *Module) Spec() ModuleSpec { return m.spec }

// Status returns the lifecycle state.
func (m *Module) Status() Status {
	m.stateMu.Lock()
	defer m.stateMu.Unlock()
	return m.status
}

// Err returns the error that moved the module to StatusFailed, or
// nil.
func (m *Module) Err() error {
	m.stateMu.Lock()
	defer m.stateMu.Unlock()
	return m.lastErr
}

// Snapshot returns the latest parbor/checkpoint/v1 snapshot. Never
// nil for an enrolled module; the returned value is immutable.
func (m *Module) Snapshot() *checkpoint.Snapshot {
	m.stateMu.Lock()
	defer m.stateMu.Unlock()
	return m.snap
}

// Report snapshots the module's own obs collector as a
// parbor/report/v1 report.
func (m *Module) Report() *obs.Report {
	return m.col.Snapshot("fleet/" + m.spec.ID)
}
