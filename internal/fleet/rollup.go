package fleet

import (
	"parbor/internal/fleetlog"
	"parbor/internal/memctl"
)

// RollupSchema identifies the fleet rollup JSON layout.
const RollupSchema = "parbor/fleet-rollup/v1"

// Fault-mode labels, following the taxonomy of the DDR4 field studies
// (single-bit / single-row / single-column / whole-bank populations).
// Classification is per (chip, bank) failure group within a module.
// The labels are aliased from fleetlog so the live rollup and the
// out-of-core log analytics cannot drift apart.
const (
	ModeSingleBit    = fleetlog.ModeSingleBit
	ModeSingleRow    = fleetlog.ModeSingleRow
	ModeSingleColumn = fleetlog.ModeSingleColumn
	ModeMultiCell    = fleetlog.ModeMultiCell
)

// VendorRollup aggregates one vendor's slice of the fleet.
type VendorRollup struct {
	Modules        int            `json:"modules"`
	FailingModules int            `json:"failing_modules"`
	Failures       int            `json:"failures"`
	ByMode         map[string]int `json:"by_mode,omitempty"`
}

// Rollup is the fleet-wide failure summary served by GET /v1/rollup.
// It is computed from checkpoint snapshots — the immutable
// between-epoch state — so building it never blocks a running
// quantum.
type Rollup struct {
	Schema string `json:"schema"`
	// Population counts.
	Modules int `json:"modules"`
	Idle    int `json:"idle"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	// Progress and failure totals across the fleet.
	Epochs         int `json:"epochs"`
	FailingModules int `json:"failing_modules"`
	Failures       int `json:"failures"`
	Quarantined    int `json:"quarantined_chips"`
	Retries        int `json:"retries"`
	// Breakdown by vendor profile and by fault mode.
	ByVendor map[string]*VendorRollup `json:"by_vendor,omitempty"`
	ByMode   map[string]int           `json:"by_mode,omitempty"`
}

// classifyModes buckets a module's ever-seen failures into fault
// modes. Grouping is per (chip, bank): a group with one bit is a
// single-bit fault; a multi-bit group confined to one row (column) is
// a single-row (single-column) fault; anything else is a scattered
// multi-cell population. Each group contributes one count to its
// mode.
func classifyModes(fails []memctl.BitAddr, into map[string]int) {
	type bankKey struct{ chip, bank int16 }
	type bankAgg struct {
		n         int
		row, col  int32
		oneRow    bool
		oneCol    bool
		haveFirst bool
	}
	groups := make(map[bankKey]*bankAgg)
	for _, f := range fails {
		k := bankKey{f.Chip, f.Bank}
		g := groups[k]
		if g == nil {
			g = &bankAgg{oneRow: true, oneCol: true}
			groups[k] = g
		}
		if !g.haveFirst {
			g.row, g.col, g.haveFirst = f.Row, f.Col, true
		} else {
			if f.Row != g.row {
				g.oneRow = false
			}
			if f.Col != g.col {
				g.oneCol = false
			}
		}
		g.n++
	}
	for _, g := range groups {
		switch {
		case g.n == 1:
			into[ModeSingleBit]++
		case g.oneRow:
			into[ModeSingleRow]++
		case g.oneCol:
			into[ModeSingleColumn]++
		default:
			into[ModeMultiCell]++
		}
	}
}

// BuildRollup summarizes a set of modules. Exposed as a function (not
// only via the daemon) so tests and offline tools can roll up
// persisted state.
func BuildRollup(mods []*Module) *Rollup {
	r := &Rollup{
		Schema:   RollupSchema,
		ByVendor: make(map[string]*VendorRollup),
		ByMode:   make(map[string]int),
	}
	for _, m := range mods {
		r.Modules++
		switch m.Status() {
		case StatusRunning:
			r.Running++
		case StatusDone:
			r.Done++
		case StatusFailed:
			r.Failed++
		default:
			r.Idle++
		}
		snap := m.Snapshot()
		st := snap.Scheduler
		vr := r.ByVendor[m.Spec().Vendor]
		if vr == nil {
			vr = &VendorRollup{ByMode: make(map[string]int)}
			r.ByVendor[m.Spec().Vendor] = vr
		}
		vr.Modules++
		r.Epochs += st.Epochs
		r.Retries += st.Retries
		r.Quarantined += len(st.Quarantined)
		if n := len(st.EverSeen); n > 0 {
			r.FailingModules++
			vr.FailingModules++
			r.Failures += n
			vr.Failures += n
			classifyModes(st.EverSeen, r.ByMode)
			classifyModes(st.EverSeen, vr.ByMode)
		}
	}
	return r
}
