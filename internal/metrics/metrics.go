// Package metrics provides the performance metrics used by the
// paper's evaluation — weighted speedup for multi-programmed
// workloads (Eyerman & Eeckhout; Snavely & Tullsen) — plus small
// statistics helpers shared by the experiment harnesses.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// WeightedSpeedup returns sum_i shared[i]/alone[i]: each core's IPC
// under the shared configuration normalized to its IPC when running
// alone on the baseline system.
func WeightedSpeedup(shared, alone []float64) (float64, error) {
	if len(shared) != len(alone) {
		return 0, fmt.Errorf("metrics: %d shared IPCs vs %d alone IPCs", len(shared), len(alone))
	}
	ws := 0.0
	for i := range shared {
		// NaN compares false against everything, so it would slide past
		// the <= 0 guard and poison the sum.
		if math.IsNaN(alone[i]) || alone[i] <= 0 {
			return 0, fmt.Errorf("metrics: non-positive alone IPC %v at core %d", alone[i], i)
		}
		if math.IsNaN(shared[i]) {
			return 0, fmt.Errorf("metrics: NaN shared IPC at core %d", i)
		}
		ws += shared[i] / alone[i]
	}
	return ws, nil
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean. All inputs must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("metrics: geomean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		if math.IsNaN(x) || x <= 0 {
			return 0, fmt.Errorf("metrics: geomean requires positive values, got %v", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// StdDev returns the sample standard deviation (0 for fewer than two
// points).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// MinMax returns the extremes (zeroes for an empty slice).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on a sorted copy.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("metrics: percentile of empty slice")
	}
	// NaN passes a plain range check (all comparisons are false) and
	// int(math.Ceil(NaN)) would then index out of bounds.
	if math.IsNaN(p) || p < 0 || p > 100 {
		return 0, fmt.Errorf("metrics: percentile %v out of [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0], nil
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	return sorted[rank-1], nil
}

// Normalize divides every element by base, returning relative values
// (e.g. speedups over a baseline).
func Normalize(xs []float64, base float64) ([]float64, error) {
	if math.IsNaN(base) || base == 0 {
		return nil, fmt.Errorf("metrics: normalize by %v", base)
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out, nil
}
