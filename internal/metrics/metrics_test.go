package metrics

import (
	"math"
	"testing"
)

func TestWeightedSpeedup(t *testing.T) {
	ws, err := WeightedSpeedup([]float64{0.5, 1.0}, []float64{1.0, 2.0})
	if err != nil {
		t.Fatalf("WeightedSpeedup: %v", err)
	}
	if ws != 1.0 {
		t.Errorf("WeightedSpeedup = %v, want 1.0", ws)
	}
	if _, err := WeightedSpeedup([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := WeightedSpeedup([]float64{1}, []float64{0}); err == nil {
		t.Error("zero alone IPC accepted")
	}
	if _, err := WeightedSpeedup([]float64{1}, []float64{math.NaN()}); err == nil {
		t.Error("NaN alone IPC accepted")
	}
	if _, err := WeightedSpeedup([]float64{math.NaN()}, []float64{1}); err == nil {
		t.Error("NaN shared IPC accepted")
	}
	ws, err = WeightedSpeedup(nil, nil)
	if err != nil || ws != 0 {
		t.Errorf("empty WeightedSpeedup = (%v, %v), want (0, nil)", ws, err)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2.138) > 0.01 {
		t.Errorf("StdDev = %v, want about 2.138", got)
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate cases should return 0")
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 8})
	if err != nil {
		t.Fatalf("GeoMean: %v", err)
	}
	if math.Abs(got-2.828) > 0.01 {
		t.Errorf("GeoMean = %v, want about 2.828", got)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := GeoMean([]float64{1, -2}); err == nil {
		t.Error("negative accepted")
	}
	if _, err := GeoMean([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Error("empty MinMax should be zeros")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct{ p, want float64 }{
		{p: 0, want: 1},
		{p: 50, want: 5},
		{p: 100, want: 10},
	} {
		got, err := Percentile(xs, tc.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tc.p, err)
		}
		if got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty accepted")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("out-of-range percentile accepted")
	}
	// NaN sails past p < 0 || p > 100 (all comparisons false) and used
	// to drive an out-of-bounds index via int(math.Ceil(NaN)).
	if _, err := Percentile(xs, math.NaN()); err == nil {
		t.Error("NaN percentile accepted")
	}
	if got, err := Percentile([]float64{7}, 50); err != nil || got != 7 {
		t.Errorf("single-element Percentile = (%v, %v), want (7, nil)", got, err)
	}
}

func TestNormalize(t *testing.T) {
	got, err := Normalize([]float64{2, 4}, 2)
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("Normalize = %v, want [1 2]", got)
	}
	if _, err := Normalize([]float64{1}, 0); err == nil {
		t.Error("zero base accepted")
	}
	if _, err := Normalize([]float64{1}, math.NaN()); err == nil {
		t.Error("NaN base accepted")
	}
}
