// Package retention implements system-level retention-time profiling:
// measuring, for every DRAM row, the shortest refresh interval at
// which some cell in the row loses data under worst-case content.
//
// This is the profiling step that refresh-reduction mechanisms such
// as RAIDR (Liu et al., ISCA 2012) depend on, and one of the
// system-level optimizations the PARBOR paper argues its neighbor
// detection enables (Sections 1 and 8): without neighbor-aware
// patterns, a retention profile systematically overestimates row
// retention, because the worst-case coupling pattern is never applied
// — and a too-optimistic profile silently corrupts data.
//
// The profiler sweeps the write-to-read wait over a log-spaced
// schedule, stressing the module with a caller-chosen pattern set at
// each step, and records per row the first wait at which it failed.
package retention

import (
	"context"
	"fmt"
	"math"

	"parbor/internal/memctl"
	"parbor/internal/patterns"
)

// Config parameterizes a profiling run.
type Config struct {
	// MinMs and MaxMs bound the sweep (defaults 64 and 4096).
	MinMs float64
	MaxMs float64
	// StepsPerOctave is the number of probe intervals per doubling of
	// the wait (default 1: 64, 128, 256, ... ms).
	StepsPerOctave int
}

func (c Config) withDefaults() Config {
	if c.MinMs == 0 {
		c.MinMs = 64
	}
	if c.MaxMs == 0 {
		c.MaxMs = 4096
	}
	if c.StepsPerOctave == 0 {
		c.StepsPerOctave = 1
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.MinMs <= 0 || c.MaxMs < c.MinMs {
		return fmt.Errorf("retention: bad sweep bounds (%v, %v)", c.MinMs, c.MaxMs)
	}
	if c.StepsPerOctave < 0 {
		return fmt.Errorf("retention: negative StepsPerOctave %d", c.StepsPerOctave)
	}
	return nil
}

// NoFailure marks rows that survived the whole sweep.
const NoFailure = math.MaxFloat64

// RowProfile is one row's measured retention behavior.
type RowProfile struct {
	Row memctl.Row
	// MinRetentionMs is the shortest probed wait at which the row
	// failed, or NoFailure.
	MinRetentionMs float64
	// FailingCells is the number of distinct failing cells observed
	// at that wait.
	FailingCells int
}

// Profile is a full module profile.
type Profile struct {
	Rows  []RowProfile
	Tests int
	// Waits is the probed schedule, ascending.
	Waits []float64
}

// Profiler sweeps a module through its test host.
type Profiler struct {
	host *memctl.Host
	cfg  Config
}

// New builds a profiler.
func New(host *memctl.Host, cfg Config) (*Profiler, error) {
	if host == nil {
		return nil, fmt.Errorf("retention: nil host")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Profiler{host: host, cfg: cfg.withDefaults()}, nil
}

// Schedule returns the probe waits, ascending and log-spaced.
func (p *Profiler) Schedule() []float64 {
	var waits []float64
	ratio := math.Pow(2, 1/float64(p.cfg.StepsPerOctave))
	for w := p.cfg.MinMs; w <= p.cfg.MaxMs*1.0001; w *= ratio {
		waits = append(waits, w)
	}
	return waits
}

// ProfileModule measures the whole module with the given stress
// patterns (each is also run inverted, covering both cell
// polarities). Use neighbor-aware patterns from a prior PARBOR run
// for a worst-case-honest profile, or solid patterns to see how badly
// a naive profile overestimates retention.
func (p *Profiler) ProfileModule(pats []patterns.Pattern) (*Profile, error) {
	return p.ProfileModuleCtx(context.Background(), pats)
}

// ProfileModuleCtx is ProfileModule with cooperative cancellation: a
// done ctx stops the sweep inside the current pass and returns ctx's
// error instead of a partial profile.
func (p *Profiler) ProfileModuleCtx(ctx context.Context, pats []patterns.Pattern) (*Profile, error) {
	if len(pats) == 0 {
		return nil, fmt.Errorf("retention: no stress patterns")
	}
	waits := p.Schedule()
	geom := p.host.Geometry()

	minRet := make(map[memctl.Row]float64)
	failing := make(map[memctl.Row]map[int32]struct{})
	tests := 0

	for _, w := range waits {
		for _, base := range pats {
			for _, pat := range []patterns.Pattern{base, base.Inverse()} {
				fill := pat.Fill
				fails, err := p.host.FullPassWithWaitCtx(ctx, func(r memctl.Row, buf []uint64) {
					fill(r.Chip, r.Bank, r.Row, buf)
				}, w)
				if err != nil {
					return nil, fmt.Errorf("retention: pass at wait %v ms: %w", w, err)
				}
				tests++
				for _, a := range fails {
					row := memctl.Row{Chip: int(a.Chip), Bank: int(a.Bank), Row: int(a.Row)}
					if _, seen := minRet[row]; !seen {
						minRet[row] = w
						failing[row] = make(map[int32]struct{})
					}
					if minRet[row] == w {
						failing[row][a.Col] = struct{}{}
					}
				}
			}
		}
	}

	profile := &Profile{Tests: tests, Waits: waits}
	for chip := 0; chip < p.host.Chips(); chip++ {
		for bank := 0; bank < geom.Banks; bank++ {
			for row := 0; row < geom.Rows; row++ {
				r := memctl.Row{Chip: chip, Bank: bank, Row: row}
				rp := RowProfile{Row: r, MinRetentionMs: NoFailure}
				if w, ok := minRet[r]; ok {
					rp.MinRetentionMs = w
					rp.FailingCells = len(failing[r])
				}
				profile.Rows = append(profile.Rows, rp)
			}
		}
	}
	return profile, nil
}

// WeakRowFraction returns the fraction of rows whose measured
// retention is strictly below thresholdMs — the quantity RAIDR bins
// on (the paper measures 16.4% below 256 ms on real chips).
func (p *Profile) WeakRowFraction(thresholdMs float64) float64 {
	if len(p.Rows) == 0 {
		return 0
	}
	weak := 0
	for _, r := range p.Rows {
		if r.MinRetentionMs < thresholdMs {
			weak++
		}
	}
	return float64(weak) / float64(len(p.Rows))
}

// Histogram buckets rows by the probed wait at which they first
// failed; the final bucket counts rows that never failed.
func (p *Profile) Histogram() map[float64]int {
	h := make(map[float64]int, len(p.Waits)+1)
	for _, r := range p.Rows {
		h[r.MinRetentionMs]++
	}
	return h
}
