package retention

import (
	"math"
	"testing"

	"parbor/internal/coupling"
	"parbor/internal/dram"
	"parbor/internal/memctl"
	"parbor/internal/patterns"
	"parbor/internal/scramble"
)

// profiledHost builds a quiet module with a controlled victim
// population: all victims fail at exactly 500 ms under worst-case
// content.
func profiledHost(t *testing.T, vulnRate float64) *memctl.Host {
	t.Helper()
	mod, err := dram.NewModule(dram.ModuleConfig{
		Vendor: scramble.VendorA,
		Chips:  1,
		// Small geometry: the profiler sweeps many full passes.
		Geometry: dram.Geometry{Banks: 1, Rows: 128, Cols: 1024},
		Coupling: coupling.Config{
			VulnerableRate:  vulnRate,
			StrongLeftFrac:  0.5,
			StrongRightFrac: 0.5,
			RetentionMinMs:  500,
			RetentionMaxMs:  500,
		},
		Seed: 21,
	})
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	host, err := memctl.NewHost(mod, 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	return host
}

// neighborAware returns the worst-case stress patterns for vendor A.
func neighborAware(t *testing.T) []patterns.Pattern {
	t.Helper()
	pats, err := patterns.NeighborAware([]int{-48, -16, -8, 8, 16, 48}, 128)
	if err != nil {
		t.Fatalf("NeighborAware: %v", err)
	}
	return pats
}

func TestProfileFindsRetentionThreshold(t *testing.T) {
	host := profiledHost(t, 0.01)
	p, err := New(host, Config{MinMs: 64, MaxMs: 2048})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	profile, err := p.ProfileModule(neighborAware(t))
	if err != nil {
		t.Fatalf("ProfileModule: %v", err)
	}
	// Victims fail at 500 ms; the log-2 schedule probes 512 ms first.
	weakRows := 0
	for _, r := range profile.Rows {
		if r.MinRetentionMs == NoFailure {
			continue
		}
		weakRows++
		if r.MinRetentionMs != 512 {
			t.Errorf("row %+v: min retention %v ms, want 512", r.Row, r.MinRetentionMs)
		}
		if r.FailingCells == 0 {
			t.Errorf("row %+v: failing row with zero failing cells", r.Row)
		}
	}
	if weakRows == 0 {
		t.Fatal("profile found no weak rows despite 1% victim rate")
	}
	if got := profile.WeakRowFraction(256); got != 0 {
		t.Errorf("WeakRowFraction(256) = %v, want 0 (all victims at 500 ms)", got)
	}
	if got := profile.WeakRowFraction(1024); got == 0 {
		t.Error("WeakRowFraction(1024) = 0, want positive")
	}
}

// TestNaiveProfileOverestimates is the paper's motivating claim for
// profiling with neighbor-aware patterns: a solid-pattern profile
// misses coupling failures entirely and reports every row healthy.
func TestNaiveProfileOverestimates(t *testing.T) {
	host := profiledHost(t, 0.01)
	p, err := New(host, Config{MinMs: 64, MaxMs: 2048})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	solid := []patterns.Pattern{patterns.Solid()}
	naive, err := p.ProfileModule(solid)
	if err != nil {
		t.Fatalf("ProfileModule: %v", err)
	}
	if got := naive.WeakRowFraction(4096); got != 0 {
		t.Errorf("solid-pattern profile found weak fraction %v, want 0 (coupling never stressed)", got)
	}

	aware, err := New(host, Config{MinMs: 64, MaxMs: 2048})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	honest, err := aware.ProfileModule(neighborAware(t))
	if err != nil {
		t.Fatalf("ProfileModule: %v", err)
	}
	if honest.WeakRowFraction(1024) <= naive.WeakRowFraction(1024) {
		t.Error("neighbor-aware profile should find strictly more weak rows than the solid profile")
	}
}

func TestScheduleLogSpaced(t *testing.T) {
	host := profiledHost(t, 0)
	p, err := New(host, Config{MinMs: 64, MaxMs: 1024, StepsPerOctave: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	got := p.Schedule()
	want := []float64{64, 128, 256, 512, 1024}
	if len(got) != len(want) {
		t.Fatalf("schedule %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.01 {
			t.Errorf("schedule[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	p2, err := New(host, Config{MinMs: 64, MaxMs: 256, StepsPerOctave: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := p2.Schedule(); len(got) != 5 { // 64, 90.5, 128, 181, 256
		t.Errorf("2-steps-per-octave schedule has %d entries, want 5: %v", len(got), got)
	}
}

func TestProfileCountsTests(t *testing.T) {
	host := profiledHost(t, 0)
	p, err := New(host, Config{MinMs: 64, MaxMs: 256})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	profile, err := p.ProfileModule(patterns.DiscoveryPatterns()[:2])
	if err != nil {
		t.Fatalf("ProfileModule: %v", err)
	}
	// 3 waits x 2 patterns x 2 polarities.
	if profile.Tests != 12 {
		t.Errorf("Tests = %d, want 12", profile.Tests)
	}
	if host.Passes() != 12 {
		t.Errorf("host passes = %d, want 12", host.Passes())
	}
}

func TestHistogram(t *testing.T) {
	host := profiledHost(t, 0.0005) // ~0.5 victims/row: some rows stay clean
	p, err := New(host, Config{MinMs: 64, MaxMs: 1024})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	profile, err := p.ProfileModule(neighborAware(t))
	if err != nil {
		t.Fatalf("ProfileModule: %v", err)
	}
	h := profile.Histogram()
	total := 0
	for _, n := range h {
		total += n
	}
	if total != len(profile.Rows) {
		t.Errorf("histogram covers %d rows, want %d", total, len(profile.Rows))
	}
	if h[NoFailure] == 0 {
		t.Error("expected some rows to never fail")
	}
}

func TestConfigValidation(t *testing.T) {
	host := profiledHost(t, 0)
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil host accepted")
	}
	if _, err := New(host, Config{MinMs: 100, MaxMs: 50}); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := New(host, Config{StepsPerOctave: -1}); err == nil {
		t.Error("negative steps accepted")
	}
	p, err := New(host, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := p.ProfileModule(nil); err == nil {
		t.Error("empty pattern set accepted")
	}
}
