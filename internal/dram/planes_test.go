package dram

import (
	"fmt"
	"math/bits"
	"testing"

	"parbor/internal/coupling"
	"parbor/internal/faults"
	"parbor/internal/scramble"
)

// The differential proof suite: the mask-plane read path
// (readRowPlanes) must flip exactly the bits the scalar per-cell
// reference (readRowScalar) flips, for every geometry, polarity,
// fault kind, and elapsed time. Both paths are always compiled and
// all stochastic draws are keyed per (pass, flat row, column), so the
// two can be evaluated back to back against the same chip state and
// compared bit for bit — no fixtures, no tolerance.

// diffPattern fills words with one of a few adversarial patterns; the
// "rand" pattern derives per-word content from a cheap LCG so padded
// tail bits and asymmetric neighborhoods get exercised too.
func diffPattern(words []uint64, kind string, seed uint64) {
	x := seed*2862933555777941757 + 3037000493
	for i := range words {
		switch kind {
		case "zeros":
			words[i] = 0
		case "ones":
			words[i] = ^uint64(0)
		case "aa":
			words[i] = 0xaaaaaaaaaaaaaaaa
		case "rand":
			x = x*6364136223846793005 + 1442695040888963407
			words[i] = x ^ x>>29
		default:
			panic("unknown pattern " + kind)
		}
	}
}

// comparePaths evaluates both read paths for every row of the chip at
// its current clock and reports any divergence in flip set or toggle
// count. It reads through the internal entry points so the comparison
// sees the exact same (stored, elapsed, meta) state for both.
func comparePaths(t *testing.T, c *Chip, label string) (flips int) {
	t.Helper()
	g := c.Geometry()
	scalar := make([]uint64, c.words)
	planes := make([]uint64, c.words)
	for bank := 0; bank < g.Banks; bank++ {
		for row := 0; row < g.Rows; row++ {
			idx := c.geom.rowIndex(bank, row)
			stored := c.data[idx*c.words : (idx+1)*c.words]
			elapsed := c.nowMs - c.chargeTime(idx)
			if elapsed <= 0 {
				continue
			}
			m := c.rowMetaFor(idx)
			for i := range scalar {
				scalar[i], planes[i] = 0, 0
			}
			ns := c.readRowScalar(row, idx, elapsed, stored, scalar, m)
			np := c.readRowPlanes(row, idx, elapsed, stored, planes, m)
			if ns != np {
				t.Errorf("%s: bank %d row %d: scalar toggled %d bits, planes %d", label, bank, row, ns, np)
			}
			for w := range scalar {
				if scalar[w] != planes[w] {
					t.Errorf("%s: bank %d row %d word %d: scalar delta %016x, planes %016x (xor %016x)",
						label, bank, row, w, scalar[w], planes[w], scalar[w]^planes[w])
				}
			}
			flips += ns
		}
	}
	return flips
}

// diffCase is one chip configuration of the differential matrix.
type diffCase struct {
	name   string
	geom   Geometry
	vendor scramble.Vendor
	cc     coupling.Config
	fc     faults.Config
}

func diffCases() []diffCase {
	dense := coupling.DefaultConfig()
	dense.VulnerableRate = 0.05 // many victims per word: exercises shared-word masks and ext overflow
	surround := coupling.DefaultConfig()
	surround.VulnerableRate = 0.02
	surround.SurroundWeights = []float64{0.2, 0.4, 0.4} // aggregate-interference tails
	shortRet := coupling.DefaultConfig()
	shortRet.VulnerableRate = 0.02
	shortRet.RetentionMinMs, shortRet.RetentionMaxMs = 50, 400 // all victims in the fast tier
	vrtHot := faults.DefaultConfig()
	vrtHot.VRTRate, vrtHot.VRTToggleProb = 5e-3, 0.5
	vrtHot.MarginalRate, vrtHot.MarginalFailProb = 5e-3, 0.5
	vrtHot.WeakCellRate = 5e-3
	remapHot := faults.DefaultConfig()
	remapHot.RemappedColumnRate, remapHot.RemappedFailProb = 0.01, 0.5

	return []diffCase{
		{
			name:   "vendorA-default",
			geom:   Geometry{Banks: 2, Rows: 32, Cols: 1024},
			vendor: scramble.VendorA,
			cc:     coupling.DefaultConfig(),
			fc:     faults.DefaultConfig(),
		},
		{
			name:   "vendorB-dense",
			geom:   Geometry{Banks: 1, Rows: 32, Cols: 2048},
			vendor: scramble.VendorB,
			cc:     dense,
			fc:     faults.DefaultConfig(),
		},
		{
			name:   "vendorC-surround",
			geom:   Geometry{Banks: 1, Rows: 32, Cols: 1024},
			vendor: scramble.VendorC,
			cc:     surround,
			fc:     faults.Config{},
		},
		{
			name:   "toy-padded-cols", // Cols % 64 != 0: last word padded
			geom:   Geometry{Banks: 1, Rows: 32, Cols: 1104},
			vendor: scramble.VendorToy,
			cc:     dense,
			fc:     faults.DefaultConfig(),
		},
		{
			name:   "toy-vrt-hot",
			geom:   Geometry{Banks: 1, Rows: 32, Cols: 512},
			vendor: scramble.VendorToy,
			cc:     shortRet,
			fc:     vrtHot,
		},
		{
			name:   "vendorA-remapped",
			geom:   Geometry{Banks: 1, Rows: 32, Cols: 2048},
			vendor: scramble.VendorA,
			cc:     dense,
			fc:     remapHot,
		},
	}
}

// TestReadRowPlanesMatchScalarOracle holds the plane path to
// bit-identity with the scalar oracle across the full configuration
// matrix: every vendor profile, true and anti rows, padded last
// words, every fault kind, dense shared-word victim populations, and
// elapsed times straddling every retention gate (the 64/200/300 ms
// fault thresholds, the tier split, and the 3000 ms upper bound).
func TestReadRowPlanesMatchScalarOracle(t *testing.T) {
	for _, tc := range diffCases() {
		t.Run(tc.name, func(t *testing.T) {
			for _, pattern := range []string{"zeros", "ones", "aa", "rand"} {
				chip, err := NewChip(ChipConfig{
					Geometry: tc.geom,
					Vendor:   tc.vendor,
					Coupling: tc.cc,
					Faults:   tc.fc,
					Seed:     917,
				})
				if err != nil {
					t.Fatalf("NewChip: %v", err)
				}
				words := make([]uint64, chip.Geometry().Words())
				for bank := 0; bank < tc.geom.Banks; bank++ {
					for row := 0; row < tc.geom.Rows; row++ {
						diffPattern(words, pattern, uint64(bank*tc.geom.Rows+row))
						chip.WriteRow(bank, row, words)
					}
				}
				// Cumulative waits walk elapsed time across every gate:
				// 32 (below everything), 96 (VRT only), 240 (marginal),
				// 330 (weak), 700 (past the tier split), 3200 (all).
				flips := 0
				for _, wait := range []float64{32, 64, 144, 90, 370, 2500} {
					chip.Wait(wait)
					flips += comparePaths(t, chip, fmt.Sprintf("%s/%s/wait=%v", tc.name, pattern, wait))
				}
				if pattern == "rand" && flips == 0 {
					// Uniform patterns legitimately never couple (every
					// neighbor shares the victim's charge), and 0xaa never
					// fails on even-distance vendors — but random content
					// must produce failures somewhere in the matrix, or
					// the comparison is vacuous.
					t.Errorf("%s/%s: zero flips across all waits — differential test exercised nothing", tc.name, pattern)
				}
			}
		})
	}
}

// TestReadRowDeltaMatchesReadRow checks the public contract tying the
// two read APIs together: ReadRow's materialized read-back equals
// stored XOR ReadRowDelta's toggles, the toggle count equals the
// popcount of the delta, and a clean row leaves the delta buffer
// untouched.
func TestReadRowDeltaMatchesReadRow(t *testing.T) {
	cc := coupling.DefaultConfig()
	cc.VulnerableRate = 0.05
	chip, err := NewChip(ChipConfig{
		Geometry: Geometry{Banks: 1, Rows: 32, Cols: 1104}, // padded last word
		Vendor:   scramble.VendorToy,
		Coupling: cc,
		Faults:   faults.DefaultConfig(),
		Seed:     31,
	})
	if err != nil {
		t.Fatalf("NewChip: %v", err)
	}
	g := chip.Geometry()
	words := make([]uint64, g.Words())
	for row := 0; row < g.Rows; row++ {
		diffPattern(words, "rand", uint64(row))
		chip.WriteRow(0, row, words)
	}
	chip.Wait(700)
	got := make([]uint64, g.Words())
	delta := make([]uint64, g.Words())
	sawFlip := false
	for row := 0; row < g.Rows; row++ {
		chip.ReadRow(0, row, got)
		for i := range delta {
			delta[i] = 0
		}
		n := chip.ReadRowDelta(0, row, delta)
		idx := chip.FlatRowIndex(0, row)
		stored := chip.data[idx*chip.words : (idx+1)*chip.words]
		pop := 0
		for w := range got {
			if got[w] != stored[w]^delta[w] {
				t.Errorf("row %d word %d: ReadRow %016x != stored^delta %016x", row, w, got[w], stored[w]^delta[w])
			}
			pop += bits.OnesCount64(delta[w])
		}
		if n != pop {
			t.Errorf("row %d: ReadRowDelta returned %d, delta popcount %d", row, n, pop)
		}
		if n > 0 {
			sawFlip = true
		}
	}
	if !sawFlip {
		t.Error("no row produced a failure; the delta contract was not exercised")
	}

	// Clean-row guarantee: before any retention wait, the delta buffer
	// must come back untouched even when pre-filled with sentinels is
	// not allowed — so verify the zero-cost contract with a fresh write.
	diffPattern(words, "rand", 99)
	chip.WriteRow(0, 0, words)
	for i := range delta {
		delta[i] = 0
	}
	if n := chip.ReadRowDelta(0, 0, delta); n != 0 {
		t.Fatalf("freshly written row toggled %d bits", n)
	}
	for w := range delta {
		if delta[w] != 0 {
			t.Fatalf("zero-toggle read wrote to the delta buffer at word %d", w)
		}
	}
}

// FuzzVictimPlanes drives the differential comparison from fuzzed
// geometry, content, and wait schedules. Any divergence between the
// scalar oracle and the plane path — a missed flip, an extra flip, a
// count mismatch — fails the fuzz target.
func FuzzVictimPlanes(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0), uint64(0xaaaaaaaaaaaaaaaa), uint16(700))
	f.Add(uint64(2), uint8(1), uint8(3), uint64(0), uint16(96))
	f.Add(uint64(3), uint8(2), uint8(1), uint64(0x0123456789abcdef), uint16(3200))
	f.Add(uint64(4), uint8(3), uint8(2), ^uint64(0), uint16(250))
	f.Fuzz(func(t *testing.T, seed uint64, geomSel, vendorSel uint8, fill uint64, waitMs uint16) {
		vendors := []scramble.Vendor{scramble.VendorToy, scramble.VendorA, scramble.VendorB, scramble.VendorC}
		vendor := vendors[int(vendorSel)%len(vendors)]
		// Chunk-compatible column counts per vendor; the Toy profile
		// (16-bit chunks) also exercises Cols % 64 != 0.
		var colsChoices []int
		if vendor == scramble.VendorToy {
			colsChoices = []int{96, 368, 1024}
		} else {
			colsChoices = []int{256, 1152}
		}
		cols := colsChoices[int(geomSel)%len(colsChoices)]
		cc := coupling.DefaultConfig()
		cc.VulnerableRate = 0.05
		fc := faults.DefaultConfig()
		fc.VRTRate, fc.VRTToggleProb = 2e-3, 0.5
		fc.WeakCellRate = 2e-3
		fc.RemappedColumnRate, fc.RemappedFailProb = 2e-3, 0.5
		chip, err := NewChip(ChipConfig{
			Geometry: Geometry{Banks: 1, Rows: 8, Cols: cols},
			Vendor:   vendor,
			Coupling: cc,
			Faults:   fc,
			Seed:     seed,
		})
		if err != nil {
			t.Fatalf("NewChip: %v", err)
		}
		words := make([]uint64, chip.Geometry().Words())
		for row := 0; row < chip.Geometry().Rows; row++ {
			x := fill ^ seed*uint64(row+1)
			for i := range words {
				x = x*6364136223846793005 + 1442695040888963407
				words[i] = fill ^ x>>17
			}
			chip.WriteRow(0, row, words)
		}
		// Two reads at different elapsed times: the fuzzed wait and a
		// follow-up that crosses whatever gate the first stopped short
		// of. Both must match the oracle exactly.
		chip.Wait(float64(waitMs))
		comparePaths(t, chip, "fuzz-wait1")
		chip.Wait(float64(waitMs)/2 + 97)
		comparePaths(t, chip, "fuzz-wait2")
	})
}
