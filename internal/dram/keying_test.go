package dram

import (
	"testing"

	"parbor/internal/coupling"
	"parbor/internal/faults"
	"parbor/internal/scramble"
)

// TestLargeGeometryDrawsIndependent is the regression test for the
// packed-key collision: the per-event seed used to be
// pass<<32 | flat<<13 | col, so for any geometry with >= 2^13 columns
// the marginal/VRT draw of (flat=1, col=c) collided with that of
// (flat=0, col=8192+c) — two distinct cells sharing one Bernoulli
// stream. With chained At keying the two rows must flip
// independently.
func TestLargeGeometryDrawsIndependent(t *testing.T) {
	chip, err := NewChip(ChipConfig{
		Geometry: Geometry{Banks: 1, Rows: 2, Cols: 16384},
		Vendor:   scramble.VendorA,
		Coupling: coupling.Config{RetentionMinMs: 1, RetentionMaxMs: 1},
		// Every cell marginal, coin-flip failure: the flip pattern of a
		// 64-cell window is a 64-bit fingerprint of the underlying
		// stream.
		Faults: faults.Config{MarginalRate: 1, MarginalFailProb: 0.5},
		Seed:   4242,
	})
	if err != nil {
		t.Fatalf("NewChip: %v", err)
	}
	words := make([]uint64, chip.Geometry().Words())
	fillOnes(words) // rows 0 and 1 are both true-cell rows: all-ones is all-charged
	chip.WriteRow(0, 0, words)
	chip.WriteRow(0, 1, words)
	chip.Wait(250) // past the 200 ms marginal retention threshold

	got0 := make([]uint64, len(words))
	got1 := make([]uint64, len(words))
	chip.ReadRow(0, 0, got0)
	chip.ReadRow(0, 1, got1)

	// The colliding pair under the old packing: (flat=1, cols 0..63)
	// vs (flat=0, cols 8192..8255). col 8192 starts word 128.
	flipsRow1 := got1[0] ^ words[0]
	flipsRow0 := got0[128] ^ words[128]
	if flipsRow1 == flipsRow0 {
		t.Errorf("cells (row 1, cols 0..63) and (row 0, cols 8192..8255) drew identical flip patterns %016x — per-event streams are correlated", flipsRow1)
	}
	// Sanity: the fingerprints only mean anything if the injector ran.
	if flipsRow1 == 0 || flipsRow0 == 0 {
		t.Errorf("marginal injector produced no flips (row1 %016x, row0 %016x); fingerprint comparison is vacuous", flipsRow1, flipsRow0)
	}
}

// TestVRTTogglesIgnoreMaterializationOrder checks that VRT draws are a
// pure function of (seed, pass, row, cell): which rows happen to have
// materialized metadata, and in what order reads arrive within a pass,
// must be unobservable. The old implementation drew one sequential
// stream per pass over the currently materialized VRT rows in Wait, so
// a chip with a different materialization history (e.g. one rebuilt by
// checkpoint resume with an empty meta cache) diverged.
func TestVRTTogglesIgnoreMaterializationOrder(t *testing.T) {
	const rows = 16
	mk := func() *Chip {
		chip, err := NewChip(ChipConfig{
			Geometry: Geometry{Banks: 1, Rows: 64, Cols: 1024},
			Vendor:   scramble.VendorToy,
			Coupling: coupling.Config{RetentionMinMs: 1, RetentionMaxMs: 1},
			Faults:   faults.Config{VRTRate: 0.05, VRTToggleProb: 0.5},
			Seed:     9001,
		})
		if err != nil {
			t.Fatalf("NewChip: %v", err)
		}
		return chip
	}
	a, b := mk(), mk()

	// Chip B materializes a scattered set of unrelated rows before any
	// write: under the old per-pass sequential stream this changed the
	// draw order for every later pass.
	for _, r := range []int{63, 31, 5, 47, 2} {
		b.TrueVictims(0, r)
	}

	words := make([]uint64, a.Geometry().Words())
	fillOnes(words)
	for r := 0; r < rows; r++ {
		a.WriteRow(0, r, words)
		b.WriteRow(0, r, words)
	}
	a.Wait(100) // past the 64 ms VRT retention threshold
	b.Wait(100)

	gotA := make([][]uint64, rows)
	for r := 0; r < rows; r++ {
		gotA[r] = make([]uint64, len(words))
		a.ReadRow(0, r, gotA[r])
	}
	// Chip B reads the same rows in reverse, re-reading each: keyed
	// draws make a same-pass re-read idempotent.
	gotB := make([]uint64, len(words))
	again := make([]uint64, len(words))
	flips := 0
	for r := rows - 1; r >= 0; r-- {
		b.ReadRow(0, r, gotB)
		b.ReadRow(0, r, again)
		for w := range gotB {
			if gotB[w] != again[w] {
				t.Fatalf("row %d word %d changed between two reads in the same pass", r, w)
			}
			if gotB[w] != gotA[r][w] {
				t.Fatalf("row %d word %d differs across materialization orders: %x != %x", r, w, gotB[w], gotA[r][w])
			}
			if gotB[w] != words[w] {
				flips++
			}
		}
	}
	if flips == 0 {
		t.Error("no VRT flips at 5% rate over 16 rows; the comparison exercised nothing")
	}
}

// TestVRTDrawsVaryAcrossPasses guards against over-correcting: the
// keyed draws must still be fresh per pass, not frozen per cell.
func TestVRTDrawsVaryAcrossPasses(t *testing.T) {
	chip := testChip(t, coupling.Config{RetentionMinMs: 1, RetentionMaxMs: 1},
		faults.Config{VRTRate: 0.2, VRTToggleProb: 0.5})
	words := make([]uint64, chip.Geometry().Words())
	fillOnes(words)
	got := make([]uint64, len(words))

	var patterns [][]uint64
	for pass := 0; pass < 8; pass++ {
		chip.WriteRow(0, 0, words)
		chip.Wait(100)
		chip.ReadRow(0, 0, got)
		patterns = append(patterns, append([]uint64(nil), got...))
	}
	varied := false
	for _, p := range patterns[1:] {
		for w := range p {
			if p[w] != patterns[0][w] {
				varied = true
			}
		}
	}
	if !varied {
		t.Error("8 passes over a 20% VRT row produced identical flip patterns every time — per-pass keying is frozen")
	}
}
