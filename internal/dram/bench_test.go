package dram

import (
	"testing"

	"parbor/internal/coupling"
	"parbor/internal/faults"
	"parbor/internal/scramble"
)

func benchChip(b *testing.B) *Chip {
	b.Helper()
	cc := coupling.DefaultConfig()
	cc.VulnerableRate = 1e-3
	chip, err := NewChip(ChipConfig{
		Geometry: Geometry{Banks: 1, Rows: 512, Cols: 8192},
		Vendor:   scramble.VendorA,
		Coupling: cc,
		Faults:   faults.DefaultConfig(),
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return chip
}

func BenchmarkWriteRow(b *testing.B) {
	chip := benchChip(b)
	buf := make([]uint64, chip.Geometry().Words())
	b.SetBytes(int64(len(buf) * 8))
	for i := 0; i < b.N; i++ {
		chip.WriteRow(0, i&511, buf)
	}
}

func BenchmarkReadRowWithFailureEvaluation(b *testing.B) {
	chip := benchChip(b)
	buf := make([]uint64, chip.Geometry().Words())
	for r := 0; r < 512; r++ {
		chip.WriteRow(0, r, buf)
	}
	chip.Wait(4000)
	dst := make([]uint64, len(buf))
	b.SetBytes(int64(len(buf) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chip.ReadRow(0, i&511, dst)
	}
}
