package dram

import "fmt"

// Geometry describes the addressable layout of one DRAM chip.
type Geometry struct {
	// Banks is the number of banks per chip.
	Banks int
	// Rows is the number of rows per bank.
	Rows int
	// Cols is the number of cells (bits) per row. The paper's chips
	// have 8192 cells per row.
	Cols int
}

// Address-space limits enforced by Validate. Column and flat-row
// addresses are carried as int32 throughout the simulator
// (coupling.Victim.Col, faults.Cell.Col, the resolved neighborhoods
// in dram's row metadata), so geometries beyond them would silently
// truncate. They are representation limits only: the per-event rng
// keying chains one At derivation per field and is collision-free for
// any geometry (see the keying invariant on Chip).
const (
	// MaxCols is the largest accepted row width, in cells.
	MaxCols = 1 << 30
	// MaxFlatRows is the largest accepted Banks*Rows product.
	MaxFlatRows = 1 << 30
)

// Validate reports whether the geometry is usable. Cols need not be a
// multiple of 64: the last storage word of each row is padded, and the
// read/compare paths mask the padding bits out.
func (g Geometry) Validate() error {
	if g.Banks <= 0 || g.Rows <= 0 || g.Cols <= 0 {
		return fmt.Errorf("dram: geometry %+v has non-positive dimension", g)
	}
	if g.Cols > MaxCols {
		return fmt.Errorf("dram: Cols = %d exceeds the int32 address space (max %d)", g.Cols, MaxCols)
	}
	if flat := int64(g.Banks) * int64(g.Rows); flat > MaxFlatRows {
		return fmt.Errorf("dram: Banks*Rows = %d exceeds the int32 address space (max %d)", flat, MaxFlatRows)
	}
	return nil
}

// Words returns the number of 64-bit words per row. When Cols is not
// a multiple of 64, the high bits of the last word are padding: never
// addressable through getBit/setBit/flipBit, masked out of every
// mismatch comparison.
func (g Geometry) Words() int { return (g.Cols + 63) / 64 }

// LastWordMask returns the mask of valid (non-padding) bits in the
// last storage word of a row: all ones when Cols is a multiple of 64.
// Comparison paths (memctl's mismatch scan, the read-back oracles in
// tests) AND the final word of both sides with it before diffing.
func (g Geometry) LastWordMask() uint64 {
	if r := g.Cols % 64; r != 0 {
		return (uint64(1) << uint(r)) - 1
	}
	return ^uint64(0)
}

// RowCount returns the total number of rows in the chip.
func (g Geometry) RowCount() int { return g.Banks * g.Rows }

// Bits returns the total number of cells in the chip.
func (g Geometry) Bits() int64 {
	return int64(g.Banks) * int64(g.Rows) * int64(g.Cols)
}

// rowIndex flattens a (bank, row) pair.
func (g Geometry) rowIndex(bank, row int) int { return bank*g.Rows + row }

// ExperimentGeometry is the scaled-down chip used by the reproduction
// experiments: real 2 Gbit chips (8 banks x 32K rows x 8K cols) are
// too large to simulate per-pass, so the experiments use one bank
// with 2048 full-width rows and proportionally increased failure
// rates (documented in EXPERIMENTS.md).
func ExperimentGeometry() Geometry {
	return Geometry{Banks: 1, Rows: 2048, Cols: 8192}
}

// SmallGeometry is a reduced geometry for fast unit tests.
func SmallGeometry() Geometry {
	return Geometry{Banks: 1, Rows: 128, Cols: 1024}
}

// getBit returns bit i of the row bitmap.
func getBit(words []uint64, i int) uint64 {
	return (words[i>>6] >> (uint(i) & 63)) & 1
}

// setBit sets bit i of the row bitmap to v (0 or 1).
func setBit(words []uint64, i int, v uint64) {
	mask := uint64(1) << (uint(i) & 63)
	if v != 0 {
		words[i>>6] |= mask
	} else {
		words[i>>6] &^= mask
	}
}

// flipBit inverts bit i of the row bitmap.
func flipBit(words []uint64, i int) {
	words[i>>6] ^= uint64(1) << (uint(i) & 63)
}
