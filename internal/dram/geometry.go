package dram

import "fmt"

// Geometry describes the addressable layout of one DRAM chip.
type Geometry struct {
	// Banks is the number of banks per chip.
	Banks int
	// Rows is the number of rows per bank.
	Rows int
	// Cols is the number of cells (bits) per row. The paper's chips
	// have 8192 cells per row.
	Cols int
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.Banks <= 0 || g.Rows <= 0 || g.Cols <= 0 {
		return fmt.Errorf("dram: geometry %+v has non-positive dimension", g)
	}
	if g.Cols%64 != 0 {
		return fmt.Errorf("dram: Cols = %d must be a multiple of 64", g.Cols)
	}
	return nil
}

// Words returns the number of 64-bit words per row.
func (g Geometry) Words() int { return g.Cols / 64 }

// RowCount returns the total number of rows in the chip.
func (g Geometry) RowCount() int { return g.Banks * g.Rows }

// Bits returns the total number of cells in the chip.
func (g Geometry) Bits() int64 {
	return int64(g.Banks) * int64(g.Rows) * int64(g.Cols)
}

// rowIndex flattens a (bank, row) pair.
func (g Geometry) rowIndex(bank, row int) int { return bank*g.Rows + row }

// ExperimentGeometry is the scaled-down chip used by the reproduction
// experiments: real 2 Gbit chips (8 banks x 32K rows x 8K cols) are
// too large to simulate per-pass, so the experiments use one bank
// with 2048 full-width rows and proportionally increased failure
// rates (documented in EXPERIMENTS.md).
func ExperimentGeometry() Geometry {
	return Geometry{Banks: 1, Rows: 2048, Cols: 8192}
}

// SmallGeometry is a reduced geometry for fast unit tests.
func SmallGeometry() Geometry {
	return Geometry{Banks: 1, Rows: 128, Cols: 1024}
}

// getBit returns bit i of the row bitmap.
func getBit(words []uint64, i int) uint64 {
	return (words[i>>6] >> (uint(i) & 63)) & 1
}

// setBit sets bit i of the row bitmap to v (0 or 1).
func setBit(words []uint64, i int, v uint64) {
	mask := uint64(1) << (uint(i) & 63)
	if v != 0 {
		words[i>>6] |= mask
	} else {
		words[i>>6] &^= mask
	}
}

// flipBit inverts bit i of the row bitmap.
func flipBit(words []uint64, i int) {
	words[i>>6] ^= uint64(1) << (uint(i) & 63)
}
