package dram

import (
	"math/bits"
	"reflect"
	"testing"

	"parbor/internal/coupling"
	"parbor/internal/faults"
	"parbor/internal/scramble"
)

// weakChip builds a chip whose only failure mode is deterministic
// weak cells (they flip after 300 ms unrefreshed), the cleanest probe
// for refresh bookkeeping.
func weakChip(t *testing.T) *Chip {
	t.Helper()
	c, err := NewChip(ChipConfig{
		Geometry: Geometry{Banks: 1, Rows: 16, Cols: 2048},
		Vendor:   scramble.VendorA,
		Coupling: coupling.Config{VulnerableRate: 0, RetentionMinMs: 1, RetentionMaxMs: 1},
		Faults:   faults.Config{WeakCellRate: 0.05},
		Seed:     21,
	})
	if err != nil {
		t.Fatalf("NewChip: %v", err)
	}
	return c
}

// chargedWord is the fully-charged data value for a row, accounting
// for its polarity: true-cell rows store charge as 1, anti-cell rows
// (rows 2,3 mod 4) as 0.
func chargedWord(row int) uint64 {
	if (row>>1)&1 == 1 {
		return 0
	}
	return ^uint64(0)
}

// writeOnes stores the fully-charged pattern into the row.
func writeOnes(c *Chip, bank, row int) {
	buf := make([]uint64, c.Geometry().Words())
	for i := range buf {
		buf[i] = chargedWord(row)
	}
	c.WriteRow(bank, row, buf)
}

// failCount reads the row back and counts bits that flipped from the
// fully-charged pattern.
func failCount(c *Chip, bank, row int) int {
	buf := make([]uint64, c.Geometry().Words())
	c.ReadRow(bank, row, buf)
	n := 0
	for _, w := range buf {
		n += bits.OnesCount64(w ^ chargedWord(row))
	}
	return n
}

// TestAutoRefreshLazyBookkeeping checks the lazy refresh-epoch
// semantics: rows excluded from refresh keep accumulating retention
// time across passes, rows covered by a refresh do not — without the
// chip ever scanning its full row population.
func TestAutoRefreshLazyBookkeeping(t *testing.T) {
	c := weakChip(t)
	writeOnes(c, 0, 0)
	writeOnes(c, 0, 1)

	paused := []int{c.FlatRowIndex(0, 0)}
	c.Wait(200)
	c.AutoRefresh(paused)
	c.Wait(200)
	c.AutoRefresh([]int{c.FlatRowIndex(0, 0)})

	// Row 0 has now sat unrefreshed for 400 ms > the 300 ms weak-cell
	// threshold; row 1 was refreshed 0 ms ago.
	if n := failCount(c, 0, 0); n == 0 {
		t.Error("paused row accumulated no weak-cell failures after 400 ms")
	}
	if n := failCount(c, 0, 1); n != 0 {
		t.Errorf("refreshed row shows %d failures, want 0", n)
	}
}

// TestAutoRefreshResumesPausedRow checks that a row excluded in one
// epoch but covered by the next is restored to full charge.
func TestAutoRefreshResumesPausedRow(t *testing.T) {
	c := weakChip(t)
	writeOnes(c, 0, 0)

	c.Wait(200)
	c.AutoRefresh([]int{c.FlatRowIndex(0, 0)})
	c.Wait(200)
	c.AutoRefresh(nil) // refresh everything, including row 0
	c.Wait(100)

	// Only 100 ms since the last refresh: under the 300 ms threshold.
	if n := failCount(c, 0, 0); n != 0 {
		t.Errorf("resumed row shows %d failures, want 0", n)
	}
	// But pause it again and let it decay past the threshold.
	c.AutoRefresh([]int{c.FlatRowIndex(0, 0)})
	c.Wait(300)
	if n := failCount(c, 0, 0); n == 0 {
		t.Error("re-paused row accumulated no failures after 300 ms")
	}
}

// TestAutoRefreshMatchesEagerSemantics replays a mixed pause/resume
// schedule and cross-checks every row against an eagerly maintained
// model of per-row charge times.
func TestAutoRefreshMatchesEagerSemantics(t *testing.T) {
	c := weakChip(t)
	g := c.Geometry()
	eager := make([]float64, g.RowCount()) // model: last full-charge time per row
	now := 0.0
	for row := 0; row < g.Rows; row++ {
		writeOnes(c, 0, row)
	}
	schedule := []struct {
		waitMs float64
		except []int
	}{
		{100, []int{0, 1}},
		{150, []int{1, 2}},
		{50, nil},
		{400, []int{3}},
		{100, []int{3, 0}},
	}
	for _, step := range schedule {
		c.Wait(step.waitMs)
		now += step.waitMs
		except := make([]int, 0, len(step.except))
		skip := make(map[int]bool)
		for _, r := range step.except {
			// Duplicate entries on purpose: AutoRefresh accepts them.
			except = append(except, c.FlatRowIndex(0, r), c.FlatRowIndex(0, r))
			skip[r] = true
		}
		c.AutoRefresh(except)
		for row := 0; row < g.Rows; row++ {
			if !skip[row] {
				eager[c.FlatRowIndex(0, row)] = now
			}
		}
	}
	c.Wait(10)
	now += 10
	for row := 0; row < g.Rows; row++ {
		elapsed := now - eager[c.FlatRowIndex(0, row)]
		wantFails := elapsed >= 300 // weak-cell threshold
		if gotFails := failCount(c, 0, row) > 0; gotFails != wantFails {
			t.Errorf("row %d: elapsed %.0f ms, failures=%v, eager model says %v",
				row, elapsed, gotFails, wantFails)
		}
	}
}

// TestTrueVictimsCached checks that TrueVictims serves from the
// row-meta cache, returns stable results, and hands out a copy the
// caller may mutate.
func TestTrueVictimsCached(t *testing.T) {
	c, err := NewChip(ChipConfig{
		Geometry: Geometry{Banks: 1, Rows: 8, Cols: 2048},
		Vendor:   scramble.VendorB,
		Coupling: coupling.DefaultConfig(),
		Seed:     5,
	})
	if err != nil {
		t.Fatalf("NewChip: %v", err)
	}
	cold := c.TrueVictims(0, 3) // materializes the row meta
	warm := c.TrueVictims(0, 3) // must serve the cached population
	if len(cold) == 0 {
		t.Fatal("no victims drawn with the default coupling config")
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("TrueVictims changed between calls")
	}
	warm[0].Col = -999
	if again := c.TrueVictims(0, 3); !reflect.DeepEqual(cold, again) {
		t.Fatal("mutating the returned slice corrupted the cache")
	}
}
