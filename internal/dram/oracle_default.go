//go:build !parborscalar

package dram

// scalarReadPath selects the ReadRow evaluation path at compile time.
// The default build takes the bit-parallel mask-plane path; building
// with -tags parborscalar compiles the whole simulation onto the
// scalar per-cell oracle instead, so every system-level suite (golden
// Table 1, checkpoint/resume, fleet soak) can be replayed against the
// reference semantics. A constant, not a variable: the dead branch is
// eliminated, so neither build pays a dispatch cost.
const scalarReadPath = false
