// Bit-parallel victim evaluation: per-row mask planes.
//
// ReadRow used to walk the row's victims and fault cells one struct at
// a time, probing individual bits of the stored words for the victim's
// charge and each scrambled neighbor's charge. Rows are stored as
// packed 64-cell words, so all of those probes are word-wide AND/XOR
// sweeps waiting to happen. This file precomputes, once per row at
// materialization time, the masks that turn the per-cell probes into
// word operations:
//
//   - per storage word, victim masks bucketed by coupling class and
//     by retention tier, so "which charged victims could fail at this
//     elapsed time" is a handful of ANDs;
//   - per (word, neighbor distance), the mask of victims whose
//     physical neighbor on that side sits at that signed system-address
//     delta, so "is the neighbor opposite" is one shifted load per
//     distance instead of one bit probe per victim;
//   - a remapped-victim mask and per-kind fault-cell masks, so the
//     sporadic failure modes take the same fast skip.
//
// The construction walks the resolved victim neighborhoods (already in
// physical order through scramble.Mapping), so the masks encode the
// physical-order permutation once; the read path never consults the
// mapping again.
//
// Charge-plane algebra: a cell is charged when its stored bit differs
// from the row's anti polarity, so the charge plane of word w is
// stored[w] XOR antiX (antiX = all-ones on anti rows). Every plane
// predicate is conservative-exact: a bit survives the mask sweep only
// if its charged/class/neighbor conditions hold exactly; retention
// thresholds are continuous per victim, so the sweep gates on per-tier
// row minima and the per-bit fallback re-checks the exact threshold.
// Stochastic draws are keyed per (pass, flat row, column) and are
// position-independent, so drawing only for mask-surviving bits is
// stream-identical to the scalar path (see the keying invariant on
// Chip); the flip set, and therefore every failure set and golden
// checksum, is bit-identical (TestReadRowPlanesMatchScalarOracle).
package dram

import (
	"math"
	"math/bits"

	"parbor/internal/coupling"
	"parbor/internal/faults"
)

// tierSplitMs partitions victim retention thresholds into two tiers:
// fast victims (threshold below the split) and slow ones. Short waits
// — the nominal 64 ms refresh interval the online scheduler tests at —
// fall below every threshold and skip the sweep entirely via the
// per-row minima; intermediate waits (the DC-REF profiling region)
// activate only the fast tier's masks. The split is coarse on purpose:
// tier masks over-approximate and the per-bit fallback applies the
// exact per-victim threshold.
const tierSplitMs = 512

// distMask is the mask of victim bits within one storage word whose
// physical neighbor on one side sits at signed system-address delta d.
type distMask struct {
	mask uint64
	d    int32
}

// planeEntry is the precomputed victim state of one storage word
// within one retention tier. Only words containing at least one
// non-remapped victim of the tier get an entry.
//
// The layout is deliberately flat and small (24 bytes, no pointers):
// the read path streams a row's entries sequentially over a working
// set far larger than L2, so bytes per entry are the dominant cost.
// Instead of class masks, an entry stores the two side-need masks the
// failure condition actually consumes — nl (victims that consult the
// left neighbor: StrongLeft and Weak) and nr (StrongRight and Weak) —
// from which fail = cand & (lOpp|^nl) & (rOpp|^nr) recovers all three
// class conditions. The common case (every nl victim shares one left
// neighbor delta, every nr victim one right delta) inlines the deltas
// as dl/dr; words mixing deltas, or containing a victim whose
// physical neighbor on a needed side is missing, spill to an
// out-of-line extPairs record via xi.
type planeEntry struct {
	word int32
	// dl and dr are the inline neighbor deltas: every victim in nl has
	// its left neighbor at system delta dl (resp. nr/dr on the right).
	// 0 means the side has no pair at all — no victim on this side has
	// a physical neighbor, so its neighbor-opposite lane stays 0,
	// exactly the scalar "no neighbor, not opposite" semantics. Only
	// meaningful when xi == 0.
	dl, dr int8
	// xi, when nonzero, is 1+index into rowPlanes.ext for words whose
	// pair structure does not fit the inline form.
	xi uint16
	// nl and nr are the victim masks that consult the left and right
	// neighbor; a Weak victim appears in both.
	nl, nr uint64
}

// extPairs addresses the packed per-distance pair lists of one
// overflow entry inside rowPlanes.pairs.
type extPairs struct {
	lp, rp uint32
	ln, rn uint8
}

// wordMask is a sparse (word, mask) pair.
type wordMask struct {
	word int32
	mask uint64
}

// faultMask is the per-kind fault-cell state of one storage word. The
// kinds stay separate: a column can carry two kinds (RowCells samples
// each kind independently), and the scalar path then flips it once per
// firing kind.
type faultMask struct {
	word     int32
	vrt      uint64
	marginal uint64
	weak     uint64
}

// rowPlanes is the bit-parallel evaluation state of one row, built by
// buildRowPlanes at materialization time and immutable afterwards.
type rowPlanes struct {
	// fast and slow hold the entries of retention tier 0 (threshold
	// below tierSplitMs) and tier 1; a word with victims in both tiers
	// has an entry in each. Splitting by tier means an intermediate
	// elapsed time sweeps only the entries that can matter, with no
	// per-entry tier filtering at all.
	fast []planeEntry
	slow []planeEntry
	// ext and pairs back the overflow entries: ext records address the
	// per-distance pair lists packed into pairs.
	ext    []extPairs
	pairs  []distMask
	remap  []wordMask
	fcells []faultMask

	// Elapsed-time gates, all +Inf when their population is empty:
	// tierMin is the minimum retention threshold per tier (also the
	// sweep gate for that tier's entries), remapMin the minimum over
	// remapped victims, fcellMin the shortest fault-kind threshold
	// present (vrt 64 ms < marginal 200 ms < weak 300 ms).
	tierMin  [2]float64
	remapMin float64
	fcellMin float64
}

// planeArena block-allocates the per-row plane slices. Rows
// materialize in the order sweeps read them (ascending), so packing
// each row's entries, pairs, and fault masks into shared blocks lays
// consecutive rows out contiguously: the read path streams them with
// the hardware prefetcher instead of taking a cache miss on every
// row's privately allocated slices. Blocks are append-only — a row's
// view is capped with a three-index slice and never reallocated, so
// interned slices stay valid when later rows fill the block.
type planeArena struct {
	entries []planeEntry
	ext     []extPairs
	pairs   []distMask
	fcells  []faultMask
}

// intern moves items into the arena block for their type, starting a
// fresh block when the current one cannot hold them.
func intern[T any](block *[]T, items []T) []T {
	if len(items) == 0 {
		return nil
	}
	if cap(*block)-len(*block) < len(items) {
		*block = make([]T, 0, max(4096, len(items)))
	}
	base := len(*block)
	*block = append(*block, items...)
	return (*block)[base : base+len(items) : base+len(items)]
}

// entryBuilder accumulates one tier's entries during buildRowPlanes.
// Victims arrive in ascending column order, so all victims of one
// storage word are consecutive: the entry under construction is
// always the last one, and its pair lists accumulate in the left and
// right scratch slices until the word advances.
type entryBuilder struct {
	entries     []planeEntry
	left, right []distMask
}

// add folds one victim into the builder, opening a new entry when the
// word advances.
func (b *entryBuilder) add(p *rowPlanes, w int32, bit uint64, v *vcell) {
	if n := len(b.entries); n == 0 || b.entries[n-1].word != w {
		b.flush(p)
		b.entries = append(b.entries, planeEntry{word: w})
	}
	e := &b.entries[len(b.entries)-1]
	if v.class != coupling.StrongRight {
		e.nl |= bit // StrongLeft and Weak consult the left neighbor
		if v.left >= 0 {
			b.left = addDistMask(b.left, v.left-v.col, bit)
		}
	}
	if v.class != coupling.StrongLeft {
		e.nr |= bit // StrongRight and Weak consult the right neighbor
		if v.right >= 0 {
			b.right = addDistMask(b.right, v.right-v.col, bit)
		}
	}
}

// flush seals the entry under construction: inline deltas when each
// side collapses to a single pair covering every victim that consults
// it, an out-of-line extPairs record otherwise.
func (b *entryBuilder) flush(p *rowPlanes) {
	if n := len(b.entries); n > 0 {
		e := &b.entries[n-1]
		dl, lok := soloDelta(b.left, e.nl)
		dr, rok := soloDelta(b.right, e.nr)
		if lok && rok {
			e.dl, e.dr = dl, dr
		} else {
			if len(p.ext) == int(^uint16(0)) {
				// Unreachable for any valid geometry: it would take
				// more than 64k victim-holding words in a single row.
				// Guarded so the uint16 encoding can never wrap.
				panic("dram: row plane overflow table full")
			}
			p.ext = append(p.ext, extPairs{lp: uint32(len(p.pairs)), ln: uint8(len(b.left))})
			p.pairs = append(p.pairs, b.left...)
			x := &p.ext[len(p.ext)-1]
			x.rp, x.rn = uint32(len(p.pairs)), uint8(len(b.right))
			p.pairs = append(p.pairs, b.right...)
			e.xi = uint16(len(p.ext))
		}
	}
	b.left, b.right = b.left[:0], b.right[:0]
}

// soloDelta reports whether a side's pair list fits the inline entry
// form: no pairs at all (delta 0: the side contributes no
// neighbor-opposite bits), or exactly one delta that covers every
// victim consulting the side (mask equality matters: a victim that
// needs the side but has no physical neighbor there must not inherit
// the lane of the victims that do).
func soloDelta(pairs []distMask, need uint64) (int8, bool) {
	if len(pairs) == 0 {
		return 0, true
	}
	if len(pairs) == 1 && pairs[0].mask == need && pairs[0].d >= -127 && pairs[0].d <= 127 {
		return int8(pairs[0].d), true
	}
	return 0, false
}

// buildRowPlanes derives the mask planes from a row's resolved victim
// and fault-cell populations. Victims arrive sorted by ascending
// column (coupling.RowVictims draws them with ascending gap sampling),
// so each tier's entries are appended in ascending word order.
//
//parbor:planebuild
func (c *Chip) buildRowPlanes(m *rowMeta) rowPlanes {
	inf := math.Inf(1) // empty populations gate their sweep off forever
	p := rowPlanes{
		tierMin:  [2]float64{inf, inf},
		remapMin: inf,
		fcellMin: inf,
	}
	var fast, slow entryBuilder
	for i := range m.victims {
		v := &m.victims[i]
		w := v.col >> 6
		bit := uint64(1) << (uint(v.col) & 63)
		ret := float64(v.retentionMs)
		if v.remapped {
			if n := len(p.remap); n > 0 && p.remap[n-1].word == w {
				p.remap[n-1].mask |= bit
			} else {
				p.remap = append(p.remap, wordMask{word: w, mask: bit})
			}
			if ret < p.remapMin {
				p.remapMin = ret
			}
			continue
		}
		b, tier := &fast, 0
		if ret >= tierSplitMs {
			b, tier = &slow, 1
		}
		if ret < p.tierMin[tier] {
			p.tierMin[tier] = ret
		}
		b.add(&p, w, bit, v)
	}
	fast.flush(&p)
	slow.flush(&p)
	p.fast = intern(&c.arena.entries, fast.entries)
	p.slow = intern(&c.arena.entries, slow.entries)
	// Fault cells are per-kind ascending but not globally sorted, so
	// find-or-insert keeps the (tiny) list in ascending word order.
	for _, fcell := range m.fcells {
		w := fcell.Col >> 6
		bit := uint64(1) << (uint(fcell.Col) & 63)
		e := fcellEntryFor(&p, w)
		switch fcell.Kind {
		case faults.KindVRT:
			e.vrt |= bit
			if p.fcellMin > vrtRetentionMs {
				p.fcellMin = vrtRetentionMs
			}
		case faults.KindMarginal:
			e.marginal |= bit
			if p.fcellMin > marginalRetentionMs {
				p.fcellMin = marginalRetentionMs
			}
		case faults.KindWeak:
			e.weak |= bit
			if p.fcellMin > weakRetentionMs {
				p.fcellMin = weakRetentionMs
			}
		}
	}
	p.ext = intern(&c.arena.ext, p.ext)
	p.pairs = intern(&c.arena.pairs, p.pairs)
	p.fcells = intern(&c.arena.fcells, p.fcells)
	return p
}

// addDistMask merges bit into the pair for delta d, appending a new
// pair when the word has no victim with that neighbor delta yet. The
// list stays tiny: a chunk-local mapping has at most a handful of
// distinct deltas (vendor profiles: 6).
func addDistMask(pairs []distMask, d int32, bit uint64) []distMask {
	for i := range pairs {
		if pairs[i].d == d {
			pairs[i].mask |= bit
			return pairs
		}
	}
	return append(pairs, distMask{mask: bit, d: d})
}

// fcellEntryFor finds or inserts the faultMask for word w, keeping
// ascending word order.
func fcellEntryFor(p *rowPlanes, w int32) *faultMask {
	lo := 0
	for lo < len(p.fcells) && p.fcells[lo].word < w {
		lo++
	}
	if lo < len(p.fcells) && p.fcells[lo].word == w {
		return &p.fcells[lo]
	}
	p.fcells = append(p.fcells, faultMask{})
	copy(p.fcells[lo+1:], p.fcells[lo:])
	p.fcells[lo] = faultMask{word: w}
	return &p.fcells[lo]
}

// neighborLane returns the 64-bit charge lane at signed system-address
// delta d from storage word w: bit i of the result is the charge of
// cell w*64+i+d. Deltas are not 64-aligned, so the lane is composed
// from the two straddled words with a funnel shift; words outside the
// row read as zero, which is safe because the pair masks the lane is
// ANDed under never cover a victim whose neighbor falls outside the
// row (neighbors are chunk-local by construction).
//
//parbor:hotpath
func neighborLane(stored []uint64, antiX uint64, w int32, d int32) uint64 {
	idx := int(w)<<6 + int(d)
	q := idx >> 6 // arithmetic shift: floor division for negative idx
	r := uint(idx & 63)
	var lo, hi uint64
	if uint(q) < uint(len(stored)) {
		lo = stored[q] ^ antiX
	}
	if uint(q+1) < uint(len(stored)) {
		hi = stored[q+1] ^ antiX
	}
	// r == 0 needs no special case: Go defines hi<<64 as 0.
	return lo>>r | hi<<(64-r)
}

// nzMask8 returns all-ones when d is nonzero and zero otherwise,
// without a branch: for the unsigned widening v, v | -v has its top
// bit set exactly when v != 0.
func nzMask8(d int8) uint64 {
	v := uint64(uint8(d))
	return -((v | -v) >> 63)
}

// sweepPlanes evaluates one tier's entries against the stored row,
// toggling failing victims into dst and returning the toggle count.
//
//parbor:hotpath
func (c *Chip) sweepPlanes(p *rowPlanes, entries []planeEntry, elapsed float64, antiX uint64, stored, dst []uint64, m *rowMeta) int {
	n := 0
	// Process entries in blocks: a load-only gather pass first, then
	// the evaluation pass against the gathered words. The gather loop
	// has no branches or dependent work, so its (scattered, cache-cold)
	// stored-word loads issue back to back and miss in parallel; the
	// straight per-entry loop serialized them behind each entry's
	// branchy evaluation, and those first touches dominated the sweep.
	var cws [8]uint64
	for base := 0; base < len(entries); base += len(cws) {
		blk := entries[base:]
		if len(blk) > len(cws) {
			blk = blk[:len(cws)]
		}
		for i := range blk {
			cws[i] = stored[blk[i].word]
		}
		for i := range blk {
			e := &blk[i]
			cw := cws[i] ^ antiX
			cand := (e.nl | e.nr) & cw
			if cand == 0 {
				continue // no eligible victim holds charge: zero flips here
			}
			var lOpp, rOpp uint64
			if e.xi == 0 {
				// Branch-free: compute both lanes unconditionally and
				// zero the side via nzMask8 when it has no pair (delta
				// 0). The lane loads hit the row's already-touched words,
				// so unconditional evaluation is cheaper than the
				// data-dependent branches it replaces — in victim-dense
				// rows those predicted poorly and dominated the sweep.
				lOpp = e.nl &^ neighborLane(stored, antiX, e.word, int32(e.dl)) & nzMask8(e.dl)
				rOpp = e.nr &^ neighborLane(stored, antiX, e.word, int32(e.dr)) & nzMask8(e.dr)
			} else {
				// Overflow path: accumulate each side's lanes over the
				// packed per-distance pairs. The loop bodies are
				// branch-free on purpose — a "does this pair matter"
				// mask test per pair mispredicts on dense rows and
				// costs more than the two loads and shift it skips.
				x := &p.ext[e.xi-1]
				for _, pr := range p.pairs[x.lp : x.lp+uint32(x.ln)] {
					lOpp |= pr.mask &^ neighborLane(stored, antiX, e.word, pr.d)
				}
				for _, pr := range p.pairs[x.rp : x.rp+uint32(x.rn)] {
					rOpp |= pr.mask &^ neighborLane(stored, antiX, e.word, pr.d)
				}
			}
			// A StrongLeft bit sits only in nl, so (rOpp|^nr) passes it
			// and (lOpp|^nl) demands its left lane — and symmetrically;
			// a Weak bit sits in both and demands both. One expression,
			// all three class conditions.
			fail := cand & (lOpp | ^e.nl) & (rOpp | ^e.nr)
			for fail != 0 {
				col := int(e.word)<<6 + bits.TrailingZeros64(fail)
				fail &= fail - 1
				v := m.victimAt(int32(col))
				if elapsed < float64(v.retentionMs) {
					continue // tier gate over-approximated; exact threshold rules
				}
				if surroundOpposite(stored, antiX, v) {
					flipBit(dst, col)
					n++
				}
			}
		}
	}
	return n
}

// readRowPlanes is the bit-parallel ReadRow body: the mask-plane
// equivalent of readRowScalar, flipping the exact same bit set (the
// differential suite in planes_test.go holds the two to bit-identity)
// and returning the same toggle count. The sweeps only narrow
// candidates; every surviving bit then takes the same exact per-cell
// predicate — and the same keyed draw — as the scalar path.
//
//parbor:hotpath
func (c *Chip) readRowPlanes(row, flat int, elapsed float64, stored, dst []uint64, m *rowMeta) int {
	p := &c.planes[flat]
	var antiX uint64
	if c.antiRow(row) {
		antiX = ^uint64(0)
	}
	n := 0
	if elapsed >= p.tierMin[0] {
		n += c.sweepPlanes(p, p.fast, elapsed, antiX, stored, dst, m)
	}
	if elapsed >= p.tierMin[1] {
		n += c.sweepPlanes(p, p.slow, elapsed, antiX, stored, dst, m)
	}
	if elapsed >= p.remapMin {
		for _, e := range p.remap {
			// Remapped victims fail sporadically, independent of written
			// data — but only when charged and past their threshold.
			for cand := e.mask & (stored[e.word] ^ antiX); cand != 0; cand &= cand - 1 {
				col := int(e.word)<<6 + bits.TrailingZeros64(cand)
				v := m.victimAt(int32(col))
				if elapsed < float64(v.retentionMs) {
					continue
				}
				src := c.remapSrc.At(c.pass).At(uint64(flat)).At(uint64(col))
				if src.Bool(c.fc.RemappedFailProb) {
					flipBit(dst, col)
					n++
				}
			}
		}
	}
	if elapsed >= p.fcellMin {
		vrtPass := c.vrtSrc.At(c.pass).At(uint64(flat))
		marginalPass := c.marginalSrc.At(c.pass).At(uint64(flat))
		for fi := range p.fcells {
			e := &p.fcells[fi]
			cw := stored[e.word] ^ antiX
			if elapsed >= vrtRetentionMs {
				for cand := e.vrt & cw; cand != 0; cand &= cand - 1 {
					col := int(e.word)<<6 + bits.TrailingZeros64(cand)
					src := vrtPass.At(uint64(col))
					if src.Bool(c.fc.VRTToggleProb) {
						flipBit(dst, col)
						n++
					}
				}
			}
			if elapsed >= marginalRetentionMs {
				for cand := e.marginal & cw; cand != 0; cand &= cand - 1 {
					col := int(e.word)<<6 + bits.TrailingZeros64(cand)
					src := marginalPass.At(uint64(col))
					if src.Bool(c.fc.MarginalFailProb) {
						flipBit(dst, col)
						n++
					}
				}
			}
			if elapsed >= weakRetentionMs {
				// Weak cells fail deterministically: the whole word flips
				// in one XOR.
				dst[e.word] ^= e.weak & cw
				n += bits.OnesCount64(e.weak & cw)
			}
		}
	}
	if c.fc.SoftErrorPerRowRead > 0 {
		src := c.softSrc.At(c.pass).At(uint64(flat))
		if src.Bool(c.fc.SoftErrorPerRowRead) {
			flipBit(dst, src.Intn(c.geom.Cols))
			n++
		}
	}
	return n
}

// surroundOpposite reports whether every surround cell of v holds the
// opposite charge — the aggregate-interference tail of the coupling
// condition, evaluated exactly per surviving bit.
//
//parbor:hotpath
func surroundOpposite(stored []uint64, antiX uint64, v *vcell) bool {
	for _, sc := range v.surround {
		if (stored[sc>>6]^antiX)>>(uint(sc)&63)&1 != 0 {
			return false
		}
	}
	return true
}

// victimAt returns the victim with the given column. Victims are
// sorted by ascending column and unique, and callers only ask for
// columns that came out of this row's own masks, so the binary search
// always lands.
//
//parbor:hotpath
func (m *rowMeta) victimAt(col int32) *vcell {
	lo, hi := 0, len(m.victims)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.victims[mid].col < col {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return &m.victims[lo]
}
