package dram

import (
	"testing"

	"parbor/internal/coupling"
	"parbor/internal/faults"
	"parbor/internal/scramble"
)

// quietCoupling is a coupling model with a high victim rate, fixed
// retention and no aggregate-interference tail, for deterministic
// assertions.
func quietCoupling() coupling.Config {
	return coupling.Config{
		VulnerableRate:  0.02,
		StrongLeftFrac:  0.3,
		StrongRightFrac: 0.3,
		RetentionMinMs:  100,
		RetentionMaxMs:  100,
	}
}

func testChip(t *testing.T, cc coupling.Config, fc faults.Config) *Chip {
	t.Helper()
	chip, err := NewChip(ChipConfig{
		Geometry: Geometry{Banks: 1, Rows: 64, Cols: 1024},
		Vendor:   scramble.VendorToy,
		Coupling: cc,
		Faults:   fc,
		Seed:     1234,
	})
	if err != nil {
		t.Fatalf("NewChip: %v", err)
	}
	return chip
}

// findVictim returns a (row, victim) pair matching class with both
// neighbors present, searching true-cell rows.
func findVictim(t *testing.T, c *Chip, class coupling.Class) (int, coupling.Victim) {
	t.Helper()
	for row := 0; row < c.Geometry().Rows; row += 4 { // rows 0,4,8..: anti == false
		for _, v := range c.TrueVictims(0, row) {
			if v.Class != class {
				continue
			}
			_, _, hasL, hasR := c.Mapping().Neighbors(int(v.Col))
			if hasL && hasR {
				return row, v
			}
		}
	}
	t.Fatalf("no %v victim found", class)
	return 0, coupling.Victim{}
}

func fillOnes(words []uint64) {
	for i := range words {
		words[i] = ^uint64(0)
	}
}

func TestNoFailureWithUniformContent(t *testing.T) {
	chip := testChip(t, quietCoupling(), faults.Config{})
	words := make([]uint64, chip.Geometry().Words())
	fillOnes(words)
	for row := 0; row < 8; row++ {
		chip.WriteRow(0, row, words)
	}
	chip.Wait(4000)
	got := make([]uint64, len(words))
	for row := 0; row < 8; row++ {
		chip.ReadRow(0, row, got)
		for w := range got {
			if got[w] != words[w] {
				t.Fatalf("row %d word %d flipped with uniform content: %x", row, w, got[w]^words[w])
			}
		}
	}
}

func TestNoFailureWithoutWait(t *testing.T) {
	chip := testChip(t, quietCoupling(), faults.Config{})
	row, v := findVictim(t, chip, coupling.StrongLeft)
	words := make([]uint64, chip.Geometry().Words())
	fillOnes(words)
	left, _, _, _ := chip.Mapping().Neighbors(int(v.Col))
	setBit(words, left, 0)
	chip.WriteRow(0, row, words)
	got := make([]uint64, len(words))
	chip.ReadRow(0, row, got) // no Wait in between
	if getBit(got, int(v.Col)) != 1 {
		t.Error("victim flipped without any retention wait")
	}
}

func TestStrongLeftVictimFails(t *testing.T) {
	chip := testChip(t, quietCoupling(), faults.Config{})
	row, v := findVictim(t, chip, coupling.StrongLeft)
	left, right, _, _ := chip.Mapping().Neighbors(int(v.Col))

	words := make([]uint64, chip.Geometry().Words())
	got := make([]uint64, len(words))

	// Left neighbor opposite: must fail.
	fillOnes(words)
	setBit(words, left, 0)
	chip.WriteRow(0, row, words)
	chip.Wait(500)
	chip.ReadRow(0, row, got)
	if getBit(got, int(v.Col)) != 0 {
		t.Error("strong-left victim did not flip with opposite left neighbor")
	}

	// Right neighbor opposite only: must NOT fail.
	fillOnes(words)
	setBit(words, right, 0)
	chip.WriteRow(0, row, words)
	chip.Wait(500)
	chip.ReadRow(0, row, got)
	if getBit(got, int(v.Col)) != 1 {
		t.Error("strong-left victim flipped with only right neighbor opposite")
	}
}

func TestStrongVictimRespectsRetentionThreshold(t *testing.T) {
	chip := testChip(t, quietCoupling(), faults.Config{})
	row, v := findVictim(t, chip, coupling.StrongLeft)
	left, _, _, _ := chip.Mapping().Neighbors(int(v.Col))

	words := make([]uint64, chip.Geometry().Words())
	fillOnes(words)
	setBit(words, left, 0)
	chip.WriteRow(0, row, words)
	chip.Wait(50) // below the 100 ms retention threshold
	got := make([]uint64, len(words))
	chip.ReadRow(0, row, got)
	if getBit(got, int(v.Col)) != 1 {
		t.Error("victim flipped before its retention threshold")
	}
	chip.Wait(100) // total 150 ms, past the threshold
	chip.ReadRow(0, row, got)
	if getBit(got, int(v.Col)) != 0 {
		t.Error("victim did not flip after its retention threshold")
	}
}

func TestWeakVictimNeedsBothNeighbors(t *testing.T) {
	chip := testChip(t, quietCoupling(), faults.Config{})
	row, v := findVictim(t, chip, coupling.Weak)
	left, right, _, _ := chip.Mapping().Neighbors(int(v.Col))

	words := make([]uint64, chip.Geometry().Words())
	got := make([]uint64, len(words))

	for _, tc := range []struct {
		name     string
		zeroL    bool
		zeroR    bool
		wantFail bool
	}{
		{name: "left only", zeroL: true, wantFail: false},
		{name: "right only", zeroR: true, wantFail: false},
		{name: "both", zeroL: true, zeroR: true, wantFail: true},
	} {
		fillOnes(words)
		if tc.zeroL {
			setBit(words, left, 0)
		}
		if tc.zeroR {
			setBit(words, right, 0)
		}
		chip.WriteRow(0, row, words)
		chip.Wait(500)
		chip.ReadRow(0, row, got)
		failed := getBit(got, int(v.Col)) == 0
		if failed != tc.wantFail {
			t.Errorf("%s: failed = %v, want %v", tc.name, failed, tc.wantFail)
		}
	}
}

func TestAntiRowPolarity(t *testing.T) {
	chip := testChip(t, quietCoupling(), faults.Config{})
	// Find a strong-left victim in an anti row (rows 2,3 mod 4).
	var (
		row   = -1
		v     coupling.Victim
		found bool
	)
	for r := 2; r < chip.Geometry().Rows && !found; r += 4 {
		for _, cand := range chip.TrueVictims(0, r) {
			_, _, hasL, hasR := chip.Mapping().Neighbors(int(cand.Col))
			if cand.Class == coupling.StrongLeft && cand.Surround == 0 && hasL && hasR {
				row, v, found = r, cand, true
				break
			}
		}
	}
	if !found {
		t.Fatal("no anti-row strong-left victim found")
	}
	left, _, _, _ := chip.Mapping().Neighbors(int(v.Col))

	// In an anti row, data 0 is the charged state: all-zeros with the
	// left neighbor at 1 is the worst-case pattern.
	words := make([]uint64, chip.Geometry().Words())
	setBit(words, left, 1)
	chip.WriteRow(0, row, words)
	chip.Wait(500)
	got := make([]uint64, len(words))
	chip.ReadRow(0, row, got)
	if getBit(got, int(v.Col)) != 1 {
		t.Error("anti-row victim did not flip from 0 to 1 under worst-case pattern")
	}

	// The inverse content (victim discharged) must not fail.
	fillOnes(words)
	setBit(words, left, 0)
	chip.WriteRow(0, row, words)
	chip.Wait(500)
	chip.ReadRow(0, row, got)
	if getBit(got, int(v.Col)) != 1 {
		t.Error("discharged anti-row victim flipped")
	}
}

func TestSurroundGating(t *testing.T) {
	cc := quietCoupling()
	cc.SurroundWeights = []float64{0, 0, 1} // every victim needs surround level 2
	chip := testChip(t, cc, faults.Config{})
	row, v := findVictim(t, chip, coupling.StrongLeft)
	left, _, _, _ := chip.Mapping().Neighbors(int(v.Col))

	words := make([]uint64, chip.Geometry().Words())
	got := make([]uint64, len(words))

	// Only the immediate neighbor opposite: surround cells are still
	// charged, so the victim must survive.
	fillOnes(words)
	setBit(words, left, 0)
	chip.WriteRow(0, row, words)
	chip.Wait(500)
	chip.ReadRow(0, row, got)
	if getBit(got, int(v.Col)) != 1 {
		t.Error("surround-gated victim flipped with only the immediate neighbor opposite")
	}

	// Everything except the victim opposite: worst case, must fail.
	for i := range words {
		words[i] = 0
	}
	setBit(words, int(v.Col), 1)
	chip.WriteRow(0, row, words)
	chip.Wait(500)
	chip.ReadRow(0, row, got)
	if getBit(got, int(v.Col)) != 0 {
		t.Error("surround-gated victim survived the all-opposite worst case")
	}
}

func TestWeakKindCellFailsRegardlessOfNeighbors(t *testing.T) {
	fc := faults.Config{WeakCellRate: 0.01}
	chip := testChip(t, coupling.Config{VulnerableRate: 0, RetentionMinMs: 1, RetentionMaxMs: 1}, fc)
	// Uniform all-charged content; weak cells must still fail on a
	// long wait.
	words := make([]uint64, chip.Geometry().Words())
	fillOnes(words)
	flips := 0
	got := make([]uint64, len(words))
	for row := 0; row < chip.Geometry().Rows; row += 4 {
		chip.WriteRow(0, row, words)
	}
	chip.Wait(4000)
	for row := 0; row < chip.Geometry().Rows; row += 4 {
		chip.ReadRow(0, row, got)
		for w := range got {
			if got[w] != words[w] {
				flips++
			}
		}
	}
	if flips == 0 {
		t.Error("no weak-cell failures with a 1% weak-cell rate on long wait")
	}
}

func TestChipDeterminism(t *testing.T) {
	mk := func() *Chip {
		return testChip(t, quietCoupling(), faults.DefaultConfig())
	}
	a, b := mk(), mk()
	words := make([]uint64, a.Geometry().Words())
	fillOnes(words)
	words[3] = 0x0123456789abcdef
	ga := make([]uint64, len(words))
	gb := make([]uint64, len(words))
	for row := 0; row < 16; row++ {
		a.WriteRow(0, row, words)
		b.WriteRow(0, row, words)
	}
	a.Wait(4000)
	b.Wait(4000)
	for row := 0; row < 16; row++ {
		a.ReadRow(0, row, ga)
		b.ReadRow(0, row, gb)
		for w := range ga {
			if ga[w] != gb[w] {
				t.Fatalf("row %d word %d differs between identically seeded chips", row, w)
			}
		}
	}
}

func TestNewChipErrors(t *testing.T) {
	base := ChipConfig{
		Geometry: Geometry{Banks: 1, Rows: 4, Cols: 1024},
		Vendor:   scramble.VendorA,
		Coupling: quietCoupling(),
	}
	tests := []struct {
		name   string
		mutate func(*ChipConfig)
	}{
		{name: "bad vendor", mutate: func(c *ChipConfig) { c.Vendor = scramble.Vendor(77) }},
		{name: "cols not multiple of chunk", mutate: func(c *ChipConfig) { c.Geometry.Cols = 64 }},
		{name: "cols exceed address space", mutate: func(c *ChipConfig) { c.Geometry.Cols = MaxCols + 128 }},
		{name: "flat rows exceed address space", mutate: func(c *ChipConfig) { c.Geometry.Banks = 2; c.Geometry.Rows = MaxFlatRows }},
		{name: "bad coupling", mutate: func(c *ChipConfig) { c.Coupling.VulnerableRate = 2 }},
		{name: "bad faults", mutate: func(c *ChipConfig) { c.Faults.VRTRate = -1 }},
		{name: "negative banks", mutate: func(c *ChipConfig) { c.Geometry.Banks = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := NewChip(cfg); err == nil {
				t.Error("NewChip succeeded, want error")
			}
		})
	}
}

func TestNewChipDefaultGeometry(t *testing.T) {
	chip, err := NewChip(ChipConfig{
		Vendor:   scramble.VendorA,
		Coupling: coupling.DefaultConfig(),
	})
	if err != nil {
		t.Fatalf("NewChip: %v", err)
	}
	if got, want := chip.Geometry(), ExperimentGeometry(); got != want {
		t.Errorf("default geometry = %+v, want %+v", got, want)
	}
}

// TestPaddedGeometryRoundTrip: with Cols=96 the last storage word has
// 32 padding bits. Write/read must round-trip the real cells, and the
// injectors (soft error targets a column drawn from [0, Cols)) must
// never flip a padding bit.
func TestPaddedGeometryRoundTrip(t *testing.T) {
	chip, err := NewChip(ChipConfig{
		Geometry: Geometry{Banks: 1, Rows: 8, Cols: 96},
		Vendor:   scramble.VendorToy,
		Coupling: coupling.Config{RetentionMinMs: 1, RetentionMaxMs: 1},
		Faults:   faults.Config{SoftErrorPerRowRead: 1},
		Seed:     77,
	})
	if err != nil {
		t.Fatalf("NewChip: %v", err)
	}
	g := chip.Geometry()
	if g.Words() != 2 {
		t.Fatalf("Words() = %d for Cols=96, want 2", g.Words())
	}
	words := []uint64{0x0123456789abcdef, 0xffffffff0000aaaa} // garbage in padding bits
	got := make([]uint64, g.Words())
	chip.WriteRow(0, 0, words)
	chip.ReadRow(0, 0, got)
	// No wait: elapsed 0, injectors off, the read is a pure copy.
	if got[0] != words[0] || got[1] != words[1] {
		t.Fatalf("padded row did not round-trip: %x, want %x", got, words)
	}
	chip.Wait(100)
	chip.ReadRow(0, 0, got)
	// The guaranteed soft error must land on a real cell: any flip in
	// the padding bits means the injector drew a column >= Cols.
	mask := g.LastWordMask()
	if diff := (got[1] ^ words[1]) &^ mask; diff != 0 {
		t.Fatalf("injector flipped padding bits: %x", diff)
	}
	if (got[0]^words[0])|((got[1]^words[1])&mask) == 0 {
		t.Fatal("SoftErrorPerRowRead=1 produced no flip")
	}
}

func TestModule(t *testing.T) {
	mod, err := NewModule(ModuleConfig{
		Name:     "A1",
		Vendor:   scramble.VendorA,
		Geometry: Geometry{Banks: 1, Rows: 8, Cols: 1024},
		Coupling: quietCoupling(),
		Seed:     9,
	})
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	if mod.Chips() != 8 {
		t.Errorf("Chips() = %d, want 8", mod.Chips())
	}
	if mod.Name() != "A1" {
		t.Errorf("Name() = %q, want A1", mod.Name())
	}
	if mod.Vendor() != scramble.VendorA {
		t.Errorf("Vendor() = %v", mod.Vendor())
	}
	// Sibling chips must have different process variation.
	v0 := mod.Chip(0).TrueVictims(0, 0)
	v1 := mod.Chip(1).TrueVictims(0, 0)
	same := len(v0) == len(v1)
	if same {
		for i := range v0 {
			if v0[i] != v1[i] {
				same = false
				break
			}
		}
	}
	if same && len(v0) > 0 {
		t.Error("chips 0 and 1 drew identical victim populations")
	}
	mod.Wait(100)
	if got := mod.Chip(3).Now(); got != 100 {
		t.Errorf("chip clock = %v, want 100", got)
	}
}

func TestModuleErrors(t *testing.T) {
	if _, err := NewModule(ModuleConfig{Vendor: scramble.Vendor(50)}); err == nil {
		t.Error("NewModule with bad vendor succeeded")
	}
	if _, err := NewModule(ModuleConfig{Vendor: scramble.VendorA, Chips: -1}); err == nil {
		t.Error("NewModule with negative chips succeeded")
	}
}

func TestGeometryHelpers(t *testing.T) {
	g := Geometry{Banks: 2, Rows: 16, Cols: 1024}
	if got := g.Words(); got != 16 {
		t.Errorf("Words() = %d, want 16", got)
	}
	if got := g.RowCount(); got != 32 {
		t.Errorf("RowCount() = %d, want 32", got)
	}
	if got := g.Bits(); got != 32*1024 {
		t.Errorf("Bits() = %d, want %d", got, 32*1024)
	}
	// Cols need not be a multiple of 64: the last word is padded.
	padded := Geometry{Banks: 1, Rows: 1, Cols: 63}
	if err := padded.Validate(); err != nil {
		t.Errorf("Validate rejected Cols=63: %v", err)
	}
	if got := padded.Words(); got != 1 {
		t.Errorf("Words() = %d for Cols=63, want 1", got)
	}
	if got := padded.LastWordMask(); got != (1<<63)-1 {
		t.Errorf("LastWordMask() = %x for Cols=63, want %x", got, uint64(1<<63)-1)
	}
	if got := g.LastWordMask(); got != ^uint64(0) {
		t.Errorf("LastWordMask() = %x for Cols=1024, want all ones", got)
	}
}
