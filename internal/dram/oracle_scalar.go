//go:build parborscalar

package dram

// scalarReadPath: see oracle_default.go. Under the parborscalar build
// tag ReadRow runs the scalar per-cell reference evaluation; the CI
// test job replays the golden suites under this tag to prove the
// mask-plane path changed nothing observable.
const scalarReadPath = true
