package dram

import (
	"fmt"

	"parbor/internal/coupling"
	"parbor/internal/faults"
	"parbor/internal/obs"
	"parbor/internal/scramble"
)

// ModuleConfig describes a DRAM module: several chips sharing one
// vendor profile (as on a real DIMM). The paper's modules are 2 GB
// with 8 chips.
type ModuleConfig struct {
	// Name labels the module in experiment output (e.g. "A1").
	Name string
	// Vendor selects the address-scrambling profile shared by all
	// chips on the module.
	Vendor scramble.Vendor
	// Mapping, when non-nil, overrides Vendor with a custom mapping.
	Mapping *scramble.Mapping
	// Chips is the number of chips; defaults to 8.
	Chips int
	// Geometry is the per-chip layout; defaults to
	// ExperimentGeometry.
	Geometry Geometry
	// Coupling and Faults parameterize the failure models of every
	// chip.
	Coupling coupling.Config
	Faults   faults.Config
	// Seed determines the module's process variation. Chips derive
	// independent streams from it.
	Seed uint64
	// Recorder, when non-nil, is attached to every chip for
	// DRAM-command accounting (see ChipConfig.Recorder). It must be
	// safe for concurrent use: chips record from per-chip workers.
	Recorder obs.Recorder
}

// Module is a set of simulated chips tested together, mirroring a
// DIMM behind one memory-controller channel.
//
// Concurrency contract: Module methods themselves must be serialized
// by the caller, but the *Chips returned by Chip are mutually
// independent — each chip may be driven from its own goroutine, as
// long as no single chip is touched by two goroutines at once and no
// Module-level call (Wait in particular) overlaps the per-chip work.
// The test host (package memctl) exploits exactly this: fan out per
// chip, barrier, advance the shared clock, barrier, fan out again.
type Module struct {
	name  string
	chips []*Chip
}

// NewModule builds a module of identical-vendor chips.
func NewModule(cfg ModuleConfig) (*Module, error) {
	if cfg.Chips == 0 {
		cfg.Chips = 8
	}
	if cfg.Chips < 0 {
		return nil, fmt.Errorf("dram: negative chip count %d", cfg.Chips)
	}
	m := &Module{name: cfg.Name, chips: make([]*Chip, 0, cfg.Chips)}
	for i := 0; i < cfg.Chips; i++ {
		chip, err := NewChip(ChipConfig{
			Geometry: cfg.Geometry,
			Vendor:   cfg.Vendor,
			Mapping:  cfg.Mapping,
			Coupling: cfg.Coupling,
			Faults:   cfg.Faults,
			Seed:     cfg.Seed,
			Index:    i,
			Recorder: cfg.Recorder,
		})
		if err != nil {
			return nil, fmt.Errorf("dram: chip %d: %w", i, err)
		}
		m.chips = append(m.chips, chip)
	}
	return m, nil
}

// Name returns the module label.
func (m *Module) Name() string { return m.name }

// Chips returns the number of chips on the module.
func (m *Module) Chips() int { return len(m.chips) }

// Chip returns chip i.
func (m *Module) Chip(i int) *Chip { return m.chips[i] }

// Vendor returns the module's scrambling profile.
func (m *Module) Vendor() scramble.Vendor { return m.chips[0].Vendor() }

// Geometry returns the per-chip layout.
func (m *Module) Geometry() Geometry { return m.chips[0].Geometry() }

// Wait advances simulated time on every chip (they share the
// module's clock).
func (m *Module) Wait(ms float64) {
	for _, c := range m.chips {
		c.Wait(ms)
	}
}

// SetRecorder attaches (or, with nil, detaches) a command recorder
// on every chip. It lets a caller instrument a module it did not
// construct; recording is passive and never changes results.
func (m *Module) SetRecorder(r obs.Recorder) {
	for _, c := range m.chips {
		c.SetRecorder(r)
	}
}
