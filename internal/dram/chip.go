// Package dram simulates DRAM chips and modules at cell-array
// granularity, faithfully enough to evaluate system-level detection
// of data-dependent failures: vendor-scrambled address mapping,
// coupling-vulnerable victim cells, true/anti cell polarity,
// retention gating, and the random-failure modes that real chips
// exhibit (soft errors, VRT, marginal cells, remapped columns).
//
// The test host (package memctl) talks to a chip exclusively through
// WriteRow / Wait / ReadRow — exactly the interface a real memory
// controller offers — so the PARBOR algorithm in package core cannot
// accidentally peek at the scrambling or at cell ground truth.
package dram

import (
	"fmt"

	"parbor/internal/coupling"
	"parbor/internal/faults"
	"parbor/internal/obs"
	"parbor/internal/rng"
	"parbor/internal/scramble"
)

// ChipConfig assembles everything needed to instantiate a chip.
type ChipConfig struct {
	// Geometry is the addressable layout. Defaults to
	// ExperimentGeometry when zero.
	Geometry Geometry
	// Vendor selects the address-scrambling profile.
	Vendor scramble.Vendor
	// Mapping, when non-nil, overrides Vendor with a custom
	// system-to-physical address mapping (see scramble.FromSegments).
	Mapping *scramble.Mapping
	// Coupling parameterizes the data-dependent failure model.
	Coupling coupling.Config
	// Faults parameterizes the random-failure injectors.
	Faults faults.Config
	// Seed makes the chip's process variation reproducible.
	Seed uint64
	// Index distinguishes sibling chips within a module so that they
	// draw independent process variation from the same seed.
	Index int
	// Recorder, when non-nil, receives one DRAM-command event per
	// row write, row read, and refresh epoch. Recording is passive:
	// results are bit-identical with or without it.
	Recorder obs.Recorder
}

// Chip is one simulated DRAM chip.
//
// Concurrency contract: a single Chip is not safe for concurrent use
// — all of its methods must be serialized by the caller. Distinct
// Chips, however, share no mutable state (the scramble.Mapping they
// may share is immutable and documented safe for concurrent use), so
// different chips of the same module may be driven from different
// goroutines simultaneously. The test host (package memctl) relies on
// this to shard full-module passes one-worker-per-chip; experiments
// parallelize across chips, never within one.
type Chip struct {
	geom    Geometry
	mapping *scramble.Mapping
	cc      coupling.Config
	fc      faults.Config
	root    *rng.Source
	index   int

	words   int
	data    []uint64  // all rows, flattened
	writeAt []float64 // per flat row: sim time (ms) of last write
	nowMs   float64
	pass    uint64 // incremented on every Wait; seeds per-pass noise

	// Lazy auto-refresh bookkeeping: rather than rewriting writeAt for
	// every row on each AutoRefresh (O(rows in chip) per pass), the
	// chip records the time of the latest refresh and the set of rows
	// that refresh skipped. ReadRow consults them to reconstruct the
	// row's effective last-charge time (see chargeTime).
	//
	// The paused set is a packed bitset plus the list of set rows:
	// chargeTime (one call per row read) does a word-indexed bit test,
	// and AutoRefresh clears the previous epoch through the list, so
	// installing an epoch stays O(rows excluded), never O(rows in
	// chip). An earlier map[int]struct{} representation put a map
	// lookup (hash + probe) on every row read.
	lastRefreshMs float64
	pausedBits    []uint64 // rows excluded from the latest refresh
	pausedList    []int    // the set bits of pausedBits

	meta []*rowMeta // lazy per flat row
	// planes is the bit-parallel evaluation state per flat row —
	// word-wide masks by class/retention-tier/neighbor distance (see
	// planes.go), derived from the row's victims and fault cells at
	// materialization time and immutable afterwards. It lives in a flat
	// value slice, not inside rowMeta: the read path consults it for
	// every row of a sweep, and rows are read in ascending order, so a
	// contiguous array turns the per-row metadata access into a
	// prefetchable sequential stream instead of a pointer chase through
	// scattered rowMeta allocations. Entries of unmaterialized rows are
	// zero; the read path only consults rows rowMetaFor has populated.
	planes []rowPlanes
	// arena backs the slices inside planes: rows materialize in sweep
	// order, so block allocation lays consecutive rows' entries out
	// contiguously for the prefetcher (see planeArena).
	arena planeArena
	remap map[int32]struct{} // remapped system columns (chip-wide)

	// Cached label-children of root. The hot paths (one draw per row
	// read, per VRT tick, per remap/marginal event) derive their
	// per-event streams with At(n) off these instead of SplitN, which
	// skips both the label hash and the per-draw heap allocation.
	// Stream-identical to the SplitN calls they replace (rng contract,
	// TestValueVariantsMatchPointerVariants).
	//
	// Invariant (per-event keying): every stochastic per-event draw is
	// keyed by a chain of At derivations, one field per link —
	// At(pass).At(flat row).At(column) — never by fields packed into a
	// single integer. An earlier packing (pass<<32 | flat<<13 | col)
	// silently collided for geometries with >= 2^19 flat rows or
	// >= 2^13 columns, correlating draws across rows and passes; the
	// chained form is collision-free for every geometry
	// Geometry.Validate accepts (TestLargeGeometryDrawsIndependent).
	// Keyed draws are also position-independent: no draw's value
	// depends on how many other draws happened first, which is what
	// makes lazy row materialization and checkpoint/resume
	// unobservable (TestVRTTogglesIgnoreMaterializationOrder).
	vrtSrc      rng.Source // "vrt-toggle"
	softSrc     rng.Source // "soft"
	marginalSrc rng.Source // "marginal"
	remapSrc    rng.Source // "remap-fail"
	rowSrc      rng.Source // "row"

	// rec, when non-nil, receives command-accounting events. It must
	// be safe for concurrent use: sibling chips record into the same
	// Recorder from their per-chip worker goroutines.
	rec obs.Recorder
}

// vcell is a coupling victim with its physical neighborhood resolved
// into system addresses once, at row materialization time.
type vcell struct {
	col         int32
	class       coupling.Class
	retentionMs float32
	remapped    bool
	left        int32   // system address of physical left neighbor, -1 if none
	right       int32   // system address of physical right neighbor, -1 if none
	surround    []int32 // cells beyond the immediate neighbors that must be opposite
}

type rowMeta struct {
	raw     []coupling.Victim // ground-truth victims, as drawn from the RNG
	victims []vcell
	fcells  []faults.Cell
}

// Fault-kind retention thresholds (milliseconds): leaky VRT cells fail
// past one nominal refresh interval, marginal cells only on long
// waits, weak cells deterministically on long waits.
const (
	vrtRetentionMs      = 64
	marginalRetentionMs = 200
	weakRetentionMs     = 300
)

// NewChip builds a chip. The chip's process variation (victim
// placement, classes, retention thresholds, random-fault cells,
// remapped columns) is fully determined by cfg.Seed and cfg.Index.
func NewChip(cfg ChipConfig) (*Chip, error) {
	if cfg.Geometry == (Geometry{}) {
		cfg.Geometry = ExperimentGeometry()
	}
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Coupling.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	mapping := cfg.Mapping
	if mapping == nil {
		var err error
		mapping, err = scramble.New(cfg.Vendor)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Geometry.Cols%mapping.ChunkBits() != 0 {
		return nil, fmt.Errorf("dram: Cols = %d is not a multiple of the %d-bit scrambling chunk",
			cfg.Geometry.Cols, mapping.ChunkBits())
	}
	root := rng.New(cfg.Seed).SplitN("chip", uint64(cfg.Index))
	c := &Chip{
		geom:    cfg.Geometry,
		mapping: mapping,
		cc:      cfg.Coupling,
		fc:      cfg.Faults,
		root:    root,
		index:   cfg.Index,
		words:   cfg.Geometry.Words(),
		data:    make([]uint64, cfg.Geometry.RowCount()*cfg.Geometry.Words()),
		writeAt: make([]float64, cfg.Geometry.RowCount()),
		meta:    make([]*rowMeta, cfg.Geometry.RowCount()),
		planes:  make([]rowPlanes, cfg.Geometry.RowCount()),
		rec:     cfg.Recorder,

		pausedBits: make([]uint64, (cfg.Geometry.RowCount()+63)/64),
	}
	c.remap = cfg.Faults.RemappedColumns(root.Split("remap"), cfg.Geometry.Cols)
	c.vrtSrc = root.Child("vrt-toggle")
	c.softSrc = root.Child("soft")
	c.marginalSrc = root.Child("marginal")
	c.remapSrc = root.Child("remap-fail")
	c.rowSrc = root.Child("row")
	return c, nil
}

// Geometry returns the chip's addressable layout.
func (c *Chip) Geometry() Geometry { return c.geom }

// Vendor returns the chip's scrambling profile.
func (c *Chip) Vendor() scramble.Vendor { return c.mapping.Vendor() }

// Mapping exposes the ground-truth address mapping. It exists for
// experiment validation only; the detection algorithm must never
// consult it.
func (c *Chip) Mapping() *scramble.Mapping { return c.mapping }

// antiRow reports whether the row stores data inverted (an "anti
// cell" row, in which data '1' is the discharged state). Real chips
// alternate polarity between sense-amplifier stripes; we model it per
// row pair.
func (c *Chip) antiRow(row int) bool { return (row>>1)&1 == 1 }

// WriteRow stores src (Geometry().Words() words) into the row and
// restores the row's cells to full charge.
//
//parbor:hotpath
func (c *Chip) WriteRow(bank, row int, src []uint64) {
	idx := c.geom.rowIndex(bank, row)
	copy(c.data[idx*c.words:(idx+1)*c.words], src)
	c.writeAt[idx] = c.nowMs
	if c.rec != nil {
		c.rec.Command(obs.CmdActivate, 1)
		c.rec.Command(obs.CmdWrite, 1)
	}
}

// Wait advances simulated time by ms milliseconds. Time only moves
// through Wait, so a write-wait-read sequence has a well-defined
// retention interval. Each Wait also begins a new "pass" for the
// random-failure injectors; the per-pass VRT leaky states are not
// drawn here but keyed per (pass, row, cell) at read time, so the
// draw a cell sees is independent of which rows happen to be
// materialized — the property checkpoint/resume relies on (an
// earlier sequential per-pass stream diverged after a resume, whose
// empty meta cache changed the draw order).
//
//parbor:hotpath
func (c *Chip) Wait(ms float64) {
	if ms < 0 {
		panic("dram: negative wait")
	}
	c.nowMs += ms
	c.pass++
}

// rowMetaFor lazily materializes the per-row cell population, resolves
// each victim's physical neighborhood through the mapping, and derives
// the row's bit-parallel mask planes. It is the memoization gateway
// between the allocating one-time construction (buildRowPlanes) and
// the zero-allocation read path: ReadRow may call it per read, but the
// construction below runs once per row for the life of the chip.
//
//parbor:planecache
func (c *Chip) rowMetaFor(flat int) *rowMeta {
	if m := c.meta[flat]; m != nil {
		return m
	}
	src := c.rowSrc.At(uint64(flat))
	raw := c.cc.RowVictims(src.Split("victims"), c.geom.Cols)
	m := &rowMeta{
		raw:     raw,
		victims: make([]vcell, 0, len(raw)),
		fcells:  c.fc.RowCells(src.Split("faults"), c.geom.Cols),
	}
	for _, v := range raw {
		vc := vcell{
			col:         v.Col,
			class:       v.Class,
			retentionMs: v.RetentionMs,
			left:        -1,
			right:       -1,
		}
		if _, ok := c.remap[v.Col]; ok {
			vc.remapped = true
		} else {
			l, r, hasL, hasR := c.mapping.Neighbors(int(v.Col))
			if hasL {
				vc.left = int32(l)
			}
			if hasR {
				vc.right = int32(r)
			}
			vc.surround = c.surroundCells(int(v.Col), int(v.Surround))
		}
		m.victims = append(m.victims, vc)
	}
	c.planes[flat] = c.buildRowPlanes(m)
	c.meta[flat] = m
	return m
}

// surroundCells walks the physical segment outward from col and
// returns the system addresses at physical distance 2..s+1 on each
// side (the immediate neighbors at distance 1 are handled by the
// victim's class condition).
func (c *Chip) surroundCells(col, s int) []int32 {
	if s == 0 {
		return nil
	}
	var out []int32
	walk := func(leftward bool) {
		cur := col
		for step := 0; step < s+1; step++ {
			l, r, hasL, hasR := c.mapping.Neighbors(cur)
			var next int
			if leftward {
				if !hasL {
					return
				}
				next = l
			} else {
				if !hasR {
					return
				}
				next = r
			}
			if step >= 1 { // skip the immediate neighbor
				out = append(out, int32(next))
			}
			cur = next
		}
	}
	walk(true)
	walk(false)
	return out
}

// ReadRow reads the row into dst, applying every failure mode whose
// conditions have been met since the row was last written. The stored
// data is not modified (the host rewrites rows between passes, as a
// real test host does).
//
//parbor:hotpath
func (c *Chip) ReadRow(bank, row int, dst []uint64) {
	idx := c.geom.rowIndex(bank, row)
	stored := c.data[idx*c.words : (idx+1)*c.words]
	copy(dst, stored)
	c.readRowFaults(row, idx, stored, dst)
}

// ReadRowDelta performs the same read as ReadRow — same failure
// evaluation, same keyed draws, same observability commands — but
// instead of materializing the read-back data it toggles only the
// failing bits into delta and returns the toggle count. delta must
// arrive all-zero; a zero return guarantees it was left untouched, so
// a caller that clears the words it consumes keeps a standing
// zero-delta scratch and pays nothing at all for clean rows. The
// read-back contents are stored XOR delta; a diff of the read against
// the last-written data is exactly the nonzero bits of delta, which
// is what makes this the fast path of the host's write-then-read
// sweeps (memctl reads every row it just wrote, so the copy and the
// word-by-word compare of the classic path cancel out).
//
//parbor:hotpath
func (c *Chip) ReadRowDelta(bank, row int, delta []uint64) int {
	idx := c.geom.rowIndex(bank, row)
	stored := c.data[idx*c.words : (idx+1)*c.words]
	return c.readRowFaults(row, idx, stored, delta)
}

// readRowFaults is the shared read core: it records the access,
// evaluates every failure mode of the row against stored, toggles the
// failing bits into dst, and returns the toggle count. dst may be a
// copy of stored (ReadRow) or a zeroed delta buffer (ReadRowDelta) —
// every predicate reads charge state from stored only, so the two
// produce the same toggle set.
func (c *Chip) readRowFaults(row, idx int, stored, dst []uint64) int {
	if c.rec != nil {
		c.rec.Command(obs.CmdActivate, 1)
		c.rec.Command(obs.CmdRead, 1)
	}
	elapsed := c.nowMs - c.chargeTime(idx)
	if elapsed <= 0 {
		return 0
	}
	m := c.rowMetaFor(idx)
	if scalarReadPath {
		// Build-tagged differential oracle (go build -tags parborscalar):
		// the original per-cell evaluation, kept always-compiled so the
		// proof suite can hold the two paths to bit-identity.
		return c.readRowScalar(row, idx, elapsed, stored, dst, m)
	}
	return c.readRowPlanes(row, idx, elapsed, stored, dst, m)
}

// readRowScalar is the scalar reference evaluation: one victim, one
// fault cell at a time, probing individual bits. The mask-plane path
// (readRowPlanes) must flip exactly the bits this flips — it is the
// oracle of the differential suite in planes_test.go and the whole
// simulation under the parborscalar build tag. Returns the toggle
// count, mirroring readRowPlanes.
func (c *Chip) readRowScalar(row, flat int, elapsed float64, stored, dst []uint64, m *rowMeta) int {
	anti := c.antiRow(row)
	n := 0
	// Iterate by index: vcell is ~48 bytes and this loop runs for
	// every victim of every row read, so a by-value range would spend
	// a large share of the read path copying structs.
	for i := range m.victims {
		v := &m.victims[i]
		if elapsed < float64(v.retentionMs) {
			continue
		}
		if c.victimFails(stored, anti, flat, v) {
			flipBit(dst, int(v.col))
			n++
		}
	}
	return n + c.applyRandomFaults(flat, row, elapsed, stored, dst, m)
}

// charged reports whether the cell at col holds charge, accounting
// for the row's polarity.
func charged(words []uint64, col int, anti bool) bool {
	bit := getBit(words, col) != 0
	return bit != anti
}

// victimFails evaluates the coupling failure condition for one victim
// against the stored row content.
//
//parbor:hotpath
func (c *Chip) victimFails(stored []uint64, anti bool, flat int, v *vcell) bool {
	if !charged(stored, int(v.col), anti) {
		// Only charged cells leak toward the opposite value within
		// the retention window; the inverse test pattern covers the
		// cells of opposite polarity.
		return false
	}
	if v.remapped {
		// The redundant cell's physical neighbors are spare columns
		// outside the system address space: the failure fires
		// sporadically, independent of written data.
		src := c.remapSrc.At(c.pass).At(uint64(flat)).At(uint64(v.col))
		return src.Bool(c.fc.RemappedFailProb)
	}
	leftOpposite := v.left >= 0 && !charged(stored, int(v.left), anti)
	rightOpposite := v.right >= 0 && !charged(stored, int(v.right), anti)
	var classFails bool
	switch v.class {
	case coupling.StrongLeft:
		classFails = leftOpposite
	case coupling.StrongRight:
		classFails = rightOpposite
	case coupling.Weak:
		classFails = leftOpposite && rightOpposite
	}
	if !classFails {
		return false
	}
	// Aggregate-interference tail: every surround cell must also be
	// opposite.
	for _, sc := range v.surround {
		if charged(stored, int(sc), anti) {
			return false
		}
	}
	return true
}

// applyRandomFaults injects the non-data-dependent failure modes into
// dst for this read. Every stochastic draw below is keyed per
// (pass, flat row, column) by chained At derivations (see the keying
// invariant on Chip), so two reads of the same row in one pass see
// the same faults, and no draw depends on what else was read first.
//
//parbor:hotpath
func (c *Chip) applyRandomFaults(flat, row int, elapsed float64, stored, dst []uint64, m *rowMeta) int {
	anti := c.antiRow(row)
	n := 0
	vrtPass := c.vrtSrc.At(c.pass).At(uint64(flat))
	marginalPass := c.marginalSrc.At(c.pass).At(uint64(flat))
	for _, fcell := range m.fcells {
		col := int(fcell.Col)
		switch fcell.Kind {
		case faults.KindVRT:
			if elapsed >= vrtRetentionMs && charged(stored, col, anti) {
				// The leaky state is a fresh per-pass Bernoulli draw per
				// VRT cell, exactly as when it was drawn eagerly in Wait
				// — but keyed, so unmaterialized rows need no state.
				src := vrtPass.At(uint64(fcell.Col))
				if src.Bool(c.fc.VRTToggleProb) {
					flipBit(dst, col)
					n++
				}
			}
		case faults.KindMarginal:
			if elapsed >= marginalRetentionMs && charged(stored, col, anti) {
				src := marginalPass.At(uint64(fcell.Col))
				if src.Bool(c.fc.MarginalFailProb) {
					flipBit(dst, col)
					n++
				}
			}
		case faults.KindWeak:
			if elapsed >= weakRetentionMs && charged(stored, col, anti) {
				flipBit(dst, col)
				n++
			}
		}
	}
	if c.fc.SoftErrorPerRowRead > 0 {
		src := c.softSrc.At(c.pass).At(uint64(flat))
		if src.Bool(c.fc.SoftErrorPerRowRead) {
			flipBit(dst, src.Intn(c.geom.Cols))
			n++
		}
	}
	return n
}

// chargeTime returns the sim time (ms) the row's cells were last
// restored to full charge: its last explicit write, or the latest
// auto-refresh if that came later and did not skip the row.
//
//parbor:hotpath
func (c *Chip) chargeTime(idx int) float64 {
	t := c.writeAt[idx]
	if c.lastRefreshMs > t && c.pausedBits[idx>>6]&(1<<(uint(idx)&63)) == 0 {
		t = c.lastRefreshMs
	}
	return t
}

// AutoRefresh restores full charge on every row except the excluded
// flat row indices, without altering stored data: the auto-refresh
// that keeps running for all memory not paused for testing. Host
// passes invoke it so that only rows actually under test accumulate
// retention time.
//
// The implementation is lazy — O(rows excluded) rather than O(rows in
// chip): the refresh is recorded as a chip-level timestamp plus the
// paused bitset, and ReadRow reconstructs each row's effective charge
// time on demand (chargeTime). Before the new epoch is installed, the
// rows it pauses have their charge time from the previous epoch
// materialized into writeAt, so retention keeps accumulating across
// consecutive passes that test the same rows.
//
// except may hold duplicates and need not be sorted; the chip copies
// what it needs, so the caller is free to reuse the slice immediately.
func (c *Chip) AutoRefresh(except []int) {
	for _, idx := range except {
		if t := c.chargeTime(idx); t > c.writeAt[idx] {
			c.writeAt[idx] = t
		}
	}
	// Swap epochs: clear the previous epoch's bits through its list
	// (O(rows previously excluded)), then set the new ones.
	for _, idx := range c.pausedList {
		c.pausedBits[idx>>6] &^= 1 << (uint(idx) & 63)
	}
	c.pausedList = c.pausedList[:0]
	for _, idx := range except {
		w, bit := idx>>6, uint64(1)<<(uint(idx)&63)
		if c.pausedBits[w]&bit == 0 {
			c.pausedBits[w] |= bit
			c.pausedList = append(c.pausedList, idx)
		}
	}
	c.lastRefreshMs = c.nowMs
	if c.rec != nil {
		c.rec.Command(obs.CmdRefresh, 1)
	}
}

// SetRecorder attaches (or, with nil, detaches) a command recorder
// after construction. Recording is passive; swapping recorders never
// changes simulation results.
func (c *Chip) SetRecorder(r obs.Recorder) { c.rec = r }

// Clock returns the chip's simulation clock: the current virtual time
// in milliseconds and the pass counter that seeds the per-pass noise
// and VRT draws. Together with the experiment seed these determine
// every future stochastic draw, so a checkpoint that records them can
// resume bit-identically.
func (c *Chip) Clock() (nowMs float64, pass uint64) { return c.nowMs, c.pass }

// SetClock restores a clock captured by Clock on a freshly
// constructed chip (same geometry, same seed). It also resets the
// refresh bookkeeping — lastRefreshMs jumps to nowMs and any paused
// epoch is dropped — so the first read after a restore sees zero
// elapsed retention, exactly like the read that verified the
// checkpoint's save pass. Restoring the clock without restoring row
// contents is the caller's contract violation, not detected here.
func (c *Chip) SetClock(nowMs float64, pass uint64) {
	if nowMs < 0 {
		panic("dram: negative clock")
	}
	c.nowMs = nowMs
	c.pass = pass
	c.lastRefreshMs = nowMs
	for _, idx := range c.pausedList {
		c.pausedBits[idx>>6] &^= 1 << (uint(idx) & 63)
	}
	c.pausedList = c.pausedList[:0]
}

// FlatRowIndex converts a (bank, row) pair to the flat index used by
// AutoRefresh.
func (c *Chip) FlatRowIndex(bank, row int) int { return c.geom.rowIndex(bank, row) }

// Now returns the chip's simulated clock in milliseconds.
func (c *Chip) Now() float64 { return c.nowMs }

// TrueVictims exposes the ground-truth victim population of a row for
// experiment validation and tests. It reuses the row's cached
// rowMeta rather than re-deriving the population from the RNG, so
// validation paths do not pay the materialization cost a second time.
// The returned slice is a copy the caller may modify.
func (c *Chip) TrueVictims(bank, row int) []coupling.Victim {
	m := c.rowMetaFor(c.geom.rowIndex(bank, row))
	return append([]coupling.Victim(nil), m.raw...)
}

// RemappedColumns exposes the ground-truth remapped-column set for
// experiment validation and tests.
func (c *Chip) RemappedColumns() map[int32]struct{} {
	out := make(map[int32]struct{}, len(c.remap))
	for k := range c.remap {
		out[k] = struct{}{}
	}
	return out
}
