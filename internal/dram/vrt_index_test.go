package dram

import (
	"testing"

	"parbor/internal/coupling"
	"parbor/internal/faults"
	"parbor/internal/scramble"
)

func vrtChip(t *testing.T) *Chip {
	t.Helper()
	c, err := NewChip(ChipConfig{
		Geometry: Geometry{Banks: 1, Rows: 128, Cols: 1024},
		Vendor:   scramble.VendorA,
		Coupling: coupling.Config{VulnerableRate: 0, RetentionMinMs: 1, RetentionMaxMs: 1},
		Faults:   faults.Config{VRTRate: 0.02, VRTToggleProb: 0.5},
		Seed:     11,
	})
	if err != nil {
		t.Fatalf("NewChip: %v", err)
	}
	return c
}

// TestVRTIndexMatchesLegacyScan replays the pre-index Wait algorithm
// — scan every materialized row in ascending flat order, drawing one
// toggle per VRT cell in fcell order — and checks that the indexed
// walk consumed the "vrt-toggle" stream identically. This is the
// invariant that keeps every failure set, golden checksum and obs
// counter bit-identical across the index refactor.
func TestVRTIndexMatchesLegacyScan(t *testing.T) {
	c := vrtChip(t)
	rowCount := c.Geometry().RowCount()
	for flat := 0; flat < rowCount; flat++ {
		c.rowMetaFor(flat)
	}
	vrtCells := 0
	for pass := 0; pass < 5; pass++ {
		c.Wait(64)
		src := c.vrtSrc.At(c.pass)
		for flat := 0; flat < rowCount; flat++ {
			m := c.meta[flat]
			if m == nil {
				continue
			}
			for i, fcell := range m.fcells {
				if fcell.Kind != faults.KindVRT {
					continue
				}
				if pass == 0 {
					vrtCells++
				}
				want := src.Bool(c.fc.VRTToggleProb)
				if m.vrtOn[i] != want {
					t.Fatalf("pass %d row %d fcell %d: vrtOn = %v, legacy scan draws %v (draw order diverged)", pass, flat, i, m.vrtOn[i], want)
				}
			}
		}
	}
	if vrtCells == 0 {
		t.Fatal("test is vacuous: no VRT cells materialized")
	}
}

// TestVRTIndexOrderInvariant materializes the same chip's rows in
// ascending versus descending order and checks that the VRT index,
// and therefore the per-pass toggle draws, come out identical: the
// index is sorted by flat row, so materialization order is
// unobservable.
func TestVRTIndexOrderInvariant(t *testing.T) {
	a, b := vrtChip(t), vrtChip(t)
	rowCount := a.Geometry().RowCount()

	// Interleave materialization with passes to exercise incremental
	// index growth: first the even rows, then — after two passes —
	// the odd rows.
	for flat := 0; flat < rowCount; flat += 2 {
		a.rowMetaFor(flat)
	}
	for flat := rowCount - 2; flat >= 0; flat -= 2 {
		b.rowMetaFor(flat)
	}
	a.Wait(64)
	b.Wait(64)
	a.Wait(64)
	b.Wait(64)
	for flat := 1; flat < rowCount; flat += 2 {
		a.rowMetaFor(flat)
	}
	for flat := rowCount - 1; flat >= 1; flat -= 2 {
		b.rowMetaFor(flat)
	}
	a.Wait(64)
	b.Wait(64)

	if len(a.vrtRows) != len(b.vrtRows) {
		t.Fatalf("index sizes differ: %d vs %d", len(a.vrtRows), len(b.vrtRows))
	}
	for i := range a.vrtRows {
		if a.vrtRows[i] != b.vrtRows[i] {
			t.Fatalf("index entry %d differs: %d vs %d", i, a.vrtRows[i], b.vrtRows[i])
		}
		if i > 0 && a.vrtRows[i] <= a.vrtRows[i-1] {
			t.Fatalf("index not strictly ascending at %d: %v", i, a.vrtRows[:i+1])
		}
	}
	for flat := 0; flat < rowCount; flat++ {
		ma, mb := a.meta[flat], b.meta[flat]
		for i := range ma.vrtOn {
			if ma.vrtOn[i] != mb.vrtOn[i] {
				t.Fatalf("row %d vrtOn[%d] differs across materialization orders", flat, i)
			}
		}
	}
}

// TestVRTIndexCoversExactlyVRTRows checks the index's membership
// invariant: a flat row is indexed if and only if it materialized
// with at least one VRT cell.
func TestVRTIndexCoversExactlyVRTRows(t *testing.T) {
	c := vrtChip(t)
	rowCount := c.Geometry().RowCount()
	for flat := 0; flat < rowCount; flat++ {
		c.rowMetaFor(flat)
	}
	indexed := make(map[int32]bool, len(c.vrtRows))
	for _, flat := range c.vrtRows {
		indexed[flat] = true
	}
	for flat := 0; flat < rowCount; flat++ {
		want := len(c.meta[flat].vrtIdx) > 0
		if indexed[int32(flat)] != want {
			t.Fatalf("row %d: indexed = %v, has VRT cells = %v", flat, indexed[int32(flat)], want)
		}
		for j, i := range c.meta[flat].vrtIdx {
			if c.meta[flat].fcells[i].Kind != faults.KindVRT {
				t.Fatalf("row %d vrtIdx[%d] = %d does not point at a VRT cell", flat, j, i)
			}
		}
	}
}
