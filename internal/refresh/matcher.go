package refresh

import (
	"fmt"
	"sort"
)

// VulnerableCell describes one cell of a row that PARBOR found to
// exhibit data-dependent failures: its bit address within the row and
// the data value under which it is at risk (the value that leaves it
// charged).
type VulnerableCell struct {
	Col      int32
	FailData uint64 // 0 or 1
}

// Matcher is the bit-accurate content check at the heart of DC-REF
// (Section 8): given the data being written to a row, it decides
// whether the content recreates the worst-case coupling pattern at
// any of the row's vulnerable cells — only then must the row stay on
// the fast refresh interval.
//
// The check is deliberately conservative: a vulnerable cell counts as
// endangered when it holds its fail value while ANY candidate
// neighbor location (cell ± each detected distance) holds the
// opposite value. Strongly coupled cells indeed fail in that
// situation; weakly coupled cells need both neighbors, so the
// conservative check never under-refreshes — the safety direction —
// at the cost of keeping some benign rows fast.
//
// A Matcher is immutable and safe for concurrent use.
type Matcher struct {
	distances []int
	rowBits   int
	cells     map[int64][]VulnerableCell // by row key
}

// NewMatcher builds a matcher for rows of rowBits bits from the
// detected neighbor distances.
func NewMatcher(distances []int, rowBits int) (*Matcher, error) {
	if len(distances) == 0 {
		return nil, fmt.Errorf("refresh: matcher needs a non-empty distance set")
	}
	if rowBits <= 0 || rowBits%64 != 0 {
		return nil, fmt.Errorf("refresh: rowBits = %d must be a positive multiple of 64", rowBits)
	}
	ds := append([]int(nil), distances...)
	sort.Ints(ds)
	return &Matcher{
		distances: ds,
		rowBits:   rowBits,
		cells:     make(map[int64][]VulnerableCell),
	}, nil
}

// AddRow registers a row's vulnerable cells (from PARBOR's full-chip
// results). Rows without vulnerable cells need no registration; they
// always report no match.
func (m *Matcher) AddRow(rowKey int64, cells []VulnerableCell) error {
	for _, c := range cells {
		if c.Col < 0 || int(c.Col) >= m.rowBits {
			return fmt.Errorf("refresh: cell column %d outside %d-bit row", c.Col, m.rowBits)
		}
		if c.FailData > 1 {
			return fmt.Errorf("refresh: cell fail data %d is not a bit", c.FailData)
		}
	}
	m.cells[rowKey] = append([]VulnerableCell(nil), cells...)
	return nil
}

// VulnerableRows returns the number of registered rows.
func (m *Matcher) VulnerableRows() int { return len(m.cells) }

// Matches reports whether data (the row's new content) endangers any
// registered vulnerable cell of the row.
func (m *Matcher) Matches(rowKey int64, data []uint64) (bool, error) {
	if len(data)*64 != m.rowBits {
		return false, fmt.Errorf("refresh: data has %d bits, want %d", len(data)*64, m.rowBits)
	}
	cells, ok := m.cells[rowKey]
	if !ok {
		return false, nil
	}
	for _, c := range cells {
		if bitAt(data, int(c.Col)) != c.FailData {
			continue // the cell itself is in its safe state
		}
		for _, d := range m.distances {
			p := int(c.Col) + d
			if p < 0 || p >= m.rowBits {
				continue
			}
			if bitAt(data, p) != c.FailData {
				return true, nil
			}
		}
	}
	return false, nil
}

// MatchFraction evaluates the matcher over a set of row contents and
// returns the fraction of registered rows whose content matches —
// the per-application statistic that drives DC-REF's fast-row
// population (the paper measures 2.7% of all rows on average over
// SPEC).
func (m *Matcher) MatchFraction(contents map[int64][]uint64) (float64, error) {
	if len(m.cells) == 0 {
		return 0, nil
	}
	matched := 0
	for key := range m.cells {
		data, ok := contents[key]
		if !ok {
			// Unknown content: conservative policies count it as
			// matching until the first write classifies it.
			matched++
			continue
		}
		is, err := m.Matches(key, data)
		if err != nil {
			return 0, err
		}
		if is {
			matched++
		}
	}
	return float64(matched) / float64(len(m.cells)), nil
}

func bitAt(words []uint64, i int) uint64 {
	return (words[i>>6] >> (uint(i) & 63)) & 1
}
