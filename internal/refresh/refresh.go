// Package refresh implements the refresh-rate policies evaluated in
// Section 8 of the PARBOR paper:
//
//   - Uniform: every row refreshed at the nominal 64 ms interval
//     (the DDR3 baseline).
//   - RAIDR: rows containing weak (low-retention) cells refreshed at
//     64 ms, all other rows at 256 ms (Liu et al., ISCA 2012). The
//     weak-row set is held in a Bloom filter, as in the original.
//   - DC-REF: the paper's contribution — a weak row is refreshed at
//     64 ms only while its data content matches the worst-case
//     pattern of one of its vulnerable cells (checked on writes,
//     using the neighbor locations PARBOR provides); weak rows whose
//     content is benign drop to 256 ms like everyone else.
//
// The paper's numbers follow directly from the row fractions: with
// 16.4% weak rows and on average 2.7% of rows matching the worst-case
// pattern, DC-REF issues 0.027 + 0.973/4 = 27.0% of the baseline's
// refreshes (-73%), which is 27.6% fewer than RAIDR's
// 0.164 + 0.836/4 = 37.3%.
package refresh

import (
	"fmt"

	"parbor/internal/bloom"
	"parbor/internal/rng"
)

// Kind selects a refresh policy.
type Kind int

// The three policies of Figure 16.
const (
	Uniform Kind = iota + 1
	RAIDR
	DCREF
)

// String returns the policy name used in experiment output.
func (k Kind) String() string {
	switch k {
	case Uniform:
		return "baseline-64ms"
	case RAIDR:
		return "RAIDR"
	case DCREF:
		return "DC-REF"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists the policies in evaluation order.
func Kinds() []Kind { return []Kind{Uniform, RAIDR, DCREF} }

// Config parameterizes a policy instance.
type Config struct {
	Kind Kind
	// TotalRows is the number of DRAM rows the policy manages.
	TotalRows int64
	// WeakRowFrac is the fraction of rows containing at least one
	// weak cell (the paper measures 16.4% on real chips).
	WeakRowFrac float64
	// InitialMatchProb is the probability that a weak row's resident
	// data matches the worst-case pattern when the system starts
	// (DC-REF only). The paper measures 16.5% of weak rows matching
	// on average over SPEC (2.7% of all rows).
	InitialMatchProb float64
	// Seed fixes the weak-row draw.
	Seed uint64
}

// Policy tracks which rows currently require the fast refresh
// interval and answers the aggregate queries the refresh engine
// needs.
//
// Policy is not safe for concurrent use.
type Policy struct {
	cfg      Config
	weak     *bloom.Filter // controller's weak-row storage (RAIDR-style)
	nWeak    int64
	nFast    int64          // rows currently on the fast interval
	override map[int64]bool // DC-REF: matched-state set by writes
	src      *rng.Source    // deterministic draws
}

// New builds a policy and populates its weak-row structures.
func New(cfg Config) (*Policy, error) {
	if cfg.TotalRows <= 0 {
		return nil, fmt.Errorf("refresh: TotalRows must be positive, got %d", cfg.TotalRows)
	}
	if cfg.WeakRowFrac < 0 || cfg.WeakRowFrac > 1 {
		return nil, fmt.Errorf("refresh: WeakRowFrac %v out of [0,1]", cfg.WeakRowFrac)
	}
	if cfg.InitialMatchProb < 0 || cfg.InitialMatchProb > 1 {
		return nil, fmt.Errorf("refresh: InitialMatchProb %v out of [0,1]", cfg.InitialMatchProb)
	}
	switch cfg.Kind {
	case Uniform, RAIDR, DCREF:
	default:
		return nil, fmt.Errorf("refresh: unknown policy kind %d", int(cfg.Kind))
	}
	p := &Policy{cfg: cfg, override: make(map[int64]bool), src: rng.New(cfg.Seed)}
	if cfg.Kind == Uniform {
		p.nFast = cfg.TotalRows
		return p, nil
	}

	expectedWeak := uint64(float64(cfg.TotalRows)*cfg.WeakRowFrac) + 1
	var err error
	p.weak, err = bloom.NewWithEstimate(expectedWeak, 0.001)
	if err != nil {
		return nil, err
	}
	for row := int64(0); row < cfg.TotalRows; row++ {
		if !p.isWeakDraw(row) {
			continue
		}
		p.nWeak++
		p.weak.Add(uint64(row))
		switch cfg.Kind {
		case RAIDR:
			p.nFast++
		case DCREF:
			if p.initialMatch(row) {
				p.nFast++
			}
		}
	}
	return p, nil
}

// isWeakDraw is the ground-truth weak-row membership (deterministic
// per seed). The controller's Bloom filter approximates this set.
func (p *Policy) isWeakDraw(row int64) bool {
	return p.src.SplitN("weak", uint64(row)).Float64() < p.cfg.WeakRowFrac
}

// initialMatch is the primed content state of a weak row: whether the
// data resident at system start matches the worst-case pattern.
func (p *Policy) initialMatch(row int64) bool {
	return p.src.SplitN("match0", uint64(row)).Float64() < p.cfg.InitialMatchProb
}

// Kind returns the policy kind.
func (p *Policy) Kind() Kind { return p.cfg.Kind }

// TotalRows returns the number of managed rows.
func (p *Policy) TotalRows() int64 { return p.cfg.TotalRows }

// WeakRows returns the number of rows classified weak.
func (p *Policy) WeakRows() int64 { return p.nWeak }

// FastRows returns the number of rows currently refreshed at the fast
// (64 ms) interval. The remaining rows use the slow (256 ms) one.
func (p *Policy) FastRows() int64 { return p.nFast }

// IsWeak reports whether the controller classifies the row as weak
// (including Bloom-filter false positives, as in real RAIDR).
func (p *Policy) IsWeak(row int64) bool {
	if p.cfg.Kind == Uniform {
		return false
	}
	return p.weak.Contains(uint64(row))
}

// matched returns the current content-match state of a weak row.
func (p *Policy) matched(row int64) bool {
	if m, ok := p.override[row]; ok {
		return m
	}
	return p.initialMatch(row)
}

// OnWrite notifies the policy that new data was written to row. For
// DC-REF this is the content check of Section 8: with probability
// matchProb (a property of the writing application's data), the new
// content recreates the worst-case pattern at one of the row's
// vulnerable cells; otherwise the row drops to the slow interval.
// writeSeq must increase across writes to the same row so repeated
// writes re-draw the content.
func (p *Policy) OnWrite(row int64, matchProb float64, writeSeq uint64) {
	if p.cfg.Kind != DCREF {
		return
	}
	if !p.isWeakDraw(row) {
		return // content of strong rows never forces fast refresh
	}
	old := p.matched(row)
	now := p.src.SplitN("write", uint64(row)).SplitN("seq", writeSeq).Float64() < matchProb
	if old == now {
		return
	}
	p.override[row] = now
	if now {
		p.nFast++
	} else {
		p.nFast--
	}
}

// RowsDuePerTick returns the expected number of row refreshes the
// engine must perform in one tREFI slot, given slotsPerInterval tREFI
// slots per fast interval (8192 for DDR3) and slowRatio (4: 256 ms /
// 64 ms). Fast rows are refreshed every interval, slow rows every
// slowRatio intervals.
func (p *Policy) RowsDuePerTick(slotsPerInterval, slowRatio int) float64 {
	fast := float64(p.nFast)
	slow := float64(p.cfg.TotalRows - p.nFast)
	return fast/float64(slotsPerInterval) + slow/float64(slotsPerInterval*slowRatio)
}
