package refresh

import (
	"math"
	"testing"
)

func newPolicy(t *testing.T, kind Kind, rows int64) *Policy {
	t.Helper()
	p, err := New(Config{
		Kind:             kind,
		TotalRows:        rows,
		WeakRowFrac:      0.164,
		InitialMatchProb: 0.165,
		Seed:             7,
	})
	if err != nil {
		t.Fatalf("New(%v): %v", kind, err)
	}
	return p
}

func TestUniformRefreshesEverything(t *testing.T) {
	p := newPolicy(t, Uniform, 10000)
	if p.FastRows() != 10000 {
		t.Errorf("FastRows = %d, want 10000", p.FastRows())
	}
	if got := p.RowsDuePerTick(8192, 4); math.Abs(got-10000.0/8192) > 1e-9 {
		t.Errorf("RowsDuePerTick = %v, want %v", got, 10000.0/8192)
	}
}

func TestRAIDRFastFraction(t *testing.T) {
	p := newPolicy(t, RAIDR, 100000)
	frac := float64(p.FastRows()) / 100000
	if math.Abs(frac-0.164) > 0.01 {
		t.Errorf("RAIDR fast fraction = %v, want about 0.164", frac)
	}
	if p.WeakRows() != p.FastRows() {
		t.Errorf("RAIDR fast rows (%d) != weak rows (%d)", p.FastRows(), p.WeakRows())
	}
}

func TestDCREFFastFraction(t *testing.T) {
	p := newPolicy(t, DCREF, 100000)
	frac := float64(p.FastRows()) / 100000
	// 16.4% weak rows x 16.5% matched = 2.7% of all rows (the paper's
	// measured average).
	if math.Abs(frac-0.027) > 0.006 {
		t.Errorf("DC-REF fast fraction = %v, want about 0.027", frac)
	}
}

// TestPaperRefreshArithmetic verifies the refresh-reduction numbers
// of Section 8 follow from the policies: DC-REF issues 73% fewer
// refreshes than baseline and 27.6% fewer than RAIDR.
func TestPaperRefreshArithmetic(t *testing.T) {
	const rows = 200000
	base := newPolicy(t, Uniform, rows)
	raidr := newPolicy(t, RAIDR, rows)
	dcref := newPolicy(t, DCREF, rows)

	rb := base.RowsDuePerTick(8192, 4)
	rr := raidr.RowsDuePerTick(8192, 4)
	rd := dcref.RowsDuePerTick(8192, 4)

	if red := 1 - rd/rb; math.Abs(red-0.73) > 0.02 {
		t.Errorf("DC-REF vs baseline refresh reduction = %.3f, want about 0.73", red)
	}
	if red := 1 - rd/rr; math.Abs(red-0.276) > 0.03 {
		t.Errorf("DC-REF vs RAIDR refresh reduction = %.3f, want about 0.276", red)
	}
}

func TestOnWriteTogglesFastSet(t *testing.T) {
	p := newPolicy(t, DCREF, 50000)
	// Find a weak row.
	weakRow := int64(-1)
	for row := int64(0); row < 50000; row++ {
		if p.isWeakDraw(row) {
			weakRow = row
			break
		}
	}
	if weakRow < 0 {
		t.Fatal("no weak row found")
	}
	// Writing definitely-matching content forces fast refresh.
	before := p.FastRows()
	p.OnWrite(weakRow, 1.0, 1)
	if !p.matched(weakRow) {
		t.Error("row not matched after matchProb=1 write")
	}
	// Writing definitely-benign content drops it to slow.
	p.OnWrite(weakRow, 0.0, 2)
	if p.matched(weakRow) {
		t.Error("row still matched after matchProb=0 write")
	}
	if p.FastRows() > before {
		t.Errorf("fast rows grew from %d to %d after benign write", before, p.FastRows())
	}
}

func TestOnWriteIgnoresStrongRows(t *testing.T) {
	p := newPolicy(t, DCREF, 50000)
	strongRow := int64(-1)
	for row := int64(0); row < 50000; row++ {
		if !p.isWeakDraw(row) {
			strongRow = row
			break
		}
	}
	before := p.FastRows()
	p.OnWrite(strongRow, 1.0, 1)
	if p.FastRows() != before {
		t.Error("write to strong row changed the fast set")
	}
}

func TestOnWriteNoopForOtherPolicies(t *testing.T) {
	for _, kind := range []Kind{Uniform, RAIDR} {
		p := newPolicy(t, kind, 10000)
		before := p.FastRows()
		for row := int64(0); row < 100; row++ {
			p.OnWrite(row, 1.0, uint64(row))
		}
		if p.FastRows() != before {
			t.Errorf("%v: OnWrite changed fast set", kind)
		}
	}
}

func TestIsWeakNoFalseNegatives(t *testing.T) {
	p := newPolicy(t, RAIDR, 20000)
	for row := int64(0); row < 20000; row++ {
		if p.isWeakDraw(row) && !p.IsWeak(row) {
			t.Fatalf("Bloom filter lost weak row %d", row)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Kind: Uniform, TotalRows: 0},
		{Kind: Uniform, TotalRows: 10, WeakRowFrac: -1},
		{Kind: Uniform, TotalRows: 10, InitialMatchProb: 2},
		{Kind: Kind(9), TotalRows: 10},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestKindString(t *testing.T) {
	if Uniform.String() != "baseline-64ms" || RAIDR.String() != "RAIDR" || DCREF.String() != "DC-REF" {
		t.Error("unexpected kind names")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Errorf("Kind(42).String() = %q", Kind(42).String())
	}
	if len(Kinds()) != 3 {
		t.Error("Kinds() should list three policies")
	}
}
