package refresh

import (
	"testing"

	"parbor/internal/rng"
)

func newTestMatcher(t *testing.T) *Matcher {
	t.Helper()
	m, err := NewMatcher([]int{-48, -16, -8, 8, 16, 48}, 1024)
	if err != nil {
		t.Fatalf("NewMatcher: %v", err)
	}
	return m
}

func setBit(words []uint64, i int, v uint64) {
	mask := uint64(1) << (uint(i) & 63)
	if v != 0 {
		words[i>>6] |= mask
	} else {
		words[i>>6] &^= mask
	}
}

func TestMatcherWorstCase(t *testing.T) {
	m := newTestMatcher(t)
	if err := m.AddRow(7, []VulnerableCell{{Col: 100, FailData: 1}}); err != nil {
		t.Fatalf("AddRow: %v", err)
	}

	data := make([]uint64, 16)
	for i := range data {
		data[i] = ^uint64(0) // all ones: cell at fail value, neighbors too
	}
	if got, _ := m.Matches(7, data); got {
		t.Error("uniform content matched; no neighbor is opposite")
	}

	// Flip one candidate neighbor location: now dangerous.
	setBit(data, 100+16, 0)
	if got, _ := m.Matches(7, data); !got {
		t.Error("worst-case content did not match")
	}

	// The cell itself in the safe state: never dangerous.
	setBit(data, 100, 0)
	if got, _ := m.Matches(7, data); got {
		t.Error("cell in safe state matched")
	}
}

func TestMatcherRespectsFailDataPolarity(t *testing.T) {
	m := newTestMatcher(t)
	if err := m.AddRow(1, []VulnerableCell{{Col: 200, FailData: 0}}); err != nil {
		t.Fatalf("AddRow: %v", err)
	}
	data := make([]uint64, 16) // all zeros: cell at fail value 0
	if got, _ := m.Matches(1, data); got {
		t.Error("uniform zeros matched")
	}
	setBit(data, 200-8, 1) // neighbor opposite to fail value
	if got, _ := m.Matches(1, data); !got {
		t.Error("anti-cell worst case did not match")
	}
}

func TestMatcherUnregisteredRow(t *testing.T) {
	m := newTestMatcher(t)
	data := make([]uint64, 16)
	if got, _ := m.Matches(42, data); got {
		t.Error("unregistered row matched")
	}
}

func TestMatcherEdgeColumns(t *testing.T) {
	m := newTestMatcher(t)
	// A cell whose +48 neighbor candidate would fall outside the row.
	if err := m.AddRow(2, []VulnerableCell{{Col: 1020, FailData: 1}}); err != nil {
		t.Fatalf("AddRow: %v", err)
	}
	data := make([]uint64, 16)
	for i := range data {
		data[i] = ^uint64(0)
	}
	if got, _ := m.Matches(2, data); got {
		t.Error("edge cell matched with uniform content")
	}
	setBit(data, 1020-16, 0)
	if got, _ := m.Matches(2, data); !got {
		t.Error("edge cell in-row worst case did not match")
	}
}

func TestMatchFraction(t *testing.T) {
	m := newTestMatcher(t)
	for row := int64(0); row < 10; row++ {
		if err := m.AddRow(row, []VulnerableCell{{Col: 64, FailData: 1}}); err != nil {
			t.Fatalf("AddRow: %v", err)
		}
	}
	contents := make(map[int64][]uint64)
	for row := int64(0); row < 10; row++ {
		data := make([]uint64, 16)
		for i := range data {
			data[i] = ^uint64(0)
		}
		if row < 3 {
			setBit(data, 64+8, 0) // dangerous content in rows 0-2
		}
		contents[row] = data
	}
	frac, err := m.MatchFraction(contents)
	if err != nil {
		t.Fatalf("MatchFraction: %v", err)
	}
	if frac != 0.3 {
		t.Errorf("MatchFraction = %v, want 0.3", frac)
	}
	// Unknown contents count as matching (conservative).
	delete(contents, 5)
	frac, err = m.MatchFraction(contents)
	if err != nil {
		t.Fatalf("MatchFraction: %v", err)
	}
	if frac != 0.4 {
		t.Errorf("MatchFraction with unknown row = %v, want 0.4", frac)
	}
}

// TestMatchFractionRandomData estimates the match probability of
// per-bit random content: with 6 candidate neighbors and one
// vulnerable cell, roughly 1/2 * (1 - 2^-6) of rows should match —
// the kind of statistic the trace profiles encode as
// ContentMatchProb.
func TestMatchFractionRandomData(t *testing.T) {
	m := newTestMatcher(t)
	src := rng.New(9)
	contents := make(map[int64][]uint64)
	const rows = 4000
	for row := int64(0); row < rows; row++ {
		if err := m.AddRow(row, []VulnerableCell{{Col: 512, FailData: 1}}); err != nil {
			t.Fatalf("AddRow: %v", err)
		}
		data := make([]uint64, 16)
		for i := range data {
			data[i] = src.Uint64()
		}
		contents[row] = data
	}
	frac, err := m.MatchFraction(contents)
	if err != nil {
		t.Fatalf("MatchFraction: %v", err)
	}
	want := 0.5 * (1 - 1.0/64)
	if frac < want-0.03 || frac > want+0.03 {
		t.Errorf("random-content match fraction = %.3f, want about %.3f", frac, want)
	}
}

func TestMatcherValidation(t *testing.T) {
	if _, err := NewMatcher(nil, 1024); err == nil {
		t.Error("empty distances accepted")
	}
	if _, err := NewMatcher([]int{1}, 100); err == nil {
		t.Error("non-multiple-of-64 rowBits accepted")
	}
	m := newTestMatcher(t)
	if err := m.AddRow(1, []VulnerableCell{{Col: 5000}}); err == nil {
		t.Error("out-of-row cell accepted")
	}
	if err := m.AddRow(1, []VulnerableCell{{Col: 5, FailData: 2}}); err == nil {
		t.Error("non-bit fail data accepted")
	}
	if _, err := m.Matches(1, make([]uint64, 3)); err == nil {
		t.Error("short data accepted")
	}
	if m.VulnerableRows() != 0 {
		t.Error("failed AddRow registered the row anyway")
	}
}
