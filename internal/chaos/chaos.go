// Package chaos is the controller-side fault plane: a deterministic
// injector of the transient and permanent error modes a field
// deployment sees in front of the DRAM cell array — bus glitches on
// reads and writes, chips that die (and sometimes come back), and
// shard stalls. It complements internal/faults, which models
// cell-level noise only: faults corrupts bits, chaos fails commands.
//
// A Plane implements memctl.FaultPlane and is attached to a host via
// HostConfig.Faults. Every decision is a pure function of the
// configured seed and the (attempt, row) hook arguments, never of
// wall-clock time or goroutine scheduling, so a faulted run is
// exactly reproducible; and because the attempt counter advances on
// every pass attempt, a retried pass sees fresh draws rather than
// deterministically re-hitting the same glitch.
package chaos

import (
	"errors"
	"fmt"
	"time"

	"parbor/internal/memctl"
	"parbor/internal/obs"
	"parbor/internal/rng"
)

// Counter names the plane reports through internal/obs (aliases of
// the canonical obs constants). Reconcile() uses these to cross-check
// the resilience counters: a report with no chaos faults must show no
// retries or quarantines.
const (
	CounterWriteFaults = obs.CounterChaosWriteFaults
	CounterReadFaults  = obs.CounterChaosReadFaults
	CounterStalls      = obs.CounterChaosStalls
)

// TransientErr is a bus glitch: the command failed but a retry is
// expected to succeed.
type TransientErr struct {
	Op string // "write" or "read"
}

// Error implements error.
func (e *TransientErr) Error() string { return "chaos: transient " + e.Op + " fault (bus glitch)" }

// Transient marks the error retryable for memctl.IsTransient.
func (e *TransientErr) Transient() bool { return true }

// ErrChipDead is the permanent failure mode: the chip does not
// respond and retrying will not help. It carries no Transient method,
// so memctl.IsTransient reports false and retry policies escalate to
// quarantine instead of spinning.
var ErrChipDead = errors.New("chip dead")

// Window schedules a chip outage in attempt numbers: the chip is dead
// for every host pass attempt in [From, To), and alive again from To
// on. To <= 0 means the chip never recovers. Keying outages on the
// host's attempt counter (not wall time) keeps kill/revive schedules
// reproducible under any scheduling.
type Window struct {
	Chip int
	From int
	To   int
}

func (w Window) covers(attempt, chip int) bool {
	return chip == w.Chip && attempt >= w.From && (w.To <= 0 || attempt < w.To)
}

// Config parameterizes a Plane. The zero value injects nothing (but
// still exercises the hook path).
type Config struct {
	// Seed roots every stochastic decision the plane makes.
	Seed uint64
	// WriteFaultProb and ReadFaultProb are the per-operation
	// probabilities of a transient bus glitch, in [0, 1].
	WriteFaultProb float64
	ReadFaultProb  float64
	// StallProb is the per-operation probability of a shard stall, in
	// [0, 1]; Stall is how long a stalled hook sleeps (real time — the
	// simulator's virtual clock is not advanced, so a stall perturbs
	// scheduling without perturbing retention physics).
	StallProb float64
	Stall     time.Duration
	// DeadChips schedules chip outages; see Window.
	DeadChips []Window
}

// Validate rejects configurations outside the model's domain,
// mirroring faults.Config.Validate.
func (c Config) Validate() error {
	probs := []struct {
		name string
		p    float64
	}{
		{"WriteFaultProb", c.WriteFaultProb},
		{"ReadFaultProb", c.ReadFaultProb},
		{"StallProb", c.StallProb},
	}
	for _, pr := range probs {
		if pr.p < 0 || pr.p > 1 {
			return fmt.Errorf("chaos: %s %v outside [0, 1]", pr.name, pr.p)
		}
	}
	if c.Stall < 0 {
		return fmt.Errorf("chaos: negative Stall %v", c.Stall)
	}
	for i, w := range c.DeadChips {
		if w.Chip < 0 {
			return fmt.Errorf("chaos: DeadChips[%d]: negative chip %d", i, w.Chip)
		}
		if w.From < 0 {
			return fmt.Errorf("chaos: DeadChips[%d]: negative From %d", i, w.From)
		}
		if w.To > 0 && w.To <= w.From {
			return fmt.Errorf("chaos: DeadChips[%d]: empty window [%d, %d)", i, w.From, w.To)
		}
	}
	return nil
}

// Plane is a deterministic memctl.FaultPlane. It is immutable after
// construction and therefore safe for the host's concurrent per-chip
// shards; the only side effects are obs counters (atomic) and
// optional stalls.
type Plane struct {
	cfg Config
	rec obs.Recorder
}

var _ memctl.FaultPlane = (*Plane)(nil)

// New validates cfg and builds a Plane reporting to rec (nil for no
// reporting).
func New(cfg Config, rec obs.Recorder) (*Plane, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Plane{cfg: cfg, rec: rec}, nil
}

// Dead reports whether chip is scheduled dead at the given attempt.
// Exported so soak tests can compute expected coverage independently.
func (p *Plane) Dead(attempt, chip int) bool {
	for _, w := range p.cfg.DeadChips {
		if w.covers(attempt, chip) {
			return true
		}
	}
	return false
}

// BeforeWrite implements memctl.FaultPlane.
func (p *Plane) BeforeWrite(attempt int, r memctl.Row) error {
	return p.hook("write", p.cfg.WriteFaultProb, CounterWriteFaults, attempt, r)
}

// BeforeRead implements memctl.FaultPlane.
func (p *Plane) BeforeRead(attempt int, r memctl.Row) error {
	return p.hook("read", p.cfg.ReadFaultProb, CounterReadFaults, attempt, r)
}

func (p *Plane) hook(op string, prob float64, counter string, attempt int, r memctl.Row) error {
	if p.Dead(attempt, r.Chip) {
		p.add(counter, 1)
		return fmt.Errorf("chaos: chip %d: %w", r.Chip, ErrChipDead)
	}
	if prob == 0 && p.cfg.StallProb == 0 {
		return nil
	}
	s := p.stream(op, attempt, r)
	// Fixed draw order (stall, then glitch) keeps the stream layout
	// identical across configs that share a seed.
	if s.Bool(p.cfg.StallProb) {
		p.add(CounterStalls, 1)
		if p.cfg.Stall > 0 {
			time.Sleep(p.cfg.Stall)
		}
	}
	if s.Bool(prob) {
		p.add(counter, 1)
		return &TransientErr{Op: op}
	}
	return nil
}

// stream derives the per-call rng: a fresh child stream per
// (op, attempt, address), so the plane needs no mutable state and the
// host's shard scheduling cannot influence any draw.
func (p *Plane) stream(op string, attempt int, r memctl.Row) *rng.Source {
	s := rng.New(p.cfg.Seed).Split("chaos-" + op)
	s = s.SplitN("attempt", uint64(attempt))
	return s.SplitN("addr", uint64(r.Chip)<<40|uint64(r.Bank)<<28|uint64(r.Row))
}

func (p *Plane) add(name string, n uint64) {
	if p.rec != nil {
		p.rec.Add(name, n)
	}
}
