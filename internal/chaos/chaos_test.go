package chaos

import (
	"errors"
	"testing"
	"time"

	"parbor/internal/memctl"
	"parbor/internal/obs"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{},
		{WriteFaultProb: 1, ReadFaultProb: 0.5, StallProb: 0.1, Stall: time.Millisecond},
		{DeadChips: []Window{{Chip: 3, From: 0, To: 0}, {Chip: 0, From: 2, To: 5}}},
	}
	for i, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
	}
	bad := []Config{
		{WriteFaultProb: -0.1},
		{WriteFaultProb: 1.1},
		{ReadFaultProb: 2},
		{StallProb: -1},
		{Stall: -time.Second},
		{DeadChips: []Window{{Chip: -1}}},
		{DeadChips: []Window{{Chip: 0, From: -1}}},
		{DeadChips: []Window{{Chip: 0, From: 5, To: 5}}},
		{DeadChips: []Window{{Chip: 0, From: 5, To: 3}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(Config{WriteFaultProb: -1}, nil); err == nil {
		t.Error("New accepted an invalid config")
	}
}

// TestHooksDeterministic: the plane's decisions are a pure function of
// (seed, op, attempt, address) — two planes with the same config must
// agree call by call, in any call order.
func TestHooksDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, WriteFaultProb: 0.3, ReadFaultProb: 0.2}
	a, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	type call struct {
		attempt int
		r       memctl.Row
	}
	var calls []call
	for attempt := 0; attempt < 4; attempt++ {
		for chip := 0; chip < 3; chip++ {
			for row := 0; row < 16; row++ {
				calls = append(calls, call{attempt, memctl.Row{Chip: chip, Row: row}})
			}
		}
	}
	faults := 0
	for _, c := range calls {
		ea := a.BeforeWrite(c.attempt, c.r)
		// b sees the same calls in reverse-engineered different order:
		// interleave reads first to show order independence.
		_ = b.BeforeRead(c.attempt, c.r)
		eb := b.BeforeWrite(c.attempt, c.r)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("attempt %d row %+v: plane a says %v, plane b says %v", c.attempt, c.r, ea, eb)
		}
		if ea != nil {
			faults++
			if !memctl.IsTransient(ea) {
				t.Fatalf("probabilistic fault %v not transient", ea)
			}
		}
	}
	if faults == 0 {
		t.Fatal("0.3 write-fault probability injected nothing over 192 calls")
	}
}

// TestAttemptChangesDraws: a retried pass (same addresses, next
// attempt) must see fresh draws, or retries could never succeed.
func TestAttemptChangesDraws(t *testing.T) {
	p, err := New(Config{Seed: 1, WriteFaultProb: 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := memctl.Row{Chip: 0, Bank: 0, Row: 3}
	same := true
	first := p.BeforeWrite(0, r) != nil
	for attempt := 1; attempt < 16; attempt++ {
		if (p.BeforeWrite(attempt, r) != nil) != first {
			same = false
			break
		}
	}
	if same {
		t.Fatal("16 attempts at p=0.5 all drew the same outcome; attempt is not feeding the stream")
	}
}

func TestDeadWindows(t *testing.T) {
	p, err := New(Config{DeadChips: []Window{
		{Chip: 1, From: 2, To: 5},
		{Chip: 2, From: 3, To: 0}, // never recovers
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		attempt, chip int
		dead          bool
	}{
		{0, 1, false}, {1, 1, false}, {2, 1, true}, {4, 1, true}, {5, 1, false},
		{2, 2, false}, {3, 2, true}, {100, 2, true},
		{3, 0, false},
	}
	for _, c := range cases {
		if got := p.Dead(c.attempt, c.chip); got != c.dead {
			t.Errorf("Dead(%d, %d) = %v, want %v", c.attempt, c.chip, got, c.dead)
		}
	}
	err = p.BeforeWrite(3, memctl.Row{Chip: 2})
	if err == nil || !errors.Is(err, ErrChipDead) {
		t.Fatalf("dead chip write error %v, want ErrChipDead", err)
	}
	if memctl.IsTransient(err) {
		t.Error("dead-chip error classified transient; retry policies would spin")
	}
}

func TestCountersReported(t *testing.T) {
	col := obs.NewCollector()
	p, err := New(Config{Seed: 3, WriteFaultProb: 1, ReadFaultProb: 1}, col)
	if err != nil {
		t.Fatal(err)
	}
	r := memctl.Row{Chip: 0}
	if p.BeforeWrite(0, r) == nil || p.BeforeRead(0, r) == nil {
		t.Fatal("probability-1 hooks did not fault")
	}
	rep := col.Snapshot("chaos-test")
	if rep.Counters[CounterWriteFaults] != 1 || rep.Counters[CounterReadFaults] != 1 {
		t.Fatalf("counters %v, want one write fault and one read fault", rep.Counters)
	}
}

// TestZeroConfigInjectsNothing: the zero config must be a no-op plane,
// the property the fault-free bit-identity guarantee rests on.
func TestZeroConfigInjectsNothing(t *testing.T) {
	col := obs.NewCollector()
	p, err := New(Config{}, col)
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 8; attempt++ {
		for row := 0; row < 64; row++ {
			r := memctl.Row{Chip: attempt % 2, Row: row}
			if e := p.BeforeWrite(attempt, r); e != nil {
				t.Fatalf("zero config injected %v", e)
			}
			if e := p.BeforeRead(attempt, r); e != nil {
				t.Fatalf("zero config injected %v", e)
			}
		}
	}
	if n := len(col.Snapshot("chaos-test").Counters); n != 0 {
		t.Fatalf("zero config reported %d counters", n)
	}
}
