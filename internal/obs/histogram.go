package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets covers [1ns, 2^histBuckets ns): bucket i counts
// observations in [2^i, 2^(i+1)) ns, which spans sub-microsecond
// events up to ~18-minute stages at 40 buckets.
const histBuckets = 40

// Histogram is a concurrent-safe power-of-two latency histogram.
// Observations are nanosecond durations; buckets double in width, so
// quantile estimates carry at most a 2x bucket error — plenty for
// spotting stage-cost shifts and load imbalance, at the cost of two
// atomic adds per observation and no allocation.
type Histogram struct {
	count   atomic.Uint64
	sumNs   atomic.Int64
	minNs   atomic.Int64
	maxNs   atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.minNs.Store(math.MaxInt64)
	return h
}

// bucketFor maps a duration to its bucket index.
func bucketFor(ns int64) int {
	if ns < 1 {
		ns = 1
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one duration in nanoseconds. Negative durations
// (clock steps) are clamped to the lowest bucket.
func (h *Histogram) Observe(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		cur := h.minNs.Load()
		if ns >= cur || h.minNs.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.buckets[bucketFor(ns)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// SumNs returns the sum of all observations in nanoseconds.
func (h *Histogram) SumNs() int64 {
	if h == nil {
		return 0
	}
	return h.sumNs.Load()
}

// Quantile returns an estimate of the q-th quantile (0 <= q <= 1) in
// nanoseconds: the upper edge of the bucket holding the rank, i.e.
// an estimate never below the true value by more than one bucket
// width. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			upper := int64(1) << uint(i+1)
			if max := h.maxNs.Load(); upper > max {
				upper = max
			}
			return upper
		}
	}
	return h.maxNs.Load()
}

// Summary condenses the histogram for the report.
func (h *Histogram) Summary() TimingSummary {
	if h == nil || h.Count() == 0 {
		return TimingSummary{}
	}
	count := h.count.Load()
	sum := h.sumNs.Load()
	return TimingSummary{
		Count:   count,
		TotalMs: float64(sum) / 1e6,
		MeanUs:  float64(sum) / float64(count) / 1e3,
		MinUs:   float64(h.minNs.Load()) / 1e3,
		P50Us:   float64(h.Quantile(0.50)) / 1e3,
		P90Us:   float64(h.Quantile(0.90)) / 1e3,
		P99Us:   float64(h.Quantile(0.99)) / 1e3,
		MaxUs:   float64(h.maxNs.Load()) / 1e3,
	}
}
