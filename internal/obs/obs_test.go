package obs

import (
	"math"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Command(CmdActivate, 3)
	c.Add("x", 1)
	c.ObserveNs("y", 100)
	c.SetConfig("k", "v")
	c.SetFigure("f", 1.5)
	stop := c.StartStage("stage")
	stop()
	if got := c.Counter("x"); got != 0 {
		t.Fatalf("nil counter = %d, want 0", got)
	}
	if got := c.CommandCount(CmdActivate); got != 0 {
		t.Fatalf("nil command count = %d, want 0", got)
	}
	r := c.Snapshot("test")
	if r.Schema != ReportSchema {
		t.Fatalf("nil snapshot schema %q", r.Schema)
	}
	if err := r.Reconcile(); err != nil {
		t.Fatalf("nil snapshot does not reconcile: %v", err)
	}
}

func TestNilRecorderInterfaceIsSafe(t *testing.T) {
	// A typed-nil *Collector stored in the interface must also be
	// inert: the instrumented packages guard on rec != nil, which a
	// typed nil passes.
	var rec Recorder = (*Collector)(nil)
	rec.Command(CmdWrite, 1)
	rec.Add("x", 1)
	rec.ObserveNs("y", 5)
}

func TestCommandCountersConcurrent(t *testing.T) {
	c := NewCollector()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Command(CmdActivate, 2)
				c.Command(CmdWrite, 1)
				c.Command(CmdRead, 1)
				c.Add("host.passes", 1)
				c.ObserveNs("host.pass", int64(i))
			}
		}()
	}
	wg.Wait()
	if got := c.CommandCount(CmdActivate); got != workers*per*2 {
		t.Fatalf("activates = %d, want %d", got, workers*per*2)
	}
	if got := c.Counter("host.passes"); got != workers*per {
		t.Fatalf("passes = %d, want %d", got, workers*per)
	}
	r := c.Snapshot("test")
	if err := r.Reconcile(); err != nil {
		t.Fatalf("reconcile: %v", err)
	}
	if r.Timings["host.pass"].Count != workers*per {
		t.Fatalf("timing count = %d, want %d", r.Timings["host.pass"].Count, workers*per)
	}
}

func TestReconcileFailure(t *testing.T) {
	c := NewCollector()
	c.Command(CmdActivate, 2)
	c.Command(CmdWrite, 1)
	if err := c.Snapshot("test").Reconcile(); err == nil {
		t.Fatal("unbalanced commands reconciled")
	}
}

// TestReconcileResilienceCrossCheck pins the fault/symptom pairing:
// with zero chaos faults, resilience symptoms must be absent — except
// degraded epochs when an inherited quarantine (a chip already out of
// service when the scheduler resumed) explains them. Inherited
// quarantine excuses only degradation, never retries or fresh
// quarantines: those require a fault in this incarnation.
func TestReconcileResilienceCrossCheck(t *testing.T) {
	snap := func(mutate func(*Collector)) *Report {
		c := NewCollector()
		mutate(c)
		return c.Snapshot("test")
	}
	if err := snap(func(c *Collector) {
		c.Add(CounterDegradedEpochs, 1)
	}).Reconcile(); err == nil {
		t.Fatal("degraded epochs with zero faults reconciled")
	}
	if err := snap(func(c *Collector) {
		c.Add(CounterInheritedQuarantine, 1)
		c.Add(CounterDegradedEpochs, 2)
	}).Reconcile(); err != nil {
		t.Fatalf("inherited quarantine did not excuse degraded epochs: %v", err)
	}
	if err := snap(func(c *Collector) {
		c.Add(CounterInheritedQuarantine, 1)
		c.Add(CounterRetries, 1)
	}).Reconcile(); err == nil {
		t.Fatal("retries with zero faults reconciled under inherited quarantine")
	}
	if err := snap(func(c *Collector) {
		c.Add(CounterInheritedQuarantine, 1)
		c.Add(CounterQuarantinedChips, 1)
	}).Reconcile(); err == nil {
		t.Fatal("fresh quarantine with zero faults reconciled under inherited quarantine")
	}
	if err := snap(func(c *Collector) {
		c.Add(CounterChaosWriteFaults, 1)
		c.Add(CounterRetries, 1)
		c.Add(CounterDegradedEpochs, 1)
	}).Reconcile(); err != nil {
		t.Fatalf("faulted run with symptoms failed to reconcile: %v", err)
	}
}

func TestStagesRecordDeltas(t *testing.T) {
	c := NewCollector()
	stop := c.StartStage("write")
	c.Command(CmdActivate, 5)
	c.Command(CmdWrite, 5)
	stop()
	stop() // double close must be idempotent
	c.Command(CmdActivate, 3)
	c.Command(CmdRead, 3)

	r := c.Snapshot("test")
	if len(r.Stages) != 1 {
		t.Fatalf("%d stages, want 1", len(r.Stages))
	}
	s := r.Stages[0]
	if s.Name != "write" {
		t.Fatalf("stage name %q", s.Name)
	}
	if s.Commands["write"] != 5 || s.Commands["activate"] != 5 {
		t.Fatalf("stage delta %v, want 5 writes and 5 activates", s.Commands)
	}
	if _, ok := s.Commands["read"]; ok {
		t.Fatal("stage recorded reads issued after it closed")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(int64(i) * 1000) // 1us .. 1ms
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	// Power-of-two buckets: the estimate may overshoot by at most
	// one bucket (2x).
	if p50 < 500_000/2 || p50 > 2*500_000*2 {
		t.Fatalf("p50 = %dns, want within 2x of 500us", p50)
	}
	if h.Quantile(1) != 1_000_000 {
		t.Fatalf("p100 = %dns, want max 1ms", h.Quantile(1))
	}
	s := h.Summary()
	if s.MinUs != 1 || s.MaxUs != 1000 {
		t.Fatalf("min/max = %v/%v us, want 1/1000", s.MinUs, s.MaxUs)
	}
	if math.Abs(s.TotalMs-500.5) > 1e-9 {
		t.Fatalf("total = %vms, want 500.5", s.TotalMs)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(5)
	if nilH.Count() != 0 || nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram not inert")
	}
	if (nilH.Summary() != TimingSummary{}) {
		t.Fatal("nil histogram summary not zero")
	}

	h := NewHistogram()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	h.Observe(-10) // clamped
	h.Observe(0)
	h.Observe(math.MaxInt64) // clamped into the last bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(math.NaN()); got != 0 {
		t.Fatalf("NaN quantile = %d, want 0", got)
	}
	if h.Quantile(-1) == 0 && h.Count() > 0 {
		// q clamps to 0, which still returns the first occupied
		// bucket's upper edge — never panics.
		t.Log("quantile(-1) returned 0")
	}
}

func TestReportRoundTrip(t *testing.T) {
	c := NewCollector()
	c.SetConfig("vendor", "A")
	c.SetConfig("rows", 256)
	c.SetFigure("total_tests", 90)
	stop := c.StartStage("detect")
	c.Command(CmdActivate, 10)
	c.Command(CmdWrite, 6)
	c.Command(CmdRead, 4)
	c.Command(CmdRefresh, 2)
	c.Add("host.passes", 3)
	c.ObserveNs("host.pass", int64(2*time.Millisecond))
	stop()

	path := filepath.Join(t.TempDir(), "report.json")
	r := c.Snapshot("obs-test")
	if err := r.Reconcile(); err != nil {
		t.Fatalf("reconcile: %v", err)
	}
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "obs-test" || got.Schema != ReportSchema {
		t.Fatalf("round trip header %q %q", got.Tool, got.Schema)
	}
	if got.Commands["activate"] != 10 || got.Commands["refresh"] != 2 {
		t.Fatalf("round trip commands %v", got.Commands)
	}
	if got.Counters["host.passes"] != 3 {
		t.Fatalf("round trip counters %v", got.Counters)
	}
	if got.Figures["total_tests"] != 90 {
		t.Fatalf("round trip figures %v", got.Figures)
	}
	if len(got.Stages) != 1 || got.Stages[0].Name != "detect" {
		t.Fatalf("round trip stages %v", got.Stages)
	}
	if got.Timings["host.pass"].Count != 1 {
		t.Fatalf("round trip timings %v", got.Timings)
	}
	if err := got.Reconcile(); err != nil {
		t.Fatalf("round-tripped report does not reconcile: %v", err)
	}
}

func TestReadReportRejectsUnknownSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	r := &Report{Schema: "parbor/report/v999", Tool: "x", Commands: map[string]uint64{}}
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReportFile(path); err == nil {
		t.Fatal("unknown schema accepted")
	}
	if err := r.Reconcile(); err == nil {
		t.Fatal("unknown schema reconciled")
	}
}

func TestProfiles(t *testing.T) {
	dir := t.TempDir()
	stop, err := StartProfiles(filepath.Join(dir, "cpu.out"), filepath.Join(dir, "mem.out"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	// No profiles requested: stop is still a valid no-op.
	stop, err = StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
