package obs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestReconcileCoversAllCounterKeys walks every non-test Go file in
// the module and checks that each chaos.* / resilience.* counter key
// the tree can increment appears in reconciledCounters, Reconcile's
// invariant set. The walk is syntactic (go/parser, no type
// information) but resolves the two shapes the tree actually uses:
// a direct obs constant (rec.Add(obs.CounterRetries, ...)) and a
// package-local alias of one (chaos.CounterWriteFaults =
// obs.CounterChaosWriteFaults). Any matching string literal outside
// this package counts too, so a hand-spelled key cannot hide either.
//
// The other direction is pinned as well: reconciledCounters may only
// contain keys this package declares, so the set cannot accrete
// entries for counters that no longer exist.
func TestReconcileCoversAllCounterKeys(t *testing.T) {
	keyPat := regexp.MustCompile(`^(chaos|resilience)\.`)
	root := moduleRoot(t)

	// Pass 1: collect every top-level const declaration in the tree.
	// direct maps a const name to its string value; alias maps a const
	// name to the name of the const it re-exports.
	direct := map[string][]string{}
	alias := map[string][]string{}
	// incremented collects the keys to check: literal or
	// const-resolved first arguments of .Inc/.Add calls, plus raw
	// matching literals anywhere outside this package's declarations.
	incremented := map[string]string{} // key -> "file:line" of one site

	fset := token.NewFileSet()
	var files []*ast.File
	var paths []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if name == "vendor" || name == "testdata" || name == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, 0)
		if perr != nil {
			return perr
		}
		files = append(files, f)
		paths = append(paths, path)
		return nil
	})
	if err != nil {
		t.Fatalf("walking module: %v", err)
	}

	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						continue
					}
					switch v := vs.Values[i].(type) {
					case *ast.BasicLit:
						if v.Kind == token.STRING {
							if s, err := strconv.Unquote(v.Value); err == nil {
								direct[name.Name] = append(direct[name.Name], s)
							}
						}
					case *ast.Ident:
						alias[name.Name] = append(alias[name.Name], v.Name)
					case *ast.SelectorExpr:
						alias[name.Name] = append(alias[name.Name], v.Sel.Name)
					}
				}
			}
		}
	}

	// resolve follows alias chains (bounded — the tree has one hop,
	// but be safe) down to string values.
	var resolve func(name string, depth int) []string
	resolve = func(name string, depth int) []string {
		if depth > 4 {
			return nil
		}
		out := append([]string(nil), direct[name]...)
		for _, ref := range alias[name] {
			out = append(out, resolve(ref, depth+1)...)
		}
		return out
	}
	// keysOf resolves an .Inc/.Add argument expression to candidate
	// string keys.
	keysOf := func(e ast.Expr) []string {
		switch v := e.(type) {
		case *ast.BasicLit:
			if v.Kind == token.STRING {
				if s, err := strconv.Unquote(v.Value); err == nil {
					return []string{s}
				}
			}
		case *ast.Ident:
			return resolve(v.Name, 0)
		case *ast.SelectorExpr:
			return resolve(v.Sel.Name, 0)
		}
		return nil
	}

	// Pass 2: find increment sites and stray literals.
	for i, f := range files {
		path := paths[i]
		inDecls := strings.HasSuffix(path, filepath.Join("internal", "obs", "report.go"))
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				sel, ok := v.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Inc" && sel.Sel.Name != "Add") || len(v.Args) == 0 {
					return true
				}
				for _, k := range keysOf(v.Args[0]) {
					if keyPat.MatchString(k) {
						incremented[k] = fset.Position(v.Pos()).String()
					}
				}
			case *ast.BasicLit:
				// Raw key literals anywhere but the declaring file are
				// treated as potential increments: the cheap syntactic
				// over-approximation that keeps hand-spelled keys honest.
				if inDecls || v.Kind != token.STRING {
					return true
				}
				if s, err := strconv.Unquote(v.Value); err == nil && keyPat.MatchString(s) {
					incremented[s] = fset.Position(v.Pos()).String()
				}
			}
			return true
		})
	}

	if len(incremented) == 0 {
		t.Fatal("found no chaos.*/resilience.* increment sites in the tree; the walk is broken")
	}
	for key, site := range incremented {
		if !reconciledCounters[key] {
			t.Errorf("counter %q (incremented at %s) is missing from reconciledCounters: add it to Reconcile's invariant set (or waive it there with a reason)", key, site)
		}
	}

	// Reverse direction: every entry in the invariant set must be a
	// counter this package still declares.
	declared := map[string]bool{}
	for _, vals := range direct {
		for _, s := range vals {
			if keyPat.MatchString(s) {
				declared[s] = true
			}
		}
	}
	for key := range reconciledCounters {
		if !declared[key] {
			t.Errorf("reconciledCounters entry %q is not declared by any counter constant; remove the stale entry", key)
		}
	}
}

// moduleRoot walks up from the test's working directory to the
// directory holding go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
