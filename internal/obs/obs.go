// Package obs is the zero-dependency observability layer for the
// detection experiments: atomic DRAM-command counters, power-of-two
// timing histograms, stage accounting, and a JSON-serializable
// per-experiment report.
//
// The substrate (package dram), the test host (package memctl) and
// the experiment runner (package exp) are instrumented against the
// Recorder interface. Instrumentation is strictly passive — it never
// touches simulation state — so results are bit-identical whether a
// Recorder is attached or not, and the disabled path costs one nil
// check per event. DRAMScope-style accounting of issued memory
// commands is what makes an experiment auditable: the report a run
// emits reconciles its command totals against the test-pass counts
// the paper reasons about.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Cmd enumerates the DRAM-command classes the substrate accounts
// for.
type Cmd uint8

const (
	// CmdActivate counts row activations: every row-granularity
	// write or read opens (activates) the row once in this host
	// model, so activates always reconcile to writes + reads.
	CmdActivate Cmd = iota
	// CmdWrite counts full-row write-backs through the controller.
	CmdWrite
	// CmdRead counts full-row read-outs.
	CmdRead
	// CmdRefresh counts auto-refresh epochs, per chip.
	CmdRefresh

	numCmds
)

// String returns the report key of the command class.
func (c Cmd) String() string {
	switch c {
	case CmdActivate:
		return "activate"
	case CmdWrite:
		return "write"
	case CmdRead:
		return "read"
	case CmdRefresh:
		return "refresh"
	default:
		return "unknown"
	}
}

// Recorder receives observability events from the instrumented
// substrate. All methods must be safe for concurrent use: the test
// host shards per-chip work across a worker pool and experiments run
// whole modules in parallel. Implementations must be passive —
// recording an event must not influence any simulation result.
//
// Call sites hold a possibly-nil Recorder and skip the call when it
// is nil; the concrete *Collector additionally tolerates nil
// receivers, so a typed-nil Recorder is also safe.
type Recorder interface {
	// Command accounts n DRAM commands of class c.
	Command(c Cmd, n uint64)
	// Add increments the named free-form counter by n (e.g.
	// "host.passes", "host.rows_tested").
	Add(name string, n uint64)
	// ObserveNs records one duration observation, in nanoseconds,
	// into the named timing series (e.g. "host.pass").
	ObserveNs(name string, ns int64)
}

// Collector is the standard Recorder: lock-free atomic command
// counters, mutex-guarded named counters and histograms (these are
// off the per-row hot path), and ordered stage accounting. The zero
// value is not usable; construct with NewCollector. All methods are
// safe on a nil *Collector, so an optional collector can be threaded
// without nil checks at every call site.
type Collector struct {
	start time.Time
	cmds  [numCmds]atomic.Uint64

	mu       sync.Mutex
	counters map[string]uint64     //parbor:guardedby mu
	hists    map[string]*Histogram //parbor:guardedby mu
	stages   []*stageRecord        //parbor:guardedby mu
	config   map[string]any        //parbor:guardedby mu
	figures  map[string]float64    //parbor:guardedby mu
}

type stageRecord struct {
	name    string
	started time.Time
	wall    time.Duration
	before  [numCmds]uint64
	after   [numCmds]uint64
	closed  bool
}

// NewCollector returns an empty Collector whose wall clock starts
// now.
func NewCollector() *Collector {
	return &Collector{
		start:    time.Now(),
		counters: make(map[string]uint64),
		hists:    make(map[string]*Histogram),
		config:   make(map[string]any),
		figures:  make(map[string]float64),
	}
}

// Command implements Recorder.
func (c *Collector) Command(cmd Cmd, n uint64) {
	if c == nil || cmd >= numCmds {
		return
	}
	c.cmds[cmd].Add(n)
}

// Add implements Recorder.
func (c *Collector) Add(name string, n uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.counters[name] += n
	c.mu.Unlock()
}

// ObserveNs implements Recorder.
func (c *Collector) ObserveNs(name string, ns int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	h := c.hists[name]
	if h == nil {
		h = NewHistogram()
		c.hists[name] = h
	}
	c.mu.Unlock()
	h.Observe(ns)
}

// Counter returns the current value of a named counter.
func (c *Collector) Counter(name string) uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters[name]
}

// Commands returns a snapshot of the DRAM-command totals. On a nil
// collector the snapshot is empty but non-nil, so report writers can
// range and serialize it unconditionally.
func (c *Collector) Commands() map[string]uint64 {
	if c == nil {
		return make(map[string]uint64, numCmds)
	}
	out := make(map[string]uint64, numCmds)
	for i := Cmd(0); i < numCmds; i++ {
		out[i.String()] = c.cmds[i].Load()
	}
	return out
}

// CommandCount returns the total for one command class.
func (c *Collector) CommandCount(cmd Cmd) uint64 {
	if c == nil || cmd >= numCmds {
		return 0
	}
	return c.cmds[cmd].Load()
}

// StartStage opens a named stage and returns a closer that records
// its wall time and the DRAM commands issued while it ran. Stages
// are meant for the serial phases of a run (discovery, recursion,
// full-chip test, one experiment of a sweep); overlapping stages
// each report every command issued during their own window.
func (c *Collector) StartStage(name string) (stop func()) {
	if c == nil {
		return func() {}
	}
	s := &stageRecord{name: name, started: time.Now()}
	for i := range s.before {
		s.before[i] = c.cmds[i].Load()
	}
	c.mu.Lock()
	c.stages = append(c.stages, s)
	c.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			defer c.mu.Unlock()
			s.wall = time.Since(s.started)
			for i := range s.after {
				s.after[i] = c.cmds[i].Load()
			}
			s.closed = true
		})
	}
}

// SetConfig stores one key of the run configuration echoed into the
// report.
func (c *Collector) SetConfig(key string, value any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.config[key] = value
	c.mu.Unlock()
}

// SetFigure stores one derived result figure (a headline number of
// the run: total tests, failure counts, mean speedup, ...).
func (c *Collector) SetFigure(name string, value float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.figures[name] = value
	c.mu.Unlock()
}
