package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// ReportSchema identifies the report layout. Bump on incompatible
// changes; readers reject schemas they do not know.
const ReportSchema = "parbor/report/v1"

// Resilience counter names. They are defined here, next to the report
// schema and the Reconcile invariant that ties them together, because
// both their producers (internal/chaos injects the faults,
// internal/onlinetest runs the policies) report through this package
// and must agree on spelling.
const (
	// CounterChaosWriteFaults / CounterChaosReadFaults / CounterChaosStalls
	// count controller-side faults the chaos plane injected.
	CounterChaosWriteFaults = "chaos.write_faults"
	CounterChaosReadFaults  = "chaos.read_faults"
	CounterChaosStalls      = "chaos.stalls"
	// CounterRetries counts retry attempts consumed by transient
	// faults; CounterQuarantinedChips chips taken out of service;
	// CounterDegradedEpochs epochs that ran with partial coverage;
	// CounterUnrestoredBits / CounterUnrestoredRows live data that did
	// not survive an epoch (verified bit mismatches, and rows whose
	// restore never completed).
	CounterRetries          = "resilience.retries"
	CounterQuarantinedChips = "resilience.quarantined_chips"
	CounterDegradedEpochs   = "resilience.degraded_epochs"
	CounterUnrestoredBits   = "resilience.unrestored_bits"
	CounterUnrestoredRows   = "resilience.unrestored_rows"
	// CounterInheritedQuarantine counts chips that were already
	// quarantined when a scheduler resumed from a checkpoint: the
	// faults that caused the quarantine were counted by a previous
	// incarnation's report, but the coverage symptoms (degraded
	// epochs) continue in this one.
	CounterInheritedQuarantine = "resilience.inherited_quarantine"
	// CounterLogDegraded counts episodes where a persistent
	// failure of the failure-event log flipped the fleet daemon into
	// log-degraded mode (detection continues, events are buffered);
	// CounterLogEventsDropped counts events lost after the degraded
	// buffer filled. A dropped event implies at least one degradation
	// episode — Reconcile enforces it.
	CounterLogDegraded      = "resilience.log_degraded"
	CounterLogEventsDropped = "resilience.log_events_dropped"
)

// reconciledCounters is Reconcile's invariant set: every chaos.* and
// resilience.* counter its cross-checks account for, either read by a
// check or explicitly waived with a reason (CounterChaosStalls — a
// stall delays, it does not fail, so it implies no symptom to check).
// TestReconcileCoversAllCounterKeys walks the whole tree and fails if
// any chaos.* / resilience.* key is incremented anywhere without
// appearing here, so a new counter cannot silently escape
// reconciliation: adding one forces a decision about what invariant
// ties it to the rest of the report.
var reconciledCounters = map[string]bool{
	CounterChaosWriteFaults:    true,
	CounterChaosReadFaults:     true,
	CounterChaosStalls:         true, // waived: delays, never fails
	CounterRetries:             true,
	CounterQuarantinedChips:    true,
	CounterDegradedEpochs:      true,
	CounterUnrestoredBits:      true,
	CounterUnrestoredRows:      true,
	CounterInheritedQuarantine: true,
	CounterLogDegraded:         true,
	CounterLogEventsDropped:    true,
}

// Report is the structured, JSON-serializable record of one
// experiment run: what was configured, what each stage cost, how
// many DRAM commands the substrate issued, and the derived headline
// figures. DESIGN.md documents the schema field by field.
type Report struct {
	// Schema is always ReportSchema for reports this package writes.
	Schema string `json:"schema"`
	// Tool names the producing command ("parbor", "paperrepro",
	// "dcref") or test harness.
	Tool string `json:"tool"`
	// Config echoes the run parameters (vendor, rows, chips, seed,
	// ...) so a report is self-describing.
	Config map[string]any `json:"config,omitempty"`
	// WallMs is the total wall-clock time from collector creation to
	// snapshot, in milliseconds.
	WallMs float64 `json:"wall_ms"`
	// Commands holds the DRAM-command totals, keyed by Cmd.String()
	// ("activate", "write", "read", "refresh").
	Commands map[string]uint64 `json:"commands"`
	// Counters holds the free-form counters ("host.passes", ...).
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Stages lists the run's serial phases in start order with their
	// wall time and per-stage DRAM-command deltas.
	Stages []StageReport `json:"stages,omitempty"`
	// Timings summarizes each timing series' histogram.
	Timings map[string]TimingSummary `json:"timings,omitempty"`
	// Figures carries derived headline numbers (total tests, failure
	// counts, estimated hardware wall-clock, ...).
	Figures map[string]float64 `json:"figures,omitempty"`
}

// StageReport is one serial phase of a run.
type StageReport struct {
	Name   string  `json:"name"`
	WallMs float64 `json:"wall_ms"`
	// Commands is the DRAM-command delta issued while the stage ran.
	Commands map[string]uint64 `json:"commands,omitempty"`
}

// TimingSummary condenses one timing series.
type TimingSummary struct {
	Count   uint64  `json:"count"`
	TotalMs float64 `json:"total_ms"`
	MeanUs  float64 `json:"mean_us"`
	MinUs   float64 `json:"min_us"`
	P50Us   float64 `json:"p50_us"`
	P90Us   float64 `json:"p90_us"`
	P99Us   float64 `json:"p99_us"`
	MaxUs   float64 `json:"max_us"`
}

// Snapshot freezes the collector into a Report. Open stages are
// reported with their elapsed time so far.
func (c *Collector) Snapshot(tool string) *Report {
	if c == nil {
		return &Report{
			Schema:   ReportSchema,
			Tool:     tool,
			Commands: make(map[string]uint64, numCmds),
			Config:   map[string]any{},
		}
	}
	r := &Report{
		Schema:   ReportSchema,
		Tool:     tool,
		Commands: c.Commands(),
	}
	r.WallMs = float64(time.Since(c.start)) / 1e6
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.config) > 0 {
		r.Config = make(map[string]any, len(c.config))
		for k, v := range c.config {
			r.Config[k] = v
		}
	}
	if len(c.counters) > 0 {
		r.Counters = make(map[string]uint64, len(c.counters))
		for k, v := range c.counters {
			r.Counters[k] = v
		}
	}
	if len(c.figures) > 0 {
		r.Figures = make(map[string]float64, len(c.figures))
		for k, v := range c.figures {
			r.Figures[k] = v
		}
	}
	for _, s := range c.stages {
		sr := StageReport{Name: s.name}
		after := s.after
		if !s.closed {
			sr.WallMs = float64(time.Since(s.started)) / 1e6
			for i := range after {
				after[i] = c.cmds[i].Load()
			}
		} else {
			sr.WallMs = float64(s.wall) / 1e6
		}
		delta := make(map[string]uint64, numCmds)
		for i := Cmd(0); i < numCmds; i++ {
			if d := after[i] - s.before[i]; d > 0 {
				delta[i.String()] = d
			}
		}
		if len(delta) > 0 {
			sr.Commands = delta
		}
		r.Stages = append(r.Stages, sr)
	}
	if len(c.hists) > 0 {
		r.Timings = make(map[string]TimingSummary, len(c.hists))
		names := make([]string, 0, len(c.hists))
		for name := range c.hists {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			r.Timings[name] = c.hists[name].Summary()
		}
	}
	return r
}

// Reconcile checks the report's internal accounting invariants: in
// the row-granularity host model every write and every read activates
// its row exactly once, so activates must equal writes + reads. A
// report that fails to reconcile indicates an instrumentation gap —
// some path issued commands without accounting them symmetrically.
func (r *Report) Reconcile() error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("obs: unknown report schema %q", r.Schema)
	}
	act := r.Commands[CmdActivate.String()]
	rw := r.Commands[CmdWrite.String()] + r.Commands[CmdRead.String()]
	if act != rw {
		return fmt.Errorf("obs: %d activates do not reconcile with %d writes + reads", act, rw)
	}
	// Resilience cross-check: the retry/quarantine/degradation
	// machinery only ever acts on injected controller faults, so a run
	// with no chaos faults must report none of its symptoms. (Stalls
	// are excluded: a stall delays, it does not fail.)
	faults := r.Counters[CounterChaosWriteFaults] + r.Counters[CounterChaosReadFaults]
	if faults == 0 {
		for _, name := range []string{
			CounterRetries,
			CounterQuarantinedChips,
			CounterUnrestoredBits,
			CounterUnrestoredRows,
		} {
			if n := r.Counters[name]; n != 0 {
				return fmt.Errorf("obs: %d %s with zero chaos faults", n, name)
			}
		}
		// Degraded epochs are the one symptom that legitimately
		// outlives its cause: a scheduler resumed with chips already
		// quarantined keeps skipping their rows, so this incarnation
		// reports partial coverage even though the faults behind the
		// quarantine were counted by the incarnation that took them.
		if n := r.Counters[CounterDegradedEpochs]; n != 0 && r.Counters[CounterInheritedQuarantine] == 0 {
			return fmt.Errorf("obs: %d %s with zero chaos faults", n, CounterDegradedEpochs)
		}
	}
	// Log-degradation cross-check: events are only ever dropped while
	// the log is degraded, so drops without a recorded degradation
	// episode mean the bookkeeping lost an episode.
	if n := r.Counters[CounterLogEventsDropped]; n > 0 && r.Counters[CounterLogDegraded] == 0 {
		return fmt.Errorf("obs: %d %s with zero %s episodes", n, CounterLogEventsDropped, CounterLogDegraded)
	}
	return nil
}

// WriteFile serializes the report as indented JSON to path.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshaling report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: writing report: %w", err)
	}
	return nil
}

// ReadReportFile loads and validates a report written by WriteFile.
func ReadReportFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: reading report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("obs: parsing report: %w", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("obs: unknown report schema %q", r.Schema)
	}
	return &r, nil
}
