package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts the pprof hooks the CLIs expose: a CPU
// profile written to cpuPath (when non-empty) for the duration of
// the run, and a heap profile written to memPath (when non-empty) at
// stop time. The returned stop function must be called exactly once
// — typically deferred — and reports any error from finalizing the
// profiles.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: starting cpu profile: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("obs: closing cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("obs: creating mem profile: %w", err)
				}
				return firstErr
			}
			runtime.GC() // get up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("obs: writing mem profile: %w", err)
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("obs: closing mem profile: %w", err)
			}
		}
		return firstErr
	}, nil
}
