// Package coupling models the process-variation-driven sensitivity of
// DRAM cells to bitline coupling, the root cause of data-dependent
// failures (PARBOR paper, Sections 2.3 and 4.1).
//
// Each cell is either immune (the overwhelming majority) or a
// potential victim of one of three classes:
//
//   - StrongLeft: fails when the charge of its physical left neighbor
//     alone is opposite to its own (Figure 6a).
//   - StrongRight: the symmetric case for the right neighbor.
//   - Weak: fails only when BOTH neighbors hold the opposite charge
//     (Figure 6b) — the worst-case pattern.
//
// A victim's failure additionally requires that the cell's charge has
// decayed enough, i.e. that the time since the last write/refresh
// exceeds the cell's retention threshold under worst-case coupling.
// The paper's detection experiments run at a 4 s refresh interval
// precisely so that essentially all coupling-vulnerable cells are
// past their threshold.
//
// Beyond the immediate neighbors, bitline coupling has a tail: the
// aggregate interference from farther cells on the same bitline group
// shifts a marginal victim over its failure threshold. We model this
// with a per-victim Surround level s: the s physically-nearest cells
// beyond the immediate neighbors (on each side) must also hold the
// opposite charge for the victim to fail. Victims with large s fail
// only under solid worst-case surroundings — which neighbor-aware
// patterns produce by construction and random data essentially never
// does (the probability halves per surrounding cell). This is the
// physical mechanism behind Figure 12/13: equal-budget random-pattern
// tests systematically miss the high-surround victim population.
package coupling

import (
	"fmt"
	"math"

	"parbor/internal/rng"
)

// Class is the coupling-sensitivity class of a vulnerable cell.
type Class uint8

// Victim classes. The strong classes exist because of process
// variation (the paper's first key idea): a strongly coupled cell
// reveals the location of ONE neighbor with a linear test.
const (
	StrongLeft Class = iota + 1
	StrongRight
	Weak
)

// String returns a human-readable class name.
func (c Class) String() string {
	switch c {
	case StrongLeft:
		return "strong-left"
	case StrongRight:
		return "strong-right"
	case Weak:
		return "weak"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Victim describes one coupling-vulnerable cell within a row.
type Victim struct {
	// Col is the system bit address of the cell within its row.
	Col int32
	// Class is the coupling-sensitivity class.
	Class Class
	// RetentionMs is the minimum time (in milliseconds) the cell must
	// sit unrefreshed, under worst-case neighbor content, before the
	// coupling interference flips it.
	RetentionMs float32
	// Surround is the number of additional physically-nearest cells
	// on each side (beyond the immediate neighbors) that must hold
	// the opposite charge for the failure to manifest. Zero means the
	// immediate neighbors alone decide.
	Surround uint8
}

// Config parameterizes the process-variation model.
type Config struct {
	// VulnerableRate is the probability that a cell is coupling
	// vulnerable at all. Real chips show ~1e-6..1e-5 at nominal
	// refresh; the simulator default is larger so that scaled-down
	// arrays still contain statistically useful victim populations.
	VulnerableRate float64

	// StrongLeftFrac and StrongRightFrac are the fractions of
	// vulnerable cells strongly coupled to one side; the remainder is
	// weakly coupled. Their sum must be <= 1.
	StrongLeftFrac  float64
	StrongRightFrac float64

	// RetentionMinMs and RetentionMaxMs bound the log-uniform
	// distribution of victim retention thresholds. The defaults span
	// 100 ms .. 3000 ms: all victims manifest at the paper's 4 s test
	// interval, none at the nominal 64 ms refresh, and a subset in
	// between — the subset DC-REF exploits.
	RetentionMinMs float64
	RetentionMaxMs float64

	// SurroundWeights is the distribution of the per-victim Surround
	// level: SurroundWeights[s] is the relative weight of level s.
	// The weights need not sum to one. An empty slice means all
	// victims are level 0.
	SurroundWeights []float64
}

// DefaultConfig returns the model parameters used by the paper
// reproduction experiments.
func DefaultConfig() Config {
	return Config{
		VulnerableRate:  1e-3,
		StrongLeftFrac:  0.30,
		StrongRightFrac: 0.30,
		RetentionMinMs:  100,
		RetentionMaxMs:  3000,
		// Calibrated so that equal-budget random-pattern testing finds
		// roughly 75-80% of what neighbor-aware testing finds
		// (Figures 12 and 13). Coupling decays steeply with bitline
		// distance, so the tail is capped at five extra cells per
		// side; the deeper levels are essentially unreachable by
		// random data (probability halves per surrounding cell).
		SurroundWeights: []float64{
			0: 0.55,
			2: 0.15,
			3: 0.15,
			5: 0.15,
		},
	}
}

// Validate reports whether the configuration is self-consistent.
func (c Config) Validate() error {
	if c.VulnerableRate < 0 || c.VulnerableRate > 1 {
		return fmt.Errorf("coupling: VulnerableRate %v out of [0,1]", c.VulnerableRate)
	}
	if c.StrongLeftFrac < 0 || c.StrongRightFrac < 0 || c.StrongLeftFrac+c.StrongRightFrac > 1 {
		return fmt.Errorf("coupling: strong fractions (%v, %v) invalid", c.StrongLeftFrac, c.StrongRightFrac)
	}
	if c.RetentionMinMs <= 0 || c.RetentionMaxMs < c.RetentionMinMs {
		return fmt.Errorf("coupling: retention bounds (%v, %v) invalid", c.RetentionMinMs, c.RetentionMaxMs)
	}
	sum := 0.0
	for i, w := range c.SurroundWeights {
		if w < 0 {
			return fmt.Errorf("coupling: SurroundWeights[%d] = %v is negative", i, w)
		}
		sum += w
	}
	if len(c.SurroundWeights) > 0 && sum <= 0 {
		return fmt.Errorf("coupling: SurroundWeights sum to zero")
	}
	return nil
}

// RowVictims draws the victim population of one row of cols cells
// from src. The draw is a Bernoulli process over columns implemented
// with geometric gap sampling, so the cost is proportional to the
// number of victims rather than the number of cells.
func (c Config) RowVictims(src *rng.Source, cols int) []Victim {
	if c.VulnerableRate <= 0 {
		return nil
	}
	var out []Victim
	logQ := math.Log1p(-c.VulnerableRate)
	col := -1
	for {
		// Geometric gap: number of immune cells skipped before the
		// next vulnerable one.
		u := src.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		gap := int(math.Log(u) / logQ)
		col += 1 + gap
		if col >= cols {
			return out
		}
		out = append(out, Victim{
			Col:         int32(col),
			Class:       c.drawClass(src),
			RetentionMs: float32(c.drawRetentionMs(src)),
			Surround:    c.drawSurround(src),
		})
	}
}

func (c Config) drawClass(src *rng.Source) Class {
	u := src.Float64()
	switch {
	case u < c.StrongLeftFrac:
		return StrongLeft
	case u < c.StrongLeftFrac+c.StrongRightFrac:
		return StrongRight
	default:
		return Weak
	}
}

func (c Config) drawSurround(src *rng.Source) uint8 {
	if len(c.SurroundWeights) == 0 {
		return 0
	}
	total := 0.0
	for _, w := range c.SurroundWeights {
		total += w
	}
	u := src.Float64() * total
	for s, w := range c.SurroundWeights {
		u -= w
		if u < 0 {
			return uint8(s)
		}
	}
	return uint8(len(c.SurroundWeights) - 1)
}

func (c Config) drawRetentionMs(src *rng.Source) float64 {
	lo, hi := math.Log(c.RetentionMinMs), math.Log(c.RetentionMaxMs)
	return math.Exp(lo + (hi-lo)*src.Float64())
}
