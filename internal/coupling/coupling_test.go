package coupling

import (
	"math"
	"testing"
	"testing/quick"

	"parbor/internal/rng"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig().Validate() = %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := DefaultConfig()
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "negative rate", mutate: func(c *Config) { c.VulnerableRate = -0.1 }},
		{name: "rate above one", mutate: func(c *Config) { c.VulnerableRate = 1.5 }},
		{name: "strong fractions above one", mutate: func(c *Config) { c.StrongLeftFrac, c.StrongRightFrac = 0.7, 0.7 }},
		{name: "negative strong fraction", mutate: func(c *Config) { c.StrongLeftFrac = -0.1 }},
		{name: "zero retention min", mutate: func(c *Config) { c.RetentionMinMs = 0 }},
		{name: "inverted retention bounds", mutate: func(c *Config) { c.RetentionMinMs, c.RetentionMaxMs = 10, 5 }},
		{name: "negative surround weight", mutate: func(c *Config) { c.SurroundWeights = []float64{-1} }},
		{name: "all-zero surround weights", mutate: func(c *Config) { c.SurroundWeights = []float64{0, 0} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestRowVictimsDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VulnerableRate = 0.01
	a := cfg.RowVictims(rng.New(7).Split("row"), 8192)
	b := cfg.RowVictims(rng.New(7).Split("row"), 8192)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("victim %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRowVictimsRate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VulnerableRate = 0.01
	src := rng.New(42)
	const (
		rows = 200
		cols = 8192
	)
	total := 0
	for r := 0; r < rows; r++ {
		total += len(cfg.RowVictims(src.SplitN("row", uint64(r)), cols))
	}
	want := cfg.VulnerableRate * rows * cols
	if math.Abs(float64(total)-want) > 0.15*want {
		t.Errorf("total victims = %d, want about %.0f", total, want)
	}
}

func TestRowVictimsClassMix(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VulnerableRate = 0.05
	src := rng.New(3)
	counts := map[Class]int{}
	total := 0
	for r := 0; r < 100; r++ {
		for _, v := range cfg.RowVictims(src.SplitN("row", uint64(r)), 8192) {
			counts[v.Class]++
			total++
		}
	}
	if total == 0 {
		t.Fatal("no victims drawn")
	}
	for _, tc := range []struct {
		class    Class
		wantFrac float64
	}{
		{StrongLeft, cfg.StrongLeftFrac},
		{StrongRight, cfg.StrongRightFrac},
		{Weak, 1 - cfg.StrongLeftFrac - cfg.StrongRightFrac},
	} {
		got := float64(counts[tc.class]) / float64(total)
		if math.Abs(got-tc.wantFrac) > 0.05 {
			t.Errorf("class %v fraction = %.3f, want about %.3f", tc.class, got, tc.wantFrac)
		}
	}
}

func TestRowVictimsProperties(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VulnerableRate = 0.02
	f := func(seed uint64) bool {
		const cols = 4096
		prev := int32(-1)
		for _, v := range cfg.RowVictims(rng.New(seed), cols) {
			if v.Col <= prev || v.Col >= cols {
				return false // must be strictly increasing and in range
			}
			prev = v.Col
			if v.RetentionMs < float32(cfg.RetentionMinMs) || v.RetentionMs > float32(cfg.RetentionMaxMs) {
				return false
			}
			if int(v.Surround) >= len(cfg.SurroundWeights) {
				return false
			}
			switch v.Class {
			case StrongLeft, StrongRight, Weak:
			default:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowVictimsZeroRate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VulnerableRate = 0
	if got := cfg.RowVictims(rng.New(1), 8192); got != nil {
		t.Errorf("RowVictims with zero rate = %v, want nil", got)
	}
}

func TestSurroundDistribution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VulnerableRate = 0.05
	cfg.SurroundWeights = []float64{0.5, 0.5}
	src := rng.New(11)
	counts := [2]int{}
	total := 0
	for r := 0; r < 200; r++ {
		for _, v := range cfg.RowVictims(src.SplitN("row", uint64(r)), 8192) {
			counts[v.Surround]++
			total++
		}
	}
	frac := float64(counts[0]) / float64(total)
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("surround level 0 fraction = %.3f, want about 0.5", frac)
	}
}

func TestClassString(t *testing.T) {
	tests := []struct {
		class Class
		want  string
	}{
		{class: StrongLeft, want: "strong-left"},
		{class: StrongRight, want: "strong-right"},
		{class: Weak, want: "weak"},
		{class: Class(9), want: "Class(9)"},
	}
	for _, tt := range tests {
		if got := tt.class.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.class, got, tt.want)
		}
	}
}
