// Package hotalloc defines an analyzer that turns the repository's
// zero-allocation hot-loop guarantee (BenchmarkPassHotLoop's 0
// allocs/op, TestPassZeroAllocsSteadyState) from a point measurement
// into a structural one. In functions annotated //parbor:hotpath it
// flags the allocating constructs the PR 4 rework outlawed:
//
//   - function literals (captured variables escape to the heap),
//   - map literals and make(map[...]...),
//   - fmt.Sprint/Sprintf/Sprintln (always allocate their result;
//     fmt.Errorf on cold error-return paths is deliberately allowed),
//   - explicit conversions of concrete values to interface types,
//   - append inside a loop to a slice declared in the function
//     without preallocated capacity.
//
// It also polices the mask-plane construction boundary introduced
// with the word-wide read path: //parbor:planebuild marks
// once-per-materialization plane construction, and a //parbor:hotpath
// function calling one (re-building planes per read) is a diagnostic
// unless the caller is the //parbor:planecache seam, which caches the
// result so the build amortizes to once per row. A function annotated
// both hotpath and planebuild is contradictory and flagged outright.
//
// The benchmark gate still catches what escapes analysis; the
// analyzer catches it at review time and names the construct.
package hotalloc

import (
	"go/ast"
	"go/constant"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"parbor/internal/analyzers/parbordir"
	"parbor/internal/analyzers/scope"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name:     "hotalloc",
	Doc:      "forbid allocating constructs in //parbor:hotpath functions",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var fmtAllocators = map[string]bool{
	"Sprint": true, "Sprintf": true, "Sprintln": true,
}

func run(pass *analysis.Pass) (any, error) {
	if scope.InternalPkg(pass.Pkg.Path()) == "" {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	// First pass: resolve every //parbor:planebuild function of the
	// package, so hot-path call sites can be checked against the set.
	builders := make(map[types.Object]bool)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if parbordir.FuncHas(decl, parbordir.Planebuild) {
			builders[pass.TypesInfo.ObjectOf(decl.Name)] = true
		}
	})
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || scope.InTestFile(pass, decl.Pos()) || !parbordir.FuncHas(decl, parbordir.Hotpath) {
			return
		}
		if parbordir.FuncHas(decl, parbordir.Planebuild) {
			pass.Reportf(decl.Pos(), "conflicting //parbor:hotpath and //parbor:planebuild on %s: plane construction runs once per materialization and cannot also be the per-read hot loop", decl.Name.Name)
			return // the directives contradict; further checks would guess which one governs
		}
		checkHotFunc(pass, decl)
		if !parbordir.FuncHas(decl, parbordir.Planecache) {
			checkBuilderCalls(pass, decl, builders)
		}
	})
	return nil, nil
}

// checkBuilderCalls flags static calls from a hot function to
// //parbor:planebuild functions of the same package: rebuilding mask
// planes per read forfeits the once-per-materialization amortization
// the read path's speed rests on.
func checkBuilderCalls(pass *analysis.Pass, decl *ast.FuncDecl, builders map[types.Object]bool) {
	if len(builders) == 0 {
		return
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := typeutil.StaticCallee(pass.TypesInfo, call)
		if fn == nil || !builders[types.Object(fn)] {
			return true
		}
		pass.Reportf(call.Pos(), "//parbor:hotpath function %s calls //parbor:planebuild function %s: planes are built once at row materialization; only a //parbor:planecache seam may reach plane construction from the read path", decl.Name.Name, fn.Name())
		return true
	})
}

func checkHotFunc(pass *analysis.Pass, decl *ast.FuncDecl) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in //parbor:hotpath function %s: captured variables escape to the heap; pre-bind a method value at construction instead", decl.Name.Name)
			return false // its body is cold until invoked; one report suffices
		case *ast.CompositeLit:
			if _, ok := pass.TypesInfo.TypeOf(n).Underlying().(*types.Map); ok {
				pass.Reportf(n.Pos(), "map literal in //parbor:hotpath function %s allocates; hoist it to setup or reuse host scratch", decl.Name.Name)
			}
		case *ast.CallExpr:
			checkHotCall(pass, decl, n)
		case *ast.ForStmt:
			checkLoopAppends(pass, decl, n.Body)
		case *ast.RangeStmt:
			checkLoopAppends(pass, decl, n.Body)
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, decl *ast.FuncDecl, call *ast.CallExpr) {
	// Explicit conversion to an interface type.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if types.IsInterface(tv.Type) && !types.IsInterface(pass.TypesInfo.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "conversion to interface type %s in //parbor:hotpath function %s boxes its operand on the heap", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), decl.Name.Name)
		}
		return
	}
	// make(map[...]...).
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin); ok && b.Name() == "make" && len(call.Args) >= 1 {
			if _, ok := pass.TypesInfo.TypeOf(call.Args[0]).Underlying().(*types.Map); ok {
				pass.Reportf(call.Pos(), "make(map) in //parbor:hotpath function %s allocates; hoist it to setup and clear() per pass", decl.Name.Name)
			}
		}
		return
	}
	// fmt.Sprint* family.
	if fn := typeutil.StaticCallee(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil {
		if fn.Pkg().Path() == "fmt" && fmtAllocators[fn.Name()] {
			pass.Reportf(call.Pos(), "fmt.%s in //parbor:hotpath function %s allocates its result (and boxes its arguments); format off the hot path", fn.Name(), decl.Name.Name)
		}
	}
}

// checkLoopAppends flags `s = append(s, ...)` inside a loop when s is
// a local of the hot function declared without preallocated capacity:
// steady-state growth reallocations are exactly what the pass loop
// must not do.
func checkLoopAppends(pass *analysis.Pass, decl *ast.FuncDecl, loopBody *ast.BlockStmt) {
	ast.Inspect(loopBody, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		target, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok {
			return true
		} else if b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "append" {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(target)
		if obj == nil || obj.Pos() < decl.Pos() || obj.Pos() > decl.End() {
			return true // parameter, field shorthand, or package-level: caller's contract
		}
		if declaredWithoutCapacity(pass, decl, obj) {
			pass.Reportf(as.Pos(), "append to %s inside a loop of //parbor:hotpath function %s, but %s is declared without capacity; preallocate (make with cap, or reuse host scratch via [:0])", target.Name, decl.Name.Name, target.Name)
		}
		return true
	})
}

// declaredWithoutCapacity finds obj's declaration inside decl and
// reports whether it pins no capacity: `var s []T`, `s := []T{}`, or
// `s := make([]T, 0)`. Declarations from calls, slicings (scratch[:0])
// or non-empty literals are treated as preallocated.
func declaredWithoutCapacity(pass *analysis.Pass, decl *ast.FuncDecl, obj types.Object) bool {
	bare := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec: // var s []T  /  var s = <expr>
			for i, name := range n.Names {
				if pass.TypesInfo.ObjectOf(name) != obj {
					continue
				}
				if len(n.Values) == 0 {
					bare = true
				} else if i < len(n.Values) {
					bare = zeroCapExpr(pass, n.Values[i])
				}
			}
		case *ast.AssignStmt:
			if n.Tok.String() != ":=" {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || pass.TypesInfo.ObjectOf(id) != obj {
					continue
				}
				if i < len(n.Rhs) {
					bare = zeroCapExpr(pass, n.Rhs[i])
				}
			}
		}
		return true
	})
	return bare
}

// zeroCapExpr reports whether expr pins no slice capacity: an empty
// composite literal, a nil literal, or make(..., 0) without a cap
// argument.
func zeroCapExpr(pass *analysis.Pass, expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.Ident:
		_, isNil := pass.TypesInfo.ObjectOf(e).(*types.Nil)
		return isNil
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
		if !ok || b.Name() != "make" || len(e.Args) != 2 {
			return false // make with an explicit cap (3 args) preallocates
		}
		tv, ok := pass.TypesInfo.Types[e.Args[1]]
		return ok && tv.Value != nil && constant.Sign(tv.Value) == 0
	}
	return false
}
