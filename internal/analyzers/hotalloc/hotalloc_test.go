package hotalloc_test

import (
	"testing"

	"parbor/internal/analyzers/atest"
)

func TestHotalloc(t *testing.T) {
	atest.Run(t, "../testdata/hotalloc")
}
