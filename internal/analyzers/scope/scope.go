// Package scope decides which packages and files each parborvet
// analyzer applies to, so the per-analyzer enforcement sets live in
// one place.
package scope

import (
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// InternalPkg returns the first path element after the last
// "internal/" segment of an import path ("parbor/internal/dram" ->
// "dram"), or "" when the path has no internal segment. Matching on
// the tail rather than the full path lets the analyzers apply
// identically to this module and to the self-test fixture modules.
func InternalPkg(path string) string {
	i := strings.LastIndex(path, "internal/")
	if i < 0 {
		return ""
	}
	tail := path[i+len("internal/"):]
	if j := strings.IndexByte(tail, '/'); j >= 0 {
		tail = tail[:j]
	}
	return strings.TrimSuffix(tail, "_test")
}

// Simulation is the set of packages whose results feed published
// figures: everything in them must be a pure function of the
// experiment seed. simdeterminism enforces over this set. To add a
// newly created simulation package to the enforced set, add its name
// here (see DESIGN.md section 10).
var Simulation = map[string]bool{
	"bloom": true, "core": true, "coupling": true, "dram": true,
	"faults": true, "march": true, "memctl": true, "onlinetest": true,
	"patterns": true, "refresh": true, "repair": true, "retention": true,
	"rng": true, "scramble": true, "sim": true, "testtime": true,
}

// Storage is the set of packages that own durable on-disk state.
// Inside them the faultfs analyzer requires every file mutation to go
// through the parbor/internal/faultfs seam, so the crash sweep and
// disk-chaos soak exercise every write path the daemon has.
var Storage = map[string]bool{
	"checkpoint": true, "fleet": true, "fleetlog": true,
}

// CmdPkg returns the first path element after the last "cmd/" segment
// of an import path ("parbor/cmd/parbord" -> "parbord"), or "" when
// the path has no cmd segment. The tail match mirrors InternalPkg so
// the fixture modules scope identically to the real tree.
func CmdPkg(path string) string {
	i := strings.LastIndex(path, "cmd/")
	if i < 0 {
		return ""
	}
	tail := path[i+len("cmd/"):]
	if j := strings.IndexByte(tail, '/'); j >= 0 {
		tail = tail[:j]
	}
	return strings.TrimSuffix(tail, "_test")
}

// DurableCmd is the set of commands that operate on durable state
// (checkpoints, fleet state dirs, the event log). faultfs and
// syncdrop extend their enforcement from the storage packages to
// these binaries, so a dropped Sync error or seam bypass in a CLI
// entry point is caught the same as one in the library.
var DurableCmd = map[string]bool{
	"parbor": true, "parbord": true, "parborlog": true,
}

// Durable reports whether the package owns or operates on durable
// on-disk state: the storage packages plus the durable commands.
// syncdrop enforces error-flow discipline over this set.
func Durable(path string) bool {
	return Storage[InternalPkg(path)] || DurableCmd[CmdPkg(path)]
}

// CtxThreaded is the set of packages whose exported entry points
// drive row/chip loops and must thread context.Context (ctxthread).
var CtxThreaded = map[string]bool{
	"exp": true, "memctl": true, "onlinetest": true,
}

// Obs is the observability package whose Recorder implementations
// must stay nil-safe (obsnilsafe).
func Obs(path string) bool { return InternalPkg(path) == "obs" }

// InTestFile reports whether pos lies in a _test.go file. The
// analyzers enforce library invariants; tests legitimately read the
// wall clock (deadlines) and build ad-hoc closures.
func InTestFile(pass *analysis.Pass, pos token.Pos) bool {
	f := pass.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}
