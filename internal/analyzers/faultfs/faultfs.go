// Package faultfs defines an analyzer enforcing that storage packages
// route durable file mutations through the parbor/internal/faultfs
// seam.
//
// The crash sweep and disk-chaos soak in internal/fleet prove the
// daemon survives every fault point — but only for I/O that flows
// through the seam. A direct os.OpenFile, os.WriteFile, or os.Create
// in a storage package (scope.Storage) — or in one of the durable
// command binaries (scope.DurableCmd), whose entry points create the
// same state dirs and log dirs — is a write the injector never sees:
// it cannot be torn, crashed, or broken by a test, so its failure
// handling is unproven. The analyzer flags those calls in non-test
// files.
//
// The //parbor:rawfs <justification> directive (see package parbordir)
// opts a line or function out when a direct call is genuinely safe
// (scratch data that is re-derived on loss, ...); a directive without
// a justification is itself reported.
package faultfs

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"parbor/internal/analyzers/parbordir"
	"parbor/internal/analyzers/scope"
)

// Analyzer is the faultfs pass.
var Analyzer = &analysis.Analyzer{
	Name:     "faultfs",
	Doc:      "require storage packages to open and write files through the parbor/internal/faultfs seam",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// bannedCalls are the direct os file mutations that bypass the fault
// plane. Reads are deliberately absent: the seam matters where state
// is created, and read paths are covered once the writes that feed
// them are.
var bannedCalls = map[string]bool{
	"OpenFile": true, "WriteFile": true, "Create": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !scope.Durable(pass.Pkg.Path()) {
		return nil, nil
	}
	var libFiles []*ast.File
	for _, f := range pass.Files {
		if !scope.InTestFile(pass, f.Pos()) {
			libFiles = append(libFiles, f)
		}
	}
	dir := parbordir.NewIndex(pass.Fset, libFiles)
	for _, pos := range dir.BarePositions(parbordir.Rawfs) {
		pass.Reportf(pos, "//parbor:rawfs needs a justification: state why this write cannot corrupt durable state")
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		if scope.InTestFile(pass, n.Pos()) {
			return
		}
		call := n.(*ast.CallExpr)
		fn := typeutil.StaticCallee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" || !bannedCalls[fn.Name()] {
			return
		}
		if dir.SuppressedAt(parbordir.Rawfs, call.Pos()) {
			return
		}
		pass.Reportf(call.Pos(), "os.%s on a durable path bypasses the fault plane; route through parbor/internal/faultfs or annotate the site //parbor:rawfs <why>", fn.Name())
	})
	return nil, nil
}
