package faultfs_test

import (
	"testing"

	"parbor/internal/analyzers/atest"
)

func TestFaultfs(t *testing.T) {
	atest.Run(t, "../testdata/faultfs")
}
