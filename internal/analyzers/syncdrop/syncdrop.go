// Package syncdrop defines a flow-sensitive analyzer for durable
// error flow: in the packages and commands that own on-disk state
// (scope.Durable), the error result of Sync, Close, Flush, and
// WriteFileAtomic must actually flow somewhere — a return, a sticky
// error field, a consumer — and never be discarded. A dropped Sync
// error is silent data loss: the write-ahead log believes a record
// durable that the kernel already failed to persist.
//
// Call sites are classified by syntactic context:
//
//   - Discarded outright (expression statement, `_ =`, defer, go):
//     a diagnostic, with one carve-out — the cleanup shape
//     `f.Close(); return err` on an error path, where the block
//     already returns a non-nil error and the Close is best-effort
//     resource release. A discarded Close followed in the same basic
//     block by `return nil` (or no return) gets no carve-out: the
//     success path is exactly where the error matters.
//
//   - Bound to an identifier (`err := f.Sync()`): the CFG is searched
//     forward from the binding for a reachable read of that identifier
//     — a return, an `if err != nil`, a field store, a deferred
//     closure capturing it. A rebinding before any read kills the
//     path, so overwrite-before-read drops are caught too. If no path
//     reads the value, the binding is a drop.
//
//   - Anything else (returned directly, passed as an argument,
//     compared inline, stored to a field) consumes the error by
//     construction.
//
// //parbor:droperr <why> opts a site out; the justification is
// mandatory and the bare form is itself a diagnostic.
package syncdrop

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"
	"golang.org/x/tools/go/types/typeutil"

	"parbor/internal/analyzers/parbordir"
	"parbor/internal/analyzers/scope"
)

// Analyzer is the syncdrop pass.
var Analyzer = &analysis.Analyzer{
	Name:     "syncdrop",
	Doc:      "require Sync/Close/Flush/WriteFileAtomic error results to flow to a consumer on durable paths",
	Requires: []*analysis.Analyzer{ctrlflow.Analyzer},
	Run:      run,
}

// durableCalls are the function and method names whose error result
// carries durability information.
var durableCalls = map[string]bool{
	"Sync": true, "Close": true, "Flush": true, "WriteFileAtomic": true,
}

type checker struct {
	pass *analysis.Pass
	cfgs *ctrlflow.CFGs
	dir  *parbordir.Index
}

func run(pass *analysis.Pass) (any, error) {
	if !scope.Durable(pass.Pkg.Path()) {
		return nil, nil
	}
	var libFiles []*ast.File
	for _, f := range pass.Files {
		if !scope.InTestFile(pass, f.Pos()) {
			libFiles = append(libFiles, f)
		}
	}
	c := &checker{
		pass: pass,
		cfgs: pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs),
		dir:  parbordir.NewIndex(pass.Fset, libFiles),
	}
	for _, pos := range c.dir.BarePositions(parbordir.Droperr) {
		pass.Reportf(pos, "//parbor:droperr needs a justification: state why losing this error cannot lose data")
	}
	for _, f := range libFiles {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
	}
	return nil, nil
}

// isDurableCall reports whether call is one of the watched calls with
// an error as its last result.
func (c *checker) isDurableCall(call *ast.CallExpr) bool {
	var callee *types.Func
	if fn := typeutil.StaticCallee(c.pass.TypesInfo, call); fn != nil {
		callee = fn
	} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// Interface method calls (an io.WriteCloser sink) have no
		// static callee; the selection still names the method.
		if s, ok := c.pass.TypesInfo.Selections[sel]; ok {
			callee, _ = s.Obj().(*types.Func)
		}
	}
	if callee == nil || !durableCalls[callee.Name()] {
		return false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// checkFunc classifies every watched call in one function.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	g := c.cfgs.FuncDecl(fd)
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !c.isDurableCall(call) {
			return true
		}
		if c.dir.SuppressedAt(parbordir.Droperr, call.Pos()) {
			return true
		}
		c.classify(fd, g, call, parents)
		return true
	})
}

// callName renders the watched call for diagnostics.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return "call"
}

// classify applies the context rules to one watched call.
func (c *checker) classify(fd *ast.FuncDecl, g *cfg.CFG, call *ast.CallExpr, parents map[ast.Node]ast.Node) {
	parent := parents[call]
	for {
		if p, ok := parent.(*ast.ParenExpr); ok {
			parent = parents[p]
			continue
		}
		break
	}
	switch p := parent.(type) {
	case *ast.ExprStmt:
		if callName(call) == "Close" && g != nil && errorReturnFollows(g, p) {
			return // cleanup on an error path: Close is best-effort
		}
		c.pass.Reportf(call.Pos(), "error result of %s is discarded on a durable path (return it, store it in a sticky error field, or //parbor:droperr <why>)", callName(call))
	case *ast.DeferStmt:
		c.pass.Reportf(call.Pos(), "deferred %s discards its error on a durable path (use `defer func() { ... %s() ... }` that consumes it, or //parbor:droperr <why>)", callName(call), callName(call))
	case *ast.GoStmt:
		c.pass.Reportf(call.Pos(), "error result of %s is discarded on a durable path (return it, store it in a sticky error field, or //parbor:droperr <why>)", callName(call))
	case *ast.AssignStmt:
		// Find which LHS the call's error lands in. The watched calls
		// all have the error as sole result, so position matches.
		for i, rhs := range p.Rhs {
			if ast.Unparen(rhs) != call || i >= len(p.Lhs) {
				continue
			}
			lhs, ok := ast.Unparen(p.Lhs[i]).(*ast.Ident)
			if !ok {
				return // field or index store: a sticky-error consumer
			}
			if lhs.Name == "_" {
				c.pass.Reportf(call.Pos(), "error result of %s is discarded on a durable path (return it, store it in a sticky error field, or //parbor:droperr <why>)", callName(call))
				return
			}
			obj := c.pass.TypesInfo.ObjectOf(lhs)
			if obj == nil || g == nil {
				return
			}
			if !c.reachableRead(g, p, obj) {
				c.pass.Reportf(call.Pos(), "error result of %s is bound to %s but never read on any path (return it, or //parbor:droperr <why>)", callName(call), lhs.Name)
			}
			return
		}
	}
	// Return operand, call argument, inline comparison, composite
	// literal: consumed by construction.
}

// errorReturnFollows reports whether stmt's basic block later returns
// a non-nil error — the `f.Close(); return err` cleanup shape.
func errorReturnFollows(g *cfg.CFG, stmt ast.Node) bool {
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n != stmt {
				continue
			}
			for _, later := range b.Nodes[i+1:] {
				ret, ok := later.(*ast.ReturnStmt)
				if !ok || len(ret.Results) == 0 {
					continue
				}
				last := ast.Unparen(ret.Results[len(ret.Results)-1])
				if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
					continue
				}
				return true
			}
			return false
		}
	}
	return false
}

// reachableRead reports whether obj is read on some CFG path after
// the binding statement, with rebinding killing the search on that
// path (an overwritten error was dropped, whatever happens to the new
// value). Deferred closures capturing obj count as reads.
func (c *checker) reachableRead(g *cfg.CFG, binding ast.Node, obj types.Object) bool {
	startBlock, startIdx := -1, -1
	for bi, b := range g.Blocks {
		for ni, n := range b.Nodes {
			if n == binding {
				startBlock, startIdx = bi, ni
				break
			}
		}
	}
	if startBlock < 0 {
		return true // binding not in CFG (dead code): nothing to prove
	}
	const (
		fallsThrough = iota
		reads
		killed
	)
	scan := func(b *cfg.Block, from int) int {
		for _, n := range b.Nodes[from:] {
			if nodeReads(c.pass.TypesInfo, n, obj) {
				return reads
			}
			if rebinds(c.pass.TypesInfo, n, obj) {
				return killed
			}
		}
		return fallsThrough
	}
	switch scan(g.Blocks[startBlock], startIdx+1) {
	case reads:
		return true
	case killed:
		return false
	}
	visited := make(map[int32]bool)
	work := []*cfg.Block{}
	for _, s := range g.Blocks[startBlock].Succs {
		work = append(work, s)
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		if visited[b.Index] {
			continue
		}
		visited[b.Index] = true
		switch scan(b, 0) {
		case reads:
			return true
		case killed:
			continue
		}
		work = append(work, b.Succs...)
	}
	return false
}

// nodeReads reports whether n contains a read of obj: any identifier
// resolving to obj outside the pure-store positions of an assignment.
func nodeReads(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil || found {
			return
		}
		if as, ok := n.(*ast.AssignStmt); ok {
			// LHS identifiers are stores, not reads; everything else
			// (RHS, and non-ident LHS like a[i]) can read.
			for _, rhs := range as.Rhs {
				walk(rhs)
			}
			for _, lhs := range as.Lhs {
				if _, isIdent := ast.Unparen(lhs).(*ast.Ident); !isIdent {
					walk(lhs)
				}
			}
			return
		}
		if id, ok := n.(*ast.Ident); ok {
			if info.ObjectOf(id) == obj {
				found = true
			}
			return
		}
		ast.Inspect(n, func(child ast.Node) bool {
			if child == n {
				return true
			}
			walk(child)
			return false
		})
	}
	walk(n)
	return found
}

// rebinds reports whether n assigns a fresh value to obj (making the
// old error unrecoverable) without reading it.
func rebinds(info *types.Info, n ast.Node, obj types.Object) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && info.ObjectOf(id) == obj {
			return true
		}
	}
	return false
}
