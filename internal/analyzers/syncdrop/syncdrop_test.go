package syncdrop_test

import (
	"testing"

	"parbor/internal/analyzers/atest"
)

func TestSyncdrop(t *testing.T) {
	atest.Run(t, "../testdata/syncdrop")
}
