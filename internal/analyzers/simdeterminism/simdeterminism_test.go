package simdeterminism_test

import (
	"testing"

	"parbor/internal/analyzers/atest"
)

func TestSimdeterminism(t *testing.T) {
	atest.Run(t, "../testdata/simdeterminism")
}
