// Package simdeterminism defines an analyzer enforcing that
// simulation packages are pure functions of the experiment seed.
//
// Every figure this repository publishes (the Table 1 counts, the
// golden failure-set checksums, checkpoint/resume bit-identity) rests
// on simulation code never observing ambient state. In the packages
// listed in scope.Simulation the analyzer flags:
//
//   - reading the wall clock (time.Now, time.Since, time.Until),
//   - importing global randomness (math/rand, math/rand/v2) instead
//     of parbor/internal/rng,
//   - reading the environment (os.Getenv, os.LookupEnv, os.Environ),
//   - ranging over a map while appending to a slice declared outside
//     the loop, without sorting that slice afterwards in the same
//     function — the one shape of map iteration that leaks Go's
//     randomized map order into results.
//
// The //parbor:wallclock <justification> directive (see package
// parbordir) opts a line or function out of the clock/environment
// checks; a directive without a justification is itself reported.
package simdeterminism

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"parbor/internal/analyzers/parbordir"
	"parbor/internal/analyzers/scope"
)

// Analyzer is the simdeterminism pass.
var Analyzer = &analysis.Analyzer{
	Name:     "simdeterminism",
	Doc:      "forbid wall-clock, global randomness, environment reads, and order-sensitive map iteration in simulation packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// bannedCalls maps package path -> function name -> true for the
// ambient-state reads the analyzer forbids.
var bannedCalls = map[string]map[string]bool{
	"time": {"Now": true, "Since": true, "Until": true},
	"os":   {"Getenv": true, "LookupEnv": true, "Environ": true},
}

// bannedImports are the global-randomness packages; simulation code
// must draw from parbor/internal/rng so every stream derives from the
// experiment seed.
var bannedImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !scope.Simulation[scope.InternalPkg(pass.Pkg.Path())] {
		return nil, nil
	}
	var libFiles []*ast.File
	for _, f := range pass.Files {
		if !scope.InTestFile(pass, f.Pos()) {
			libFiles = append(libFiles, f)
		}
	}
	dir := parbordir.NewIndex(pass.Fset, libFiles)
	for _, pos := range dir.BarePositions(parbordir.Wallclock) {
		pass.Reportf(pos, "//parbor:wallclock needs a justification: state why reading ambient state cannot perturb simulation results")
	}
	for _, f := range libFiles {
		for _, imp := range f.Imports {
			path := imp.Path.Value // quoted
			if bannedImports[path[1:len(path)-1]] {
				pass.Reportf(imp.Pos(), "simulation package imports %s; draw from parbor/internal/rng so results derive from the experiment seed", path)
			}
		}
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil), (*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push || scope.InTestFile(pass, n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, dir, n)
		case *ast.RangeStmt:
			checkMapRange(pass, n, enclosingFuncBody(stack))
		}
		return true
	})
	return nil, nil
}

func checkCall(pass *analysis.Pass, dir *parbordir.Index, call *ast.CallExpr) {
	fn := typeutil.StaticCallee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if !bannedCalls[fn.Pkg().Path()][fn.Name()] {
		return
	}
	if dir.SuppressedAt(parbordir.Wallclock, call.Pos()) {
		return
	}
	pass.Reportf(call.Pos(), "%s.%s in a simulation package breaks seed-determinism; inject the value or annotate the site //parbor:wallclock <why>", fn.Pkg().Name(), fn.Name())
}

// enclosingFuncBody returns the body of the innermost function on the
// inspector stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// checkMapRange flags `for k := range m { out = append(out, ...) }`
// where out is declared outside the loop and never handed to a
// sort.* / slices.* call later in the same function: the append order
// — and therefore the slice's content order — is Go's randomized map
// iteration order.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, funcBody *ast.BlockStmt) {
	if funcBody == nil {
		return
	}
	if _, ok := pass.TypesInfo.TypeOf(rng.X).Underlying().(*types.Map); !ok {
		return
	}
	type appendSite struct {
		obj types.Object
		pos ast.Node
	}
	var appends []appendSite
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		target, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(target)
		if obj == nil || obj.Pos() >= rng.Pos() {
			return true // declared inside the loop: rebuilt per key
		}
		appends = append(appends, appendSite{obj: obj, pos: as})
		return true
	})
	for _, a := range appends {
		if !sortedAfter(pass, funcBody, a.obj, rng) {
			pass.Reportf(a.pos.Pos(), "%s is appended to in map-iteration order, which is randomized; sort it after the loop or iterate sorted keys", a.obj.Name())
		}
	}
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether obj is passed to a sort.* or slices.*
// call after the range loop ends, anywhere in the enclosing function.
func sortedAfter(pass *analysis.Pass, funcBody *ast.BlockStmt, obj types.Object, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := typeutil.StaticCallee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if refersTo(pass, arg, obj) {
				found = true
			}
		}
		return true
	})
	return found
}

// refersTo reports whether expr is obj, &obj, or obj[...] etc. — any
// expression whose leftmost identifier resolves to obj.
func refersTo(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	hit := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			hit = true
		}
		return !hit
	})
	return hit
}
