// Package flow holds the shared machinery of parborvet's
// flow-sensitive analyzers (lockguard, syncdrop): canonical paths for
// lock and field-base expressions, fresh-value detection for the
// constructor exemption, and a forward must-analysis worklist over
// golang.org/x/tools/go/cfg basic blocks.
//
// The analyzers were specified against go/ssa, but the only offline
// source of x/tools in this build environment — the Go toolchain's own
// cmd/vendor tree, the route PR 5 vendored the analysis framework
// from — ships go/cfg and not go/ssa. The analyses here are therefore
// built as abstract interpretation over the syntactic CFG: blocks are
// lists of statements and expressions in evaluation order, states
// propagate along Succs edges, and joins intersect (must-hold
// semantics). Within one CFG node, effects and checks are applied in
// ast.Inspect preorder, which matches evaluation order for the
// statement shapes the tree uses; the cases where it diverges
// (short-circuit operators evaluating a lock call conditionally) do
// not arise for lock manipulation in practice and would only make the
// analysis conservative, never silent.
package flow

import (
	"fmt"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/cfg"
)

// PathOf renders an expression as a canonical dotted path keyed by
// resolved types.Objects, so `m.stateMu` means the same thing at a
// Lock site and at a field access even under shadowing, and two
// different locals named `w` can never alias. Only chains of
// identifiers and field selections (through any number of pointer
// dereferences) are trackable; anything else — an index expression, a
// call result — reports ok=false and the caller skips the site.
func PathOf(info *types.Info, e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return "", false
		}
		return ObjKey(obj), true
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			base, ok := PathOf(info, e.X)
			if !ok {
				return "", false
			}
			return base + "." + ObjKey(sel.Obj()), true
		}
		// Qualified identifier (pkg.Var): the selection map has no
		// entry; the Sel identifier resolves directly.
		obj := info.ObjectOf(e.Sel)
		if obj == nil {
			return "", false
		}
		return ObjKey(obj), true
	case *ast.ParenExpr:
		return PathOf(info, e.X)
	case *ast.StarExpr:
		// (*p).mu and p.mu guard the same mutex.
		return PathOf(info, e.X)
	}
	return "", false
}

// ObjKey is the canonical rendering of one object. The position pins
// the defining occurrence, so identically named objects in different
// scopes stay distinct.
func ObjKey(obj types.Object) string {
	return fmt.Sprintf("%s@%d", obj.Name(), obj.Pos())
}

// FreshObjects returns the local variables of body that only ever
// hold values this function created itself — composite literals,
// new(T) — and so cannot yet be shared with another goroutine. Guard
// and atomic-access discipline does not apply to them: this is the
// constructor exemption. A variable that is even once assigned from
// anywhere else (a parameter, a call result, another variable) is not
// fresh.
func FreshObjects(info *types.Info, body ast.Node) map[types.Object]bool {
	freshDefs := make(map[types.Object]int)
	otherDefs := make(map[types.Object]int)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return
		}
		if isFreshExpr(rhs) {
			freshDefs[obj]++
		} else {
			otherDefs[obj]++
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			} else {
				// Multi-value unpacking comes from a call: nothing fresh.
				for _, l := range n.Lhs {
					record(l, nil)
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					record(name, n.Values[i])
				}
				// A bare `var x T` declares a zero value: fresh until
				// some other definition says otherwise, but only useful
				// when followed by field stores, which the analyzers
				// treat as accesses on a fresh base anyway.
			}
		case *ast.UnaryExpr:
			// Taking the address of a local and handing it out does not
			// un-fresh it here; the exemption covers the constructor
			// pattern `m := &T{...}; m.f = v; return m`, where the value
			// escapes only by being returned.
		}
		return true
	})
	fresh := make(map[types.Object]bool)
	for obj, n := range freshDefs {
		if n > 0 && otherDefs[obj] == 0 {
			fresh[obj] = true
		}
	}
	return fresh
}

// isFreshExpr reports whether e constructs a brand-new value.
func isFreshExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case nil:
		return false
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			_, lit := e.X.(*ast.CompositeLit)
			return lit
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	case *ast.ParenExpr:
		return isFreshExpr(e.X)
	}
	return false
}

// FreshBase reports whether the base of a field access is a fresh
// local: the expression reduces (through selections, derefs and
// parens) to an identifier in fresh.
func FreshBase(info *types.Info, fresh map[types.Object]bool, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := info.ObjectOf(x)
			return obj != nil && fresh[obj]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// State is a must-hold set (of lock paths, for lockguard) flowing
// through the CFG. States are persistent snapshots: Transfer works on
// a scratch copy and Snapshot interns it.
type State map[string]bool

// Equal reports set equality.
func (s State) Equal(t State) bool {
	if len(s) != len(t) {
		return false
	}
	for k := range s {
		if !t[k] {
			return false
		}
	}
	return true
}

// Clone copies the state.
func (s State) Clone() State {
	out := make(State, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// Intersect returns the meet of two must-hold states.
func (s State) Intersect(t State) State {
	out := make(State)
	for k := range s {
		if t[k] {
			out[k] = true
		}
	}
	return out
}

// Forward runs a forward must-analysis over g to fixpoint and returns
// the state at entry of every reachable block. entry seeds Blocks[0];
// transfer must return the block's exit state without mutating its
// argument beyond Clone semantics (it receives a private copy).
//
// The meet is set intersection and transfer functions only add or
// remove finitely many facts, so the chain height is bounded and the
// worklist terminates.
func Forward(g *cfg.CFG, entry State, transfer func(b *cfg.Block, in State) State) []State {
	in := make([]State, len(g.Blocks))
	in[0] = entry
	work := []int32{0}
	for len(work) > 0 {
		idx := work[len(work)-1]
		work = work[:len(work)-1]
		b := g.Blocks[idx]
		out := transfer(b, in[idx].Clone())
		for _, succ := range b.Succs {
			var next State
			if in[succ.Index] == nil {
				next = out.Clone()
			} else {
				next = in[succ.Index].Intersect(out)
				if next.Equal(in[succ.Index]) {
					continue
				}
			}
			in[succ.Index] = next
			work = append(work, succ.Index)
		}
	}
	return in
}
