module simfix

go 1.22
