package dram

import (
	"sort"
	"time"
)

// Deadline is opted out via its doc comment, covering the whole body.
//
//parbor:wallclock host-side watchdog deadline; never feeds simulation state
func Deadline(grace time.Duration) time.Time {
	return time.Now().Add(grace)
}

// Progress is opted out at the offending line.
func Progress() int64 {
	//parbor:wallclock coarse progress logging only, not part of any result
	t := time.Now().UnixNano()
	return t
}

// SortedKeys ranges a map but sorts the slice afterwards, which is the
// sanctioned shape.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Total ranges a map without any order-sensitive accumulation.
func Total(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		scratch := []int{}
		for _, v := range vs {
			scratch = append(scratch, v)
		}
		n += len(scratch)
	}
	return n
}
