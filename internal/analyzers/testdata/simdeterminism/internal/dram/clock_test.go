package dram

import (
	"testing"
	"time"
)

// Test files are exempt: deadlines legitimately read the wall clock.
func TestDeadlineMovesForward(t *testing.T) {
	now := time.Now()
	if Deadline(time.Second).Before(now) {
		t.Fatal("deadline in the past")
	}
}
