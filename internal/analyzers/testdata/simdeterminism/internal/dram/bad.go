// Package dram is a simdeterminism fixture: its path tail places it
// in the simulation scope, so ambient-state reads must be flagged.
package dram

import (
	"math/rand" // want simdeterminism `imports "math/rand"`
	"os"
	"time"
)

// Jitter reads the wall clock and global randomness.
func Jitter() float64 {
	return rand.Float64() * float64(time.Now().UnixNano()) // want simdeterminism `time.Now in a simulation package breaks seed-determinism`
}

// Elapsed measures against the wall clock.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want simdeterminism `time.Since in a simulation package breaks seed-determinism`
}

// Tuned reads the environment.
func Tuned() string {
	if v, ok := os.LookupEnv("PARBOR_TUNE"); ok { // want simdeterminism `os.LookupEnv in a simulation package breaks seed-determinism`
		return v
	}
	return os.Getenv("HOME") // want simdeterminism `os.Getenv in a simulation package breaks seed-determinism`
}

// Values leaks map-iteration order into a slice.
func Values(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want simdeterminism `appended to in map-iteration order`
	}
	return out
}

// Stale carries a wallclock opt-out with no justification, which is
// itself a diagnostic.
func Stale(deadline time.Time) bool {
	/* want simdeterminism `needs a justification` */ //parbor:wallclock
	return time.Now().After(deadline)
}
