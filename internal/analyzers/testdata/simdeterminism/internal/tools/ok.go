// Package tools is outside the simulation scope, so ambient-state
// reads are not simdeterminism's business here.
package tools

import (
	"os"
	"time"
)

// Stamp may read the wall clock and environment freely.
func Stamp() string {
	return os.Getenv("USER") + time.Now().String()
}
