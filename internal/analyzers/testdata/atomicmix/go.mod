module mixfix

go 1.22
