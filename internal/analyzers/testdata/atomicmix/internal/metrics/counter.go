// Package metrics is the atomicmix fixture: counters in the
// address-based sync/atomic style. Lines without want comments assert
// silence — pure-atomic and pure-plain fields must not be flagged.
package metrics

import "sync/atomic"

// Counter mixes one atomic field, one plain field, and one typed
// atomic.
type Counter struct {
	hits  uint64
	miss  uint64
	label string
	typed atomic.Uint64
}

// New exercises the constructor exemption: c is fresh, so the plain
// store cannot race with anything.
func New(label string) *Counter {
	c := &Counter{label: label}
	c.hits = 0
	return c
}

// Hit makes hits an atomic field package-wide.
func (c *Counter) Hit() { atomic.AddUint64(&c.hits, 1) }

// Snapshot reads it atomically: fine.
func (c *Counter) Snapshot() uint64 { return atomic.LoadUint64(&c.hits) }

// Torn reads it plainly: the bug this pass exists for.
func (c *Counter) Torn() uint64 {
	return c.hits // want atomicmix `plain access races`
}

// Reset writes it plainly: same bug, store side.
func (c *Counter) Reset() {
	c.hits = 0 // want atomicmix `plain access races`
}

// Stale documents why its plain read is safe.
func (c *Counter) Stale() uint64 {
	//parbor:unsync fixture: shutdown snapshot, all writers joined
	return c.hits
}

// Miss only ever touches miss plainly: no mixing, no diagnostic.
func (c *Counter) Miss() { c.miss++ }

// Label is plain non-numeric state: never flagged.
func (c *Counter) Label() string { return c.label }

// Inc uses the typed atomic: the type system already enforces
// discipline there, so the pass ignores it.
func (c *Counter) Inc() { c.typed.Add(1) }

// dropped is a package-level atomic variable.
var dropped uint64

// Drop marks it atomic.
func Drop() { atomic.AddUint64(&dropped, 1) }

// Dropped reads it plainly.
func Dropped() uint64 {
	return dropped // want atomicmix `plain access races`
}
