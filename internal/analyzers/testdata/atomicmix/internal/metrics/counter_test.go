package metrics

// Test files may read counters plainly while nothing runs. No want
// comments — this file asserts silence.
func drain(c *Counter) uint64 { return c.hits }
