// Cross-file methods of Pool: the *Locked caller-holds-the-lock
// convention and the //parbor:unsync opt-out.
package sched

// drainOneLocked pops the head; the caller holds p.mu, so the body is
// analyzed lock-held and the obligation moves to the call sites.
func (p *Pool) drainOneLocked() int {
	if len(p.pending) == 0 {
		return 0
	}
	v := p.pending[0]
	p.pending = p.pending[1:]
	return v
}

// resetLocked exercises transitive requirements: it needs mu only
// because drainOneLocked does.
func (p *Pool) resetLocked() {
	for p.drainOneLocked() != 0 {
	}
}

// Pop discharges the *Locked obligation correctly.
func (p *Pool) Pop() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drainOneLocked()
}

// PopRacy calls the *Locked helper without the lock.
func (p *Pool) PopRacy() int {
	return p.drainOneLocked() // want lockguard `call to drainOneLocked without mu held`
}

// Reset discharges the transitive obligation correctly.
func (p *Pool) Reset() {
	p.mu.Lock()
	p.resetLocked()
	p.mu.Unlock()
}

// ResetRacy trips the transitive requirement.
func (p *Pool) ResetRacy() {
	p.resetLocked() // want lockguard `call to resetLocked without mu held`
}

// resetUnsafe exercises //parbor:unsync line granularity: the
// directive covers its own line and the line below, nothing further.
func (p *Pool) resetUnsafe() {
	//parbor:unsync fixture: pool handed over single-threaded during reset
	p.pending = nil
	p.running = 0 // want lockguard `guardedby mu but accessed without holding`
}
