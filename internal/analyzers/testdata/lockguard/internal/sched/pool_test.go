package sched

// Test files are exempt: tests legitimately poke guarded state while
// nothing else runs. No want comments — this file asserts silence.
func probe(p *Pool) int {
	p.pending = nil
	return p.running
}
