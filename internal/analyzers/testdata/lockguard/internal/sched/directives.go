// Malformed //parbor:guardedby forms: each is itself a diagnostic, so
// a typo cannot silently disable enforcement.
package sched

import "sync"

type badNoArg struct {
	mu sync.Mutex
	n  int /* want lockguard `needs the guarding mutex field name` */ //parbor:guardedby
}

type badUnknown struct {
	mu sync.Mutex
	n  int /* want lockguard `names no field` */ //parbor:guardedby lock
}

type badKind struct {
	flag bool
	n    int /* want lockguard `not a sync.Mutex` */ //parbor:guardedby flag
}

// A bare //parbor:unsync demands a justification.
func bareUnsync(b *badNoArg) {
	/* want lockguard `needs a justification` */ //parbor:unsync
	_ = b.n
}
