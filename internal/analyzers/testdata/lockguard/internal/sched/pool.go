// Package sched is the lockguard fixture: a miniature of the fleet
// scheduler's locking discipline. Lines without want comments assert
// analyzer silence — correct lock usage must not be flagged.
package sched

import "sync"

// Pool mirrors the real scheduler's guarded-state shape.
type Pool struct {
	mu      sync.Mutex
	pending []int //parbor:guardedby mu
	running int   //parbor:guardedby mu
	name    string
}

// yield stands in for the real scheduler's wait.
func yield() {}

// NewPool exercises the constructor exemption: the receiver is a
// fresh local, not yet shared, so unguarded stores and even *Locked
// calls on it are fine.
func NewPool(name string) *Pool {
	p := &Pool{name: name}
	p.running = 0
	p.drainOneLocked()
	return p
}

// Push is the canonical lock/defer-unlock shape.
func (p *Pool) Push(v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pending = append(p.pending, v)
}

// Running is the lock/read/unlock shape.
func (p *Pool) Running() int {
	p.mu.Lock()
	n := p.running
	p.mu.Unlock()
	return n
}

// TryPush has an early-unlock error path; both exits are clean.
func (p *Pool) TryPush(v int) bool {
	p.mu.Lock()
	if p.running > 3 {
		p.mu.Unlock()
		return false
	}
	p.pending = append(p.pending, v)
	p.mu.Unlock()
	return true
}

// Drain is the defer-free unlock-wait-relock pattern from the real
// scheduler: the loop condition joins the locked entry path with the
// relocked backedge, so the state stays must-held throughout.
func (p *Pool) Drain() {
	p.mu.Lock()
	for p.running > 0 {
		p.mu.Unlock()
		yield()
		p.mu.Lock()
	}
	p.pending = nil
	p.mu.Unlock()
}

// Peek reads the guarded slice before taking the lock.
func (p *Pool) Peek() int {
	if len(p.pending) == 0 { // want lockguard `guardedby mu but accessed without holding`
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pending[0]
}

// Flush keeps accessing guarded state after releasing the lock.
func (p *Pool) Flush() int {
	p.mu.Lock()
	n := len(p.pending)
	p.mu.Unlock()
	p.running = 0 // want lockguard `guardedby mu but accessed without holding`
	return n
}

// Spawn returns a closure that reads guarded state without locking: a
// closure runs on any goroutine, so it gets no inherited lock state.
func (p *Pool) Spawn() func() int {
	return func() int {
		return p.running // want lockguard `guardedby mu but accessed without holding`
	}
}

// SpawnSafe returns a closure that takes the lock itself.
func (p *Pool) SpawnSafe() func() int {
	return func() int {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.running
	}
}

// Table exercises the RWMutex read path.
type Table struct {
	mu   sync.RWMutex
	rows map[int]string //parbor:guardedby mu
}

// Get holds the read lock across the access.
func (t *Table) Get(k int) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[k]
}

// Len skips the lock entirely.
func (t *Table) Len() int {
	return len(t.rows) // want lockguard `guardedby mu but accessed without holding`
}
