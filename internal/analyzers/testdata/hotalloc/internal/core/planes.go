// The mask-plane construction boundary: //parbor:planebuild work is
// once-per-materialization and off-limits to //parbor:hotpath callers,
// except through the //parbor:planecache seam.
package core

// buildPlanes is plane construction: allocation-heavy, once per row.
//
//parbor:planebuild
func buildPlanes(rows []int) []int {
	out := make([]int, 0, len(rows))
	for _, r := range rows {
		out = append(out, r*2)
	}
	return out
}

// hotRebuild reaches plane construction from the read path.
//
//parbor:hotpath
func hotRebuild(rows []int) int {
	p := buildPlanes(rows) // want hotalloc `calls //parbor:planebuild function buildPlanes`
	return p[0]
}

// hotAndBuild claims to be both the per-read hot loop and the
// once-per-materialization build.
//
//parbor:hotpath
//parbor:planebuild
func hotAndBuild(rows []int) int { // want hotalloc `conflicting //parbor:hotpath and //parbor:planebuild`
	return rows[0]
}

// cachedPlanes is the sanctioned seam: it caches the built planes, so
// the construction call amortizes to once per row and is allowed.
//
//parbor:hotpath
//parbor:planecache
func cachedPlanes(cache map[int][]int, row int, rows []int) []int {
	if p, ok := cache[row]; ok {
		return p
	}
	p := buildPlanes(rows)
	cache[row] = p
	return p
}

// coldRebuild is not a hot path: calling plane construction from
// setup code is the intended use.
func coldRebuild(rows []int) []int {
	return buildPlanes(rows)
}
