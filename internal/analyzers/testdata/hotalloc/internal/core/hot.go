// Package core is the hotalloc fixture: allocating constructs inside
// //parbor:hotpath functions versus their preallocated or cold-path
// counterparts.
package core

import "fmt"

// Host carries preallocated scratch, the sanctioned home for hot-path
// working memory.
type Host struct {
	scratch []int
}

// hotClosures builds a closure and maps on the hot path.
//
//parbor:hotpath
func hotClosures(rows []int) int {
	square := func(x int) int { return x * x } // want hotalloc `closure literal`
	flags := map[int]bool{}                    // want hotalloc `map literal`
	seen := make(map[int]int)                  // want hotalloc `make\(map\)`
	seen[0] = len(flags)
	return square(rows[0]) + seen[0]
}

// hotFormat formats on the hot path.
//
//parbor:hotpath
func hotFormat(row int) string {
	return fmt.Sprintf("row-%d", row) // want hotalloc `fmt.Sprintf`
}

// hotBox converts a concrete value to an interface on the hot path.
//
//parbor:hotpath
func hotBox(x int) any {
	return any(x) // want hotalloc `conversion to interface type`
}

// hotGrow appends in a loop to a slice declared without capacity.
//
//parbor:hotpath
func hotGrow(rows []int) []int {
	var out []int
	for _, r := range rows {
		out = append(out, r) // want hotalloc `declared without capacity`
	}
	return out
}

// hotPrealloc appends in loops to slices with pinned capacity: host
// scratch resliced to zero length, and make with an explicit cap.
//
//parbor:hotpath
func hotPrealloc(h *Host, rows []int) []int {
	out := h.scratch[:0]
	for _, r := range rows {
		out = append(out, r)
	}
	res := make([]int, 0, len(rows))
	for _, r := range out {
		res = append(res, r)
	}
	return res
}

// hotErr returns an error on the cold path of a hot function;
// fmt.Errorf is deliberately allowed there.
//
//parbor:hotpath
func hotErr(n int) error {
	if n < 0 {
		return fmt.Errorf("negative row count %d", n)
	}
	return nil
}

// coldReport is not a hot path: closures, maps, Sprintf, and growing
// appends are all fine.
func coldReport(rows []int) string {
	labels := map[int]string{}
	var parts []string
	for _, r := range rows {
		labels[r] = fmt.Sprintf("row-%d", r)
		parts = append(parts, labels[r])
	}
	join := func(sep string) string {
		s := ""
		for i, p := range parts {
			if i > 0 {
				s += sep
			}
			s += p
		}
		return s
	}
	return join(",")
}
