// Package tools is outside the context-threaded scope; building a
// root context here is nobody's business.
package tools

import "context"

// Root returns a fresh root context.
func Root() context.Context {
	return context.Background()
}
