// Package memctl is the ctxthread fixture: its path tail places it in
// the context-threaded scope, so the shim idiom, unused contexts, and
// ctx-less pass loops are all in play.
package memctl

import "context"

// Host drives rows.
type Host struct{ rows int }

// PassCtx runs one pass, checking for cancellation per row.
func (h *Host) PassCtx(ctx context.Context) error {
	for r := 0; r < h.rows; r++ {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Pass is the compat shim: Background handed directly to the Ctx
// sibling is the one sanctioned use.
func (h *Host) Pass() error {
	return h.PassCtx(context.Background())
}

// Verify builds its own context instead of accepting one.
func (h *Host) Verify() error {
	ctx := context.Background() // want ctxthread `outside the shim idiom`
	return h.PassCtx(ctx)
}

// Sweep holds a context but drives the rows through the non-Ctx shim,
// so cancellation never reaches the loop.
func Sweep(ctx context.Context, h *Host, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := h.Pass(); err != nil { // want ctxthread `holds a context but calls Pass`
			return err
		}
	}
	return nil
}

// Drain accepts a context and ignores it.
func Drain(ctx context.Context, h *Host) error { // want ctxthread `accepts a context.Context but never uses it`
	_ = h
	return nil
}

// RunAll loops over pass methods without accepting a context at all.
func RunAll(h *Host, n int) error { // want ctxthread `without accepting a context.Context`
	for i := 0; i < n; i++ {
		if err := h.Pass(); err != nil {
			return err
		}
	}
	return nil
}

// Restage shadows the context it already holds.
func Restage(ctx context.Context, h *Host) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return h.PassCtx(context.Background()) // want ctxthread `ignores the function's ctx parameter`
}

// SweepCtx is the compliant shape: context threaded into the Ctx
// sibling on every iteration.
func SweepCtx(ctx context.Context, h *Host, n int) error {
	for i := 0; i < n; i++ {
		if err := h.PassCtx(ctx); err != nil {
			return err
		}
	}
	return nil
}
