package fleetlog

// Test files are exempt from durable error-flow rules. No want
// comments — this file asserts silence.
func testDrop(s *segment) {
	s.Sync()
	defer s.Close()
}
