// WriteFileAtomic coverage: the name is watched wherever it resolves,
// including a package-local seam like the real faultfs helper.
package fleetlog

// WriteFileAtomic mimics the durable write seam's signature.
func WriteFileAtomic(path string, data []byte) error { return nil }

// persist checks the write error: silent.
func persist(path string, data []byte) error {
	return WriteFileAtomic(path, data)
}

// persistRacy drops it.
func persistRacy(path string, data []byte) {
	WriteFileAtomic(path, data) // want syncdrop `error result of WriteFileAtomic is discarded`
}
