// Package fleetlog is the syncdrop fixture: a miniature of the event
// log's segment lifecycle. The package name puts it in scope.Storage,
// so the durable error-flow rules apply. Lines without want comments
// assert silence — every consuming shape must stay clean.
package fleetlog

import "errors"

// segment stands in for an open log segment file.
type segment struct{ dirty bool }

func (s *segment) Sync() error  { return nil }
func (s *segment) Close() error { return nil }
func (s *segment) Flush() error { return nil }

// writer carries a sticky error like the real fleetlog.Writer.
type writer struct {
	seg *segment
	err error
}

// consume is an arbitrary error sink.
func consume(err error) {}

// --- consuming shapes: all silent ---

// checkAndReturn is the canonical if-err-return shape.
func checkAndReturn(s *segment) error {
	if err := s.Sync(); err != nil {
		return err
	}
	return nil
}

// directReturn passes the error straight out.
func directReturn(s *segment) error { return s.Close() }

// stickyStore lands the error in a sticky field.
func (w *writer) stickyStore() {
	w.err = w.seg.Sync()
}

// asArgument hands the error to a consumer.
func asArgument(s *segment) { consume(s.Flush()) }

// inlineCompare reads the error without binding it.
func inlineCompare(s *segment) bool { return s.Sync() != nil }

// sharedVar binds in branches and reads after the join.
func sharedVar(s *segment, deep bool) error {
	var err error
	if deep {
		err = s.Sync()
	} else {
		err = s.Flush()
	}
	return err
}

// deferredCapture consumes the close error through a deferred closure
// writing the named return — the shape the real Writer.Close uses.
func deferredCapture(s *segment) (err error) {
	defer func() {
		if cerr := s.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return nil
}

// cleanupClose is the error-path carve-out: the block already returns
// a non-nil error, so the Close is best-effort resource release.
func cleanupClose(bad bool) (*segment, error) {
	s := &segment{}
	if bad {
		s.Close()
		return nil, errors.New("open failed")
	}
	return s, nil
}

// --- dropping shapes: each is a diagnostic ---

// bareDiscard throws the sync error away.
func bareDiscard(s *segment) {
	s.Sync() // want syncdrop `error result of Sync is discarded`
}

// blankDiscard is the same drop spelled explicitly.
func blankDiscard(s *segment) {
	_ = s.Flush() // want syncdrop `error result of Flush is discarded`
}

// successClose discards Close on the success path, where the error
// is the only evidence the data made it to disk.
func successClose(s *segment) error {
	s.Close() // want syncdrop `error result of Close is discarded`
	return nil
}

// deferredDiscard loses the error at function exit.
func deferredDiscard(s *segment) {
	defer s.Close() // want syncdrop `deferred Close discards its error`
}

// overwritten binds the sync error and clobbers it before any read.
func overwritten(s *segment) error {
	err := s.Sync() // want syncdrop `bound to err but never read`
	err = s.Flush()
	return err
}

// neverRead binds the error and uses the variable only as a store
// target again later; the first binding never flows anywhere.
func neverRead(s *segment, retry bool) error {
	err := s.Sync() // want syncdrop `bound to err but never read`
	if retry {
		err = s.Sync()
		return err
	}
	return nil
}

// justified documents why the drop is safe.
func justified(s *segment) {
	//parbor:droperr fixture: probe close on an already-degraded segment
	s.Close()
}

// bareJustification demands a reason string.
func bareJustification(s *segment) {
	/* want syncdrop `needs a justification` */ //parbor:droperr
	s.Close()
}
