// Package tools is outside the durable scope: the same drops are
// silent here. No want comments — this file asserts the scope gate.
package tools

type closer struct{}

func (c *closer) Close() error { return nil }

func drop(c *closer) {
	c.Close()
	_ = c.Close()
}
