module dropfix

go 1.22
