// Package sim is the rngstream fixture: hot-path stream derivation
// and shard-body stream capture.
package sim

import (
	"sync"

	"rngfix/internal/rng"
)

// Map mimics the worker pool: it runs f for each shard index on its
// own goroutine, which is what makes captured-stream draws racy.
func Map(n int, f func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f(i)
		}(i)
	}
	wg.Wait()
}

// hotSplit derives with the allocating Split inside a hot path.
//
//parbor:hotpath
func hotSplit(src *rng.Source) uint64 {
	child := src.Split() // want rngstream `rng.Split allocates its child stream`
	return child.Uint64()
}

// hotSplitN derives with the allocating SplitN inside a hot path.
//
//parbor:hotpath
func hotSplitN(src *rng.Source) int {
	return len(src.SplitN(4)) // want rngstream `rng.SplitN allocates its child stream`
}

// hotChild derives by value, which hot paths are allowed to do.
//
//parbor:hotpath
func hotChild(src rng.Source) uint64 {
	child := src.Child(3)
	return child.Uint64() + src.At(7)
}

// coldSplit is not a hot path; the allocating derivation is fine.
func coldSplit(src *rng.Source) *rng.Source {
	return src.Split()
}

// shardsCaptureGo draws from the parent stream inside go statements.
func shardsCaptureGo(src *rng.Source, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = src.Uint64() // want rngstream `captured from the enclosing scope`
		}()
	}
	wg.Wait()
}

// shardsCapturePool draws from the parent stream inside a pool body.
func shardsCapturePool(src *rng.Source, n int) {
	Map(n, func(i int) {
		_ = src.Intn(10) // want rngstream `captured from the enclosing scope`
	})
}

// shardsDerive derives a per-shard child inside the body: the
// derivations read the parent without perturbing it, so this is the
// sanctioned pattern.
func shardsDerive(src rng.Source, n int) {
	Map(n, func(i int) {
		child := src.Child(uint64(i))
		_ = child.Uint64()
	})
}

// shardsParam hands each goroutine its own child stream by value.
func shardsParam(src rng.Source, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(s rng.Source) {
			defer wg.Done()
			_ = s.Uint64()
		}(src.Child(uint64(i)))
	}
	wg.Wait()
}

// sameGoroutine draws via a plain function literal invoked inline; no
// concurrency, no diagnostic.
func sameGoroutine(src *rng.Source) int {
	draw := func() int { return src.Intn(4) }
	return draw()
}
