// Package rng mirrors just enough of parbor/internal/rng for the
// analyzer's type checks: draw methods mutate through a pointer
// receiver, Split/SplitN allocate, Child/ChildN/At derive by value.
package rng

// Source is a deterministic stream.
type Source struct{ state uint64 }

// New seeds a root stream.
func New(seed uint64) Source { return Source{state: seed | 1} }

// Uint64 draws the next value.
func (s *Source) Uint64() uint64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return s.state
}

// Intn draws an int in [0, n).
func (s *Source) Intn(n int) int { return int(s.Uint64() % uint64(n)) }

// Split allocates an independent child stream.
func (s *Source) Split() *Source { return &Source{state: s.Uint64()} }

// SplitN allocates n independent child streams.
func (s *Source) SplitN(n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		out[i] = s.Split()
	}
	return out
}

// Child derives the i-th child stream without mutating the parent.
func (s Source) Child(i uint64) Source { return Source{state: s.state ^ (i*2654435761 + 1)} }

// At returns the i-th value of the stream without mutating it.
func (s Source) At(i uint64) uint64 { return s.state ^ i }
