module rngfix

go 1.22
