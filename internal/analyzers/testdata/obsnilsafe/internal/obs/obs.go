// Package obs is the obsnilsafe fixture: every exported
// pointer-receiver method on a Recorder implementor must open with a
// nil-receiver guard so instrumentation can never panic.
package obs

// Recorder receives observability events.
type Recorder interface {
	Add(name string, n uint64)
}

// Collector implements Recorder and guards every exported method.
type Collector struct {
	counts map[string]uint64
	frozen bool
}

// Add implements Recorder with the canonical guard.
func (c *Collector) Add(name string, n uint64) {
	if c == nil {
		return
	}
	c.counts[name] += n
}

// Count is guarded by a compound condition, which still counts.
func (c *Collector) Count(name string) uint64 {
	if c == nil || name == "" {
		return 0
	}
	return c.counts[name]
}

// Freeze is exported on an implementor but forgets the guard.
func (c *Collector) Freeze() { // want obsnilsafe `must start with a nil-receiver guard`
	c.frozen = true
}

// reset is unexported; internal call sites own the nil discipline.
func (c *Collector) reset() {
	c.counts = nil
}

// Sink implements Recorder without any guard.
type Sink struct{ n uint64 }

// Add implements Recorder.
func (s *Sink) Add(name string, n uint64) { // want obsnilsafe `must start with a nil-receiver guard`
	s.n += n
}

// Version has no named receiver: the body cannot dereference nil, so
// no guard is demanded.
func (*Sink) Version() string { return "v1" }

// Plain does not implement any package interface; its methods are not
// threaded as possibly-nil recorders.
type Plain struct{ n int }

// Bump needs no guard on a non-implementor.
func (p *Plain) Bump() {
	p.n++
}

// Gauge implements Recorder by value; value receivers cannot be
// nil-dereferenced.
type Gauge struct{ v uint64 }

// Add implements Recorder.
func (g Gauge) Add(name string, n uint64) {}
