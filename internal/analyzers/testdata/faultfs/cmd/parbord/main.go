// Command parbord is the durable-command half of the faultfs
// fixture: the cmd path tail places it in scope.DurableCmd, so
// direct mutations are flagged in the binaries' own code too.
package main

import "os"

func persistState(path string) error {
	return os.WriteFile(path, nil, 0o644) // want faultfs `os.WriteFile on a durable path bypasses the fault plane`
}

func main() { _ = persistState("state.json") }
