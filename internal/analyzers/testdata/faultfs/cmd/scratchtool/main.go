// Command scratchtool is not a durable command: the same call is
// silent here. No want comments — this file asserts the scope gate.
package main

import "os"

func main() { _ = os.WriteFile("scratch.txt", nil, 0o644) }
