package fleetlog

import (
	"os"
	"testing"
)

// Test files are exempt: tests legitimately fabricate on-disk debris
// (torn segments, corrupt headers) with direct os calls.
func TestFixture(t *testing.T) {
	if err := os.WriteFile(t.TempDir()+"/x.seg", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
}
