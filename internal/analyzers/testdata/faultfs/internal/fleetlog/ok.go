package fleetlog

import "os"

// SpillRun is opted out via its doc comment, covering the whole body:
// spill runs are re-derived from the log on loss, so they are not
// durable state.
//
//parbor:rawfs spill runs are scratch data, re-derived from the log on loss
func SpillRun(path string, data []byte) error {
	return os.WriteFile(path, data, 0o600)
}

// Probe is opted out at the offending line.
func Probe(path string) error {
	//parbor:rawfs probe file is deleted immediately; its loss is the signal
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Close()
	return os.Remove(path)
}

// ReadBack only reads; the seam requirement covers mutations.
func ReadBack(path string) ([]byte, error) {
	return os.ReadFile(path)
}
