// Package fleetlog is a faultfs fixture: its path tail places it in
// the storage scope, so direct os file mutations must be flagged.
package fleetlog

import "os"

// Persist writes durable state with every banned call shape.
func Persist(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil { // want faultfs `os.WriteFile on a durable path bypasses the fault plane`
		return err
	}
	f, err := os.Create(path + ".idx") // want faultfs `os.Create on a durable path bypasses the fault plane`
	if err != nil {
		return err
	}
	defer f.Close()                                                    // want syncdrop `deferred Close discards its error`
	g, err := os.OpenFile(path+".seg", os.O_CREATE|os.O_WRONLY, 0o644) // want faultfs `os.OpenFile on a durable path bypasses the fault plane`
	if err != nil {
		return err
	}
	return g.Close()
}

// Scratch carries a rawfs opt-out with no justification, which is
// itself a diagnostic.
func Scratch(path string) error {
	/* want faultfs `needs a justification` */ //parbor:rawfs
	return os.WriteFile(path, nil, 0o600)
}
