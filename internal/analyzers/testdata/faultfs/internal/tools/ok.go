// Package tools sits outside the storage scope: direct os calls are
// fine here.
package tools

import "os"

// Dump writes a report file; tools own no durable daemon state.
func Dump(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
