module fsfix

go 1.22
