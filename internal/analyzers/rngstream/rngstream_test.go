package rngstream_test

import (
	"testing"

	"parbor/internal/analyzers/atest"
)

func TestRngstream(t *testing.T) {
	atest.Run(t, "../testdata/rngstream")
}
