// Package rngstream defines an analyzer enforcing the repository's
// rng stream-derivation discipline (see parbor/internal/rng):
//
//   - In //parbor:hotpath functions, the allocating Split/SplitN
//     derivations are forbidden; the value-based Child/ChildN/At
//     streams are bit-identical and never escape to the heap.
//
//   - A shard body (a function literal launched in a goroutine or
//     handed to a worker pool such as par.Map) must not draw from an
//     rng stream captured from the enclosing scope: rng.Source is not
//     safe for concurrent use, and even a data-race-free sharing
//     makes the draw order depend on scheduling. Each shard must
//     derive its own child stream (Child/ChildN/At). Deriving a
//     child from a captured parent inside the shard is fine — the
//     derivations read the parent without perturbing it.
package rngstream

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"parbor/internal/analyzers/parbordir"
	"parbor/internal/analyzers/scope"
)

// Analyzer is the rngstream pass.
var Analyzer = &analysis.Analyzer{
	Name:     "rngstream",
	Doc:      "forbid allocating rng Split/SplitN in hot paths and rng stream sharing across goroutine shard bodies",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// drawMethods advance the stream state; calling one on a stream
// shared across shards is a race and a scheduling-order dependence.
var drawMethods = map[string]bool{
	"Uint64": true, "Intn": true, "Float64": true, "Bool": true,
	"NormFloat64": true, "ExpFloat64": true, "Perm": true, "Shuffle": true,
}

// poolCallees are callee names that run their function-literal
// argument on other goroutines (the worker pools of internal/par and
// the host's fan-outs), in addition to the go statement itself.
var poolCallees = map[string]bool{
	"Map": true, "MapCtx": true, "MapTimed": true, "MapTimedCtx": true,
	"Go": true, "forEachChip": true, "forEachActiveChip": true,
}

func run(pass *analysis.Pass) (any, error) {
	if scope.InternalPkg(pass.Pkg.Path()) == "" {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Check 1: Split/SplitN inside //parbor:hotpath functions.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if scope.InTestFile(pass, decl.Pos()) || !parbordir.FuncHas(decl, parbordir.Hotpath) {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := typeutil.StaticCallee(pass.TypesInfo, call)
			if fn == nil || (fn.Name() != "Split" && fn.Name() != "SplitN") {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !isRNGSource(sig.Recv().Type()) {
				return true
			}
			pass.Reportf(call.Pos(), "rng.%s allocates its child stream; this is a //parbor:hotpath function — derive the stream with Child/ChildN/At", fn.Name())
			return true
		})
	})

	// Check 2: draws on captured streams inside shard bodies.
	ins.WithStack([]ast.Node{(*ast.FuncLit)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push || scope.InTestFile(pass, n.Pos()) {
			return true
		}
		lit := n.(*ast.FuncLit)
		if !isShardBody(pass, lit, stack) {
			return true
		}
		checkShardBody(pass, lit)
		return true
	})
	return nil, nil
}

// isShardBody reports whether lit runs on another goroutine: the
// direct function of a go statement, or an argument to a worker-pool
// callee.
func isShardBody(pass *analysis.Pass, lit *ast.FuncLit, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.GoStmt:
		return parent.Call.Fun == lit
	case *ast.CallExpr:
		for _, arg := range parent.Args {
			if arg != lit {
				continue
			}
			if fn := typeutil.StaticCallee(pass.TypesInfo, parent); fn != nil {
				return poolCallees[fn.Name()]
			}
			// Callee unresolved (e.g. a function-typed variable):
			// fall back to the selector's textual name.
			if sel, ok := parent.Fun.(*ast.SelectorExpr); ok {
				return poolCallees[sel.Sel.Name]
			}
		}
	}
	// `go func() {...}()` parses as GoStmt -> CallExpr(Fun: lit), so
	// the go statement sits two levels up.
	if len(stack) >= 3 {
		if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == lit {
			if g, ok := stack[len(stack)-3].(*ast.GoStmt); ok {
				return g.Call == call
			}
		}
	}
	return false
}

// checkShardBody reports draw-method calls on rng streams captured
// from outside the shard body.
func checkShardBody(pass *analysis.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false // nested literals get their own visit
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !drawMethods[sel.Sel.Name] {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.ObjectOf(base).(*types.Var)
		if !ok || !isRNGSource(obj.Type()) {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // the shard's own stream
		}
		pass.Reportf(call.Pos(), "shard body draws from rng stream %q captured from the enclosing scope; streams are not concurrency-safe and the draw order would depend on scheduling — derive a per-shard child (Child/ChildN/At)", base.Name)
		return true
	})
}

// isRNGSource reports whether t is (a pointer to) the Source type of
// an internal rng package.
func isRNGSource(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Source" && obj.Pkg() != nil && scope.InternalPkg(obj.Pkg().Path()) == "rng"
}
