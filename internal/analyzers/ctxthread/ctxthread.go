// Package ctxthread defines an analyzer enforcing the repository's
// context-threading contract in the library packages that drive
// row/chip loops (scope.CtxThreaded: memctl, exp, onlinetest):
//
//   - context.Background()/context.TODO() may appear in library code
//     only inside the documented compat-shim idiom — passed directly
//     to a callee whose name ends in "Ctx" from a function that has
//     no context parameter of its own (e.g. Pass delegating to
//     PassWithWaitCtx). Any other use either hides a cancellation
//     gap or shadows a context the function already has.
//
//   - An exported function that takes a context.Context must
//     actually use it (pass it on, or check Done/Err).
//
//   - An exported function without a context parameter must not loop
//     over hardware-driving pass methods: long row/chip loops are
//     exactly the work SIGINT and -timeout need to be able to stop.
package ctxthread

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"parbor/internal/analyzers/scope"
)

// Analyzer is the ctxthread pass.
var Analyzer = &analysis.Analyzer{
	Name:     "ctxthread",
	Doc:      "require context threading through library entry points that loop over rows/chips",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// passMethods are the hardware-driving entry points whose callers
// must be cancellable. The non-Ctx name maps to its Ctx sibling so
// diagnostics can name the fix.
var passMethods = map[string]string{
	"Pass":                    "PassCtx",
	"PassWithWait":            "PassWithWaitCtx",
	"Verify":                  "VerifyCtx",
	"FullPass":                "FullPassCtx",
	"FullPassWithWait":        "FullPassWithWaitCtx",
	"FullPassRows":            "FullPassRowsCtx",
	"RunEpoch":                "RunEpochCtx",
	"ReadRowInto":             "ReadRowIntoCtx",
	"PassCtx":                 "",
	"PassWithWaitCtx":         "",
	"VerifyCtx":               "",
	"FullPassCtx":             "",
	"FullPassWithWaitCtx":     "",
	"FullPassRowsCtx":         "",
	"FullPassRowsWithWaitCtx": "",
	"RunEpochCtx":             "",
	"ReadRowIntoCtx":          "",
}

func run(pass *analysis.Pass) (any, error) {
	if !scope.CtxThreaded[scope.InternalPkg(pass.Pkg.Path())] {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || scope.InTestFile(pass, decl.Pos()) {
			return
		}
		ctxParam := contextParam(pass, decl)
		checkBackground(pass, decl, ctxParam)
		if decl.Name.IsExported() {
			if ctxParam != nil {
				checkCtxUsed(pass, decl, ctxParam)
				checkCtxVariantUsed(pass, decl)
			} else {
				checkLoopNeedsCtx(pass, decl)
			}
		}
	})
	return nil, nil
}

// contextParam returns the first parameter of type context.Context,
// or nil.
func contextParam(pass *analysis.Pass, decl *ast.FuncDecl) *types.Var {
	if decl.Type.Params == nil {
		return nil
	}
	for _, field := range decl.Type.Params.List {
		if !isContext(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if obj, ok := pass.TypesInfo.ObjectOf(name).(*types.Var); ok {
				return obj
			}
		}
	}
	return nil
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// checkBackground flags context.Background()/TODO() everywhere except
// the compat-shim idiom.
func checkBackground(pass *analysis.Pass, decl *ast.FuncDecl, ctxParam *types.Var) {
	// A Background call is shim-shaped only when it is a *direct*
	// argument of a call to a ...Ctx sibling.
	shim := make(map[*ast.CallExpr]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !strings.HasSuffix(calleeName(pass, call), "Ctx") {
			return true
		}
		for _, arg := range call.Args {
			if inner, ok := arg.(*ast.CallExpr); ok {
				shim[inner] = true
			}
		}
		return true
	})
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := typeutil.StaticCallee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" || (fn.Name() != "Background" && fn.Name() != "TODO") {
			return true
		}
		switch {
		case ctxParam != nil:
			pass.Reportf(call.Pos(), "context.%s ignores the function's %s parameter; thread it instead", fn.Name(), ctxParam.Name())
		case !shim[call]:
			pass.Reportf(call.Pos(), "context.%s in library code outside the shim idiom (passing it directly to a ...Ctx sibling); accept a context.Context instead", fn.Name())
		}
		return true
	})
}

func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := typeutil.StaticCallee(pass.TypesInfo, call); fn != nil {
		return fn.Name()
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// checkCtxUsed flags an exported function whose context parameter is
// never referenced.
func checkCtxUsed(pass *analysis.Pass, decl *ast.FuncDecl, ctxParam *types.Var) {
	used := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == ctxParam {
			used = true
		}
		return !used
	})
	if !used {
		pass.Reportf(decl.Name.Pos(), "%s accepts a context.Context but never uses it; pass it on or check ctx.Err()", decl.Name.Name)
	}
}

// checkCtxVariantUsed flags calls to a non-Ctx pass method from a
// function that holds a context and could call the Ctx sibling.
func checkCtxVariantUsed(pass *analysis.Pass, decl *ast.FuncDecl) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(pass, call)
		ctxSibling, known := passMethods[name]
		if !known || ctxSibling == "" || !isPassReceiver(pass, call) {
			return true
		}
		pass.Reportf(call.Pos(), "%s holds a context but calls %s; call %s so the loop stays cancellable", decl.Name.Name, name, ctxSibling)
		return true
	})
}

// checkLoopNeedsCtx flags an exported ctx-less function whose loops
// call hardware-driving pass methods.
func checkLoopNeedsCtx(pass *analysis.Pass, decl *ast.FuncDecl) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		reported := false
		ast.Inspect(body, func(n ast.Node) bool {
			if reported {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(pass, call)
			if _, known := passMethods[name]; !known || !isPassReceiver(pass, call) {
				return true
			}
			pass.Reportf(decl.Name.Pos(), "exported %s loops over %s without accepting a context.Context; row/chip loops must be cancellable", decl.Name.Name, name)
			reported = true
			return false
		})
		return !reported
	})
}

// isPassReceiver reports whether the call's receiver (or the function
// itself, for package-level callees) belongs to an internal package —
// distinguishing host/scheduler pass methods from identically named
// methods on unrelated types.
func isPassReceiver(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := typeutil.StaticCallee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return scope.InternalPkg(fn.Pkg().Path()) != ""
}
