package ctxthread_test

import (
	"testing"

	"parbor/internal/analyzers/atest"
)

func TestCtxthread(t *testing.T) {
	atest.Run(t, "../testdata/ctxthread")
}
