// Package lockguard defines a flow-sensitive analyzer enforcing the
// //parbor:guardedby <mu> struct-field directive: every access to an
// annotated field must happen while the named sibling mutex is held.
//
// The fleet scheduler's bit-identical drain/resume soak and the log
// sink's degradation state machine are mutex protocols; before this
// pass they held only by convention and -race luck. The analyzer
// walks each function's control-flow graph (see package flow for why
// CFG rather than SSA) tracking a must-hold set of lock paths:
// X.mu.Lock()/RLock() adds X.mu, Unlock()/RUnlock() removes it, defer
// X.mu.Unlock() keeps it held to function exit, and branch joins
// intersect — so unlock-then-relock sequences (the Drain pattern) and
// early-unlock error paths are tracked exactly, not approximated.
//
// Two exemptions keep the real tree's idioms expressible:
//
//   - Constructor freshness: accesses through a local that only ever
//     holds values the function built itself (&T{...}, new(T)) are
//     exempt — the value is not yet shared, so there is nothing to
//     race with.
//
//   - The *Locked suffix convention: a method named fooLocked declares
//     "my caller holds the lock". Its body is analyzed assuming its
//     required guards are held, and the requirement — computed from
//     the fields its body (transitively, through other *Locked
//     methods on the same receiver) touches — is enforced at every
//     call site instead.
//
// //parbor:unsync <justification> opts a line or function out; the
// justification is mandatory.
package lockguard

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"
	"golang.org/x/tools/go/types/typeutil"

	"parbor/internal/analyzers/flow"
	"parbor/internal/analyzers/parbordir"
	"parbor/internal/analyzers/scope"
)

// Analyzer is the lockguard pass.
var Analyzer = &analysis.Analyzer{
	Name:     "lockguard",
	Doc:      "enforce //parbor:guardedby mutex discipline flow-sensitively over each function's CFG",
	Requires: []*analysis.Analyzer{ctrlflow.Analyzer},
	Run:      run,
}

// lockedSuffix marks methods whose callers hold the lock.
const lockedSuffix = "Locked"

// guardInfo ties one annotated field to its guarding mutex field.
type guardInfo struct {
	guard *types.Var // the mutex field of the same struct
}

// checker carries the per-package analysis state.
type checker struct {
	pass   *analysis.Pass
	cfgs   *ctrlflow.CFGs
	dir    *parbordir.Index
	guards map[*types.Var]guardInfo // annotated field -> its mutex
	// requires maps each *Locked method to the receiver-relative guard
	// fields its body needs held on entry.
	requires map[*types.Func]map[*types.Var]bool
	// methods lists the package's *Locked methods for the fixpoint.
	methods []*ast.FuncDecl
}

func run(pass *analysis.Pass) (any, error) {
	var libFiles []*ast.File
	for _, f := range pass.Files {
		if !scope.InTestFile(pass, f.Pos()) {
			libFiles = append(libFiles, f)
		}
	}
	c := &checker{
		pass:     pass,
		cfgs:     pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs),
		dir:      parbordir.NewIndex(pass.Fset, libFiles),
		guards:   make(map[*types.Var]guardInfo),
		requires: make(map[*types.Func]map[*types.Var]bool),
	}
	// lockguard owns reporting bare //parbor:unsync directives (the
	// directive is shared with atomicmix; reporting it once keeps the
	// knownbad accounting exact).
	for _, pos := range c.dir.BarePositions(parbordir.Unsync) {
		pass.Reportf(pos, "//parbor:unsync needs a justification: state why this unsynchronized access cannot race")
	}
	for _, f := range libFiles {
		c.collectGuards(f)
	}
	if len(c.guards) == 0 {
		return nil, nil
	}
	for _, f := range libFiles {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Body != nil && c.isLockedMethod(fd) {
				c.methods = append(c.methods, fd)
				c.requires[c.funcObj(fd)] = make(map[*types.Var]bool)
			}
		}
	}
	c.fixpointRequires()
	for _, f := range libFiles {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
		// Function literals get their own CFGs and an empty entry
		// state: a closure may run on any goroutine at any time, so it
		// must take the lock itself.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				if g := c.cfgs.FuncLit(lit); g != nil {
					c.analyze(g, lit.Body, flow.State{}, "", nil)
				}
			}
			return true
		})
	}
	return nil, nil
}

// collectGuards parses //parbor:guardedby directives off struct
// fields, validating the named guard resolves to a sibling mutex.
func (c *checker) collectGuards(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		for _, field := range st.Fields.List {
			rawArg, found := parbordir.FieldArg(field, parbordir.Guardedby)
			if !found {
				continue
			}
			// The mutex name is the first token; anything after it is
			// free commentary ("guardedby mu — nil after close").
			args := strings.Fields(rawArg)
			if len(args) == 0 {
				c.pass.Reportf(field.Pos(), "//parbor:guardedby needs the guarding mutex field name")
				continue
			}
			arg := args[0]
			guard := findField(c.pass.TypesInfo, st, arg)
			if guard == nil {
				c.pass.Reportf(field.Pos(), "//parbor:guardedby %s names no field of this struct", arg)
				continue
			}
			if !isMutex(guard.Type()) {
				c.pass.Reportf(field.Pos(), "//parbor:guardedby %s: field is not a sync.Mutex or sync.RWMutex", arg)
				continue
			}
			for _, name := range field.Names {
				if obj, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok {
					c.guards[obj] = guardInfo{guard: guard}
				}
			}
		}
		return true
	})
}

// findField resolves a field name inside a struct literal type.
func findField(info *types.Info, st *ast.StructType, name string) *types.Var {
	for _, field := range st.Fields.List {
		for _, id := range field.Names {
			if id.Name == name {
				if v, ok := info.Defs[id].(*types.Var); ok {
					return v
				}
			}
		}
	}
	return nil
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// isLockedMethod reports whether fd is a method following the
// *Locked caller-holds-the-lock convention on a receiver whose struct
// has annotated fields.
func (c *checker) isLockedMethod(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || !strings.HasSuffix(fd.Name.Name, lockedSuffix) {
		return false
	}
	return c.recvIdent(fd) != nil
}

// funcObj returns the *types.Func of a declaration.
func (c *checker) funcObj(fd *ast.FuncDecl) *types.Func {
	fn, _ := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	return fn
}

// recvIdent returns the named receiver identifier, or nil.
func (c *checker) recvIdent(fd *ast.FuncDecl) *ast.Ident {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	id := fd.Recv.List[0].Names[0]
	if id.Name == "_" {
		return nil
	}
	return id
}

// fixpointRequires computes, for every *Locked method, the guard
// fields its body needs held on entry: direct annotated-field
// accesses through the receiver, plus (transitively) the requirements
// of *Locked methods it calls on the same receiver. Sets only grow
// and are bounded by the number of guards, so iteration terminates.
func (c *checker) fixpointRequires() {
	for changed := true; changed; {
		changed = false
		for _, fd := range c.methods {
			fn := c.funcObj(fd)
			if fn == nil {
				continue
			}
			g := c.cfgs.FuncDecl(fd)
			if g == nil {
				continue
			}
			needs := c.requires[fn]
			before := len(needs)
			c.analyze(g, fd.Body, flow.State{}, c.recvPath(fd), needs)
			if len(needs) != before {
				changed = true
			}
		}
	}
}

// recvPath returns the canonical path of fd's receiver variable.
func (c *checker) recvPath(fd *ast.FuncDecl) string {
	id := c.recvIdent(fd)
	if id == nil {
		return ""
	}
	p, _ := flow.PathOf(c.pass.TypesInfo, id)
	return p
}

// checkFunc runs the reporting pass over one declared function.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	g := c.cfgs.FuncDecl(fd)
	if g == nil {
		return
	}
	entry := flow.State{}
	if c.isLockedMethod(fd) {
		// The caller holds what the body needs; the call sites carry
		// the obligation.
		recv := c.recvPath(fd)
		for guard := range c.requires[c.funcObj(fd)] {
			entry[recv+"."+pathKey(guard)] = true
		}
	}
	c.analyze(g, fd.Body, entry, "", nil)
}

// pathKey renders a guard field for path composition, matching
// flow.PathOf's rendering of a selection of that field.
func pathKey(v *types.Var) string {
	return flow.ObjKey(v)
}

// analyze runs the dataflow over one CFG. When collect is non-nil the
// pass runs in requirement-collection mode for a *Locked method:
// unheld receiver-relative guard needs are added to collect instead
// of reported (anything else still reports in the later checkFunc
// pass, which runs with the collected entry state). recvPath is only
// meaningful in collection mode.
func (c *checker) analyze(g *cfg.CFG, body ast.Node, entry flow.State, recvPath string, collect map[*types.Var]bool) {
	fresh := flow.FreshObjects(c.pass.TypesInfo, body)
	transfer := func(b *cfg.Block, in flow.State) flow.State {
		for _, n := range b.Nodes {
			c.walkNode(n, in, fresh, recvPath, collect, false)
		}
		return in
	}
	in := flow.Forward(g, entry, transfer)
	if collect != nil {
		return
	}
	for i, b := range g.Blocks {
		if in[i] == nil || !b.Live {
			continue
		}
		st := in[i].Clone()
		for _, n := range b.Nodes {
			c.walkNode(n, st, fresh, recvPath, nil, true)
		}
	}
}

// walkNode applies one CFG node's lock effects to st in evaluation
// order and, when report is true, checks annotated accesses and
// *Locked call sites against the current state. Defer bodies apply no
// effects (a deferred unlock keeps the lock held to exit) and nested
// function literals are skipped outright — they are analyzed under
// their own CFG.
func (c *checker) walkNode(n ast.Node, st flow.State, fresh map[types.Object]bool, recvPath string, collect map[*types.Var]bool, report bool) {
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return
		case *ast.DeferStmt:
			walk(n.Call, true)
			return
		case *ast.CallExpr:
			for _, child := range append([]ast.Expr{n.Fun}, n.Args...) {
				walk(child, inDefer)
			}
			c.applyCall(n, st, fresh, recvPath, collect, report, inDefer)
			return
		case *ast.SelectorExpr:
			walk(n.X, inDefer)
			c.checkAccess(n, st, fresh, recvPath, collect, report)
			return
		}
		// Generic traversal for every other node shape: visit children
		// in syntactic (≈ evaluation) order.
		ast.Inspect(n, func(child ast.Node) bool {
			if child == n {
				return true
			}
			walk(child, inDefer)
			return false
		})
	}
	walk(n, false)
}

// applyCall handles one call expression: mutex Lock/Unlock effects and
// the call-site obligation of *Locked methods.
func (c *checker) applyCall(call *ast.CallExpr, st flow.State, fresh map[types.Object]bool, recvPath string, collect map[*types.Var]bool, report, inDefer bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Lock-state effects: only for methods of sync.Mutex/RWMutex.
	if recvType, ok := c.pass.TypesInfo.Types[sel.X]; ok && isMutex(recvType.Type) {
		path, ok := flow.PathOf(c.pass.TypesInfo, sel.X)
		if !ok {
			return
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			if !inDefer {
				st[path] = true
			}
		case "Unlock", "RUnlock":
			if !inDefer {
				delete(st, path)
			}
		}
		return
	}
	// *Locked call sites: the callee's requirements are the caller's
	// obligation, receiver-relative.
	callee := typeutil.StaticCallee(c.pass.TypesInfo, call)
	if callee == nil || !strings.HasSuffix(callee.Name(), lockedSuffix) {
		return
	}
	needs, tracked := c.requires[callee]
	if !tracked || len(needs) == 0 {
		return
	}
	if flow.FreshBase(c.pass.TypesInfo, fresh, sel.X) {
		return
	}
	base, ok := flow.PathOf(c.pass.TypesInfo, sel.X)
	if !ok {
		return
	}
	for guard := range needs {
		want := base + "." + pathKey(guard)
		if st[want] {
			continue
		}
		if collect != nil {
			if base == recvPath {
				collect[guard] = true
			}
			continue
		}
		if report && !c.dir.SuppressedAt(parbordir.Unsync, call.Pos()) {
			c.pass.Reportf(call.Pos(), "call to %s without %s held (callee assumes the caller holds it)", callee.Name(), guard.Name())
		}
	}
}

// checkAccess checks one field selection against the annotation set.
func (c *checker) checkAccess(sel *ast.SelectorExpr, st flow.State, fresh map[types.Object]bool, recvPath string, collect map[*types.Var]bool, report bool) {
	selection, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	info, guarded := c.guards[field]
	if !guarded {
		return
	}
	if flow.FreshBase(c.pass.TypesInfo, fresh, sel.X) {
		return
	}
	base, ok := flow.PathOf(c.pass.TypesInfo, sel.X)
	if !ok {
		return
	}
	want := base + "." + pathKey(info.guard)
	if st[want] {
		return
	}
	if collect != nil {
		if base == recvPath {
			collect[info.guard] = true
		}
		return
	}
	if report && !c.dir.SuppressedAt(parbordir.Unsync, sel.Pos()) {
		c.pass.Reportf(sel.Pos(), "field %s is //parbor:guardedby %s but accessed without holding it", field.Name(), info.guard.Name())
	}
}
