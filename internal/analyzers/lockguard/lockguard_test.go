package lockguard_test

import (
	"testing"

	"parbor/internal/analyzers/atest"
)

func TestLockguard(t *testing.T) {
	atest.Run(t, "../testdata/lockguard")
}
