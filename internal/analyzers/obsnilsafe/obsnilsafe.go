// Package obsnilsafe defines an analyzer preserving the obs-inertness
// guarantee of the observability layer (parbor/internal/obs):
// instrumented code threads a possibly-nil Recorder everywhere, so
// every exported pointer-receiver method on a type that implements
// one of the package's interfaces must begin with a nil-receiver
// guard. Without it, attaching or detaching instrumentation could
// panic — i.e. observation could perturb the experiment, which the
// whole layer promises never to do.
package obsnilsafe

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"parbor/internal/analyzers/scope"
)

// Analyzer is the obsnilsafe pass.
var Analyzer = &analysis.Analyzer{
	Name:     "obsnilsafe",
	Doc:      "require nil-receiver guards on exported pointer-receiver methods of obs Recorder implementations",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	if !scope.Obs(pass.Pkg.Path()) {
		return nil, nil
	}
	// Collect every non-empty interface declared in the package.
	var ifaces []*types.Interface
	pkgScope := pass.Pkg.Scope()
	for _, name := range pkgScope.Names() {
		tn, ok := pkgScope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		if iface, ok := tn.Type().Underlying().(*types.Interface); ok && iface.NumMethods() > 0 {
			ifaces = append(ifaces, iface)
		}
	}
	if len(ifaces) == 0 {
		return nil, nil
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if scope.InTestFile(pass, decl.Pos()) {
			return
		}
		if decl.Recv == nil || !decl.Name.IsExported() || decl.Body == nil || len(decl.Body.List) == 0 {
			return
		}
		recv := receiverVar(pass, decl)
		if recv == nil {
			return
		}
		ptr, ok := recv.Type().(*types.Pointer)
		if !ok {
			return // value receivers cannot be nil-dereferenced
		}
		if !implementsAny(ptr, ifaces) {
			return
		}
		if firstStmtGuardsNil(pass, decl.Body.List[0], recv) {
			return
		}
		typeName := types.TypeString(ptr, types.RelativeTo(pass.Pkg))
		pass.Reportf(decl.Name.Pos(), "exported method (%s).%s must start with a nil-receiver guard: instrumentation is threaded as a possibly-nil recorder and must never panic", typeName, decl.Name.Name)
	})
	return nil, nil
}

// receiverVar resolves the named receiver of decl. Unnamed and blank
// receivers return nil and are skipped: a body that cannot reference
// its receiver cannot dereference nil either.
func receiverVar(pass *analysis.Pass, decl *ast.FuncDecl) *types.Var {
	if len(decl.Recv.List) != 1 || len(decl.Recv.List[0].Names) != 1 {
		return nil
	}
	name := decl.Recv.List[0].Names[0]
	if name.Name == "_" {
		return nil
	}
	obj, _ := pass.TypesInfo.ObjectOf(name).(*types.Var)
	return obj
}

func implementsAny(t types.Type, ifaces []*types.Interface) bool {
	for _, iface := range ifaces {
		if types.Implements(t, iface) {
			return true
		}
	}
	return false
}

// firstStmtGuardsNil reports whether stmt is an if statement whose
// condition compares the receiver against nil (possibly joined with
// further conditions: `if c == nil || cmd >= numCmds`).
func firstStmtGuardsNil(pass *analysis.Pass, stmt ast.Stmt, recv *types.Var) bool {
	ifStmt, ok := stmt.(*ast.IfStmt)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(ifStmt.Cond, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		x, y := bin.X, bin.Y
		if isNil(pass, y) && isRecv(pass, x, recv) || isNil(pass, x) && isRecv(pass, y, recv) {
			found = true
		}
		return !found
	})
	return found
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := pass.TypesInfo.ObjectOf(id).(*types.Nil)
	return isNilObj
}

func isRecv(pass *analysis.Pass, e ast.Expr, recv *types.Var) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(id) == recv
}
