package obsnilsafe_test

import (
	"testing"

	"parbor/internal/analyzers/atest"
)

func TestObsnilsafe(t *testing.T) {
	atest.Run(t, "../testdata/obsnilsafe")
}
