// Package atomicmix defines an analyzer catching mixed atomic/plain
// access: any variable a package touches through sync/atomic anywhere
// must be touched through sync/atomic everywhere. A plain load next
// to an atomic.AddUint64 is a torn read on 32-bit targets and a data
// race on all of them — exactly the kind of bug that turns an obs
// counter golden flaky at GOMAXPROCS 8 and nowhere else.
//
// The rule is package-wide rather than flow-sensitive: mixing is
// wrong on every interleaving, so there is no path condition to
// track. Two exemptions mirror lockguard's: accesses through a fresh
// (constructor-local) base are safe because the value is not yet
// shared, and _test.go files are free to read counters while nothing
// else runs. //parbor:unsync <why> opts out a line, with the
// justification mandatory (lockguard reports the bare form).
//
// Fields of type atomic.Uint64 etc. need no analysis: the type system
// already forbids plain access to them. This pass exists for the
// address-based style, where the discipline is only conventional.
package atomicmix

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"parbor/internal/analyzers/flow"
	"parbor/internal/analyzers/parbordir"
	"parbor/internal/analyzers/scope"
)

// Analyzer is the atomicmix pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "forbid plain access to variables the package also accesses via sync/atomic",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	var libFiles []*ast.File
	for _, f := range pass.Files {
		if !scope.InTestFile(pass, f.Pos()) {
			libFiles = append(libFiles, f)
		}
	}
	dir := parbordir.NewIndex(pass.Fset, libFiles)
	// Pass 1: every &v handed to a sync/atomic function marks v
	// atomic, and the exact syntax nodes of those operands are
	// remembered so pass 2 does not flag the atomic calls themselves.
	atomicVars := make(map[*types.Var]string) // var -> atomic func name, for the message
	operands := make(map[ast.Expr]bool)
	for _, f := range libFiles {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := typeutil.StaticCallee(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || unary.Op.String() != "&" {
					continue
				}
				target := ast.Unparen(unary.X)
				if v := varOf(pass.TypesInfo, target); v != nil {
					atomicVars[v] = callee.Name()
					operands[target] = true
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil, nil
	}
	// Pass 2: any other access to those variables is mixing.
	for _, f := range libFiles {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fresh := flow.FreshObjects(pass.TypesInfo, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				e, ok := n.(ast.Expr)
				if !ok || operands[e] {
					return true
				}
				v := varOf(pass.TypesInfo, e)
				if v == nil {
					return true
				}
				fn, isAtomic := atomicVars[v]
				if !isAtomic {
					return true
				}
				if sel, ok := e.(*ast.SelectorExpr); ok && flow.FreshBase(pass.TypesInfo, fresh, sel.X) {
					return true
				}
				if dir.SuppressedAt(parbordir.Unsync, e.Pos()) {
					return true
				}
				pass.Reportf(e.Pos(), "%s is accessed with atomic.%s elsewhere in this package; plain access races with it", v.Name(), fn)
				return false
			})
		}
	}
	return nil, nil
}

// varOf resolves an expression to the field or variable it names:
// a selector to a struct field, or a plain identifier to a non-local
// variable. Locals are excluded — a local handed to sync/atomic (a
// WaitGroup-style helper) is visible in full right here, and flagging
// every read of it would be noise.
func varOf(info *types.Info, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		sel, ok := info.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			// Possibly a qualified package-level var.
			if v, ok := info.ObjectOf(e.Sel).(*types.Var); ok && isGlobal(v) {
				return v
			}
			return nil
		}
		v, _ := sel.Obj().(*types.Var)
		return v
	case *ast.Ident:
		if v, ok := info.ObjectOf(e).(*types.Var); ok && isGlobal(v) {
			return v
		}
	}
	return nil
}

// isGlobal reports whether v is a package-level variable.
func isGlobal(v *types.Var) bool {
	if v.IsField() {
		return false
	}
	pkg := v.Pkg()
	return pkg != nil && pkg.Scope().Lookup(v.Name()) == v
}
