package atomicmix_test

import (
	"testing"

	"parbor/internal/analyzers/atest"
)

func TestAtomicmix(t *testing.T) {
	atest.Run(t, "../testdata/atomicmix")
}
