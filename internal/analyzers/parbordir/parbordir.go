// Package parbordir parses the repository's //parbor:* source
// directives, shared by every analyzer in internal/analyzers.
//
// Three directives exist:
//
//	//parbor:hotpath
//	    On a function's doc comment. Declares the function part of the
//	    zero-allocation pass hot loop: hotalloc outlaws allocating
//	    constructs inside it and rngstream outlaws the allocating
//	    Split/SplitN stream derivations (use Child/ChildN/At).
//
//	//parbor:wallclock <justification>
//	    On a function's doc comment, on the offending line, or on the
//	    line directly above it. Opts the site out of simdeterminism's
//	    wall-clock/environment checks. The justification is mandatory:
//	    a bare //parbor:wallclock is itself a diagnostic, so every
//	    opt-out records why reading the real clock cannot perturb
//	    simulation results (observational-only timing, stall
//	    detection, ...).
//
//	//parbor:rawfs <justification>
//	    Same placement rules. Opts a site in a storage package out of
//	    the faultfs analyzer's requirement that durable I/O go through
//	    the parbor/internal/faultfs seam. Justification mandatory, for
//	    the same reason: every bypass of the fault plane records why
//	    the write cannot corrupt durable state (scratch files, spill
//	    runs that are re-derived on loss, ...).
//
//	//parbor:planebuild
//	    On a function's doc comment. Declares the function part of
//	    mask-plane construction: allocation-heavy work that runs once
//	    per row at materialization, never per read. hotalloc forbids
//	    //parbor:hotpath functions from calling it — a hot-path call
//	    would rebuild planes on every read — and rejects a function
//	    annotated both hotpath and planebuild outright.
//
//	//parbor:planecache
//	    On a function's doc comment. Marks the designated lazy
//	    materialization seam: the one place a read-path function may
//	    reach plane construction, because it caches the result and the
//	    build amortizes to once per row. hotalloc exempts it from the
//	    planebuild call check.
//
//	//parbor:guardedby <mu>
//	    On a struct field's doc or line comment. Declares that every
//	    access to the field must happen with the named sibling mutex
//	    field held; lockguard enforces it flow-sensitively over each
//	    function's control-flow graph. The argument is mandatory and
//	    must name a sync.Mutex or sync.RWMutex field of the same
//	    struct.
//
//	//parbor:unsync <justification>
//	    On the offending line, the line above it, or a function's doc
//	    comment. Opts an access out of lockguard's guardedby check and
//	    atomicmix's mixed-access check. Justification mandatory: every
//	    sanctioned unsynchronized access records why it cannot race
//	    (value not yet published, reader tolerates staleness, ...).
//
//	//parbor:droperr <justification>
//	    Same placement rules. Opts a site on a durable path out of
//	    syncdrop's requirement that Sync/Close/Flush/WriteFileAtomic
//	    error results flow to a return or a sticky error field.
//	    Justification mandatory: every dropped durability error
//	    records why losing it cannot lose data (writer already
//	    poisoned, read-side close, ...).
//
// Directive comments deliberately use the Go directive shape (no
// space after //) so gofmt keeps them glued to their declarations.
package parbordir

import (
	"go/ast"
	"go/token"
	"strings"
)

const (
	// Hotpath is the //parbor:hotpath directive name.
	Hotpath = "parbor:hotpath"
	// Wallclock is the //parbor:wallclock directive name.
	Wallclock = "parbor:wallclock"
	// Rawfs is the //parbor:rawfs directive name: it opts a site in a
	// storage package out of the faultfs seam requirement.
	Rawfs = "parbor:rawfs"
	// Planebuild is the //parbor:planebuild directive name: it marks
	// once-per-materialization plane construction, off-limits to
	// //parbor:hotpath callers.
	Planebuild = "parbor:planebuild"
	// Planecache is the //parbor:planecache directive name: it marks
	// the caching seam through which read paths may reach plane
	// construction.
	Planecache = "parbor:planecache"
	// Guardedby is the //parbor:guardedby directive name: on a struct
	// field, it names the sibling mutex field that must be held across
	// every access (lockguard).
	Guardedby = "parbor:guardedby"
	// Unsync is the //parbor:unsync directive name: it opts a site out
	// of lockguard's and atomicmix's synchronized-access requirements.
	Unsync = "parbor:unsync"
	// Droperr is the //parbor:droperr directive name: it opts a site on
	// a durable path out of syncdrop's error-flow requirement.
	Droperr = "parbor:droperr"
)

// needsJustification lists the directives whose bare form (no
// trailing explanation) is itself a diagnostic.
var needsJustification = map[string]bool{
	Wallclock: true,
	Rawfs:     true,
	Unsync:    true,
	Droperr:   true,
}

// parse splits a comment into (directive, justification) if it is a
// //parbor:* directive, else returns ok=false.
func parse(c *ast.Comment) (name, justification string, ok bool) {
	text, found := strings.CutPrefix(c.Text, "//")
	if !found {
		return "", "", false // a /* */ comment cannot be a directive
	}
	if !strings.HasPrefix(text, "parbor:") {
		return "", "", false
	}
	name, justification, _ = strings.Cut(text, " ")
	return name, strings.TrimSpace(justification), true
}

// groupHas reports whether any line of the comment group is the named
// directive.
func groupHas(g *ast.CommentGroup, directive string) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if name, _, ok := parse(c); ok && name == directive {
			return true
		}
	}
	return false
}

// FuncHas reports whether the function's doc comment carries the
// named directive.
func FuncHas(decl *ast.FuncDecl, directive string) bool {
	return groupHas(decl.Doc, directive)
}

// FieldArg returns the argument of the named directive on a struct
// field's doc or line comment ("//parbor:guardedby mu" -> "mu").
// found distinguishes a directive with an empty argument from no
// directive at all.
func FieldArg(f *ast.Field, directive string) (arg string, found bool) {
	for _, g := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if name, justification, ok := parse(c); ok && name == directive {
				return justification, true
			}
		}
	}
	return "", false
}

// site records one occurrence of a directive.
type site struct {
	pos  token.Pos
	name string
}

// Index holds every //parbor:* directive of one package, resolved to
// file positions, plus the position ranges of functions whose doc
// comments carry directives.
type Index struct {
	fset *token.FileSet
	// lines maps directive name -> file -> set of line numbers the
	// directive suppresses (its own line and the line below it, so a
	// comment above a statement covers the statement).
	lines map[string]map[*token.File]map[int]bool
	// funcs maps directive name -> list of [pos, end] ranges of
	// functions annotated via their doc comment.
	funcs map[string][][2]token.Pos
	// bare lists directives that require a justification but have
	// none (wallclock and rawfs).
	bare []site
}

// NewIndex scans the files of one package.
func NewIndex(fset *token.FileSet, files []*ast.File) *Index {
	ix := &Index{
		fset:  fset,
		lines: make(map[string]map[*token.File]map[int]bool),
		funcs: make(map[string][][2]token.Pos),
	}
	for _, f := range files {
		tf := fset.File(f.Pos())
		if tf == nil {
			continue
		}
		for _, g := range f.Comments {
			for _, c := range g.List {
				name, justification, ok := parse(c)
				if !ok {
					continue
				}
				byFile := ix.lines[name]
				if byFile == nil {
					byFile = make(map[*token.File]map[int]bool)
					ix.lines[name] = byFile
				}
				set := byFile[tf]
				if set == nil {
					set = make(map[int]bool)
					byFile[tf] = set
				}
				line := tf.Line(c.Pos())
				set[line] = true
				set[line+1] = true
				if needsJustification[name] && justification == "" {
					ix.bare = append(ix.bare, site{pos: c.Pos(), name: name})
				}
			}
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if name, _, ok := parse(c); ok {
						ix.funcs[name] = append(ix.funcs[name], [2]token.Pos{fd.Pos(), fd.End()})
					}
				}
			}
		}
	}
	return ix
}

// SuppressedAt reports whether a diagnostic at pos is covered by the
// named directive: same line, the line directly below the directive,
// or anywhere inside a function annotated via its doc comment.
func (ix *Index) SuppressedAt(directive string, pos token.Pos) bool {
	tf := ix.fset.File(pos)
	if tf != nil {
		if set := ix.lines[directive][tf]; set != nil && set[tf.Line(pos)] {
			return true
		}
	}
	for _, r := range ix.funcs[directive] {
		if r[0] <= pos && pos < r[1] {
			return true
		}
	}
	return false
}

// BarePositions returns the positions of the named directive's
// occurrences that demand a justification but carry none.
func (ix *Index) BarePositions(directive string) []token.Pos {
	var out []token.Pos
	for _, s := range ix.bare {
		if s.name == directive {
			out = append(out, s.pos)
		}
	}
	return out
}
