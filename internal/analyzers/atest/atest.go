// Package atest runs parborvet end-to-end over self-contained fixture
// modules and checks the diagnostics against // want comments. It is a
// minimal stand-in for golang.org/x/tools/go/analysis/analysistest,
// which the vendored offline subset of x/tools does not include — and
// unlike analysistest it exercises the real vet pipeline
// (`go vet -json -vettool=parborvet`), so the unitchecker protocol and
// analyzer registration are under test too, not just the Run funcs.
//
// Fixtures live in testdata directories (which the go tool ignores) as
// complete modules with their own go.mod, mirroring the repository's
// internal/<pkg> layout so the analyzers' path-tail scoping applies to
// them exactly as it does to the real tree.
//
// Expectation syntax, anchored to the line the comment sits on:
//
//	t := time.Now() // want simdeterminism `breaks seed-determinism`
//
// Each want names the analyzer and a regexp (backquoted, or quoted
// with the usual escapes) that the diagnostic message must match.
// Every diagnostic must be claimed by a want and every want must be
// hit by a diagnostic, so files and lines without wants assert
// analyzer silence — the non-firing half of each case.
package atest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// Diag is one parborvet diagnostic, resolved to file and line.
type Diag struct {
	File     string
	Line     int
	Analyzer string
	Message  string
}

var (
	binOnce sync.Once
	binPath string
	binErr  error
)

// Binary builds cmd/parborvet once per test binary and returns the
// path of the executable.
func Binary(t *testing.T) string {
	t.Helper()
	binOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			binErr = err
			return
		}
		dir, err := os.MkdirTemp("", "parborvet-atest-")
		if err != nil {
			binErr = err
			return
		}
		binPath = filepath.Join(dir, "parborvet")
		cmd := exec.Command("go", "build", "-o", binPath, "./cmd/parborvet")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			binErr = fmt.Errorf("building parborvet: %v\n%s", err, out)
		}
	})
	if binErr != nil {
		t.Fatal(binErr)
	}
	return binPath
}

// moduleRoot finds the enclosing module's directory, so Binary works
// no matter which test package's directory is the current one.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("atest: not inside a module")
	}
	return filepath.Dir(gomod), nil
}

// fixtureEnv returns the environment for go commands run inside a
// fixture module. The fixtures are dependency-free, so any vendor-mode
// GOFLAGS inherited from the parent module must not leak in, and
// go.work files are ignored.
func fixtureEnv() []string {
	return append(os.Environ(), "GOFLAGS=", "GOWORK=off")
}

// Vet runs `go vet -json -vettool=parborvet ./...` over the fixture
// module at dir and returns the parsed diagnostics. JSON mode exits
// zero even with findings, so callers judge by the diagnostics, not
// the exit code (VetFails checks the plain-mode exit).
func Vet(t *testing.T, dir string) []Diag {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-json", "-vettool="+Binary(t), "./...")
	cmd.Dir = abs
	cmd.Env = fixtureEnv()
	// go vet -json writes everything — `# pkg` progress lines and the
	// JSON stream — to stderr.
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go vet -json in %s: %v\n%s", dir, err, out)
	}
	diags, err := parseJSON(out)
	if err != nil {
		t.Fatalf("parsing go vet -json output: %v\noutput:\n%s", err, out)
	}
	return diags
}

// VetFails runs plain `go vet -vettool=parborvet ./...` (no -json) —
// the exact invocation CI and `make vet` use — over the module at dir
// and reports whether vet exited nonzero, with its combined output.
func VetFails(t *testing.T, dir string) (bool, string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+Binary(t), "./...")
	cmd.Dir = abs
	cmd.Env = fixtureEnv()
	out, err := cmd.CombinedOutput()
	return err != nil, string(out)
}

// parseJSON decodes the -json output stream: `# pkg` progress lines
// interleaved with concatenated JSON objects, each mapping package
// path -> analyzer name -> diagnostics.
func parseJSON(raw []byte) ([]Diag, error) {
	var kept [][]byte
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if bytes.HasPrefix(line, []byte("#")) {
			continue
		}
		kept = append(kept, line)
	}
	dec := json.NewDecoder(bytes.NewReader(bytes.Join(kept, []byte("\n"))))
	var diags []Diag
	for {
		var unit map[string]map[string][]struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		err := dec.Decode(&unit)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for _, byAnalyzer := range unit {
			for analyzer, list := range byAnalyzer {
				for _, d := range list {
					file, line, err := splitPosn(d.Posn)
					if err != nil {
						return nil, err
					}
					diags = append(diags, Diag{File: file, Line: line, Analyzer: analyzer, Message: d.Message})
				}
			}
		}
	}
	return diags, nil
}

// splitPosn splits a "file:line:col" position.
func splitPosn(posn string) (string, int, error) {
	rest := posn
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		rest = rest[:i] // drop the column
	}
	i := strings.LastIndexByte(rest, ':')
	if i < 0 {
		return "", 0, fmt.Errorf("malformed position %q", posn)
	}
	line, err := strconv.Atoi(rest[i+1:])
	if err != nil {
		return "", 0, fmt.Errorf("malformed position %q: %v", posn, err)
	}
	return filepath.Clean(rest[:i]), line, nil
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file     string
	line     int
	analyzer string
	re       *regexp.Regexp
	raw      string
	hit      bool
}

// wantRe matches `want <analyzer> <regexp>` with the pattern either
// backquoted or double-quoted.
var wantRe = regexp.MustCompile("want ([a-zA-Z0-9_]+) (`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// parseWants scans every .go file under dir for want comments.
func parseWants(dir string) ([]*want, error) {
	var wants []*want
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				pattern := m[2]
				if pattern[0] == '`' {
					pattern = pattern[1 : len(pattern)-1]
				} else {
					pattern, err = strconv.Unquote(pattern)
					if err != nil {
						return fmt.Errorf("%s:%d: bad want pattern %s: %v", path, i+1, m[2], err)
					}
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want pattern %s: %v", path, i+1, m[2], err)
				}
				wants = append(wants, &want{
					file:     filepath.Clean(path),
					line:     i + 1,
					analyzer: m[1],
					re:       re,
					raw:      m[0],
				})
			}
		}
		return nil
	})
	return wants, err
}

// claim marks the first unhit want matching d and reports success.
func claim(wants []*want, d Diag) bool {
	for _, w := range wants {
		if !w.hit && w.file == d.File && w.line == d.Line &&
			w.analyzer == d.Analyzer && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// Run vets the fixture module at dir and matches the diagnostics
// against the fixture's want comments: every diagnostic must be
// claimed by a want on its exact file and line, and every want must
// be hit by a diagnostic.
func Run(t *testing.T, dir string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants, err := parseWants(abs)
	if err != nil {
		t.Fatal(err)
	}
	diags := Vet(t, abs)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic %s:%d: %s: %s", rel(abs, d.File), d.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("no diagnostic matched want at %s:%d: %s", rel(abs, w.file), w.line, w.raw)
		}
	}
}

// rel shortens file for error messages.
func rel(base, file string) string {
	if r, err := filepath.Rel(base, file); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return file
}
