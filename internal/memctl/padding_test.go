package memctl

import (
	"reflect"
	"testing"

	"parbor/internal/coupling"
	"parbor/internal/dram"
	"parbor/internal/scramble"
)

// paddedModule is a module whose 96-cell rows leave 32 padding bits in
// the second storage word. The toy vendor's 16-bit scrambling chunk is
// the only one narrow enough for a non-multiple-of-64 width.
func paddedModule(t *testing.T) *dram.Module {
	t.Helper()
	mod, err := dram.NewModule(dram.ModuleConfig{
		Vendor:   scramble.VendorToy,
		Chips:    2,
		Geometry: dram.Geometry{Banks: 1, Rows: 16, Cols: 96},
		Coupling: coupling.Config{VulnerableRate: 0, RetentionMinMs: 1, RetentionMaxMs: 1},
		Seed:     5,
	})
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	return mod
}

// TestPaddedGeometryMasksPaddingBits: with Cols=96 the high 32 bits of
// word 1 are padding. A written buffer and a later expected buffer
// that differ ONLY in those bits must compare clean — padding bits are
// not cells and must never surface as failures.
func TestPaddedGeometryMasksPaddingBits(t *testing.T) {
	host, err := NewHost(paddedModule(t), 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	if got := host.Geometry().Words(); got != 2 {
		t.Fatalf("Words() = %d for Cols=96, want 2", got)
	}
	rows := []Row{{Chip: 0, Bank: 0, Row: 1}, {Chip: 1, Bank: 0, Row: 2}}
	written := []uint64{0xffffffffffffffff, 0xdead0000ffffffff} // garbage in padding
	fails, err := host.Pass(rows, [][]uint64{written, written})
	if err != nil {
		t.Fatalf("Pass: %v", err)
	}
	if len(fails) != 0 {
		t.Fatalf("clean padded pass reported %v", fails)
	}

	// Same real cells, different padding bits.
	expected := []uint64{0xffffffffffffffff, 0x1234c0deffffffff}
	fails, err = host.Verify(rows, [][]uint64{expected, expected}, 1)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if len(fails) != 0 {
		t.Fatalf("padding-bit difference surfaced as failures: %v", fails)
	}
}

// TestPaddedGeometryReportsRealLastColumn: masking must stop exactly
// at the padding boundary — a genuine mismatch at the last real cell
// (col 95, bit 31 of word 1) is still a failure.
func TestPaddedGeometryReportsRealLastColumn(t *testing.T) {
	host, err := NewHost(paddedModule(t), 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	rows := []Row{{Chip: 0, Bank: 0, Row: 4}}
	written := []uint64{^uint64(0), ^uint64(0)}
	if _, err := host.Pass(rows, [][]uint64{written}); err != nil {
		t.Fatalf("Pass: %v", err)
	}
	expected := []uint64{^uint64(0), ^uint64(0) &^ (1 << 31)} // col 95 expected 0, stored 1
	fails, err := host.Verify(rows, [][]uint64{expected}, 1)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	want := []BitAddr{{Chip: 0, Bank: 0, Row: 4, Col: 95}}
	if !reflect.DeepEqual(fails, want) {
		t.Fatalf("fails = %v, want %v", fails, want)
	}
	for _, f := range fails {
		if f.Col >= 96 {
			t.Fatalf("failure %v addresses a padding bit", f)
		}
	}
}

// bytesToWords packs b into n little-endian words, zero-padding.
func bytesToWords(b []byte, n int) []uint64 {
	out := make([]uint64, n)
	for i, v := range b {
		if i >= n*8 {
			break
		}
		out[i/8] |= uint64(v) << (8 * (i % 8))
	}
	return out
}

// FuzzAppendMismatches diffs the word-at-a-time mismatch scan against
// a naive per-bit oracle across arbitrary buffer contents and row
// widths, including widths that leave padding bits in the last word.
func FuzzAppendMismatches(f *testing.F) {
	f.Add(uint16(96), []byte{0xff, 0x01}, []byte{0x0f, 0x10})
	f.Add(uint16(64), []byte{}, []byte{0x80})
	f.Add(uint16(1), []byte{0x01}, []byte{0x02})
	f.Add(uint16(130), []byte{0xaa, 0xbb, 0xcc}, []byte{0xdd})
	f.Fuzz(func(t *testing.T, colsRaw uint16, wantB, gotB []byte) {
		cols := int(colsRaw)%512 + 1
		g := dram.Geometry{Banks: 1, Rows: 1, Cols: cols}
		words := g.Words()
		want := bytesToWords(wantB, words)
		got := bytesToWords(gotB, words)
		r := Row{Chip: 1, Bank: 2, Row: 3}

		fails := appendMismatches(nil, r, want, got, g.LastWordMask())

		var oracle []BitAddr
		for c := 0; c < cols; c++ {
			wb := (want[c/64] >> (c % 64)) & 1
			gb := (got[c/64] >> (c % 64)) & 1
			if wb != gb {
				oracle = append(oracle, BitAddr{Chip: 1, Bank: 2, Row: 3, Col: int32(c)})
			}
		}
		if !reflect.DeepEqual(fails, oracle) {
			t.Fatalf("cols=%d: appendMismatches = %v, oracle = %v", cols, fails, oracle)
		}
	})
}
