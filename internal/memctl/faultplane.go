package memctl

import (
	"errors"
	"fmt"
	"strings"
)

// FaultPlane injects controller-side faults into host passes: bus
// glitches, stuck chips, stalled ranks — the transient and permanent
// error modes a field deployment sees in front of the cell array,
// which the cell-level models in internal/faults deliberately do not
// cover. The host consults the plane immediately before every row
// write and row read it issues; a non-nil error aborts the remaining
// work of that chip's shard and fails the pass with a *PassError.
//
// Implementations must be safe for concurrent use (the host shards
// per-chip work across a worker pool) and must be deterministic
// functions of their own seed and the (pass, row) arguments, never of
// scheduling order — the resilience tests rely on a faulted run being
// exactly reproducible. A plane may also stall inside a hook to model
// shard latency faults; the host tolerates arbitrary hook latency.
//
// A nil plane is the default and costs one nil check per row; the
// fault-free path is bit-identical with or without a plane attached
// (hooks observe, fail, or stall — they never mutate host or chip
// state).
type FaultPlane interface {
	// BeforeWrite is consulted before the host writes row r in host
	// pass number pass (the value Passes() held when the pass
	// started). Returning a non-nil error fails the write.
	BeforeWrite(pass int, r Row) error
	// BeforeRead is consulted before the host reads row r back.
	// Returning a non-nil error fails the read.
	BeforeRead(pass int, r Row) error
}

// transient is the classification interface fault errors implement:
// a transient fault is expected to clear on retry, a non-transient
// one (a dead chip) is not.
type transient interface{ Transient() bool }

// IsTransient reports whether err is classified as transient. For a
// *PassError this is its aggregate classification (every chip fault
// transient). Errors with no classification anywhere (including nil)
// are not transient: a retry policy must not spin on errors it does
// not understand.
func IsTransient(err error) bool {
	var t transient
	return errors.As(err, &t) && t.Transient()
}

// ChipFault is one fault-plane rejection, annotated with the chip,
// operation and row the host was driving when the plane fired.
type ChipFault struct {
	Chip int
	Op   string // "write" or "read"
	Row  Row
	Err  error // the fault plane's error
}

// Error implements error.
func (f *ChipFault) Error() string {
	return fmt.Sprintf("memctl: chip %d: %s of bank %d row %d: %v", f.Chip, f.Op, f.Row.Bank, f.Row.Row, f.Err)
}

// Unwrap exposes the plane's error for errors.Is/As.
func (f *ChipFault) Unwrap() error { return f.Err }

// Transient forwards the plane error's classification; an
// unclassified fault is permanent.
func (f *ChipFault) Transient() bool {
	var t transient
	return errors.As(f.Err, &t) && t.Transient()
}

// PassError fails a pass whose per-chip shards hit fault-plane
// rejections. Faults are in ascending chip order with at most one
// fault per chip (a shard aborts at its first fault), so the error a
// faulted pass returns is deterministic regardless of worker
// scheduling.
type PassError struct {
	Faults []*ChipFault
}

// Error implements error.
func (e *PassError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "memctl: pass failed on %d chip(s):", len(e.Faults))
	for _, f := range e.Faults {
		fmt.Fprintf(&b, " [%v]", f)
	}
	return b.String()
}

// Transient reports whether every chip fault is transient, i.e.
// whether retrying the whole pass can be expected to succeed.
func (e *PassError) Transient() bool {
	for _, f := range e.Faults {
		if !f.Transient() {
			return false
		}
	}
	return len(e.Faults) > 0
}

// Chips returns the ascending chip indices that faulted.
func (e *PassError) Chips() []int {
	out := make([]int, len(e.Faults))
	for i, f := range e.Faults {
		out[i] = f.Chip
	}
	return out
}

// FaultedChips extracts the chip set from a pass or chip fault error,
// for quarantine policies. ok is false when err carries no chip
// attribution.
func FaultedChips(err error) (chips []int, ok bool) {
	var pe *PassError
	if errors.As(err, &pe) {
		return pe.Chips(), true
	}
	var cf *ChipFault
	if errors.As(err, &cf) {
		return []int{cf.Chip}, true
	}
	return nil, false
}
