package memctl

import (
	"testing"
	"time"

	"parbor/internal/coupling"
	"parbor/internal/dram"
	"parbor/internal/faults"
	"parbor/internal/scramble"
)

func cleanModule(t *testing.T) *dram.Module {
	t.Helper()
	mod, err := dram.NewModule(dram.ModuleConfig{
		Vendor:   scramble.VendorA,
		Chips:    2,
		Geometry: dram.Geometry{Banks: 1, Rows: 16, Cols: 1024},
		Coupling: coupling.Config{VulnerableRate: 0, RetentionMinMs: 1, RetentionMaxMs: 1},
		Seed:     3,
	})
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	return mod
}

func weakModule(t *testing.T) *dram.Module {
	t.Helper()
	mod, err := dram.NewModule(dram.ModuleConfig{
		Vendor:   scramble.VendorA,
		Chips:    1,
		Geometry: dram.Geometry{Banks: 1, Rows: 64, Cols: 1024},
		Coupling: coupling.Config{VulnerableRate: 0, RetentionMinMs: 1, RetentionMaxMs: 1},
		Faults:   faults.Config{WeakCellRate: 0.01},
		Seed:     4,
	})
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	return mod
}

func TestPassNoFailuresOnCleanModule(t *testing.T) {
	host, err := NewHost(cleanModule(t), 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	data := make([]uint64, host.Geometry().Words())
	for i := range data {
		data[i] = 0xdeadbeefcafef00d
	}
	fails, err := host.Pass(
		[]Row{{Chip: 0, Bank: 0, Row: 3}, {Chip: 1, Bank: 0, Row: 5}},
		[][]uint64{data, data},
	)
	if err != nil {
		t.Fatalf("Pass: %v", err)
	}
	if len(fails) != 0 {
		t.Errorf("clean module produced %d failures", len(fails))
	}
	if host.Passes() != 1 {
		t.Errorf("Passes() = %d, want 1", host.Passes())
	}
}

func TestFullPassDetectsWeakCells(t *testing.T) {
	host, err := NewHost(weakModule(t), 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	// All-ones charges every true-cell row; weak cells in those rows
	// must flip and be reported with correct addresses.
	fails := host.FullPass(func(_ Row, buf []uint64) {
		for i := range buf {
			buf[i] = ^uint64(0)
		}
	})
	if len(fails) == 0 {
		t.Fatal("no failures detected on module with 1% weak cells")
	}
	g := host.Geometry()
	for _, f := range fails {
		if f.Chip != 0 || f.Bank != 0 || int(f.Row) >= g.Rows || int(f.Col) >= g.Cols {
			t.Fatalf("failure address out of range: %+v", f)
		}
	}
}

func TestPassValidation(t *testing.T) {
	host, err := NewHost(cleanModule(t), 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	if _, err := host.Pass([]Row{{}}, nil); err == nil {
		t.Error("mismatched rows/data accepted")
	}
	if _, err := host.Pass([]Row{{}}, [][]uint64{make([]uint64, 3)}); err == nil {
		t.Error("short data buffer accepted")
	}
}

func TestNewHostValidation(t *testing.T) {
	if _, err := NewHost(nil, 0); err == nil {
		t.Error("nil module accepted")
	}
	if _, err := NewHost(cleanModule(t), -5); err == nil {
		t.Error("negative wait accepted")
	}
}

func TestHostDefaults(t *testing.T) {
	host, err := NewHost(cleanModule(t), 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	if host.WaitMs() != DefaultWaitMs {
		t.Errorf("WaitMs() = %v, want %v", host.WaitMs(), DefaultWaitMs)
	}
	if host.Chips() != 2 {
		t.Errorf("Chips() = %d, want 2", host.Chips())
	}
}

// TestAppendixTimingNumbers pins the Appendix arithmetic: a 2 GB
// module (8 chips, 8 banks x 32K rows x 8K cols) takes 667.5 ns per
// row, 174.98 ms per sweep and 413.96 ms per 64 ms pass.
func TestAppendixTimingNumbers(t *testing.T) {
	tm := DDR3_1600()

	if got := tm.RowAccessTime(8192); got < 667*time.Nanosecond || got > 668*time.Nanosecond {
		t.Errorf("RowAccessTime(8KB) = %v, want 667.5ns", got)
	}
	if got := tm.TwoBlockAccessTime(); got < 37*time.Nanosecond || got > 38*time.Nanosecond {
		t.Errorf("TwoBlockAccessTime() = %v, want 37.5ns", got)
	}

	paperGeom := dram.Geometry{Banks: 8, Rows: 32768, Cols: 8192}
	pass := tm.ModulePassTime(paperGeom, 8, 64)
	if pass < 413*time.Millisecond || pass > 415*time.Millisecond {
		t.Errorf("ModulePassTime = %v, want about 413.96ms", pass)
	}
	// Exact value: the fractional 667.5 ns per row must survive the
	// multiplication by 262144 rows — 2*262144*667.5ns + 64ms.
	// Truncating per-row first (the old bug) loses 262µs per pass.
	if want := 413962240 * time.Nanosecond; pass != want {
		t.Errorf("ModulePassTime = %v, want exactly %v (no per-row truncation)", pass, want)
	}
	if got := tm.RowAccessNs(8192); got != 667.5 {
		t.Errorf("RowAccessNs(8KB) = %v, want 667.5", got)
	}

	// 92 and 132 tests must land on the paper's 38-55 s range.
	if lo := 92 * pass; lo < 36*time.Second || lo > 40*time.Second {
		t.Errorf("92 passes = %v, want about 38s", lo)
	}
	if hi := 132 * pass; hi < 53*time.Second || hi > 57*time.Second {
		t.Errorf("132 passes = %v, want about 55s", hi)
	}
}

func TestTimeEstimateCountsPasses(t *testing.T) {
	host, err := NewHost(cleanModule(t), 64)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	data := make([]uint64, host.Geometry().Words())
	for i := 0; i < 3; i++ {
		if _, err := host.Pass([]Row{{Chip: 0, Bank: 0, Row: 0}}, [][]uint64{data}); err != nil {
			t.Fatalf("Pass: %v", err)
		}
	}
	per := DDR3_1600().ModulePassTime(host.Geometry(), host.Chips(), 64)
	if got, want := host.TimeEstimate(DDR3_1600()), 3*per; got != want {
		t.Errorf("TimeEstimate = %v, want %v", got, want)
	}
}
