package memctl

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"parbor/internal/coupling"
	"parbor/internal/dram"
	"parbor/internal/faults"
	"parbor/internal/scramble"
)

// failyModule builds a module with a dense failure population so the
// determinism tests compare non-trivial failure sets.
func failyModule(t *testing.T, v scramble.Vendor, seed uint64) *dram.Module {
	t.Helper()
	cc := coupling.DefaultConfig()
	cc.VulnerableRate = 5e-3
	mod, err := dram.NewModule(dram.ModuleConfig{
		Name:     fmt.Sprintf("par-%d-%d", v, seed),
		Vendor:   v,
		Chips:    4,
		Geometry: dram.Geometry{Banks: 2, Rows: 32, Cols: 1024},
		Coupling: cc,
		Faults:   faults.DefaultConfig(),
		Seed:     seed,
	})
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	return mod
}

func checker(r Row, buf []uint64) {
	for i := range buf {
		buf[i] = 0xaaaaaaaaaaaaaaaa
	}
}

// TestFullPassParallelMatchesSerial is the tentpole's determinism
// guarantee: for every vendor and several seeds, a host sharding its
// per-chip sweeps across a worker pool must return exactly the
// []BitAddr the serial host returns — same order, same contents —
// and that order must be sorted by (chip, bank, row, col).
func TestFullPassParallelMatchesSerial(t *testing.T) {
	for _, v := range scramble.Vendors() {
		for _, seed := range []uint64{1, 7, 42} {
			serialHost, err := NewHostWithConfig(failyModule(t, v, seed), HostConfig{WaitMs: 512, Parallelism: 1})
			if err != nil {
				t.Fatalf("serial host: %v", err)
			}
			parHost, err := NewHostWithConfig(failyModule(t, v, seed), HostConfig{WaitMs: 512, Parallelism: 8})
			if err != nil {
				t.Fatalf("parallel host: %v", err)
			}
			for pass := 0; pass < 3; pass++ {
				want := serialHost.FullPassWithWait(checker, 512)
				got := parHost.FullPassWithWait(checker, 512)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("vendor %v seed %d pass %d: parallel fullpass diverged (%d vs %d failures)",
						v, seed, pass, len(got), len(want))
				}
				if pass == 0 && len(want) == 0 {
					t.Fatalf("vendor %v seed %d: degenerate test, no failures at all", v, seed)
				}
				if !sort.SliceIsSorted(want, func(i, j int) bool { return bitAddrLess(want[i], want[j]) }) {
					t.Fatalf("vendor %v seed %d: fullpass output not sorted by chip/bank/row/col", v, seed)
				}
			}
		}
	}
}

func bitAddrLess(a, b BitAddr) bool {
	if a.Chip != b.Chip {
		return a.Chip < b.Chip
	}
	if a.Bank != b.Bank {
		return a.Bank < b.Bank
	}
	if a.Row != b.Row {
		return a.Row < b.Row
	}
	return a.Col < b.Col
}

// TestPassParallelMatchesSerial covers the row-list path (Pass /
// PassWithWait) including rows interleaved across chips in
// caller-chosen order, and the Verify path on the same rows.
func TestPassParallelMatchesSerial(t *testing.T) {
	for _, v := range scramble.Vendors() {
		for _, seed := range []uint64{3, 11} {
			serialHost, err := NewHostWithConfig(failyModule(t, v, seed), HostConfig{WaitMs: 512, Parallelism: 1})
			if err != nil {
				t.Fatalf("serial host: %v", err)
			}
			parHost, err := NewHostWithConfig(failyModule(t, v, seed), HostConfig{WaitMs: 512, Parallelism: 8})
			if err != nil {
				t.Fatalf("parallel host: %v", err)
			}
			words := serialHost.Geometry().Words()
			var rows []Row
			var data [][]uint64
			// Deliberately interleave chips and banks out of order.
			for _, r := range []Row{
				{Chip: 3, Bank: 1, Row: 5}, {Chip: 0, Bank: 0, Row: 9},
				{Chip: 2, Bank: 0, Row: 1}, {Chip: 0, Bank: 1, Row: 30},
				{Chip: 1, Bank: 1, Row: 17}, {Chip: 3, Bank: 0, Row: 2},
				{Chip: 2, Bank: 1, Row: 31}, {Chip: 1, Bank: 0, Row: 0},
			} {
				buf := make([]uint64, words)
				for i := range buf {
					buf[i] = ^uint64(0)
				}
				rows = append(rows, r)
				data = append(data, buf)
			}
			want, err := serialHost.PassWithWait(rows, data, 512)
			if err != nil {
				t.Fatalf("serial pass: %v", err)
			}
			got, err := parHost.PassWithWait(rows, data, 512)
			if err != nil {
				t.Fatalf("parallel pass: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("vendor %v seed %d: parallel pass diverged (%d vs %d failures)", v, seed, len(got), len(want))
			}

			wantV, err := serialHost.Verify(rows, data, 512)
			if err != nil {
				t.Fatalf("serial verify: %v", err)
			}
			gotV, err := parHost.Verify(rows, data, 512)
			if err != nil {
				t.Fatalf("parallel verify: %v", err)
			}
			if !reflect.DeepEqual(gotV, wantV) {
				t.Fatalf("vendor %v seed %d: parallel verify diverged (%d vs %d failures)", v, seed, len(gotV), len(wantV))
			}
		}
	}
}

// TestHostConfigValidation pins the HostConfig error cases and the
// effective parallelism cap.
func TestHostConfigValidation(t *testing.T) {
	mod := failyModule(t, scramble.VendorA, 1)
	if _, err := NewHostWithConfig(mod, HostConfig{Parallelism: -1}); err == nil {
		t.Error("negative parallelism accepted")
	}
	if _, err := NewHostWithConfig(nil, HostConfig{}); err == nil {
		t.Error("nil module accepted")
	}
	if _, err := NewHostWithConfig(mod, HostConfig{WaitMs: -1}); err == nil {
		t.Error("negative wait accepted")
	}
	h, err := NewHostWithConfig(mod, HostConfig{Parallelism: 64})
	if err != nil {
		t.Fatalf("NewHostWithConfig: %v", err)
	}
	if got := h.Parallelism(); got != mod.Chips() {
		t.Errorf("Parallelism() = %d, want capped at %d chips", got, mod.Chips())
	}
	if h.WaitMs() != DefaultWaitMs {
		t.Errorf("WaitMs() = %v, want default %v", h.WaitMs(), DefaultWaitMs)
	}
}

// TestFullPassGenPanicPropagates checks that a panic in the caller's
// pattern generator still reaches the caller when it fires on a
// worker goroutine instead of wedging or killing the process.
func TestFullPassGenPanicPropagates(t *testing.T) {
	h, err := NewHostWithConfig(failyModule(t, scramble.VendorA, 1), HostConfig{WaitMs: 64, Parallelism: 4})
	if err != nil {
		t.Fatalf("NewHostWithConfig: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("gen panic did not propagate")
		}
	}()
	h.FullPass(func(r Row, buf []uint64) { panic("bad gen") })
}
