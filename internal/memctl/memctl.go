// Package memctl implements the system-level test host: the software
// that drives write-wait-read test passes against a DRAM module
// through the memory controller, counts tests, and estimates their
// wall-clock cost with the DDR3 timing model of the paper's Appendix.
//
// The host deliberately exposes only what a real memory controller
// exposes — row writes, a retention wait, and read-back mismatch
// detection. The detection algorithm (package core) runs entirely on
// top of this interface and therefore cannot cheat by inspecting the
// simulated chip's internals.
package memctl

import (
	"fmt"
	"math/bits"
	"time"

	"parbor/internal/dram"
)

// Row identifies one row of one chip in the module.
type Row struct {
	Chip int
	Bank int
	Row  int
}

// BitAddr identifies one cell in the module by system address.
type BitAddr struct {
	Chip int16
	Bank int16
	Row  int32
	Col  int32
}

// Host drives test passes against a module.
//
// Host is not safe for concurrent use.
type Host struct {
	mod    *dram.Module
	waitMs float64
	passes int

	scratch []uint64
}

// DefaultWaitMs is the retention wait used by the paper's detection
// experiments: a 4 s refresh interval (4 s at 45 degC corresponds to
// 328 ms at 85 degC), which ensures cells hold minimal charge when
// read and all coupling-vulnerable cells are past their thresholds.
const DefaultWaitMs = 4000

// NewHost wraps a module. waitMs is the retention wait applied
// between the write and read halves of every pass; zero selects
// DefaultWaitMs.
func NewHost(mod *dram.Module, waitMs float64) (*Host, error) {
	if mod == nil {
		return nil, fmt.Errorf("memctl: nil module")
	}
	if waitMs == 0 {
		waitMs = DefaultWaitMs
	}
	if waitMs < 0 {
		return nil, fmt.Errorf("memctl: negative wait %v", waitMs)
	}
	return &Host{
		mod:     mod,
		waitMs:  waitMs,
		scratch: make([]uint64, mod.Geometry().Words()),
	}, nil
}

// Geometry returns the per-chip layout of the module under test.
func (h *Host) Geometry() dram.Geometry { return h.mod.Geometry() }

// Chips returns the number of chips in the module.
func (h *Host) Chips() int { return h.mod.Chips() }

// Passes returns the number of write-wait-read test passes performed
// so far. This is the paper's "number of tests".
func (h *Host) Passes() int { return h.passes }

// WaitMs returns the configured retention wait in milliseconds.
func (h *Host) WaitMs() float64 { return h.waitMs }

// Pass writes data[i] to rows[i], waits the retention interval, reads
// the rows back and returns every mismatched bit address. It counts
// as one test regardless of how many rows it touches: on real
// hardware all rows are written back-to-back and share the single
// retention wait (this is what makes PARBOR's parallel-row testing
// cheap, Section 4.2).
func (h *Host) Pass(rows []Row, data [][]uint64) ([]BitAddr, error) {
	return h.PassWithWait(rows, data, h.waitMs)
}

// PassWithWait is Pass with an explicit retention wait, used by
// retention-time profiling (package retention), which sweeps the wait
// instead of testing at one fixed interval.
func (h *Host) PassWithWait(rows []Row, data [][]uint64, waitMs float64) ([]BitAddr, error) {
	if len(rows) != len(data) {
		return nil, fmt.Errorf("memctl: %d rows but %d data buffers", len(rows), len(data))
	}
	if waitMs < 0 {
		return nil, fmt.Errorf("memctl: negative wait %v", waitMs)
	}
	words := h.mod.Geometry().Words()
	for i, r := range rows {
		if len(data[i]) != words {
			return nil, fmt.Errorf("memctl: row %d: data has %d words, want %d", i, len(data[i]), words)
		}
		h.mod.Chip(r.Chip).WriteRow(r.Bank, r.Row, data[i])
	}
	h.mod.Wait(waitMs)
	h.autoRefreshExcept(rows)
	h.passes++

	var fails []BitAddr
	for i, r := range rows {
		h.mod.Chip(r.Chip).ReadRow(r.Bank, r.Row, h.scratch)
		fails = h.appendMismatches(fails, r, data[i])
	}
	return fails, nil
}

// autoRefreshExcept models the auto-refresh that keeps running for
// every row not paused for the current test: those rows never
// accumulate retention time across passes. The rows under test are
// excluded — their decay is the point of the wait.
func (h *Host) autoRefreshExcept(rows []Row) {
	perChip := make(map[int]map[int]struct{})
	for _, r := range rows {
		m := perChip[r.Chip]
		if m == nil {
			m = make(map[int]struct{})
			perChip[r.Chip] = m
		}
		m[h.mod.Chip(r.Chip).FlatRowIndex(r.Bank, r.Row)] = struct{}{}
	}
	for chip := 0; chip < h.mod.Chips(); chip++ {
		h.mod.Chip(chip).AutoRefresh(perChip[chip])
	}
}

// ReadRowInto reads a row's current contents into dst without any
// retention wait — the plain load path, used e.g. to save live data
// before an online test epoch (package onlinetest).
func (h *Host) ReadRowInto(r Row, dst []uint64) error {
	if len(dst) != h.mod.Geometry().Words() {
		return fmt.Errorf("memctl: dst has %d words, want %d", len(dst), h.mod.Geometry().Words())
	}
	h.mod.Chip(r.Chip).ReadRow(r.Bank, r.Row, dst)
	return nil
}

// Verify waits, then reads the rows and diffs them against expected —
// without writing first. Test sequences whose semantics separate
// writes from delayed reads (March elements, package march) need
// this; Pass would re-charge the cells and mask retention failures.
// It counts as one test.
func (h *Host) Verify(rows []Row, expected [][]uint64, waitMs float64) ([]BitAddr, error) {
	if len(rows) != len(expected) {
		return nil, fmt.Errorf("memctl: %d rows but %d expected buffers", len(rows), len(expected))
	}
	if waitMs < 0 {
		return nil, fmt.Errorf("memctl: negative wait %v", waitMs)
	}
	words := h.mod.Geometry().Words()
	for i := range expected {
		if len(expected[i]) != words {
			return nil, fmt.Errorf("memctl: row %d: expected has %d words, want %d", i, len(expected[i]), words)
		}
	}
	if waitMs > 0 {
		h.mod.Wait(waitMs)
		h.autoRefreshExcept(rows)
	}
	h.passes++
	var fails []BitAddr
	for i, r := range rows {
		h.mod.Chip(r.Chip).ReadRow(r.Bank, r.Row, h.scratch)
		fails = h.appendMismatches(fails, r, expected[i])
	}
	return fails, nil
}

// FullPass writes a generated pattern to every row of every chip,
// waits, reads everything back, and returns the mismatched bit
// addresses. gen must be deterministic: it is invoked again during
// the compare phase. It counts as one test.
func (h *Host) FullPass(gen func(r Row, buf []uint64)) []BitAddr {
	return h.FullPassWithWait(gen, h.waitMs)
}

// FullPassWithWait is FullPass with an explicit retention wait.
func (h *Host) FullPassWithWait(gen func(r Row, buf []uint64), waitMs float64) []BitAddr {
	g := h.mod.Geometry()
	buf := make([]uint64, g.Words())
	h.forEachRow(func(r Row) {
		gen(r, buf)
		h.mod.Chip(r.Chip).WriteRow(r.Bank, r.Row, buf)
	})
	h.mod.Wait(waitMs)
	h.passes++

	var fails []BitAddr
	h.forEachRow(func(r Row) {
		gen(r, buf)
		h.mod.Chip(r.Chip).ReadRow(r.Bank, r.Row, h.scratch)
		fails = h.appendMismatches(fails, r, buf)
	})
	return fails
}

func (h *Host) forEachRow(fn func(r Row)) {
	g := h.mod.Geometry()
	for chip := 0; chip < h.mod.Chips(); chip++ {
		for bank := 0; bank < g.Banks; bank++ {
			for row := 0; row < g.Rows; row++ {
				fn(Row{Chip: chip, Bank: bank, Row: row})
			}
		}
	}
}

// appendMismatches diffs the read-back scratch buffer against want
// and appends one BitAddr per flipped bit.
func (h *Host) appendMismatches(fails []BitAddr, r Row, want []uint64) []BitAddr {
	for w, got := range h.scratch {
		diff := got ^ want[w]
		for diff != 0 {
			bit := bits.TrailingZeros64(diff)
			fails = append(fails, BitAddr{
				Chip: int16(r.Chip),
				Bank: int16(r.Bank),
				Row:  int32(r.Row),
				Col:  int32(w*64 + bit),
			})
			diff &= diff - 1
		}
	}
	return fails
}

// TimeEstimate returns the wall-clock duration the passes performed
// so far would take on real hardware, per the Appendix model: each
// pass writes the module, waits the refresh interval, and reads the
// module back.
func (h *Host) TimeEstimate(t Timing) time.Duration {
	per := t.ModulePassTime(h.mod.Geometry(), h.mod.Chips(), h.waitMs)
	return time.Duration(h.passes) * per
}
