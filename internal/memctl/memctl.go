// Package memctl implements the system-level test host: the software
// that drives write-wait-read test passes against a DRAM module
// through the memory controller, counts tests, and estimates their
// wall-clock cost with the DDR3 timing model of the paper's Appendix.
//
// The host deliberately exposes only what a real memory controller
// exposes — row writes, a retention wait, and read-back mismatch
// detection. The detection algorithm (package core) runs entirely on
// top of this interface and therefore cannot cheat by inspecting the
// simulated chip's internals.
package memctl

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"time"

	"parbor/internal/dram"
	"parbor/internal/obs"
	"parbor/internal/par"
)

// Timing-series and counter names the host records into an attached
// obs.Recorder. Exported so report readers and tests can reference
// them without string literals.
const (
	// SeriesPass is the wall time of one whole write-wait-read pass.
	SeriesPass = "host.pass"
	// SeriesWriteSweep and SeriesReadSweep are the wall times of the
	// write and read halves of a pass.
	SeriesWriteSweep = "host.write_sweep"
	SeriesReadSweep  = "host.read_sweep"
	// SeriesChipShard is the per-chip task duration inside the
	// worker pool; its spread exposes shard load imbalance.
	SeriesChipShard = "host.chip_shard"
	// CounterPasses counts test passes, CounterRowsTested the rows
	// written and read back across all passes (full-module sweeps
	// count every row of every chip).
	CounterPasses     = "host.passes"
	CounterRowsTested = "host.rows_tested"
	// CounterPassFaults counts passes that failed on a fault-plane
	// rejection (see FaultPlane); zero on the fault-free path.
	CounterPassFaults = "host.pass_faults"
)

// ctxCheckStride is how many rows a per-chip shard processes between
// cooperative cancellation checks. Checking every row would take the
// context's mutex on the hot path; every 32 rows keeps cancellation
// latency at a handful of microseconds while costing nothing
// measurable.
const ctxCheckStride = 32

// Row identifies one row of one chip in the module.
type Row struct {
	Chip int
	Bank int
	Row  int
}

// BitAddr identifies one cell in the module by system address.
type BitAddr struct {
	Chip int16
	Bank int16
	Row  int32
	Col  int32
}

// RowSource supplies the pattern data of one row of a full-module
// pass. The host aliases the returned slice — it is read during the
// write sweep, never mutated and never retained past the pass — so a
// source may hand the same immutable backing array to every row (see
// patterns.Arena). The read sweep diffs each row against the chip's
// stored copy of that same data (dram.Chip.ReadRowDelta), so the
// source is consulted once per row per pass. The slice must hold
// Geometry().Words() words and must stay unchanged for the duration
// of the pass. Like the gen callback of FullPass, a
// RowSource may be invoked concurrently from per-chip workers
// (always with distinct rows), so it must not mutate shared state.
type RowSource func(r Row) []uint64

// HostConfig tunes a test host.
type HostConfig struct {
	// WaitMs is the retention wait applied between the write and read
	// halves of every pass; zero selects DefaultWaitMs.
	WaitMs float64
	// Parallelism bounds the worker pool the host fans per-chip work
	// out to: 0 selects GOMAXPROCS, 1 forces the serial path. The
	// effective pool is additionally capped at the module's chip
	// count, since one chip is never driven by two workers (the
	// dram.Chip concurrency contract). Results are bit-identical at
	// every setting.
	Parallelism int
	// Recorder, when non-nil, receives pass counters and timing
	// histograms (see the Series*/Counter* names). It observes only;
	// results are bit-identical with or without it.
	Recorder obs.Recorder
	// Faults, when non-nil, is the controller-side fault plane
	// consulted before every row write and read (see FaultPlane;
	// package chaos provides the standard deterministic plane). The
	// fault-free path is bit-identical with or without a plane.
	Faults FaultPlane
}

// Host drives test passes against a module.
//
// Host is not safe for concurrent use: callers issue one pass at a
// time. Internally a pass shards its per-chip write/read sweeps
// across a bounded worker pool (see HostConfig.Parallelism); this is
// safe because distinct dram.Chips share no mutable state, and it is
// deterministic because chips are independent and per-chip results
// are merged in a fixed order, so the output is bit-identical to the
// serial path.
//
// The single-writer contract is also what makes the steady-state
// pass loop allocation-free: every per-pass index and buffer below
// is host-owned scratch, rebuilt in place at the start of each sweep
// instead of freshly allocated, and the per-chip entries are only
// ever touched by the one worker that owns the chip during a pass.
type Host struct {
	mod    *dram.Module
	waitMs float64
	par    int
	passes int
	rec    obs.Recorder
	plane  FaultPlane

	// attempts numbers every pass attempt (and, with a plane
	// attached, every single-row read), including ones that fail: it
	// is the entropy a FaultPlane keys its draws on, so a retried
	// pass sees fresh fault draws rather than deterministically
	// re-hitting the fault that failed it. Distinct from passes,
	// which counts only completed tests (the paper's metric).
	attempts int

	// lastMask is the geometry's LastWordMask, cached so the compare
	// hot loops never recompute it per row.
	lastMask uint64

	// Per-chip buffers: chip i is only ever touched by the one worker
	// that owns it during a pass, so indexing by chip makes the
	// buffers race-free without locking.
	chipScratch [][]uint64 // read-back buffer per chip
	chipPattern [][]uint64 // generated-pattern buffer per chip
	// chipDelta is the per-chip XOR-delta scratch for the full-pass
	// read sweep (dram.Chip.ReadRowDelta). Invariant: all-zero between
	// reads — appendDeltaFails re-zeroes every word it consumes, and a
	// zero toggle count from the chip means the buffer was not touched.
	chipDelta [][]uint64

	// Reusable per-pass scratch (see the Host comment).
	byChip   [][]int      // row-list indices bucketed per chip, caller order
	active   []int        // chips owning >= 1 bucketed row this pass
	slots    []*ChipFault // per-chip fault slots; nil when no plane attached
	perIndex [][]BitAddr  // readAndDiff: failures per row-list index
	perChip  [][]BitAddr  // full pass: failures per chip

	// Per-chip paused-row lists for autoRefreshExcept, reused across
	// passes via [:0]. dram.Chip.AutoRefresh copies what it retains
	// (the packed paused bitset lives chip-side), so one generation of
	// host scratch suffices — the double-buffered map sets the earlier
	// map-based AutoRefresh contract required are gone, and with them
	// the per-row map inserts and hash probes on the pass hot path.
	pausedRows [][]int

	// sweep is the state of the sweep in flight, read by the
	// pre-bound shard methods below. Binding the shard bodies once at
	// construction (method values) and passing state through this
	// struct keeps the hot loop free of the per-pass closure
	// allocations that capturing variables would cost.
	sweep sweepState

	writeRowsFn func(chip int) error
	readRowsFn  func(chip int) error
	writeFullFn func(chip int) error
	readFullFn  func(chip int) error
	activeFn    func(k int) error // dispatches sweep.fn over active[k]
	genFn       RowSource         // adapts sweep.gen to a RowSource
	onShard     func(i int, d time.Duration)
}

// sweepState carries one sweep's inputs to the shard methods. It is
// reset when the pass returns so the host never retains caller
// slices or contexts across passes.
type sweepState struct {
	ctx     context.Context
	attempt int
	rows    []Row                     // row-list sweeps
	data    [][]uint64                // write: data to store; read: expected
	src     RowSource                 // full-module sweeps
	gen     func(r Row, buf []uint64) // legacy generator, via genFn
	fn      func(chip int) error      // shard body dispatched by activeFn
}

// DefaultWaitMs is the retention wait used by the paper's detection
// experiments: a 4 s refresh interval (4 s at 45 degC corresponds to
// 328 ms at 85 degC), which ensures cells hold minimal charge when
// read and all coupling-vulnerable cells are past their thresholds.
const DefaultWaitMs = 4000

// NewHost wraps a module. waitMs is the retention wait applied
// between the write and read halves of every pass; zero selects
// DefaultWaitMs. Per-chip work is parallelized across GOMAXPROCS
// workers; use NewHostWithConfig to pick a different bound.
func NewHost(mod *dram.Module, waitMs float64) (*Host, error) {
	return NewHostWithConfig(mod, HostConfig{WaitMs: waitMs})
}

// NewHostWithConfig wraps a module with explicit host tuning.
func NewHostWithConfig(mod *dram.Module, cfg HostConfig) (*Host, error) {
	if mod == nil {
		return nil, fmt.Errorf("memctl: nil module")
	}
	if cfg.WaitMs == 0 {
		cfg.WaitMs = DefaultWaitMs
	}
	if cfg.WaitMs < 0 {
		return nil, fmt.Errorf("memctl: negative wait %v", cfg.WaitMs)
	}
	if cfg.Parallelism < 0 {
		return nil, fmt.Errorf("memctl: negative parallelism %d", cfg.Parallelism)
	}
	words := mod.Geometry().Words()
	chips := mod.Chips()
	h := &Host{
		mod:         mod,
		waitMs:      cfg.WaitMs,
		par:         cfg.Parallelism,
		rec:         cfg.Recorder,
		plane:       cfg.Faults,
		lastMask:    mod.Geometry().LastWordMask(),
		chipScratch: make([][]uint64, chips),
		chipPattern: make([][]uint64, chips),
		chipDelta:   make([][]uint64, chips),
		byChip:      make([][]int, chips),
		perChip:     make([][]BitAddr, chips),
	}
	for i := 0; i < chips; i++ {
		h.chipScratch[i] = make([]uint64, words)
		h.chipPattern[i] = make([]uint64, words)
		h.chipDelta[i] = make([]uint64, words)
	}
	if cfg.Faults != nil {
		h.slots = make([]*ChipFault, chips)
	}
	h.pausedRows = make([][]int, chips)
	h.writeRowsFn = h.writeRowsShard
	h.readRowsFn = h.readRowsShard
	h.writeFullFn = h.writeFullShard
	h.readFullFn = h.readFullShard
	h.activeFn = h.runActiveShard
	h.genFn = h.genRowSource
	if rec := cfg.Recorder; rec != nil {
		h.onShard = func(_ int, d time.Duration) { rec.ObserveNs(SeriesChipShard, int64(d)) }
	}
	return h, nil
}

// Geometry returns the per-chip layout of the module under test.
func (h *Host) Geometry() dram.Geometry { return h.mod.Geometry() }

// Chips returns the number of chips in the module.
func (h *Host) Chips() int { return h.mod.Chips() }

// Passes returns the number of write-wait-read test passes performed
// so far. This is the paper's "number of tests".
func (h *Host) Passes() int { return h.passes }

// WaitMs returns the configured retention wait in milliseconds.
func (h *Host) WaitMs() float64 { return h.waitMs }

// Attempts returns the host's attempt counter: the entropy an
// attached FaultPlane keys its draws on. A checkpoint that records it
// (parbor/checkpoint/v1 HostAttempts) lets a resumed host replay the
// exact fault schedule an uninterrupted run would have seen.
func (h *Host) Attempts() int { return h.attempts }

// SetAttempts restores an attempt counter captured by Attempts on a
// freshly constructed host, before any pass is issued. Without it a
// resumed host restarts its fault-plane draws from attempt 0 and a
// chaos-injected run diverges from its uninterrupted twin.
func (h *Host) SetAttempts(n int) error {
	if n < 0 {
		return fmt.Errorf("memctl: negative attempt counter %d", n)
	}
	h.attempts = n
	return nil
}

// Recorder returns the recorder this host reports to (nil when none
// was configured), so layers built on the host — retry, quarantine,
// checkpointing — can count their own events next to the host's.
func (h *Host) Recorder() obs.Recorder { return h.rec }

// Parallelism returns the effective worker bound for per-chip
// sharding: the configured value (GOMAXPROCS when 0) capped at the
// chip count.
func (h *Host) Parallelism() int {
	w := h.par
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if chips := h.mod.Chips(); w > chips {
		w = chips
	}
	return w
}

// startClock returns the current time when a recorder is attached,
// and the zero time otherwise, so the disabled path never reads the
// clock.
//
//parbor:wallclock observational-only: feeds obs timing histograms, never simulation state, and is bit-inert (obs_inert_test.go)
func (h *Host) startClock() time.Time {
	if h.rec == nil {
		return time.Time{}
	}
	return time.Now()
}

// observeSince records the elapsed time since start into the named
// series; a zero start (recorder disabled) is a no-op.
//
//parbor:wallclock observational-only: pairs with startClock to histogram sweep times; results are bit-identical with or without it
func (h *Host) observeSince(name string, start time.Time) {
	if h.rec == nil || start.IsZero() {
		return
	}
	h.rec.ObserveNs(name, int64(time.Since(start)))
}

// add increments a named counter on the attached recorder, if any.
func (h *Host) add(name string, n uint64) {
	if h.rec != nil {
		h.rec.Add(name, n)
	}
}

// forEachChip runs fn(chip) for every chip, fanning out across the
// host's worker pool when it is larger than one. fn must confine
// itself to the given chip and its per-chip host buffers. After the
// first error no further chips are started; a panic in fn is
// converted to an error by the pool (serial path: it propagates).
func (h *Host) forEachChip(ctx context.Context, fn func(chip int) error) error {
	chips := h.mod.Chips()
	workers := h.Parallelism()
	if workers <= 1 || chips <= 1 {
		for chip := 0; chip < chips; chip++ {
			if err := fn(chip); err != nil {
				return err
			}
		}
		return nil
	}
	return par.MapTimedCtx(ctx, chips, workers, fn, h.onShard)
}

// bucketRows rebuilds the per-chip row-index buckets and the active
// chip list for a row-list pass, preserving the caller's relative
// order within each chip so the merged results are bit-identical to
// a serial sweep over the original list. The buckets live in host
// scratch: capacity is retained across passes.
func (h *Host) bucketRows(rows []Row) {
	for chip := range h.byChip {
		h.byChip[chip] = h.byChip[chip][:0]
	}
	for i, r := range rows {
		h.byChip[r.Chip] = append(h.byChip[r.Chip], i)
	}
	h.active = h.active[:0]
	for chip, idxs := range h.byChip {
		if len(idxs) > 0 {
			h.active = append(h.active, chip)
		}
	}
}

// forEachActiveChip runs fn for every chip that owns at least one
// bucketed row. Small passes often touch a single chip; those skip
// the pool entirely rather than paying fan-out overhead for no
// concurrency.
func (h *Host) forEachActiveChip(ctx context.Context, fn func(chip int) error) error {
	workers := h.Parallelism()
	if workers <= 1 || len(h.active) <= 1 {
		for _, chip := range h.active {
			if err := fn(chip); err != nil {
				return err
			}
		}
		return nil
	}
	h.sweep.fn = fn
	defer func() { h.sweep.fn = nil }()
	return par.MapTimedCtx(ctx, len(h.active), workers, h.activeFn, h.onShard)
}

// runActiveShard is the pre-bound pool body for active-chip sweeps.
//
//parbor:hotpath
func (h *Host) runActiveShard(k int) error { return h.sweep.fn(h.active[k]) }

// clearFaultSlots resets the per-chip fault slots before a sweep.
// Slot c is only ever written by the worker that owns chip c, so the
// slice needs no locking. No-op when no plane is attached (slots is
// nil and chipFaultsError of a nil slice is nil).
func (h *Host) clearFaultSlots() {
	for i := range h.slots {
		h.slots[i] = nil
	}
}

// chipFaultsError assembles the non-nil fault slots into a
// deterministic *PassError (ascending chip order), or nil when no
// shard faulted.
func chipFaultsError(slots []*ChipFault) error {
	var out []*ChipFault
	for _, f := range slots {
		if f != nil {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return &PassError{Faults: out}
}

// failPass accounts a pass that did not complete. Fault-plane
// rejections are counted; cancellations are not (they are the
// caller's doing, not the hardware's).
func (h *Host) failPass(err error) error {
	var pe *PassError
	if errors.As(err, &pe) {
		h.add(CounterPassFaults, 1)
	}
	return err
}

// resetSweep drops the sweep-state references when a pass returns so
// the host never retains caller slices, sources, or contexts.
func (h *Host) resetSweep() { h.sweep = sweepState{} }

// Pass writes data[i] to rows[i], waits the retention interval, reads
// the rows back and returns every mismatched bit address. It counts
// as one test regardless of how many rows it touches: on real
// hardware all rows are written back-to-back and share the single
// retention wait (this is what makes PARBOR's parallel-row testing
// cheap, Section 4.2).
//
// Aliasing contract: the host only ever reads data — it is written
// to the chips and later compared against, never mutated and never
// retained past the pass. Several rows may therefore share one
// backing slice (data[i] == data[j]), which is how callers avoid
// refilling identical pattern rows every pass (see patterns.Arena
// and the region sharing in package core).
func (h *Host) Pass(rows []Row, data [][]uint64) ([]BitAddr, error) {
	return h.PassWithWaitCtx(context.Background(), rows, data, h.waitMs)
}

// PassCtx is Pass with cooperative cancellation: once ctx is done the
// sharded chip workers stop within ctxCheckStride rows and ctx.Err()
// is returned. A cancelled pass leaves the rows it already wrote
// holding test patterns — callers that must preserve live data
// restore afterwards with an uncancelled context (see package
// onlinetest).
func (h *Host) PassCtx(ctx context.Context, rows []Row, data [][]uint64) ([]BitAddr, error) {
	return h.PassWithWaitCtx(ctx, rows, data, h.waitMs)
}

// PassWithWait is Pass with an explicit retention wait, used by
// retention-time profiling (package retention), which sweeps the wait
// instead of testing at one fixed interval.
func (h *Host) PassWithWait(rows []Row, data [][]uint64, waitMs float64) ([]BitAddr, error) {
	return h.PassWithWaitCtx(context.Background(), rows, data, waitMs)
}

// PassWithWaitCtx is PassWithWait with cooperative cancellation and
// fault-plane semantics: when an attached FaultPlane rejects an
// operation, the failing chip's shard aborts, the other chips finish,
// and the pass fails with a deterministic *PassError naming every
// faulted chip. A pass that fails during its write sweep aborts
// before the retention wait and does not count as a test; a pass that
// fails during the read sweep has already consumed the wait and is
// counted, exactly as on real hardware.
func (h *Host) PassWithWaitCtx(ctx context.Context, rows []Row, data [][]uint64, waitMs float64) ([]BitAddr, error) {
	if len(rows) != len(data) {
		return nil, fmt.Errorf("memctl: %d rows but %d data buffers", len(rows), len(data))
	}
	if waitMs < 0 {
		return nil, fmt.Errorf("memctl: negative wait %v", waitMs)
	}
	words := h.mod.Geometry().Words()
	for i := range data {
		if len(data[i]) != words {
			return nil, fmt.Errorf("memctl: row %d: data has %d words, want %d", i, len(data[i]), words)
		}
	}
	attempt := h.attempts
	h.attempts++
	passStart := h.startClock()
	h.bucketRows(rows)
	h.clearFaultSlots()
	h.sweep.ctx = ctx
	h.sweep.attempt = attempt
	h.sweep.rows = rows
	h.sweep.data = data
	err := h.forEachActiveChip(ctx, h.writeRowsFn)
	if err == nil {
		err = chipFaultsError(h.slots)
	}
	if err != nil {
		h.resetSweep()
		return nil, h.failPass(err)
	}
	h.observeSince(SeriesWriteSweep, passStart)
	h.mod.Wait(waitMs)
	h.autoRefreshExcept(rows)
	h.passes++
	readStart := h.startClock()
	fails, err := h.readAndDiff(ctx, attempt, rows, data)
	h.resetSweep()
	if err != nil {
		return nil, h.failPass(err)
	}
	h.observeSince(SeriesReadSweep, readStart)
	h.observeSince(SeriesPass, passStart)
	h.add(CounterPasses, 1)
	h.add(CounterRowsTested, uint64(len(rows)))
	return fails, nil
}

// writeRowsShard writes one chip's bucketed rows (the write half of a
// row-list pass).
//
//parbor:hotpath
func (h *Host) writeRowsShard(chip int) error {
	c := h.mod.Chip(chip)
	s := &h.sweep
	for k, i := range h.byChip[chip] {
		if k%ctxCheckStride == 0 {
			if cerr := s.ctx.Err(); cerr != nil {
				return cerr
			}
		}
		if h.plane != nil {
			if ferr := h.plane.BeforeWrite(s.attempt, s.rows[i]); ferr != nil {
				h.slots[chip] = &ChipFault{Chip: chip, Op: "write", Row: s.rows[i], Err: ferr}
				return nil // abort this shard; sibling chips continue
			}
		}
		c.WriteRow(s.rows[i].Bank, s.rows[i].Row, s.data[i])
	}
	return nil
}

// autoRefreshExcept models the auto-refresh that keeps running for
// every row not paused for the current test: those rows never
// accumulate retention time across passes. The rows under test are
// excluded — their decay is the point of the wait. The per-chip
// excluded-row lists are host scratch (see Host.pausedRows), safe to
// rebuild in place because AutoRefresh does not retain its argument.
func (h *Host) autoRefreshExcept(rows []Row) {
	for chip := range h.pausedRows {
		h.pausedRows[chip] = h.pausedRows[chip][:0]
	}
	for _, r := range rows {
		h.pausedRows[r.Chip] = append(h.pausedRows[r.Chip],
			h.mod.Chip(r.Chip).FlatRowIndex(r.Bank, r.Row))
	}
	for chip := 0; chip < h.mod.Chips(); chip++ {
		h.mod.Chip(chip).AutoRefresh(h.pausedRows[chip])
	}
}

// readAndDiff reads every listed row back and diffs it against
// want[i], sharding per chip. Results are merged in ascending
// row-list index, exactly the order a serial sweep produces; the
// merged slice is sized once from the per-index counts.
func (h *Host) readAndDiff(ctx context.Context, attempt int, rows []Row, want [][]uint64) ([]BitAddr, error) {
	if cap(h.perIndex) < len(rows) {
		h.perIndex = make([][]BitAddr, len(rows))
	}
	h.perIndex = h.perIndex[:len(rows)]
	h.clearFaultSlots()
	h.sweep.ctx = ctx
	h.sweep.attempt = attempt
	h.sweep.rows = rows
	h.sweep.data = want
	err := h.forEachActiveChip(ctx, h.readRowsFn)
	if err == nil {
		err = chipFaultsError(h.slots)
	}
	if err != nil {
		return nil, err
	}
	total := 0
	for _, f := range h.perIndex {
		total += len(f)
	}
	if total == 0 {
		return nil, nil
	}
	fails := make([]BitAddr, 0, total)
	for _, f := range h.perIndex {
		fails = append(fails, f...)
	}
	return fails, nil
}

// readRowsShard reads one chip's bucketed rows back and diffs them
// (the compare half of a row-list pass). Each row's mismatches land
// in perIndex[i]; the entries reuse their capacity from the previous
// pass, which is safe because readAndDiff copies them into the
// merged result before the next pass can touch them.
//
//parbor:hotpath
func (h *Host) readRowsShard(chip int) error {
	c := h.mod.Chip(chip)
	s := &h.sweep
	scratch := h.chipScratch[chip]
	for k, i := range h.byChip[chip] {
		if k%ctxCheckStride == 0 {
			if cerr := s.ctx.Err(); cerr != nil {
				return cerr
			}
		}
		if h.plane != nil {
			if ferr := h.plane.BeforeRead(s.attempt, s.rows[i]); ferr != nil {
				h.slots[chip] = &ChipFault{Chip: chip, Op: "read", Row: s.rows[i], Err: ferr}
				return nil
			}
		}
		c.ReadRow(s.rows[i].Bank, s.rows[i].Row, scratch)
		h.perIndex[i] = appendMismatches(h.perIndex[i][:0], s.rows[i], s.data[i], scratch, h.lastMask)
	}
	return nil
}

// ReadRowInto reads a row's current contents into dst without any
// retention wait — the plain load path, used e.g. to save live data
// before an online test epoch (package onlinetest).
func (h *Host) ReadRowInto(r Row, dst []uint64) error {
	return h.ReadRowIntoCtx(context.Background(), r, dst)
}

// ReadRowIntoCtx is ReadRowInto with cancellation and fault-plane
// semantics: an attached plane may reject the read, in which case the
// error is a *ChipFault. Each call is a distinct attempt, so a
// transient fault on a saved row clears on retry.
func (h *Host) ReadRowIntoCtx(ctx context.Context, r Row, dst []uint64) error {
	if len(dst) != h.mod.Geometry().Words() {
		return fmt.Errorf("memctl: dst has %d words, want %d", len(dst), h.mod.Geometry().Words())
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if h.plane != nil {
		attempt := h.attempts
		h.attempts++
		if ferr := h.plane.BeforeRead(attempt, r); ferr != nil {
			return &ChipFault{Chip: r.Chip, Op: "read", Row: r, Err: ferr}
		}
	}
	h.mod.Chip(r.Chip).ReadRow(r.Bank, r.Row, dst)
	return nil
}

// Verify waits, then reads the rows and diffs them against expected —
// without writing first. Test sequences whose semantics separate
// writes from delayed reads (March elements, package march) need
// this; Pass would re-charge the cells and mask retention failures.
// It counts as one test. The expected buffers follow the same
// aliasing contract as Pass data: read-only, sharable.
func (h *Host) Verify(rows []Row, expected [][]uint64, waitMs float64) ([]BitAddr, error) {
	return h.VerifyCtx(context.Background(), rows, expected, waitMs)
}

// VerifyCtx is Verify with cooperative cancellation and fault-plane
// semantics (see PassWithWaitCtx).
func (h *Host) VerifyCtx(ctx context.Context, rows []Row, expected [][]uint64, waitMs float64) ([]BitAddr, error) {
	if len(rows) != len(expected) {
		return nil, fmt.Errorf("memctl: %d rows but %d expected buffers", len(rows), len(expected))
	}
	if waitMs < 0 {
		return nil, fmt.Errorf("memctl: negative wait %v", waitMs)
	}
	words := h.mod.Geometry().Words()
	for i := range expected {
		if len(expected[i]) != words {
			return nil, fmt.Errorf("memctl: row %d: expected has %d words, want %d", i, len(expected[i]), words)
		}
	}
	attempt := h.attempts
	h.attempts++
	if waitMs > 0 {
		h.mod.Wait(waitMs)
		h.autoRefreshExcept(rows)
	}
	h.passes++
	readStart := h.startClock()
	h.bucketRows(rows)
	fails, err := h.readAndDiff(ctx, attempt, rows, expected)
	h.resetSweep()
	if err != nil {
		return nil, h.failPass(err)
	}
	h.observeSince(SeriesReadSweep, readStart)
	h.observeSince(SeriesPass, readStart)
	h.add(CounterPasses, 1)
	h.add(CounterRowsTested, uint64(len(rows)))
	return fails, nil
}

// FullPass writes a generated pattern to every row of every chip,
// waits, reads everything back, and returns the mismatched bit
// addresses. gen must be deterministic: it is invoked again during
// the compare phase. It counts as one test.
//
// gen may be called concurrently from the per-chip workers (always
// with distinct buf slices), so it must not mutate shared state; the
// fills in package patterns satisfy this by construction.
//
// Callers whose pattern rows are identical across rows should prefer
// FullPassRows with a memoized source (patterns.Arena): it skips the
// per-row regeneration entirely.
func (h *Host) FullPass(gen func(r Row, buf []uint64)) []BitAddr {
	return h.FullPassWithWait(gen, h.waitMs)
}

// FullPassCtx is FullPass with cooperative cancellation and
// fault-plane semantics (see PassWithWaitCtx).
func (h *Host) FullPassCtx(ctx context.Context, gen func(r Row, buf []uint64)) ([]BitAddr, error) {
	return h.FullPassWithWaitCtx(ctx, gen, h.waitMs)
}

// FullPassWithWait is FullPass with an explicit retention wait.
//
// The returned failures are sorted by (chip, bank, row, col)
// regardless of the host's parallelism: each chip's sweep visits its
// banks, rows and columns in ascending order, and the per-chip
// results are concatenated in chip order.
//
// It cannot report errors; hosts with a FaultPlane attached must use
// FullPassWithWaitCtx instead (an injected fault here panics), and a
// panic in gen resurfaces on the calling goroutine as before.
func (h *Host) FullPassWithWait(gen func(r Row, buf []uint64), waitMs float64) []BitAddr {
	fails, err := h.FullPassWithWaitCtx(context.Background(), gen, waitMs)
	if err != nil {
		// Background ctx never cancels and no plane should be attached
		// on this legacy path, so this is a recovered gen panic (or a
		// plane misuse): restore the panic semantics.
		panic(err)
	}
	return fails
}

// FullPassWithWaitCtx is FullPassWithWait with cooperative
// cancellation and fault-plane semantics (see PassWithWaitCtx).
func (h *Host) FullPassWithWaitCtx(ctx context.Context, gen func(r Row, buf []uint64), waitMs float64) ([]BitAddr, error) {
	h.sweep.gen = gen
	return h.fullPassRows(ctx, h.genFn, waitMs)
}

// genRowSource adapts the legacy gen callback to a RowSource: the
// pattern is generated into the owning chip's pattern buffer, which
// is safe because each chip's rows are visited by a single worker.
//
//parbor:hotpath
func (h *Host) genRowSource(r Row) []uint64 {
	buf := h.chipPattern[r.Chip]
	h.sweep.gen(r, buf)
	return buf
}

// FullPassRows writes src(r) to every row of every chip, waits, reads
// everything back, and returns the mismatched bit addresses, sorted
// by (chip, bank, row, col). It counts as one test.
//
// Unlike FullPass, the host aliases the slices src returns instead of
// filling a buffer per row, so a source backed by memoized pattern
// rows (patterns.Arena) makes the full-module sweep free of per-row
// pattern generation. See RowSource for the aliasing contract.
func (h *Host) FullPassRows(src RowSource) ([]BitAddr, error) {
	return h.FullPassRowsWithWaitCtx(context.Background(), src, h.waitMs)
}

// FullPassRowsCtx is FullPassRows with cooperative cancellation and
// fault-plane semantics (see PassWithWaitCtx).
func (h *Host) FullPassRowsCtx(ctx context.Context, src RowSource) ([]BitAddr, error) {
	return h.FullPassRowsWithWaitCtx(ctx, src, h.waitMs)
}

// FullPassRowsWithWaitCtx is FullPassRows with an explicit retention
// wait, cooperative cancellation and fault-plane semantics.
func (h *Host) FullPassRowsWithWaitCtx(ctx context.Context, src RowSource, waitMs float64) ([]BitAddr, error) {
	return h.fullPassRows(ctx, src, waitMs)
}

// fullPassRows is the shared full-module sweep implementation.
func (h *Host) fullPassRows(ctx context.Context, src RowSource, waitMs float64) ([]BitAddr, error) {
	if waitMs < 0 {
		h.resetSweep()
		return nil, fmt.Errorf("memctl: negative wait %v", waitMs)
	}
	g := h.mod.Geometry()
	attempt := h.attempts
	h.attempts++
	passStart := h.startClock()
	h.clearFaultSlots()
	h.sweep.ctx = ctx
	h.sweep.attempt = attempt
	h.sweep.src = src
	err := h.forEachChip(ctx, h.writeFullFn)
	if err == nil {
		err = chipFaultsError(h.slots)
	}
	if err != nil {
		h.resetSweep()
		return nil, h.failPass(err)
	}
	h.observeSince(SeriesWriteSweep, passStart)
	h.mod.Wait(waitMs)
	h.passes++

	readStart := h.startClock()
	h.clearFaultSlots()
	err = h.forEachChip(ctx, h.readFullFn)
	if err == nil {
		err = chipFaultsError(h.slots)
	}
	h.resetSweep()
	if err != nil {
		return nil, h.failPass(err)
	}
	total := 0
	for _, f := range h.perChip {
		total += len(f)
	}
	var fails []BitAddr
	if total > 0 {
		fails = make([]BitAddr, 0, total)
		for _, f := range h.perChip {
			fails = append(fails, f...)
		}
	}
	h.observeSince(SeriesReadSweep, readStart)
	h.observeSince(SeriesPass, passStart)
	h.add(CounterPasses, 1)
	h.add(CounterRowsTested, uint64(h.mod.Chips()*g.RowCount()))
	return fails, nil
}

// writeFullShard writes the source pattern to every row of one chip.
//
//parbor:hotpath
func (h *Host) writeFullShard(chip int) error {
	c := h.mod.Chip(chip)
	g := h.mod.Geometry()
	words := g.Words()
	s := &h.sweep
	n := 0
	for bank := 0; bank < g.Banks; bank++ {
		for row := 0; row < g.Rows; row++ {
			if n%ctxCheckStride == 0 {
				if cerr := s.ctx.Err(); cerr != nil {
					return cerr
				}
			}
			n++
			r := Row{Chip: chip, Bank: bank, Row: row}
			if h.plane != nil {
				if ferr := h.plane.BeforeWrite(s.attempt, r); ferr != nil {
					h.slots[chip] = &ChipFault{Chip: chip, Op: "write", Row: r, Err: ferr}
					return nil
				}
			}
			data := s.src(r)
			if len(data) != words {
				return fmt.Errorf("memctl: row source returned %d words for chip %d, want %d", len(data), chip, words)
			}
			c.WriteRow(bank, row, data)
		}
	}
	return nil
}

// readFullShard reads every row of one chip back and diffs it against
// the source pattern. The per-chip failure buffer reuses its capacity
// from the previous pass; fullPassRows copies it into the merged
// result before returning.
//
// The full pass wrote every row from the same source immediately
// before this sweep, so the expected data IS the stored data — the
// diff of the read-back against it is exactly the chip's failure
// delta. ReadRowDelta hands that delta over directly (same draws,
// same observability commands as ReadRow), skipping the row copy and
// the word-by-word compare; clean rows, the steady state of a healthy
// module, cost nothing beyond the failure evaluation itself.
//
//parbor:hotpath
func (h *Host) readFullShard(chip int) error {
	c := h.mod.Chip(chip)
	g := h.mod.Geometry()
	s := &h.sweep
	delta := h.chipDelta[chip]
	fails := h.perChip[chip][:0]
	n := 0
	for bank := 0; bank < g.Banks; bank++ {
		for row := 0; row < g.Rows; row++ {
			if n%ctxCheckStride == 0 {
				if cerr := s.ctx.Err(); cerr != nil {
					return cerr
				}
			}
			n++
			r := Row{Chip: chip, Bank: bank, Row: row}
			if h.plane != nil {
				if ferr := h.plane.BeforeRead(s.attempt, r); ferr != nil {
					h.slots[chip] = &ChipFault{Chip: chip, Op: "read", Row: r, Err: ferr}
					return nil
				}
			}
			if c.ReadRowDelta(bank, row, delta) != 0 {
				fails = appendDeltaFails(fails, r, delta)
			}
		}
	}
	h.perChip[chip] = fails
	return nil
}

// appendDeltaFails appends one BitAddr per set bit of delta, in
// ascending column order — the same order appendMismatches produces —
// and re-zeroes the words it consumes, restoring the all-zero scratch
// invariant. Toggles cannot touch the padding bits of the last word
// (every failure mode addresses a column below Cols), so no mask is
// needed.
//
//parbor:hotpath
func appendDeltaFails(fails []BitAddr, r Row, delta []uint64) []BitAddr {
	for w := range delta {
		diff := delta[w]
		if diff == 0 {
			continue
		}
		delta[w] = 0
		for diff != 0 {
			bit := bits.TrailingZeros64(diff)
			fails = append(fails, BitAddr{
				Chip: int16(r.Chip),
				Bank: int16(r.Bank),
				Row:  int32(r.Row),
				Col:  int32(w*64 + bit),
			})
			diff &= diff - 1
		}
	}
	return fails
}

// appendMismatches diffs the read-back buffer got against want and
// appends one BitAddr per flipped bit, in ascending column order.
// lastMask is the geometry's LastWordMask: when Cols is not a
// multiple of 64, the padding bits of the final word carry whatever
// the writer left there and must never surface as failures.
//
//parbor:hotpath
func appendMismatches(fails []BitAddr, r Row, want, got []uint64, lastMask uint64) []BitAddr {
	n := len(got)
	if n == 0 {
		return fails
	}
	want = want[:n] // one bounds check here instead of one per word
	// Quick scan: OR-accumulate the XOR of the full words four at a
	// time, straight-line ALU with no per-word branching. The steady
	// state of a healthy row is "no bits differ", so the extraction
	// pass below — with its per-word last-word test and per-bit
	// appends — runs only for the rare rows that actually flipped.
	last := n - 1
	var acc uint64
	w := 0
	for ; w+4 <= last; w += 4 {
		acc |= (got[w] ^ want[w]) | (got[w+1] ^ want[w+1]) |
			(got[w+2] ^ want[w+2]) | (got[w+3] ^ want[w+3])
	}
	for ; w < last; w++ {
		acc |= got[w] ^ want[w]
	}
	acc |= (got[last] ^ want[last]) & lastMask
	if acc == 0 {
		return fails
	}
	for w := 0; w < n; w++ {
		diff := got[w] ^ want[w]
		if w == last {
			// Padding bits of the final word carry whatever the writer
			// left there and must never surface as failures.
			diff &= lastMask
		}
		for diff != 0 {
			bit := bits.TrailingZeros64(diff)
			fails = append(fails, BitAddr{
				Chip: int16(r.Chip),
				Bank: int16(r.Bank),
				Row:  int32(r.Row),
				Col:  int32(w*64 + bit),
			})
			diff &= diff - 1
		}
	}
	return fails
}

// TimeEstimate returns the wall-clock duration the passes performed
// so far would take on real hardware, per the Appendix model: each
// pass writes the module, waits the refresh interval, and reads the
// module back.
func (h *Host) TimeEstimate(t Timing) time.Duration {
	per := t.ModulePassTime(h.mod.Geometry(), h.mod.Chips(), h.waitMs)
	return time.Duration(h.passes) * per
}
