// Package memctl implements the system-level test host: the software
// that drives write-wait-read test passes against a DRAM module
// through the memory controller, counts tests, and estimates their
// wall-clock cost with the DDR3 timing model of the paper's Appendix.
//
// The host deliberately exposes only what a real memory controller
// exposes — row writes, a retention wait, and read-back mismatch
// detection. The detection algorithm (package core) runs entirely on
// top of this interface and therefore cannot cheat by inspecting the
// simulated chip's internals.
package memctl

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"time"

	"parbor/internal/dram"
	"parbor/internal/obs"
	"parbor/internal/par"
)

// Timing-series and counter names the host records into an attached
// obs.Recorder. Exported so report readers and tests can reference
// them without string literals.
const (
	// SeriesPass is the wall time of one whole write-wait-read pass.
	SeriesPass = "host.pass"
	// SeriesWriteSweep and SeriesReadSweep are the wall times of the
	// write and read halves of a pass.
	SeriesWriteSweep = "host.write_sweep"
	SeriesReadSweep  = "host.read_sweep"
	// SeriesChipShard is the per-chip task duration inside the
	// worker pool; its spread exposes shard load imbalance.
	SeriesChipShard = "host.chip_shard"
	// CounterPasses counts test passes, CounterRowsTested the rows
	// written and read back across all passes (full-module sweeps
	// count every row of every chip).
	CounterPasses     = "host.passes"
	CounterRowsTested = "host.rows_tested"
	// CounterPassFaults counts passes that failed on a fault-plane
	// rejection (see FaultPlane); zero on the fault-free path.
	CounterPassFaults = "host.pass_faults"
)

// ctxCheckStride is how many rows a per-chip shard processes between
// cooperative cancellation checks. Checking every row would take the
// context's mutex on the hot path; every 32 rows keeps cancellation
// latency at a handful of microseconds while costing nothing
// measurable.
const ctxCheckStride = 32

// Row identifies one row of one chip in the module.
type Row struct {
	Chip int
	Bank int
	Row  int
}

// BitAddr identifies one cell in the module by system address.
type BitAddr struct {
	Chip int16
	Bank int16
	Row  int32
	Col  int32
}

// HostConfig tunes a test host.
type HostConfig struct {
	// WaitMs is the retention wait applied between the write and read
	// halves of every pass; zero selects DefaultWaitMs.
	WaitMs float64
	// Parallelism bounds the worker pool the host fans per-chip work
	// out to: 0 selects GOMAXPROCS, 1 forces the serial path. The
	// effective pool is additionally capped at the module's chip
	// count, since one chip is never driven by two workers (the
	// dram.Chip concurrency contract). Results are bit-identical at
	// every setting.
	Parallelism int
	// Recorder, when non-nil, receives pass counters and timing
	// histograms (see the Series*/Counter* names). It observes only;
	// results are bit-identical with or without it.
	Recorder obs.Recorder
	// Faults, when non-nil, is the controller-side fault plane
	// consulted before every row write and read (see FaultPlane;
	// package chaos provides the standard deterministic plane). The
	// fault-free path is bit-identical with or without a plane.
	Faults FaultPlane
}

// Host drives test passes against a module.
//
// Host is not safe for concurrent use: callers issue one pass at a
// time. Internally a pass shards its per-chip write/read sweeps
// across a bounded worker pool (see HostConfig.Parallelism); this is
// safe because distinct dram.Chips share no mutable state, and it is
// deterministic because chips are independent and per-chip results
// are merged in a fixed order, so the output is bit-identical to the
// serial path.
type Host struct {
	mod    *dram.Module
	waitMs float64
	par    int
	passes int
	rec    obs.Recorder
	plane  FaultPlane

	// attempts numbers every pass attempt (and, with a plane
	// attached, every single-row read), including ones that fail: it
	// is the entropy a FaultPlane keys its draws on, so a retried
	// pass sees fresh fault draws rather than deterministically
	// re-hitting the fault that failed it. Distinct from passes,
	// which counts only completed tests (the paper's metric).
	attempts int

	// Per-chip buffers: chip i is only ever touched by the one worker
	// that owns it during a pass, so indexing by chip makes the
	// buffers race-free without locking.
	chipScratch [][]uint64 // read-back buffer per chip
	chipPattern [][]uint64 // generated-pattern buffer per chip
}

// DefaultWaitMs is the retention wait used by the paper's detection
// experiments: a 4 s refresh interval (4 s at 45 degC corresponds to
// 328 ms at 85 degC), which ensures cells hold minimal charge when
// read and all coupling-vulnerable cells are past their thresholds.
const DefaultWaitMs = 4000

// NewHost wraps a module. waitMs is the retention wait applied
// between the write and read halves of every pass; zero selects
// DefaultWaitMs. Per-chip work is parallelized across GOMAXPROCS
// workers; use NewHostWithConfig to pick a different bound.
func NewHost(mod *dram.Module, waitMs float64) (*Host, error) {
	return NewHostWithConfig(mod, HostConfig{WaitMs: waitMs})
}

// NewHostWithConfig wraps a module with explicit host tuning.
func NewHostWithConfig(mod *dram.Module, cfg HostConfig) (*Host, error) {
	if mod == nil {
		return nil, fmt.Errorf("memctl: nil module")
	}
	if cfg.WaitMs == 0 {
		cfg.WaitMs = DefaultWaitMs
	}
	if cfg.WaitMs < 0 {
		return nil, fmt.Errorf("memctl: negative wait %v", cfg.WaitMs)
	}
	if cfg.Parallelism < 0 {
		return nil, fmt.Errorf("memctl: negative parallelism %d", cfg.Parallelism)
	}
	words := mod.Geometry().Words()
	chips := mod.Chips()
	h := &Host{
		mod:         mod,
		waitMs:      cfg.WaitMs,
		par:         cfg.Parallelism,
		rec:         cfg.Recorder,
		plane:       cfg.Faults,
		chipScratch: make([][]uint64, chips),
		chipPattern: make([][]uint64, chips),
	}
	for i := 0; i < chips; i++ {
		h.chipScratch[i] = make([]uint64, words)
		h.chipPattern[i] = make([]uint64, words)
	}
	return h, nil
}

// Geometry returns the per-chip layout of the module under test.
func (h *Host) Geometry() dram.Geometry { return h.mod.Geometry() }

// Chips returns the number of chips in the module.
func (h *Host) Chips() int { return h.mod.Chips() }

// Passes returns the number of write-wait-read test passes performed
// so far. This is the paper's "number of tests".
func (h *Host) Passes() int { return h.passes }

// WaitMs returns the configured retention wait in milliseconds.
func (h *Host) WaitMs() float64 { return h.waitMs }

// Recorder returns the recorder this host reports to (nil when none
// was configured), so layers built on the host — retry, quarantine,
// checkpointing — can count their own events next to the host's.
func (h *Host) Recorder() obs.Recorder { return h.rec }

// Parallelism returns the effective worker bound for per-chip
// sharding: the configured value (GOMAXPROCS when 0) capped at the
// chip count.
func (h *Host) Parallelism() int {
	w := h.par
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if chips := h.mod.Chips(); w > chips {
		w = chips
	}
	return w
}

// startClock returns the current time when a recorder is attached,
// and the zero time otherwise, so the disabled path never reads the
// clock.
func (h *Host) startClock() time.Time {
	if h.rec == nil {
		return time.Time{}
	}
	return time.Now()
}

// observeSince records the elapsed time since start into the named
// series; a zero start (recorder disabled) is a no-op.
func (h *Host) observeSince(name string, start time.Time) {
	if h.rec == nil || start.IsZero() {
		return
	}
	h.rec.ObserveNs(name, int64(time.Since(start)))
}

// add increments a named counter on the attached recorder, if any.
func (h *Host) add(name string, n uint64) {
	if h.rec != nil {
		h.rec.Add(name, n)
	}
}

// shardTimer returns the worker-pool callback that histograms
// per-chip shard durations, or nil when no recorder is attached.
func (h *Host) shardTimer() func(i int, d time.Duration) {
	if h.rec == nil {
		return nil
	}
	return func(_ int, d time.Duration) { h.rec.ObserveNs(SeriesChipShard, int64(d)) }
}

// forEachChipErr runs fn(chip) for every chip, fanning out across the
// host's worker pool when it is larger than one. fn must confine
// itself to the given chip and its per-chip host buffers. After the
// first error no further chips are started; a panic in fn is
// converted to an error by the pool (serial path: it propagates).
func (h *Host) forEachChipErr(ctx context.Context, fn func(chip int) error) error {
	chips := h.mod.Chips()
	workers := h.Parallelism()
	if workers <= 1 || chips <= 1 {
		for chip := 0; chip < chips; chip++ {
			if err := fn(chip); err != nil {
				return err
			}
		}
		return nil
	}
	return par.MapTimedCtx(ctx, chips, workers, fn, h.shardTimer())
}

// rowsByChip buckets row-list indices by chip, preserving the
// caller's relative order within each chip so the merged results are
// bit-identical to a serial sweep over the original list.
func (h *Host) rowsByChip(rows []Row) [][]int {
	byChip := make([][]int, h.mod.Chips())
	for i, r := range rows {
		byChip[r.Chip] = append(byChip[r.Chip], i)
	}
	return byChip
}

// forEachActiveChipErr runs fn for every chip that owns at least one
// bucketed row. Small passes often touch a single chip; those skip
// the pool entirely rather than paying fan-out overhead for no
// concurrency.
func (h *Host) forEachActiveChipErr(ctx context.Context, byChip [][]int, fn func(chip int) error) error {
	var active []int
	for chip, idxs := range byChip {
		if len(idxs) > 0 {
			active = append(active, chip)
		}
	}
	workers := h.Parallelism()
	if workers <= 1 || len(active) <= 1 {
		for _, chip := range active {
			if err := fn(chip); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > len(active) {
		workers = len(active)
	}
	return par.MapTimedCtx(ctx, len(active), workers, func(k int) error {
		return fn(active[k])
	}, h.shardTimer())
}

// newFaultSlots returns the per-chip fault slots for one sweep when a
// plane is attached, nil otherwise. Slot c is only ever written by
// the worker that owns chip c, so the slice needs no locking.
func (h *Host) newFaultSlots() []*ChipFault {
	if h.plane == nil {
		return nil
	}
	return make([]*ChipFault, h.mod.Chips())
}

// chipFaultsError assembles the non-nil fault slots into a
// deterministic *PassError (ascending chip order), or nil when no
// shard faulted.
func chipFaultsError(slots []*ChipFault) error {
	var out []*ChipFault
	for _, f := range slots {
		if f != nil {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return &PassError{Faults: out}
}

// failPass accounts a pass that did not complete. Fault-plane
// rejections are counted; cancellations are not (they are the
// caller's doing, not the hardware's).
func (h *Host) failPass(err error) error {
	var pe *PassError
	if errors.As(err, &pe) {
		h.add(CounterPassFaults, 1)
	}
	return err
}

// Pass writes data[i] to rows[i], waits the retention interval, reads
// the rows back and returns every mismatched bit address. It counts
// as one test regardless of how many rows it touches: on real
// hardware all rows are written back-to-back and share the single
// retention wait (this is what makes PARBOR's parallel-row testing
// cheap, Section 4.2).
func (h *Host) Pass(rows []Row, data [][]uint64) ([]BitAddr, error) {
	return h.PassWithWaitCtx(context.Background(), rows, data, h.waitMs)
}

// PassCtx is Pass with cooperative cancellation: once ctx is done the
// sharded chip workers stop within ctxCheckStride rows and ctx.Err()
// is returned. A cancelled pass leaves the rows it already wrote
// holding test patterns — callers that must preserve live data
// restore afterwards with an uncancelled context (see package
// onlinetest).
func (h *Host) PassCtx(ctx context.Context, rows []Row, data [][]uint64) ([]BitAddr, error) {
	return h.PassWithWaitCtx(ctx, rows, data, h.waitMs)
}

// PassWithWait is Pass with an explicit retention wait, used by
// retention-time profiling (package retention), which sweeps the wait
// instead of testing at one fixed interval.
func (h *Host) PassWithWait(rows []Row, data [][]uint64, waitMs float64) ([]BitAddr, error) {
	return h.PassWithWaitCtx(context.Background(), rows, data, waitMs)
}

// PassWithWaitCtx is PassWithWait with cooperative cancellation and
// fault-plane semantics: when an attached FaultPlane rejects an
// operation, the failing chip's shard aborts, the other chips finish,
// and the pass fails with a deterministic *PassError naming every
// faulted chip. A pass that fails during its write sweep aborts
// before the retention wait and does not count as a test; a pass that
// fails during the read sweep has already consumed the wait and is
// counted, exactly as on real hardware.
func (h *Host) PassWithWaitCtx(ctx context.Context, rows []Row, data [][]uint64, waitMs float64) ([]BitAddr, error) {
	if len(rows) != len(data) {
		return nil, fmt.Errorf("memctl: %d rows but %d data buffers", len(rows), len(data))
	}
	if waitMs < 0 {
		return nil, fmt.Errorf("memctl: negative wait %v", waitMs)
	}
	words := h.mod.Geometry().Words()
	for i := range data {
		if len(data[i]) != words {
			return nil, fmt.Errorf("memctl: row %d: data has %d words, want %d", i, len(data[i]), words)
		}
	}
	attempt := h.attempts
	h.attempts++
	passStart := h.startClock()
	byChip := h.rowsByChip(rows)
	slots := h.newFaultSlots()
	err := h.forEachActiveChipErr(ctx, byChip, func(chip int) error {
		c := h.mod.Chip(chip)
		for k, i := range byChip[chip] {
			if k%ctxCheckStride == 0 {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
			}
			if h.plane != nil {
				if ferr := h.plane.BeforeWrite(attempt, rows[i]); ferr != nil {
					slots[chip] = &ChipFault{Chip: chip, Op: "write", Row: rows[i], Err: ferr}
					return nil // abort this shard; sibling chips continue
				}
			}
			c.WriteRow(rows[i].Bank, rows[i].Row, data[i])
		}
		return nil
	})
	if err == nil {
		err = chipFaultsError(slots)
	}
	if err != nil {
		return nil, h.failPass(err)
	}
	h.observeSince(SeriesWriteSweep, passStart)
	h.mod.Wait(waitMs)
	h.autoRefreshExcept(rows)
	h.passes++
	readStart := h.startClock()
	fails, err := h.readAndDiff(ctx, attempt, byChip, rows, data)
	if err != nil {
		return nil, h.failPass(err)
	}
	h.observeSince(SeriesReadSweep, readStart)
	h.observeSince(SeriesPass, passStart)
	h.add(CounterPasses, 1)
	h.add(CounterRowsTested, uint64(len(rows)))
	return fails, nil
}

// autoRefreshExcept models the auto-refresh that keeps running for
// every row not paused for the current test: those rows never
// accumulate retention time across passes. The rows under test are
// excluded — their decay is the point of the wait.
func (h *Host) autoRefreshExcept(rows []Row) {
	perChip := make(map[int]map[int]struct{})
	for _, r := range rows {
		m := perChip[r.Chip]
		if m == nil {
			m = make(map[int]struct{})
			perChip[r.Chip] = m
		}
		m[h.mod.Chip(r.Chip).FlatRowIndex(r.Bank, r.Row)] = struct{}{}
	}
	for chip := 0; chip < h.mod.Chips(); chip++ {
		h.mod.Chip(chip).AutoRefresh(perChip[chip])
	}
}

// readAndDiff reads every listed row back and diffs it against
// want[i], sharding per chip. Results are merged in ascending
// row-list index, exactly the order a serial sweep produces.
func (h *Host) readAndDiff(ctx context.Context, attempt int, byChip [][]int, rows []Row, want [][]uint64) ([]BitAddr, error) {
	perIndex := make([][]BitAddr, len(rows))
	slots := h.newFaultSlots()
	err := h.forEachActiveChipErr(ctx, byChip, func(chip int) error {
		c := h.mod.Chip(chip)
		scratch := h.chipScratch[chip]
		for k, i := range byChip[chip] {
			if k%ctxCheckStride == 0 {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
			}
			if h.plane != nil {
				if ferr := h.plane.BeforeRead(attempt, rows[i]); ferr != nil {
					slots[chip] = &ChipFault{Chip: chip, Op: "read", Row: rows[i], Err: ferr}
					return nil
				}
			}
			c.ReadRow(rows[i].Bank, rows[i].Row, scratch)
			perIndex[i] = appendMismatches(nil, rows[i], want[i], scratch)
		}
		return nil
	})
	if err == nil {
		err = chipFaultsError(slots)
	}
	if err != nil {
		return nil, err
	}
	var fails []BitAddr
	for _, f := range perIndex {
		fails = append(fails, f...)
	}
	return fails, nil
}

// ReadRowInto reads a row's current contents into dst without any
// retention wait — the plain load path, used e.g. to save live data
// before an online test epoch (package onlinetest).
func (h *Host) ReadRowInto(r Row, dst []uint64) error {
	return h.ReadRowIntoCtx(context.Background(), r, dst)
}

// ReadRowIntoCtx is ReadRowInto with cancellation and fault-plane
// semantics: an attached plane may reject the read, in which case the
// error is a *ChipFault. Each call is a distinct attempt, so a
// transient fault on a saved row clears on retry.
func (h *Host) ReadRowIntoCtx(ctx context.Context, r Row, dst []uint64) error {
	if len(dst) != h.mod.Geometry().Words() {
		return fmt.Errorf("memctl: dst has %d words, want %d", len(dst), h.mod.Geometry().Words())
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if h.plane != nil {
		attempt := h.attempts
		h.attempts++
		if ferr := h.plane.BeforeRead(attempt, r); ferr != nil {
			return &ChipFault{Chip: r.Chip, Op: "read", Row: r, Err: ferr}
		}
	}
	h.mod.Chip(r.Chip).ReadRow(r.Bank, r.Row, dst)
	return nil
}

// Verify waits, then reads the rows and diffs them against expected —
// without writing first. Test sequences whose semantics separate
// writes from delayed reads (March elements, package march) need
// this; Pass would re-charge the cells and mask retention failures.
// It counts as one test.
func (h *Host) Verify(rows []Row, expected [][]uint64, waitMs float64) ([]BitAddr, error) {
	return h.VerifyCtx(context.Background(), rows, expected, waitMs)
}

// VerifyCtx is Verify with cooperative cancellation and fault-plane
// semantics (see PassWithWaitCtx).
func (h *Host) VerifyCtx(ctx context.Context, rows []Row, expected [][]uint64, waitMs float64) ([]BitAddr, error) {
	if len(rows) != len(expected) {
		return nil, fmt.Errorf("memctl: %d rows but %d expected buffers", len(rows), len(expected))
	}
	if waitMs < 0 {
		return nil, fmt.Errorf("memctl: negative wait %v", waitMs)
	}
	words := h.mod.Geometry().Words()
	for i := range expected {
		if len(expected[i]) != words {
			return nil, fmt.Errorf("memctl: row %d: expected has %d words, want %d", i, len(expected[i]), words)
		}
	}
	attempt := h.attempts
	h.attempts++
	if waitMs > 0 {
		h.mod.Wait(waitMs)
		h.autoRefreshExcept(rows)
	}
	h.passes++
	readStart := h.startClock()
	fails, err := h.readAndDiff(ctx, attempt, h.rowsByChip(rows), rows, expected)
	if err != nil {
		return nil, h.failPass(err)
	}
	h.observeSince(SeriesReadSweep, readStart)
	h.observeSince(SeriesPass, readStart)
	h.add(CounterPasses, 1)
	h.add(CounterRowsTested, uint64(len(rows)))
	return fails, nil
}

// FullPass writes a generated pattern to every row of every chip,
// waits, reads everything back, and returns the mismatched bit
// addresses. gen must be deterministic: it is invoked again during
// the compare phase. It counts as one test.
//
// gen may be called concurrently from the per-chip workers (always
// with distinct buf slices), so it must not mutate shared state; the
// fills in package patterns satisfy this by construction.
func (h *Host) FullPass(gen func(r Row, buf []uint64)) []BitAddr {
	return h.FullPassWithWait(gen, h.waitMs)
}

// FullPassCtx is FullPass with cooperative cancellation and
// fault-plane semantics (see PassWithWaitCtx).
func (h *Host) FullPassCtx(ctx context.Context, gen func(r Row, buf []uint64)) ([]BitAddr, error) {
	return h.FullPassWithWaitCtx(ctx, gen, h.waitMs)
}

// FullPassWithWait is FullPass with an explicit retention wait.
//
// The returned failures are sorted by (chip, bank, row, col)
// regardless of the host's parallelism: each chip's sweep visits its
// banks, rows and columns in ascending order, and the per-chip
// results are concatenated in chip order.
//
// It cannot report errors; hosts with a FaultPlane attached must use
// FullPassWithWaitCtx instead (an injected fault here panics), and a
// panic in gen resurfaces on the calling goroutine as before.
func (h *Host) FullPassWithWait(gen func(r Row, buf []uint64), waitMs float64) []BitAddr {
	fails, err := h.FullPassWithWaitCtx(context.Background(), gen, waitMs)
	if err != nil {
		// Background ctx never cancels and no plane should be attached
		// on this legacy path, so this is a recovered gen panic (or a
		// plane misuse): restore the panic semantics.
		panic(err)
	}
	return fails
}

// FullPassWithWaitCtx is FullPassWithWait with cooperative
// cancellation and fault-plane semantics (see PassWithWaitCtx).
func (h *Host) FullPassWithWaitCtx(ctx context.Context, gen func(r Row, buf []uint64), waitMs float64) ([]BitAddr, error) {
	if waitMs < 0 {
		return nil, fmt.Errorf("memctl: negative wait %v", waitMs)
	}
	g := h.mod.Geometry()
	attempt := h.attempts
	h.attempts++
	passStart := h.startClock()
	slots := h.newFaultSlots()
	err := h.forEachChipErr(ctx, func(chip int) error {
		c := h.mod.Chip(chip)
		buf := h.chipPattern[chip]
		n := 0
		for bank := 0; bank < g.Banks; bank++ {
			for row := 0; row < g.Rows; row++ {
				if n%ctxCheckStride == 0 {
					if cerr := ctx.Err(); cerr != nil {
						return cerr
					}
				}
				n++
				r := Row{Chip: chip, Bank: bank, Row: row}
				if h.plane != nil {
					if ferr := h.plane.BeforeWrite(attempt, r); ferr != nil {
						slots[chip] = &ChipFault{Chip: chip, Op: "write", Row: r, Err: ferr}
						return nil
					}
				}
				gen(r, buf)
				c.WriteRow(bank, row, buf)
			}
		}
		return nil
	})
	if err == nil {
		err = chipFaultsError(slots)
	}
	if err != nil {
		return nil, h.failPass(err)
	}
	h.observeSince(SeriesWriteSweep, passStart)
	h.mod.Wait(waitMs)
	h.passes++

	readStart := h.startClock()
	perChip := make([][]BitAddr, h.mod.Chips())
	slots = h.newFaultSlots()
	err = h.forEachChipErr(ctx, func(chip int) error {
		c := h.mod.Chip(chip)
		buf, scratch := h.chipPattern[chip], h.chipScratch[chip]
		var fails []BitAddr
		n := 0
		for bank := 0; bank < g.Banks; bank++ {
			for row := 0; row < g.Rows; row++ {
				if n%ctxCheckStride == 0 {
					if cerr := ctx.Err(); cerr != nil {
						return cerr
					}
				}
				n++
				r := Row{Chip: chip, Bank: bank, Row: row}
				if h.plane != nil {
					if ferr := h.plane.BeforeRead(attempt, r); ferr != nil {
						slots[chip] = &ChipFault{Chip: chip, Op: "read", Row: r, Err: ferr}
						return nil
					}
				}
				gen(r, buf)
				c.ReadRow(bank, row, scratch)
				fails = appendMismatches(fails, r, buf, scratch)
			}
		}
		perChip[chip] = fails
		return nil
	})
	if err == nil {
		err = chipFaultsError(slots)
	}
	if err != nil {
		return nil, h.failPass(err)
	}
	var fails []BitAddr
	for _, f := range perChip {
		fails = append(fails, f...)
	}
	h.observeSince(SeriesReadSweep, readStart)
	h.observeSince(SeriesPass, passStart)
	h.add(CounterPasses, 1)
	h.add(CounterRowsTested, uint64(h.mod.Chips()*g.RowCount()))
	return fails, nil
}

// appendMismatches diffs the read-back buffer got against want and
// appends one BitAddr per flipped bit, in ascending column order.
func appendMismatches(fails []BitAddr, r Row, want, got []uint64) []BitAddr {
	for w, g := range got {
		diff := g ^ want[w]
		for diff != 0 {
			bit := bits.TrailingZeros64(diff)
			fails = append(fails, BitAddr{
				Chip: int16(r.Chip),
				Bank: int16(r.Bank),
				Row:  int32(r.Row),
				Col:  int32(w*64 + bit),
			})
			diff &= diff - 1
		}
	}
	return fails
}

// TimeEstimate returns the wall-clock duration the passes performed
// so far would take on real hardware, per the Appendix model: each
// pass writes the module, waits the refresh interval, and reads the
// module back.
func (h *Host) TimeEstimate(t Timing) time.Duration {
	per := t.ModulePassTime(h.mod.Geometry(), h.mod.Chips(), h.waitMs)
	return time.Duration(h.passes) * per
}
